// Neighbour discovery and the symbolic-payload sensor app.
#include <gtest/gtest.h>

#include "rime/apps.hpp"
#include "sde/engine.hpp"
#include "sde/explode.hpp"
#include "sde/testcase.hpp"

namespace sde::rime {
namespace {

// --- Hello (neighbour discovery) ----------------------------------------------

std::unique_ptr<Engine> makeHelloEngine(const net::Topology& topology,
                                        MapperKind kind = MapperKind::kSds) {
  os::NetworkPlan plan(topology);
  plan.runEverywhere(buildHelloApp());
  auto engine = std::make_unique<Engine>(plan, kind);
  for (net::NodeId n = 0; n < topology.numNodes(); ++n)
    engine->setBootGlobal(n, kSlotSendInterval, 1000);
  return engine;
}

TEST(RimeHello, DiscoversExactNeighbourhood) {
  const auto topology = net::Topology::grid(3, 3);
  auto engine = makeHelloEngine(topology);
  ASSERT_EQ(engine->run(2500), RunOutcome::kCompleted);

  for (net::NodeId node = 0; node < topology.numNodes(); ++node) {
    const auto states = engine->statesOfNode(node);
    ASSERT_EQ(states.size(), 1u);  // fully concrete run
    const auto bitmap =
        states[0]->space.load(vm::kGlobalsObject, kHelloBitmap);
    ASSERT_TRUE(bitmap->isConstant());
    std::uint64_t expected = 0;
    for (net::NodeId neighbor : topology.neighbors(node))
      expected |= std::uint64_t{1} << neighbor;
    EXPECT_EQ(bitmap->value(), expected) << "node " << node;
  }
}

TEST(RimeHello, SymbolicDropsCreateIncompleteTables) {
  const auto topology = net::Topology::line(3);
  auto engine = makeHelloEngine(topology);
  engine->setFailureModel(std::make_unique<net::SymbolicDropModel>(
      std::vector<net::NodeId>{1}, 1));
  ASSERT_EQ(engine->run(1500), RunOutcome::kCompleted);

  // The middle node forked on its first HELLO: one state knows that
  // neighbour, the sibling's table misses it.
  const auto states = engine->statesOfNode(1);
  ASSERT_EQ(states.size(), 2u);
  std::vector<std::uint64_t> bitmaps;
  for (const auto* s : states)
    bitmaps.push_back(
        s->space.load(vm::kGlobalsObject, kHelloBitmap)->value());
  std::sort(bitmaps.begin(), bitmaps.end());
  EXPECT_NE(bitmaps[0], bitmaps[1]);
}

TEST(RimeHello, BeaconingDivergesOnlyLocally) {
  // Contrast with flooding (§IV-C): HELLO beacons are *history
  // independent* — a dropped beacon changes a node's neighbour table but
  // never its future transmissions, so sibling states are never in
  // conflict and COW/SDS keep everything in one dstate (two states per
  // node, zero mapping forks). COB still forks whole dscenarios on every
  // local drop branch. Neighbour discovery is adversarial for SDE only
  // when reception feeds back into sending (as in flooding).
  std::uint64_t counts[3];
  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    auto engine = makeHelloEngine(net::Topology::fullMesh(3), kind);
    engine->setFailureModel(std::make_unique<net::SymbolicDropModel>(
        std::vector<net::NodeId>{0, 1, 2}, 1));
    ASSERT_EQ(engine->run(1200), RunOutcome::kCompleted);
    counts[static_cast<int>(kind)] = engine->numStates();
    if (kind != MapperKind::kCob) {
      EXPECT_EQ(engine->stats().get("engine.forks_mapping"), 0u);
    }
  }
  EXPECT_EQ(counts[1], counts[2]);   // COW == SDS == 2 states per node
  EXPECT_EQ(counts[1], 6u);
  EXPECT_GT(counts[0], counts[1]);   // COB pays for every local branch
}

// --- Sensor (symbolic payload) -------------------------------------------------

std::unique_ptr<Engine> makeSensorEngine(const net::Topology& topology,
                                         net::NodeId source, net::NodeId sink,
                                         MapperKind kind = MapperKind::kSds) {
  os::NetworkPlan plan(topology);
  plan.runEverywhere(buildSensorApp());
  auto engine = std::make_unique<Engine>(plan, kind);
  const net::RoutingTable routing = net::RoutingTable::towards(topology, sink);
  for (const auto& boot :
       collectBootGlobals(topology, routing, source, 1000))
    engine->setBootGlobal(boot.node, boot.slot, boot.value);
  return engine;
}

TEST(RimeSensor, SymbolicReadingForksRelayAndSink) {
  // 3-node line: source 2 -> relay 1 -> sink 0; one packet.
  auto engine = makeSensorEngine(net::Topology::line(3), 2, 0);
  ASSERT_EQ(engine->run(1500), RunOutcome::kCompleted);

  // Relay forked on reading != 0; the zero branch filtered the packet.
  const auto relays = engine->statesOfNode(1);
  ASSERT_EQ(relays.size(), 2u);
  // Sink received only on the nonzero branch, then forked on the alarm
  // threshold: alarm / normal / never-received = 3 states... the
  // never-received sink state only exists if the relay's filtering
  // created a conflict — it did (relay siblings are rivals).
  const auto sinks = engine->statesOfNode(0);
  ASSERT_EQ(sinks.size(), 3u);

  std::uint64_t alarms = 0;
  std::uint64_t normals = 0;
  std::uint64_t untouched = 0;
  for (const auto* s : sinks) {
    const auto a = s->space.load(vm::kGlobalsObject, kSensorAlarms);
    const auto n = s->space.load(vm::kGlobalsObject, kSensorNormal);
    alarms += a->value();
    normals += n->value();
    untouched += (a->value() == 0 && n->value() == 0) ? 1 : 0;
  }
  EXPECT_EQ(alarms, 1u);
  EXPECT_EQ(normals, 1u);
  EXPECT_EQ(untouched, 1u);
}

TEST(RimeSensor, SinkConstraintsMentionTheSourcesVariable) {
  auto engine = makeSensorEngine(net::Topology::line(3), 2, 0);
  ASSERT_EQ(engine->run(1500), RunOutcome::kCompleted);

  // The source's reading variable is named on node 2; the sink's alarm
  // state must be constrained over it (cross-node data flow).
  expr::Ref reading = engine->context().variable("n2.reading.0", 8);
  bool sawCrossNodeConstraint = false;
  for (const auto* s : engine->statesOfNode(0)) {
    std::vector<expr::Ref> vars;
    for (expr::Ref c : s->constraints.items())
      engine->context().collectVariables(c, vars);
    if (std::find(vars.begin(), vars.end(), reading) != vars.end())
      sawCrossNodeConstraint = true;
  }
  EXPECT_TRUE(sawCrossNodeConstraint);
}

TEST(RimeSensor, ScenarioTestCasesResolveTheReading) {
  auto engine = makeSensorEngine(net::Topology::line(3), 2, 0);
  ASSERT_EQ(engine->run(1500), RunOutcome::kCompleted);

  // For the dscenario of each alarm-observing sink state, the joint test
  // case must assign the source's reading a value >= the threshold.
  for (const auto* s : engine->statesOfNode(0)) {
    const auto alarms =
        s->space.load(vm::kGlobalsObject, kSensorAlarms)->value();
    if (alarms == 0) continue;
    const auto dscenario = scenarioContaining(engine->mapper(), *s);
    ASSERT_TRUE(dscenario.has_value());
    const auto cases =
        generateScenarioTestCases(engine->solver(), *dscenario);
    ASSERT_TRUE(cases.has_value());
    bool sawReading = false;
    for (const auto& testCase : *cases) {
      for (const auto& input : testCase.inputs) {
        if (input.name == "n2.reading.0") {
          sawReading = true;
          EXPECT_GE(input.value, 200u);
        }
      }
    }
    EXPECT_TRUE(sawReading);
  }
}

TEST(RimeSensor, EquivalenceHoldsWithSymbolicPayloads) {
  // Data-coupled constraints must not break the coverage equivalence of
  // the mapping algorithms.
  std::unordered_set<std::uint64_t> fingerprints[3];
  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    auto engine = makeSensorEngine(net::Topology::line(3), 2, 0, kind);
    ASSERT_EQ(engine->run(2500), RunOutcome::kCompleted);
    fingerprints[static_cast<int>(kind)] =
        scenarioFingerprints(engine->mapper());
    engine->mapper().checkInvariants();
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
  EXPECT_EQ(fingerprints[0], fingerprints[2]);
  EXPECT_FALSE(fingerprints[0].empty());
}

TEST(RimeSensor, AlarmThresholdIsConfigurable) {
  SensorOptions options;
  options.alarmThreshold = 1;  // everything nonzero is an alarm
  os::NetworkPlan plan(net::Topology::line(2));
  plan.runEverywhere(buildSensorApp(options));
  Engine engine(plan, MapperKind::kSds);
  const net::RoutingTable routing =
      net::RoutingTable::towards(net::Topology::line(2), 0);
  for (const auto& boot :
       collectBootGlobals(net::Topology::line(2), routing, 1, 1000))
    engine.setBootGlobal(boot.node, boot.slot, boot.value);
  ASSERT_EQ(engine.run(1500), RunOutcome::kCompleted);
  // Sink branches: reading < 1 (i.e. == 0) normal, else alarm. Note the
  // sink plays the relay-filter role too? No: the sink IS the next hop,
  // so it classifies directly: two states (alarm / normal).
  std::uint64_t alarms = 0;
  for (const auto* s : engine.statesOfNode(0))
    alarms += s->space.load(vm::kGlobalsObject, kSensorAlarms)->value();
  EXPECT_EQ(alarms, 1u);
}

}  // namespace
}  // namespace sde::rime
