// Rime-like stack and applications, validated as concrete simulations
// (no symbolic failures: KleeNet without symbolic input "works as a
// simulator for one particular dscenario", §IV-A).
#include <gtest/gtest.h>

#include "rime/apps.hpp"
#include "rime/stack.hpp"
#include "sde/engine.hpp"

namespace sde::rime {
namespace {

std::unique_ptr<Engine> makeCollectEngine(const net::Topology& topology,
                                          const vm::Program& program,
                                          net::NodeId source,
                                          net::NodeId sink) {
  os::NetworkPlan plan(topology);
  plan.runEverywhere(program);
  auto engine = std::make_unique<Engine>(plan, MapperKind::kSds);
  const net::RoutingTable routing = net::RoutingTable::towards(topology, sink);
  for (const auto& boot :
       collectBootGlobals(topology, routing, source, 1000))
    engine->setBootGlobal(boot.node, boot.slot, boot.value);
  return engine;
}

std::uint64_t globalOf(const Engine& engine, net::NodeId node,
                       std::uint64_t slot) {
  const auto states = engine.statesOfNode(node);
  EXPECT_EQ(states.size(), 1u);  // concrete runs never fork
  const auto value = states[0]->space.load(vm::kGlobalsObject, slot);
  EXPECT_TRUE(value->isConstant());
  return value->value();
}

TEST(RimeStack, ProgramsExposeAllEntries) {
  for (const vm::Program& p :
       {buildCollectApp(), buildFloodApp(), buildPingApp()}) {
    EXPECT_TRUE(p.entry(vm::Entry::kInit).has_value()) << p.name();
    EXPECT_TRUE(p.entry(vm::Entry::kTimer).has_value()) << p.name();
    EXPECT_TRUE(p.entry(vm::Entry::kRecv).has_value()) << p.name();
  }
}

TEST(RimeCollect, LineDeliversEveryPacketToSink) {
  // 3-node line, source at 2, sink at 0; 10 s simulated, 1 packet/s.
  const auto topology = net::Topology::line(3);
  auto engine = makeCollectEngine(topology, buildCollectApp(), 2, 0);
  ASSERT_EQ(engine->run(10000), RunOutcome::kCompleted);
  EXPECT_EQ(engine->numStates(), 3u);  // fully concrete: no forks

  // Packets sent at 1000..10000: 10 of them, two hops each (2 ticks of
  // latency); the packet sent at 10000 arrives at 10002 — still in
  // flight at the horizon.
  EXPECT_EQ(globalOf(*engine, 2, kCollectSeqno), 10u);
  EXPECT_EQ(globalOf(*engine, 1, kCollectFwdCount), 9u);
  EXPECT_EQ(globalOf(*engine, 0, kCollectRecvCount), 9u);
  EXPECT_EQ(globalOf(*engine, 0, kCollectLastSeqPlus1), 9u);
  EXPECT_EQ(globalOf(*engine, 0, kCollectDupCount), 0u);
}

TEST(RimeCollect, GridRoutesAlongStaticPath) {
  const auto topology = net::Topology::grid(3, 3);
  auto engine = makeCollectEngine(topology, buildCollectApp(), 8, 0);
  ASSERT_EQ(engine->run(6000), RunOutcome::kCompleted);

  const net::RoutingTable routing = net::RoutingTable::towards(topology, 0);
  const auto path = routing.path(8);
  // Every intermediate path node forwarded; off-path nodes did not.
  for (net::NodeId node = 0; node < topology.numNodes(); ++node) {
    const bool intermediate =
        std::find(path.begin() + 1, path.end() - 1, node) !=
        path.end() - 1;
    const auto forwarded = globalOf(*engine, node, kCollectFwdCount);
    if (intermediate)
      EXPECT_GT(forwarded, 0u) << "node " << node;
    else
      EXPECT_EQ(forwarded, 0u) << "node " << node;
  }
  EXPECT_GT(globalOf(*engine, 0, kCollectRecvCount), 0u);
}

TEST(RimeCollect, OverhearingNeighborsDoNotForward) {
  // In a star, the hub's broadcast reaches every leaf; only the
  // addressed next hop may act.
  const auto topology = net::Topology::star(4);
  auto engine = makeCollectEngine(topology, buildCollectApp(), 1, 2);
  ASSERT_EQ(engine->run(3000), RunOutcome::kCompleted);
  // Source 1 -> hub 0 -> sink 2. Leaves 3, 4 overhear the hub's
  // broadcast but must not forward. (The packet sent at t=3000 is still
  // in flight at the horizon, so two forwards complete.)
  EXPECT_EQ(globalOf(*engine, 0, kCollectFwdCount), 2u);
  EXPECT_EQ(globalOf(*engine, 3, kCollectFwdCount), 0u);
  EXPECT_EQ(globalOf(*engine, 4, kCollectFwdCount), 0u);
  EXPECT_GT(globalOf(*engine, 2, kCollectRecvCount), 0u);
}

TEST(RimeCollect, DuplicateDetectionAtSink) {
  // Without failure models no duplicates are observed.
  const auto topology = net::Topology::line(2);
  auto engine = makeCollectEngine(topology, buildCollectApp(), 1, 0);
  ASSERT_EQ(engine->run(5000), RunOutcome::kCompleted);
  EXPECT_EQ(globalOf(*engine, 0, kCollectDupCount), 0u);
}

TEST(RimeCollect, FailOnDuplicateAssertsUnderDuplicates) {
  CollectOptions options;
  options.failOnDuplicateSeqno = true;
  const auto topology = net::Topology::line(2);
  os::NetworkPlan plan(topology);
  const vm::Program program = buildCollectApp(options);
  plan.runEverywhere(program);
  Engine engine(plan, MapperKind::kSds);
  const net::RoutingTable routing = net::RoutingTable::towards(topology, 0);
  for (const auto& boot : collectBootGlobals(topology, routing, 1, 1000))
    engine.setBootGlobal(boot.node, boot.slot, boot.value);
  engine.setFailureModel(std::make_unique<net::SymbolicDuplicateModel>(
      std::vector<net::NodeId>{0}, 1));
  engine.run(5000);
  // The duplicated-delivery branch must hit the sink assertion.
  bool sawFailure = false;
  for (const auto& state : engine.states())
    if (state->status == vm::StateStatus::kFailed) {
      sawFailure = true;
      EXPECT_NE(state->failureMessage.find("duplicate"), std::string::npos);
    }
  EXPECT_TRUE(sawFailure);
}

TEST(RimeFlood, FloodReachesEveryNode) {
  const auto topology = net::Topology::grid(3, 3);
  os::NetworkPlan plan(topology);
  const vm::Program program = buildFloodApp();
  plan.runEverywhere(program);
  Engine engine(plan, MapperKind::kSds);
  for (const auto& boot : floodBootGlobals(topology, 8, 1000))
    engine.setBootGlobal(boot.node, boot.slot, boot.value);
  ASSERT_EQ(engine.run(2500), RunOutcome::kCompleted);
  // One flood wave (seq 0 at t=1000, another at 2000): every node other
  // than the source relayed at least once.
  for (net::NodeId node = 0; node < topology.numNodes(); ++node) {
    const auto states = engine.statesOfNode(node);
    ASSERT_EQ(states.size(), 1u);
    const auto seen =
        states[0]->space.load(vm::kGlobalsObject, kFloodSeenMax);
    if (node != 8) {
      EXPECT_GT(seen->value(), 0u) << "node " << node;
      EXPECT_GT(states[0]
                    ->space.load(vm::kGlobalsObject, kFloodRelayed)
                    ->value(),
                0u)
          << "node " << node;
    }
  }
}

TEST(RimeFlood, DuplicateWavesAreSuppressed) {
  // Each node relays a given seqno exactly once even though it hears it
  // from several neighbours.
  const auto topology = net::Topology::fullMesh(4);
  os::NetworkPlan plan(topology);
  const vm::Program program = buildFloodApp();
  plan.runEverywhere(program);
  Engine engine(plan, MapperKind::kSds);
  for (const auto& boot : floodBootGlobals(topology, 3, 1000))
    engine.setBootGlobal(boot.node, boot.slot, boot.value);
  ASSERT_EQ(engine.run(1500), RunOutcome::kCompleted);
  for (net::NodeId node = 0; node < 3; ++node) {
    const auto states = engine.statesOfNode(node);
    EXPECT_EQ(states[0]
                  ->space.load(vm::kGlobalsObject, kFloodRelayed)
                  ->value(),
              1u)
        << "node " << node;
  }
}

TEST(RimeBootGlobals, CollectAssignsRolesAndRoutes) {
  const auto topology = net::Topology::line(3);
  const net::RoutingTable routing = net::RoutingTable::towards(topology, 0);
  const auto boots = collectBootGlobals(topology, routing, 2, 500);
  // Each node gets next hop + interval; source and sink one role each.
  EXPECT_EQ(boots.size(), 3u * 2 + 2);
  bool sourceSeen = false;
  bool sinkSeen = false;
  for (const auto& boot : boots) {
    if (boot.slot == kSlotIsSource && boot.value == 1) {
      EXPECT_EQ(boot.node, 2u);
      sourceSeen = true;
    }
    if (boot.slot == kSlotIsSink && boot.value == 1) {
      EXPECT_EQ(boot.node, 0u);
      sinkSeen = true;
    }
  }
  EXPECT_TRUE(sourceSeen);
  EXPECT_TRUE(sinkSeen);
}

}  // namespace
}  // namespace sde::rime
