// Directed solver tests over the query API the VM uses.
#include <gtest/gtest.h>

#include "solver/solver.hpp"

namespace sde::solver {
namespace {

class SolverTest : public ::testing::Test {
 protected:
  expr::Context ctx;
  Solver solver{ctx};
  expr::Ref x = ctx.variable("x", 8);
  expr::Ref y = ctx.variable("y", 8);

  expr::Ref k(int v) { return ctx.constant(v, 8); }
};

TEST_F(SolverTest, EmptyConstraintsEverythingIsPossible) {
  ConstraintSet cs;
  EXPECT_TRUE(solver.mayBeTrue(cs, ctx.eq(x, k(0))));
  EXPECT_TRUE(solver.mayBeTrue(cs, ctx.eq(x, k(255))));
  EXPECT_FALSE(solver.mustBeTrue(cs, ctx.eq(x, k(0))));
  EXPECT_EQ(solver.classify(cs, ctx.eq(x, k(3))), Validity::kUnknown);
}

TEST_F(SolverTest, ConstantConditionsShortCircuit) {
  ConstraintSet cs;
  EXPECT_TRUE(solver.mayBeTrue(cs, ctx.trueExpr()));
  EXPECT_FALSE(solver.mayBeTrue(cs, ctx.falseExpr()));
  EXPECT_TRUE(solver.mustBeTrue(cs, ctx.trueExpr()));
  EXPECT_FALSE(solver.mustBeTrue(cs, ctx.falseExpr()));
  EXPECT_EQ(solver.classify(cs, ctx.trueExpr()), Validity::kTrue);
  EXPECT_EQ(solver.classify(cs, ctx.falseExpr()), Validity::kFalse);
}

TEST_F(SolverTest, ConstraintsNarrowPossibilities) {
  ConstraintSet cs;
  cs.add(ctx.ult(x, k(10)));
  EXPECT_TRUE(solver.mayBeTrue(cs, ctx.eq(x, k(9))));
  EXPECT_FALSE(solver.mayBeTrue(cs, ctx.eq(x, k(10))));
  EXPECT_TRUE(solver.mustBeTrue(cs, ctx.ult(x, k(11))));
  EXPECT_FALSE(solver.mustBeTrue(cs, ctx.ult(x, k(9))));
}

TEST_F(SolverTest, ClassifyDetectsImpliedBranches) {
  ConstraintSet cs;
  cs.add(ctx.eq(x, k(7)));
  EXPECT_EQ(solver.classify(cs, ctx.ult(x, k(8))), Validity::kTrue);
  EXPECT_EQ(solver.classify(cs, ctx.ult(x, k(7))), Validity::kFalse);
  EXPECT_EQ(solver.classify(cs, ctx.ult(y, k(7))), Validity::kUnknown);
}

TEST_F(SolverTest, UnsatisfiableConjunction) {
  ConstraintSet cs;
  cs.add(ctx.ult(x, k(5)));
  cs.add(ctx.ult(k(5), x));
  EXPECT_FALSE(solver.mayBeTrue(cs, ctx.trueExpr()));
  EXPECT_EQ(solver.getModel(cs), std::nullopt);
}

TEST_F(SolverTest, CrossVariableConstraints) {
  ConstraintSet cs;
  cs.add(ctx.eq(ctx.add(x, y), k(10)));
  cs.add(ctx.ult(x, k(3)));
  ASSERT_TRUE(solver.mayBeTrue(cs, ctx.trueExpr()));
  const auto model = solver.getModel(cs);
  ASSERT_TRUE(model.has_value());
  const std::uint64_t xv = *model->get(x);
  const std::uint64_t yv = *model->get(y);
  EXPECT_LT(xv, 3u);
  EXPECT_EQ((xv + yv) & 0xff, 10u);
}

TEST_F(SolverTest, GetValueReturnsAWitness) {
  ConstraintSet cs;
  cs.add(ctx.ult(k(250), x));  // x in {251..255}
  const auto v = solver.getValue(cs, x);
  ASSERT_TRUE(v.has_value());
  EXPECT_GT(*v, 250u);
  // Constants evaluate to themselves without any solving.
  EXPECT_EQ(solver.getValue(cs, k(42)), 42u);
}

TEST_F(SolverTest, GetValueOfDerivedExpression) {
  ConstraintSet cs;
  cs.add(ctx.eq(x, k(7)));
  const auto v = solver.getValue(cs, ctx.add(x, k(1)));
  EXPECT_EQ(v, 8u);
}

TEST_F(SolverTest, GetValueUnboundVariableDefaultsToZero) {
  ConstraintSet cs;  // y unconstrained: first witness is 0
  const auto v = solver.getValue(cs, ctx.add(y, k(5)));
  EXPECT_EQ(v, 5u);
}

TEST_F(SolverTest, ModelCoversAllComponents) {
  ConstraintSet cs;
  cs.add(ctx.eq(x, k(1)));
  cs.add(ctx.eq(y, k(2)));  // independent component
  const auto model = solver.getModel(cs);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(*model->get(x), 1u);
  EXPECT_EQ(*model->get(y), 2u);
}

TEST_F(SolverTest, WrapAroundArithmeticIsModelledCorrectly) {
  ConstraintSet cs;
  cs.add(ctx.eq(ctx.add(x, k(1)), k(0)));  // x + 1 == 0 (mod 256)
  const auto v = solver.getValue(cs, x);
  EXPECT_EQ(v, 255u);
}

TEST_F(SolverTest, CacheHitsOnRepeatedQueries) {
  ConstraintSet cs;
  cs.add(ctx.ult(x, k(10)));
  (void)solver.mayBeTrue(cs, ctx.eq(x, k(3)));
  const auto before = solver.stats().get("solver.cache_hits");
  (void)solver.mayBeTrue(cs, ctx.eq(x, k(3)));
  EXPECT_GT(solver.stats().get("solver.cache_hits"), before);
}

TEST_F(SolverTest, IndependenceKeepsQueriesSmall) {
  ConstraintSet cs;
  // Many unrelated constraints plus one on x.
  for (int i = 0; i < 20; ++i)
    cs.add(ctx.ult(ctx.variable("pad" + std::to_string(i), 8), k(100)));
  cs.add(ctx.ult(x, k(10)));
  EXPECT_TRUE(solver.mayBeTrue(cs, ctx.eq(x, k(5))));
  EXPECT_GT(solver.stats().get("solver.sliced_away"), 0u);
}

TEST_F(SolverTest, SolverWithoutOptimisationsStillCorrect) {
  SolverConfig config;
  config.useCache = false;
  config.useIndependence = false;
  config.useIntervals = false;
  Solver plain(ctx, config);
  ConstraintSet cs;
  cs.add(ctx.ult(x, k(10)));
  EXPECT_TRUE(plain.mayBeTrue(cs, ctx.eq(x, k(9))));
  EXPECT_FALSE(plain.mayBeTrue(cs, ctx.eq(x, k(10))));
}

TEST_F(SolverTest, BooleanDropFlagScenario) {
  // The exact query shape SDE's failure models produce: a fresh boolean
  // per symbolic packet drop.
  ConstraintSet received;
  ConstraintSet dropped;
  expr::Ref drop = ctx.variable("drop_n3_p0", 1);
  received.add(ctx.logicalNot(drop));
  dropped.add(drop);
  EXPECT_EQ(solver.classify(received, drop), Validity::kFalse);
  EXPECT_EQ(solver.classify(dropped, drop), Validity::kTrue);
  const auto model = solver.getModel(dropped);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(*model->get(drop), 1u);
}

}  // namespace
}  // namespace sde::solver
