#include <gtest/gtest.h>

#include "solver/constraint_set.hpp"

namespace sde::solver {
namespace {

class ConstraintSetTest : public ::testing::Test {
 protected:
  expr::Context ctx;
  expr::Ref x = ctx.variable("x", 8);
  expr::Ref y = ctx.variable("y", 8);
};

TEST_F(ConstraintSetTest, AddTracksOutcome) {
  ConstraintSet cs;
  EXPECT_EQ(cs.add(ctx.ult(x, ctx.constant(5, 8))),
            ConstraintSet::AddResult::kAdded);
  EXPECT_EQ(cs.add(ctx.ult(x, ctx.constant(5, 8))),
            ConstraintSet::AddResult::kRedundant);
  EXPECT_EQ(cs.add(ctx.trueExpr()), ConstraintSet::AddResult::kRedundant);
  EXPECT_EQ(cs.add(ctx.falseExpr()),
            ConstraintSet::AddResult::kTriviallyFalse);
  EXPECT_EQ(cs.size(), 1u);
}

TEST_F(ConstraintSetTest, SetHashIsOrderIndependent) {
  expr::Ref c1 = ctx.ult(x, ctx.constant(5, 8));
  expr::Ref c2 = ctx.eq(y, ctx.constant(1, 8));
  ConstraintSet a;
  ConstraintSet b;
  a.add(c1);
  a.add(c2);
  b.add(c2);
  b.add(c1);
  EXPECT_EQ(a.setHash(), b.setHash());
}

TEST_F(ConstraintSetTest, SetHashDistinguishesSets) {
  ConstraintSet a;
  ConstraintSet b;
  a.add(ctx.ult(x, ctx.constant(5, 8)));
  b.add(ctx.ult(x, ctx.constant(6, 8)));
  EXPECT_NE(a.setHash(), b.setHash());
  EXPECT_NE(a.setHash(), ConstraintSet{}.setHash());
}

TEST_F(ConstraintSetTest, CopyIsIndependent) {
  ConstraintSet a;
  a.add(ctx.ult(x, ctx.constant(5, 8)));
  ConstraintSet b = a;  // forked state copies its path constraints
  b.add(ctx.eq(y, ctx.constant(1, 8)));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_NE(a.setHash(), b.setHash());
}

TEST_F(ConstraintSetTest, VariablesSortedAndDeduplicated) {
  ConstraintSet cs;
  cs.add(ctx.ult(y, ctx.constant(5, 8)));
  cs.add(ctx.eq(ctx.add(x, y), ctx.constant(3, 8)));
  const auto vars = cs.variables(ctx);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], x);
  EXPECT_EQ(vars[1], y);
}

TEST_F(ConstraintSetTest, BooleanWidthEnforced) {
  ConstraintSet cs;
  EXPECT_DEATH(cs.add(x), "boolean");
}

TEST_F(ConstraintSetTest, VariablesAreDeterministicAcrossInsertionOrders) {
  // variables() must be a pure function of the *set*: any insertion
  // order over the same constraints yields the same id-sorted list.
  const expr::Ref c1 = ctx.ult(x, ctx.constant(5, 8));
  const expr::Ref c2 = ctx.eq(ctx.add(x, y), ctx.constant(3, 8));
  const expr::Ref c3 = ctx.ult(y, ctx.constant(9, 8));
  ConstraintSet forward;
  forward.add(c1);
  forward.add(c2);
  forward.add(c3);
  ConstraintSet backward;
  backward.add(c3);
  backward.add(c2);
  backward.add(c1);
  ConstraintSet shuffled;
  shuffled.add(c2);
  shuffled.add(c1);
  shuffled.add(c3);

  const auto want = forward.variables(ctx);
  ASSERT_EQ(want.size(), 2u);
  EXPECT_EQ(want[0], x);
  EXPECT_EQ(want[1], y);
  EXPECT_EQ(backward.variables(ctx), want);
  EXPECT_EQ(shuffled.variables(ctx), want);
  // Repeated calls agree (no internal caching drift).
  EXPECT_EQ(forward.variables(ctx), want);
}

TEST_F(ConstraintSetTest, DuplicateAddAfterForkDivergenceIsRedundant) {
  // Fork a set, let both sides diverge, then re-add a constraint that
  // lives in the shared (chunk-resident) prefix: the dedup scan must see
  // through the structural sharing on both sides.
  const expr::Ref shared = ctx.ult(x, ctx.constant(5, 8));
  ConstraintSet parent;
  parent.add(shared);
  for (std::uint64_t i = 0; i < 64; ++i)  // spill into sealed chunks
    parent.add(ctx.ult(x, ctx.constant(6 + i, 8)));

  ConstraintSet child = parent;
  child.add(ctx.eq(y, ctx.constant(1, 8)));
  parent.add(ctx.eq(y, ctx.constant(2, 8)));

  EXPECT_EQ(child.add(shared), ConstraintSet::AddResult::kRedundant);
  EXPECT_EQ(parent.add(shared), ConstraintSet::AddResult::kRedundant);
  // The divergent suffixes are not deduplicated against each other.
  EXPECT_EQ(child.add(ctx.eq(y, ctx.constant(2, 8))),
            ConstraintSet::AddResult::kAdded);
  EXPECT_EQ(parent.size(), 66u);
  EXPECT_EQ(child.size(), 67u);
}

TEST_F(ConstraintSetTest, TriviallyFalseOnASharedTailLeavesBothSidesIntact) {
  ConstraintSet parent;
  for (std::uint64_t i = 0; i < 40; ++i)
    parent.add(ctx.ult(x, ctx.constant(i + 1, 8)));
  ConstraintSet child = parent;
  const std::uint64_t parentHash = parent.setHash();

  EXPECT_EQ(child.add(ctx.falseExpr()),
            ConstraintSet::AddResult::kTriviallyFalse);
  EXPECT_EQ(child.size(), 40u);  // rejected adds record nothing
  EXPECT_EQ(child.setHash(), parentHash);
  EXPECT_EQ(parent.size(), 40u);
  EXPECT_EQ(parent.setHash(), parentHash);
}

TEST_F(ConstraintSetTest, CopySharesChunksAndCostsOnlyTheTail) {
  ConstraintSet cs;
  const std::size_t chunk = ConstraintSet::Items::chunkCapacity();
  for (std::uint64_t i = 0; i < 3 * chunk + 2; ++i)
    cs.add(ctx.ult(x, ctx.constant(i + 1, 8)));
  ASSERT_EQ(cs.size(), 3 * chunk + 2);
  EXPECT_EQ(cs.copyCostElements(), 2u);
  EXPECT_EQ(cs.sharedChunksOnCopy(), 3u);

  std::map<const void*, std::uint64_t> seen;
  const std::uint64_t solo = cs.accountBytes(seen);
  const ConstraintSet copy = cs;
  const std::uint64_t extra = copy.accountBytes(seen);
  EXPECT_LT(extra, solo);  // the chunks were already charged to `cs`
}

}  // namespace
}  // namespace sde::solver
