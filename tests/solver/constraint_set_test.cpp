#include <gtest/gtest.h>

#include "solver/constraint_set.hpp"

namespace sde::solver {
namespace {

class ConstraintSetTest : public ::testing::Test {
 protected:
  expr::Context ctx;
  expr::Ref x = ctx.variable("x", 8);
  expr::Ref y = ctx.variable("y", 8);
};

TEST_F(ConstraintSetTest, AddTracksOutcome) {
  ConstraintSet cs;
  EXPECT_EQ(cs.add(ctx.ult(x, ctx.constant(5, 8))),
            ConstraintSet::AddResult::kAdded);
  EXPECT_EQ(cs.add(ctx.ult(x, ctx.constant(5, 8))),
            ConstraintSet::AddResult::kRedundant);
  EXPECT_EQ(cs.add(ctx.trueExpr()), ConstraintSet::AddResult::kRedundant);
  EXPECT_EQ(cs.add(ctx.falseExpr()),
            ConstraintSet::AddResult::kTriviallyFalse);
  EXPECT_EQ(cs.size(), 1u);
}

TEST_F(ConstraintSetTest, SetHashIsOrderIndependent) {
  expr::Ref c1 = ctx.ult(x, ctx.constant(5, 8));
  expr::Ref c2 = ctx.eq(y, ctx.constant(1, 8));
  ConstraintSet a;
  ConstraintSet b;
  a.add(c1);
  a.add(c2);
  b.add(c2);
  b.add(c1);
  EXPECT_EQ(a.setHash(), b.setHash());
}

TEST_F(ConstraintSetTest, SetHashDistinguishesSets) {
  ConstraintSet a;
  ConstraintSet b;
  a.add(ctx.ult(x, ctx.constant(5, 8)));
  b.add(ctx.ult(x, ctx.constant(6, 8)));
  EXPECT_NE(a.setHash(), b.setHash());
  EXPECT_NE(a.setHash(), ConstraintSet{}.setHash());
}

TEST_F(ConstraintSetTest, CopyIsIndependent) {
  ConstraintSet a;
  a.add(ctx.ult(x, ctx.constant(5, 8)));
  ConstraintSet b = a;  // forked state copies its path constraints
  b.add(ctx.eq(y, ctx.constant(1, 8)));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_NE(a.setHash(), b.setHash());
}

TEST_F(ConstraintSetTest, VariablesSortedAndDeduplicated) {
  ConstraintSet cs;
  cs.add(ctx.ult(y, ctx.constant(5, 8)));
  cs.add(ctx.eq(ctx.add(x, y), ctx.constant(3, 8)));
  const auto vars = cs.variables(ctx);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], x);
  EXPECT_EQ(vars[1], y);
}

TEST_F(ConstraintSetTest, BooleanWidthEnforced) {
  ConstraintSet cs;
  EXPECT_DEATH(cs.add(x), "boolean");
}

}  // namespace
}  // namespace sde::solver
