// Property tests of the process-external shared query store
// (solver/shm_cache.hpp). The store inherits the SharedQueryStore
// contract — canonical values only, first writer wins — so its central
// soundness property is *no fabrication*: anything a lookup ever
// returns, from any process, is byte-equal to a value some process
// actually inserted for exactly that key. The tests drive that with
// genuinely concurrent multi-process readers/writers over one segment,
// plus the attach()-time rejection matrix (truncated, torn, version-
// mismatched, never-initialized segments must throw ShmCacheError, the
// signal the fleet runner turns into a cold-cache degrade).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "solver/shm_cache.hpp"
#include "support/hash.hpp"

namespace sde::solver {
namespace {

std::string freshName(const char* tag) {
  return "/sde_shmtest_" + std::string(tag) + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

// RAII for the shm *name* (mappings clean themselves up via the cache
// destructor; the name would otherwise outlive the test run).
struct ScopedSegment {
  explicit ScopedSegment(std::string n) : name(std::move(n)) {}
  ~ScopedSegment() { ShmQueryCache::unlinkSegment(name); }
  std::string name;
};

// The canonical-entry universe: entry `i` is a pure function of `i`, so
// every process — writer, reader, verifier — derives the identical
// (key, result) pair independently. Any published entry that is NOT
// byte-equal to canonicalResult(of its key) was fabricated or torn.
SharedQueryKey canonicalKey(std::uint64_t i) {
  // Distinct keys with varying length; values don't need to be sorted
  // for the store (it treats keys as opaque hash vectors).
  SharedQueryKey key;
  const std::uint64_t len = 1 + i % 5;
  for (std::uint64_t k = 0; k < len; ++k)
    key.push_back(support::mix64(i * 131 + k + 1));
  return key;
}

SharedQueryResult canonicalResult(std::uint64_t i) {
  SharedQueryResult result;
  result.status = i % 3 == 0 ? EnumStatus::kExhausted : EnumStatus::kSat;
  if (result.status == EnumStatus::kSat) {
    const std::uint64_t bindings = 1 + i % 4;
    for (std::uint64_t b = 0; b < bindings; ++b)
      result.model.push_back(SharedBinding{
          "v" + std::to_string(i) + "_" + std::to_string(b),
          static_cast<unsigned>(4 + 4 * (b % 3)), support::mix64(i ^ b)});
  }
  return result;
}

TEST(ShmCachePropertyTest, InsertLookupRoundtripAndFirstWriterWins) {
  const ScopedSegment seg(freshName("roundtrip"));
  auto cache = ShmQueryCache::create(seg.name);

  for (std::uint64_t i = 0; i < 200; ++i)
    cache->insert(canonicalKey(i), canonicalResult(i));
  EXPECT_EQ(cache->entries(), 200u);

  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto hit = cache->lookup(canonicalKey(i));
    ASSERT_TRUE(hit.has_value()) << "entry " << i;
    EXPECT_EQ(*hit, canonicalResult(i)) << "entry " << i;
  }

  // First writer wins: a conflicting (contract-violating) second insert
  // for an existing key must be ignored, not overwrite.
  SharedQueryResult conflicting = canonicalResult(7);
  conflicting.model.push_back(SharedBinding{"intruder", 8, 0xdeadbeef});
  cache->insert(canonicalKey(7), conflicting);
  EXPECT_EQ(*cache->lookup(canonicalKey(7)), canonicalResult(7));
  EXPECT_EQ(cache->entries(), 200u);
}

TEST(ShmCachePropertyTest, OversizeEntriesAreDroppedNotTruncated) {
  const ScopedSegment seg(freshName("oversize"));
  ShmCacheConfig config;
  config.maxConjuncts = 4;
  config.maxBindings = 2;
  config.nameBytes = 8;
  auto cache = ShmQueryCache::create(seg.name, config);

  const auto expectDropped = [&](const SharedQueryKey& key,
                                 const SharedQueryResult& result) {
    const std::uint64_t before = cache->dropped();
    cache->insert(key, result);
    EXPECT_EQ(cache->dropped(), before + 1);
    EXPECT_FALSE(cache->lookup(key).has_value());
  };

  // Too many conjuncts.
  expectDropped(SharedQueryKey{1, 2, 3, 4, 5}, SharedQueryResult{});
  // Too many bindings.
  SharedQueryResult fat;
  fat.status = EnumStatus::kSat;
  fat.model = {SharedBinding{"a", 4, 1}, SharedBinding{"b", 4, 2},
               SharedBinding{"c", 4, 3}};
  expectDropped(SharedQueryKey{9}, fat);
  // Name that cannot be NUL-terminated within nameBytes.
  SharedQueryResult longName;
  longName.status = EnumStatus::kSat;
  longName.model = {SharedBinding{"far_too_long_a_name", 4, 1}};
  expectDropped(SharedQueryKey{10}, longName);

  EXPECT_EQ(cache->entries(), 0u);
}

// The central concurrency property, with real processes: several
// children hammer one segment — each inserts a (deterministically
// overlapping) slice of the canonical universe while looking up the
// whole of it — and every value ANY process observes must be canonical.
// A child that sees a fabricated/torn value exits nonzero.
TEST(ShmCachePropertyTest, MultiProcessReadersWritersNeverFabricate) {
  constexpr std::uint64_t kUniverse = 300;
  constexpr int kChildren = 4;
  const ScopedSegment seg(freshName("mp"));
  auto cache = ShmQueryCache::create(seg.name);

  std::vector<pid_t> children;
  for (int c = 0; c < kChildren; ++c) {
    const pid_t pid = fork();
    ASSERT_NE(pid, -1) << "fork failed";
    if (pid == 0) {
      // Child: attach by name (exercising the cross-process path, not
      // the inherited mapping), write an interleaved slice, read
      // everything, verify canonicality. _exit keeps gtest machinery
      // out of the forked copy.
      try {
        auto mine = ShmQueryCache::attach(seg.name);
        for (std::uint64_t i = static_cast<std::uint64_t>(c);
             i < kUniverse; i += 2)  // slices overlap across children
          mine->insert(canonicalKey(i), canonicalResult(i));
        for (std::uint64_t i = 0; i < kUniverse; ++i) {
          const auto hit = mine->lookup(canonicalKey(i));
          if (hit && *hit != canonicalResult(i)) _exit(3);
        }
      } catch (...) {
        _exit(4);
      }
      _exit(0);
    }
    children.push_back(pid);
  }
  for (const pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0)
        << "child observed a fabricated or torn value";
  }

  // Parent verification over the whole table: every published entry is
  // canonical, every canonical entry (the slices covered all of them)
  // is present, and counters are coherent.
  std::map<SharedQueryKey, SharedQueryResult> canon;
  for (std::uint64_t i = 0; i < kUniverse; ++i)
    canon.emplace(canonicalKey(i), canonicalResult(i));
  const auto entries = cache->sortedEntries();
  EXPECT_EQ(entries.size(), kUniverse);
  EXPECT_EQ(cache->entries(), kUniverse);
  for (const auto& [key, result] : entries) {
    const auto want = canon.find(key);
    ASSERT_NE(want, canon.end()) << "store invented a key";
    EXPECT_EQ(result, want->second);
  }
}

TEST(ShmCacheRejectionTest, MissingSegment) {
  EXPECT_FALSE(ShmQueryCache::segmentExists("/sde_shmtest_never_created"));
  EXPECT_THROW((void)ShmQueryCache::attach("/sde_shmtest_never_created"),
               ShmCacheError);
}

TEST(ShmCacheRejectionTest, TruncatedBelowHeader) {
  const ScopedSegment seg(freshName("tiny"));
  const int fd = ::shm_open(seg.name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 16), 0);
  ::close(fd);
  EXPECT_TRUE(ShmQueryCache::segmentExists(seg.name));
  EXPECT_THROW((void)ShmQueryCache::attach(seg.name), ShmCacheError);
}

TEST(ShmCacheRejectionTest, ForeignBytesAreNotACache) {
  const ScopedSegment seg(freshName("foreign"));
  const int fd = ::shm_open(seg.name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 4096), 0);
  void* base = ::mmap(nullptr, 4096, PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(base, MAP_FAILED);
  std::memcpy(base, "GARBAGEGARBAGE", 14);
  ::munmap(base, 4096);
  ::close(fd);
  EXPECT_THROW((void)ShmQueryCache::attach(seg.name), ShmCacheError);
}

TEST(ShmCacheRejectionTest, LayoutVersionMismatch) {
  const ScopedSegment seg(freshName("version"));
  { auto cache = ShmQueryCache::create(seg.name); }

  // Poke the version field (a u32 right after the 8-byte magic) to a
  // future value: a valid segment of a DIFFERENT build must be refused,
  // never reinterpreted.
  const int fd = ::shm_open(seg.name.c_str(), O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  void* base = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(base, MAP_FAILED);
  const std::uint32_t bogus = 999;
  std::memcpy(static_cast<char*>(base) + 8, &bogus, sizeof(bogus));
  ::munmap(base, 4096);
  ::close(fd);

  EXPECT_THROW((void)ShmQueryCache::attach(seg.name), ShmCacheError);
}

TEST(ShmCacheRejectionTest, TornGeometryAfterTruncation) {
  const ScopedSegment seg(freshName("torn"));
  { auto cache = ShmQueryCache::create(seg.name); }

  // Shrink the file under the advertised geometry: the header survives
  // but the table no longer fits — attach must refuse (probing the lost
  // tail would SIGBUS).
  const int fd = ::shm_open(seg.name.c_str(), O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 8192), 0);
  ::close(fd);
  EXPECT_THROW((void)ShmQueryCache::attach(seg.name), ShmCacheError);
}

TEST(ShmCacheRejectionTest, NeverInitializedCreatorCrash) {
  const ScopedSegment seg(freshName("unready"));
  // Simulate a creator killed between ftruncate and the ready marker: a
  // right-sized, all-zero segment. Magic check fails first — the
  // outcome is the same ShmCacheError degrade path.
  const int fd = ::shm_open(seg.name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 1 << 20), 0);
  ::close(fd);
  EXPECT_THROW((void)ShmQueryCache::attach(seg.name), ShmCacheError);
}

}  // namespace
}  // namespace sde::solver
