#include <gtest/gtest.h>

#include "solver/independence.hpp"

namespace sde::solver {
namespace {

class IndependenceTest : public ::testing::Test {
 protected:
  expr::Context ctx;
  expr::Ref a = ctx.variable("a", 8);
  expr::Ref b = ctx.variable("b", 8);
  expr::Ref c = ctx.variable("c", 8);
  expr::Ref d = ctx.variable("d", 8);

  expr::Ref lt(expr::Ref v, int k) { return ctx.ult(v, ctx.constant(k, 8)); }
};

TEST_F(IndependenceTest, SliceKeepsOnlyConnectedConstraints) {
  std::vector<expr::Ref> cs = {lt(a, 5), lt(b, 5), lt(c, 5)};
  const auto slice = sliceForQuery(ctx, cs, ctx.eq(a, ctx.constant(1, 8)));
  ASSERT_EQ(slice.size(), 1u);
  EXPECT_EQ(slice[0], cs[0]);
}

TEST_F(IndependenceTest, SliceFollowsTransitiveLinks) {
  // a~b via first constraint, b~c via second; query on a pulls all three
  // links but leaves d alone.
  std::vector<expr::Ref> cs = {ctx.ult(a, b), ctx.ult(b, c), lt(d, 9)};
  const auto slice = sliceForQuery(ctx, cs, ctx.eq(a, ctx.constant(0, 8)));
  EXPECT_EQ(slice.size(), 2u);
}

TEST_F(IndependenceTest, SliceEmptyWhenQueryDisjoint) {
  std::vector<expr::Ref> cs = {lt(a, 5), lt(b, 5)};
  const auto slice = sliceForQuery(ctx, cs, ctx.eq(c, ctx.constant(1, 8)));
  EXPECT_TRUE(slice.empty());
}

TEST_F(IndependenceTest, SlicePreservesOriginalOrder) {
  std::vector<expr::Ref> cs = {lt(a, 9), lt(b, 9), ctx.ult(a, b)};
  const auto slice = sliceForQuery(ctx, cs, ctx.eq(b, ctx.constant(1, 8)));
  ASSERT_EQ(slice.size(), 3u);
  EXPECT_EQ(slice[0], cs[0]);
  EXPECT_EQ(slice[1], cs[1]);
  EXPECT_EQ(slice[2], cs[2]);
}

TEST_F(IndependenceTest, SplitComponentsPartitions) {
  std::vector<expr::Ref> cs = {lt(a, 5), lt(b, 6), ctx.ult(a, c), lt(d, 7)};
  const auto comps = splitComponents(ctx, cs);
  ASSERT_EQ(comps.size(), 3u);
  // Component containing `a` also contains the a<c link.
  EXPECT_EQ(comps[0].size(), 2u);
  EXPECT_EQ(comps[1].size(), 1u);
  EXPECT_EQ(comps[2].size(), 1u);
}

TEST_F(IndependenceTest, SplitComponentsOnEmptyInput) {
  const auto comps = splitComponents(ctx, {});
  EXPECT_TRUE(comps.empty());
}

TEST_F(IndependenceTest, SplitSingleComponentWhenFullyConnected) {
  std::vector<expr::Ref> cs = {ctx.ult(a, b), ctx.ult(b, c), ctx.ult(c, d)};
  const auto comps = splitComponents(ctx, cs);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 3u);
}

}  // namespace
}  // namespace sde::solver
