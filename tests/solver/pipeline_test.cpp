// The layered solver pipeline: canonical-key hygiene, the subsumption
// stores, per-layer counters, pipeline-vs-monolithic equivalence, and
// the cross-worker SharedQueryCache (including the concurrent
// never-fabricates-a-result property).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <thread>
#include <vector>

#include "solver/shared_cache.hpp"
#include "solver/solver.hpp"

namespace sde::solver {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  expr::Context ctx;
  expr::Ref x = ctx.variable("x", 8);
  expr::Ref y = ctx.variable("y", 8);

  expr::Ref k(int v) { return ctx.constant(v, 8); }
};

// --- Canonical key hygiene (trivially-true conjuncts) ------------------------

TEST_F(PipelineTest, TrueConjunctsDoNotChangeTheQueryKey) {
  const std::vector<expr::Ref> bare{ctx.ult(x, k(5))};
  const std::vector<expr::Ref> padded{ctx.ult(x, k(5)), ctx.trueExpr()};
  const std::vector<expr::Ref> paddedFront{ctx.trueExpr(), ctx.ult(x, k(5)),
                                           ctx.trueExpr()};
  const QueryKey key = makeQueryKey(bare);
  EXPECT_EQ(key, makeQueryKey(padded));
  EXPECT_EQ(key, makeQueryKey(paddedFront));
  EXPECT_EQ(key.size(), 1u);
}

TEST_F(PipelineTest, TautologyPaddedQueriesShareOneCacheEntry) {
  QueryCache cache;
  const std::vector<expr::Ref> bare{ctx.ult(x, k(5))};
  const std::vector<expr::Ref> padded{ctx.ult(x, k(5)), ctx.trueExpr()};
  EnumResult result{EnumStatus::kSat, {}};
  result.model.set(x, 0);
  cache.insert(makeQueryKey(bare), result);
  EXPECT_EQ(cache.size(), 1u);
  // The padded spelling maps to the same entry: a hit, no second slot.
  ASSERT_NE(cache.lookup(makeQueryKey(padded)), nullptr);
  cache.insert(makeQueryKey(padded), result);
  EXPECT_EQ(cache.size(), 1u);
}

// --- Subsumption stores ------------------------------------------------------

TEST_F(PipelineTest, UnsatSubsetSubsumesSupersetQueries) {
  QueryCache cache;
  const std::vector<expr::Ref> core{ctx.ult(x, k(5)), ctx.ult(k(5), x)};
  cache.insert(makeQueryKey(core), {EnumStatus::kUnsat, {}});

  std::vector<expr::Ref> superset = core;
  superset.push_back(ctx.ult(y, k(3)));
  EXPECT_TRUE(cache.subsumesUnsat(makeQueryKey(superset)));

  // A disjoint query and a strict *subset* of the UNSAT key are not
  // subsumed (the subset might well be satisfiable).
  const std::vector<expr::Ref> disjoint{ctx.ult(y, k(3))};
  const std::vector<expr::Ref> subset{ctx.ult(x, k(5))};
  EXPECT_FALSE(cache.subsumesUnsat(makeQueryKey(disjoint)));
  EXPECT_FALSE(cache.subsumesUnsat(makeQueryKey(subset)));
}

TEST_F(PipelineTest, PoolModelsAnswerLaterCompatibleQueries) {
  QueryCache cache(/*maxRecentModels=*/0, /*maxPoolModels=*/64);
  EnumResult solved{EnumStatus::kSat, {}};
  solved.model.set(x, 3);
  const std::vector<expr::Ref> pinned{ctx.eq(x, k(3))};
  cache.insert(makeQueryKey(pinned), solved);
  EXPECT_EQ(cache.numPoolModels(), 1u);
  // The recent window is disabled, so a hit can only come from the pool.
  const std::vector<expr::Ref> compatible{ctx.ult(x, k(10))};
  EXPECT_EQ(cache.reuseModel(ctx, compatible), std::nullopt);
  const auto model = cache.reusePoolModel(ctx, compatible);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->get(x), std::optional<std::uint64_t>(3));
  // A model that violates the query is never returned.
  const std::vector<expr::Ref> violated{ctx.eq(x, k(4))};
  EXPECT_EQ(cache.reusePoolModel(ctx, violated), std::nullopt);
}

// --- Per-layer counters ------------------------------------------------------

TEST_F(PipelineTest, EveryLayerReportsTrafficThroughStats) {
  Solver solver(ctx);
  ConstraintSet cs;
  cs.add(ctx.ult(x, k(5)));
  cs.add(ctx.ult(k(5), x));  // UNSAT pair
  EXPECT_FALSE(solver.mayBeTrue(cs, ctx.trueExpr()));
  EXPECT_FALSE(solver.mayBeTrue(cs, ctx.trueExpr()));  // cache hit
  ConstraintSet sat;
  sat.add(ctx.ult(x, k(5)));
  EXPECT_TRUE(solver.mayBeTrue(sat, ctx.eq(x, k(2))));

  for (const auto& layer : solver.pipeline().layers()) {
    const std::string prefix = "solver.layer." + std::string(layer->name());
    EXPECT_GT(solver.stats().get(prefix + ".queries"), 0u)
        << "no traffic through layer " << layer->name();
    EXPECT_EQ(solver.stats().get(prefix + ".queries"),
              layer->counters().queries);
    EXPECT_EQ(solver.stats().get(prefix + ".hits"), layer->counters().hits);
  }
  // The exact cache answered the repeated query; enumeration answered
  // the first.
  EXPECT_GT(solver.stats().get("solver.layer.exact_cache.hits"), 0u);
  EXPECT_GT(solver.stats().get("solver.layer.enumerate.hits"), 0u);
}

// --- Pipeline vs monolithic differential -------------------------------------

TEST_F(PipelineTest, PipelineMatchesMonolithicOnRandomQueries) {
  SolverConfig monolithic;
  monolithic.usePipeline = false;
  // The subsumption layers are pipeline-only; disable them so the two
  // solvers run the same algorithms (the full-stack equivalence is
  // covered end-to-end by tests/sde/parallel_equivalence_test.cpp).
  monolithic.useSubsumption = false;
  SolverConfig layered;
  layered.useSubsumption = false;
  Solver a(ctx, layered);
  Solver b(ctx, monolithic);

  std::mt19937 rng(20260807);
  std::uniform_int_distribution<int> val(0, 12);
  std::uniform_int_distribution<int> pick(0, 3);
  for (int round = 0; round < 200; ++round) {
    ConstraintSet cs;
    const int n = 1 + pick(rng);
    for (int i = 0; i < n; ++i) {
      expr::Ref var = (pick(rng) % 2 == 0) ? x : y;
      expr::Ref c = k(val(rng));
      switch (pick(rng)) {
        case 0: cs.add(ctx.ult(var, c)); break;
        case 1: cs.add(ctx.ult(c, var)); break;
        case 2: cs.add(ctx.eq(var, c)); break;
        default: cs.add(ctx.ne(var, c)); break;
      }
    }
    expr::Ref cond = ctx.ult(x, k(val(rng)));
    EXPECT_EQ(a.mayBeTrue(cs, cond), b.mayBeTrue(cs, cond)) << "round "
                                                            << round;
    EXPECT_EQ(a.classify(cs, cond), b.classify(cs, cond)) << "round "
                                                          << round;
    EXPECT_EQ(a.getValue(cs, x), b.getValue(cs, x)) << "round " << round;
    const auto ma = a.getModel(cs);
    const auto mb = b.getModel(cs);
    ASSERT_EQ(ma.has_value(), mb.has_value()) << "round " << round;
    if (ma.has_value())
      EXPECT_EQ(ma->entries(), mb->entries()) << "round " << round;
  }
}

// --- SharedQueryCache --------------------------------------------------------

TEST_F(PipelineTest, SharedCacheRoundTripsAcrossContexts) {
  SharedQueryCache shared;
  Solver producer(ctx);
  producer.setSharedCache(&shared);
  ConstraintSet cs;
  cs.add(ctx.ult(x, k(5)));
  EXPECT_TRUE(producer.mayBeTrue(cs, ctx.eq(x, k(2))));
  EXPECT_GT(shared.inserts(), 0u);

  // A second worker with its *own* context poses the same conjunction
  // and is answered from the shared cache, not by enumeration.
  expr::Context ctx2;
  Solver consumer(ctx2, {});
  consumer.setSharedCache(&shared);
  expr::Ref x2 = ctx2.variable("x", 8);
  ConstraintSet cs2;
  cs2.add(ctx2.ult(x2, ctx2.constant(5, 8)));
  EXPECT_TRUE(consumer.mayBeTrue(cs2, ctx2.eq(x2, ctx2.constant(2, 8))));
  EXPECT_GT(consumer.stats().get("solver.shared_hits"), 0u);
  EXPECT_EQ(consumer.stats().get("solver.enum_runs"), 0u);
}

TEST_F(PipelineTest, SharedCacheFirstWriterWins) {
  SharedQueryCache shared;
  const SharedQueryKey key{42};
  shared.insert(key, {EnumStatus::kUnsat, {}});
  SharedQueryResult rival{EnumStatus::kSat, {{"x", 8, 1}}};
  shared.insert(key, rival);
  const auto held = shared.lookup(key);
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->status, EnumStatus::kUnsat);
  EXPECT_EQ(shared.size(), 1u);
}

// Property: under concurrent insert/lookup the cache never returns a
// result for a key no worker actually solved (published), and what it
// returns is exactly what was published for that key.
TEST_F(PipelineTest, SharedCacheNeverFabricatesResultsUnderConcurrency) {
  SharedQueryCache shared(/*shards=*/8);
  constexpr std::uint64_t kUniverse = 512;  // keys {0..511}
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;

  // The canonical value for key {i} — deterministic, so every writer
  // publishes the same result (the invariant the real pipeline upholds).
  const auto valueFor = [](std::uint64_t i) {
    SharedQueryResult r;
    r.status = (i % 3 == 0) ? EnumStatus::kUnsat : EnumStatus::kSat;
    if (r.status == EnumStatus::kSat)
      r.model.push_back({"v" + std::to_string(i), 8, i & 0xff});
    return r;
  };

  // Each writer publishes a pseudo-random half of the universe.
  std::vector<std::vector<std::uint64_t>> published(kWriters);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      std::mt19937_64 rng(1000 + w);
      for (int i = 0; i < 2000; ++i) {
        const std::uint64_t key = rng() % kUniverse;
        shared.insert({key}, valueFor(key));
        published[w].push_back(key);
      }
    });
  }
  // Readers record every hit they observe.
  std::vector<std::vector<std::pair<std::uint64_t, SharedQueryResult>>> hits(
      kReaders);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(9000 + r);
      for (int i = 0; i < 4000; ++i) {
        const std::uint64_t key = rng() % kUniverse;
        if (const auto result = shared.lookup({key}))
          hits[r].emplace_back(key, *result);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<bool> wasPublished(kUniverse, false);
  for (const auto& keys : published)
    for (const std::uint64_t key : keys) wasPublished[key] = true;
  for (const auto& readerHits : hits) {
    for (const auto& [key, result] : readerHits) {
      ASSERT_LT(key, kUniverse);
      EXPECT_TRUE(wasPublished[key])
          << "lookup returned a result for key " << key
          << " that no writer published";
      EXPECT_EQ(result, valueFor(key)) << "key " << key;
    }
  }
  // Sanity: the property was actually exercised.
  std::size_t totalHits = 0;
  for (const auto& readerHits : hits) totalHits += readerHits.size();
  EXPECT_GT(totalHits, 0u);
}

}  // namespace
}  // namespace sde::solver
