// QueryCache property tests (the cache is shared-nothing per worker in
// the parallel execution mode and merged at the barrier, so its two
// soundness properties carry the whole design):
//  1. A model returned by reuseModel ALWAYS satisfies the query it was
//     reused for — reuse is verified by evaluation, never assumed.
//  2. mergeFrom never fabricates a result: every key in the merged
//     cache was solved by one of the inputs, with an equal result, and
//     dropped constraint sets stay absent.
#include <gtest/gtest.h>

#include <vector>

#include "solver/cache.hpp"
#include "solver/solver.hpp"
#include "support/rng.hpp"

namespace sde::solver {
namespace {

// Random conjunctions over a small pool of narrow variables: satisfiable
// often, unsatisfiable sometimes, with heavy key overlap across draws.
class QueryGen {
 public:
  QueryGen(expr::Context& ctx, std::uint64_t seed) : ctx_(ctx), rng_(seed) {
    for (int i = 0; i < 4; ++i)
      vars_.push_back(ctx_.variable("q" + std::to_string(i), 4));
  }

  std::vector<expr::Ref> query() {
    std::vector<expr::Ref> constraints;
    const std::uint64_t count = 1 + rng_.below(4);
    for (std::uint64_t i = 0; i < count; ++i) {
      expr::Ref var = vars_[rng_.below(vars_.size())];
      expr::Ref bound = ctx_.constant(rng_.below(16), 4);
      switch (rng_.below(4)) {
        case 0:
          constraints.push_back(ctx_.ult(var, bound));
          break;
        case 1:
          constraints.push_back(ctx_.uge(var, bound));
          break;
        case 2:
          constraints.push_back(ctx_.eq(var, bound));
          break;
        default:
          constraints.push_back(
              ctx_.ne(ctx_.bvXor(var, vars_[rng_.below(vars_.size())]),
                      bound));
          break;
      }
    }
    return constraints;
  }

 private:
  expr::Context& ctx_;
  support::Rng rng_;
  std::vector<expr::Ref> vars_;
};

bool satisfies(std::span<const expr::Ref> constraints,
               const expr::Assignment& model) {
  for (expr::Ref c : constraints)
    if (expr::evaluate(c, model) == 0) return false;
  return true;
}

TEST(CachePropertyTest, ReusedModelAlwaysSatisfiesTheNewQuery) {
  expr::Context ctx;
  Solver solver(ctx);
  QueryGen gen(ctx, 99);

  int reuses = 0;
  for (int round = 0; round < 300; ++round) {
    const std::vector<expr::Ref> constraints = gen.query();
    // Populate the recent-model pool through the solver's own path.
    solver::ConstraintSet set;
    for (expr::Ref c : constraints) set.add(c);
    (void)solver.getModel(set);

    // Property: whatever model the cache offers for the NEXT query must
    // satisfy it, even though it was found for a different query.
    const std::vector<expr::Ref> next = gen.query();
    if (const auto reused = solver.cache().reuseModel(ctx, next)) {
      ++reuses;
      EXPECT_TRUE(satisfies(next, *reused)) << "round " << round;
    }
  }
  // The workload overlaps heavily, so reuse must actually trigger —
  // otherwise the property above was vacuous.
  EXPECT_GT(reuses, 10);
}

TEST(CachePropertyTest, MergeNeverFabricatesResults) {
  expr::Context ctx;
  QueryGen gen(ctx, 7);

  QueryCache a;
  QueryCache b;
  std::vector<QueryKey> keysA;
  std::vector<QueryKey> keysB;
  std::vector<QueryKey> dropped;  // solved by NO cache

  const auto solve = [&](const std::vector<expr::Ref>& constraints) {
    return enumerateModels(ctx, constraints, expr::IntervalEnv{});
  };

  for (int i = 0; i < 60; ++i) {
    const auto constraints = gen.query();
    const QueryKey key = makeQueryKey(constraints);
    switch (i % 3) {
      case 0:
        a.insert(key, solve(constraints));
        keysA.push_back(key);
        break;
      case 1:
        b.insert(key, solve(constraints));
        keysB.push_back(key);
        break;
      default:
        dropped.push_back(key);
        break;
    }
  }

  QueryCache merged;
  merged.mergeFrom(a);
  merged.mergeFrom(b);

  // Every input key survives with a result equal to an input's result.
  for (const QueryKey& key : keysA) {
    const EnumResult* inA = a.lookup(key);
    const EnumResult* got = merged.lookup(key);
    ASSERT_NE(got, nullptr);
    ASSERT_NE(inA, nullptr);
    EXPECT_EQ(got->status, inA->status);
  }
  for (const QueryKey& key : keysB) {
    const EnumResult* got = merged.lookup(key);
    ASSERT_NE(got, nullptr);
    const EnumResult* inA = a.lookup(key);
    const EnumResult* inB = b.lookup(key);
    ASSERT_TRUE(inA != nullptr || inB != nullptr);
    // Same canonical key => same logical query => statuses agree
    // whichever input won the merge.
    EXPECT_EQ(got->status, (inA != nullptr ? inA : inB)->status);
  }
  // Dropped constraint sets were never solved: the merge must not
  // resurrect them from the recent-model pool or anywhere else.
  for (const QueryKey& key : dropped) {
    if (a.lookup(key) != nullptr || b.lookup(key) != nullptr)
      continue;  // the generator can re-draw an inserted query
    EXPECT_EQ(merged.lookup(key), nullptr);
  }
  EXPECT_EQ(merged.size(), a.size() + b.size() -
                               [&] {
                                 std::size_t overlap = 0;
                                 for (const QueryKey& key : keysB)
                                   if (a.lookup(key) != nullptr) ++overlap;
                                 return overlap;
                               }());

  // The recent-model retention bound survives merging.
  EXPECT_LE(merged.numRecentModels(), 8u);
}

}  // namespace
}  // namespace sde::solver
