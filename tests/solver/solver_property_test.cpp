// Property tests: the stacked solver must agree with ground-truth brute
// force enumeration on randomly generated small-domain constraint sets.
#include <gtest/gtest.h>

#include <vector>

#include "expr/eval.hpp"
#include "solver/solver.hpp"
#include "support/rng.hpp"

namespace sde::solver {
namespace {

// Ground truth: enumerate all assignments of `vars` (4-bit domains) and
// report whether any satisfies every constraint.
bool bruteForceSat(const std::vector<expr::Ref>& vars,
                   const std::vector<expr::Ref>& constraints) {
  const std::size_t n = vars.size();
  const std::uint64_t total = 1ULL << (4 * n);
  for (std::uint64_t enc = 0; enc < total; ++enc) {
    expr::Assignment a;
    for (std::size_t i = 0; i < n; ++i) a.set(vars[i], (enc >> (4 * i)) & 0xf);
    bool ok = true;
    for (expr::Ref c : constraints)
      if (expr::evaluate(c, a) == 0) {
        ok = false;
        break;
      }
    if (ok) return true;
  }
  return false;
}

class RandomConstraintGen {
 public:
  RandomConstraintGen(expr::Context& ctx, support::Rng& rng)
      : ctx_(ctx), rng_(rng) {
    for (int i = 0; i < 3; ++i)
      vars_.push_back(ctx_.variable("q" + std::to_string(i), 4));
  }

  const std::vector<expr::Ref>& vars() const { return vars_; }

  expr::Ref term(int depth) {
    if (depth == 0 || rng_.chance(0.4)) {
      if (rng_.chance(0.5)) return vars_[rng_.below(vars_.size())];
      return ctx_.constant(rng_.below(16), 4);
    }
    expr::Ref a = term(depth - 1);
    expr::Ref b = term(depth - 1);
    switch (rng_.below(5)) {
      case 0:
        return ctx_.add(a, b);
      case 1:
        return ctx_.sub(a, b);
      case 2:
        return ctx_.bvAnd(a, b);
      case 3:
        return ctx_.bvXor(a, b);
      default:
        return ctx_.mul(a, b);
    }
  }

  expr::Ref comparison() {
    expr::Ref a = term(2);
    expr::Ref b = term(2);
    switch (rng_.below(4)) {
      case 0:
        return ctx_.eq(a, b);
      case 1:
        return ctx_.ne(a, b);
      case 2:
        return ctx_.ult(a, b);
      default:
        return ctx_.ule(a, b);
    }
  }

 private:
  expr::Context& ctx_;
  support::Rng& rng_;
  std::vector<expr::Ref> vars_;
};

class SolverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverPropertyTest, AgreesWithBruteForce) {
  expr::Context ctx;
  support::Rng rng(GetParam());
  RandomConstraintGen gen(ctx, rng);
  Solver solver(ctx);

  for (int round = 0; round < 40; ++round) {
    std::vector<expr::Ref> raw;
    ConstraintSet cs;
    bool triviallyFalse = false;
    const int n = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < n; ++i) {
      expr::Ref c = gen.comparison();
      raw.push_back(c);
      if (cs.add(c) == ConstraintSet::AddResult::kTriviallyFalse)
        triviallyFalse = true;
    }
    const bool expected = bruteForceSat(gen.vars(), raw);
    const bool actual =
        !triviallyFalse && solver.mayBeTrue(cs, ctx.trueExpr());
    EXPECT_EQ(actual, expected) << "seed=" << GetParam()
                                << " round=" << round;
  }
}

TEST_P(SolverPropertyTest, ModelsActuallySatisfy) {
  expr::Context ctx;
  support::Rng rng(GetParam() ^ 0x99ULL);
  RandomConstraintGen gen(ctx, rng);
  Solver solver(ctx);

  for (int round = 0; round < 40; ++round) {
    ConstraintSet cs;
    bool triviallyFalse = false;
    const int n = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < n; ++i)
      if (cs.add(gen.comparison()) ==
          ConstraintSet::AddResult::kTriviallyFalse)
        triviallyFalse = true;
    if (triviallyFalse) continue;

    const auto model = solver.getModel(cs);
    if (!model) continue;  // UNSAT: checked by the other property
    expr::Assignment complete = *model;
    for (expr::Ref v : gen.vars())
      if (!complete.get(v)) complete.set(v, 0);
    for (expr::Ref c : cs.items())
      EXPECT_EQ(expr::evaluate(c, complete), 1u)
          << "seed=" << GetParam() << " round=" << round;
  }
}

TEST_P(SolverPropertyTest, MustAndMayAreConsistent) {
  expr::Context ctx;
  support::Rng rng(GetParam() ^ 0x777ULL);
  RandomConstraintGen gen(ctx, rng);
  Solver solver(ctx);

  for (int round = 0; round < 30; ++round) {
    ConstraintSet cs;
    if (cs.add(gen.comparison()) ==
        ConstraintSet::AddResult::kTriviallyFalse)
      continue;
    expr::Ref q = gen.comparison();
    const bool may = solver.mayBeTrue(cs, q);
    const bool must = solver.mustBeTrue(cs, q);
    // mustBeTrue implies mayBeTrue whenever the constraints are
    // satisfiable at all.
    if (solver.mayBeTrue(cs, ctx.trueExpr()) && must) {
      EXPECT_TRUE(may);
    }
    // classify must agree with the two primitive queries.
    const Validity v = solver.classify(cs, q);
    if (v == Validity::kTrue) {
      EXPECT_TRUE(must);
    }
    if (v == Validity::kFalse) {
      EXPECT_FALSE(may);
    }
    if (v == Validity::kUnknown) {
      EXPECT_TRUE(may);
      EXPECT_FALSE(must);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

}  // namespace
}  // namespace sde::solver
