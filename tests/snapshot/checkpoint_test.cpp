// Single-engine checkpoint/restore (checkpoint.hpp format, all layers).
//
// The correctness bar is ISSUE-level: a run suspended at an arbitrary
// point and restored into a freshly constructed engine must finish
// indistinguishably from the uninterrupted run — same states (by
// configuration hash), same dscenario universe, same event count, same
// statistics. Framing is tested separately: version header rejection,
// magic rejection, truncation.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sde/explode.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/error.hpp"
#include "support/pvector.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

// COB's state count is the full cross product, so it runs on a smaller
// grid (as everywhere else in the suite); COW/SDS get the paper's 5x5.
trace::CollectScenarioConfig smallGrid(MapperKind mapper,
                                       std::uint64_t simulationTime) {
  trace::CollectScenarioConfig config;
  const std::uint32_t side = mapper == MapperKind::kCob ? 3 : 5;
  config.gridWidth = side;
  config.gridHeight = side;
  config.simulationTime = simulationTime;
  config.mapper = mapper;
  return config;
}

std::set<std::uint64_t> configHashes(const Engine& engine) {
  std::set<std::uint64_t> hashes;
  for (const auto& state : engine.states()) hashes.insert(state->configHash());
  return hashes;
}

std::string checkpointBlob(const Engine& engine) {
  std::ostringstream out(std::ios::binary);
  engine.checkpoint(out);
  return out.str();
}

class CheckpointTest : public ::testing::TestWithParam<MapperKind> {};

TEST_P(CheckpointTest, SuspendRestoreMatchesUninterrupted) {
  const auto config = smallGrid(GetParam(), 4000);

  // Reference: one uninterrupted run to the horizon.
  trace::CollectScenario reference(config);
  ASSERT_EQ(reference.run().outcome, RunOutcome::kCompleted);
  Engine& uninterrupted = reference.engine();

  // Suspended run: stop halfway, checkpoint, and restore into a freshly
  // constructed (identically configured) engine.
  trace::CollectScenario suspended(config);
  ASSERT_EQ(suspended.engine().run(2000), RunOutcome::kCompleted);
  const std::string blob = checkpointBlob(suspended.engine());

  trace::CollectScenario resumedScenario(config);
  Engine& resumed = resumedScenario.engine();
  {
    std::istringstream in(blob, std::ios::binary);
    resumed.restore(in);
  }
  EXPECT_EQ(resumed.numStates(), suspended.engine().numStates());
  EXPECT_EQ(resumed.virtualNow(), suspended.engine().virtualNow());
  // The v3 chunk tables must reproduce the structural-sharing classes
  // exactly: the restored engine's all-component memory accounting is
  // byte-identical to the suspended one *before* any further execution.
  EXPECT_EQ(resumed.simulatedMemoryBytes(),
            suspended.engine().simulatedMemoryBytes());
  ASSERT_EQ(resumed.run(config.simulationTime), RunOutcome::kCompleted);

  // Semantically lossless: the resumed run is indistinguishable from
  // the uninterrupted one.
  EXPECT_EQ(resumed.numStates(), uninterrupted.numStates());
  EXPECT_EQ(resumed.eventsProcessed(), uninterrupted.eventsProcessed());
  EXPECT_EQ(resumed.virtualNow(), uninterrupted.virtualNow());
  EXPECT_EQ(configHashes(resumed), configHashes(uninterrupted));
  EXPECT_EQ(countScenarios(resumed.mapper()),
            countScenarios(uninterrupted.mapper()));
  const auto resumedPrints = scenarioFingerprints(resumed.mapper());
  const auto referencePrints = scenarioFingerprints(uninterrupted.mapper());
  EXPECT_EQ(std::set<std::uint64_t>(resumedPrints.begin(),
                                    resumedPrints.end()),
            std::set<std::uint64_t>(referencePrints.begin(),
                                    referencePrints.end()));
  // Every statistic — engine, interpreter and solver — continues from
  // the restored value to the uninterrupted total (peak_memory_bytes
  // included: it is recomputed at run end and memory is monotone).
  EXPECT_EQ(resumed.stats().all(), uninterrupted.stats().all());
  EXPECT_EQ(resumed.interpStats().all(), uninterrupted.interpStats().all());
  EXPECT_EQ(resumed.solverStats().all(), uninterrupted.solverStats().all());
  EXPECT_EQ(resumed.simulatedMemoryBytes(),
            uninterrupted.simulatedMemoryBytes());

  // The suspended engine itself also finishes identically (the
  // checkpoint call must not perturb the run it snapshots).
  ASSERT_EQ(suspended.engine().run(config.simulationTime),
            RunOutcome::kCompleted);
  EXPECT_EQ(configHashes(suspended.engine()), configHashes(uninterrupted));
}

TEST_P(CheckpointTest, RestoreIsLosslessAtManySuspensionPoints) {
  // "Any checkpoint" means any: cut the same run at several virtual
  // times and check the resumed exploration converges each time.
  const auto config = smallGrid(GetParam(), 3000);
  trace::CollectScenario reference(config);
  ASSERT_EQ(reference.run().outcome, RunOutcome::kCompleted);
  const auto want = configHashes(reference.engine());

  for (const std::uint64_t cut : {std::uint64_t{1}, std::uint64_t{1200},
                                  std::uint64_t{2999}}) {
    trace::CollectScenario suspended(config);
    ASSERT_EQ(suspended.engine().run(cut), RunOutcome::kCompleted);
    const std::string blob = checkpointBlob(suspended.engine());

    trace::CollectScenario resumedScenario(config);
    std::istringstream in(blob, std::ios::binary);
    resumedScenario.engine().restore(in);
    ASSERT_EQ(resumedScenario.engine().run(config.simulationTime),
              RunOutcome::kCompleted);
    EXPECT_EQ(configHashes(resumedScenario.engine()), want)
        << "suspended at " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(Mappers, CheckpointTest,
                         ::testing::Values(MapperKind::kSds, MapperKind::kCow,
                                           MapperKind::kCob),
                         [](const auto& info) {
                           return std::string(mapperKindName(info.param));
                         });

// --- Memory-accounting invariants (persistent shared representation) ---------

class MemoryAccountingTest : public ::testing::TestWithParam<MapperKind> {};

TEST_P(MemoryAccountingTest, SharedAccountingIsBelowTheDeepCopyBaseline) {
  // The same scenario run under the legacy eager-copy representation is
  // the pre-change memory baseline; the persistent representation must
  // explore identically (digests) and account strictly less memory —
  // the tentpole's Table I claim.
  const auto config = smallGrid(GetParam(), 3000);

  trace::CollectScenario persistent(config);
  ASSERT_EQ(persistent.run().outcome, RunOutcome::kCompleted);
  const std::uint64_t sharedBytes = persistent.engine().simulatedMemoryBytes();

  support::ScopedDeepCopyMode legacy;
  trace::CollectScenario baseline(config);
  ASSERT_EQ(baseline.run().outcome, RunOutcome::kCompleted);
  const std::uint64_t deepBytes = baseline.engine().simulatedMemoryBytes();

  EXPECT_EQ(configHashes(persistent.engine()), configHashes(baseline.engine()));
  EXPECT_LT(sharedBytes, deepBytes);
  EXPECT_EQ(persistent.engine().stats().get("engine.peak_states"),
            baseline.engine().stats().get("engine.peak_states"));
}

TEST_P(MemoryAccountingTest, AccountingIsIndependentOfStateVisitOrder) {
  // The seen-map discipline bills each shared block to its first
  // visitor; the *total* must not depend on who that is.
  const auto config = smallGrid(GetParam(), 3000);
  trace::CollectScenario scenario(config);
  ASSERT_EQ(scenario.run().outcome, RunOutcome::kCompleted);

  std::vector<const vm::ExecutionState*> states;
  for (const auto& state : scenario.engine().states())
    states.push_back(state.get());

  const auto total = [&](auto begin, auto end) {
    std::map<const void*, std::uint64_t> seen;
    std::uint64_t bytes = 0;
    for (auto it = begin; it != end; ++it) bytes += (*it)->accountBytes(seen);
    return bytes;
  };
  const std::uint64_t forward = total(states.begin(), states.end());
  const std::uint64_t backward = total(states.rbegin(), states.rend());
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward, scenario.engine().simulatedMemoryBytes());
}

INSTANTIATE_TEST_SUITE_P(Mappers, MemoryAccountingTest,
                         ::testing::Values(MapperKind::kSds, MapperKind::kCow),
                         [](const auto& info) {
                           return std::string(mapperKindName(info.param));
                         });

TEST(CheckpointHeaderTest, InspectReportsTheRunSummary) {
  const auto config = smallGrid(MapperKind::kSds, 4000);
  trace::CollectScenario scenario(config);
  ASSERT_EQ(scenario.engine().run(2000), RunOutcome::kCompleted);
  std::ostringstream out(std::ios::binary);
  scenario.engine().checkpoint(out);

  std::istringstream in(out.str(), std::ios::binary);
  const snapshot::CheckpointInfo info = snapshot::inspectCheckpointHeader(in);
  EXPECT_EQ(info.version, snapshot::kCheckpointVersion);
  EXPECT_EQ(info.numNodes, 25u);
  EXPECT_EQ(info.mapper, "SDS");
  EXPECT_TRUE(info.booted);
  EXPECT_EQ(info.numStates, scenario.engine().numStates());
  EXPECT_EQ(info.virtualNow, scenario.engine().virtualNow());
  EXPECT_EQ(info.eventsProcessed, scenario.engine().eventsProcessed());
}

class CheckpointFramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = smallGrid(MapperKind::kSds, 2000);
    trace::CollectScenario scenario(config_);
    ASSERT_EQ(scenario.engine().run(1000), RunOutcome::kCompleted);
    std::ostringstream out(std::ios::binary);
    scenario.engine().checkpoint(out);
    blob_ = out.str();
  }

  // What the restore path says about a (possibly corrupted) blob.
  std::string restoreError(const std::string& blob) {
    trace::CollectScenario fresh(config_);
    std::istringstream in(blob, std::ios::binary);
    try {
      fresh.engine().restore(in);
    } catch (const snapshot::SnapshotError& error) {
      return error.what();
    }
    return {};
  }

  trace::CollectScenarioConfig config_;
  std::string blob_;
};

TEST_F(CheckpointFramingTest, UnknownVersionIsRejectedWithAClearError) {
  // The version is the little-endian u32 right after the 8-byte magic.
  std::string patched = blob_;
  patched[8] = '\xff';
  patched[9] = '\xff';
  patched[10] = 0;
  patched[11] = 0;
  const std::string message = restoreError(patched);
  EXPECT_NE(message.find("unsupported checkpoint version"), std::string::npos)
      << "actual error: " << message;
  EXPECT_NE(message.find("this build reads"), std::string::npos)
      << "actual error: " << message;

  std::istringstream in(patched, std::ios::binary);
  EXPECT_THROW(snapshot::inspectCheckpointHeader(in), snapshot::SnapshotError);
}

TEST_F(CheckpointFramingTest, ForeignFilesAreRejected) {
  std::string patched = blob_;
  patched[0] = 'X';
  EXPECT_NE(restoreError(patched).find("not an SDE checkpoint"),
            std::string::npos);
  // A plain-text file is not a checkpoint either.
  EXPECT_FALSE(restoreError("hello, this is not a checkpoint\n").empty());
}

TEST_F(CheckpointFramingTest, TruncationIsDetected) {
  // Any prefix must fail loudly — the trailer magic guards the tail, a
  // short read anywhere else throws from the Reader.
  for (const std::size_t keep :
       {blob_.size() / 4, blob_.size() / 2, blob_.size() - 3}) {
    EXPECT_FALSE(restoreError(blob_.substr(0, keep)).empty())
        << "prefix of " << keep << " bytes";
  }
}

}  // namespace
}  // namespace sde
