// Crash tolerance of the durable parallel runner (ISSUE acceptance:
// killing a worker mid-job and resuming from the manifest completes the
// run with the correct digest and never re-runs completed jobs).
//
// Two attack angles:
//  - A deterministic variant drives the resume path directly through
//    runPartitioned with a counting engine factory, proving .done jobs
//    are loaded from disk (factory never invoked) while a job whose
//    completion marker is missing is re-executed.
//  - A genuine kill: fork() a child running the durable fleet, SIGKILL
//    it as soon as checkpoint artifacts appear, then resume in-process.
//    fork()+SIGKILL is skipped under sanitizers (their runtimes are not
//    async-kill-safe); each gtest binary runs one process per test via
//    ctest, so forking here cannot disturb sibling tests.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <string>
#include <thread>

#include <unistd.h>

#include "snapshot/manifest.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

namespace fs = std::filesystem;

trace::CollectScenarioConfig smallGrid(MapperKind mapper,
                                       std::uint64_t simulationTime) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = simulationTime;
  config.mapper = mapper;
  return config;
}

fs::path freshRunDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("sde_" + name);
  fs::remove_all(dir);
  return dir;
}

bool sanitizersActive() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

TEST(CrashRecoveryTest, CompletedJobsAreNeverReRun) {
  const auto config = smallGrid(MapperKind::kSds, 4000);
  const fs::path dir = freshRunDir("done_skip");

  // Durable run to completion: every job leaves a .done marker.
  ParallelConfig durable;
  durable.workers = 2;
  durable.checkpointDir = dir.string();
  const trace::PartitionedCollectResult full =
      trace::runCollectPartitioned(config, durable, /*vars=*/2);
  ASSERT_EQ(full.result.outcome, RunOutcome::kCompleted);
  const std::uint64_t want = full.result.fingerprintDigest();
  ASSERT_EQ(full.result.jobs.size(), 4u);

  // Simulate a worker killed after finishing every job but #2: drop
  // that job's completion marker.
  ASSERT_TRUE(fs::remove(snapshot::jobDonePath(dir, 2)));

  // Resume through the raw runner so the engine factory can count how
  // often a job is actually re-executed. The manifest was recorded by
  // runCollectPartitioned, so the raw resume must present the identical
  // run identity (spec, horizon, plan).
  trace::CollectScenario scenario(config);
  const PartitionPlan plan = planPartitions(scenario.partitionVariables(2));
  ParallelConfig resume;
  resume.workers = 2;
  resume.horizon = config.simulationTime;
  resume.checkpointDir = dir.string();
  resume.resume = true;
  resume.scenarioSpec = trace::encodeCollectScenarioSpec(config, 2);

  std::atomic<int> factoryCalls{0};
  std::atomic<std::uint32_t> lastRebuilt{~0u};
  const EngineFactory base = scenario.engineFactory();
  const ParallelResult resumed = runPartitioned(
      [&](const PartitionJob& job) {
        ++factoryCalls;
        lastRebuilt = job.id;
        return base(job);
      },
      plan, resume);

  // Only the job whose marker vanished was rebuilt; the other three
  // were answered from their .done files.
  EXPECT_EQ(factoryCalls.load(), 1);
  EXPECT_EQ(lastRebuilt.load(), 2u);
  EXPECT_EQ(resumed.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(resumed.fingerprintDigest(), want);
  fs::remove_all(dir);
}

TEST(CrashRecoveryTest, KilledWorkerFleetResumesFromTheManifest) {
  if (sanitizersActive())
    GTEST_SKIP() << "fork()+SIGKILL is not sanitizer-safe";

  const auto config = smallGrid(MapperKind::kSds, 4000);
  ParallelConfig plain;
  plain.workers = 2;
  const std::uint64_t want =
      trace::runCollectPartitioned(config, plain, /*vars=*/2)
          .result.fingerprintDigest();

  const fs::path dir = freshRunDir("kill_resume");
  const pid_t child = fork();
  ASSERT_NE(child, -1) << "fork failed";
  if (child == 0) {
    // Child: run the durable fleet with an aggressive checkpoint
    // cadence so the parent has artifacts to kill us over. _exit keeps
    // gtest/atexit machinery out of the forked copy.
    ParallelConfig durable;
    durable.workers = 2;
    durable.checkpointDir = dir.string();
    durable.checkpointEveryEvents = 16;
    (void)trace::runCollectPartitioned(config, durable, /*vars=*/2);
    _exit(0);
  }

  // Parent: kill the child the moment the run directory shows life
  // (manifest plus any per-job artifact) — mid-run, mid-write, wherever
  // it happens to be.
  const auto anyJobArtifact = [&]() {
    for (std::uint32_t job = 0; job < 4; ++job)
      if (fs::exists(snapshot::jobCheckpointPath(dir, job)) ||
          fs::exists(snapshot::jobDonePath(dir, job)))
        return true;
    return false;
  };
  bool childExited = false;
  int status = 0;
  for (int i = 0; i < 6000; ++i) {  // up to ~60 s
    if (fs::exists(snapshot::manifestPath(dir)) && anyJobArtifact()) break;
    if (waitpid(child, &status, WNOHANG) == child) {
      childExited = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!childExited) {
    ASSERT_EQ(kill(child, SIGKILL), 0);
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
  }
  ASSERT_TRUE(fs::exists(snapshot::manifestPath(dir)))
      << "child died before writing the manifest";

  // Resume in-process from whatever the kill left behind.
  ParallelConfig resume;
  resume.workers = 2;
  resume.checkpointDir = dir.string();
  resume.resume = true;
  const trace::PartitionedCollectResult resumed =
      trace::runCollectPartitioned(config, resume, /*vars=*/2);
  EXPECT_EQ(resumed.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(resumed.result.fingerprintDigest(), want);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sde
