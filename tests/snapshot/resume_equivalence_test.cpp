// Resume equivalence for durable partitioned runs (manifest layer).
//
// ISSUE acceptance bar: for the paper's 5x5 collect scenario under COW
// and SDS, interrupting a partitioned run at an arbitrary checkpoint
// and resuming yields a merged fingerprint digest *byte-identical* to
// the uninterrupted run — tested for 1 and 4 workers. The interruption
// is forced deterministically through the fleet-wide state cap (a
// ParallelConfig knob, deliberately not part of the run manifest, so
// the resume can lift it), which makes every job suspend through the
// abort-time checkpoint exactly as a kill would.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <tuple>

#include "snapshot/error.hpp"
#include "snapshot/manifest.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

namespace fs = std::filesystem;

trace::CollectScenarioConfig smallGrid(MapperKind mapper,
                                       std::uint64_t simulationTime) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = simulationTime;
  config.mapper = mapper;
  return config;
}

fs::path freshRunDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("sde_" + name);
  fs::remove_all(dir);
  return dir;
}

class ResumeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<MapperKind, unsigned>> {};

TEST_P(ResumeEquivalenceTest, InterruptedRunResumesToTheIdenticalDigest) {
  const auto [mapper, workers] = GetParam();
  const auto config = smallGrid(mapper, 4000);
  ParallelConfig base;
  base.workers = workers;

  // Reference digest: the uninterrupted (non-durable) run.
  const trace::PartitionedCollectResult uninterrupted =
      trace::runCollectPartitioned(config, base, /*vars=*/2);
  ASSERT_EQ(uninterrupted.result.outcome, RunOutcome::kCompleted);
  const std::uint64_t want = uninterrupted.result.fingerprintDigest();

  const fs::path dir = freshRunDir(
      "resume_" + std::string(mapperKindName(mapper)) + "_w" +
      std::to_string(workers));

  // Pass 1: durable run under a fleet state cap far below the total —
  // the whole fleet aborts, every unfinished job leaving its abort-time
  // checkpoint behind.
  ParallelConfig interrupted = base;
  interrupted.checkpointDir = dir.string();
  interrupted.checkpointEveryEvents = 64;
  interrupted.maxTotalStates = 120;
  const trace::PartitionedCollectResult pass1 =
      trace::runCollectPartitioned(config, interrupted, /*vars=*/2);
  ASSERT_EQ(pass1.result.outcome, RunOutcome::kAbortedStates);
  ASSERT_TRUE(fs::exists(snapshot::manifestPath(dir)));
  bool anyArtifact = false;
  for (std::uint32_t job = 0; job < pass1.result.jobs.size(); ++job)
    anyArtifact = anyArtifact || fs::exists(snapshot::jobCheckpointPath(
                                     dir, job)) ||
                  fs::exists(snapshot::jobDonePath(dir, job));
  ASSERT_TRUE(anyArtifact) << "aborted run left no per-job artifacts";

  // Pass 2: resume with the cap lifted.
  ParallelConfig resume = base;
  resume.checkpointDir = dir.string();
  resume.resume = true;
  const trace::PartitionedCollectResult pass2 =
      trace::runCollectPartitioned(config, resume, /*vars=*/2);
  EXPECT_EQ(pass2.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(pass2.result.fingerprintDigest(), want)
      << mapperKindName(mapper) << " workers=" << workers;

  // A completed run leaves every job's .done marker and no stale
  // checkpoints to resume from.
  for (std::uint32_t job = 0; job < pass2.result.jobs.size(); ++job) {
    EXPECT_TRUE(fs::exists(snapshot::jobDonePath(dir, job))) << "job " << job;
    EXPECT_FALSE(fs::exists(snapshot::jobCheckpointPath(dir, job)))
        << "job " << job;
  }

  // Resuming an already-completed run is a pure replay from the .done
  // markers — same digest again.
  const trace::PartitionedCollectResult replay =
      trace::runCollectPartitioned(config, resume, /*vars=*/2);
  EXPECT_EQ(replay.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(replay.result.fingerprintDigest(), want);

  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    MappersAndWorkers, ResumeEquivalenceTest,
    ::testing::Combine(::testing::Values(MapperKind::kCow, MapperKind::kSds),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      return std::string(mapperKindName(std::get<0>(info.param))) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ResumeValidationTest, ForeignManifestRefusesToResume) {
  const fs::path dir = freshRunDir("manifest_mismatch");
  const auto config = smallGrid(MapperKind::kSds, 3000);

  ParallelConfig durable;
  durable.workers = 2;
  durable.checkpointDir = dir.string();
  ASSERT_EQ(trace::runCollectPartitioned(config, durable, /*vars=*/2)
                .result.outcome,
            RunOutcome::kCompleted);

  // Same directory, different run (longer horizon): the manifest check
  // must refuse rather than mix incompatible checkpoints.
  auto other = smallGrid(MapperKind::kSds, 5000);
  ParallelConfig resume = durable;
  resume.resume = true;
  EXPECT_THROW(trace::runCollectPartitioned(other, resume, /*vars=*/2),
               snapshot::SnapshotError);
  // A different partition width is a different run too.
  EXPECT_THROW(trace::runCollectPartitioned(config, resume, /*vars=*/1),
               snapshot::SnapshotError);
  fs::remove_all(dir);
}

TEST(ResumeValidationTest, FreshStartClearsStaleArtifacts) {
  const fs::path dir = freshRunDir("fresh_start");
  const auto config = smallGrid(MapperKind::kSds, 4000);

  ParallelConfig capped;
  capped.workers = 2;
  capped.checkpointDir = dir.string();
  capped.checkpointEveryEvents = 64;
  capped.maxTotalStates = 120;
  ASSERT_EQ(trace::runCollectPartitioned(config, capped, /*vars=*/2)
                .result.outcome,
            RunOutcome::kAbortedStates);

  // Without --resume the directory is restarted from scratch: stale
  // suspended checkpoints must not leak into the new run.
  ParallelConfig fresh;
  fresh.workers = 2;
  fresh.checkpointDir = dir.string();
  const trace::PartitionedCollectResult restarted =
      trace::runCollectPartitioned(config, fresh, /*vars=*/2);
  EXPECT_EQ(restarted.result.outcome, RunOutcome::kCompleted);

  ParallelConfig plain;
  plain.workers = 2;
  EXPECT_EQ(restarted.result.fingerprintDigest(),
            trace::runCollectPartitioned(config, plain, /*vars=*/2)
                .result.fingerprintDigest());
  fs::remove_all(dir);
}

TEST(ResumeValidationTest, MissingManifestDegradesToAFreshStart) {
  const fs::path dir = freshRunDir("missing_manifest");
  const auto config = smallGrid(MapperKind::kSds, 3000);
  ParallelConfig resume;
  resume.workers = 2;
  resume.checkpointDir = dir.string();
  resume.resume = true;  // nothing there yet: must run, not throw
  const trace::PartitionedCollectResult run =
      trace::runCollectPartitioned(config, resume, /*vars=*/2);
  EXPECT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_TRUE(fs::exists(snapshot::manifestPath(dir)));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sde
