// Round-trip fuzzing of the expression-table codec (checkpoint layer 1).
//
// Property: serializing a Context's interning log and replaying it into
// a fresh Context reproduces the DAG *exactly* — same node count, and
// per node the same interning id, kind, width, structural hash, operand
// wiring, constant payload and variable name. This is the foundation
// the rest of the checkpoint format rests on: every Ref elsewhere in a
// checkpoint is a u32 index into this log, so any drift here corrupts
// everything downstream.
//
// Constraint sets ride along: re-adding the restored items in recorded
// order must reproduce the order-independent setHash.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "expr/context.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/error.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"
#include "solver/constraint_set.hpp"
#include "support/rng.hpp"

namespace sde {
namespace {

using expr::Ref;

// Grows a random DAG in `ctx` through the public builders (which
// simplify and canonicalize — irrelevant here: whatever nodes end up
// interned form the log the codec must reproduce). Returns the pool of
// roots built along the way.
std::vector<Ref> growRandomDag(expr::Context& ctx, support::Rng& rng,
                               std::size_t steps) {
  std::vector<Ref> pool;
  const auto randomWidth = [&]() -> unsigned {
    return static_cast<unsigned>(1 + rng.below(64));
  };
  // Leaves first so every op has operands to draw from.
  const std::size_t numVars = 3 + rng.below(5);
  for (std::size_t i = 0; i < numVars; ++i)
    pool.push_back(
        ctx.variable("v" + std::to_string(i), randomWidth()));
  for (std::size_t i = 0; i < 4; ++i)
    pool.push_back(ctx.constant(rng.next(), randomWidth()));

  const auto pick = [&]() { return pool[rng.below(pool.size())]; };
  for (std::size_t step = 0; step < steps; ++step) {
    const Ref a = pick();
    const Ref b = pick();
    Ref made = nullptr;
    switch (rng.below(12)) {
      case 0:
        made = ctx.bvNot(a);
        break;
      case 1:
        made = a->width() < 64
                   ? ctx.zext(a, static_cast<unsigned>(
                                     rng.range(a->width() + 1, 64)))
                   : ctx.boolCast(a);
        break;
      case 2:
        made = a->width() > 1
                   ? ctx.trunc(a, static_cast<unsigned>(
                                      rng.range(1, a->width() - 1)))
                   : ctx.bvNot(a);
        break;
      case 3:
        made = ctx.add(a, ctx.zcast(b, a->width()));
        break;
      case 4:
        made = ctx.mul(a, ctx.zcast(b, a->width()));
        break;
      case 5:
        made = ctx.bvXor(a, ctx.zcast(b, a->width()));
        break;
      case 6:
        made = ctx.ult(a, ctx.zcast(b, a->width()));
        break;
      case 7:
        made = ctx.eq(a, ctx.zcast(b, a->width()));
        break;
      case 8:
        made = ctx.ite(ctx.boolCast(pick()), a, ctx.zcast(b, a->width()));
        break;
      case 9:
        made = a->width() < 64
                   ? ctx.concat(
                         a, ctx.zcast(b, static_cast<unsigned>(rng.range(
                                             1, 64 - a->width()))))
                   : ctx.lshr(a, ctx.zcast(b, a->width()));
        break;
      case 10: {
        const unsigned w =
            static_cast<unsigned>(rng.range(1, a->width()));
        const unsigned off =
            static_cast<unsigned>(rng.below(a->width() - w + 1));
        made = ctx.extract(a, off, w);
        break;
      }
      default:
        made = ctx.sub(ctx.zcast(b, a->width()), a);
        break;
    }
    pool.push_back(made);
  }
  return pool;
}

class SnapshotRoundtripFuzzTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SnapshotRoundtripFuzzTest, ExprTableReplaysExactly) {
  support::Rng rng(GetParam());
  expr::Context ctx;
  const std::vector<Ref> pool = growRandomDag(ctx, rng, 160);

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  snapshot::Writer writer(buffer);
  snapshot::writeExprTable(writer, ctx);
  // A handful of Refs (plus null) the way the state codec writes them.
  std::vector<Ref> sample{nullptr};
  for (int i = 0; i < 8; ++i) sample.push_back(pool[rng.below(pool.size())]);
  for (const Ref ref : sample) snapshot::writeRef(writer, ref);
  ASSERT_TRUE(writer.ok());

  expr::Context restored;
  snapshot::Reader reader(buffer);
  snapshot::readExprTable(reader, restored);

  ASSERT_EQ(restored.numNodes(), ctx.numNodes()) << "seed " << GetParam();
  for (std::size_t i = 0; i < ctx.numNodes(); ++i) {
    const Ref original = ctx.nodeAt(i);
    const Ref replayed = restored.nodeAt(i);
    ASSERT_EQ(replayed->id(), original->id()) << "node " << i;
    ASSERT_EQ(replayed->kind(), original->kind()) << "node " << i;
    ASSERT_EQ(replayed->width(), original->width()) << "node " << i;
    ASSERT_EQ(replayed->hash(), original->hash()) << "node " << i;
    ASSERT_EQ(replayed->numOperands(), original->numOperands()) << "node " << i;
    for (unsigned op = 0; op < original->numOperands(); ++op)
      ASSERT_EQ(replayed->operand(op)->id(), original->operand(op)->id())
          << "node " << i << " operand " << op;
    if (original->isConstant()) {
      ASSERT_EQ(replayed->value(), original->value()) << "node " << i;
    }
    if (original->isVariable()) {
      ASSERT_EQ(replayed->name(), original->name()) << "node " << i;
    }
  }

  // The sampled Refs resolve to the same interning ids.
  for (const Ref ref : sample) {
    const Ref back = snapshot::readRef(reader, restored);
    if (ref == nullptr) {
      ASSERT_EQ(back, nullptr);
    } else {
      ASSERT_NE(back, nullptr);
      ASSERT_EQ(back->id(), ref->id());
    }
  }

  // Hash-consing still holds in the restored context: re-requesting a
  // variable by name must not grow the table.
  const std::size_t before = restored.numNodes();
  for (std::size_t i = 0; i < ctx.numNodes(); ++i) {
    if (ctx.nodeAt(i)->isVariable()) {
      const Ref again = restored.variable(ctx.nodeAt(i)->name(),
                                          ctx.nodeAt(i)->width());
      ASSERT_EQ(again, restored.nodeAt(i));
    }
  }
  ASSERT_EQ(restored.numNodes(), before);
}

TEST_P(SnapshotRoundtripFuzzTest, ConstraintSetHashSurvivesRoundtrip) {
  support::Rng rng(GetParam() ^ 0x5eedULL);
  expr::Context ctx;
  const std::vector<Ref> pool = growRandomDag(ctx, rng, 120);

  // A constraint set of random boolean roots, recorded the way the
  // state codec records it: the item list in insertion order.
  solver::ConstraintSet constraints;
  std::vector<Ref> recorded;
  for (const Ref root : pool) constraints.add(ctx.boolCast(root));
  for (const Ref item : constraints.items()) recorded.push_back(item);

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  snapshot::Writer writer(buffer);
  snapshot::writeExprTable(writer, ctx);
  writer.u64(recorded.size());
  for (const Ref item : recorded) snapshot::writeRef(writer, item);
  ASSERT_TRUE(writer.ok());

  expr::Context restoredCtx;
  snapshot::Reader reader(buffer);
  snapshot::readExprTable(reader, restoredCtx);
  const std::uint64_t count = reader.u64();
  solver::ConstraintSet restored;
  for (std::uint64_t i = 0; i < count; ++i)
    restored.add(snapshot::readRef(reader, restoredCtx));

  EXPECT_EQ(restored.size(), constraints.size()) << "seed " << GetParam();
  EXPECT_EQ(restored.setHash(), constraints.setHash()) << "seed " << GetParam();
}

TEST(SnapshotRoundtripTest, ForwardReferenceIsRejected) {
  // Hand-craft a log whose first interned node references node index 5
  // (not yet replayed): the reader must throw, not crash.
  expr::Context ctx;
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  snapshot::Writer writer(buffer);
  writer.u64(3);  // claim 3 nodes: the two booleans plus one bad op
  // The two pre-interned boolean constants, as writeExprTable emits them.
  writer.u8(static_cast<std::uint8_t>(expr::Kind::kConstant));
  writer.u8(1);
  writer.u64(0);
  writer.u8(static_cast<std::uint8_t>(expr::Kind::kConstant));
  writer.u8(1);
  writer.u64(1);
  // A unary op whose operand points forward.
  writer.u8(static_cast<std::uint8_t>(expr::Kind::kNot));
  writer.u8(1);
  writer.u64(0);  // aux
  writer.u8(1);   // one operand
  writer.u32(5);  // forward reference
  ASSERT_TRUE(writer.ok());

  expr::Context restored;
  snapshot::Reader reader(buffer);
  EXPECT_THROW(snapshot::readExprTable(reader, restored),
               snapshot::SnapshotError);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotRoundtripFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace sde
