// Arena-backed interning vs the checkpoint expr log.
//
// The expression context allocates nodes from a bump-pointer arena; the
// checkpoint serializes the DAG as its interning log and replays it into
// a fresh (arena-backed) context. These tests pin the contract the
// refactor relies on: the arena is a memory-layout change only — node
// ids, interning order and the serialized log are identical for every
// block size — and a restored engine's expr table is byte-for-byte the
// suspended engine's, across suspend/resume cycles and arena block
// boundaries.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "snapshot/checkpoint.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"
#include "support/arena.hpp"
#include "support/rng.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

using expr::Ref;

// A random DAG big enough to span several arena blocks in the
// small-block configuration: constants, variables, and mixed-arity ops
// over earlier pool entries.
std::vector<Ref> growRandomDag(expr::Context& ctx, support::Rng& rng,
                               int steps) {
  std::vector<Ref> pool{ctx.trueExpr(), ctx.falseExpr(),
                        ctx.constant(0, 64)};
  const auto pick = [&]() { return pool[rng.below(pool.size())]; };
  for (int i = 0; i < steps; ++i) {
    switch (rng.below(6)) {
      case 0:
        pool.push_back(ctx.constant(rng.below(1u << 20), 64));
        break;
      case 1:
        pool.push_back(
            ctx.variable("v" + std::to_string(rng.below(24)), 64));
        break;
      case 2:
        pool.push_back(ctx.add(ctx.zcast(pick(), 64), ctx.zcast(pick(), 64)));
        break;
      case 3:
        pool.push_back(
            ctx.bvXor(ctx.zcast(pick(), 64), ctx.zcast(pick(), 64)));
        break;
      case 4:
        pool.push_back(ctx.ult(ctx.zcast(pick(), 64), ctx.zcast(pick(), 64)));
        break;
      default:
        pool.push_back(ctx.ite(ctx.boolCast(pick()), ctx.zcast(pick(), 64),
                               ctx.zcast(pick(), 64)));
        break;
    }
  }
  return pool;
}

std::string exprTableBytes(const expr::Context& ctx) {
  std::ostringstream buffer(std::ios::binary);
  snapshot::Writer writer(buffer);
  snapshot::writeExprTable(writer, ctx);
  EXPECT_TRUE(writer.ok());
  return buffer.str();
}

class ArenaLayoutTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaLayoutTest, BlockSizeNeverChangesTheSerializedLog) {
  // The same build sequence into a default-arena context, a degenerate
  // one-exact-fit-block-per-node ("heap mode") context, and a tiny-block
  // context that forces many block spills mid-log. Identical bytes out.
  const std::uint64_t seed = GetParam();
  expr::Context arenaCtx;  // default blocks
  expr::Context heapCtx(1);
  expr::Context tinyCtx(256);
  {
    support::Rng rng(seed);
    growRandomDag(arenaCtx, rng, 400);
  }
  {
    support::Rng rng(seed);
    growRandomDag(heapCtx, rng, 400);
  }
  {
    support::Rng rng(seed);
    growRandomDag(tinyCtx, rng, 400);
  }

  ASSERT_EQ(arenaCtx.numNodes(), heapCtx.numNodes());
  const std::string arenaBytes = exprTableBytes(arenaCtx);
  EXPECT_EQ(arenaBytes, exprTableBytes(heapCtx)) << "seed " << seed;
  EXPECT_EQ(arenaBytes, exprTableBytes(tinyCtx)) << "seed " << seed;

  // Anti-vacuity: the A/B actually compared different layouts — heap
  // mode spent one block per node, the tiny arena spilled repeatedly.
  EXPECT_GT(heapCtx.arenaBlocks(), arenaCtx.arenaBlocks());
  EXPECT_GT(tinyCtx.arenaBlocks(), 1u);
}

TEST_P(ArenaLayoutTest, ReplayedLogReproducesEveryNodeAcrossBlockSpills) {
  // Replay a multi-block log into a small-block context: every node must
  // land at its original index with its original structure even when the
  // replay's arena layout differs from the writer's.
  const std::uint64_t seed = GetParam();
  expr::Context ctx;
  support::Rng rng(seed);
  growRandomDag(ctx, rng, 400);

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  snapshot::Writer writer(buffer);
  snapshot::writeExprTable(writer, ctx);
  ASSERT_TRUE(writer.ok());

  expr::Context restored(512);
  snapshot::Reader reader(buffer);
  snapshot::readExprTable(reader, restored);

  ASSERT_EQ(restored.numNodes(), ctx.numNodes()) << "seed " << seed;
  EXPECT_EQ(exprTableBytes(restored), exprTableBytes(ctx)) << "seed " << seed;
  EXPECT_GT(restored.arenaBlocks(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaLayoutTest,
                         ::testing::Values(3, 7, 19, 31));

// --- Engine-level roundtrips -------------------------------------------------

trace::CollectScenarioConfig sdsGrid(std::uint64_t simulationTime) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = simulationTime;
  config.mapper = MapperKind::kSds;
  return config;
}

std::string checkpointBlob(const Engine& engine) {
  std::ostringstream out(std::ios::binary);
  engine.checkpoint(out);
  return out.str();
}

TEST(ArenaCheckpointTest, CheckpointRestoreCheckpointIsByteIdentical) {
  // The strongest roundtrip statement: re-serializing a restored engine
  // reproduces the original checkpoint exactly — the arena-backed
  // interning log (and everything whose Refs index into it) survives a
  // full decode/encode cycle with zero drift.
  const auto config = sdsGrid(4000);
  trace::CollectScenario suspended(config);
  ASSERT_EQ(suspended.engine().run(2000), RunOutcome::kCompleted);
  const std::string blob = checkpointBlob(suspended.engine());

  trace::CollectScenario resumedScenario(config);
  Engine& resumed = resumedScenario.engine();
  std::istringstream in(blob, std::ios::binary);
  resumed.restore(in);
  EXPECT_EQ(checkpointBlob(resumed), blob);
}

TEST(ArenaCheckpointTest, MidRunSuspendResumeCyclesConvergeToTheSameRun) {
  // Two suspend/resume cycles mid-run — each restore replays the expr
  // log into a fresh arena — must converge to the uninterrupted
  // exploration (state hashes and interpreter counters included).
  const auto config = sdsGrid(4000);
  trace::CollectScenario reference(config);
  ASSERT_EQ(reference.run().outcome, RunOutcome::kCompleted);

  trace::CollectScenario first(config);
  ASSERT_EQ(first.engine().run(1500), RunOutcome::kCompleted);
  const std::string blob1 = checkpointBlob(first.engine());

  trace::CollectScenario second(config);
  {
    std::istringstream in(blob1, std::ios::binary);
    second.engine().restore(in);
  }
  ASSERT_EQ(second.engine().run(3000), RunOutcome::kCompleted);
  const std::string blob2 = checkpointBlob(second.engine());

  trace::CollectScenario third(config);
  {
    std::istringstream in(blob2, std::ios::binary);
    third.engine().restore(in);
  }
  Engine& resumed = third.engine();
  ASSERT_EQ(resumed.run(config.simulationTime), RunOutcome::kCompleted);

  Engine& uninterrupted = reference.engine();
  EXPECT_EQ(resumed.numStates(), uninterrupted.numStates());
  EXPECT_EQ(resumed.eventsProcessed(), uninterrupted.eventsProcessed());
  std::set<std::uint64_t> resumedHashes, referenceHashes;
  for (const auto& state : resumed.states())
    resumedHashes.insert(state->configHash());
  for (const auto& state : uninterrupted.states())
    referenceHashes.insert(state->configHash());
  EXPECT_EQ(resumedHashes, referenceHashes);
  EXPECT_EQ(resumed.stats().all(), uninterrupted.stats().all());
  EXPECT_EQ(resumed.interpStats().all(), uninterrupted.interpStats().all());
}

}  // namespace
}  // namespace sde
