#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace sde::support {
namespace {

TEST(Hash, Fnv1aIsStableAndDistinguishes) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a(std::string_view("\0", 1)));
}

TEST(Hash, HasherOrderSensitive) {
  Hasher a;
  a.u64(1).u64(2);
  Hasher b;
  b.u64(2).u64(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, HasherFieldsMatter) {
  EXPECT_NE(Hasher().u64(0).digest(), Hasher().u64(0).u64(0).digest());
  EXPECT_NE(Hasher().str("a").digest(), Hasher().str("b").digest());
}

TEST(Hash, CombineAvalanches) {
  // Flipping one input bit should change the output (sanity, not a
  // statistical test).
  const std::uint64_t base = hashCombine(42, 100);
  for (int bit = 0; bit < 64; ++bit)
    EXPECT_NE(base, hashCombine(42, 100 ^ (1ULL << bit)));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, RangeIsInclusiveAndCoversEndpoints) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Stats, BumpAndGet) {
  StatsRegistry stats;
  EXPECT_EQ(stats.get("x"), 0u);
  stats.bump("x");
  stats.bump("x", 4);
  EXPECT_EQ(stats.get("x"), 5u);
}

TEST(Stats, MaxOfKeepsMaximum) {
  StatsRegistry stats;
  stats.maxOf("peak", 10);
  stats.maxOf("peak", 3);
  stats.maxOf("peak", 12);
  EXPECT_EQ(stats.get("peak"), 12u);
}

TEST(Stats, IsPeakCounterMatchesAPeakNameComponent) {
  EXPECT_TRUE(isPeakCounter("engine.peak_states"));
  EXPECT_TRUE(isPeakCounter("engine.peak_memory_bytes"));
  EXPECT_TRUE(isPeakCounter("peak"));
  EXPECT_TRUE(isPeakCounter("peak_states"));
  EXPECT_TRUE(isPeakCounter("a.peak.b"));
  // Substring hits inside a component are NOT peaks: these are running
  // totals and must be summed by mergeFrom.
  EXPECT_FALSE(isPeakCounter("solver.peakiness"));
  EXPECT_FALSE(isPeakCounter("engine.speaker_events"));
  EXPECT_FALSE(isPeakCounter("engine.repeak"));
  EXPECT_FALSE(isPeakCounter(""));
  EXPECT_FALSE(isPeakCounter("engine.forks_total"));
  EXPECT_FALSE(isPeakCounter("engine.PEAK_states"));  // case-sensitive
}

TEST(Stats, MergeFromSumsCountersThatMerelyContainPeak) {
  // Regression: "speaker" contains "peak" as a substring; a naive
  // substring rule would max-fold it and a fleet of workers would
  // under-report the total.
  StatsRegistry a;
  StatsRegistry b;
  a.bump("engine.speaker_events", 5);
  b.bump("engine.speaker_events", 3);
  a.mergeFrom(b);
  EXPECT_EQ(a.get("engine.speaker_events"), 8u);  // summed, not max(5,3)
}

TEST(Stats, MergeFromMaxesPeaksAndSumsTheRest) {
  StatsRegistry a;
  StatsRegistry b;
  a.set("engine.peak_states", 10);
  b.set("engine.peak_states", 7);
  a.bump("engine.forks_total", 5);
  b.bump("engine.forks_total", 3);
  b.bump("only.in.other", 2);
  a.mergeFrom(b);
  EXPECT_EQ(a.get("engine.peak_states"), 10u);  // fleet peak: max, not 17
  EXPECT_EQ(a.get("engine.forks_total"), 8u);   // running total: sum
  EXPECT_EQ(a.get("only.in.other"), 2u);

  // A peak missing on the left adopts the right-hand value unchanged.
  StatsRegistry c;
  c.mergeFrom(a);
  EXPECT_EQ(c.get("engine.peak_states"), 10u);
}

TEST(Stats, ReportListsAllCountersSorted) {
  StatsRegistry stats;
  stats.bump("b");
  stats.bump("a", 2);
  EXPECT_EQ(stats.report(), "a = 2\nb = 1\n");
}

}  // namespace
}  // namespace sde::support
