// Unit tests for the persistent structurally-shared sequences backing
// ExecutionState::fork — the O(1)-fork claim at the container level:
// copying shares sealed chunks (PVector) or the whole payload (CowVec),
// deep-copies only tails, and the shared-aware byte accounting charges
// every block exactly once regardless of traversal order.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <numeric>
#include <vector>

#include "support/pvector.hpp"

namespace sde::support {
namespace {

using IntSeq = PVector<std::uint64_t>;
constexpr std::size_t kChunk = IntSeq::chunkCapacity();

std::uint64_t copiedNow() {
  return persistStats().elementsCopied.load(std::memory_order_relaxed);
}

TEST(PVectorTest, PushIndexAndIterateMatchAReferenceVector) {
  IntSeq seq;
  std::vector<std::uint64_t> reference;
  for (std::uint64_t i = 0; i < 5 * kChunk + 7; ++i) {
    seq.push_back(i * 3 + 1);
    reference.push_back(i * 3 + 1);
  }
  ASSERT_EQ(seq.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(seq[i], reference[i]) << "index " << i;
  EXPECT_EQ(seq.back(), reference.back());

  std::vector<std::uint64_t> iterated;
  for (const std::uint64_t v : seq) iterated.push_back(v);
  EXPECT_EQ(iterated, reference);
}

TEST(PVectorTest, CopyCostIsTheTailNotTheHistory) {
  IntSeq seq;
  const std::size_t total = 10 * kChunk + 5;
  for (std::uint64_t i = 0; i < total; ++i) seq.push_back(i);
  ASSERT_EQ(seq.tailSize(), 5u);
  ASSERT_EQ(seq.numChunks(), 10u);

  // The advertised cost (used by ExecutionState::forkCopyCost) and the
  // observed cost (global copy counters) must both be the tail size —
  // independent of the 10-chunk history.
  EXPECT_EQ(seq.copyCostElements(), 5u);
  EXPECT_EQ(seq.sharedChunksOnCopy(), 10u);
  const std::uint64_t before = copiedNow();
  const IntSeq copy = seq;
  EXPECT_EQ(copiedNow() - before, 5u);
  EXPECT_EQ(copy.size(), seq.size());
  EXPECT_EQ(copy[3 * kChunk + 1], seq[3 * kChunk + 1]);
}

TEST(PVectorTest, CopiesDivergeIndependently) {
  IntSeq parent;
  for (std::uint64_t i = 0; i < 2 * kChunk + 3; ++i) parent.push_back(i);
  IntSeq child = parent;
  child.push_back(1000);
  parent.push_back(2000);
  parent.push_back(2001);
  ASSERT_EQ(child.size(), 2 * kChunk + 4);
  ASSERT_EQ(parent.size(), 2 * kChunk + 5);
  EXPECT_EQ(child.back(), 1000u);
  EXPECT_EQ(parent.back(), 2001u);
  // The shared prefix is untouched by either side.
  for (std::size_t i = 0; i < 2 * kChunk + 3; ++i) {
    EXPECT_EQ(parent[i], i);
    EXPECT_EQ(child[i], i);
  }
}

TEST(PVectorTest, DeepCopyModeClonesEveryChunk) {
  IntSeq seq;
  const std::size_t total = 4 * kChunk + 2;
  for (std::uint64_t i = 0; i < total; ++i) seq.push_back(i);

  ScopedDeepCopyMode legacy;
  EXPECT_EQ(seq.copyCostElements(), total);
  EXPECT_EQ(seq.sharedChunksOnCopy(), 0u);
  const std::uint64_t before = copiedNow();
  const IntSeq copy = seq;
  EXPECT_EQ(copiedNow() - before, total);
  // Same contents either way — the representations are interchangeable.
  for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(copy[i], seq[i]);
}

TEST(PVectorTest, AccountBytesChargesSharedChunksOnce) {
  IntSeq a;
  for (std::uint64_t i = 0; i < 6 * kChunk; ++i) a.push_back(i);
  const IntSeq b = a;  // shares all 6 chunks

  std::map<const void*, std::uint64_t> seenSolo;
  const std::uint64_t solo = a.accountBytes(seenSolo);

  std::map<const void*, std::uint64_t> seenBoth;
  const std::uint64_t both =
      a.accountBytes(seenBoth) + b.accountBytes(seenBoth);
  // Two sharers cost one payload plus two (identical) spine overheads —
  // far below twice the solo cost.
  EXPECT_LT(both, 2 * solo);
  EXPECT_EQ(both, solo + 6 * sizeof(void*));

  // Traversal order must not change the total (first visitor pays).
  std::map<const void*, std::uint64_t> seenReversed;
  const std::uint64_t reversed =
      b.accountBytes(seenReversed) + a.accountBytes(seenReversed);
  EXPECT_EQ(reversed, both);
}

TEST(PVectorTest, AccountBytesNeverExceedsTheDeepCopyTotal) {
  IntSeq a;
  for (std::uint64_t i = 0; i < 3 * kChunk + 9; ++i) a.push_back(i);
  const IntSeq b = a;

  std::map<const void*, std::uint64_t> seenShared;
  const std::uint64_t shared =
      a.accountBytes(seenShared) + b.accountBytes(seenShared);

  ScopedDeepCopyMode legacy;
  const IntSeq c = a;  // cloned chunks: nothing shared with a
  std::map<const void*, std::uint64_t> seenDeep;
  const std::uint64_t deep =
      a.accountBytes(seenDeep) + c.accountBytes(seenDeep);
  EXPECT_LE(shared, deep);
}

TEST(PVectorTest, SnapshotRoundTripPreservesContentsAndSharing) {
  IntSeq original;
  for (std::uint64_t i = 0; i < 2 * kChunk + 1; ++i) original.push_back(i);

  // Rebuild through the snapshot interface, sharing the original spine
  // (what the checkpoint chunk table does across restore).
  IntSeq restored;
  auto spine = std::make_shared<IntSeq::Spine>(*original.spine());
  restored.restoreSnapshot(std::move(spine), original.tail());
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_EQ(restored[i], original[i]);

  std::map<const void*, std::uint64_t> seen;
  const std::uint64_t first = original.accountBytes(seen);
  const std::uint64_t second = restored.accountBytes(seen);
  EXPECT_LT(second, first);  // chunks already charged to `original`
}

TEST(CowVecTest, CopyIsFreeAndFirstMutationClones) {
  CowVec<std::uint64_t> a;
  for (std::uint64_t i = 0; i < 100; ++i) a.push_back(i);

  const std::uint64_t copiesBefore = copiedNow();
  CowVec<std::uint64_t> b = a;
  EXPECT_EQ(copiedNow() - copiesBefore, 0u);  // O(1) copy
  EXPECT_EQ(b.copyCostElements(), 0u);
  EXPECT_EQ(b.sharedChunksOnCopy(), 1u);

  const std::uint64_t clonesBefore =
      persistStats().cowClones.load(std::memory_order_relaxed);
  b.push_back(500);  // mutation pays for the clone
  EXPECT_EQ(persistStats().cowClones.load(std::memory_order_relaxed),
            clonesBefore + 1);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(b.size(), 101u);
  EXPECT_EQ(a[99], 99u);
  EXPECT_EQ(b[100], 500u);
}

TEST(CowVecTest, EraseAndEraseIfMatchAReferenceVector) {
  CowVec<std::uint64_t> cow;
  std::vector<std::uint64_t> reference;
  for (std::uint64_t i = 0; i < 20; ++i) {
    cow.push_back(i);
    reference.push_back(i);
  }
  const CowVec<std::uint64_t> frozen = cow;  // must not observe mutations

  cow.erase(cow.begin() + 5);
  reference.erase(reference.begin() + 5);

  const auto odd = [](std::uint64_t v) { return v % 2 == 1; };
  EXPECT_EQ(cow.eraseIf(odd), std::erase_if(reference, odd));
  ASSERT_EQ(cow.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    EXPECT_EQ(cow[i], reference[i]);

  // A no-match predicate must not clone shared storage.
  const CowVec<std::uint64_t> sharer = cow;
  const std::uint64_t clonesBefore =
      persistStats().cowClones.load(std::memory_order_relaxed);
  EXPECT_EQ(cow.eraseIf([](std::uint64_t v) { return v > 10000; }), 0u);
  EXPECT_EQ(persistStats().cowClones.load(std::memory_order_relaxed),
            clonesBefore);

  EXPECT_EQ(frozen.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(frozen[i], i);
  (void)sharer;
}

TEST(CowVecTest, ClearDropsOnlyOurReference) {
  CowVec<std::uint64_t> a;
  a.push_back(7);
  CowVec<std::uint64_t> b = a;
  a.clear();
  EXPECT_TRUE(a.empty());
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 7u);
}

TEST(CowVecTest, AccountBytesChargesTheSharedPayloadOnce) {
  CowVec<std::uint64_t> a;
  for (std::uint64_t i = 0; i < 50; ++i) a.push_back(i);
  const CowVec<std::uint64_t> b = a;

  const auto itemBytes = [](const std::uint64_t&) -> std::uint64_t {
    return sizeof(std::uint64_t);
  };
  std::map<const void*, std::uint64_t> seen;
  const std::uint64_t first = a.accountBytes(seen, itemBytes);
  const std::uint64_t second = b.accountBytes(seen, itemBytes);
  EXPECT_EQ(first, 50 * sizeof(std::uint64_t));
  EXPECT_EQ(second, 0u);
}

}  // namespace
}  // namespace sde::support
