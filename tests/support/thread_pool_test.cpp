#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

namespace sde::support {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i)
      pool.submit([&counter] { counter.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, SingleWorkerStillDrainsTheQueue) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i)
    pool.submit([&order, i] { order.push_back(i); });
  pool.wait();
  // One worker: strict FIFO, no synchronisation needed in the tasks.
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] {
      const int now = inside.fetch_add(1) + 1;
      int expected = peak.load();
      while (expected < now &&
             !peak.compare_exchange_weak(expected, now)) {
      }
      // Give the other workers a chance to overlap; on a single-core
      // host this may still observe peak == 1, so only the >= 1
      // invariant is hard.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      inside.fetch_sub(1);
    });
  }
  pool.wait();
  EXPECT_GE(peak.load(), 1);
  EXPECT_EQ(inside.load(), 0);
}

TEST(ThreadPoolTest, WaitRethrowsTheFirstTaskError) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i)
    pool.submit([&completed] { completed.fetch_add(1); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is reported once; the pool stays usable.
  pool.submit([&completed] { completed.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(completed.load(), 11);
}

TEST(ThreadPoolTest, DestructorJoinsWithoutWait) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 30; ++i)
      pool.submit([&counter] { counter.fetch_add(1); });
    // No wait(): the destructor must drain and join.
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadPoolTest, ManyMoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::mutex mutex;
  std::set<std::thread::id> seen;
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    pool.submit([&] {
      counter.fetch_add(1);
      const std::lock_guard<std::mutex> lock(mutex);
      seen.insert(std::this_thread::get_id());
    });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 500);
  EXPECT_LE(seen.size(), 2u);
}

}  // namespace
}  // namespace sde::support
