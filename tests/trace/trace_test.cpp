#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "trace/metrics.hpp"
#include "trace/scenario.hpp"
#include "trace/table.hpp"

namespace sde::trace {
namespace {

TEST(Table, RendersAlignedGrid) {
  TextTable table({"a", "long header"});
  table.addRow({"xxxx", "1"});
  const std::string out = table.render();
  EXPECT_EQ(out,
            "+------+-------------+\n"
            "| a    | long header |\n"
            "+------+-------------+\n"
            "| xxxx | 1           |\n"
            "+------+-------------+\n");
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  TextTable table({"one"});
  EXPECT_DEATH(table.addRow({"a", "b"}), "width mismatch");
}

TEST(Format, DurationMatchesPaperStyle) {
  EXPECT_EQ(formatDuration(0.002), "2ms");
  EXPECT_EQ(formatDuration(7.4), "7s");
  EXPECT_EQ(formatDuration(98.0), "1m:38s");
  EXPECT_EQ(formatDuration(5880.0), "1h:38m");   // Table I's COW row
  EXPECT_EQ(formatDuration(34740.0), "9h:39m");  // Table I's COB row
}

TEST(Format, CountWithThousandsSeparators) {
  EXPECT_EQ(formatCount(0), "0");
  EXPECT_EQ(formatCount(999), "999");
  EXPECT_EQ(formatCount(1000), "1,000");
  EXPECT_EQ(formatCount(1025700), "1,025,700");  // Table I's COB states
}

TEST(Format, BytesHumanReadable) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2048), "2.0 KB");
  EXPECT_EQ(formatBytes(3650722202ull), "3.4 GB");  // Table I's COW RAM
}

TEST(Metrics, RecorderCapturesEngineProgress) {
  CollectScenarioConfig config;
  config.gridWidth = 2;
  config.gridHeight = 2;
  config.simulationTime = 3000;
  config.engine.sampleEveryEvents = 1;
  config.engine.adaptiveSampling = false;
  CollectScenario scenario(config);
  scenario.run();

  const auto& samples = scenario.metrics().samples();
  ASSERT_GT(samples.size(), 2u);
  // Monotone in events and virtual time; states never shrink.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].events, samples[i - 1].events);
    EXPECT_GE(samples[i].virtualTime, samples[i - 1].virtualTime);
    EXPECT_GE(samples[i].states, samples[i - 1].states);
  }
  EXPECT_EQ(scenario.metrics().last().states,
            scenario.engine().numStates());
}

TEST(Metrics, CsvHasHeaderAndRows) {
  MetricsRecorder recorder;
  CollectScenarioConfig config;
  config.gridWidth = 2;
  config.gridHeight = 2;
  config.simulationTime = 2000;
  CollectScenario scenario(config);
  scenario.run();

  std::ostringstream os;
  scenario.metrics().writeCsv(os, "SDS");
  const std::string text = os.str();
  EXPECT_NE(text.find("series,wall_s,virtual_t,states,memory_bytes"),
            std::string::npos);
  EXPECT_NE(text.find("SDS,"), std::string::npos);
}

// Regression: the CSV header used to be a hand-maintained literal that
// silently went stale when sample fields were added — rows grew columns
// the header didn't name. Header and rows must both follow
// metricCsvSchema(), so every line of the file has the same width.
TEST(Metrics, CsvHeaderFollowsTheRowSchema) {
  const auto columns = [](const std::string& line) {
    return 1 + std::count(line.begin(), line.end(), ',');
  };

  MetricsRecorder recorder;
  CollectScenarioConfig config;
  config.gridWidth = 2;
  config.gridHeight = 2;
  config.simulationTime = 2000;
  config.engine.mergeStates = true;
  CollectScenario scenario(config);
  scenario.run();

  std::ostringstream os;
  scenario.metrics().writeCsv(os, "SDS");
  std::istringstream lines(os.str());
  std::string header;
  ASSERT_TRUE(std::getline(lines, header));

  // Header = "series" + exactly the schema column names, in order.
  std::string expected = "series";
  for (const MetricColumn& column : metricCsvSchema())
    expected += std::string(",") + column.name;
  EXPECT_EQ(header, expected);
  EXPECT_NE(header.find(",merges"), std::string::npos);
  EXPECT_NE(header.find(",loop_summaries"), std::string::npos);

  std::string row;
  std::size_t rows = 0;
  while (std::getline(lines, row)) {
    ++rows;
    EXPECT_EQ(columns(row), columns(header)) << "row " << rows << ": " << row;
  }
  EXPECT_GT(rows, 0u);
}

namespace {
MetricSample sample(std::uint64_t virtualTime, std::uint64_t events,
                    std::uint64_t states, double wallSeconds = 0) {
  MetricSample s;
  s.virtualTime = virtualTime;
  s.events = events;
  s.states = states;
  s.wallSeconds = wallSeconds;
  return s;
}
}  // namespace

TEST(Stitch, EmptyAndAllEmptySeriesYieldAnEmptyTimeline) {
  EXPECT_TRUE(stitchSamples({}).empty());
  const std::vector<std::vector<MetricSample>> hollow(3);
  EXPECT_TRUE(stitchSamples(hollow).empty());
}

TEST(Stitch, EmptySeriesAmongNonEmptyContributesNothing) {
  // A worker that never sampled (e.g. a resumed .done job) must not
  // disturb the tie-break indices of its neighbours: series indices are
  // positional, so the empty series in the middle still counts as index
  // 1 and the last series ties AFTER series 0.
  const std::vector<std::vector<MetricSample>> series{
      {sample(100, 7, 11)},
      {},
      {sample(100, 7, 22), sample(300, 9, 33)},
  };
  const std::vector<MetricSample> stitched = stitchSamples(series);
  ASSERT_EQ(stitched.size(), 3u);
  EXPECT_EQ(stitched[0].states, 11u);  // full tie: series 0 before 2
  EXPECT_EQ(stitched[1].states, 22u);
  EXPECT_EQ(stitched[2].states, 33u);
}

TEST(MetricsDeathTest, CsvRejectsSeriesNamesThatBreakTheFormat) {
  // The series name lands verbatim in the lead column; the shared
  // schema-driven writer (trace/csv.hpp) rejects field-breaking bytes.
  MetricsRecorder recorder;
  std::ostringstream os;
  EXPECT_DEATH(recorder.writeCsv(os, "bad,name"), "CSV field");
  EXPECT_DEATH(recorder.writeCsv(os, "bad\nname"), "CSV field");
}

TEST(Stitch, SingleSeriesPassesThroughInRecordedOrder) {
  // A single worker's series is already sorted by construction (an
  // engine samples at monotone virtual times); stitching must return
  // it untouched — including repeated end-of-run samples, which tie on
  // the whole key and rely on the stable sort.
  const std::vector<std::vector<MetricSample>> one{{
      sample(0, 0, 1),
      sample(500, 10, 4),
      sample(500, 10, 4),  // repeated sample: order preserved
      sample(1000, 25, 9),
  }};
  const std::vector<MetricSample> stitched = stitchSamples(one);
  ASSERT_EQ(stitched.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(stitched[i].virtualTime, one[0][i].virtualTime) << i;
    EXPECT_EQ(stitched[i].events, one[0][i].events) << i;
    EXPECT_EQ(stitched[i].states, one[0][i].states) << i;
  }
}

TEST(Stitch, DuplicateVirtualTimesBreakTiesByEventsThenSeriesIndex) {
  // Three workers sampling the same virtual instant: ordered by events
  // first; full ties (virtualTime AND events equal) by series index,
  // so the lower-indexed worker contributes first. Wall-clock stamps
  // are deliberately irrelevant — series 0 carries the LARGEST wall
  // time yet must still sort first on a full tie.
  const std::vector<std::vector<MetricSample>> series{
      {sample(100, 7, 11, /*wallSeconds=*/9.0)},
      {sample(100, 7, 22, /*wallSeconds=*/1.0), sample(100, 9, 33)},
      {sample(100, 3, 44), sample(200, 1, 55)},
  };
  const std::vector<MetricSample> stitched = stitchSamples(series);
  ASSERT_EQ(stitched.size(), 5u);
  // virtualTime 100, events 3 (series 2) first.
  EXPECT_EQ(stitched[0].states, 44u);
  // Full tie at (100, 7): series 0 before series 1, wall time ignored.
  EXPECT_EQ(stitched[1].states, 11u);
  EXPECT_EQ(stitched[2].states, 22u);
  // (100, 9) after both, then virtualTime 200.
  EXPECT_EQ(stitched[3].states, 33u);
  EXPECT_EQ(stitched[4].states, 55u);
  // The virtual-time axis is sorted.
  for (std::size_t i = 1; i < stitched.size(); ++i)
    EXPECT_LE(stitched[i - 1].virtualTime, stitched[i].virtualTime);
}

TEST(Scenario, SummarizeReflectsEngine) {
  CollectScenarioConfig config;
  config.gridWidth = 2;
  config.gridHeight = 2;
  config.simulationTime = 2000;
  CollectScenario scenario(config);
  const auto result = scenario.run();
  EXPECT_EQ(result.states, scenario.engine().numStates());
  EXPECT_EQ(result.groups, scenario.engine().mapper().numGroups());
  EXPECT_EQ(result.events, scenario.engine().eventsProcessed());
  EXPECT_GT(result.packets, 0u);
  EXPECT_GT(result.memoryBytes, 0u);
}

TEST(Scenario, SourceAndSinkPlacementMatchesFigureNine) {
  CollectScenarioConfig config;
  config.gridWidth = 3;
  config.gridHeight = 3;
  CollectScenario scenario(config);
  EXPECT_EQ(scenario.sink(), 0u);        // top-left corner
  EXPECT_EQ(scenario.source(), 8u);      // bottom-right corner
}

TEST(Scenario, FloodScenarioRunsAllMappers) {
  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    FloodScenarioConfig config;
    config.nodes = 3;
    config.simulationTime = 1500;
    config.mapper = kind;
    FloodScenario scenario(config);
    const auto result = scenario.run();
    EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
    EXPECT_GE(result.states, 3u);
  }
}

}  // namespace
}  // namespace sde::trace
