#include <gtest/gtest.h>

#include <sstream>

#include "trace/metrics.hpp"
#include "trace/scenario.hpp"
#include "trace/table.hpp"

namespace sde::trace {
namespace {

TEST(Table, RendersAlignedGrid) {
  TextTable table({"a", "long header"});
  table.addRow({"xxxx", "1"});
  const std::string out = table.render();
  EXPECT_EQ(out,
            "+------+-------------+\n"
            "| a    | long header |\n"
            "+------+-------------+\n"
            "| xxxx | 1           |\n"
            "+------+-------------+\n");
}

TEST(TableDeathTest, RowWidthMismatchAborts) {
  TextTable table({"one"});
  EXPECT_DEATH(table.addRow({"a", "b"}), "width mismatch");
}

TEST(Format, DurationMatchesPaperStyle) {
  EXPECT_EQ(formatDuration(0.002), "2ms");
  EXPECT_EQ(formatDuration(7.4), "7s");
  EXPECT_EQ(formatDuration(98.0), "1m:38s");
  EXPECT_EQ(formatDuration(5880.0), "1h:38m");   // Table I's COW row
  EXPECT_EQ(formatDuration(34740.0), "9h:39m");  // Table I's COB row
}

TEST(Format, CountWithThousandsSeparators) {
  EXPECT_EQ(formatCount(0), "0");
  EXPECT_EQ(formatCount(999), "999");
  EXPECT_EQ(formatCount(1000), "1,000");
  EXPECT_EQ(formatCount(1025700), "1,025,700");  // Table I's COB states
}

TEST(Format, BytesHumanReadable) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2048), "2.0 KB");
  EXPECT_EQ(formatBytes(3650722202ull), "3.4 GB");  // Table I's COW RAM
}

TEST(Metrics, RecorderCapturesEngineProgress) {
  CollectScenarioConfig config;
  config.gridWidth = 2;
  config.gridHeight = 2;
  config.simulationTime = 3000;
  config.engine.sampleEveryEvents = 1;
  config.engine.adaptiveSampling = false;
  CollectScenario scenario(config);
  scenario.run();

  const auto& samples = scenario.metrics().samples();
  ASSERT_GT(samples.size(), 2u);
  // Monotone in events and virtual time; states never shrink.
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].events, samples[i - 1].events);
    EXPECT_GE(samples[i].virtualTime, samples[i - 1].virtualTime);
    EXPECT_GE(samples[i].states, samples[i - 1].states);
  }
  EXPECT_EQ(scenario.metrics().last().states,
            scenario.engine().numStates());
}

TEST(Metrics, CsvHasHeaderAndRows) {
  MetricsRecorder recorder;
  CollectScenarioConfig config;
  config.gridWidth = 2;
  config.gridHeight = 2;
  config.simulationTime = 2000;
  CollectScenario scenario(config);
  scenario.run();

  std::ostringstream os;
  scenario.metrics().writeCsv(os, "SDS");
  const std::string text = os.str();
  EXPECT_NE(text.find("series,wall_s,virtual_t,states,memory_bytes"),
            std::string::npos);
  EXPECT_NE(text.find("SDS,"), std::string::npos);
}

TEST(Scenario, SummarizeReflectsEngine) {
  CollectScenarioConfig config;
  config.gridWidth = 2;
  config.gridHeight = 2;
  config.simulationTime = 2000;
  CollectScenario scenario(config);
  const auto result = scenario.run();
  EXPECT_EQ(result.states, scenario.engine().numStates());
  EXPECT_EQ(result.groups, scenario.engine().mapper().numGroups());
  EXPECT_EQ(result.events, scenario.engine().eventsProcessed());
  EXPECT_GT(result.packets, 0u);
  EXPECT_GT(result.memoryBytes, 0u);
}

TEST(Scenario, SourceAndSinkPlacementMatchesFigureNine) {
  CollectScenarioConfig config;
  config.gridWidth = 3;
  config.gridHeight = 3;
  CollectScenario scenario(config);
  EXPECT_EQ(scenario.sink(), 0u);        // top-left corner
  EXPECT_EQ(scenario.source(), 8u);      // bottom-right corner
}

TEST(Scenario, FloodScenarioRunsAllMappers) {
  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    FloodScenarioConfig config;
    config.nodes = 3;
    config.simulationTime = 1500;
    config.mapper = kind;
    FloodScenario scenario(config);
    const auto result = scenario.run();
    EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
    EXPECT_GE(result.states, 3u);
  }
}

}  // namespace
}  // namespace sde::trace
