// End-to-end battery for the exploration service: a real forked daemon,
// real runner/fleet processes underneath, driven through the blocking
// Client. The invariants under test are the service's headline claims:
//   * a job's artifacts carry the digest of a direct fleet run,
//   * validation failures travel the wire as readable ErrorReplies,
//   * SIGKILLing the daemon mid-job loses no accepted work,
//   * strict priority preempts (suspends) lower-priority jobs,
//   * cancel is terminal and immediate for queued jobs.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/job.hpp"
#include "trace/scenario.hpp"

namespace sde::serve {
namespace {

namespace fs = std::filesystem;

bool sanitizersActive() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

fs::path freshRoot(const std::string& name) {
  const fs::path root = fs::path(::testing::TempDir()) / ("serve_" + name);
  fs::remove_all(root);
  fs::create_directories(root);
  return root;
}

trace::CollectScenarioConfig smallScenario() {
  trace::CollectScenarioConfig config;
  config.gridWidth = 4;
  config.gridHeight = 4;
  config.simulationTime = 3000;
  return config;
}

// Big enough (~2s wall) that preemption and mid-job kills have a window.
trace::CollectScenarioConfig longScenario() {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = 12000;
  return config;
}

SubmitRequest request(const trace::CollectScenarioConfig& scenario,
                      const std::string& tenant, std::uint32_t priority = 0,
                      std::uint32_t processes = 2) {
  SubmitRequest req;
  req.tenant = tenant;
  req.priority = priority;
  req.processes = processes;
  req.scenarioSpec = trace::encodeCollectScenarioSpec(scenario, 2);
  return req;
}

// The oracle: run the identical scenario as a direct fleet and take its
// digest. Flags mirror the service runner's (testcases off, cold cache
// is digest-safe either way).
std::uint64_t directDigest(const trace::CollectScenarioConfig& scenario,
                           const std::string& name) {
  const fs::path dir = freshRoot("direct_" + name);
  FleetConfig fleet;
  fleet.processes = 2;
  fleet.checkpointDir = dir.string();
  fleet.shmQueryCache = false;
  return trace::runCollectFleet(scenario, fleet, 2)
      .result.fingerprintDigest();
}

// Forks a child that IS the daemon (constructs it and runs the poll
// loop); returns once the socket accepts connections.
pid_t spawnDaemon(const ServeConfig& config) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    try {
      Daemon daemon(config);
      daemon.run();
      ::_exit(0);
    } catch (...) {
      ::_exit(9);
    }
  }
  return pid;
}

ServeConfig testConfig(const fs::path& root, unsigned slots) {
  ServeConfig config;
  config.root = root.string();
  config.slots = slots;
  config.pollMs = 10;  // tests want snappy scheduling decisions
  return config;
}

void reapDaemon(pid_t pid) {
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
}

void shutdownAndReap(const std::string& socket, pid_t pid) {
  try {
    Client client(socket);
    client.shutdownDaemon();
  } catch (const ServeError&) {
    ::kill(pid, SIGTERM);  // already gone or not accepting; force it
  }
  reapDaemon(pid);
}

JobStatus statusOf(Client& client, std::uint64_t jobId) {
  const auto jobs = client.status(jobId);
  EXPECT_EQ(jobs.size(), 1u);
  return jobs.empty() ? JobStatus{} : jobs[0];
}

// Polls `predicate` against the job's status until it holds or the
// timeout trips. Returns the last observed status either way.
JobStatus waitForJob(Client& client, std::uint64_t jobId,
                     const std::function<bool(const JobStatus&)>& predicate,
                     double timeoutSeconds = 60.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  JobStatus last;
  while (std::chrono::steady_clock::now() < deadline) {
    last = statusOf(client, jobId);
    if (predicate(last)) return last;
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  return last;
}

TEST(ServeE2eTest, JobCompletesWithTheDigestOfADirectFleetRun) {
  if (sanitizersActive()) GTEST_SKIP() << "forks real fleets";
  const fs::path root = freshRoot("digest");
  const pid_t daemon = spawnDaemon(testConfig(root, 4));
  const std::string socket = (root / "serve.sock").string();
  ASSERT_TRUE(waitForDaemon(socket, 20.0));

  Client client(socket);
  const std::uint64_t jobId = client.submit(request(smallScenario(), "alice"));
  EXPECT_EQ(jobId, 1u);

  std::uint32_t progressFrames = 0;
  const JobStatus final_ = client.watch(
      jobId, [&](const JobStatus&) { ++progressFrames; });
  EXPECT_EQ(final_.state, JobState::kDone);
  EXPECT_EQ(final_.partsDone, 4u);
  EXPECT_EQ(final_.partsTotal, 4u);
  EXPECT_GE(progressFrames, 1u);  // watch streamed at least one frame

  EXPECT_EQ(final_.digest, directDigest(smallScenario(), "digest"));

  // The published artifacts agree with the status digest.
  const auto names = client.listArtifacts(jobId);
  EXPECT_NE(std::find(names.begin(), names.end(), "digest.txt"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "summary.txt"),
            names.end());
  const std::string digestText = client.fetch(jobId, "digest.txt");
  EXPECT_EQ(std::stoull(digestText), final_.digest);
  // (Live eventsSeen counters are asserted in the sigkill test, whose
  // job runs long enough for the tailer to observe it mid-flight; this
  // one can finish inside a single daemon tick.)

  shutdownAndReap(socket, daemon);
}

TEST(ServeE2eTest, ValidationFailuresTravelTheWireAsErrorReplies) {
  if (sanitizersActive()) GTEST_SKIP() << "forks real fleets";
  const fs::path root = freshRoot("reject");
  const pid_t daemon = spawnDaemon(testConfig(root, 2));
  const std::string socket = (root / "serve.sock").string();
  ASSERT_TRUE(waitForDaemon(socket, 20.0));
  Client client(socket);

  const auto rejectionOf = [&](SubmitRequest req) -> std::string {
    try {
      (void)client.submit(req);
      return "";
    } catch (const ServeError& e) {
      return e.what();
    }
  };

  // Zero-budget job.
  auto zero = smallScenario();
  zero.simulationTime = 0;
  EXPECT_NE(rejectionOf(request(zero, "alice")).find("zero-budget"),
            std::string::npos);

  // Truncated spec.
  SubmitRequest truncated = request(smallScenario(), "alice");
  truncated.scenarioSpec =
      truncated.scenarioSpec.substr(0, truncated.scenarioSpec.rfind('='));
  EXPECT_NE(rejectionOf(truncated).find("truncated spec"), std::string::npos);

  // Unknown mapper.
  SubmitRequest mangled = request(smallScenario(), "alice");
  const std::size_t at = mangled.scenarioSpec.find("mapper=");
  ASSERT_NE(at, std::string::npos);
  mangled.scenarioSpec.replace(
      at, mangled.scenarioSpec.find(' ', at) - at, "mapper=XYZ");
  EXPECT_NE(rejectionOf(mangled).find("unknown mapper name \"XYZ\""),
            std::string::npos);

  // Rejections must not mint job ids: the next good submit is job 1.
  EXPECT_EQ(client.submit(request(smallScenario(), "alice")), 1u);

  shutdownAndReap(socket, daemon);
}

TEST(ServeE2eTest, DaemonSigkillLosesNoAcceptedJob) {
  if (sanitizersActive()) GTEST_SKIP() << "forks real fleets";
  const fs::path root = freshRoot("sigkill");
  const std::string socket = (root / "serve.sock").string();
  const std::uint64_t expected = directDigest(longScenario(), "sigkill");

  pid_t daemon = spawnDaemon(testConfig(root, 4));
  ASSERT_TRUE(waitForDaemon(socket, 20.0));
  std::uint64_t jobId = 0;
  {
    Client client(socket);
    jobId = client.submit(request(longScenario(), "alice"));
    // Let the fleet actually start exploring before the kill.
    (void)waitForJob(client, jobId, [](const JobStatus& s) {
      return s.state == JobState::kRunning && s.eventsSeen > 0;
    });
  }

  ASSERT_EQ(::kill(daemon, SIGKILL), 0);
  reapDaemon(daemon);
  // The runner notices via PDEATHSIG and suspends; give it a moment.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // A fresh daemon on the same root must rediscover and finish the job.
  daemon = spawnDaemon(testConfig(root, 4));
  ASSERT_TRUE(waitForDaemon(socket, 20.0));
  {
    Client client(socket);
    const auto rebuilt = statusOf(client, jobId);
    EXPECT_EQ(rebuilt.tenant, "alice");
    const JobStatus final_ = client.watch(jobId);
    EXPECT_EQ(final_.state, JobState::kDone);
    EXPECT_EQ(final_.digest, expected);
  }
  shutdownAndReap(socket, daemon);
}

TEST(ServeE2eTest, HigherPriorityPreemptsAndFinishesFirst) {
  if (sanitizersActive()) GTEST_SKIP() << "forks real fleets";
  const fs::path root = freshRoot("preempt");
  const std::string socket = (root / "serve.sock").string();
  const pid_t daemon = spawnDaemon(testConfig(root, 2));
  ASSERT_TRUE(waitForDaemon(socket, 20.0));

  Client client(socket);
  // The low-priority job fills the whole 2-slot pool...
  const std::uint64_t low =
      client.submit(request(longScenario(), "batch", 0, 2));
  (void)waitForJob(client, low, [](const JobStatus& s) {
    return s.state == JobState::kRunning && s.eventsSeen > 0;
  });
  // ...so the high-priority job can only run by preempting it.
  const std::uint64_t high =
      client.submit(request(smallScenario(), "vip", 5, 2));

  const JobStatus highFinal = client.watch(high);
  EXPECT_EQ(highFinal.state, JobState::kDone);
  EXPECT_EQ(highFinal.digest, directDigest(smallScenario(), "preempt_high"));
  // While the high job finished, the low one was preempted (suspended /
  // waiting), not completed — strict priority really displaced it.
  const JobStatus lowDuring = statusOf(client, low);
  EXPECT_NE(lowDuring.state, JobState::kDone);

  // The preempted job resumes from its checkpoints and still matches
  // the uninterrupted digest.
  const JobStatus lowFinal = client.watch(low);
  EXPECT_EQ(lowFinal.state, JobState::kDone);
  EXPECT_EQ(lowFinal.digest, directDigest(longScenario(), "preempt_low"));

  shutdownAndReap(socket, daemon);
}

TEST(ServeE2eTest, CancelledQueuedJobStaysCancelled) {
  if (sanitizersActive()) GTEST_SKIP() << "forks real fleets";
  const fs::path root = freshRoot("cancel");
  const std::string socket = (root / "serve.sock").string();
  const pid_t daemon = spawnDaemon(testConfig(root, 2));
  ASSERT_TRUE(waitForDaemon(socket, 20.0));

  Client client(socket);
  const std::uint64_t running =
      client.submit(request(longScenario(), "alice", 0, 2));
  (void)waitForJob(client, running, [](const JobStatus& s) {
    return s.state == JobState::kRunning;
  });
  // Equal priority + full pool: this one must be waiting its turn.
  const std::uint64_t queued =
      client.submit(request(smallScenario(), "alice", 0, 2));
  EXPECT_EQ(statusOf(client, queued).state, JobState::kQueued);

  EXPECT_EQ(client.cancel(queued), JobState::kCancelled);
  EXPECT_EQ(statusOf(client, queued).state, JobState::kCancelled);

  // The running job is unaffected and completes.
  const JobStatus final_ = client.watch(running);
  EXPECT_EQ(final_.state, JobState::kDone);
  // The cancelled job never ran: no result directory ever appeared.
  EXPECT_FALSE(fs::exists(jobResultDir(jobDir(root, queued))));
  EXPECT_EQ(statusOf(client, queued).state, JobState::kCancelled);

  shutdownAndReap(socket, daemon);
}

// The metrics plane's headline claim: counters fetched from the daemon
// for a completed job are byte-identical to the run's own post-run
// merged StatsRegistry — not approximately equal, the same bytes.
TEST(ServeE2eTest, MetricsFetchMatchesPostRunStatsExactly) {
  if (sanitizersActive()) GTEST_SKIP() << "forks real fleets";
  const fs::path root = freshRoot("metrics");
  const pid_t daemon = spawnDaemon(testConfig(root, 4));
  const std::string socket = (root / "serve.sock").string();
  ASSERT_TRUE(waitForDaemon(socket, 20.0));

  Client client(socket);
  const std::uint64_t jobId = client.submit(request(smallScenario(), "alice"));
  EXPECT_EQ(client.watch(jobId).state, JobState::kDone);

  // A done job's MetricsReply ships its durable metrics.sde verbatim.
  const MetricsReply reply = client.metrics(jobId);
  EXPECT_EQ(reply.snapshot, client.fetch(jobId, "metrics.sde"));

  const obs::MetricsSnapshot snap = obs::decodeMetricsSnapshot(reply.snapshot);
  ASSERT_FALSE(snap.points.empty());

  // Every "name = value" line of the post-run stats dump reappears in
  // the snapshot with the exact same value (snapshotFromStats lifts the
  // merged StatsRegistry verbatim; the live plane only ADDS series).
  std::istringstream stats(client.fetch(jobId, "stats.txt"));
  std::string line;
  std::size_t compared = 0;
  while (std::getline(stats, line)) {
    const std::size_t eq = line.find(" = ");
    if (eq == std::string::npos) continue;
    const std::string name = line.substr(0, eq);
    const std::uint64_t value = std::stoull(line.substr(eq + 3));
    ASSERT_EQ(snap.points.count(name), 1u) << name << " missing from snapshot";
    EXPECT_EQ(snap.value(name), value) << name;
    ++compared;
  }
  EXPECT_GE(compared, 5u) << "stats.txt suspiciously empty";

  // The Prometheus rendition carries the engine families.
  EXPECT_NE(reply.prometheus.find("# TYPE"), std::string::npos);
  EXPECT_NE(reply.prometheus.find("sde_engine"), std::string::npos);

  // Service-wide metrics (jobId 0) fold in the daemon's own telemetry:
  // slot gauges and per-tenant accounting with tenant labels.
  const MetricsReply service = client.metrics();
  const obs::MetricsSnapshot whole =
      obs::decodeMetricsSnapshot(service.snapshot);
  EXPECT_EQ(whole.value("serve.slots_total"), 4u);
  EXPECT_EQ(whole.value("serve.tenant.alice.jobs_submitted"), 1u);
  EXPECT_NE(
      service.prometheus.find("sde_serve_jobs_submitted{tenant=\"alice\"} 1"),
      std::string::npos)
      << service.prometheus;

  // Unknown jobs answer with an ErrorReply, not an empty snapshot.
  EXPECT_THROW((void)client.metrics(999), ServeError);

  shutdownAndReap(socket, daemon);
}

}  // namespace
}  // namespace sde::serve
