// WFQ scheduler (serve/scheduler.hpp): strict priority with preemption,
// weighted fair shares inside a class, per-tenant quotas, and the
// idle-tenant floor. Pure decision logic — every case is deterministic.
#include <gtest/gtest.h>

#include <algorithm>

#include "serve/scheduler.hpp"

namespace sde::serve {
namespace {

SchedJob job(std::uint64_t id, const std::string& tenant,
             std::uint32_t priority = 0, std::uint32_t slots = 1) {
  SchedJob j;
  j.id = id;
  j.tenant = tenant;
  j.priority = priority;
  j.slots = slots;
  return j;
}

bool contains(const std::vector<std::uint64_t>& ids, std::uint64_t id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

TEST(ServeSchedulerTest, StartsJobsUpToTheSlotPool) {
  Scheduler sched(2);
  const auto decision = sched.decide(
      {job(1, "a"), job(2, "b"), job(3, "c")}, {});
  EXPECT_EQ(decision.start.size(), 2u);
  EXPECT_TRUE(decision.preempt.empty());
}

TEST(ServeSchedulerTest, LeastVirtualTimeTenantGoesFirst) {
  Scheduler sched(1);
  sched.charge("light", 0.0);  // known to the scheduler from the start
  sched.charge("heavy", 100.0);
  const auto decision =
      sched.decide({job(1, "heavy"), job(2, "light")}, {});
  ASSERT_EQ(decision.start.size(), 1u);
  EXPECT_EQ(decision.start[0], 2u);  // light tenant owes less
}

TEST(ServeSchedulerTest, WeightsScaleTheFairShare) {
  Scheduler sched(1);
  sched.setTenantPolicy("gold", {4.0, 0});
  sched.setTenantPolicy("bronze", {1.0, 0});
  // Equal raw consumption: gold's virtual time advances 4x slower.
  sched.charge("gold", 12.0);
  sched.charge("bronze", 12.0);
  EXPECT_LT(sched.virtualTime("gold"), sched.virtualTime("bronze"));
  const auto decision =
      sched.decide({job(1, "bronze"), job(2, "gold")}, {});
  ASSERT_EQ(decision.start.size(), 1u);
  EXPECT_EQ(decision.start[0], 2u);
}

TEST(ServeSchedulerTest, QuotaCapsConcurrentSlots) {
  Scheduler sched(8);
  sched.setTenantPolicy("capped", {1.0, 2});
  const auto decision = sched.decide(
      {job(2, "capped", 0, 2), job(3, "other", 0, 1)},
      {job(1, "capped", 0, 2)});  // already at its 2-slot cap
  EXPECT_FALSE(contains(decision.start, 2u));
  EXPECT_TRUE(contains(decision.start, 3u));
  EXPECT_TRUE(decision.preempt.empty());
}

TEST(ServeSchedulerTest, HigherPriorityPreemptsStrictlyLower) {
  Scheduler sched(2);
  const auto decision = sched.decide(
      {job(3, "vip", 5, 2)},
      {job(1, "batch", 0, 1), job(2, "batch", 0, 1)});
  // Both low-priority holders must yield for the 2-slot vip job...
  EXPECT_EQ(decision.preempt.size(), 2u);
  // ...but suspend is asynchronous: the freed slots are not reusable
  // this tick, so the vip job starts on a later tick.
  EXPECT_TRUE(decision.start.empty());

  // Once the victims are gone the vip job starts.
  const auto after = sched.decide({job(3, "vip", 5, 2)}, {});
  EXPECT_TRUE(contains(after.start, 3u));
}

TEST(ServeSchedulerTest, EqualPriorityNeverPreempts) {
  Scheduler sched(1);
  const auto decision =
      sched.decide({job(2, "b", 3, 1)}, {job(1, "a", 3, 1)});
  EXPECT_TRUE(decision.start.empty());
  EXPECT_TRUE(decision.preempt.empty());
}

TEST(ServeSchedulerTest, CheapestVictimFirst) {
  Scheduler sched(4);
  const auto decision = sched.decide(
      {job(9, "vip", 9, 1)},
      {job(1, "low", 0, 2), job(2, "mid", 1, 1), job(3, "mid", 1, 1)});
  // One slot suffices; the lowest priority (and only) 0-class job is
  // preferred over mid-class ones even though it frees more slots.
  ASSERT_EQ(decision.preempt.size(), 1u);
  EXPECT_EQ(decision.preempt[0], 1u);
}

TEST(ServeSchedulerTest, IdleTenantDoesNotBankCredit) {
  Scheduler sched(1);
  sched.charge("steady", 50.0);
  // "newcomer" was idle the whole time; its virtual time floors to the
  // active minimum instead of zero, so it does not monopolise the pool.
  const auto first = sched.decide({job(1, "newcomer"), job(2, "steady")}, {});
  ASSERT_EQ(first.start.size(), 1u);
  EXPECT_EQ(first.start[0], 1u);  // ties at the floor break by name
  EXPECT_GE(sched.virtualTime("newcomer"), sched.virtualTime("steady"));
}

TEST(ServeSchedulerTest, DeterministicTieBreaks) {
  Scheduler sched(1);
  // Identical tenants and priorities: lowest id wins, every time.
  for (int round = 0; round < 3; ++round) {
    const auto decision =
        sched.decide({job(7, "t"), job(3, "t"), job(5, "t")}, {});
    ASSERT_EQ(decision.start.size(), 1u);
    EXPECT_EQ(decision.start[0], 3u);
  }
}

TEST(ServeSchedulerTest, OversizedJobWaitsWithoutBlockingTheQueue) {
  Scheduler sched(2);
  // A 4-slot job can never fit a 2-slot pool; the 1-slot job behind it
  // must still start (no head-of-line blocking at equal priority).
  const auto decision =
      sched.decide({job(1, "big", 0, 4), job(2, "small", 0, 1)}, {});
  EXPECT_FALSE(contains(decision.start, 1u));
  EXPECT_TRUE(contains(decision.start, 2u));
}

}  // namespace
}  // namespace sde::serve
