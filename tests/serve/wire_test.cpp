// Wire framing (serve/wire.hpp): length-prefixed frames must round-trip
// over real sockets, reassemble from arbitrary read(2) slices, and treat
// a corrupt length field as a 4-byte problem — never an allocation.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "serve/wire.hpp"

namespace sde::serve {
namespace {

// A connected AF_UNIX pair stands in for client/daemon in-process.
struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

TEST(WireTest, FramesRoundTripOverASocket) {
  SocketPair pair;
  const std::string small = "hello";
  std::string binary(100000, '\0');
  for (std::size_t i = 0; i < binary.size(); ++i)
    binary[i] = static_cast<char>(i * 31);

  sendFrame(pair.a, small);
  sendFrame(pair.a, binary);
  sendFrame(pair.a, "");  // empty frames are legal

  EXPECT_EQ(recvFrame(pair.b), small);
  EXPECT_EQ(recvFrame(pair.b), binary);
  EXPECT_EQ(recvFrame(pair.b), "");
}

TEST(WireTest, CleanEofIsNulloptButATornFrameThrows) {
  {
    SocketPair pair;
    ::close(pair.a);
    pair.a = -1;
    EXPECT_EQ(recvFrame(pair.b), std::nullopt);
  }
  {
    SocketPair pair;
    // Half a length prefix, then hangup: mid-frame EOF is an error.
    const char halfHeader[2] = {4, 0};
    ASSERT_EQ(::send(pair.a, halfHeader, sizeof halfHeader, 0),
              static_cast<ssize_t>(sizeof halfHeader));
    ::close(pair.a);
    pair.a = -1;
    EXPECT_THROW((void)recvFrame(pair.b), ServeError);
  }
}

TEST(WireTest, OversizedLengthIsRejectedBeforeAnyPayloadRead) {
  SocketPair pair;
  std::uint32_t huge = kMaxFrameBytes + 1;
  char header[4];
  std::memcpy(header, &huge, 4);
  ASSERT_EQ(::send(pair.a, header, 4, 0), 4);
  EXPECT_THROW((void)recvFrame(pair.b), ServeError);
}

TEST(WireTest, FrameBufferReassemblesFromSingleByteFeeds) {
  const std::string payload = "incremental reassembly";
  std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::string stream(4, '\0');
  std::memcpy(stream.data(), &length, 4);
  stream += payload;
  stream += stream;  // two identical frames back to back

  FrameBuffer buffer;
  std::vector<std::string> frames;
  for (char byte : stream) {
    buffer.feed(&byte, 1);
    while (auto frame = buffer.next()) frames.push_back(*frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], payload);
  EXPECT_EQ(frames[1], payload);
  EXPECT_EQ(buffer.next(), std::nullopt);
}

TEST(WireTest, FrameBufferRejectsOversizedLengthPrefix) {
  std::uint32_t huge = kMaxFrameBytes + 1;
  char header[4];
  std::memcpy(header, &huge, 4);
  FrameBuffer buffer;
  buffer.feed(header, 4);
  EXPECT_THROW((void)buffer.next(), ServeError);
}

TEST(WireTest, ConnectToNobodyThrows) {
  EXPECT_THROW((void)connectUnixSocket("/nonexistent/dir/serve.sock"),
               ServeError);
}

}  // namespace
}  // namespace sde::serve
