// Durable job store (serve/job.hpp) and results store (serve/results.hpp):
// the spec codec and its validation diagnostics, state derivation from
// the directory tree, registry rebuild after a crash, atomic publish,
// fetch sanitisation, and retention.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "serve/job.hpp"
#include "serve/results.hpp"
#include "snapshot/manifest.hpp"
#include "trace/scenario.hpp"

namespace sde::serve {
namespace {

namespace fs = std::filesystem;

fs::path freshRoot(const std::string& name) {
  const fs::path root = fs::path(::testing::TempDir()) / ("serve_" + name);
  fs::remove_all(root);
  fs::create_directories(jobsDir(root));
  return root;
}

std::string goodScenarioSpec(std::uint64_t simulationTime = 3000) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 4;
  config.gridHeight = 4;
  config.simulationTime = simulationTime;
  return trace::encodeCollectScenarioSpec(config, 2);
}

JobSpec goodSpec() {
  JobSpec spec;
  spec.tenant = "alice";
  spec.priority = 3;
  spec.processes = 2;
  spec.scenarioSpec = goodScenarioSpec();
  spec.collectTestcases = true;
  return spec;
}

TEST(JobSpecTest, CodecRoundTrips) {
  const fs::path root = freshRoot("codec");
  const fs::path dir = jobDir(root, 7);
  fs::create_directories(dir);
  const JobSpec spec = goodSpec();
  writeJobSpec(dir, spec);
  const JobSpec out = readJobSpec(dir);
  EXPECT_EQ(out.tenant, "alice");
  EXPECT_EQ(out.priority, 3u);
  EXPECT_EQ(out.processes, 2u);
  EXPECT_EQ(out.scenarioSpec, spec.scenarioSpec);
  EXPECT_TRUE(out.collectTestcases);
}

TEST(JobSpecTest, ValidationAcceptsAHealthySpec) {
  EXPECT_EQ(validateJobSpec(goodSpec()), std::nullopt);
}

TEST(JobSpecTest, ValidationDiagnosesEachRejection) {
  JobSpec spec = goodSpec();

  spec.tenant = "";
  auto why = validateJobSpec(spec);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("tenant"), std::string::npos);
  spec.tenant = "alice";

  spec.processes = 0;
  why = validateJobSpec(spec);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("at least 1"), std::string::npos);
  spec.processes = 999;
  why = validateJobSpec(spec);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("per-job limit of 256"), std::string::npos);
  spec.processes = 2;

  // Foreign tag: not a collect spec at all.
  spec.scenarioSpec = "bogus/9 width=4";
  why = validateJobSpec(spec);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("foreign or truncated"), std::string::npos);

  // Truncated mid-token: the codec fails, the diagnostic names the token.
  const std::string whole = goodScenarioSpec();
  spec.scenarioSpec = whole.substr(0, whole.rfind('=') );
  why = validateJobSpec(spec);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("truncated spec"), std::string::npos);

  // Unknown mapper: rewrite the mapper token of a valid spec.
  std::string mangled = whole;
  const std::size_t at = mangled.find("mapper=");
  ASSERT_NE(at, std::string::npos);
  mangled.replace(at, mangled.find(' ', at) - at, "mapper=XYZ");
  spec.scenarioSpec = mangled;
  why = validateJobSpec(spec);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("unknown mapper name \"XYZ\""), std::string::npos);

  // Zero-budget job: decodes fine, explores nothing.
  spec.scenarioSpec = goodScenarioSpec(0);
  why = validateJobSpec(spec);
  ASSERT_TRUE(why.has_value());
  EXPECT_NE(why->find("zero-budget"), std::string::npos);
}

TEST(JobStateTest, DerivationPrecedence) {
  const fs::path root = freshRoot("state");
  const fs::path dir = jobDir(root, 1);
  fs::create_directories(dir);
  EXPECT_EQ(deriveJobState(dir), JobState::kQueued);

  // A fleet manifest appears: the job ran at least once.
  fs::create_directories(jobQueueDir(dir));
  std::ofstream(snapshot::manifestPath(jobQueueDir(dir))) << "x";
  EXPECT_EQ(deriveJobState(dir), JobState::kSuspended);

  // error.txt outranks the checkpoints...
  std::ofstream(jobErrorPath(dir)) << "boom";
  EXPECT_EQ(deriveJobState(dir), JobState::kFailed);

  // ...result/ outranks the error (a re-run succeeded)...
  fs::create_directories(jobResultDir(dir));
  EXPECT_EQ(deriveJobState(dir), JobState::kDone);

  // ...and the cancel marker outranks everything.
  std::ofstream(jobCancelledMarker(dir)) << "";
  EXPECT_EQ(deriveJobState(dir), JobState::kCancelled);
}

TEST(JobRegistryTest, RebuildsFromDiskAndSkipsTornSpecs) {
  const fs::path root = freshRoot("rebuild");

  const fs::path dir2 = jobDir(root, 2);
  fs::create_directories(dir2);
  writeJobSpec(dir2, goodSpec());

  const fs::path dir5 = jobDir(root, 5);
  fs::create_directories(dir5);
  writeJobSpec(dir5, goodSpec());
  std::ofstream(jobErrorPath(dir5)) << "solver exploded\n";

  // Job 9 crashed between mkdir and the atomic spec write: half a file.
  const fs::path dir9 = jobDir(root, 9);
  fs::create_directories(dir9);
  std::ofstream(jobSpecPath(dir9)) << "SDEJB";  // torn

  // A foreign directory in jobs/ is ignored entirely.
  fs::create_directories(jobsDir(root) / "lost+found");

  const auto jobs = loadJobs(root);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs.at(2).state, JobState::kQueued);
  EXPECT_EQ(jobs.at(5).state, JobState::kFailed);
  EXPECT_NE(jobs.at(5).error.find("solver exploded"), std::string::npos);
  EXPECT_EQ(jobs.count(9), 0u);
  EXPECT_EQ(nextJobId(jobs), 6u);
  EXPECT_EQ(nextJobId({}), 1u);
}

TEST(ResultsTest, PublishIsAtomicAndFirstPublisherWins) {
  const fs::path root = freshRoot("publish");
  const fs::path dir = jobDir(root, 1);
  fs::create_directories(dir);

  publishResult(dir, [](const fs::path& stage) {
    std::ofstream(stage / "digest.txt") << "111\n";
  });
  EXPECT_EQ(deriveJobState(dir), JobState::kDone);
  EXPECT_FALSE(fs::exists(dir / "result.tmp"));

  // A second publisher (orphan runner racing a respawn) is discarded.
  publishResult(dir, [](const fs::path& stage) {
    std::ofstream(stage / "digest.txt") << "222\n";
  });
  std::ifstream is(jobResultDir(dir) / "digest.txt");
  std::string digest;
  is >> digest;
  EXPECT_EQ(digest, "111");

  const auto names = listArtifacts(dir);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "digest.txt");
}

TEST(ResultsTest, FetchSanitisesNamesAndBoundsSize) {
  const fs::path root = freshRoot("fetch");
  const fs::path dir = jobDir(root, 1);
  fs::create_directories(dir);
  publishResult(dir, [](const fs::path& stage) {
    std::ofstream(stage / "digest.txt") << "12345";
  });

  auto bytes = readArtifact(dir, "digest.txt");
  ASSERT_TRUE(bytes.has_value());
  EXPECT_EQ(*bytes, "12345");

  EXPECT_EQ(readArtifact(dir, "missing.txt"), std::nullopt);
  // Traversal attempts are not artifact names: nullopt, no filesystem
  // access outside result/.
  EXPECT_EQ(readArtifact(dir, "../spec.sde"), std::nullopt);
  EXPECT_EQ(readArtifact(dir, "a/b"), std::nullopt);
  EXPECT_EQ(readArtifact(dir, ""), std::nullopt);
  EXPECT_THROW((void)readArtifact(dir, "digest.txt", 3), ServeError);
}

TEST(ResultsTest, RetentionPrunesOldTerminalJobsOnly) {
  const fs::path root = freshRoot("retention");
  for (std::uint64_t id = 1; id <= 5; ++id) {
    const fs::path dir = jobDir(root, id);
    fs::create_directories(dir);
    writeJobSpec(dir, goodSpec());
  }
  // 1, 2, 4 are done; 3 is still queued; 5 failed (terminal too).
  for (std::uint64_t id : {1u, 2u, 4u})
    publishResult(jobDir(root, id),
                  [](const fs::path& stage) {
                    std::ofstream(stage / "digest.txt") << "x";
                  });
  std::ofstream(jobErrorPath(jobDir(root, 5))) << "boom";

  // keepLast=0 disables pruning entirely.
  EXPECT_TRUE(pruneResults(root, 0).empty());

  const auto pruned = pruneResults(root, 2);
  // Terminal jobs by id: 1, 2, 4, 5 — keep the newest two (4, 5).
  ASSERT_EQ(pruned.size(), 2u);
  EXPECT_EQ(pruned[0], 1u);
  EXPECT_EQ(pruned[1], 2u);
  EXPECT_FALSE(fs::exists(jobDir(root, 1)));
  EXPECT_FALSE(fs::exists(jobDir(root, 2)));
  EXPECT_TRUE(fs::exists(jobDir(root, 3)));  // queued: never pruned
  EXPECT_TRUE(fs::exists(jobDir(root, 4)));
  EXPECT_TRUE(fs::exists(jobDir(root, 5)));
}

}  // namespace
}  // namespace sde::serve
