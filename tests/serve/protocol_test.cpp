// Protocol codec (serve/protocol.hpp): every message round-trips through
// encode/decode unchanged, and malformed payloads fail loudly with
// ServeError instead of decoding into garbage.
#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "serve/protocol.hpp"

namespace sde::serve {
namespace {

template <typename T>
T roundTrip(const T& message) {
  const Message decoded = decodeMessage(encodeMessage(Message(message)));
  EXPECT_TRUE(std::holds_alternative<T>(decoded));
  return std::get<T>(decoded);
}

TEST(ProtocolTest, SubmitRequestRoundTrips) {
  SubmitRequest request;
  request.tenant = "alice";
  request.priority = 7;
  request.processes = 3;
  request.scenarioSpec = "collect/1 width=4 height=4";
  request.collectTestcases = true;
  const SubmitRequest out = roundTrip(request);
  EXPECT_EQ(out.tenant, "alice");
  EXPECT_EQ(out.priority, 7u);
  EXPECT_EQ(out.processes, 3u);
  EXPECT_EQ(out.scenarioSpec, request.scenarioSpec);
  EXPECT_TRUE(out.collectTestcases);
}

TEST(ProtocolTest, StatusAndProgressRoundTrip) {
  JobStatus status;
  status.jobId = 42;
  status.tenant = "bob";
  status.priority = 2;
  status.processes = 4;
  status.state = JobState::kSuspended;
  status.partsDone = 3;
  status.partsTotal = 8;
  status.eventsSeen = 123456789;
  status.statesSeen = 987654321;
  status.digest = 0xdeadbeefcafef00dull;
  status.error = "n/a";

  StatusReply reply;
  reply.jobs = {status, status};
  const StatusReply out = roundTrip(reply);
  ASSERT_EQ(out.jobs.size(), 2u);
  EXPECT_EQ(out.jobs[1].jobId, 42u);
  EXPECT_EQ(out.jobs[1].state, JobState::kSuspended);
  EXPECT_EQ(out.jobs[1].digest, 0xdeadbeefcafef00dull);
  EXPECT_EQ(out.jobs[1].error, "n/a");

  ProgressFrame frame;
  frame.status = status;
  frame.final = true;
  const ProgressFrame outFrame = roundTrip(frame);
  EXPECT_TRUE(outFrame.final);
  EXPECT_EQ(outFrame.status.eventsSeen, 123456789u);
}

TEST(ProtocolTest, RemainingMessagesRoundTrip) {
  EXPECT_EQ(roundTrip(SubmitReply{99}).jobId, 99u);
  EXPECT_EQ(roundTrip(ErrorReply{"nope"}).message, "nope");
  EXPECT_EQ(roundTrip(StatusRequest{5}).jobId, 5u);
  EXPECT_EQ(roundTrip(WatchRequest{6}).jobId, 6u);
  EXPECT_EQ(roundTrip(CancelRequest{7}).jobId, 7u);
  EXPECT_EQ(roundTrip(CancelReply{JobState::kDone}).state, JobState::kDone);
  EXPECT_EQ(roundTrip(ListArtifactsRequest{8}).jobId, 8u);
  const ArtifactList list = roundTrip(ArtifactList{{"digest.txt", "a.trc"}});
  ASSERT_EQ(list.names.size(), 2u);
  EXPECT_EQ(list.names[1], "a.trc");
  FetchRequest fetch;
  fetch.jobId = 9;
  fetch.name = "digest.txt";
  EXPECT_EQ(roundTrip(fetch).name, "digest.txt");
  ArtifactReply artifact;
  artifact.name = "blob";
  artifact.bytes = std::string("\x00\x01\x02", 3);
  EXPECT_EQ(roundTrip(artifact).bytes.size(), 3u);
  (void)roundTrip(ShutdownRequest{});
  (void)roundTrip(ShutdownReply{});
  EXPECT_EQ(roundTrip(MetricsRequest{12}).jobId, 12u);
  EXPECT_EQ(roundTrip(MetricsRequest{}).jobId, 0u);  // service-wide
  MetricsReply metrics;
  metrics.prometheus = "# TYPE sde_engine_forks_total counter\n";
  metrics.snapshot = std::string("SDEMETRX\x01\x00", 10);  // binary-safe
  const MetricsReply outMetrics = roundTrip(metrics);
  EXPECT_EQ(outMetrics.prometheus, metrics.prometheus);
  EXPECT_EQ(outMetrics.snapshot, metrics.snapshot);
}

TEST(ProtocolTest, UnknownTagThrows) {
  std::string payload(1, '\xEE');
  EXPECT_THROW((void)decodeMessage(payload), ServeError);
  EXPECT_THROW((void)decodeMessage(std::string()), ServeError);
}

TEST(ProtocolTest, TruncatedPayloadThrowsNotGarbage) {
  SubmitRequest request;
  request.tenant = "alice";
  request.scenarioSpec = "collect/1 width=4";
  const std::string whole = encodeMessage(Message(request));
  // Every strict prefix must fail loudly (the tag-only prefix included).
  for (std::size_t cut = 1; cut < whole.size(); ++cut)
    EXPECT_THROW((void)decodeMessage(whole.substr(0, cut)), ServeError)
        << "prefix of " << cut << " bytes decoded";
}

TEST(ProtocolTest, JobStateNamesAndTerminality) {
  EXPECT_EQ(jobStateName(JobState::kQueued), "queued");
  EXPECT_EQ(jobStateName(JobState::kRunning), "running");
  EXPECT_EQ(jobStateName(JobState::kSuspended), "suspended");
  EXPECT_EQ(jobStateName(JobState::kDone), "done");
  EXPECT_EQ(jobStateName(JobState::kFailed), "failed");
  EXPECT_EQ(jobStateName(JobState::kCancelled), "cancelled");
  EXPECT_FALSE(terminalJobState(JobState::kQueued));
  EXPECT_FALSE(terminalJobState(JobState::kRunning));
  EXPECT_FALSE(terminalJobState(JobState::kSuspended));
  EXPECT_TRUE(terminalJobState(JobState::kDone));
  EXPECT_TRUE(terminalJobState(JobState::kFailed));
  EXPECT_TRUE(terminalJobState(JobState::kCancelled));
}

}  // namespace
}  // namespace sde::serve
