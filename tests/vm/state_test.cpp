// ExecutionState: fork semantics and the two configuration fingerprints
// (content vs strict; see duplicates.hpp for why both exist).
#include <gtest/gtest.h>

#include "vm/builder.hpp"
#include "vm/state.hpp"

namespace sde::vm {
namespace {

class StateTest : public ::testing::Test {
 protected:
  StateTest() {
    IRBuilder b("noop");
    b.setGlobals(2);
    b.beginEntry(Entry::kInit);
    b.halt();
    program = b.finish();
  }

  ExecutionState makeState(NodeId node = 1) {
    ExecutionState state(nextId++, node, program);
    state.space.initGlobals(ctx, 2);
    return state;
  }

  expr::Context ctx;
  Program program;
  StateId nextId = 0;
};

TEST_F(StateTest, ForkCopiesEverythingButId) {
  ExecutionState s = makeState();
  s.pc = 7;
  s.clock = 42;
  s.callStack = {1, 2};
  s.constraints.add(ctx.variable("c", 1));
  s.commLog.push_back({true, 2, 10, 0xfeed, 3});
  s.symbolics.push_back(ctx.variable("c", 1));
  s.symbolicCounters["drop"] = 2;
  s.executedInstructions = 99;

  auto clone = s.fork(1234);
  EXPECT_EQ(clone->id(), 1234u);
  EXPECT_NE(clone->id(), s.id());
  EXPECT_EQ(clone->node(), s.node());
  EXPECT_EQ(clone->pc, 7u);
  EXPECT_EQ(clone->clock, 42u);
  EXPECT_EQ(clone->callStack, s.callStack);
  EXPECT_EQ(clone->constraints.size(), 1u);
  EXPECT_EQ(clone->commLog.size(), 1u);
  EXPECT_EQ(clone->symbolics.size(), 1u);
  EXPECT_EQ(clone->symbolicCounters.at("drop"), 2u);
  EXPECT_EQ(clone->executedInstructions, 99u);
  EXPECT_EQ(clone->configHash(), s.configHash());
  EXPECT_EQ(clone->configHashStrict(), s.configHashStrict());
}

TEST_F(StateTest, ForkedMemoryIsIndependent) {
  ExecutionState s = makeState();
  auto clone = s.fork(99);
  clone->space.store(kGlobalsObject, 0, ctx.constant(5, 64));
  EXPECT_EQ(s.space.load(kGlobalsObject, 0), ctx.constant(0, 64));
  EXPECT_NE(clone->configHash(), s.configHash());
}

TEST_F(StateTest, ContentHashIgnoresPacketIds) {
  // Two states that exchanged *content-identical* packets with different
  // ids: equal content hash, different strict hash.
  ExecutionState a = makeState();
  ExecutionState b = makeState();
  a.commLog.push_back({false, 2, 10, 0xabc, /*packetId=*/7});
  b.commLog.push_back({false, 2, 10, 0xabc, /*packetId=*/8});
  EXPECT_EQ(a.configHash(), b.configHash());
  EXPECT_NE(a.configHashStrict(), b.configHashStrict());
}

TEST_F(StateTest, StrictHashSeesPendingPacketIdentity) {
  ExecutionState a = makeState();
  ExecutionState b = makeState();
  PendingEvent ea;
  ea.kind = EventKind::kRecv;
  ea.time = 5;
  ea.b = 100;
  PendingEvent eb = ea;
  eb.b = 200;
  a.pendingEvents.push_back(ea);
  b.pendingEvents.push_back(eb);
  EXPECT_EQ(a.configHash(), b.configHash());
  EXPECT_NE(a.configHashStrict(), b.configHashStrict());
}

TEST_F(StateTest, HashCoversStatusClockAndFailure) {
  ExecutionState a = makeState();
  const auto base = a.configHash();
  a.status = StateStatus::kFailed;
  EXPECT_NE(a.configHash(), base);
  a.status = StateStatus::kIdle;
  a.clock = 77;
  EXPECT_NE(a.configHash(), base);
  a.clock = 0;
  a.failureMessage = "boom";
  EXPECT_NE(a.configHash(), base);
}

TEST_F(StateTest, HashCoversRegistersAndConstraints) {
  ExecutionState a = makeState();
  const auto base = a.configHash();
  a.regs_[5] = ctx.constant(1, 64);
  const auto withReg = a.configHash();
  EXPECT_NE(withReg, base);
  a.constraints.add(ctx.variable("x", 1));
  EXPECT_NE(a.configHash(), withReg);
}

TEST_F(StateTest, TerminalPredicate) {
  ExecutionState s = makeState();
  EXPECT_FALSE(s.isTerminal());
  for (const StateStatus status :
       {StateStatus::kFailed, StateStatus::kInfeasible,
        StateStatus::kKilled}) {
    s.status = status;
    EXPECT_TRUE(s.isTerminal());
  }
  s.status = StateStatus::kRunning;
  EXPECT_FALSE(s.isTerminal());
}

TEST_F(StateTest, NodeIdsDifferentiateHashes) {
  ExecutionState a = makeState(1);
  ExecutionState b = makeState(2);
  EXPECT_NE(a.configHash(), b.configHash());
}

TEST_F(StateTest, ForkCopyCostIsBoundedRegardlessOfHistorySize) {
  // The O(1)-fork claim at the state level: growing every append-only
  // history tenfold must not grow the fork's deep-copy cost — only the
  // bounded sequence tails (< one chunk each) are ever copied.
  const std::size_t chunk = support::PVector<expr::Ref>::chunkCapacity();
  const auto grow = [&](ExecutionState& s, std::uint64_t records) {
    for (std::uint64_t i = 0; i < records; ++i) {
      s.constraints.add(ctx.ult(ctx.variable("v", 16),
                                ctx.constant(i + 1, 16)));
      s.commLog.push_back({true, 2, i, i * 31, i});
      s.decisions.push_back({ctx.variable("d", 1), i % 2 == 0});
      s.symbolics.push_back(ctx.variable("s" + std::to_string(i), 8));
      PendingEvent event;
      event.time = i;
      event.seq = s.nextEventSeq++;
      s.pendingEvents.push_back(std::move(event));
    }
  };

  ExecutionState small = makeState();
  grow(small, 50);
  ExecutionState large = makeState();
  grow(large, 500);

  // Four chunked sequences with tails under one chunk each, plus the
  // CoW event queue at zero.
  EXPECT_LE(small.forkCopyCost(), 4 * (chunk - 1));
  EXPECT_LE(large.forkCopyCost(), 4 * (chunk - 1));
  EXPECT_GT(large.forkSharedChunks(), small.forkSharedChunks());

  // The advertised cost matches what a fork actually deep-copies.
  auto& stats = support::persistStats();
  const std::uint64_t before =
      stats.elementsCopied.load(std::memory_order_relaxed);
  const auto clone = large.fork(4242);
  const std::uint64_t copied =
      stats.elementsCopied.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(copied, large.forkCopyCost());
  EXPECT_EQ(clone->configHash(), large.configHash());
  EXPECT_EQ(clone->configHashStrict(), large.configHashStrict());
}

TEST_F(StateTest, AccountBytesChargesSharedHistoryOnce) {
  ExecutionState s = makeState();
  for (std::uint64_t i = 0; i < 200; ++i) {
    s.constraints.add(ctx.ult(ctx.variable("v", 16), ctx.constant(i + 1, 16)));
    s.commLog.push_back({true, 2, i, i * 31, i});
  }
  std::map<const void*, std::uint64_t> seenSolo;
  const std::uint64_t solo = s.accountBytes(seenSolo);

  const auto clone = s.fork(777);
  std::map<const void*, std::uint64_t> seenPair;
  const std::uint64_t pair =
      s.accountBytes(seenPair) + clone->accountBytes(seenPair);
  // Far from double: the clone re-pays only tails and fixed overhead.
  EXPECT_LT(pair, 2 * solo);

  // Order independence of the seen-map discipline.
  std::map<const void*, std::uint64_t> seenReversed;
  const std::uint64_t reversed =
      clone->accountBytes(seenReversed) + s.accountBytes(seenReversed);
  EXPECT_EQ(reversed, pair);

  // The legacy deep-copy representation is the upper bound.
  support::ScopedDeepCopyMode legacy;
  const auto deepClone = s.fork(778);
  std::map<const void*, std::uint64_t> seenDeep;
  const std::uint64_t deep =
      s.accountBytes(seenDeep) + deepClone->accountBytes(seenDeep);
  EXPECT_LE(pair, deep);
}

}  // namespace
}  // namespace sde::vm
