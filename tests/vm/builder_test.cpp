#include <gtest/gtest.h>

#include "vm/builder.hpp"

namespace sde::vm {
namespace {

TEST(Builder, EntriesRecorded) {
  IRBuilder b("prog");
  b.setGlobals(4);
  b.beginEntry(Entry::kInit);
  b.halt();
  b.beginEntry(Entry::kTimer);
  b.halt();
  const Program p = b.finish();
  EXPECT_EQ(p.entry(Entry::kInit), 0u);
  EXPECT_EQ(p.entry(Entry::kTimer), 1u);
  EXPECT_EQ(p.entry(Entry::kRecv), std::nullopt);
  EXPECT_EQ(p.globalsSize(), 4u);
  EXPECT_EQ(p.name(), "prog");
}

TEST(Builder, LabelFixupsPatchTargets) {
  IRBuilder b("prog");
  b.beginEntry(Entry::kInit);
  auto skip = b.newLabel();
  b.jump(skip);          // 0
  b.fail("unreachable");  // 1
  b.bind(skip);
  b.halt();  // 2
  const Program p = b.finish();
  EXPECT_EQ(p.at(0).op, Op::kJmp);
  EXPECT_EQ(p.at(0).imm, 2);
}

TEST(Builder, BranchPatchesBothEdges) {
  IRBuilder b("prog");
  b.beginEntry(Entry::kInit);
  auto yes = b.newLabel();
  auto no = b.newLabel();
  b.constant(Reg(0), 1);   // 0
  b.branch(Reg(0), yes, no);  // 1
  b.bind(yes);
  b.halt();  // 2
  b.bind(no);
  b.fail("no");  // 3
  const Program p = b.finish();
  EXPECT_EQ(p.at(1).op, Op::kBr);
  EXPECT_EQ(p.at(1).imm, 2);
  EXPECT_EQ(p.at(1).imm2, 3);
}

TEST(Builder, CallFixupsResolveByName) {
  IRBuilder b("prog");
  b.beginEntry(Entry::kInit);
  b.call("helper");  // 0
  b.halt();          // 1
  b.beginFunction("helper");
  b.ret();  // 2
  const Program p = b.finish();
  EXPECT_EQ(p.at(0).op, Op::kCall);
  EXPECT_EQ(p.at(0).imm, 2);
}

TEST(Builder, StringsInterned) {
  IRBuilder b("prog");
  b.beginEntry(Entry::kInit);
  b.fail("boom");  // 0
  b.fail("boom");  // 1
  b.fail("bang");  // 2
  const Program p = b.finish();
  EXPECT_EQ(p.at(0).str, p.at(1).str);
  EXPECT_NE(p.at(0).str, p.at(2).str);
  EXPECT_EQ(p.string(p.at(2).str), "bang");
}

TEST(Builder, DisassemblyMentionsEntriesAndOps) {
  IRBuilder b("demo");
  b.beginEntry(Entry::kInit);
  b.constant(Reg(1), 42);
  b.halt();
  const Program p = b.finish();
  const std::string dis = p.disassemble();
  EXPECT_NE(dis.find("program demo"), std::string::npos);
  EXPECT_NE(dis.find("entry init"), std::string::npos);
  EXPECT_NE(dis.find("const"), std::string::npos);
  EXPECT_NE(dis.find("halt"), std::string::npos);
}

TEST(BuilderDeathTest, UnboundLabelRejected) {
  IRBuilder b("prog");
  b.beginEntry(Entry::kInit);
  auto dangling = b.newLabel();
  b.jump(dangling);
  EXPECT_DEATH((void)b.finish(), "unbound label");
}

TEST(BuilderDeathTest, UndefinedFunctionRejected) {
  IRBuilder b("prog");
  b.beginEntry(Entry::kInit);
  b.call("nope");
  EXPECT_DEATH((void)b.finish(), "undefined function");
}

TEST(BuilderDeathTest, DoubleEntryRejected) {
  IRBuilder b("prog");
  b.beginEntry(Entry::kInit);
  EXPECT_DEATH(b.beginEntry(Entry::kInit), "twice");
}

}  // namespace
}  // namespace sde::vm
