// Differential dispatch oracle (the battery certifying the VM hot path).
//
// Threaded dispatch, superinstruction fusion and same-key event batching
// are pure performance transformations: exploring the same random
// program under any dispatch mode and batch setting must reproduce the
// *identical* observable run — test-case set, engine/interpreter/solver
// counters, and the exact trace byte stream — for every mapping
// algorithm. Any divergence is a soundness bug: a handler body drifting
// from the switch interpreter, a fused pair mis-accounting a mid-pair
// step-limit kill, or batching reordering the deterministic release
// order.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>

#include "../sde/random_program.hpp"
#include "obs/trace_io.hpp"
#include "sde/explode.hpp"
#include "sde/parallel.hpp"
#include "vm/dispatch.hpp"

namespace sde {
namespace {

struct DispatchDigest {
  RunOutcome outcome = RunOutcome::kCompleted;
  std::uint64_t numStates = 0;
  std::uint64_t batchedEvents = 0;  // raw, for the vacuity check only
  std::map<std::string, std::uint64_t> engineStats;
  std::map<std::string, std::uint64_t> interpStats;
  std::map<std::string, std::uint64_t> solverStats;
  std::set<std::string> testcases;
  std::string traceBytes;
};

DispatchDigest runOnce(const vm::Program& program, MapperKind kind,
                       vm::DispatchMode dispatch, bool batchEvents) {
  os::NetworkPlan plan(net::Topology::line(3));
  plan.runEverywhere(program);
  EngineConfig config;
  config.maxStates = 3'000;
  config.maxEvents = 10'000;
  config.solver.enumeration.maxCandidates = 1u << 12;
  config.interp.dispatch = dispatch;
  config.batchEvents = batchEvents;
  Engine engine(plan, kind, config);

  obs::MemoryTraceSink sink;
  engine.setTraceSink(&sink);

  DispatchDigest digest;
  digest.outcome = engine.run(2000);
  digest.numStates = engine.numStates();
  digest.batchedEvents = engine.batchedEvents();
  // Batch shape diagnostics are engine members, not registry counters,
  // precisely so the full stats maps compare clean across batch modes.
  digest.engineStats = engine.stats().all();
  digest.interpStats = engine.interpStats().all();
  digest.solverStats = engine.solverStats().all();
  engine.mapper().checkInvariants();

  // Serialize the captured events through the container writer: the
  // oracle compares the exact bytes a trace file would hold (stamps,
  // ordering, payloads), not a lossy summary.
  obs::TraceFile file;
  file.header.numNodes = 3;
  file.header.mapper = std::string(mapperKindName(kind));
  file.header.scenario = "dispatch_fuzz";
  file.events = sink.events();
  std::ostringstream bytes;
  obs::writeTrace(bytes, file);
  digest.traceBytes = bytes.str();

  ExplosionIterator scenarios(engine.mapper());
  while (const auto scenario = scenarios.next()) {
    for (std::string& testcase : expandedScenarioTestcases(
             engine.context(), engine.solver(), *scenario))
      digest.testcases.insert(std::move(testcase));
  }
  return digest;
}

void expectSameRun(const DispatchDigest& base, const DispatchDigest& other,
                   std::uint64_t seed, const char* label) {
  EXPECT_EQ(base.outcome, other.outcome) << label << " seed " << seed;
  EXPECT_EQ(base.numStates, other.numStates) << label << " seed " << seed;
  EXPECT_EQ(base.testcases, other.testcases) << label << " seed " << seed;
  EXPECT_EQ(base.engineStats, other.engineStats) << label << " seed " << seed;
  EXPECT_EQ(base.interpStats, other.interpStats) << label << " seed " << seed;
  EXPECT_EQ(base.solverStats, other.solverStats) << label << " seed " << seed;
  EXPECT_EQ(base.traceBytes, other.traceBytes) << label << " seed " << seed;
}

class DispatchEquivalenceFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, MapperKind>> {};

TEST_P(DispatchEquivalenceFuzzTest, AllDispatchModesReproduceTheRun) {
  const auto [seed, kind] = GetParam();
  RandomProgramGen gen(seed);
  const vm::Program program = gen.generate();

  // Baseline: the historical switch interpreter, one event per pop.
  const DispatchDigest base =
      runOnce(program, kind, vm::DispatchMode::kSwitch, /*batchEvents=*/false);
  if (base.outcome != RunOutcome::kCompleted)
    GTEST_SKIP() << "seed " << seed << " exceeds the exploration budget";

  expectSameRun(base,
                runOnce(program, kind, vm::DispatchMode::kSwitch, true), seed,
                "switch+batch");
  expectSameRun(base,
                runOnce(program, kind, vm::DispatchMode::kThreaded, false),
                seed, "threaded");
  expectSameRun(base, runOnce(program, kind, vm::DispatchMode::kFused, false),
                seed, "fused");
  expectSameRun(base, runOnce(program, kind, vm::DispatchMode::kFused, true),
                seed, "fused+batch");
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByMapper, DispatchEquivalenceFuzzTest,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55, 66),
                       ::testing::Values(MapperKind::kCob, MapperKind::kCow,
                                         MapperKind::kSds)),
    [](const auto& info) {
      return std::string(mapperKindName(std::get<1>(info.param))) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

// Anti-vacuity sentinels: the differential oracle proves nothing if the
// battery's programs never exercise the transformed paths.
TEST(DispatchEquivalenceVacuityTest, BatteryProgramsActuallyFuse) {
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    RandomProgramGen gen(seed);
    const vm::Program program = gen.generate();
    const vm::DecodedProgram decoded(program, /*fuse=*/true);
    EXPECT_GT(decoded.fusedSlots(), 0u)
        << "seed " << seed << ": no superinstruction ever formed";
  }
}

TEST(DispatchEquivalenceVacuityTest, BatteryRunsActuallyBatch) {
  // Batching needs sibling states dispatching the same handler at the
  // same instant (forked timers / deliveries), which not every seed
  // produces — require the battery as a whole to exercise it.
  std::uint64_t batchedEvents = 0;
  for (const std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    RandomProgramGen gen(seed);
    const vm::Program program = gen.generate();
    const DispatchDigest batched =
        runOnce(program, MapperKind::kSds, vm::DispatchMode::kFused, true);
    batchedEvents += batched.batchedEvents;
    // With batching off every pop is its own batch of one.
    const DispatchDigest unbatched =
        runOnce(program, MapperKind::kSds, vm::DispatchMode::kFused, false);
    EXPECT_EQ(unbatched.batchedEvents, 0u) << "seed " << seed;
  }
  EXPECT_GT(batchedEvents, 0u) << "the battery never batched";
}

}  // namespace
}  // namespace sde
