// Differential fuzz oracle for the persistent state representation.
//
// The structurally-shared fork (PVector chunks, CoW event queue,
// incremental fingerprints) is a pure representation change: running the
// same random program under the legacy eager-copy mode must produce the
// *same exploration* — identical state digests, identical dscenario
// universes, identical semantic statistics — while the persistent mode
// accounts no more memory. Any divergence here is aliasing (a fork
// observing its sibling's mutations) or a fingerprint drifting from the
// content it summarises.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <tuple>

#include "../sde/random_program.hpp"
#include "sde/explode.hpp"
#include "sde/sds.hpp"
#include "support/pvector.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

// Counters that describe the exploration itself. Fork-cost counters
// (engine.fork_copied_elements, map.*_copy_elements, ...) legitimately
// differ between the two representations and are excluded on purpose.
constexpr std::string_view kSemanticCounters[] = {
    "engine.events",        "engine.forks_total",  "engine.forks_local",
    "engine.forks_mapping", "engine.packets",      "engine.failure_forks",
    "engine.peak_states",   "engine.initial_states",
    "net.undeliverable",
};

struct RunDigest {
  RunOutcome outcome = RunOutcome::kCompleted;
  std::uint64_t numStates = 0;
  std::uint64_t eventsProcessed = 0;
  std::multiset<std::uint64_t> contentHashes;
  std::multiset<std::uint64_t> strictHashes;
  std::set<std::uint64_t> scenarios;
  std::map<std::string_view, std::uint64_t> counters;
  std::uint64_t memoryBytes = 0;
};

RunDigest runOnce(const vm::Program& program, MapperKind kind) {
  os::NetworkPlan plan(net::Topology::line(3));
  plan.runEverywhere(program);
  EngineConfig config;
  config.maxStates = 3'000;
  config.maxEvents = 10'000;
  config.solver.enumeration.maxCandidates = 1u << 12;
  Engine engine(plan, kind, config);

  RunDigest digest;
  digest.outcome = engine.run(2000);
  digest.numStates = engine.numStates();
  digest.eventsProcessed = engine.eventsProcessed();
  for (const auto& state : engine.states()) {
    digest.contentHashes.insert(state->configHash());
    digest.strictHashes.insert(state->configHashStrict());
  }
  const auto prints = scenarioFingerprints(engine.mapper());
  digest.scenarios.insert(prints.begin(), prints.end());
  for (const std::string_view counter : kSemanticCounters)
    digest.counters[counter] = engine.stats().get(counter);
  digest.memoryBytes = engine.simulatedMemoryBytes();
  return digest;
}

class ForkSharingFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, MapperKind>> {};

TEST_P(ForkSharingFuzzTest, PersistentForksMatchEagerDeepCopies) {
  const auto [seed, kind] = GetParam();
  RandomProgramGen gen(seed);
  const vm::Program program = gen.generate();

  ASSERT_FALSE(support::persistDeepCopyMode());
  const RunDigest persistent = runOnce(program, kind);
  RunDigest legacy;
  {
    support::ScopedDeepCopyMode deepCopies;
    legacy = runOnce(program, kind);
  }

  ASSERT_EQ(persistent.outcome, legacy.outcome) << "seed " << seed;
  if (persistent.outcome != RunOutcome::kCompleted)
    GTEST_SKIP() << "seed " << seed << " exceeds the exploration budget";

  EXPECT_EQ(persistent.numStates, legacy.numStates) << "seed " << seed;
  EXPECT_EQ(persistent.eventsProcessed, legacy.eventsProcessed)
      << "seed " << seed;
  EXPECT_EQ(persistent.contentHashes, legacy.contentHashes) << "seed " << seed;
  EXPECT_EQ(persistent.strictHashes, legacy.strictHashes) << "seed " << seed;
  EXPECT_EQ(persistent.scenarios, legacy.scenarios) << "seed " << seed;
  for (const std::string_view counter : kSemanticCounters) {
    EXPECT_EQ(persistent.counters.at(counter), legacy.counters.at(counter))
        << "seed " << seed << " counter " << counter;
  }
  // Structural sharing can only reduce the accounted footprint.
  EXPECT_LE(persistent.memoryBytes, legacy.memoryBytes) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByMapper, ForkSharingFuzzTest,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55, 66, 77, 88),
                       ::testing::Values(MapperKind::kCob, MapperKind::kCow,
                                         MapperKind::kSds)),
    [](const auto& info) {
      return std::string(mapperKindName(std::get<1>(info.param))) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace sde
