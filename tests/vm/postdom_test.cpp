// Property tests for the post-dominator analysis the merge-aware
// interpreter parks on. The oracle is the definition itself, checked by
// brute force over the very successor model the analysis uses: `a`
// post-dominates `b` iff removing `a` disconnects `b` from EXIT. Random
// block soups (including backward edges, i.e. loops and unreachable
// regions) and the structured random handler programs both have to
// satisfy it.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "../sde/random_program.hpp"
#include "support/rng.hpp"
#include "vm/builder.hpp"
#include "vm/postdom.hpp"

namespace sde::vm {
namespace {

std::vector<std::vector<std::size_t>> successorGraph(const Program& program) {
  std::vector<std::vector<std::size_t>> succ(program.size() + 1);
  for (std::size_t pc = 0; pc < program.size(); ++pc)
    succ[pc] = PostDominators::successors(program, pc);
  return succ;
}

// Can `from` reach EXIT without passing through `avoid`? (`from` itself
// may equal `avoid` only if from == exit.)
bool reachesExitAvoiding(const std::vector<std::vector<std::size_t>>& succ,
                         std::size_t exit, std::size_t from,
                         std::size_t avoid) {
  if (from == avoid) return from == exit;
  std::vector<bool> seen(succ.size(), false);
  std::deque<std::size_t> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    const std::size_t at = queue.front();
    queue.pop_front();
    if (at == exit) return true;
    for (const std::size_t next : succ[at]) {
      if (next == avoid || seen[next]) continue;
      seen[next] = true;
      queue.push_back(next);
    }
  }
  return false;
}

bool reachesExit(const std::vector<std::vector<std::size_t>>& succ,
                 std::size_t exit, std::size_t from) {
  // No node to avoid: exit+1 is outside the graph.
  return reachesExitAvoiding(succ, exit, from, succ.size());
}

// Brute-force strict-or-reflexive post-dominance per the definition.
bool bruteForcePdom(const std::vector<std::vector<std::size_t>>& succ,
                    std::size_t exit, std::size_t a, std::size_t b) {
  if (a == b) return true;
  return !reachesExitAvoiding(succ, exit, b, a);
}

void checkProgram(const Program& program) {
  const PostDominators pdoms(program);
  const auto succ = successorGraph(program);
  const std::size_t exit = pdoms.exitNode();
  ASSERT_EQ(exit, program.size());

  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    if (!reachesExit(succ, exit, pc)) {
      // No path to EXIT: nothing sound to park at.
      EXPECT_EQ(pdoms.ipdom(pc), exit) << "pc " << pc;
      continue;
    }
    const std::size_t ipdom = pdoms.ipdom(pc);
    EXPECT_NE(ipdom, pc) << "pc " << pc << ": ipdom must be strict";
    EXPECT_TRUE(bruteForcePdom(succ, exit, ipdom, pc))
        << "pc " << pc << ": ipdom " << ipdom << " is not a post-dominator";
    // Immediacy: every other strict post-dominator of pc also
    // post-dominates the ipdom (the ipdom is the nearest one).
    for (std::size_t other = 0; other <= exit; ++other) {
      if (other == pc || other == ipdom) continue;
      if (!bruteForcePdom(succ, exit, other, pc)) continue;
      EXPECT_TRUE(bruteForcePdom(succ, exit, other, ipdom))
          << "pc " << pc << ": " << other << " post-dominates it but not its "
          << "ipdom " << ipdom << " - ipdom is not immediate";
    }
    // The public predicate agrees with brute force.
    for (std::size_t other = 0; other <= exit; ++other) {
      EXPECT_EQ(pdoms.postDominates(other, pc),
                bruteForcePdom(succ, exit, other, pc))
          << "postDominates(" << other << ", " << pc << ")";
    }

    // The merge-point contract: a branch's join post-dominates every
    // successor of the fork point, so neither arm can slip past it.
    if (program.at(pc).op == Op::kBr) {
      const auto join = pdoms.joinFor(pc);
      if (!join.has_value()) continue;  // EXIT: no intra-handler join
      for (const std::size_t arm : succ[pc]) {
        if (!reachesExit(succ, exit, arm)) continue;
        EXPECT_TRUE(bruteForcePdom(succ, exit, *join, arm))
            << "branch " << pc << ": join " << *join
            << " does not post-dominate arm " << arm;
      }
    }
  }
}

// Unstructured block soup: every block ends in a random jump, branch,
// halt or fallthrough to arbitrary labels — backward edges included, so
// the CFGs contain loops, nests and dead regions no structured builder
// would emit.
Program randomCfg(std::uint64_t seed) {
  support::Rng rng(seed);
  IRBuilder b("cfg");
  b.beginEntry(Entry::kInit);
  const std::size_t blocks = 3 + rng.below(10);
  std::vector<IRBuilder::Label> labels;
  labels.reserve(blocks);
  for (std::size_t i = 0; i < blocks; ++i) labels.push_back(b.newLabel());
  const auto anyLabel = [&] { return labels[rng.below(blocks)]; };
  for (std::size_t i = 0; i < blocks; ++i) {
    b.bind(labels[i]);
    b.constant(Reg(3), static_cast<std::int64_t>(i));
    switch (rng.below(4)) {
      case 0:
        b.jump(anyLabel());
        break;
      case 1:
        b.branch(Reg(3), anyLabel(), anyLabel());
        break;
      case 2:
        b.halt();
        break;
      default:
        break;  // fallthrough into the next block
    }
  }
  b.halt();  // terminate the last block's fallthrough
  return b.finish();
}

TEST(PostDominatorsTest, RandomCfgsSatisfyTheDefinition) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    SCOPED_TRACE("cfg seed " + std::to_string(seed));
    checkProgram(randomCfg(seed));
  }
}

TEST(PostDominatorsTest, StructuredHandlerProgramsSatisfyTheDefinition) {
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u, 55u, 66u, 77u, 88u}) {
    SCOPED_TRACE("program seed " + std::to_string(seed));
    sde::RandomProgramGen gen(seed);
    checkProgram(gen.generate());
  }
}

TEST(PostDominatorsTest, DiamondJoinsAtTheMergePoint) {
  IRBuilder b("diamond");
  b.beginEntry(Entry::kInit);
  auto left = b.newLabel();
  auto right = b.newLabel();
  auto join = b.newLabel();
  b.branch(Reg(3), left, right);  // pc 0
  b.bind(left);
  b.constant(Reg(4), 1);  // pc 1
  b.jump(join);           // pc 2
  b.bind(right);
  b.constant(Reg(4), 2);  // pc 3
  b.bind(join);
  b.constant(Reg(5), 3);  // pc 4
  b.halt();               // pc 5
  const Program program = b.finish();

  const PostDominators pdoms(program);
  const auto join4 = pdoms.joinFor(0);
  ASSERT_TRUE(join4.has_value());
  EXPECT_EQ(*join4, 4u);
}

TEST(PostDominatorsTest, BranchWithReturningArmsHasNoJoin) {
  IRBuilder b("split");
  b.beginEntry(Entry::kInit);
  auto left = b.newLabel();
  auto right = b.newLabel();
  b.branch(Reg(3), left, right);
  b.bind(left);
  b.halt();
  b.bind(right);
  b.halt();
  const Program program = b.finish();

  const PostDominators pdoms(program);
  EXPECT_FALSE(pdoms.joinFor(0).has_value());
}

}  // namespace
}  // namespace sde::vm
