// Differential merge oracle (the battery certifying the merge algebra).
//
// State merging and its test-case expansion must be a pure
// representation change: exploring the same random program with merging
// enabled has to reproduce the *identical* test-case set — the
// observable behaviours of the distributed system — that the unmerged
// exploration produces, for every mapping algorithm, while never
// holding more peak states. Any divergence is a soundness bug: a lost
// behaviour (under-approximation), an invented one (the ite algebra
// leaking across arms), or a mapper repair breaking its grouping.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <tuple>

#include "../sde/random_program.hpp"
#include "sde/explode.hpp"
#include "sde/parallel.hpp"

namespace sde {
namespace {

struct MergeDigest {
  RunOutcome outcome = RunOutcome::kCompleted;
  std::uint64_t numStates = 0;
  std::uint64_t peakStates = 0;
  std::uint64_t merges = 0;
  std::uint64_t mergeRemoved = 0;
  std::set<std::string> testcases;
};

MergeDigest runOnce(const vm::Program& program, MapperKind kind, bool merge) {
  os::NetworkPlan plan(net::Topology::line(3));
  plan.runEverywhere(program);
  EngineConfig config;
  config.maxStates = 3'000;
  config.maxEvents = 10'000;
  config.solver.enumeration.maxCandidates = 1u << 12;
  config.mergeStates = merge;
  Engine engine(plan, kind, config);

  MergeDigest digest;
  digest.outcome = engine.run(2000);
  digest.numStates = engine.numStates();
  digest.peakStates = engine.stats().get("engine.peak_states");
  digest.merges = engine.stats().get("engine.merges");
  digest.mergeRemoved = engine.stats().get("engine.merge_removed_states");
  engine.mapper().checkInvariants();

  ExplosionIterator scenarios(engine.mapper());
  while (const auto scenario = scenarios.next()) {
    for (std::string& testcase : expandedScenarioTestcases(
             engine.context(), engine.solver(), *scenario))
      digest.testcases.insert(std::move(testcase));
  }
  return digest;
}

class MergeEquivalenceFuzzTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, MapperKind>> {};

TEST_P(MergeEquivalenceFuzzTest, MergedExplorationReproducesTestcaseSet) {
  const auto [seed, kind] = GetParam();
  // Quiet branch arms: sibling forks differ only in registers, globals
  // and path constraints — otherwise nearly every join pair is
  // (correctly) incompatible and the battery never merges.
  RandomProgramGen gen(seed, /*quietBranchArms=*/true);
  const vm::Program program = gen.generate();

  const MergeDigest unmerged = runOnce(program, kind, false);
  const MergeDigest merged = runOnce(program, kind, true);

  EXPECT_EQ(unmerged.merges, 0u) << "seed " << seed;
  if (unmerged.outcome != RunOutcome::kCompleted ||
      merged.outcome != RunOutcome::kCompleted)
    GTEST_SKIP() << "seed " << seed << " exceeds the exploration budget";

  // The behavioural oracle: identical observable test cases.
  EXPECT_EQ(merged.testcases, unmerged.testcases) << "seed " << seed;

  // Merging may only shrink the exploration, never grow it.
  EXPECT_LE(merged.numStates, unmerged.numStates) << "seed " << seed;
  EXPECT_LE(merged.peakStates, unmerged.peakStates) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByMapper, MergeEquivalenceFuzzTest,
    ::testing::Combine(::testing::Values(11, 22, 33, 44, 55, 66, 77, 88),
                       ::testing::Values(MapperKind::kCob, MapperKind::kCow,
                                         MapperKind::kSds)),
    [](const auto& info) {
      return std::string(mapperKindName(std::get<1>(info.param))) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

// Anti-vacuity sentinel: the differential oracle above proves nothing
// if the battery's programs never actually merge. This runs a seed
// known to merge heavily under every mapper and pins that the merge
// path fired. Self-contained (no cross-test accumulator) so it holds
// under ctest's one-process-per-test sharding, where suite-wide
// bookkeeping never sees the other parameterisations.
TEST(MergeEquivalenceVacuityTest, KnownMergingSeedActuallyMerges) {
  RandomProgramGen gen(44, /*quietBranchArms=*/true);
  const vm::Program program = gen.generate();
  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    const MergeDigest merged = runOnce(program, kind, true);
    EXPECT_GT(merged.merges, 0u)
        << mapperKindName(kind) << ": the battery never merged";
    // Every merge removes the absorbed state; COB additionally reaps
    // bystander casualties of the mapper repair.
    EXPECT_GE(merged.mergeRemoved, merged.merges) << mapperKindName(kind);
  }
}

}  // namespace
}  // namespace sde
