#include <gtest/gtest.h>

#include "vm/memory.hpp"

namespace sde::vm {
namespace {

class MemoryTest : public ::testing::Test {
 protected:
  expr::Context ctx;
  AddressSpace space;
};

TEST_F(MemoryTest, GlobalsAreObjectZero) {
  space.initGlobals(ctx, 4);
  EXPECT_TRUE(space.hasObject(kGlobalsObject));
  EXPECT_EQ(space.objectSize(kGlobalsObject), 4u);
  EXPECT_EQ(space.load(kGlobalsObject, 0), ctx.constant(0, 64));
}

TEST_F(MemoryTest, AllocReturnsFreshIds) {
  space.initGlobals(ctx, 1);
  const auto a = space.alloc(ctx, 2);
  const auto b = space.alloc(ctx, 3);
  EXPECT_NE(a, b);
  EXPECT_NE(a, kGlobalsObject);
  EXPECT_EQ(space.objectSize(a), 2u);
  EXPECT_EQ(space.objectSize(b), 3u);
}

TEST_F(MemoryTest, StoreLoadRoundTrip) {
  space.initGlobals(ctx, 2);
  expr::Ref v = ctx.variable("v", 64);
  space.store(kGlobalsObject, 1, v);
  EXPECT_EQ(space.load(kGlobalsObject, 1), v);
  EXPECT_EQ(space.load(kGlobalsObject, 0), ctx.constant(0, 64));
}

TEST_F(MemoryTest, AllocFromMaterialisesContent) {
  space.initGlobals(ctx, 1);
  AddressSpace::Cells payload{ctx.constant(7, 64), ctx.constant(9, 64)};
  const auto id = space.allocFrom(payload);
  EXPECT_EQ(space.objectSize(id), 2u);
  EXPECT_EQ(space.load(id, 0), ctx.constant(7, 64));
  EXPECT_EQ(space.load(id, 1), ctx.constant(9, 64));
}

TEST_F(MemoryTest, CopyOnWriteIsolatesForks) {
  space.initGlobals(ctx, 2);
  space.store(kGlobalsObject, 0, ctx.constant(1, 64));
  AddressSpace forked = space;  // shares payloads

  forked.store(kGlobalsObject, 0, ctx.constant(2, 64));
  EXPECT_EQ(space.load(kGlobalsObject, 0), ctx.constant(1, 64));
  EXPECT_EQ(forked.load(kGlobalsObject, 0), ctx.constant(2, 64));

  // And the other direction.
  space.store(kGlobalsObject, 1, ctx.constant(3, 64));
  EXPECT_EQ(forked.load(kGlobalsObject, 1), ctx.constant(0, 64));
}

TEST_F(MemoryTest, SharedBytesAccountedOnce) {
  space.initGlobals(ctx, 8);
  AddressSpace forked = space;
  std::map<const void*, std::uint64_t> seen;
  const auto first = space.accountBytes(seen);
  const auto second = forked.accountBytes(seen);
  EXPECT_GT(first, 0u);
  EXPECT_EQ(second, 0u);  // same payload, already attributed
}

TEST_F(MemoryTest, DivergedForkAccountsSeparately) {
  space.initGlobals(ctx, 8);
  AddressSpace forked = space;
  forked.store(kGlobalsObject, 0, ctx.constant(5, 64));  // triggers COW
  std::map<const void*, std::uint64_t> seen;
  const auto first = space.accountBytes(seen);
  const auto second = forked.accountBytes(seen);
  EXPECT_EQ(first, second);
  EXPECT_GT(second, 0u);
}

TEST_F(MemoryTest, ContentHashTracksContentNotSharing) {
  space.initGlobals(ctx, 2);
  AddressSpace forked = space;
  EXPECT_EQ(space.contentHash(), forked.contentHash());
  forked.store(kGlobalsObject, 0, ctx.constant(9, 64));
  EXPECT_NE(space.contentHash(), forked.contentHash());
  // Writing the same value back restores equality (content-addressed).
  forked.store(kGlobalsObject, 0, ctx.constant(0, 64));
  EXPECT_EQ(space.contentHash(), forked.contentHash());
}

TEST_F(MemoryTest, ReadExtractsPrefix) {
  space.initGlobals(ctx, 1);
  AddressSpace::Cells payload{ctx.constant(1, 64), ctx.constant(2, 64),
                              ctx.constant(3, 64)};
  const auto id = space.allocFrom(payload);
  const auto prefix = space.read(id, 2);
  ASSERT_EQ(prefix.size(), 2u);
  EXPECT_EQ(prefix[1], ctx.constant(2, 64));
}

TEST_F(MemoryTest, OutOfBoundsLoadAborts) {
  space.initGlobals(ctx, 2);
  EXPECT_DEATH((void)space.load(kGlobalsObject, 2), "out of bounds");
  EXPECT_DEATH((void)space.load(99, 0), "unknown object");
}

}  // namespace
}  // namespace sde::vm
