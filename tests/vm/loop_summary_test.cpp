// Bounded loop summarization: quiet timer loops (periodic handlers with
// no externally visible effect other than re-arming themselves) are
// collapsed into summarized increments after two identical observed
// iterations. The oracle is behavioural equivalence — a summarize-on
// run must finish with the same states, hashes, instruction counts and
// event count as the summarize-off run — plus cleanliness guards: any
// handler that sends, mints symbolics or reads the clock must never
// arm the detector.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "net/topology.hpp"
#include "os/node.hpp"
#include "sde/engine.hpp"
#include "vm/builder.hpp"

namespace sde {
namespace {

// A pure idle tick: kTimer does some register arithmetic, then re-arms
// timer 1 with the same constant delay. Nothing else ever happens.
vm::Program quietTimerProgram() {
  vm::IRBuilder b("quiet_timer");
  b.beginEntry(vm::Entry::kInit);
  b.constant(vm::Reg(3), 50);
  b.setTimer(1, vm::Reg(3));
  b.halt();
  b.beginEntry(vm::Entry::kTimer);
  b.constant(vm::Reg(3), 50);
  b.constant(vm::Reg(4), 7);
  b.alu(vm::Op::kAdd, vm::Reg(5), vm::Reg(3), vm::Reg(4));
  b.setTimer(1, vm::Reg(3));
  b.halt();
  return b.finish();
}

// Identical shape, but the handler reads the virtual clock — an effect
// the fast path could not replay, so the iteration is never clean.
vm::Program clockReadingTimerProgram() {
  vm::IRBuilder b("noisy_timer");
  b.beginEntry(vm::Entry::kInit);
  b.constant(vm::Reg(3), 50);
  b.setTimer(1, vm::Reg(3));
  b.halt();
  b.beginEntry(vm::Entry::kTimer);
  b.now(vm::Reg(6));
  b.constant(vm::Reg(3), 50);
  b.setTimer(1, vm::Reg(3));
  b.halt();
  return b.finish();
}

struct RunDigest {
  std::uint64_t numStates = 0;
  std::uint64_t events = 0;
  std::uint64_t summaries = 0;
  std::uint64_t summarizedInstructions = 0;
  std::uint64_t totalInstructions = 0;
  std::multiset<std::uint64_t> configHashes;
  std::multiset<std::uint64_t> strictHashes;
};

RunDigest runOnce(const vm::Program& program, bool summarize,
                  std::uint64_t horizon) {
  os::NetworkPlan plan(net::Topology::line(2));
  plan.runEverywhere(program);
  EngineConfig config;
  config.loopSummarize = summarize;
  Engine engine(plan, MapperKind::kCow, config);
  EXPECT_EQ(engine.run(horizon), RunOutcome::kCompleted);

  RunDigest digest;
  digest.numStates = engine.numStates();
  digest.events = engine.eventsProcessed();
  digest.summaries = engine.stats().get("engine.loop_summaries");
  digest.summarizedInstructions =
      engine.stats().get("engine.loop_summarized_instructions");
  for (const auto& state : engine.states()) {
    digest.totalInstructions += state->executedInstructions;
    digest.configHashes.insert(state->configHash());
    digest.strictHashes.insert(state->configHashStrict());
  }
  return digest;
}

TEST(LoopSummaryTest, QuietLoopArmsAndStaysEquivalent) {
  const vm::Program program = quietTimerProgram();
  const RunDigest off = runOnce(program, false, 5'000);
  const RunDigest on = runOnce(program, true, 5'000);

  EXPECT_EQ(off.summaries, 0u);
  // ~100 firings per node at period 50; the detector needs a few
  // observations before arming, everything after rides the fast path.
  EXPECT_GT(on.summaries, 50u);
  EXPECT_GT(on.summarizedInstructions, 0u);

  // The summarized run is observably the unmerged run.
  EXPECT_EQ(on.numStates, off.numStates);
  EXPECT_EQ(on.events, off.events);
  EXPECT_EQ(on.totalInstructions, off.totalInstructions);
  EXPECT_EQ(on.configHashes, off.configHashes);
  EXPECT_EQ(on.strictHashes, off.strictHashes);
}

TEST(LoopSummaryTest, ClockReadingHandlerNeverArms) {
  const vm::Program program = clockReadingTimerProgram();
  const RunDigest on = runOnce(program, true, 5'000);
  EXPECT_EQ(on.summaries, 0u);
  EXPECT_EQ(on.summarizedInstructions, 0u);

  const RunDigest off = runOnce(program, false, 5'000);
  EXPECT_EQ(on.configHashes, off.configHashes);
  EXPECT_EQ(on.events, off.events);
}

}  // namespace
}  // namespace sde
