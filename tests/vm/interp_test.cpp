// Interpreter semantics: stepping, symbolic forking, intrinsics. The
// flagship test reproduces the paper's Figure 1 (four execution paths
// from one symbolic input, each with a concrete test case).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "expr/eval.hpp"
#include "solver/solver.hpp"
#include "vm/builder.hpp"
#include "vm/interp.hpp"

namespace sde::vm {
namespace {

class TestSink final : public EffectSink {
 public:
  explicit TestSink(StateId firstId) : nextId_(firstId) {}

  ExecutionState& forkState(ExecutionState& original) override {
    owned.push_back(original.fork(nextId_++));
    return *owned.back();
  }

  struct Sent {
    StateId state;
    NodeId dst;
    std::vector<expr::Ref> payload;
  };
  void onSend(ExecutionState& sender, NodeId dst,
              std::vector<expr::Ref> payload) override {
    sent.push_back({sender.id(), dst, std::move(payload)});
  }
  void onLog(ExecutionState&, std::string_view message,
             expr::Ref) override {
    logs.emplace_back(message);
  }

  std::vector<std::unique_ptr<ExecutionState>> owned;
  std::vector<Sent> sent;
  std::vector<std::string> logs;

 private:
  StateId nextId_;
};

class InterpTest : public ::testing::Test {
 protected:
  InterpTest() : solver(ctx), interp(ctx, solver) {}

  // Builds a single-node state for `program` with globals initialised.
  std::unique_ptr<ExecutionState> makeState(const Program& program,
                                            NodeId node = 1) {
    auto state = std::make_unique<ExecutionState>(nextId++, node, program);
    state->space.initGlobals(ctx, program.globalsSize());
    return state;
  }

  // All states involved in the last run: root plus forked siblings.
  static std::vector<ExecutionState*> allStates(ExecutionState& root,
                                                TestSink& sink) {
    std::vector<ExecutionState*> states{&root};
    for (auto& s : sink.owned) states.push_back(s.get());
    return states;
  }

  expr::Context ctx;
  solver::Solver solver;
  Interpreter interp;
  StateId nextId = 1;
};

TEST_F(InterpTest, StraightLineArithmetic) {
  IRBuilder b("arith");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.constant(Reg(1), 6);
  b.constant(Reg(2), 7);
  b.alu(Op::kMul, Reg(3), Reg(1), Reg(2));
  b.storeGlobal(Reg(3), 0);
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->status, StateStatus::kIdle);
  EXPECT_EQ(s->space.load(kGlobalsObject, 0), ctx.constant(42, 64));
  EXPECT_TRUE(sink.owned.empty());
}

TEST_F(InterpTest, ConcreteBranchDoesNotFork) {
  IRBuilder b("cbr");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  auto yes = b.newLabel();
  auto no = b.newLabel();
  b.constant(Reg(1), 5);
  b.branch(Reg(1), yes, no);
  b.bind(no);
  b.fail("took the zero edge");
  b.bind(yes);
  b.constant(Reg(2), 1);
  b.storeGlobal(Reg(2), 0);
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->status, StateStatus::kIdle);
  EXPECT_TRUE(sink.owned.empty());
  EXPECT_EQ(s->space.load(kGlobalsObject, 0), ctx.constant(1, 64));
}

TEST_F(InterpTest, SymbolicBranchForksWithComplementaryConstraints) {
  IRBuilder b("fork");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  auto yes = b.newLabel();
  auto no = b.newLabel();
  b.makeSymbolic(Reg(1), "flag", 1);
  b.branch(Reg(1), yes, no);
  b.bind(yes);
  b.constant(Reg(2), 1);
  b.storeGlobal(Reg(2), 0);
  b.halt();
  b.bind(no);
  b.constant(Reg(2), 2);
  b.storeGlobal(Reg(2), 0);
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  ASSERT_EQ(sink.owned.size(), 1u);
  ExecutionState& child = *sink.owned[0];
  EXPECT_EQ(s->status, StateStatus::kIdle);
  EXPECT_EQ(child.status, StateStatus::kIdle);
  // Parent took the true edge, child the false edge.
  EXPECT_EQ(s->space.load(kGlobalsObject, 0), ctx.constant(1, 64));
  EXPECT_EQ(child.space.load(kGlobalsObject, 0), ctx.constant(2, 64));
  EXPECT_EQ(s->constraints.size(), 1u);
  EXPECT_EQ(child.constraints.size(), 1u);
  // Complementary: flag must be 1 in the parent, 0 in the child.
  expr::Ref flag = ctx.variable("n1.flag.0", 1);
  EXPECT_EQ(solver.getValue(s->constraints, ctx.zext(flag, 64)), 1u);
  EXPECT_EQ(solver.getValue(child.constraints, ctx.zext(flag, 64)), 0u);
}

TEST_F(InterpTest, PaperFigure1FourPaths) {
  // int x = symbolic; if (x == 0) P1; else if (x < 50) { if (x > 10) P2;
  // else P3; } else P4;  — regular symbolic execution explores exactly
  // four paths with test cases like {0, 42, 7, 314} (Figure 1).
  IRBuilder b("fig1");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  auto p1 = b.newLabel();
  auto notZero = b.newLabel();
  auto lt50 = b.newLabel();
  auto p4 = b.newLabel();
  auto p2 = b.newLabel();
  auto p3 = b.newLabel();
  b.makeSymbolic(Reg(1), "x", 16);
  b.aluImm(Op::kEq, Reg(2), Reg(1), 0, Reg(15));
  b.branch(Reg(2), p1, notZero);
  b.bind(notZero);
  b.aluImm(Op::kUlt, Reg(2), Reg(1), 50, Reg(15));
  b.branch(Reg(2), lt50, p4);
  b.bind(lt50);
  b.constant(Reg(15), 10);
  b.alu(Op::kUlt, Reg(2), Reg(15), Reg(1));  // 10 < x
  auto join = b.newLabel();
  b.branch(Reg(2), p2, p3);
  b.bind(p1);
  b.constant(Reg(3), 1);
  b.jump(join);
  b.bind(p2);
  b.constant(Reg(3), 2);
  b.jump(join);
  b.bind(p3);
  b.constant(Reg(3), 3);
  b.jump(join);
  b.bind(p4);
  b.constant(Reg(3), 4);
  b.jump(join);
  b.bind(join);
  b.storeGlobal(Reg(3), 0);
  b.halt();
  const Program p = b.finish();

  auto root = makeState(p);
  TestSink sink(100);
  interp.runEvent(*root, Entry::kInit, {}, sink);
  auto states = allStates(*root, sink);
  ASSERT_EQ(states.size(), 4u);

  expr::Ref x = ctx.variable("n1.x.0", 16);
  for (ExecutionState* s : states) {
    EXPECT_EQ(s->status, StateStatus::kIdle);
    const auto path = s->space.load(kGlobalsObject, 0);
    ASSERT_TRUE(path->isConstant());
    const auto xv = solver.getValue(s->constraints, ctx.zext(x, 64));
    ASSERT_TRUE(xv.has_value());
    switch (path->value()) {
      case 1:
        EXPECT_EQ(*xv, 0u);
        break;
      case 2:
        EXPECT_GT(*xv, 10u);
        EXPECT_LT(*xv, 50u);
        break;
      case 3:
        EXPECT_NE(*xv, 0u);
        EXPECT_LE(*xv, 10u);
        break;
      case 4:
        EXPECT_GE(*xv, 50u);
        break;
      default:
        FAIL() << "unexpected path marker " << path->value();
    }
  }
}

TEST_F(InterpTest, AssumeNarrowsAndKillsInfeasible) {
  IRBuilder b("assume");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.makeSymbolic(Reg(1), "x", 8);
  b.aluImm(Op::kUlt, Reg(2), Reg(1), 10, Reg(15));
  b.assume(Reg(2));  // x < 10
  b.aluImm(Op::kUlt, Reg(2), Reg(1), 5, Reg(15));
  b.bvNot(Reg(3), Reg(2));  // bitwise not of 0/1 is nonzero either way...
  b.aluImm(Op::kEq, Reg(3), Reg(2), 0, Reg(15));  // x >= 5
  b.assume(Reg(3));
  b.aluImm(Op::kUlt, Reg(2), Reg(1), 3, Reg(15));
  b.assume(Reg(2));  // contradicts x >= 5
  b.fail("unreachable: contradictory assumes");
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->status, StateStatus::kInfeasible);
}

TEST_F(InterpTest, FailRecordsMessage) {
  IRBuilder b("fail");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.fail("invariant violated");
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->status, StateStatus::kFailed);
  EXPECT_EQ(s->failureMessage, "invariant violated");
}

TEST_F(InterpTest, StepLimitKillsRunawayLoop) {
  IRBuilder b("loop");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  auto top = b.newLabel();
  b.bind(top);
  b.jump(top);
  const Program p = b.finish();

  Interpreter tight(ctx, solver, {.maxStepsPerEvent = 100});
  auto s = makeState(p);
  TestSink sink(100);
  tight.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->status, StateStatus::kKilled);
  EXPECT_NE(s->failureMessage.find("step limit"), std::string::npos);
}

TEST_F(InterpTest, BoundedLoopComputes) {
  // sum = 0; for (i = 0; i < 10; ++i) sum += i;  => 45
  IRBuilder b("sum");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  auto top = b.newLabel();
  auto done = b.newLabel();
  b.constant(Reg(1), 0);  // i
  b.constant(Reg(2), 0);  // sum
  b.bind(top);
  b.aluImm(Op::kUlt, Reg(3), Reg(1), 10, Reg(15));
  b.branchIfZero(Reg(3), done);
  b.alu(Op::kAdd, Reg(2), Reg(2), Reg(1));
  b.aluImm(Op::kAdd, Reg(1), Reg(1), 1, Reg(15));
  b.jump(top);
  b.bind(done);
  b.storeGlobal(Reg(2), 0);
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->space.load(kGlobalsObject, 0), ctx.constant(45, 64));
}

TEST_F(InterpTest, CallAndReturn) {
  IRBuilder b("call");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.constant(Reg(1), 20);
  b.call("double");
  b.storeGlobal(Reg(1), 0);
  b.halt();
  b.beginFunction("double");
  b.alu(Op::kAdd, Reg(1), Reg(1), Reg(1));
  b.ret();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->status, StateStatus::kIdle);
  EXPECT_EQ(s->space.load(kGlobalsObject, 0), ctx.constant(40, 64));
}

TEST_F(InterpTest, ReturnFromEntryFrameEndsHandler) {
  IRBuilder b("retend");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.ret();  // no call frame: ends the event like halt
  const Program p = b.finish();
  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->status, StateStatus::kIdle);
}

TEST_F(InterpTest, TimerArmReplaceCancel) {
  IRBuilder b("timers");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.constant(Reg(1), 10);
  b.setTimer(1, Reg(1));
  b.constant(Reg(1), 20);
  b.setTimer(2, Reg(1));
  b.constant(Reg(1), 15);
  b.setTimer(1, Reg(1));  // re-arm timer 1: replaces the 10-tick expiry
  b.stopTimer(2);         // cancel timer 2
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  ASSERT_EQ(s->pendingEvents.size(), 1u);
  EXPECT_EQ(s->pendingEvents[0].kind, EventKind::kTimer);
  EXPECT_EQ(s->pendingEvents[0].a, 1u);
  EXPECT_EQ(s->pendingEvents[0].time, 15u);
}

TEST_F(InterpTest, SendDeliversPayloadToSink) {
  IRBuilder b("send");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.constant(Reg(1), 2);  // payload size
  b.alloc(Reg(2), Reg(1));
  b.constant(Reg(3), 0xaa);
  b.constant(Reg(4), 0);
  b.store(Reg(3), Reg(2), Reg(4));  // payload[0] = 0xaa
  b.constant(Reg(5), 7);            // dst node
  b.send(Reg(5), Reg(2), Reg(1));
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  ASSERT_EQ(sink.sent.size(), 1u);
  EXPECT_EQ(sink.sent[0].dst, 7u);
  ASSERT_EQ(sink.sent[0].payload.size(), 2u);
  EXPECT_EQ(sink.sent[0].payload[0], ctx.constant(0xaa, 64));
  EXPECT_EQ(sink.sent[0].payload[1], ctx.constant(0, 64));
}

TEST_F(InterpTest, EventArgumentsArriveInRegisters) {
  IRBuilder b("args");
  b.setGlobals(3);
  b.beginEntry(Entry::kRecv);
  b.storeGlobal(Reg(0), 0);
  b.storeGlobal(Reg(1), 1);
  b.storeGlobal(Reg(2), 2);
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  const std::vector<expr::Ref> args{ctx.constant(11, 64),
                                    ctx.constant(22, 64)};
  interp.runEvent(*s, Entry::kRecv, args, sink);
  EXPECT_EQ(s->space.load(kGlobalsObject, 0), ctx.constant(11, 64));
  EXPECT_EQ(s->space.load(kGlobalsObject, 1), ctx.constant(22, 64));
  // Missing third argument defaults to zero.
  EXPECT_EQ(s->space.load(kGlobalsObject, 2), ctx.constant(0, 64));
}

TEST_F(InterpTest, SelfAndNumNodesIntrinsics) {
  IRBuilder b("ids");
  b.setGlobals(2);
  b.beginEntry(Entry::kInit);
  b.self(Reg(1));
  b.storeGlobal(Reg(1), 0);
  b.numNodes(Reg(1));
  b.storeGlobal(Reg(1), 1);
  b.halt();
  const Program p = b.finish();

  interp.setNumNodes(25);
  auto s = makeState(p, /*node=*/9);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->space.load(kGlobalsObject, 0), ctx.constant(9, 64));
  EXPECT_EQ(s->space.load(kGlobalsObject, 1), ctx.constant(25, 64));
}

TEST_F(InterpTest, OutOfBoundsAccessKillsState) {
  IRBuilder b("oob");
  b.setGlobals(2);
  b.beginEntry(Entry::kInit);
  b.constant(Reg(1), 5);
  b.storeGlobal(Reg(1), 0);
  b.constant(Reg(2), 0);
  b.constant(Reg(3), 99);
  b.load(Reg(4), Reg(2), Reg(3));  // globals[99]: out of bounds
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->status, StateStatus::kKilled);
  EXPECT_NE(s->failureMessage.find("out-of-bounds"), std::string::npos);
}

TEST_F(InterpTest, SymbolicNamesAreDeterministicPerNodeAndLabel) {
  IRBuilder b("names");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.makeSymbolic(Reg(1), "drop", 1);
  b.makeSymbolic(Reg(2), "drop", 1);
  b.makeSymbolic(Reg(3), "seq", 8);
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p, /*node=*/3);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  ASSERT_EQ(s->symbolics.size(), 3u);
  EXPECT_EQ(s->symbolics[0]->name(), "n3.drop.0");
  EXPECT_EQ(s->symbolics[1]->name(), "n3.drop.1");
  EXPECT_EQ(s->symbolics[2]->name(), "n3.seq.0");
}

TEST_F(InterpTest, ForkedSiblingInheritsPendingEvents) {
  IRBuilder b("inherit");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.constant(Reg(1), 30);
  b.setTimer(5, Reg(1));
  b.makeSymbolic(Reg(2), "flag", 1);
  auto yes = b.newLabel();
  auto no = b.newLabel();
  b.branch(Reg(2), yes, no);
  b.bind(yes);
  b.halt();
  b.bind(no);
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  ASSERT_EQ(sink.owned.size(), 1u);
  ASSERT_EQ(s->pendingEvents.size(), 1u);
  ASSERT_EQ(sink.owned[0]->pendingEvents.size(), 1u);
  EXPECT_EQ(sink.owned[0]->pendingEvents[0].time, 30u);
}

TEST_F(InterpTest, ConfigHashEqualForIdenticalForks) {
  IRBuilder b("hash");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.halt();
  const Program p = b.finish();

  auto s = makeState(p);
  auto clone = s->fork(999);
  EXPECT_EQ(s->configHash(), clone->configHash());
  clone->constraints.add(ctx.variable("d", 1));
  EXPECT_NE(s->configHash(), clone->configHash());
}

TEST_F(InterpTest, InstructionCountTracked) {
  IRBuilder b("count");
  b.setGlobals(1);
  b.beginEntry(Entry::kInit);
  b.constant(Reg(1), 1);
  b.constant(Reg(2), 2);
  b.halt();
  const Program p = b.finish();
  auto s = makeState(p);
  TestSink sink(100);
  interp.runEvent(*s, Entry::kInit, {}, sink);
  EXPECT_EQ(s->executedInstructions, 3u);
}

}  // namespace
}  // namespace sde::vm
