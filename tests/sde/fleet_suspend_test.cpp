// Graceful fleet suspend (FleetConfig::stopRequested / SIGTERM):
// interrupting a running fleet checkpoints in-flight jobs and exits
// cleanly, and a resume finishes the run with the digest of an
// uninterrupted one. This is the preemption primitive the sde_serve
// scheduler builds on — suspend must never lose accepted work.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <thread>

#include "sde/fleet.hpp"
#include "snapshot/manifest.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

namespace fs = std::filesystem;

trace::CollectScenarioConfig scenarioConfig() {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = 4000;
  config.mapper = MapperKind::kSds;
  return config;
}

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("sde_" + name);
  fs::remove_all(dir);
  return dir;
}

std::size_t countDoneFiles(const fs::path& dir, std::size_t numJobs) {
  std::size_t done = 0;
  for (std::uint32_t id = 0; id < numJobs; ++id)
    if (fs::exists(snapshot::jobDonePath(dir, id))) ++done;
  return done;
}

std::uint64_t referenceDigest(const trace::CollectScenarioConfig& config,
                              std::size_t vars) {
  ParallelConfig threads;
  threads.workers = 2;
  return trace::runCollectPartitioned(config, threads, vars)
      .result.fingerprintDigest();
}

bool sanitizersActive() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

// Suspend via the embed-able stop hook once the first job completes,
// then resume the directory: the final digest must equal the
// uninterrupted run's. The stop condition reads the durable queue (not
// coordinator memory), so it observes exactly what a restarted daemon
// would.
TEST(FleetSuspendTest, StopHookSuspendsAndResumeMatchesReferenceDigest) {
  const auto config = scenarioConfig();
  constexpr std::size_t kVars = 2;  // 4 jobs
  const std::uint64_t expected = referenceDigest(config, kVars);

  const fs::path dir = freshDir("fleet_suspend_stophook");
  FleetConfig fleet;
  fleet.processes = 1;  // sequential job order: job 0 done => others not
  fleet.checkpointDir = dir.string();
  fleet.shmQueryCache = false;
  fleet.stopRequested = [&dir] { return countDoneFiles(dir, 4) >= 1; };

  const FleetResult first = trace::runCollectFleet(config, fleet, kVars);

  if (first.suspended) {
    EXPECT_EQ(first.result.outcome, RunOutcome::kSuspended);
    EXPECT_GE(first.jobsDone, 1u);
    EXPECT_LT(first.jobsDone, 4u);

    FleetConfig resumeConfig;
    resumeConfig.processes = 2;
    resumeConfig.checkpointDir = dir.string();
    resumeConfig.resume = true;
    resumeConfig.shmQueryCache = false;
    const FleetResult second =
        trace::runCollectFleet(config, resumeConfig, kVars);
    EXPECT_FALSE(second.suspended);
    EXPECT_EQ(second.result.outcome, RunOutcome::kCompleted);
    EXPECT_EQ(second.result.fingerprintDigest(), expected);
  } else {
    // The whole run finished before the coordinator polled the stop
    // hook (possible on a very fast machine) — the digest must still
    // match.
    EXPECT_EQ(first.result.fingerprintDigest(), expected);
  }
}

// A suspend request that lands mid-job exercises the engine abort path:
// the in-flight job must reappear as a .ckpt (not vanish, not .done).
TEST(FleetSuspendTest, MidJobSuspendLeavesResumableCheckpoint) {
  const auto config = scenarioConfig();
  constexpr std::size_t kVars = 2;

  const fs::path dir = freshDir("fleet_suspend_midjob");
  FleetConfig fleet;
  fleet.processes = 1;
  fleet.checkpointDir = dir.string();
  fleet.shmQueryCache = false;
  fleet.checkpointEveryEvents = 64;
  // Trip the stop hook from inside the run: the chaos checkpoint hook
  // runs in the worker process, so signal through the file system.
  const fs::path sentinel = dir / "suspend_now";
  fleet.chaos.onCheckpoint = [sentinel](unsigned, std::uint32_t) {
    std::ofstream(sentinel).put('x');
  };
  fleet.stopRequested = [&sentinel] { return fs::exists(sentinel); };

  const FleetResult first = trace::runCollectFleet(config, fleet, kVars);
  ASSERT_TRUE(first.suspended);
  EXPECT_GE(first.jobsSuspendedMidRun, 1u);

  bool anyCheckpoint = false;
  for (std::uint32_t id = 0; id < 4; ++id)
    anyCheckpoint |= fs::exists(snapshot::jobCheckpointPath(dir, id));
  EXPECT_TRUE(anyCheckpoint);

  FleetConfig resumeConfig;
  resumeConfig.processes = 1;
  resumeConfig.checkpointDir = dir.string();
  resumeConfig.resume = true;
  resumeConfig.shmQueryCache = false;
  const FleetResult second =
      trace::runCollectFleet(config, resumeConfig, kVars);
  EXPECT_EQ(second.result.fingerprintDigest(),
            referenceDigest(config, kVars));
}

// Merge mode across suspend/restore: a merged exploration interrupted
// mid-job must checkpoint its guard side tables (checkpoint v5) and
// resume to the digest of an uninterrupted merged run — merged states
// and their expansion metadata survive the round-trip byte-for-byte.
TEST(FleetSuspendTest, MergedMidJobSuspendResumesToMergedReferenceDigest) {
  auto config = scenarioConfig();
  config.engine.mergeStates = true;
  config.engine.loopSummarize = true;
  constexpr std::size_t kVars = 2;
  const std::uint64_t expected = referenceDigest(config, kVars);

  const fs::path dir = freshDir("fleet_suspend_merged");
  FleetConfig fleet;
  fleet.processes = 1;
  fleet.checkpointDir = dir.string();
  fleet.shmQueryCache = false;
  fleet.checkpointEveryEvents = 64;
  const fs::path sentinel = dir / "suspend_now";
  fleet.chaos.onCheckpoint = [sentinel](unsigned, std::uint32_t) {
    std::ofstream(sentinel).put('x');
  };
  fleet.stopRequested = [&sentinel] { return fs::exists(sentinel); };

  const FleetResult first = trace::runCollectFleet(config, fleet, kVars);
  ASSERT_TRUE(first.suspended);
  EXPECT_GE(first.jobsSuspendedMidRun, 1u);

  FleetConfig resumeConfig;
  resumeConfig.processes = 4;  // resume on a different fleet shape
  resumeConfig.checkpointDir = dir.string();
  resumeConfig.resume = true;
  resumeConfig.shmQueryCache = false;
  const FleetResult second = trace::runCollectFleet(config, resumeConfig, kVars);
  EXPECT_FALSE(second.suspended);
  EXPECT_EQ(second.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(second.result.fingerprintDigest(), expected);
  fs::remove_all(dir);
}

// The SIGTERM path end to end: a forked process runs the fleet with
// installSigtermSuspend, the parent SIGTERMs it mid-run, the child
// reports a clean suspended exit, and an in-process resume completes
// with the reference digest.
TEST(FleetSuspendTest, SigtermSuspendsChildFleetAndResumeCompletes) {
  if (sanitizersActive())
    GTEST_SKIP() << "fork-based signal test is noisy under sanitizers";

  const auto config = scenarioConfig();
  constexpr std::size_t kVars = 2;
  const fs::path dir = freshDir("fleet_suspend_sigterm");
  fs::create_directories(dir);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    FleetConfig fleet;
    fleet.processes = 2;
    fleet.checkpointDir = dir.string();
    fleet.shmQueryCache = false;
    fleet.checkpointEveryEvents = 64;
    fleet.installSigtermSuspend = true;
    try {
      const FleetResult result = trace::runCollectFleet(config, fleet, kVars);
      _exit(result.suspended ? 42 : 7);
    } catch (...) {
      _exit(9);
    }
  }

  // Give the fleet time to get going, then ask it to yield.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!fs::exists(snapshot::manifestPath(dir)) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_EQ(::kill(child, SIGTERM), 0);

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  const int code = WEXITSTATUS(status);
  ASSERT_TRUE(code == 42 || code == 7) << "child exit code " << code;

  FleetConfig resumeConfig;
  resumeConfig.processes = 2;
  resumeConfig.checkpointDir = dir.string();
  resumeConfig.resume = true;
  resumeConfig.shmQueryCache = false;
  const FleetResult final_ = trace::runCollectFleet(config, resumeConfig, kVars);
  EXPECT_FALSE(final_.suspended);
  EXPECT_EQ(final_.result.fingerprintDigest(),
            referenceDigest(config, kVars));
}

}  // namespace
}  // namespace sde
