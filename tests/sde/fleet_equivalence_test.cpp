// Differential oracles for the multi-process fleet runner
// (sde/fleet.hpp): the process count, the shared-memory query cache and
// the execution mode (fleet processes vs thread pool vs one engine)
// must all be unobservable in the exploration results.
//
//  - Digest matrix: {1, 2, 4, 8 processes} x {shm cache on/off} x
//    {COW, SDS} all produce the byte-identical fingerprintDigest, equal
//    to the single-process thread runner on the same plan.
//  - Merged traces: the fleet's merged.trc is byte-identical to the
//    thread runner's (shared caches off on both sides — with a live
//    cache, per-query layer attribution in the trace is legitimately
//    timing-dependent; digests are cache-invariant either way).
//  - Crash-free accounting: every job executes exactly once, no steal
//    or death machinery triggers spuriously.
//
// The fleet forks workers (no exec, no kills here); that is
// sanitizer-safe, so unlike the chaos battery these tests run under the
// ASan job too.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>

#include "sde/fleet.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

namespace fs = std::filesystem;

trace::CollectScenarioConfig smallGrid(MapperKind mapper,
                                       std::uint64_t simulationTime) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = simulationTime;
  config.mapper = mapper;
  return config;
}

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("sde_" + name);
  fs::remove_all(dir);
  return dir;
}

std::string slurp(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  EXPECT_TRUE(in.good()) << file;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class FleetEquivalenceTest : public ::testing::TestWithParam<MapperKind> {};

TEST_P(FleetEquivalenceTest, DigestMatrixMatchesThreadRunner) {
  const auto config = smallGrid(GetParam(), 4000);
  const std::string tag = std::string(mapperKindName(GetParam()));

  // Reference: the single-process thread runner on the identical plan.
  ParallelConfig threads;
  threads.workers = 1;
  const std::uint64_t want =
      trace::runCollectPartitioned(config, threads, /*vars=*/3)
          .result.fingerprintDigest();

  for (const unsigned processes : {1u, 2u, 4u, 8u}) {
    for (const bool shm : {true, false}) {
      const std::string combo = tag + "_p" + std::to_string(processes) +
                                (shm ? "_shm" : "_noshm");
      const fs::path dir = freshDir("fleet_eq_" + combo);
      FleetConfig fleet;
      fleet.processes = processes;
      fleet.shmQueryCache = shm;
      fleet.checkpointDir = dir.string();
      const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

      ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted) << combo;
      ASSERT_EQ(run.result.jobs.size(), 8u) << combo;
      EXPECT_EQ(run.result.fingerprintDigest(), want) << combo;
      // Crash-free: every job ran exactly once, nobody died.
      EXPECT_EQ(run.workerDeaths, 0u) << combo;
      EXPECT_EQ(run.respawns, 0u) << combo;
      for (std::size_t job = 0; job < run.executedCounts.size(); ++job)
        EXPECT_EQ(run.executedCounts[job], 1u) << combo << " job " << job;
      // Without test-case generation this workload's queries are all
      // answered before the shared layer, so zero traffic is fine here
      // (TestcasesMatchThreadRunner asserts real hits); the segment
      // must simply be healthy.
      if (shm) EXPECT_FALSE(run.shmDegraded) << combo;
      fs::remove_all(dir);
    }
  }
}

TEST_P(FleetEquivalenceTest, TestcasesMatchThreadRunner) {
  // Shorter horizon: test-case generation solves one joint model per
  // dscenario. This also drives real solver traffic through the shm
  // cache (enumerated models are what gets published).
  const auto config = smallGrid(GetParam(), 2500);

  ParallelConfig threads;
  threads.workers = 4;
  threads.collectTestcases = true;
  const trace::PartitionedCollectResult reference =
      trace::runCollectPartitioned(config, threads, /*vars=*/3);
  ASSERT_EQ(reference.result.outcome, RunOutcome::kCompleted);
  ASSERT_FALSE(reference.result.testcases.empty());

  const fs::path dir = freshDir("fleet_tc_" +
                                std::string(mapperKindName(GetParam())));
  FleetConfig fleet;
  fleet.processes = 4;
  fleet.collectTestcases = true;
  fleet.checkpointDir = dir.string();
  const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

  ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(run.result.fingerprintDigest(),
            reference.result.fingerprintDigest());
  EXPECT_EQ(run.result.testcases, reference.result.testcases);
  EXPECT_GT(run.shmHits, 0u);  // sharing actually happened
  fs::remove_all(dir);
}

// Merge mode through the whole fleet stack: a merged exploration must
// be distribution-invariant (fleet process count unobservable, digest
// equal to the merged thread runner) and behaviour-preserving (the
// guard-expanded test-case set of the merged fleet equals the plain
// unmerged thread runner's).
TEST_P(FleetEquivalenceTest, MergedFleetMatchesThreadRunnerAndUnmergedTestcases) {
  auto config = smallGrid(GetParam(), 2500);
  const std::string tag = std::string(mapperKindName(GetParam()));

  ParallelConfig plainThreads;
  plainThreads.workers = 2;
  plainThreads.collectTestcases = true;
  const trace::PartitionedCollectResult unmerged =
      trace::runCollectPartitioned(config, plainThreads, /*vars=*/3);
  ASSERT_EQ(unmerged.result.outcome, RunOutcome::kCompleted);
  ASSERT_FALSE(unmerged.result.testcases.empty());

  config.engine.mergeStates = true;
  ParallelConfig mergedThreads;
  mergedThreads.workers = 2;
  mergedThreads.collectTestcases = true;
  const trace::PartitionedCollectResult mergedRef =
      trace::runCollectPartitioned(config, mergedThreads, /*vars=*/3);
  ASSERT_EQ(mergedRef.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(mergedRef.result.testcases, unmerged.result.testcases) << tag;

  for (const unsigned processes : {1u, 4u}) {
    const std::string combo = tag + "_merge_p" + std::to_string(processes);
    const fs::path dir = freshDir("fleet_eq_" + combo);
    FleetConfig fleet;
    fleet.processes = processes;
    fleet.collectTestcases = true;
    fleet.checkpointDir = dir.string();
    const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

    ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted) << combo;
    EXPECT_EQ(run.result.fingerprintDigest(),
              mergedRef.result.fingerprintDigest())
        << combo;
    EXPECT_EQ(run.result.testcases, unmerged.result.testcases) << combo;
    fs::remove_all(dir);
  }
}

INSTANTIATE_TEST_SUITE_P(Mappers, FleetEquivalenceTest,
                         ::testing::Values(MapperKind::kSds, MapperKind::kCow),
                         [](const auto& info) {
                           return std::string(mapperKindName(info.param));
                         });

TEST(FleetTraceTest, MergedTraceMatchesThreadRunnerByteForByte) {
  const auto config = smallGrid(MapperKind::kSds, 2500);

  // Thread runner with tracing, shared cache off (see file comment).
  const fs::path threadTraces = freshDir("fleet_trc_threads");
  const fs::path threadCkpt = freshDir("fleet_trc_threads_ckpt");
  ParallelConfig threads;
  threads.workers = 2;
  threads.sharedQueryCache = false;
  threads.traceDir = threadTraces.string();
  // Durable on both sides: the merged-trace header embeds the recorded
  // scenario spec, so the thread run must record one too.
  threads.checkpointDir = threadCkpt.string();
  ASSERT_EQ(trace::runCollectPartitioned(config, threads, /*vars=*/3)
                .result.outcome,
            RunOutcome::kCompleted);

  const fs::path fleetTraces = freshDir("fleet_trc_fleet");
  const fs::path fleetCkpt = freshDir("fleet_trc_fleet_ckpt");
  FleetConfig fleet;
  fleet.processes = 4;
  fleet.shmQueryCache = false;
  fleet.checkpointDir = fleetCkpt.string();
  fleet.traceDir = fleetTraces.string();
  ASSERT_EQ(trace::runCollectFleet(config, fleet, /*vars=*/3).result.outcome,
            RunOutcome::kCompleted);

  const std::string threadMerged = slurp(threadTraces / "merged.trc");
  const std::string fleetMerged = slurp(fleetTraces / "merged.trc");
  ASSERT_FALSE(threadMerged.empty());
  EXPECT_EQ(fleetMerged, threadMerged)
      << "fleet merged.trc diverges from the thread runner's";

  for (const fs::path& dir :
       {threadTraces, threadCkpt, fleetTraces, fleetCkpt})
    fs::remove_all(dir);
}

TEST(FleetConfigTest, RejectsMissingCheckpointDirAndZeroProcesses) {
  const auto config = smallGrid(MapperKind::kSds, 1000);
  FleetConfig noDir;
  noDir.processes = 2;
  EXPECT_THROW((void)trace::runCollectFleet(config, noDir, /*vars=*/2),
               FleetError);

  const fs::path dir = freshDir("fleet_zero");
  FleetConfig zero;
  zero.processes = 0;
  zero.checkpointDir = dir.string();
  EXPECT_THROW((void)trace::runCollectFleet(config, zero, /*vars=*/2),
               FleetError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sde
