// Scheduler stress: fork storms, cancellations and state deaths racing
// (logically) with pops. The lazily-invalidated heap accumulates stale
// entries — duplicate registrations after forks, events of dead states,
// consumed events re-registered — and must never yield an event twice
// or yield an event that is no longer pending.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sde/scheduler.hpp"
#include "support/rng.hpp"
#include "vm/builder.hpp"

namespace sde {
namespace {

class SchedulerStressTest : public ::testing::Test {
 protected:
  SchedulerStressTest() {
    vm::IRBuilder b("noop");
    b.setGlobals(1);
    b.beginEntry(vm::Entry::kInit);
    b.halt();
    program = b.finish();
  }

  vm::ExecutionState& makeState(vm::NodeId node) {
    auto state = std::make_unique<vm::ExecutionState>(nextId++, node, program);
    auto* raw = state.get();
    byId[raw->id()] = raw;
    owned.push_back(std::move(state));
    return *raw;
  }

  void addEvent(vm::ExecutionState& state, std::uint64_t time) {
    vm::PendingEvent event;
    event.time = time;
    event.kind = vm::EventKind::kTimer;
    event.seq = state.nextEventSeq++;
    state.pendingEvents.push_back(std::move(event));
  }

  auto resolver() {
    return [this](vm::StateId id) -> vm::ExecutionState* {
      const auto it = byId.find(id);
      return it == byId.end() ? nullptr : it->second;
    };
  }

  vm::Program program;
  Scheduler scheduler;
  std::vector<std::unique_ptr<vm::ExecutionState>> owned;
  std::map<vm::StateId, vm::ExecutionState*> byId;
  vm::StateId nextId = 0;
};

TEST_F(SchedulerStressTest, ForkStormNeverYieldsAConsumedEvent) {
  support::Rng rng(12345);
  std::vector<vm::ExecutionState*> live;
  for (vm::NodeId n = 0; n < 4; ++n) {
    auto& state = makeState(n);
    for (int i = 0; i < 3; ++i) addEvent(state, 1 + rng.below(50));
    scheduler.registerState(state);
    live.push_back(&state);
  }

  // (state id, seq) pairs already consumed: seqs are unique per state
  // (nextEventSeq is monotonic and forks copy it), so a repeat means
  // the heap yielded a stale entry as live.
  std::set<std::pair<vm::StateId, std::uint64_t>> consumed;
  std::uint64_t now = 0;
  int pops = 0;

  while (pops < 2000) {
    auto popped = scheduler.pop(now + 100, resolver());
    if (!popped) {
      now += 100;
      if (scheduler.maybeEmpty() && now > 10'000) break;
      if (now > 100'000) break;
      continue;
    }
    ++pops;
    ASSERT_TRUE(
        consumed.insert({popped->state->id(), popped->event.seq}).second)
        << "event yielded twice: state " << popped->state->id() << " seq "
        << popped->event.seq;

    // Fork storm: duplicate the popped state's whole timeline (a fresh
    // registration for every still-pending event, all duplicates of
    // live heap entries).
    if (rng.chance(0.4) && owned.size() < 400) {
      auto clone = popped->state->fork(nextId++);
      for (int i = 0; i < 2; ++i)
        addEvent(*clone, popped->event.time + 1 + rng.below(30));
      byId[clone->id()] = clone.get();
      scheduler.registerState(*clone);
      live.push_back(clone.get());
      owned.push_back(std::move(clone));
    }
    // Keep the storm going on the popped state too.
    if (rng.chance(0.5)) {
      addEvent(*popped->state, popped->event.time + 1 + rng.below(30));
      scheduler.registerState(*popped->state);
    }
    // Random cancellation: silently drop a pending event, leaving its
    // heap entry stale.
    if (rng.chance(0.2)) {
      auto* victim = live[rng.below(live.size())];
      if (!victim->pendingEvents.empty()) victim->pendingEvents.pop_back();
    }
    // Random death: terminal states must never be scheduled again.
    if (rng.chance(0.05)) {
      auto* victim = live[rng.below(live.size())];
      victim->status = vm::StateStatus::kKilled;
    }
    // Duplicate registrations of random states are harmless.
    if (rng.chance(0.3))
      scheduler.registerState(*live[rng.below(live.size())]);
  }

  EXPECT_GT(pops, 100);
  // The storm must actually have exercised the invalidation path.
  EXPECT_GT(scheduler.staleDrops(), 0u);

  // Drain: whatever remains must still honour the uniqueness invariant
  // and leave the popped events removed from their states.
  while (auto popped = scheduler.pop(1'000'000, resolver())) {
    ASSERT_TRUE(
        consumed.insert({popped->state->id(), popped->event.seq}).second);
  }
  for (const auto& state : owned)
    if (!state->isTerminal())
      for (const auto& event : state->pendingEvents)
        EXPECT_FALSE(consumed.contains({state->id(), event.seq}))
            << "consumed event still pending in state " << state->id();
}

}  // namespace
}  // namespace sde
