// Random node-program generator shared by the randomised differential
// tests (cross-algorithm fuzz equivalence, partitioned-vs-legacy fuzz
// equivalence). Generates a terminating handler body: straight-line ALU
// soup with occasional symbolic inputs, forward-only symbolic branches,
// global traffic and broadcasts. All registers stay in r3..r9, all
// globals in slots 8..15 (0..7 are the rime configuration slots, unused
// here).
#pragma once

#include <cstdint>
#include <vector>

#include "rime/apps.hpp"
#include "support/rng.hpp"
#include "vm/builder.hpp"

namespace sde {

class RandomProgramGen {
 public:
  // quietBranchArms: branch arm bodies emit no sends and mint no
  // symbolics, so sibling forks differ only in registers, globals and
  // path constraints — the shape the state merger can absorb. Used by
  // the merge-equivalence battery; default off preserves the historical
  // programs the other differential oracles explore.
  explicit RandomProgramGen(std::uint64_t seed, bool quietBranchArms = false)
      : rng_(seed), quietBranchArms_(quietBranchArms) {}

  vm::Program generate() {
    using vm::Entry;
    using vm::IRBuilder;
    using vm::Reg;
    IRBuilder b("fuzz");
    b.setGlobals(16);

    b.beginEntry(Entry::kInit);
    b.constant(Reg(3), 1000);
    b.setTimer(1, Reg(3));
    b.halt();

    b.beginEntry(Entry::kTimer);
    emitBody(b, /*allowSend=*/true);
    b.constant(Reg(3), 1000);
    b.setTimer(1, Reg(3));
    b.halt();

    b.beginEntry(Entry::kRecv);
    // Reception-triggered sends are what create mapping conflicts, but
    // unconditional echo turns broadcasts into an exponential event
    // storm. Gate them one-shot per state via a global flag: feedback
    // preserved, storm bounded.
    {
      auto skipSend = b.newLabel();
      const bool sends = rng_.chance(0.7);
      if (sends) {
        b.loadGlobal(Reg(10), 15);
        b.branchIfNonZero(Reg(10), skipSend);
      }
      emitBody(b, /*allowSend=*/sends);
      if (sends) {
        b.constant(Reg(10), 1);
        b.storeGlobal(Reg(10), 15);
        b.bind(skipSend);
      }
    }
    b.halt();

    return b.finish();
  }

 private:
  vm::Reg reg() { return vm::Reg(3 + static_cast<unsigned>(rng_.below(7))); }
  std::uint64_t slot() { return 8 + rng_.below(8); }

  void emitOps(vm::IRBuilder& b, int count, bool allowSend,
               bool allowSymbolic = true) {
    using vm::Op;
    using vm::Reg;
    for (int i = 0; i < count; ++i) {
      switch (rng_.below(8)) {
        case 0:
          b.constant(reg(), static_cast<std::int64_t>(rng_.below(256)));
          break;
        case 1: {
          static constexpr Op kOps[] = {Op::kAdd, Op::kSub, Op::kMul,
                                        Op::kAnd, Op::kOr,  Op::kXor,
                                        Op::kUlt, Op::kEq};
          b.alu(kOps[rng_.below(std::size(kOps))], reg(), reg(), reg());
          break;
        }
        case 2:
          b.loadGlobal(reg(), slot());
          break;
        case 3:
          b.storeGlobal(reg(), slot());
          break;
        case 4:
          // Few, narrow symbolic inputs keep solver enumeration domains
          // small (random 64-bit dataflow defeats interval narrowing).
          if (allowSymbolic && symbolics_ < 2) {
            b.makeSymbolic(reg(), "f",
                           1 + static_cast<unsigned>(rng_.below(4)));
            ++symbolics_;
          }
          break;
        case 5:
          b.bvNot(reg(), reg());
          break;
        case 6:
          b.aluImm(Op::kUlt, reg(), reg(),
                   static_cast<std::int64_t>(rng_.below(200)), Reg(15));
          break;
        default:
          b.mov(reg(), reg());
          break;
      }
    }
    if (allowSend && rng_.chance(0.7)) {
      // Broadcast one or two cells of current register soup.
      using vm::Reg;
      const std::uint64_t cells = 1 + rng_.below(2);
      b.constant(Reg(14), static_cast<std::int64_t>(cells));
      b.alloc(Reg(13), Reg(14));
      for (std::uint64_t c = 0; c < cells; ++c) {
        b.constant(Reg(14), static_cast<std::int64_t>(c));
        b.store(reg(), Reg(13), Reg(14));
      }
      b.constant(Reg(12), static_cast<std::int64_t>(rime::kBroadcastDst));
      b.constant(Reg(14), static_cast<std::int64_t>(cells));
      b.send(Reg(12), Reg(13), Reg(14));
    }
  }

  void emitBody(vm::IRBuilder& b, bool allowSend) {
    emitOps(b, 2 + static_cast<int>(rng_.below(4)), allowSend);
    // Up to two nested forward branches on (possibly symbolic) data.
    const int branches = static_cast<int>(rng_.below(3));
    std::vector<vm::IRBuilder::Label> joins;
    for (int i = 0; i < branches; ++i) {
      auto skip = b.newLabel();
      const vm::Reg cond = reg();
      // Quiet mode also guarantees the branch is *symbolic*: random
      // register soup almost never leaves symbolic data in the branch
      // register within the short differential horizons, and a battery
      // whose programs never fork never merges either.
      if (quietBranchArms_ && symbolics_ < 2) {
        b.makeSymbolic(cond, "f", 1 + static_cast<unsigned>(rng_.below(4)));
        ++symbolics_;
      }
      b.branchIfZero(cond, skip);
      emitOps(b, 1 + static_cast<int>(rng_.below(3)),
              allowSend && !quietBranchArms_,
              /*allowSymbolic=*/!quietBranchArms_);
      joins.push_back(skip);
    }
    for (auto it = joins.rbegin(); it != joins.rend(); ++it) {
      b.bind(*it);
      emitOps(b, 1, false);
    }
  }

  support::Rng rng_;
  bool quietBranchArms_ = false;
  int symbolics_ = 0;
};

}  // namespace sde
