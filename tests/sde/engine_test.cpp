// Engine integration tests: boot, timers, delivery, broadcast, failure
// injection, caps, determinism — exercised through real node programs.
#include <gtest/gtest.h>

#include "rime/apps.hpp"
#include "sde/engine.hpp"
#include "sde/explode.hpp"

namespace sde {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  // Two adjacent nodes running the ping app; node 0 pings node 1.
  static std::unique_ptr<Engine> makePingEngine(
      const vm::Program& program, MapperKind kind = MapperKind::kSds,
      EngineConfig config = {}) {
    os::NetworkPlan plan(net::Topology::line(2));
    plan.runEverywhere(program);
    auto engine = std::make_unique<Engine>(plan, kind, config);
    for (const auto& boot : rime::pingBootGlobals(0, 1, 100))
      engine->setBootGlobal(boot.node, boot.slot, boot.value);
    return engine;
  }

  vm::Program ping = rime::buildPingApp();
};

TEST_F(EngineTest, BootCreatesOneStatePerNode) {
  auto engine = makePingEngine(ping);
  engine->run(0);
  EXPECT_EQ(engine->numStates(), 2u);
  EXPECT_EQ(engine->numLiveStates(), 2u);
  EXPECT_EQ(engine->statesOfNode(0).size(), 1u);
  EXPECT_EQ(engine->statesOfNode(1).size(), 1u);
  EXPECT_EQ(engine->stats().get("engine.initial_states"), 2u);
}

TEST_F(EngineTest, BootGlobalsAreApplied) {
  auto engine = makePingEngine(ping);
  engine->run(0);
  const auto* pinger = engine->statesOfNode(0)[0];
  EXPECT_EQ(pinger->space.load(vm::kGlobalsObject, rime::kSlotIsSource),
            engine->context().constant(1, 64));
  EXPECT_EQ(pinger->space.load(vm::kGlobalsObject, rime::kSlotParam),
            engine->context().constant(1, 64));
}

TEST_F(EngineTest, PingPongRoundTripsAccumulate) {
  auto engine = makePingEngine(ping);
  // Interval 100, horizon 1000: pings at 100..1000, pongs arrive +2 hops.
  EXPECT_EQ(engine->run(1000), RunOutcome::kCompleted);
  const auto* pinger = engine->statesOfNode(0)[0];
  const auto* responder = engine->statesOfNode(1)[0];
  const auto replies =
      pinger->space.load(vm::kGlobalsObject, rime::kPingReplies);
  const auto echoed =
      responder->space.load(vm::kGlobalsObject, rime::kPingEchoed);
  ASSERT_TRUE(replies->isConstant());
  ASSERT_TRUE(echoed->isConstant());
  // Pings fire at 100..1000; the ping sent at 1000 is still in flight
  // at the horizon, so nine round trips complete.
  EXPECT_EQ(echoed->value(), 9u);
  EXPECT_EQ(replies->value(), 9u);
  const auto mism =
      pinger->space.load(vm::kGlobalsObject, rime::kPingMismatches);
  EXPECT_EQ(mism->value(), 0u);
}

TEST_F(EngineTest, RunWithIncreasingHorizonsIsIncremental) {
  auto engine = makePingEngine(ping);
  engine->run(300);
  const auto eventsAt300 = engine->eventsProcessed();
  engine->run(1000);
  EXPECT_GT(engine->eventsProcessed(), eventsAt300);
  const auto* responder = engine->statesOfNode(1)[0];
  EXPECT_EQ(responder->space.load(vm::kGlobalsObject, rime::kPingEchoed),
            engine->context().constant(9, 64));
}

TEST_F(EngineTest, CommunicationHistoryRecorded) {
  auto engine = makePingEngine(ping);
  engine->run(150);  // one ping delivered, one pong delivered at 102
  const auto* pinger = engine->statesOfNode(0)[0];
  const auto* responder = engine->statesOfNode(1)[0];
  ASSERT_EQ(pinger->commLog.size(), 2u);   // sent ping, received pong
  EXPECT_TRUE(pinger->commLog[0].sent);
  EXPECT_EQ(pinger->commLog[0].peer, 1u);
  EXPECT_FALSE(pinger->commLog[1].sent);
  ASSERT_EQ(responder->commLog.size(), 2u);  // received ping, sent pong
  EXPECT_FALSE(responder->commLog[0].sent);
  EXPECT_EQ(responder->commLog[0].packetId, pinger->commLog[0].packetId);
}

TEST_F(EngineTest, UndeliverableSendIsCountedAndLost) {
  // Ping a node that is out of radio range: line(3), 0 pings 2.
  os::NetworkPlan plan(net::Topology::line(3));
  plan.runEverywhere(ping);
  Engine engine(plan, MapperKind::kSds);
  for (const auto& boot : rime::pingBootGlobals(0, 2, 100))
    engine.setBootGlobal(boot.node, boot.slot, boot.value);
  engine.run(500);
  EXPECT_GT(engine.stats().get("net.undeliverable"), 0u);
  const auto* target = engine.statesOfNode(2)[0];
  EXPECT_EQ(target->space.load(vm::kGlobalsObject, rime::kPingEchoed),
            engine.context().constant(0, 64));
}

TEST_F(EngineTest, SymbolicDropForksOnDelivery) {
  auto engine = makePingEngine(ping);
  engine->setFailureModel(std::make_unique<net::SymbolicDropModel>(
      std::vector<net::NodeId>{1}, 1));
  engine->run(150);  // first ping delivered at 101
  // Node 1 forked into receive/drop; node 0 forked when the pong from
  // the receiving branch arrived... but node 0 is not in the drop set,
  // so only the mapping may fork it. With SDS and a single sender state
  // per dstate there is no conflict: expect exactly 3 states.
  EXPECT_EQ(engine->statesOfNode(1).size(), 2u);
  EXPECT_EQ(engine->stats().get("engine.failure_forks"), 1u);

  // The two node-1 states carry complementary drop constraints.
  const auto states = engine->statesOfNode(1);
  expr::Ref dropVar = engine->context().variable("n1.netdrop.0", 1);
  std::uint64_t received = 0;
  std::uint64_t dropped = 0;
  for (const auto* s : states) {
    const auto v = engine->solver().getValue(
        s->constraints, engine->context().zext(dropVar, 64));
    ASSERT_TRUE(v.has_value());
    const auto echoed =
        s->space.load(vm::kGlobalsObject, rime::kPingEchoed);
    if (*v == 0) {
      ++received;
      EXPECT_EQ(echoed->value(), 1u);
    } else {
      ++dropped;
      EXPECT_EQ(echoed->value(), 0u);
    }
    // Both radio-received the packet (conflict-freeness!).
    EXPECT_FALSE(s->commLog.empty());
  }
  EXPECT_EQ(received, 1u);
  EXPECT_EQ(dropped, 1u);
}

TEST_F(EngineTest, SymbolicDuplicateDeliversTwice) {
  auto engine = makePingEngine(ping);
  engine->setFailureModel(std::make_unique<net::SymbolicDuplicateModel>(
      std::vector<net::NodeId>{1}, 1));
  engine->run(150);
  const auto states = engine->statesOfNode(1);
  ASSERT_EQ(states.size(), 2u);
  std::vector<std::uint64_t> echoes;
  for (const auto* s : states)
    echoes.push_back(
        s->space.load(vm::kGlobalsObject, rime::kPingEchoed)->value());
  std::sort(echoes.begin(), echoes.end());
  // One branch processed the ping once, the duplicate branch twice.
  EXPECT_EQ(echoes, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(EngineTest, SymbolicRebootResetsOneBranch) {
  auto engine = makePingEngine(ping);
  engine->setFailureModel(std::make_unique<net::SymbolicRebootModel>(
      std::vector<net::NodeId>{1}, 1));
  engine->run(150);
  const auto states = engine->statesOfNode(1);
  ASSERT_EQ(states.size(), 2u);
  std::vector<std::uint64_t> echoes;
  for (const auto* s : states)
    echoes.push_back(
        s->space.load(vm::kGlobalsObject, rime::kPingEchoed)->value());
  std::sort(echoes.begin(), echoes.end());
  // The rebooted branch lost its RAM (echo counter back to zero).
  EXPECT_EQ(echoes, (std::vector<std::uint64_t>{0, 1}));
}

TEST_F(EngineTest, StateCapAbortsRun) {
  EngineConfig config;
  config.maxStates = 3;
  config.sampleEveryEvents = 1;
  auto engine = makePingEngine(ping, MapperKind::kCob, config);
  engine->setFailureModel(std::make_unique<net::SymbolicDropModel>(
      std::vector<net::NodeId>{0, 1}, 4));
  const RunOutcome outcome = engine->run(5000);
  EXPECT_EQ(outcome, RunOutcome::kAbortedStates);
  EXPECT_GE(engine->numStates(), 3u);
}

TEST_F(EngineTest, MemoryCapAbortsRun) {
  EngineConfig config;
  config.maxSimulatedMemoryBytes = 1;  // absurdly low: abort immediately
  config.sampleEveryEvents = 1;
  auto engine = makePingEngine(ping, MapperKind::kSds, config);
  EXPECT_EQ(engine->run(5000), RunOutcome::kAbortedMemory);
}

TEST_F(EngineTest, SamplerObservesProgress) {
  EngineConfig config;
  config.sampleEveryEvents = 1;
  auto engine = makePingEngine(ping, MapperKind::kSds, config);
  std::vector<std::uint64_t> sampledStates;
  engine->setSampler([&](const Engine& e) {
    sampledStates.push_back(e.numStates());
  });
  engine->run(300);
  ASSERT_FALSE(sampledStates.empty());
  EXPECT_EQ(sampledStates.back(), engine->numStates());
}

TEST_F(EngineTest, SimulatedMemoryGrowsWithStates) {
  auto engine = makePingEngine(ping);
  engine->run(0);
  const auto baseline = engine->simulatedMemoryBytes();
  EXPECT_GT(baseline, 0u);
  engine->setFailureModel(std::make_unique<net::SymbolicDropModel>(
      std::vector<net::NodeId>{1}, 1));
  engine->run(1000);
  EXPECT_GT(engine->simulatedMemoryBytes(), baseline);
}

TEST_F(EngineTest, DeterministicAcrossIdenticalRuns) {
  const auto runOnce = [&](MapperKind kind) {
    auto engine = makePingEngine(ping, kind);
    engine->setFailureModel(std::make_unique<net::SymbolicDropModel>(
        std::vector<net::NodeId>{0, 1}, 1));
    engine->run(1000);
    std::vector<std::uint64_t> hashes;
    for (const auto& s : engine->states())
      hashes.push_back(s->configHash());
    std::sort(hashes.begin(), hashes.end());
    return hashes;
  };
  EXPECT_EQ(runOnce(MapperKind::kSds), runOnce(MapperKind::kSds));
  EXPECT_EQ(runOnce(MapperKind::kCow), runOnce(MapperKind::kCow));
}

TEST_F(EngineTest, WallClockAdvances) {
  auto engine = makePingEngine(ping);
  engine->run(1000);
  EXPECT_GT(engine->wallSeconds(), 0.0);
}

}  // namespace
}  // namespace sde
