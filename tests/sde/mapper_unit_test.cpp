// Unit tests of the three mapping algorithms against hand-driven
// branch/transmit sequences — no engine, no VM execution. A stub
// runtime owns forked states, so each algorithm's structural behaviour
// (who forks, who receives, how groups evolve) is pinned down exactly
// as §III specifies.
#include <gtest/gtest.h>

#include <memory>

#include "sde/cob.hpp"
#include "sde/cow.hpp"
#include "sde/explode.hpp"
#include "sde/sds.hpp"
#include "vm/builder.hpp"

namespace sde {
namespace {

class StubRuntime final : public MapperRuntime {
 public:
  explicit StubRuntime(StateId firstId) : nextId_(firstId) {}

  ExecutionState& forkState(ExecutionState& original) override {
    owned.push_back(original.fork(nextId_++));
    ++forks;
    return *owned.back();
  }
  support::StatsRegistry& stats() override { return stats_; }

  std::vector<std::unique_ptr<ExecutionState>> owned;
  std::size_t forks = 0;

 private:
  StateId nextId_;
  support::StatsRegistry stats_;
};

class MapperUnitTest : public ::testing::Test {
 protected:
  MapperUnitTest() {
    vm::IRBuilder b("noop");
    b.setGlobals(1);
    b.beginEntry(vm::Entry::kInit);
    b.halt();
    program = b.finish();
  }

  // k initial states on nodes 0..k-1.
  std::vector<ExecutionState*> makeInitial(std::uint32_t k) {
    std::vector<ExecutionState*> initial;
    for (NodeId node = 0; node < k; ++node) {
      owned.push_back(std::make_unique<ExecutionState>(nextId++, node,
                                                       program));
      initial.push_back(owned.back().get());
    }
    return initial;
  }

  // Emulates the engine's local-branch path: clone + notify the mapper.
  ExecutionState& branch(StateMapper& mapper, StubRuntime& runtime,
                         ExecutionState& original) {
    ExecutionState& sibling = runtime.forkState(original);
    mapper.onLocalBranch(original, sibling, runtime);
    return sibling;
  }

  static net::Packet packetTo(NodeId src, NodeId dst) {
    net::Packet packet;
    packet.src = src;
    packet.dst = dst;
    packet.id = ++packetCounter;
    return packet;
  }

  vm::Program program;
  std::vector<std::unique_ptr<ExecutionState>> owned;
  StateId nextId = 0;
  static inline std::uint64_t packetCounter = 0;
};

// --- COB ---------------------------------------------------------------------

TEST_F(MapperUnitTest, CobLocalBranchForksWholeDscenario) {
  CobMapper cob(4);
  StubRuntime runtime(100);
  auto initial = makeInitial(4);
  cob.registerInitialStates(initial);
  EXPECT_EQ(cob.numGroups(), 1u);

  branch(cob, runtime, *initial[1]);
  // The sibling plus forked copies of the 3 other nodes (Figure 3).
  EXPECT_EQ(cob.numGroups(), 2u);
  EXPECT_EQ(runtime.forks, 1u + 3u);
  cob.checkInvariants();
}

TEST_F(MapperUnitTest, CobTransmitIsPureLookup) {
  CobMapper cob(3);
  StubRuntime runtime(100);
  auto initial = makeInitial(3);
  cob.registerInitialStates(initial);

  const auto receivers =
      cob.onTransmit(*initial[0], packetTo(0, 2), runtime);
  ASSERT_EQ(receivers.size(), 1u);
  EXPECT_EQ(receivers[0], initial[2]);
  EXPECT_EQ(runtime.forks, 0u);  // never forks on transmit
}

TEST_F(MapperUnitTest, CobTransmitRoutedWithinOwnDscenario) {
  CobMapper cob(3);
  StubRuntime runtime(100);
  auto initial = makeInitial(3);
  cob.registerInitialStates(initial);
  ExecutionState& sibling = branch(cob, runtime, *initial[0]);

  // The sibling's dscenario holds the node-2 *copy*, not the original.
  const auto receivers = cob.onTransmit(sibling, packetTo(0, 2), runtime);
  ASSERT_EQ(receivers.size(), 1u);
  EXPECT_NE(receivers[0], initial[2]);
  EXPECT_EQ(receivers[0]->node(), 2u);
  // The original's dscenario still routes to the original.
  const auto original =
      cob.onTransmit(*initial[0], packetTo(0, 2), runtime);
  EXPECT_EQ(original[0], initial[2]);
}

TEST_F(MapperUnitTest, CobScenarioCountGrowsPerBranch) {
  CobMapper cob(2);
  StubRuntime runtime(100);
  auto initial = makeInitial(2);
  cob.registerInitialStates(initial);
  branch(cob, runtime, *initial[0]);
  branch(cob, runtime, *initial[1]);  // forks into BOTH dscenarios? No —
  // a branch affects only the dscenario of the branching state.
  EXPECT_EQ(cob.numGroups(), 3u);
  cob.checkInvariants();
}

// --- COW ---------------------------------------------------------------------

TEST_F(MapperUnitTest, CowLocalBranchJustJoins) {
  CowMapper cow(4);
  StubRuntime runtime(100);
  auto initial = makeInitial(4);
  cow.registerInitialStates(initial);

  ExecutionState& sibling = branch(cow, runtime, *initial[1]);
  EXPECT_EQ(cow.numGroups(), 1u);
  EXPECT_EQ(runtime.forks, 1u);  // only the engine's own sibling clone
  EXPECT_TRUE(cow.dstateOf(sibling).contains(initial[1]));
  EXPECT_EQ(cow.dstateOf(sibling).statesOf(1).size(), 2u);
  cow.checkInvariants();
}

TEST_F(MapperUnitTest, CowTransmitWithoutRivalsDeliversInPlace) {
  CowMapper cow(3);
  StubRuntime runtime(100);
  auto initial = makeInitial(3);
  cow.registerInitialStates(initial);
  // Two states on the destination node, single sender state.
  branch(cow, runtime, *initial[2]);

  const auto receivers = cow.onTransmit(*initial[0], packetTo(0, 2), runtime);
  EXPECT_EQ(receivers.size(), 2u);  // both node-2 states receive
  EXPECT_EQ(cow.numGroups(), 1u);  // no conflict: no new dstate
  EXPECT_EQ(runtime.forks, 1u);    // no forking either
}

TEST_F(MapperUnitTest, CowTransmitWithRivalsForksTargetsAndBystanders) {
  CowMapper cow(4);
  StubRuntime runtime(100);
  auto initial = makeInitial(4);
  cow.registerInitialStates(initial);
  branch(cow, runtime, *initial[0]);  // the sender now has one rival
  runtime.forks = 0;

  const auto receivers = cow.onTransmit(*initial[0], packetTo(0, 1), runtime);
  // New dstate: sender + forked target (node 1) + forked bystanders
  // (nodes 2, 3) — Figure 4.
  ASSERT_EQ(receivers.size(), 1u);
  EXPECT_NE(receivers[0], initial[1]);  // a fresh copy receives
  EXPECT_EQ(runtime.forks, 3u);
  EXPECT_EQ(runtime.stats().get("map.targets_forked"), 1u);
  EXPECT_EQ(runtime.stats().get("map.bystanders_forked"), 2u);
  EXPECT_EQ(cow.numGroups(), 2u);
  // The rival keeps the originals.
  cow.checkInvariants();
}

// --- SDS ---------------------------------------------------------------------

TEST_F(MapperUnitTest, SdsLocalBranchMirrorsVirtuals) {
  SdsMapper sds(3);
  StubRuntime runtime(100);
  auto initial = makeInitial(3);
  sds.registerInitialStates(initial);
  EXPECT_EQ(sds.numVirtualStates(), 3u);

  ExecutionState& sibling = branch(sds, runtime, *initial[0]);
  EXPECT_EQ(sds.numVirtualStates(), 4u);
  EXPECT_EQ(sds.superDstateSize(sibling), 1u);
  EXPECT_EQ(sds.numGroups(), 1u);
  sds.checkInvariants();
}

TEST_F(MapperUnitTest, SdsTransmitWithoutRivalsDeliversInPlace) {
  SdsMapper sds(3);
  StubRuntime runtime(100);
  auto initial = makeInitial(3);
  sds.registerInitialStates(initial);
  branch(sds, runtime, *initial[2]);
  runtime.forks = 0;

  const auto receivers = sds.onTransmit(*initial[0], packetTo(0, 2), runtime);
  EXPECT_EQ(receivers.size(), 2u);
  EXPECT_EQ(runtime.forks, 0u);
  EXPECT_EQ(sds.numGroups(), 1u);
  sds.checkInvariants();
}

TEST_F(MapperUnitTest, SdsTransmitWithRivalsForksOnlyTargets) {
  SdsMapper sds(4);
  StubRuntime runtime(100);
  auto initial = makeInitial(4);
  sds.registerInitialStates(initial);
  branch(sds, runtime, *initial[0]);  // rival for the sender
  runtime.forks = 0;

  const auto receivers = sds.onTransmit(*initial[0], packetTo(0, 1), runtime);
  ASSERT_EQ(receivers.size(), 1u);
  // Exactly ONE fork: the target. Bystanders gained virtual states only.
  EXPECT_EQ(runtime.forks, 1u);
  EXPECT_EQ(runtime.stats().get("map.targets_forked"), 1u);
  EXPECT_EQ(runtime.stats().get("map.sds.virtual_bystanders_forked"), 2u);
  EXPECT_EQ(sds.numGroups(), 2u);
  // The receiving state is the ORIGINAL target (t receives, t' does
  // not, §III-C.4); the copy is the non-receiving sibling.
  EXPECT_EQ(receivers[0], initial[1]);
  // Bystanders now live in two dstates at once (their super-dstate).
  EXPECT_EQ(sds.superDstateSize(*initial[2]), 2u);
  EXPECT_EQ(sds.superDstateSize(*initial[3]), 2u);
  sds.checkInvariants();
}

TEST_F(MapperUnitTest, SdsSuperRivalsForkTargetWithoutVirtualForking) {
  // Figure 7: the sender has no direct rival, but the target shares a
  // dstate with node-0 states that are NOT the sender (super-rivals).
  SdsMapper sds(4);
  StubRuntime runtime(100);
  auto initial = makeInitial(4);
  sds.registerInitialStates(initial);

  // Split node 0 into two states and separate them into two dstates by
  // sending from the sibling (rival conflict) first.
  ExecutionState& sibling = branch(sds, runtime, *initial[0]);
  (void)sds.onTransmit(sibling, packetTo(0, 3), runtime);
  ASSERT_EQ(sds.numGroups(), 2u);
  // Now `initial[0]` has one virtual in the old dstate; the target on
  // node 1 has virtuals in both dstates — the sibling's dstate contains
  // node-0 virtuals that are super-rivals for initial[0]'s next send.
  runtime.forks = 0;
  const auto before = sds.numGroups();
  const auto receivers =
      sds.onTransmit(*initial[0], packetTo(0, 1), runtime);
  ASSERT_EQ(receivers.size(), 1u);
  EXPECT_EQ(runtime.forks, 1u);            // the target forked once
  EXPECT_EQ(sds.numGroups(), before);      // but no dstate was forked
  sds.checkInvariants();
}

TEST_F(MapperUnitTest, SdsTargetForkedAtMostOncePerMapping) {
  // Multiple sender virtuals (several dstates) targeting the same
  // actual state must still fork it exactly once (§III-C.3).
  SdsMapper sds(3);
  StubRuntime runtime(100);
  auto initial = makeInitial(3);
  sds.registerInitialStates(initial);
  ExecutionState& sibling = branch(sds, runtime, *initial[0]);
  // Create a second dstate via a conflicting send from the sibling.
  (void)sds.onTransmit(sibling, packetTo(0, 2), runtime);
  ASSERT_EQ(sds.numGroups(), 2u);
  // Let the ORIGINAL now broadcast to node 1, whose single state has
  // virtuals in both dstates.
  runtime.forks = 0;
  const auto forkedBefore = runtime.stats().get("map.targets_forked");
  const auto receivers = sds.onTransmit(*initial[0], packetTo(0, 1), runtime);
  ASSERT_EQ(receivers.size(), 1u);
  EXPECT_LE(runtime.stats().get("map.targets_forked") - forkedBefore, 1u);
  EXPECT_LE(runtime.forks, 1u);
  sds.checkInvariants();
}

// --- Cross-algorithm structure ------------------------------------------------

TEST_F(MapperUnitTest, GroupChoicesShapes) {
  CobMapper cob(2);
  CowMapper cow(2);
  SdsMapper sds(2);
  StubRuntime runtime(100);
  auto a = makeInitial(2);
  cob.registerInitialStates(a);
  auto b = makeInitial(2);
  cow.registerInitialStates(b);
  auto c = makeInitial(2);
  sds.registerInitialStates(c);

  for (StateMapper* mapper :
       std::initializer_list<StateMapper*>{&cob, &cow, &sds}) {
    const auto groups = mapper->groupChoices();
    ASSERT_EQ(groups.size(), 1u) << mapper->name();
    ASSERT_EQ(groups[0].size(), 2u);
    EXPECT_EQ(groups[0][0].size(), 1u);
    EXPECT_EQ(groups[0][1].size(), 1u);
    EXPECT_EQ(countScenarios(*mapper), 1u);
  }
}

}  // namespace
}  // namespace sde
