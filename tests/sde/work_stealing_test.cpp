// Work-stealing stress for the fleet coordinator (sde/fleet.hpp).
//
// The leases are deliberately skewed — one worker owns the whole job
// table, the others start empty — so the only way the fleet finishes
// with every worker contributing is through the steal protocol. Oracles:
//  - steals actually happen (the skew forces them; a zero count means
//    the idle workers starved while the victim ground through its shard
//    alone — the protocol silently regressed to no-op);
//  - no job is ever double-executed (executedCounts all exactly 1, one
//    .done file per job) — stolen ranges are handed over exactly once;
//  - the digest equals the unskewed run's (stealing moves work, never
//    changes it);
//  - a victim dying mid-shard with steals in flight loses no jobs and
//    completes no job twice durably (the chaos variant, skipped under
//    sanitizers like every fork+SIGKILL test).
#include <gtest/gtest.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>

#include "sde/fleet.hpp"
#include "snapshot/manifest.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

namespace fs = std::filesystem;

trace::CollectScenarioConfig smallGrid(std::uint64_t simulationTime) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = simulationTime;
  config.mapper = MapperKind::kSds;
  return config;
}

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("sde_" + name);
  fs::remove_all(dir);
  return dir;
}

bool sanitizersActive() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

std::uint64_t referenceDigest(const trace::CollectScenarioConfig& config,
                              std::size_t vars) {
  ParallelConfig threads;
  threads.workers = 1;
  return trace::runCollectPartitioned(config, threads, vars)
      .result.fingerprintDigest();
}

TEST(WorkStealingTest, SkewedLeasesForceStealsWithoutDoubleExecution) {
  const auto config = smallGrid(4000);
  const std::uint64_t want = referenceDigest(config, /*vars=*/3);

  // Slot 0 owns all 8 jobs; slots 1..3 start empty and can only ever
  // work via steals.
  const fs::path dir = freshDir("steal_skew");
  FleetConfig fleet;
  fleet.processes = 4;
  fleet.checkpointDir = dir.string();
  fleet.initialLeases = {{0, 8}};
  // A tight status cadence keeps the coordinator's frontier mirror
  // fresh, so victims still look fat when the idle workers ask.
  fleet.statusEveryEvents = 16;
  const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

  ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(run.result.fingerprintDigest(), want);
  EXPECT_GE(run.steals, 1u) << "skewed fleet finished without stealing";
  EXPECT_EQ(run.workerDeaths, 0u);

  // No double execution, no lost job: every job ran exactly once and
  // left exactly its own completion marker.
  ASSERT_EQ(run.executedCounts.size(), 8u);
  for (std::size_t job = 0; job < run.executedCounts.size(); ++job)
    EXPECT_EQ(run.executedCounts[job], 1u) << "job " << job;
  std::size_t doneFiles = 0;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".done") ++doneFiles;
  EXPECT_EQ(doneFiles, 8u);
  fs::remove_all(dir);
}

TEST(WorkStealingTest, TwoWorkerHandoffKeepsFrontierExact) {
  // Minimal steal topology: two workers, one fat lease. Checks the
  // split arithmetic end-to-end — victim keeps its current job, thief
  // gets the upper half, nothing overlaps, nothing is skipped.
  const auto config = smallGrid(2500);
  const std::uint64_t want = referenceDigest(config, /*vars=*/3);

  const fs::path dir = freshDir("steal_pair");
  FleetConfig fleet;
  fleet.processes = 2;
  fleet.checkpointDir = dir.string();
  fleet.initialLeases = {{0, 8}};
  fleet.statusEveryEvents = 16;
  const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

  ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(run.result.fingerprintDigest(), want);
  for (std::size_t job = 0; job < run.executedCounts.size(); ++job)
    EXPECT_EQ(run.executedCounts[job], 1u) << "job " << job;
  fs::remove_all(dir);
}

TEST(WorkStealingTest, VictimDeathMidHandoffLosesNothing) {
  if (sanitizersActive())
    GTEST_SKIP() << "fork()+SIGKILL is not sanitizer-safe";

  const auto config = smallGrid(4000);
  const std::uint64_t want = referenceDigest(config, /*vars=*/3);

  // Slot 0 owns everything, so the idle workers are stealing from it
  // throughout. Whoever ends up leasing job 6 — the skewed owner late
  // in its shard, or (far likelier) a thief holding stolen range — is
  // SIGKILLed with the handoff machinery mid-flight. The kill-once gate
  // lives on disk because a respawned worker restarts from the
  // identical fork image.
  const fs::path dir = freshDir("steal_victim_death");
  const fs::path sentinel = dir / "killed_once.sentinel";
  FleetConfig fleet;
  fleet.processes = 4;
  fleet.checkpointDir = dir.string();
  fleet.initialLeases = {{0, 8}};
  fleet.statusEveryEvents = 16;
  fleet.chaos.beforeJob = [sentinel](unsigned, std::uint32_t jobId) {
    if (jobId != 6) return;
    if (fs::exists(sentinel)) return;
    { std::ofstream mark(sentinel); }
    ::raise(SIGKILL);
  };
  const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

  ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(run.result.fingerprintDigest(), want)
      << "victim death changed the exploration";
  EXPECT_GE(run.workerDeaths, 1u);
  EXPECT_GE(run.respawns, 1u);
  EXPECT_GE(run.steals, 1u);

  // Every job ran (once, or twice if the kill interrupted it mid-run);
  // none was skipped, and completion markers are unique per job.
  ASSERT_EQ(run.executedCounts.size(), 8u);
  for (std::size_t job = 0; job < run.executedCounts.size(); ++job) {
    EXPECT_GE(run.executedCounts[job], 1u) << "job " << job;
    EXPECT_LE(run.executedCounts[job], 2u) << "job " << job;
  }
  std::size_t doneFiles = 0;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.path().extension() == ".done") ++doneFiles;
  EXPECT_EQ(doneFiles, 8u);
  fs::remove_all(dir);
}

TEST(WorkStealingTest, MalformedLeasesAreRejected) {
  const auto config = smallGrid(1000);
  const fs::path dir = freshDir("steal_bad_leases");

  FleetConfig gap;  // hole between the leases
  gap.processes = 2;
  gap.checkpointDir = dir.string();
  gap.initialLeases = {{0, 3}, {4, 8}};
  EXPECT_THROW((void)trace::runCollectFleet(config, gap, /*vars=*/3),
               FleetError);

  FleetConfig overlap;
  overlap.processes = 2;
  overlap.checkpointDir = dir.string();
  overlap.initialLeases = {{0, 5}, {4, 8}};
  EXPECT_THROW((void)trace::runCollectFleet(config, overlap, /*vars=*/3),
               FleetError);

  FleetConfig tooMany;  // more leases than workers
  tooMany.processes = 1;
  tooMany.checkpointDir = dir.string();
  tooMany.initialLeases = {{0, 4}, {4, 8}};
  EXPECT_THROW((void)trace::runCollectFleet(config, tooMany, /*vars=*/3),
               FleetError);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace sde
