// Chaos battery for the multi-process fleet (sde/fleet.hpp): SIGKILL
// workers at the nastiest moments and prove the run still completes
// with the crash-free digest.
//
// Kill sites:
//  - beforeJob: a worker dies right after leasing, before any engine
//    exists — the pure re-lease path.
//  - onCheckpoint: a worker dies immediately after atomically writing a
//    job checkpoint — the respawned worker must RESUME that job from
//    its .ckpt (mid-job recovery, not just re-lease).
//  - whole fleet: SIGKILL the coordinator process itself mid-run, then
//    resume the directory in-process — the durable-queue contract.
//
// Kill-once gates live on the file system (sentinel files), never in
// captured memory: a respawned worker restarts from the identical fork
// image, so an in-memory "already killed" flag would re-fire forever.
//
// All fork()+SIGKILL tests are skipped under sanitizers (their runtimes
// are not async-kill-safe); the torn-shm-segment cases don't kill
// anything and run everywhere.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include "sde/fleet.hpp"
#include "snapshot/manifest.hpp"
#include "solver/shm_cache.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

namespace fs = std::filesystem;

trace::CollectScenarioConfig smallGrid(std::uint64_t simulationTime) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = simulationTime;
  config.mapper = MapperKind::kSds;
  return config;
}

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("sde_" + name);
  fs::remove_all(dir);
  return dir;
}

bool sanitizersActive() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

std::uint64_t crashFreeDigest(const trace::CollectScenarioConfig& config,
                              std::size_t vars) {
  ParallelConfig threads;
  threads.workers = 2;
  return trace::runCollectPartitioned(config, threads, vars)
      .result.fingerprintDigest();
}

// Kills `slot` workers once per sentinel when they lease `jobId`.
FleetChaos killOnceBeforeJob(const fs::path& sentinel, unsigned victimSlot,
                             std::uint32_t victimJob) {
  FleetChaos chaos;
  chaos.beforeJob = [sentinel, victimSlot, victimJob](unsigned slot,
                                                      std::uint32_t jobId) {
    if (slot != victimSlot || jobId != victimJob) return;
    if (fs::exists(sentinel)) return;
    { std::ofstream mark(sentinel); }
    ::raise(SIGKILL);
  };
  return chaos;
}

TEST(FleetCrashTest, WorkerKilledBeforeJobIsReLeasedAndRespawned) {
  if (sanitizersActive())
    GTEST_SKIP() << "fork()+SIGKILL is not sanitizer-safe";

  const auto config = smallGrid(4000);
  const std::uint64_t want = crashFreeDigest(config, /*vars=*/3);

  const fs::path dir = freshDir("crash_before_job");
  FleetConfig fleet;
  fleet.processes = 2;
  fleet.checkpointDir = dir.string();
  fleet.chaos = killOnceBeforeJob(dir / "kill.sentinel", /*victimSlot=*/1,
                                  /*victimJob=*/5);
  const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

  ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(run.result.fingerprintDigest(), want);
  EXPECT_GE(run.workerDeaths, 1u);
  EXPECT_GE(run.respawns, 1u);
  // The victim job was leased, the leaseholder died before running an
  // engine, and the job still ran (exactly once — no engine existed at
  // kill time, so the re-run is the only run).
  ASSERT_GT(run.executedCounts.size(), 5u);
  EXPECT_EQ(run.executedCounts[5], 1u);
  fs::remove_all(dir);
}

TEST(FleetCrashTest, WorkerKilledMidCheckpointWriteResumesTheJob) {
  if (sanitizersActive())
    GTEST_SKIP() << "fork()+SIGKILL is not sanitizer-safe";

  const auto config = smallGrid(4000);
  const std::uint64_t want = crashFreeDigest(config, /*vars=*/3);

  const fs::path dir = freshDir("crash_on_ckpt");
  const fs::path sentinel = dir / "ckpt_kill.sentinel";
  FleetConfig fleet;
  fleet.processes = 2;
  fleet.checkpointDir = dir.string();
  // Aggressive cadence so job 0 (the fattest shard start) checkpoints
  // early and often — the kill fires on its first checkpoint.
  fleet.checkpointEveryEvents = 16;
  fleet.chaos.onCheckpoint = [sentinel](unsigned, std::uint32_t jobId) {
    if (jobId != 0) return;
    if (fs::exists(sentinel)) return;
    { std::ofstream mark(sentinel); }
    ::raise(SIGKILL);
  };
  const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

  ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(run.result.fingerprintDigest(), want)
      << "checkpoint-resume diverged from a crash-free run";
  EXPECT_GE(run.workerDeaths, 1u);
  EXPECT_GE(run.respawns, 1u);
  // Only the resumed attempt reports (the killed one died before its
  // kJobDone frame), so the count is exactly 1.
  ASSERT_FALSE(run.executedCounts.empty());
  EXPECT_EQ(run.executedCounts[0], 1u);
  // The sentinel proves the checkpoint write completed before death, so
  // the second run restored rather than started cold — which the equal
  // digest then certifies end-to-end.
  EXPECT_TRUE(fs::exists(sentinel));
  fs::remove_all(dir);
}

TEST(FleetCrashTest, RandomWorkerKillsAcrossTheRunStillConverge) {
  if (sanitizersActive())
    GTEST_SKIP() << "fork()+SIGKILL is not sanitizer-safe";

  const auto config = smallGrid(4000);
  const std::uint64_t want = crashFreeDigest(config, /*vars=*/3);

  // Three separate kills (different slots, different jobs), each gated
  // by its own sentinel — a small storm rather than a single incident.
  const fs::path dir = freshDir("crash_storm");
  FleetConfig fleet;
  fleet.processes = 4;
  fleet.checkpointDir = dir.string();
  fleet.checkpointEveryEvents = 32;
  fleet.chaos.beforeJob = [dir](unsigned slot, std::uint32_t jobId) {
    const fs::path sentinel =
        dir / ("storm_" + std::to_string(slot) + "_" + std::to_string(jobId) +
               ".sentinel");
    const bool target = (slot == 0 && jobId == 1) ||
                        (slot == 1 && jobId == 3) ||
                        (slot == 2 && jobId == 4);
    if (!target || fs::exists(sentinel)) return;
    { std::ofstream mark(sentinel); }
    ::raise(SIGKILL);
  };
  const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

  ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(run.result.fingerprintDigest(), want);
  EXPECT_GE(run.workerDeaths, 1u);
  fs::remove_all(dir);
}

TEST(FleetCrashTest, KilledCoordinatorRunIsResumableFromTheDirectory) {
  if (sanitizersActive())
    GTEST_SKIP() << "fork()+SIGKILL is not sanitizer-safe";

  const auto config = smallGrid(4000);
  const std::uint64_t want = crashFreeDigest(config, /*vars=*/3);

  const fs::path dir = freshDir("crash_coordinator");
  const pid_t child = fork();
  ASSERT_NE(child, -1) << "fork failed";
  if (child == 0) {
    // Child: run a whole fleet (coordinator + its workers). PDEATHSIG
    // in the workers reaps the grandchildren when we are SIGKILLed.
    FleetConfig fleet;
    fleet.processes = 2;
    fleet.checkpointDir = dir.string();
    fleet.checkpointEveryEvents = 16;
    fleet.shmQueryCache = false;  // nobody left to unlink the segment
    try {
      (void)trace::runCollectFleet(config, fleet, /*vars=*/3);
    } catch (...) {
    }
    _exit(0);
  }

  // Parent: kill the coordinator as soon as the run directory shows a
  // first job artifact.
  const auto anyJobArtifact = [&]() {
    for (std::uint32_t job = 0; job < 8; ++job)
      if (fs::exists(snapshot::jobCheckpointPath(dir, job)) ||
          fs::exists(snapshot::jobDonePath(dir, job)))
        return true;
    return false;
  };
  bool childExited = false;
  int status = 0;
  for (int i = 0; i < 6000; ++i) {  // up to ~60 s
    if (fs::exists(snapshot::manifestPath(dir)) && anyJobArtifact()) break;
    if (waitpid(child, &status, WNOHANG) == child) {
      childExited = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!childExited) {
    ASSERT_EQ(kill(child, SIGKILL), 0);
    ASSERT_EQ(waitpid(child, &status, 0), child);
  }
  ASSERT_TRUE(fs::exists(snapshot::manifestPath(dir)))
      << "coordinator died before writing the manifest";

  // Resume the directory with a fresh fleet.
  FleetConfig resume;
  resume.processes = 2;
  resume.checkpointDir = dir.string();
  resume.resume = true;
  const FleetResult resumed = trace::runCollectFleet(config, resume,
                                                     /*vars=*/3);
  EXPECT_EQ(resumed.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(resumed.result.fingerprintDigest(), want);
  fs::remove_all(dir);
}

TEST(FleetCrashTest, TornShmSegmentDegradesToAColdCacheNotWrongResults) {
  const auto config = smallGrid(2500);
  const std::uint64_t want = crashFreeDigest(config, /*vars=*/3);

  // Plant a segment under the fleet's explicit name that passes
  // existence checks but fails attach validation: a valid cache
  // truncated behind its header's back (the "machine died mid-life"
  // artifact).
  const std::string shmName =
      "/sde_torn_test_" + std::to_string(static_cast<long>(::getpid()));
  { auto planted = solver::ShmQueryCache::create(shmName); }
  {
    const int fd = ::shm_open(shmName.c_str(), O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, 8192), 0);
    ::close(fd);
  }
  ASSERT_TRUE(solver::ShmQueryCache::segmentExists(shmName));

  const fs::path dir = freshDir("crash_torn_shm");
  FleetConfig fleet;
  fleet.processes = 2;
  fleet.checkpointDir = dir.string();
  fleet.shmName = shmName;
  const FleetResult run = trace::runCollectFleet(config, fleet, /*vars=*/3);

  EXPECT_TRUE(run.shmDegraded) << "torn segment was silently accepted";
  ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(run.result.fingerprintDigest(), want)
      << "degraded cache changed the exploration";
  solver::ShmQueryCache::unlinkSegment(shmName);
  fs::remove_all(dir);
}

TEST(FleetCrashTest, WarmSegmentFromAPriorFleetIsReattached) {
  // The healthy counterpart of the torn case: a first fleet leaves its
  // explicitly named segment behind, a second fleet re-attaches it and
  // still produces the identical digest (cache-history independence).
  const auto config = smallGrid(2500);

  const std::string shmName =
      "/sde_warm_test_" + std::to_string(static_cast<long>(::getpid()));
  const fs::path dir1 = freshDir("crash_warm_1");
  FleetConfig first;
  first.processes = 2;
  first.collectTestcases = true;  // generate real cache traffic
  first.checkpointDir = dir1.string();
  first.shmName = shmName;
  const FleetResult cold = trace::runCollectFleet(config, first, /*vars=*/3);
  ASSERT_EQ(cold.result.outcome, RunOutcome::kCompleted);
  ASSERT_TRUE(solver::ShmQueryCache::segmentExists(shmName));

  const fs::path dir2 = freshDir("crash_warm_2");
  FleetConfig second = first;
  second.checkpointDir = dir2.string();
  const FleetResult warm = trace::runCollectFleet(config, second, /*vars=*/3);
  EXPECT_EQ(warm.result.outcome, RunOutcome::kCompleted);
  EXPECT_FALSE(warm.shmDegraded);
  EXPECT_EQ(warm.result.fingerprintDigest(), cold.result.fingerprintDigest());
  // The second fleet started warm: it found entries it never inserted.
  EXPECT_GT(warm.shmHits, 0u);

  solver::ShmQueryCache::unlinkSegment(shmName);
  fs::remove_all(dir1);
  fs::remove_all(dir2);
}

}  // namespace
}  // namespace sde
