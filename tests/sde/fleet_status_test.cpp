// fleetStatusJson validity battery — including the ISSUE 8 regression:
// a run directory with ZERO completed jobs must still emit parseable
// JSON (optional fields omitted, never half-emitted). The checker is a
// complete little recursive-descent JSON parser, so structural damage
// (trailing commas, bare values, unterminated strings) fails loudly.
#include "sde/fleet_status.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "snapshot/manifest.hpp"

namespace sde {
namespace {

namespace fs = std::filesystem;

// --- a strict, minimal JSON parser (objects/arrays/strings/numbers) ---
struct JsonParser {
  std::string_view text;
  std::size_t pos = 0;

  void ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos])) != 0)
      ++pos;
  }
  bool eat(char c) {
    ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool string() {
    ws();
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\') {
        ++pos;
        if (pos >= text.size()) return false;
      }
      ++pos;
    }
    if (pos >= text.size()) return false;
    ++pos;  // closing quote
    return true;
  }
  bool number() {
    ws();
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-'))
      ++pos;
    return pos > start;
  }
  bool value() {
    ws();
    if (pos >= text.size()) return false;
    const char c = text[pos];
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    return number();
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool parseDocument() {
    if (!value()) return false;
    ws();
    return pos == text.size();
  }
};

bool validJson(const std::string& text) {
  JsonParser parser{text};
  return parser.parseDocument();
}

snapshot::RunManifest makeManifest(std::size_t jobs) {
  snapshot::RunManifest manifest;
  manifest.scenarioSpec = "collect v1 w=4 h=4 t=1000";
  manifest.horizon = 1000;
  manifest.plan.variables = {"f0", "f1"};
  for (std::size_t i = 0; i < jobs; ++i) {
    PartitionJob job;
    job.id = static_cast<std::uint32_t>(i);
    job.seed = 7 * i;
    job.forced = {{"f0", (i & 1) != 0}, {"f1", (i & 2) != 0}};
    manifest.plan.jobs.push_back(job);
  }
  return manifest;
}

class FleetStatusJson : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("sde_fleet_status_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

// The regression itself: every job pending (zero completed), JSON must
// parse and per-job rows must not carry meaningless fields.
TEST_F(FleetStatusJson, ZeroCompletedJobsEmitValidJson) {
  snapshot::writeManifest(dir_, makeManifest(4));
  const FleetRunStatus status = inspectFleetRun(dir_);
  EXPECT_EQ(status.done, 0u);
  EXPECT_EQ(status.pending, 4u);

  const std::string json = fleetStatusJson(status);
  EXPECT_TRUE(validJson(json)) << json;
  EXPECT_NE(json.find("\"jobsTotal\":4"), std::string::npos);
  EXPECT_NE(json.find("{\"id\":0,\"state\":\"pending\"}"), std::string::npos);
  // Omit-empty: pending rows carry no states/virtualNow, and no metrics
  // object exists without a sidecar.
  EXPECT_EQ(json.find("virtualNow"), std::string::npos);
  EXPECT_EQ(json.find("\"states\""), std::string::npos);
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
}

TEST_F(FleetStatusJson, EmptyScenarioSpecIsOmittedNotEmitted) {
  snapshot::RunManifest manifest = makeManifest(1);
  manifest.scenarioSpec.clear();
  snapshot::writeManifest(dir_, manifest);
  const std::string json = fleetStatusJson(inspectFleetRun(dir_));
  EXPECT_TRUE(validJson(json)) << json;
  EXPECT_EQ(json.find("\"scenario\""), std::string::npos);
}

TEST_F(FleetStatusJson, DoneJobsCarryStatesAndMetricsObjectRides) {
  snapshot::writeManifest(dir_, makeManifest(2));
  JobResult result;
  result.jobId = 1;
  result.outcome = RunOutcome::kCompleted;
  result.states = 37;
  snapshot::writeJobResultFile(snapshot::jobDonePath(dir_, 1), result);

  obs::MetricsRegistry reg;
  reg.add(reg.counter("engine.forks_total"), 12);
  reg.observe(reg.histogram("solver.layer.cache.latency_ns"), 256);
  {
    std::ofstream os(snapshot::metricsSnapshotPath(dir_), std::ios::binary);
    os << obs::encodeMetricsSnapshot(reg.snapshot());
  }

  const FleetRunStatus status = inspectFleetRun(dir_);
  EXPECT_EQ(status.done, 1u);
  EXPECT_EQ(status.pending, 1u);
  ASSERT_TRUE(status.hasMetrics);

  const std::string json = fleetStatusJson(status);
  EXPECT_TRUE(validJson(json)) << json;
  EXPECT_NE(json.find("{\"id\":1,\"state\":\"done\",\"states\":37}"),
            std::string::npos);
  EXPECT_NE(json.find("\"engine.forks_total\":12"), std::string::npos);
  // Histograms render as an object with count/sum/quantiles.
  EXPECT_NE(json.find("\"solver.layer.cache.latency_ns\":{\"count\":1"),
            std::string::npos);
}

TEST_F(FleetStatusJson, EscapesHostileStringsIntoValidJson) {
  snapshot::RunManifest manifest = makeManifest(1);
  manifest.scenarioSpec = "spec with \"quotes\"\nnewline\tand \\backslash";
  snapshot::writeManifest(dir_, manifest);
  const std::string json = fleetStatusJson(inspectFleetRun(dir_));
  EXPECT_TRUE(validJson(json)) << json;
}

}  // namespace
}  // namespace sde
