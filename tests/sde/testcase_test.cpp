// Test-case generation: concrete inputs that replay explored paths,
// including failure decisions (§II-A, §IV-C).
#include <gtest/gtest.h>

#include "sde/explode.hpp"
#include "sde/testcase.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

class TestCaseTest : public ::testing::Test {
 protected:
  TestCaseTest() {
    trace::CollectScenarioConfig config;
    config.gridWidth = 2;
    config.gridHeight = 2;
    config.simulationTime = 3000;
    config.mapper = MapperKind::kSds;
    scenario = std::make_unique<trace::CollectScenario>(config);
    scenario->run();
  }

  std::unique_ptr<trace::CollectScenario> scenario;
};

TEST_F(TestCaseTest, EveryStateYieldsATestCase) {
  auto& engine = scenario->engine();
  for (const auto& state : engine.states()) {
    const auto testCase = generateTestCase(engine.solver(), *state);
    ASSERT_TRUE(testCase.has_value()) << "state " << state->id();
    EXPECT_EQ(testCase->node, state->node());
    EXPECT_EQ(testCase->inputs.size(), state->symbolics.size());
  }
}

TEST_F(TestCaseTest, TestCaseValuesSatisfyTheConstraints) {
  auto& engine = scenario->engine();
  for (const auto& state : engine.states()) {
    const auto testCase = generateTestCase(engine.solver(), *state);
    ASSERT_TRUE(testCase.has_value());
    expr::Assignment assignment;
    for (std::size_t i = 0; i < testCase->inputs.size(); ++i)
      assignment.set(state->symbolics[i], testCase->inputs[i].value);
    for (expr::Ref c : state->constraints.items())
      EXPECT_EQ(expr::evaluate(c, assignment), 1u)
          << "state " << state->id();
  }
}

TEST_F(TestCaseTest, DropDecisionsAppearAsInputs) {
  auto& engine = scenario->engine();
  bool sawDropInput = false;
  for (const auto& state : engine.states()) {
    const auto testCase = generateTestCase(engine.solver(), *state);
    ASSERT_TRUE(testCase.has_value());
    for (const auto& input : testCase->inputs)
      if (input.name.find("netdrop") != std::string::npos)
        sawDropInput = true;
  }
  EXPECT_TRUE(sawDropInput);
}

TEST_F(TestCaseTest, ScenarioTestCasesAreJointlyConsistent) {
  auto& engine = scenario->engine();
  const auto dscenarios = explodeScenarios(engine.mapper());
  ASSERT_FALSE(dscenarios.empty());
  for (const auto& dscenario : dscenarios) {
    const auto cases = generateScenarioTestCases(engine.solver(), dscenario);
    ASSERT_TRUE(cases.has_value());
    ASSERT_EQ(cases->size(), dscenario.size());
    // The same variable must get the same value in every member's view.
    std::map<std::string, std::uint64_t> global;
    for (const auto& testCase : *cases) {
      for (const auto& input : testCase.inputs) {
        const auto [it, inserted] = global.emplace(input.name, input.value);
        EXPECT_EQ(it->second, input.value) << input.name;
      }
    }
  }
}

TEST_F(TestCaseTest, FormatIsStableAndReadable) {
  TestCase testCase;
  testCase.state = 7;
  testCase.node = 3;
  testCase.inputs = {{"n3.netdrop.0", 1, 1}, {"n3.x.0", 8, 42}};
  testCase.failureMessage = "boom";
  const std::string text = formatTestCase(testCase);
  EXPECT_EQ(text,
            "test case [node 3, state 7] FAILURE: boom\n"
            "  n3.netdrop.0 (w1) = 1\n"
            "  n3.x.0 (w8) = 42\n");
}

TEST_F(TestCaseTest, UnsatisfiableStateYieldsNoTestCase) {
  auto& engine = scenario->engine();
  // Forge an impossible state: contradictory constraints.
  auto state = engine.states().front()->fork(99999);
  expr::Ref v = engine.context().variable("impossible", 1);
  state->constraints.add(v);
  state->constraints.add(engine.context().logicalNot(v));
  EXPECT_EQ(generateTestCase(engine.solver(), *state), std::nullopt);
}

}  // namespace
}  // namespace sde
