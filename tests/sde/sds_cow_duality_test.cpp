// The SDS ≡ COW-on-virtual-states duality (§III-C: "Conceptually, the
// SDS algorithm is equivalent to COW executed on a set of virtual
// states"). If the implementations are faithful, a full engine run must
// exhibit, for identical scenarios:
//
//   * #virtual states (SDS)  ==  #execution states (COW),
//   * #dstates (SDS)         ==  #dstates (COW),
//   * identical exploded dscenario fingerprint sets,
//
// because every COW state corresponds to exactly one SDS virtual state.
#include <gtest/gtest.h>

#include "sde/explode.hpp"
#include "sde/sds.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

struct DualityCase {
  std::uint32_t width;
  std::uint32_t height;
  std::uint64_t simulationTime;
};

class SdsCowDualityTest : public ::testing::TestWithParam<DualityCase> {};

TEST_P(SdsCowDualityTest, VirtualStatesMirrorCowStates) {
  const DualityCase& c = GetParam();

  const auto makeScenario = [&](MapperKind kind) {
    trace::CollectScenarioConfig config;
    config.gridWidth = c.width;
    config.gridHeight = c.height;
    config.simulationTime = c.simulationTime;
    config.mapper = kind;
    return trace::CollectScenario(config);
  };

  auto cow = makeScenario(MapperKind::kCow);
  auto sds = makeScenario(MapperKind::kSds);
  const auto cowResult = cow.run();
  const auto sdsResult = sds.run();

  const auto& sdsMapper =
      static_cast<const SdsMapper&>(sds.engine().mapper());
  EXPECT_EQ(sdsMapper.numVirtualStates(), cowResult.states)
      << "every COW state must correspond to one SDS virtual state";
  EXPECT_EQ(sdsResult.groups, cowResult.groups);
  EXPECT_EQ(scenarioFingerprints(sds.engine().mapper()),
            scenarioFingerprints(cow.engine().mapper()));
  // And the whole point of the construction: far fewer actual states.
  EXPECT_LE(sdsResult.states, cowResult.states);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, SdsCowDualityTest,
    ::testing::Values(DualityCase{2, 2, 4000}, DualityCase{3, 2, 4000},
                      DualityCase{3, 3, 4000}, DualityCase{4, 3, 3000}),
    [](const ::testing::TestParamInfo<DualityCase>& info) {
      return std::to_string(info.param.width) + "x" +
             std::to_string(info.param.height) + "_t" +
             std::to_string(info.param.simulationTime);
    });

}  // namespace
}  // namespace sde
