// Solver-stats smoke check, invoked by scripts/verify.sh: on the
// example collect scenario every pipeline layer must report nonzero
// traffic through the stats registry — a layer with zero queries means
// the pipeline wiring silently dropped it.
#include <gtest/gtest.h>

#include "sde/explode.hpp"
#include "sde/testcase.hpp"
#include "solver/shared_cache.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

TEST(SolverSmokeTest, EveryPipelineLayerSeesTrafficOnTheExampleScenario) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 3;
  config.gridHeight = 3;
  config.simulationTime = 3000;
  trace::CollectScenario scenario(config);

  solver::SharedQueryCache shared;
  scenario.engine().solver().setSharedCache(&shared);
  ASSERT_EQ(scenario.run().outcome, RunOutcome::kCompleted);

  // Exploration branches in the failure models; the solver-heavy phase
  // is test-case generation over the explored dscenarios.
  ExplosionIterator it(scenario.engine().mapper());
  std::size_t solved = 0;
  while (solved < 50) {
    const auto dscenario = it.next();
    if (!dscenario) break;
    ++solved;
    ASSERT_TRUE(
        generateScenarioTestCases(scenario.engine().solver(), *dscenario)
            .has_value());
  }
  ASSERT_GT(solved, 0u);

  const auto& stats = scenario.engine().solver().stats();
  EXPECT_GT(stats.get("solver.queries"), 0u);
  for (const auto& layer : scenario.engine().solver().pipeline().layers()) {
    const std::string prefix = "solver.layer." + std::string(layer->name());
    EXPECT_GT(stats.get(prefix + ".queries"), 0u)
        << "pipeline layer " << layer->name()
        << " saw no traffic on the example scenario";
  }
  // The workload is real: some queries were answered from the caches
  // and at least one reached enumeration.
  EXPECT_GT(stats.get("solver.layer.exact_cache.hits"), 0u);
  EXPECT_GT(stats.get("solver.layer.enumerate.hits"), 0u);
}

}  // namespace
}  // namespace sde
