// Parallelisation partitioning (§VI future work): independently
// executable state sets.
#include <gtest/gtest.h>

#include <numeric>

#include "sde/partition.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

trace::CollectScenario runScenario(MapperKind kind, std::uint32_t side = 3,
                                   std::uint64_t simTime = 4000) {
  trace::CollectScenarioConfig config;
  config.gridWidth = side;
  config.gridHeight = side;
  config.simulationTime = simTime;
  config.mapper = kind;
  trace::CollectScenario scenario(config);
  scenario.run();
  return scenario;
}

TEST(PartitionTest, SizesAccountForEveryMappedState) {
  auto scenario = runScenario(MapperKind::kSds);
  const PartitionReport report =
      partitionStates(scenario.engine().mapper());
  EXPECT_EQ(std::accumulate(report.sizes.begin(), report.sizes.end(),
                            std::size_t{0}),
            report.states);
  EXPECT_EQ(report.sizes.size(), report.components);
  // Sizes are sorted descending and the largest is first.
  EXPECT_TRUE(std::is_sorted(report.sizes.rbegin(), report.sizes.rend()));
  EXPECT_EQ(report.largestComponent, report.sizes.front());
}

TEST(PartitionTest, CobComponentsAreItsDscenarios) {
  // COB states belong to exactly one dscenario each: the partition is
  // precisely the dscenario list.
  auto scenario = runScenario(MapperKind::kCob, 2, 3000);
  const auto& mapper = scenario.engine().mapper();
  const PartitionReport report = partitionStates(mapper);
  EXPECT_EQ(report.components, mapper.numGroups());
  for (const std::size_t size : report.sizes) EXPECT_EQ(size, 4u);  // k
}

TEST(PartitionTest, CowComponentsAreItsDstates) {
  auto scenario = runScenario(MapperKind::kCow, 2, 3000);
  const auto& mapper = scenario.engine().mapper();
  const PartitionReport report = partitionStates(mapper);
  EXPECT_EQ(report.components, mapper.numGroups());
}

TEST(PartitionTest, SdsComponentsNeverExceedDstates) {
  // SDS states span several dstates (super-dstates), so components can
  // only be coarser than the dstate partition.
  auto scenario = runScenario(MapperKind::kSds);
  const auto& mapper = scenario.engine().mapper();
  const PartitionReport report = partitionStates(mapper);
  EXPECT_LE(report.components, mapper.numGroups());
  EXPECT_GE(report.components, 1u);
}

TEST(PartitionTest, IndependentBranchingMaximisesParallelism) {
  // Drop-forked states that never communicate afterwards end up in
  // separate components: COB's partition on the small grid shows
  // speedup = #dscenarios (each is an independent simulation).
  auto scenario = runScenario(MapperKind::kCob, 2, 3000);
  const PartitionReport report =
      partitionStates(scenario.engine().mapper());
  EXPECT_GT(report.maxSpeedup(), 1.0);
  EXPECT_DOUBLE_EQ(report.maxSpeedup(),
                   static_cast<double>(report.components));
}

TEST(PartitionTest, EmptyMapperYieldsEmptyReport) {
  // A mapper with no registered states (never booted).
  const auto mapper = makeMapper(MapperKind::kSds, 3);
  const PartitionReport report = partitionStates(*mapper);
  EXPECT_EQ(report.states, 0u);
  EXPECT_EQ(report.components, 0u);
  EXPECT_DOUBLE_EQ(report.maxSpeedup(), 1.0);
}

}  // namespace
}  // namespace sde
