// Differential testing of the parallel execution mode (paper §VI).
//
// Two oracle families:
//  - Workers-invariance: the same partition plan must produce a
//    byte-identical ParallelResult (checked via fingerprintDigest) for
//    any worker count — the thread schedule must be unobservable.
//  - Partitioned-vs-legacy: against a single monolithic engine run,
//    the partition jobs together must own exactly the legacy dscenario
//    universe — equal dscenario-fingerprint sets, equal distinct
//    state-configuration sets, equal canonical test-case sets, and
//    sum(owned) == countScenarios — even though raw per-job state
//    counts legitimately differ (shared prefixes are re-executed, rival
//    branches are pruned).
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "sde/explode.hpp"
#include "sde/parallel.hpp"
#include "random_program.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

trace::CollectScenarioConfig smallGrid(MapperKind mapper,
                                       std::uint64_t simulationTime) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = simulationTime;
  config.mapper = mapper;
  return config;
}

// Legacy observables the partitioned run must reproduce.
struct LegacyReference {
  std::uint64_t scenarios = 0;
  std::set<std::uint64_t> scenarioPrints;
  std::set<std::uint64_t> statePrints;
  std::set<std::string> testcases;
};

LegacyReference legacyRun(const trace::CollectScenarioConfig& config,
                          bool collectTestcases) {
  trace::CollectScenario scenario(config);
  const trace::ScenarioResult result = scenario.run();
  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  Engine& engine = scenario.engine();

  LegacyReference ref;
  ref.scenarios = countScenarios(engine.mapper());
  const auto prints = scenarioFingerprints(engine.mapper());
  ref.scenarioPrints.insert(prints.begin(), prints.end());
  for (const auto& state : engine.states())
    ref.statePrints.insert(state->configHash());
  if (collectTestcases) {
    ExplosionIterator it(engine.mapper());
    while (auto dscenario = it.next())
      ref.testcases.insert(
          canonicalScenarioTestcase(engine.solver(), *dscenario));
  }
  return ref;
}

template <typename T>
std::set<T> asSet(const std::vector<T>& values) {
  return std::set<T>(values.begin(), values.end());
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<MapperKind> {};

TEST_P(ParallelEquivalenceTest, WorkerCountIsUnobservable) {
  const auto config = smallGrid(GetParam(), 4000);
  ParallelConfig parallel;

  std::optional<std::uint64_t> digest;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    parallel.workers = workers;
    const trace::PartitionedCollectResult run =
        trace::runCollectPartitioned(config, parallel, /*vars=*/2);
    ASSERT_EQ(run.result.jobs.size(), 4u);
    EXPECT_EQ(run.result.outcome, RunOutcome::kCompleted);
    if (!digest) {
      digest = run.result.fingerprintDigest();
    } else {
      EXPECT_EQ(*digest, run.result.fingerprintDigest())
          << "workers = " << workers;
    }
    // The stitched metric timeline is keyed by virtual time, so its
    // shape is schedule-independent too.
    EXPECT_FALSE(run.samples.empty());
    for (std::size_t i = 1; i < run.samples.size(); ++i)
      EXPECT_LE(run.samples[i - 1].virtualTime, run.samples[i].virtualTime);
  }
}

TEST_P(ParallelEquivalenceTest, PartitionedMatchesLegacyExploration) {
  const auto config = smallGrid(GetParam(), 4000);
  const LegacyReference legacy = legacyRun(config, /*collectTestcases=*/false);

  ParallelConfig parallel;
  parallel.workers = 4;
  const trace::PartitionedCollectResult run =
      trace::runCollectPartitioned(config, parallel, /*vars=*/2);
  const ParallelResult& result = run.result;

  EXPECT_EQ(result.outcome, RunOutcome::kCompleted);
  // Every legacy dscenario is owned by exactly one job.
  EXPECT_EQ(result.totalScenariosOwned, legacy.scenarios);
  std::uint64_t ownedSum = 0;
  for (const JobResult& job : result.jobs) ownedSum += job.scenariosOwned;
  EXPECT_EQ(ownedSum, legacy.scenarios);
  EXPECT_EQ(asSet(result.scenarioFingerprints), legacy.scenarioPrints);
  EXPECT_EQ(asSet(result.stateFingerprints), legacy.statePrints);

  // The partition genuinely splits the work: no single job re-explored
  // the whole universe.
  for (const JobResult& job : result.jobs) {
    EXPECT_LT(job.scenariosOwned, legacy.scenarios) << "job " << job.jobId;
    EXPECT_GT(job.scenariosRepresented, 0u) << "job " << job.jobId;
  }
}

TEST_P(ParallelEquivalenceTest, TestcasesMatchLegacy) {
  // Shorter horizon: test-case generation solves one joint model per
  // dscenario, so keep the universe small.
  const auto config = smallGrid(GetParam(), 2500);
  const LegacyReference legacy = legacyRun(config, /*collectTestcases=*/true);

  ParallelConfig parallel;
  parallel.workers = 4;
  parallel.collectTestcases = true;
  const trace::PartitionedCollectResult run =
      trace::runCollectPartitioned(config, parallel, /*vars=*/2);

  EXPECT_EQ(run.result.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(asSet(run.result.testcases), legacy.testcases);
  EXPECT_FALSE(run.result.testcases.empty());
}

INSTANTIATE_TEST_SUITE_P(Mappers, ParallelEquivalenceTest,
                         ::testing::Values(MapperKind::kSds, MapperKind::kCow),
                         [](const auto& info) {
                           return std::string(mapperKindName(info.param));
                         });

// The solver refactor's determinism contract, enforced end-to-end: the
// layered pipeline vs the monolithic path, the live shared query cache
// on vs off, and every worker count must all produce the byte-identical
// exploration digest and canonical test-case set. Any layer whose
// answer depends on timing, worker interleaving, or cache history would
// show up here as a digest mismatch.
TEST(SolverPipelineDifferentialTest,
     DigestInvariantAcrossPipelineSharedCacheAndWorkers) {
  auto config = smallGrid(MapperKind::kSds, 2500);

  std::optional<std::uint64_t> digest;
  std::optional<std::set<std::string>> testcases;
  for (const bool pipeline : {true, false}) {
    for (const bool shared : {true, false}) {
      for (const unsigned workers : {1u, 2u, 4u, 8u}) {
        config.engine.solver.usePipeline = pipeline;
        ParallelConfig parallel;
        parallel.workers = workers;
        parallel.collectTestcases = true;
        parallel.sharedQueryCache = shared;
        const trace::PartitionedCollectResult run =
            trace::runCollectPartitioned(config, parallel, /*vars=*/2);
        ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);
        const std::string combo = std::string("pipeline=") +
                                  (pipeline ? "on" : "off") + " shared=" +
                                  (shared ? "on" : "off") + " workers=" +
                                  std::to_string(workers);
        if (!digest) {
          digest = run.result.fingerprintDigest();
          testcases = asSet(run.result.testcases);
          EXPECT_FALSE(testcases->empty());
        } else {
          EXPECT_EQ(*digest, run.result.fingerprintDigest()) << combo;
          EXPECT_EQ(*testcases, asSet(run.result.testcases)) << combo;
        }
      }
    }
  }
}

TEST(ParallelCapsTest, SharedStateCapAbortsTheWholeFleet) {
  const auto config = smallGrid(MapperKind::kSds, 6000);
  ParallelConfig parallel;
  parallel.workers = 4;
  parallel.maxTotalStates = 120;  // well below the uncapped total
  parallel.collectScenarioFingerprints = false;
  parallel.collectStateFingerprints = false;
  const trace::PartitionedCollectResult run =
      trace::runCollectPartitioned(config, parallel, /*vars=*/2);

  EXPECT_EQ(run.result.outcome, RunOutcome::kAbortedStates);
  // The latch is cooperative: every job stopped early with the same
  // outcome (none ran to completion past the fleet cap).
  for (const JobResult& job : run.result.jobs)
    EXPECT_EQ(job.outcome, RunOutcome::kAbortedStates)
        << "job " << job.jobId;
}

TEST(ParallelReplayTest, DecisionLogReplaysOneScenario) {
  // Deterministic replay: forcing a state's full decision log re-runs
  // exactly its slice of the tree — the replay contains a state with
  // the same configuration while exploring far fewer states.
  const auto config = smallGrid(MapperKind::kSds, 4000);
  trace::CollectScenario scenario(config);
  ASSERT_EQ(scenario.run().outcome, RunOutcome::kCompleted);
  Engine& legacy = scenario.engine();

  // Pick the state with the longest decision log (the deepest slice).
  const ExecutionState* deepest = nullptr;
  for (const auto& state : legacy.states())
    if (deepest == nullptr || state->decisions.size() > deepest->decisions.size())
      deepest = state.get();
  ASSERT_NE(deepest, nullptr);
  ASSERT_FALSE(deepest->decisions.empty());

  std::unordered_map<std::string, bool> filter;
  for (const auto& decision : deepest->decisions)
    filter[std::string(decision.var->name())] = decision.failed;
  const std::uint64_t wanted = deepest->configHash();

  trace::CollectScenario replayScenario(config);
  Engine& replay = replayScenario.engine();
  replay.setDecisionFilter(filter);
  ASSERT_EQ(replay.run(config.simulationTime), RunOutcome::kCompleted);

  bool found = false;
  for (const auto& state : replay.states())
    if (state->configHash() == wanted) found = true;
  EXPECT_TRUE(found);
  EXPECT_LT(replay.numStates(), legacy.numStates());
  EXPECT_GT(replay.stats().get("engine.forced_decisions"), 0u);
}

// Randomised variant: arbitrary generated node programs, partitioned on
// the first drop decisions of two nodes — the partitioned fleet must
// still reproduce the legacy exploration exactly.
class ParallelFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelFuzzTest, PartitionedMatchesLegacyOnRandomPrograms) {
  RandomProgramGen gen(GetParam());
  const vm::Program program = gen.generate();

  os::NetworkPlan plan(net::Topology::line(3));
  plan.runEverywhere(program);
  std::vector<net::NodeId> everyone{0, 1, 2};

  EngineConfig engineConfig;
  engineConfig.maxStates = 3'000;
  engineConfig.maxEvents = 10'000;
  engineConfig.solver.enumeration.maxCandidates = 1u << 12;

  const auto makeEngine = [&]() {
    auto engine = std::make_unique<Engine>(plan, MapperKind::kSds,
                                           engineConfig);
    engine->setFailureModel(
        std::make_unique<net::SymbolicDropModel>(everyone, 1));
    return engine;
  };

  // Legacy reference.
  auto legacy = makeEngine();
  const RunOutcome outcome = legacy->run(2000);
  if (outcome != RunOutcome::kCompleted ||
      countScenarios(legacy->mapper()) > 100'000) {
    GTEST_SKIP() << "seed " << GetParam()
                 << " exceeds the exploration budget";
  }
  const auto legacyPrints = scenarioFingerprints(legacy->mapper());
  std::set<std::uint64_t> legacyStates;
  for (const auto& state : legacy->states())
    legacyStates.insert(state->configHash());

  const std::vector<std::string> variables{"n1.netdrop.0", "n0.netdrop.0"};
  const PartitionPlan partitionPlan = planPartitions(variables, GetParam());
  ParallelConfig parallel;
  parallel.horizon = 2000;

  std::optional<std::uint64_t> digest;
  for (const unsigned workers : {1u, 4u}) {
    parallel.workers = workers;
    const ParallelResult result = runPartitioned(
        [&](const PartitionJob&) { return makeEngine(); }, partitionPlan,
        parallel);
    ASSERT_EQ(result.outcome, RunOutcome::kCompleted) << "seed " << GetParam();
    EXPECT_EQ(result.totalScenariosOwned, countScenarios(legacy->mapper()))
        << "seed " << GetParam();
    EXPECT_EQ(asSet(result.scenarioFingerprints),
              std::set<std::uint64_t>(legacyPrints.begin(), legacyPrints.end()))
        << "seed " << GetParam();
    EXPECT_EQ(asSet(result.stateFingerprints), legacyStates)
        << "seed " << GetParam();
    if (!digest) {
      digest = result.fingerprintDigest();
    } else {
      EXPECT_EQ(*digest, result.fingerprintDigest()) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace sde
