#include <gtest/gtest.h>

#include <map>

#include "sde/dstate.hpp"
#include "sde/scheduler.hpp"
#include "vm/builder.hpp"

namespace sde {
namespace {

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() {
    vm::IRBuilder b("noop");
    b.setGlobals(1);
    b.beginEntry(vm::Entry::kInit);
    b.halt();
    program = b.finish();
  }

  vm::ExecutionState& makeState(NodeId node) {
    auto state = std::make_unique<vm::ExecutionState>(nextId++, node, program);
    auto* raw = state.get();
    byId[raw->id()] = raw;
    owned.push_back(std::move(state));
    return *raw;
  }

  void addEvent(vm::ExecutionState& state, std::uint64_t time,
                vm::EventKind kind = vm::EventKind::kTimer,
                std::uint64_t a = 0) {
    vm::PendingEvent event;
    event.time = time;
    event.kind = kind;
    event.a = a;
    event.seq = state.nextEventSeq++;
    state.pendingEvents.push_back(std::move(event));
  }

  auto resolver() {
    return [this](StateId id) -> vm::ExecutionState* {
      const auto it = byId.find(id);
      return it == byId.end() ? nullptr : it->second;
    };
  }

  vm::Program program;
  Scheduler scheduler;
  std::vector<std::unique_ptr<vm::ExecutionState>> owned;
  std::map<StateId, vm::ExecutionState*> byId;
  StateId nextId = 0;
};

TEST_F(SchedulerTest, PopsInTimeOrder) {
  auto& a = makeState(0);
  auto& b = makeState(1);
  addEvent(a, 30);
  addEvent(b, 10);
  addEvent(a, 20);
  scheduler.registerState(a);
  scheduler.registerState(b);

  auto first = scheduler.pop(1000, resolver());
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->event.time, 10u);
  auto second = scheduler.pop(1000, resolver());
  EXPECT_EQ(second->event.time, 20u);
  auto third = scheduler.pop(1000, resolver());
  EXPECT_EQ(third->event.time, 30u);
  EXPECT_FALSE(scheduler.pop(1000, resolver()).has_value());
}

TEST_F(SchedulerTest, TiesBreakByNodeThenSeq) {
  auto& n2 = makeState(2);
  auto& n1 = makeState(1);
  addEvent(n2, 10);
  addEvent(n1, 10);
  addEvent(n1, 10);
  scheduler.registerState(n1);
  scheduler.registerState(n2);

  auto first = scheduler.pop(1000, resolver());
  EXPECT_EQ(first->state->node(), 1u);
  EXPECT_EQ(first->event.seq, 0u);
  auto second = scheduler.pop(1000, resolver());
  EXPECT_EQ(second->state->node(), 1u);
  EXPECT_EQ(second->event.seq, 1u);
  auto third = scheduler.pop(1000, resolver());
  EXPECT_EQ(third->state->node(), 2u);
}

TEST_F(SchedulerTest, HorizonLeavesLaterEventsPending) {
  auto& a = makeState(0);
  addEvent(a, 10);
  addEvent(a, 200);
  scheduler.registerState(a);

  EXPECT_TRUE(scheduler.pop(100, resolver()).has_value());
  EXPECT_FALSE(scheduler.pop(100, resolver()).has_value());
  // The 200-tick event is still in the heap and in the state.
  EXPECT_EQ(a.pendingEvents.size(), 1u);
  EXPECT_TRUE(scheduler.pop(300, resolver()).has_value());
}

TEST_F(SchedulerTest, PopRemovesEventFromState) {
  auto& a = makeState(0);
  addEvent(a, 10);
  scheduler.registerState(a);
  auto popped = scheduler.pop(100, resolver());
  ASSERT_TRUE(popped.has_value());
  EXPECT_TRUE(a.pendingEvents.empty());
}

TEST_F(SchedulerTest, DuplicateRegistrationIsHarmless) {
  auto& a = makeState(0);
  addEvent(a, 10);
  scheduler.registerState(a);
  scheduler.registerState(a);
  scheduler.registerState(a);
  EXPECT_TRUE(scheduler.pop(100, resolver()).has_value());
  // The stale duplicates validate against the (now empty) state.
  EXPECT_FALSE(scheduler.pop(100, resolver()).has_value());
}

TEST_F(SchedulerTest, CancelledTimerEntriesAreSkipped) {
  auto& a = makeState(0);
  addEvent(a, 10, vm::EventKind::kTimer, /*timer id=*/1);
  scheduler.registerState(a);
  a.pendingEvents.clear();  // timer cancelled by the program
  EXPECT_FALSE(scheduler.pop(100, resolver()).has_value());
}

TEST_F(SchedulerTest, TerminalStatesAreNotScheduled) {
  auto& a = makeState(0);
  addEvent(a, 10);
  scheduler.registerState(a);
  a.status = vm::StateStatus::kFailed;
  EXPECT_FALSE(scheduler.pop(100, resolver()).has_value());
}

TEST_F(SchedulerTest, UnresolvableStatesAreSkipped) {
  auto& a = makeState(0);
  addEvent(a, 10);
  scheduler.registerState(a);
  byId.clear();  // state disappeared
  EXPECT_FALSE(scheduler.pop(100, resolver()).has_value());
}

TEST_F(SchedulerTest, ForkedStateEventsScheduleIndependently) {
  auto& a = makeState(0);
  addEvent(a, 10);
  scheduler.registerState(a);
  // Fork after registration: the clone carries the same pending event.
  auto clone = a.fork(nextId++);
  byId[clone->id()] = clone.get();
  scheduler.registerState(*clone);
  owned.push_back(std::move(clone));

  int popped = 0;
  while (scheduler.pop(100, resolver()).has_value()) ++popped;
  EXPECT_EQ(popped, 2);
}

}  // namespace
}  // namespace sde
