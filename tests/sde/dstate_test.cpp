#include <gtest/gtest.h>

#include "sde/dstate.hpp"
#include "vm/builder.hpp"

namespace sde {
namespace {

class DStateTest : public ::testing::Test {
 protected:
  DStateTest() {
    vm::IRBuilder b("noop");
    b.setGlobals(1);
    b.beginEntry(vm::Entry::kInit);
    b.halt();
    program = b.finish();
  }

  std::unique_ptr<ExecutionState> makeState(NodeId node) {
    return std::make_unique<ExecutionState>(nextId++, node, program);
  }

  static void recordSend(ExecutionState& s, NodeId peer, std::uint64_t time,
                         std::uint64_t packetId) {
    s.commLog.push_back({true, peer, time, 0x1234, packetId});
  }
  static void recordRecv(ExecutionState& s, NodeId peer, std::uint64_t time,
                         std::uint64_t packetId) {
    s.commLog.push_back({false, peer, time, 0x1234, packetId});
  }

  vm::Program program;
  StateId nextId = 0;
};

TEST_F(DStateTest, StateGroupMembership) {
  StateGroup group(3);
  auto a = makeState(0);
  auto b1 = makeState(1);
  auto b2 = makeState(1);
  group.add(a.get());
  group.add(b1.get());
  EXPECT_FALSE(group.coversAllNodes());
  group.add(b2.get());
  EXPECT_EQ(group.size(), 3u);
  EXPECT_EQ(group.statesOf(1).size(), 2u);
  EXPECT_TRUE(group.contains(b2.get()));
  EXPECT_TRUE(group.remove(b2.get()));
  EXPECT_FALSE(group.remove(b2.get()));
  EXPECT_FALSE(group.contains(b2.get()));
}

TEST_F(DStateTest, ScenarioFingerprintOrderIndependent) {
  auto a = makeState(0);
  auto b = makeState(1);
  std::vector<ExecutionState*> ab{a.get(), b.get()};
  std::vector<ExecutionState*> ba{b.get(), a.get()};
  EXPECT_EQ(scenarioFingerprint(ab), scenarioFingerprint(ba));
}

TEST_F(DStateTest, ScenarioFingerprintSensitiveToMemberConfig) {
  auto a = makeState(0);
  auto b = makeState(1);
  std::vector<ExecutionState*> scenario{a.get(), b.get()};
  const auto before = scenarioFingerprint(scenario);
  b->clock = 99;
  EXPECT_NE(before, scenarioFingerprint(scenario));
}

TEST_F(DStateTest, NoConflictWhenHistoriesMatch) {
  auto s = makeState(0);
  auto t = makeState(1);
  recordSend(*s, 1, 10, 100);
  recordRecv(*t, 0, 11, 100);
  EXPECT_FALSE(inDirectConflict(*s, *t));
  EXPECT_FALSE(inDirectConflict(*t, *s));
}

TEST_F(DStateTest, SentButNeverReceivedIsAConflict) {
  auto s = makeState(0);
  auto t = makeState(1);
  recordSend(*s, 1, 10, 100);
  EXPECT_TRUE(inDirectConflict(*s, *t));
}

TEST_F(DStateTest, InFlightPacketIsNotAConflict) {
  auto s = makeState(0);
  auto t = makeState(1);
  recordSend(*s, 1, 10, 100);
  vm::PendingEvent inflight;
  inflight.kind = vm::EventKind::kRecv;
  inflight.b = 100;
  inflight.time = 11;
  t->pendingEvents.push_back(std::move(inflight));
  EXPECT_FALSE(inDirectConflict(*s, *t));
  EXPECT_TRUE(hasOrWillReceive(*t, 100));
  EXPECT_FALSE(hasOrWillReceive(*t, 101));
}

TEST_F(DStateTest, ReceivedButNeverSentIsAConflict) {
  auto s = makeState(0);
  auto t = makeState(1);
  recordRecv(*t, 0, 11, 100);  // t claims node 0 sent packet 100
  EXPECT_TRUE(inDirectConflict(*t, *s));
}

TEST_F(DStateTest, ThirdPartyTrafficIsIgnored) {
  auto s = makeState(0);
  auto t = makeState(1);
  recordSend(*s, 2, 10, 100);   // to node 2, not node(t)
  recordRecv(*t, 3, 11, 200);   // from node 3, not node(s)
  EXPECT_FALSE(inDirectConflict(*s, *t));
  EXPECT_FALSE(inDirectConflict(*t, *s));
}

TEST_F(DStateTest, CountConflictsOverGroup) {
  StateGroup group(2);
  auto s = makeState(0);
  auto t1 = makeState(1);
  auto t2 = makeState(1);
  recordSend(*s, 1, 10, 100);
  recordRecv(*t1, 0, 11, 100);
  group.add(s.get());
  group.add(t1.get());
  group.add(t2.get());  // t2 never received packet 100
  EXPECT_EQ(countConflicts(group), 1u);
}

TEST_F(DStateTest, TerminalStatesSkippedInConflictCount) {
  StateGroup group(2);
  auto s = makeState(0);
  auto t = makeState(1);
  recordSend(*s, 1, 10, 100);
  t->status = vm::StateStatus::kFailed;  // crashed node: history stops
  group.add(s.get());
  group.add(t.get());
  EXPECT_EQ(countConflicts(group), 0u);
}

}  // namespace
}  // namespace sde
