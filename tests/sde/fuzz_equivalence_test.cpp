// Randomised cross-algorithm equivalence: for arbitrary (generated) node
// programs — random ALU dataflow, symbolic inputs, data-dependent
// forward branches, broadcasts — COB, COW and SDS must still explore
// identical dscenario sets, SDS must stay duplicate-free, and every
// mapper's structural invariants must hold. This generalises the
// equivalence suite beyond the handcrafted protocols.
#include <gtest/gtest.h>

#include "sde/explode.hpp"
#include "sde/sds.hpp"
#include "random_program.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

class FuzzEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzEquivalenceTest, AllMappersAgreeOnRandomPrograms) {
  RandomProgramGen gen(GetParam());
  const vm::Program program = gen.generate();

  std::unordered_set<std::uint64_t> fingerprints[3];
  std::uint64_t states[3] = {0, 0, 0};
  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    os::NetworkPlan plan(net::Topology::line(3));
    plan.runEverywhere(program);
    EngineConfig config;
    // Generated programs can branch combinatorially; keep runs small
    // enough that the quadratic end-of-run invariant checks stay cheap.
    config.maxStates = 3'000;
    config.maxEvents = 10'000;  // residual storm guard
    config.solver.enumeration.maxCandidates = 1u << 12;
    Engine engine(plan, kind, config);
    const RunOutcome outcome = engine.run(2000);
    if (outcome != RunOutcome::kCompleted ||
        countScenarios(engine.mapper()) > 100'000) {
      GTEST_SKIP() << "seed " << GetParam()
                   << " exceeds the exploration budget";
    }
    engine.mapper().checkInvariants();
    fingerprints[static_cast<int>(kind)] =
        scenarioFingerprints(engine.mapper());
    states[static_cast<int>(kind)] = engine.numStates();

    if (kind == MapperKind::kSds) {
      EXPECT_EQ(findDuplicates(engine.states(), DuplicateMode::kStrict)
                    .duplicateStates,
                0u)
          << "seed " << GetParam();
    }
  }

  EXPECT_EQ(fingerprints[0], fingerprints[1]) << "seed " << GetParam();
  EXPECT_EQ(fingerprints[0], fingerprints[2]) << "seed " << GetParam();
  EXPECT_LE(states[2], states[1]) << "seed " << GetParam();
  EXPECT_LE(states[1], states[0]) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88, 99,
                                           111, 222, 333));

}  // namespace
}  // namespace sde
