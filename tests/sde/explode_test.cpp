// Deliberate state explosion and the incremental iterator (§IV-C).
#include <gtest/gtest.h>

#include "sde/explode.hpp"
#include "trace/scenario.hpp"

namespace sde {
namespace {

class ExplodeTest : public ::testing::Test {
 protected:
  static trace::CollectScenario runScenario(MapperKind kind) {
    trace::CollectScenarioConfig config;
    config.gridWidth = 2;
    config.gridHeight = 2;
    config.simulationTime = 3000;
    config.mapper = kind;
    trace::CollectScenario scenario(config);
    scenario.run();
    return scenario;
  }
};

TEST_F(ExplodeTest, EagerAndIncrementalAgree) {
  auto scenario = runScenario(MapperKind::kSds);
  const auto eager = explodeScenarios(scenario.engine().mapper());
  ExplosionIterator it(scenario.engine().mapper());
  std::size_t count = 0;
  while (auto next = it.next()) {
    ASSERT_LT(count, eager.size());
    EXPECT_EQ(*next, eager[count]);
    ++count;
  }
  EXPECT_EQ(count, eager.size());
  EXPECT_EQ(it.produced(), eager.size());
}

TEST_F(ExplodeTest, CountMatchesMaterialisation) {
  for (MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    auto scenario = runScenario(kind);
    EXPECT_EQ(countScenarios(scenario.engine().mapper()),
              explodeScenarios(scenario.engine().mapper()).size())
        << mapperKindName(kind);
  }
}

TEST_F(ExplodeTest, EveryScenarioSpansAllNodes) {
  auto scenario = runScenario(MapperKind::kSds);
  for (const auto& dscenario :
       explodeScenarios(scenario.engine().mapper())) {
    ASSERT_EQ(dscenario.size(), 4u);
    for (NodeId node = 0; node < 4; ++node)
      EXPECT_EQ(dscenario[node]->node(), node);
  }
}

TEST_F(ExplodeTest, ExplodedScenariosAreConflictFree) {
  auto scenario = runScenario(MapperKind::kSds);
  for (const auto& dscenario :
       explodeScenarios(scenario.engine().mapper())) {
    StateGroup group(4);
    for (ExecutionState* state : dscenario) group.add(state);
    EXPECT_EQ(countConflicts(group), 0u);
  }
}

TEST_F(ExplodeTest, FingerprintsDeduplicateCobScenarios) {
  // COB may hold several dscenarios with identical configurations; the
  // fingerprint set is the deduplicated view.
  auto cob = runScenario(MapperKind::kCob);
  const auto fingerprints = scenarioFingerprints(cob.engine().mapper());
  EXPECT_LE(fingerprints.size(),
            explodeScenarios(cob.engine().mapper()).size());
  EXPECT_FALSE(fingerprints.empty());
}

TEST_F(ExplodeTest, IncrementalIterationIsMemoryBounded) {
  // The iterator only holds its odometer, never the full product: after
  // producing half the scenarios, produced() reflects exactly that.
  auto scenario = runScenario(MapperKind::kSds);
  const auto total = countScenarios(scenario.engine().mapper());
  ExplosionIterator it(scenario.engine().mapper());
  for (std::uint64_t i = 0; i < total / 2; ++i)
    ASSERT_TRUE(it.next().has_value());
  EXPECT_EQ(it.produced(), total / 2);
}

}  // namespace
}  // namespace sde
