#include <gtest/gtest.h>

#include "net/topology.hpp"

namespace sde::net {
namespace {

TEST(Topology, LineShape) {
  const Topology t = Topology::line(4);
  EXPECT_EQ(t.numNodes(), 4u);
  EXPECT_TRUE(t.hasEdge(0, 1));
  EXPECT_TRUE(t.hasEdge(2, 3));
  EXPECT_FALSE(t.hasEdge(0, 2));
  EXPECT_EQ(t.neighbors(0).size(), 1u);
  EXPECT_EQ(t.neighbors(1).size(), 2u);
}

TEST(Topology, RingShape) {
  const Topology t = Topology::ring(5);
  for (NodeId n = 0; n < 5; ++n) EXPECT_EQ(t.neighbors(n).size(), 2u);
  EXPECT_TRUE(t.hasEdge(0, 4));
}

TEST(Topology, StarShape) {
  const Topology t = Topology::star(6);
  EXPECT_EQ(t.numNodes(), 7u);
  EXPECT_EQ(t.neighbors(0).size(), 6u);
  for (NodeId leaf = 1; leaf <= 6; ++leaf) {
    EXPECT_EQ(t.neighbors(leaf).size(), 1u);
    EXPECT_TRUE(t.hasEdge(0, leaf));
  }
  EXPECT_FALSE(t.hasEdge(1, 2));
}

TEST(Topology, FullMeshShape) {
  const Topology t = Topology::fullMesh(5);
  for (NodeId a = 0; a < 5; ++a) {
    EXPECT_EQ(t.neighbors(a).size(), 4u);
    for (NodeId b = 0; b < 5; ++b) {
      if (a != b) {
        EXPECT_TRUE(t.hasEdge(a, b));
      }
    }
  }
}

TEST(Topology, GridFourNeighbourhood) {
  // 3x3: corner 2 neighbours, edge 3, centre 4 (Figure 9's shape).
  const Topology t = Topology::grid(3, 3);
  EXPECT_EQ(t.numNodes(), 9u);
  EXPECT_EQ(t.neighbors(0).size(), 2u);  // corner
  EXPECT_EQ(t.neighbors(1).size(), 3u);  // edge
  EXPECT_EQ(t.neighbors(4).size(), 4u);  // centre
  EXPECT_TRUE(t.hasEdge(0, 1));
  EXPECT_TRUE(t.hasEdge(0, 3));
  EXPECT_FALSE(t.hasEdge(0, 4));  // no diagonals
  EXPECT_EQ(t.gridWidth(), 3u);
}

TEST(Topology, HopDistance) {
  const Topology g = Topology::grid(3, 3);
  EXPECT_EQ(g.hopDistance(0, 0), 0u);
  EXPECT_EQ(g.hopDistance(0, 8), 4u);  // manhattan across the grid
  EXPECT_EQ(g.hopDistance(8, 0), 4u);
  const Topology l = Topology::line(10);
  EXPECT_EQ(l.hopDistance(0, 9), 9u);
}

TEST(Topology, NeighborsSortedAscending) {
  const Topology t = Topology::grid(3, 3);
  for (NodeId n = 0; n < t.numNodes(); ++n) {
    const auto nb = t.neighbors(n);
    for (std::size_t i = 1; i < nb.size(); ++i) EXPECT_LT(nb[i - 1], nb[i]);
  }
}

TEST(TopologyDeathTest, InvalidQueriesAbort) {
  const Topology t = Topology::line(2);
  EXPECT_DEATH((void)t.neighbors(5), "out of range");
  EXPECT_DEATH((void)t.hasEdge(0, 9), "out of range");
}

}  // namespace
}  // namespace sde::net
