#include <gtest/gtest.h>

#include <algorithm>

#include "net/routing.hpp"

namespace sde::net {
namespace {

TEST(Routing, LineRoutesTowardSink) {
  const Topology t = Topology::line(5);
  const RoutingTable r = RoutingTable::towards(t, 0);
  EXPECT_EQ(r.sink(), 0u);
  EXPECT_EQ(r.nextHop(0), 0u);  // sink routes to itself
  EXPECT_EQ(r.nextHop(1), 0u);
  EXPECT_EQ(r.nextHop(4), 3u);
}

TEST(Routing, GridShortestPath) {
  // Figure 9: sink top-left (0), source bottom-right. Every hop must
  // reduce the BFS distance by one.
  const Topology t = Topology::grid(5, 5);
  const RoutingTable r = RoutingTable::towards(t, 0);
  for (NodeId n = 1; n < t.numNodes(); ++n) {
    const NodeId hop = r.nextHop(n);
    EXPECT_TRUE(t.hasEdge(n, hop));
    EXPECT_EQ(t.hopDistance(hop, 0), t.hopDistance(n, 0) - 1);
  }
}

TEST(Routing, PathEndsAtSink) {
  const Topology t = Topology::grid(3, 3);
  const RoutingTable r = RoutingTable::towards(t, 0);
  const auto path = r.path(8);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), 8u);
  EXPECT_EQ(path.back(), 0u);
  EXPECT_EQ(path.size(), t.hopDistance(8, 0) + 1);
}

TEST(Routing, DeterministicTieBreaking) {
  // From the far corner of a grid multiple shortest paths exist; the
  // table must pick the same one on every construction.
  const Topology t = Topology::grid(4, 4);
  const RoutingTable a = RoutingTable::towards(t, 0);
  const RoutingTable b = RoutingTable::towards(t, 0);
  for (NodeId n = 0; n < t.numNodes(); ++n)
    EXPECT_EQ(a.nextHop(n), b.nextHop(n));
}

TEST(Routing, PathAndNeighborsMatchesPaperDropSet) {
  // §IV-A: the symbolic-drop set is the data path plus the one-hop
  // neighbours of its nodes.
  const Topology t = Topology::grid(3, 3);
  const RoutingTable r = RoutingTable::towards(t, 0);
  const auto set = r.pathAndNeighbors(t, 8);
  // Every path node is present...
  for (NodeId n : r.path(8))
    EXPECT_NE(std::find(set.begin(), set.end(), n), set.end());
  // ...and every member is a path node or adjacent to one.
  const auto path = r.path(8);
  for (NodeId member : set) {
    const bool onPath =
        std::find(path.begin(), path.end(), member) != path.end();
    const bool adjacent =
        std::any_of(path.begin(), path.end(), [&](NodeId p) {
          return t.hasEdge(p, member);
        });
    EXPECT_TRUE(onPath || adjacent) << "node " << member;
  }
  // Sorted and unique.
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end());
}

TEST(Routing, FigureNineGridHasBystandersOutsideDropSet) {
  // In the paper's 5x5 grid (Figure 9) six nodes are shaded as pure
  // bystanders. With our deterministic staircase route the drop set
  // leaves a handful of nodes untouched — assert some exist.
  const Topology t = Topology::grid(5, 5);
  const RoutingTable r = RoutingTable::towards(t, 0);
  const auto set = r.pathAndNeighbors(t, 24);
  EXPECT_LT(set.size(), t.numNodes());
}

}  // namespace
}  // namespace sde::net
