#include <gtest/gtest.h>

#include "net/failure.hpp"
#include "vm/builder.hpp"

namespace sde::net {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() {
    vm::IRBuilder b("noop");
    b.setGlobals(1);
    b.beginEntry(vm::Entry::kInit);
    b.halt();
    program = b.finish();
  }

  vm::ExecutionState makeState(NodeId node) {
    return vm::ExecutionState(nextId++, node, program);
  }

  vm::Program program;
  vm::StateId nextId = 0;
  Packet packet;
};

TEST_F(FailureTest, NoFailuresNeverInjects) {
  NoFailures model;
  auto state = makeState(3);
  EXPECT_EQ(model.onDelivery(state, packet).kind, FailureKind::kNone);
}

TEST_F(FailureTest, DropModelTargetsConfiguredNodes) {
  SymbolicDropModel model({1, 2}, 1);
  auto inSet = makeState(1);
  auto outside = makeState(5);
  EXPECT_EQ(model.onDelivery(inSet, packet).kind, FailureKind::kDrop);
  EXPECT_EQ(model.onDelivery(inSet, packet).label,
            SymbolicDropModel::kLabel);
  EXPECT_EQ(model.onDelivery(outside, packet).kind, FailureKind::kNone);
}

TEST_F(FailureTest, DropBudgetIsPerNodeViaSymbolicCounters) {
  SymbolicDropModel model({1}, 2);
  auto state = makeState(1);
  EXPECT_EQ(model.onDelivery(state, packet).kind, FailureKind::kDrop);
  // The engine bumps the counter when it materialises the decision.
  state.symbolicCounters[SymbolicDropModel::kLabel] = 1;
  EXPECT_EQ(model.onDelivery(state, packet).kind, FailureKind::kDrop);
  state.symbolicCounters[SymbolicDropModel::kLabel] = 2;
  EXPECT_EQ(model.onDelivery(state, packet).kind, FailureKind::kNone);
}

TEST_F(FailureTest, DuplicateAndRebootModels) {
  SymbolicDuplicateModel dup({4});
  SymbolicRebootModel reboot({4});
  auto state = makeState(4);
  EXPECT_EQ(dup.onDelivery(state, packet).kind, FailureKind::kDuplicate);
  EXPECT_EQ(reboot.onDelivery(state, packet).kind, FailureKind::kReboot);
  // Independent budgets: labels differ.
  state.symbolicCounters[SymbolicDuplicateModel::kLabel] = 1;
  EXPECT_EQ(dup.onDelivery(state, packet).kind, FailureKind::kNone);
  EXPECT_EQ(reboot.onDelivery(state, packet).kind, FailureKind::kReboot);
}

TEST_F(FailureTest, CompositeAppliesFirstMatch) {
  CompositeFailureModel composite;
  composite.add(std::make_unique<SymbolicDropModel>(std::vector<NodeId>{1}));
  composite.add(
      std::make_unique<SymbolicDuplicateModel>(std::vector<NodeId>{1, 2}));
  auto both = makeState(1);
  auto dupOnly = makeState(2);
  auto neither = makeState(3);
  EXPECT_EQ(composite.onDelivery(both, packet).kind, FailureKind::kDrop);
  EXPECT_EQ(composite.onDelivery(dupOnly, packet).kind,
            FailureKind::kDuplicate);
  EXPECT_EQ(composite.onDelivery(neither, packet).kind, FailureKind::kNone);
}

TEST_F(FailureTest, PacketPayloadHashIsContentSensitive) {
  expr::Context ctx;
  Packet a;
  a.payload = {ctx.constant(1, 64), ctx.constant(2, 64)};
  Packet b;
  b.payload = {ctx.constant(1, 64), ctx.constant(3, 64)};
  Packet c;
  c.payload = {ctx.constant(1, 64), ctx.constant(2, 64)};
  EXPECT_NE(a.payloadHash(), b.payloadHash());
  EXPECT_EQ(a.payloadHash(), c.payloadHash());
}

}  // namespace
}  // namespace sde::net
