#include <gtest/gtest.h>

#include "solver/solver.hpp"
#include "os/events.hpp"
#include "os/node.hpp"
#include "os/runtime.hpp"
#include "vm/builder.hpp"

namespace sde::os {
namespace {

class NullSink final : public vm::EffectSink {
 public:
  vm::ExecutionState& forkState(vm::ExecutionState&) override {
    ADD_FAILURE() << "unexpected fork";
    std::abort();
  }
  void onSend(vm::ExecutionState&, vm::NodeId,
              std::vector<expr::Ref>) override {}
};

vm::Program makeRecorderProgram() {
  // Records event arguments into globals so tests can observe dispatch.
  vm::IRBuilder b("recorder");
  b.setGlobals(6);
  b.beginEntry(vm::Entry::kInit);
  b.constant(vm::Reg(3), 1);
  b.storeGlobal(vm::Reg(3), 0);  // booted = 1
  b.halt();
  b.beginEntry(vm::Entry::kTimer);
  b.storeGlobal(vm::Reg(0), 1);  // timer id
  b.halt();
  b.beginEntry(vm::Entry::kRecv);
  b.storeGlobal(vm::Reg(0), 2);  // payload object
  b.storeGlobal(vm::Reg(1), 3);  // source
  b.storeGlobal(vm::Reg(2), 4);  // length
  // Copy first payload cell into globals[5].
  b.constant(vm::Reg(4), 0);
  b.load(vm::Reg(5), vm::Reg(0), vm::Reg(4));
  b.storeGlobal(vm::Reg(5), 5);
  b.halt();
  return b.finish();
}

class OsTest : public ::testing::Test {
 protected:
  OsTest() : program(makeRecorderProgram()), solver(ctx), interp(ctx, solver) {}

  expr::Context ctx;
  vm::Program program;
  solver::Solver solver;
  vm::Interpreter interp;
  NullSink sink;
};

TEST_F(OsTest, EntryForMapsAllKinds) {
  EXPECT_EQ(entryFor(vm::EventKind::kBoot), vm::Entry::kInit);
  EXPECT_EQ(entryFor(vm::EventKind::kTimer), vm::Entry::kTimer);
  EXPECT_EQ(entryFor(vm::EventKind::kRecv), vm::Entry::kRecv);
}

TEST_F(OsTest, SetupBootSchedulesBootEvent) {
  vm::ExecutionState state(0, 1, program);
  setupBoot(ctx, state, 50);
  EXPECT_EQ(state.space.objectSize(vm::kGlobalsObject), 6u);
  ASSERT_EQ(state.pendingEvents.size(), 1u);
  EXPECT_EQ(state.pendingEvents[0].kind, vm::EventKind::kBoot);
  EXPECT_EQ(state.pendingEvents[0].time, 50u);
}

TEST_F(OsTest, DispatchBootRunsInitAndAdvancesClock) {
  vm::ExecutionState state(0, 1, program);
  setupBoot(ctx, state, 7);
  const vm::PendingEvent boot = state.pendingEvents[0];
  state.pendingEvents.clear();
  dispatchEvent(ctx, interp, state, boot, sink);
  EXPECT_EQ(state.clock, 7u);
  EXPECT_EQ(state.space.load(vm::kGlobalsObject, 0), ctx.constant(1, 64));
}

TEST_F(OsTest, DispatchTimerPassesTimerId) {
  vm::ExecutionState state(0, 1, program);
  setupBoot(ctx, state, 0);
  vm::PendingEvent timer;
  timer.time = 100;
  timer.kind = vm::EventKind::kTimer;
  timer.a = 42;
  dispatchEvent(ctx, interp, state, timer, sink);
  EXPECT_EQ(state.space.load(vm::kGlobalsObject, 1), ctx.constant(42, 64));
}

TEST_F(OsTest, DispatchRecvMaterialisesPayload) {
  vm::ExecutionState state(0, 1, program);
  setupBoot(ctx, state, 0);
  vm::PendingEvent recv;
  recv.time = 5;
  recv.kind = vm::EventKind::kRecv;
  recv.a = 9;  // source node
  recv.payload = {ctx.constant(0xbeef, 64), ctx.constant(2, 64)};
  dispatchEvent(ctx, interp, state, recv, sink);
  EXPECT_EQ(state.space.load(vm::kGlobalsObject, 3), ctx.constant(9, 64));
  EXPECT_EQ(state.space.load(vm::kGlobalsObject, 4), ctx.constant(2, 64));
  EXPECT_EQ(state.space.load(vm::kGlobalsObject, 5),
            ctx.constant(0xbeef, 64));
}

TEST_F(OsTest, DispatchIgnoresMissingEntry) {
  vm::IRBuilder b("init-only");
  b.setGlobals(1);
  b.beginEntry(vm::Entry::kInit);
  b.halt();
  const vm::Program initOnly = b.finish();
  vm::ExecutionState state(0, 1, initOnly);
  setupBoot(ctx, state, 0);
  vm::PendingEvent timer;
  timer.time = 10;
  timer.kind = vm::EventKind::kTimer;
  dispatchEvent(ctx, interp, state, timer, sink);  // must not abort
  EXPECT_EQ(state.status, vm::StateStatus::kIdle);
  EXPECT_EQ(state.clock, 10u);
}

TEST_F(OsTest, RebootResetsVolatileState) {
  vm::ExecutionState state(0, 1, program);
  setupBoot(ctx, state, 0);
  state.pendingEvents.clear();
  state.space.store(vm::kGlobalsObject, 0, ctx.constant(99, 64));
  state.activeTimers[1] = 5;
  state.constraints.add(ctx.variable("keep", 1));
  state.commLog.push_back({true, 2, 10, 0xabc, 7});

  reboot(ctx, state, 500);

  // RAM cleared, timers gone, a fresh boot pending at `now`.
  EXPECT_EQ(state.space.load(vm::kGlobalsObject, 0), ctx.constant(0, 64));
  EXPECT_TRUE(state.activeTimers.empty());
  ASSERT_EQ(state.pendingEvents.size(), 1u);
  EXPECT_EQ(state.pendingEvents[0].kind, vm::EventKind::kBoot);
  EXPECT_EQ(state.pendingEvents[0].time, 500u);
  // Path constraints and history describe the explored execution and
  // must survive the reboot.
  EXPECT_EQ(state.constraints.size(), 1u);
  EXPECT_EQ(state.commLog.size(), 1u);
}

TEST_F(OsTest, NetworkPlanAssignments) {
  NetworkPlan plan(net::Topology::line(3));
  EXPECT_FALSE(plan.complete());
  plan.runEverywhere(program);
  EXPECT_TRUE(plan.complete());
  EXPECT_EQ(plan.nodes().size(), 3u);

  // Override one node: still complete, no duplicate entry.
  vm::IRBuilder b("other");
  b.setGlobals(1);
  b.beginEntry(vm::Entry::kInit);
  b.halt();
  const vm::Program other = b.finish();
  plan.runOn(1, other, 25);
  EXPECT_TRUE(plan.complete());
  EXPECT_EQ(plan.nodes().size(), 3u);
  const auto& nodes = plan.nodes();
  const auto it = std::find_if(nodes.begin(), nodes.end(),
                               [](const NodeConfig& c) { return c.id == 1; });
  ASSERT_NE(it, nodes.end());
  EXPECT_EQ(it->program->name(), "other");
  EXPECT_EQ(it->bootTime, 25u);
}

}  // namespace
}  // namespace sde::os
