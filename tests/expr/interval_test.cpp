// Directed interval-domain tests: transfer functions and the
// constraint-directed narrowing used to seed solver enumeration.
#include <gtest/gtest.h>

#include "expr/context.hpp"
#include "expr/interval.hpp"

namespace sde::expr {
namespace {

class IntervalTest : public ::testing::Test {
 protected:
  Context ctx;
  Ref x = ctx.variable("x", 8);
  Ref y = ctx.variable("y", 8);
  IntervalEnv env;
};

TEST_F(IntervalTest, ConstantsArePoints) {
  EXPECT_EQ(intervalOf(ctx.constant(42, 8), env), Interval::point(42));
}

TEST_F(IntervalTest, UnboundVariableIsTop) {
  EXPECT_EQ(intervalOf(x, env), (Interval{0, 255}));
}

TEST_F(IntervalTest, BoundVariableUsesEnv) {
  env[x] = {10, 20};
  EXPECT_EQ(intervalOf(x, env), (Interval{10, 20}));
}

TEST_F(IntervalTest, AddWithoutOverflowIsExact) {
  env[x] = {10, 20};
  env[y] = {1, 5};
  EXPECT_EQ(intervalOf(ctx.add(x, y), env), (Interval{11, 25}));
}

TEST_F(IntervalTest, AddWithPossibleOverflowIsTop) {
  env[x] = {200, 255};
  env[y] = {100, 110};
  EXPECT_EQ(intervalOf(ctx.add(x, y), env), Interval::top(8));
}

TEST_F(IntervalTest, SubGuardsWraparound) {
  env[x] = {50, 60};
  env[y] = {10, 20};
  EXPECT_EQ(intervalOf(ctx.sub(x, y), env), (Interval{30, 50}));
  env[y] = {55, 70};  // x - y may wrap below zero
  EXPECT_EQ(intervalOf(ctx.sub(x, y), env), Interval::top(8));
}

TEST_F(IntervalTest, NotIsReversedComplement) {
  env[x] = {0x0f, 0x1f};
  EXPECT_EQ(intervalOf(ctx.bvNot(x), env), (Interval{0xe0, 0xf0}));
}

TEST_F(IntervalTest, AndBoundedByMin) {
  env[x] = {0, 7};
  const Interval iv = intervalOf(ctx.bvAnd(x, y), env);
  EXPECT_EQ(iv.lo, 0u);
  EXPECT_LE(iv.hi, 7u);
}

TEST_F(IntervalTest, ComparisonsDecideWhenDisjoint) {
  env[x] = {0, 10};
  env[y] = {20, 30};
  EXPECT_EQ(intervalOf(ctx.ult(x, y), env), Interval::point(1));
  EXPECT_EQ(intervalOf(ctx.ult(y, x), env), Interval::point(0));
  EXPECT_EQ(intervalOf(ctx.eq(x, y), env), Interval::point(0));
  env[y] = {5, 30};  // overlapping: undecided
  EXPECT_EQ(intervalOf(ctx.eq(x, y), env), Interval::top(1));
}

TEST_F(IntervalTest, UremBounded) {
  env[y] = {8, 16};
  const Interval iv = intervalOf(ctx.urem(x, y), env);
  EXPECT_LE(iv.hi, 15u);
}

TEST_F(IntervalTest, RefineEquality) {
  ASSERT_TRUE(refineByConstraint(ctx.eq(x, ctx.constant(9, 8)), env));
  EXPECT_EQ(env[x], Interval::point(9));
}

TEST_F(IntervalTest, RefineEqualityThroughZext) {
  Ref wide = ctx.zext(x, 32);
  ASSERT_TRUE(refineByConstraint(ctx.eq(wide, ctx.constant(7, 32)), env));
  EXPECT_EQ(env[x], Interval::point(7));
}

TEST_F(IntervalTest, RefineZextOutOfRangeIsInfeasible) {
  Ref wide = ctx.zext(x, 32);
  EXPECT_FALSE(refineByConstraint(ctx.eq(wide, ctx.constant(300, 32)), env));
}

TEST_F(IntervalTest, RefineUnsignedLess) {
  ASSERT_TRUE(refineByConstraint(ctx.ult(x, ctx.constant(10, 8)), env));
  EXPECT_EQ(env[x], (Interval{0, 9}));
  ASSERT_TRUE(refineByConstraint(ctx.ult(ctx.constant(3, 8), x), env));
  EXPECT_EQ(env[x], (Interval{4, 9}));
}

TEST_F(IntervalTest, RefineNegatedComparison) {
  // not(x < 10)  ==  x >= 10
  Ref c = ctx.logicalNot(ctx.ult(x, ctx.constant(10, 8)));
  ASSERT_TRUE(refineByConstraint(c, env));
  EXPECT_EQ(env[x], (Interval{10, 255}));
}

TEST_F(IntervalTest, RefineConjunction) {
  Ref c = ctx.logicalAnd(ctx.ule(ctx.constant(5, 8), x),
                         ctx.ule(x, ctx.constant(7, 8)));
  ASSERT_TRUE(refineByConstraint(c, env));
  EXPECT_EQ(env[x], (Interval{5, 7}));
}

TEST_F(IntervalTest, ContradictionDetected) {
  ASSERT_TRUE(refineByConstraint(ctx.ult(x, ctx.constant(5, 8)), env));
  EXPECT_FALSE(refineByConstraint(ctx.ult(ctx.constant(10, 8), x), env));
}

TEST_F(IntervalTest, DisequalityShavesEndpoint) {
  env[x] = {0, 10};
  ASSERT_TRUE(refineByConstraint(ctx.ne(x, ctx.constant(10, 8)), env));
  EXPECT_EQ(env[x], (Interval{0, 9}));
  ASSERT_TRUE(refineByConstraint(ctx.ne(x, ctx.constant(0, 8)), env));
  EXPECT_EQ(env[x], (Interval{1, 9}));
  // Interior holes are not representable; the env must stay sound.
  ASSERT_TRUE(refineByConstraint(ctx.ne(x, ctx.constant(5, 8)), env));
  EXPECT_EQ(env[x], (Interval{1, 9}));
}

TEST_F(IntervalTest, PointDisequalityIsInfeasible) {
  env[x] = Interval::point(4);
  EXPECT_FALSE(refineByConstraint(ctx.ne(x, ctx.constant(4, 8)), env));
}

TEST_F(IntervalTest, IntervalSizeSaturates) {
  EXPECT_EQ(Interval::top(64).size(), ~std::uint64_t{0});
  EXPECT_EQ(Interval::top(8).size(), 256u);
  EXPECT_EQ(Interval::point(3).size(), 1u);
}

}  // namespace
}  // namespace sde::expr
