// Property tests: the simplifying builder must be semantics-preserving,
// and the interval analysis must be sound, on randomly generated
// expression trees. The reference semantics is computed independently in
// the test during tree generation, so a simplifier bug cannot hide
// behind the evaluator (and vice versa).
#include <gtest/gtest.h>

#include <vector>

#include "expr/context.hpp"
#include "expr/eval.hpp"
#include "expr/interval.hpp"
#include "support/rng.hpp"

namespace sde::expr {
namespace {

struct GenNode {
  Ref expr;
  std::uint64_t expected;  // value under the generator's assignment
};

class ExprGen {
 public:
  ExprGen(Context& ctx, support::Rng& rng, unsigned width)
      : ctx_(ctx), rng_(rng), width_(width) {
    // A handful of variables with fixed random values.
    for (int i = 0; i < 4; ++i) {
      Ref v = ctx_.variable("v" + std::to_string(i), width_);
      const std::uint64_t val = maskToWidth(rng_.next(), width_);
      assignment_.set(v, val);
      vars_.push_back({v, val});
    }
  }

  const Assignment& assignment() const { return assignment_; }

  GenNode gen(int depth) {
    if (depth == 0 || rng_.chance(0.25)) return leaf();
    switch (rng_.below(16)) {
      case 0:
        return binOp(depth, Kind::kAdd);
      case 1:
        return binOp(depth, Kind::kSub);
      case 2:
        return binOp(depth, Kind::kMul);
      case 3:
        return binOp(depth, Kind::kUDiv);
      case 4:
        return binOp(depth, Kind::kURem);
      case 5:
        return binOp(depth, Kind::kAnd);
      case 6:
        return binOp(depth, Kind::kOr);
      case 7:
        return binOp(depth, Kind::kXor);
      case 8:
        return binOp(depth, Kind::kShl);
      case 9:
        return binOp(depth, Kind::kLShr);
      case 10:
        return binOp(depth, Kind::kSDiv);
      case 11:
        return binOp(depth, Kind::kSRem);
      case 12:
        return binOp(depth, Kind::kAShr);
      case 13: {  // not
        GenNode a = gen(depth - 1);
        return {ctx_.bvNot(a.expr), maskToWidth(~a.expected, width_)};
      }
      case 14: {  // ite on a comparison
        GenNode a = gen(depth - 1);
        GenNode b = gen(depth - 1);
        GenNode c = gen(depth - 1);
        Ref cond = ctx_.ult(a.expr, b.expr);
        const bool condV = a.expected < b.expected;
        GenNode d = gen(depth - 1);
        return {ctx_.ite(cond, c.expr, d.expr), condV ? c.expected
                                                      : d.expected};
      }
      default: {  // comparison widened back to `width_`
        GenNode a = gen(depth - 1);
        GenNode b = gen(depth - 1);
        Ref cmp = ctx_.eq(a.expr, b.expr);
        return {ctx_.zext(cmp, width_),
                a.expected == b.expected ? std::uint64_t{1} : 0};
      }
    }
  }

 private:
  GenNode leaf() {
    if (rng_.chance(0.5)) {
      const auto& [v, val] = vars_[rng_.below(vars_.size())];
      return {v, val};
    }
    const std::uint64_t val = maskToWidth(rng_.next(), width_);
    return {ctx_.constant(val, width_), val};
  }

  GenNode binOp(int depth, Kind kind) {
    GenNode a = gen(depth - 1);
    GenNode b = gen(depth - 1);
    Ref e = nullptr;
    std::uint64_t r = 0;
    const std::uint64_t av = a.expected;
    const std::uint64_t bv = b.expected;
    const unsigned w = width_;
    const std::uint64_t ones = maskToWidth(~std::uint64_t{0}, w);
    switch (kind) {
      case Kind::kAdd:
        e = ctx_.add(a.expr, b.expr);
        r = maskToWidth(av + bv, w);
        break;
      case Kind::kSub:
        e = ctx_.sub(a.expr, b.expr);
        r = maskToWidth(av - bv, w);
        break;
      case Kind::kMul:
        e = ctx_.mul(a.expr, b.expr);
        r = maskToWidth(av * bv, w);
        break;
      case Kind::kUDiv:
        e = ctx_.udiv(a.expr, b.expr);
        r = bv == 0 ? ones : av / bv;
        break;
      case Kind::kURem:
        e = ctx_.urem(a.expr, b.expr);
        r = bv == 0 ? av : av % bv;
        break;
      case Kind::kSDiv: {
        e = ctx_.sdiv(a.expr, b.expr);
        if (bv == 0) {
          r = ones;
        } else {
          const std::int64_t sa = signExtend(av, w);
          const std::int64_t sb = signExtend(bv, w);
          if (sb == -1 && sa == signExtend(std::uint64_t{1} << (w - 1), w))
            r = maskToWidth(static_cast<std::uint64_t>(sa), w);
          else
            r = maskToWidth(static_cast<std::uint64_t>(sa / sb), w);
        }
        break;
      }
      case Kind::kSRem: {
        e = ctx_.srem(a.expr, b.expr);
        if (bv == 0) {
          r = av;
        } else {
          const std::int64_t sb = signExtend(bv, w);
          r = sb == -1 ? 0
                       : maskToWidth(static_cast<std::uint64_t>(
                                         signExtend(av, w) % sb),
                                     w);
        }
        break;
      }
      case Kind::kAnd:
        e = ctx_.bvAnd(a.expr, b.expr);
        r = av & bv;
        break;
      case Kind::kOr:
        e = ctx_.bvOr(a.expr, b.expr);
        r = av | bv;
        break;
      case Kind::kXor:
        e = ctx_.bvXor(a.expr, b.expr);
        r = av ^ bv;
        break;
      case Kind::kShl:
        e = ctx_.shl(a.expr, b.expr);
        r = bv >= w ? 0 : maskToWidth(av << bv, w);
        break;
      case Kind::kLShr:
        e = ctx_.lshr(a.expr, b.expr);
        r = bv >= w ? 0 : av >> bv;
        break;
      case Kind::kAShr: {
        e = ctx_.ashr(a.expr, b.expr);
        const unsigned sh = bv >= w ? w - 1 : static_cast<unsigned>(bv);
        r = maskToWidth(
            static_cast<std::uint64_t>(signExtend(av, w) >> sh), w);
        break;
      }
      default:
        ADD_FAILURE() << "unexpected kind";
    }
    return {e, r};
  }

  Context& ctx_;
  support::Rng& rng_;
  unsigned width_;
  Assignment assignment_;
  std::vector<std::pair<Ref, std::uint64_t>> vars_;
};

class ExprPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExprPropertyTest, BuilderPreservesSemantics8Bit) {
  Context ctx;
  support::Rng rng(GetParam());
  ExprGen gen(ctx, rng, 8);
  for (int i = 0; i < 200; ++i) {
    const GenNode n = gen.gen(4);
    EXPECT_EQ(evaluate(n.expr, gen.assignment()), n.expected)
        << "seed=" << GetParam() << " iteration=" << i;
  }
}

TEST_P(ExprPropertyTest, BuilderPreservesSemantics64Bit) {
  Context ctx;
  support::Rng rng(GetParam() ^ 0xabcdefULL);
  ExprGen gen(ctx, rng, 64);
  for (int i = 0; i < 100; ++i) {
    const GenNode n = gen.gen(4);
    EXPECT_EQ(evaluate(n.expr, gen.assignment()), n.expected)
        << "seed=" << GetParam() << " iteration=" << i;
  }
}

TEST_P(ExprPropertyTest, IntervalAnalysisIsSound) {
  Context ctx;
  support::Rng rng(GetParam() ^ 0x5eedULL);
  ExprGen gen(ctx, rng, 8);
  // Empty env (all variables span full width): the concrete value must
  // always fall inside the computed interval.
  const IntervalEnv env;
  for (int i = 0; i < 300; ++i) {
    const GenNode n = gen.gen(4);
    const Interval iv = intervalOf(n.expr, env);
    EXPECT_LE(iv.lo, n.expected) << "seed=" << GetParam();
    EXPECT_GE(iv.hi, n.expected) << "seed=" << GetParam();
  }
}

TEST_P(ExprPropertyTest, IntervalRespectsVariableBounds) {
  Context ctx;
  support::Rng rng(GetParam() ^ 0xb0b0ULL);
  // Variables pinned to their exact values: intervals must still contain
  // the expected result (and usually be tight for monotone ops).
  ExprGen gen(ctx, rng, 8);
  IntervalEnv env;
  for (const auto& [var, value] : gen.assignment().entries())
    env[var] = Interval::point(value);
  for (int i = 0; i < 300; ++i) {
    const GenNode n = gen.gen(3);
    const Interval iv = intervalOf(n.expr, env);
    EXPECT_TRUE(iv.contains(n.expected))
        << "seed=" << GetParam() << " lo=" << iv.lo << " hi=" << iv.hi
        << " val=" << n.expected;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace sde::expr
