// Cross-context determinism: the cross-algorithm equivalence oracle
// compares configuration hashes produced by *separate engine runs*
// (separate expr::Contexts). Structural hashes and canonical forms must
// therefore be identical for logically identical expressions, no matter
// in which order the two contexts interned their nodes.
#include <gtest/gtest.h>

#include "expr/context.hpp"
#include "support/rng.hpp"

namespace sde::expr {
namespace {

TEST(Determinism, HashesAgreeAcrossContexts) {
  Context a;
  Context b;
  Ref xa = a.variable("x", 8);
  Ref xb = b.variable("x", 8);
  EXPECT_EQ(xa->hash(), xb->hash());
  EXPECT_EQ(a.add(xa, a.constant(3, 8))->hash(),
            b.add(xb, b.constant(3, 8))->hash());
  EXPECT_EQ(a.ult(xa, a.variable("y", 8))->hash(),
            b.ult(xb, b.variable("y", 8))->hash());
}

TEST(Determinism, CommutativeCanonicalFormIsInterningOrderFree) {
  // Context `a` interns y first, context `b` interns x first; the
  // canonical operand order of commutative nodes must not depend on
  // interning ids, only on structural hashes.
  Context a;
  Ref ya = a.variable("y", 8);
  Ref xa = a.variable("x", 8);
  Context b;
  Ref xb = b.variable("x", 8);
  Ref yb = b.variable("y", 8);
  EXPECT_EQ(a.add(xa, ya)->hash(), b.add(xb, yb)->hash());
  EXPECT_EQ(a.add(ya, xa)->hash(), b.add(yb, xb)->hash());
  EXPECT_EQ(a.mul(xa, ya)->hash(), b.mul(yb, xb)->hash());
  EXPECT_EQ(a.eq(ya, xa)->hash(), b.eq(xb, yb)->hash());
}

TEST(Determinism, RandomExpressionForestHashesAgree) {
  // Build the same random forest in two contexts with *different warmup
  // interning* and compare node-by-node.
  const auto build = [](Context& ctx, bool warmup) -> std::vector<Ref> {
    if (warmup) {
      // Pollute the interning order with unrelated nodes.
      for (int i = 0; i < 50; ++i)
        (void)ctx.variable("warm" + std::to_string(i), 16);
    }
    support::Rng rng(424242);
    std::vector<Ref> pool{ctx.variable("a", 8), ctx.variable("b", 8),
                          ctx.constant(7, 8)};
    for (int i = 0; i < 200; ++i) {
      Ref lhs = pool[rng.below(pool.size())];
      Ref rhs = pool[rng.below(pool.size())];
      switch (rng.below(5)) {
        case 0:
          pool.push_back(ctx.add(lhs, rhs));
          break;
        case 1:
          pool.push_back(ctx.mul(lhs, rhs));
          break;
        case 2:
          pool.push_back(ctx.bvXor(lhs, rhs));
          break;
        case 3:
          pool.push_back(ctx.zext(ctx.ult(lhs, rhs), 8));
          break;
        default:
          pool.push_back(ctx.sub(lhs, rhs));
          break;
      }
    }
    return pool;
  };

  Context a;
  Context b;
  const auto forestA = build(a, false);
  const auto forestB = build(b, true);
  ASSERT_EQ(forestA.size(), forestB.size());
  for (std::size_t i = 0; i < forestA.size(); ++i)
    EXPECT_EQ(forestA[i]->hash(), forestB[i]->hash()) << "node " << i;
}

TEST(Determinism, HashesStableAcrossProcessRuns) {
  // Golden values: structural hashes contain no pointers or per-process
  // seeds, so these constants must never change spontaneously. (If a
  // deliberate hash-scheme change lands, update the goldens.)
  Context ctx;
  Ref x = ctx.variable("x", 8);
  const std::uint64_t varHash = x->hash();
  const std::uint64_t addHash = ctx.add(x, ctx.constant(1, 8))->hash();
  Context ctx2;
  Ref x2 = ctx2.variable("x", 8);
  EXPECT_EQ(varHash, x2->hash());
  EXPECT_EQ(addHash, ctx2.add(x2, ctx2.constant(1, 8))->hash());
}

}  // namespace
}  // namespace sde::expr
