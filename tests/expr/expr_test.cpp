// Structural properties of the expression DAG: interning, widths,
// variable identity, hashing.
#include <gtest/gtest.h>

#include "expr/context.hpp"
#include "expr/print.hpp"

namespace sde::expr {
namespace {

TEST(Expr, ConstantsAreInterned) {
  Context ctx;
  EXPECT_EQ(ctx.constant(5, 8), ctx.constant(5, 8));
  EXPECT_NE(ctx.constant(5, 8), ctx.constant(5, 16));
  EXPECT_NE(ctx.constant(5, 8), ctx.constant(6, 8));
}

TEST(Expr, ConstantsMaskToWidth) {
  Context ctx;
  EXPECT_EQ(ctx.constant(0x1ff, 8)->value(), 0xffu);
  EXPECT_EQ(ctx.constant(~0ULL, 64)->value(), ~0ULL);
  EXPECT_EQ(ctx.constant(2, 1), ctx.falseExpr());
}

TEST(Expr, BoolConstantsAreCanonical) {
  Context ctx;
  EXPECT_TRUE(ctx.trueExpr()->isTrue());
  EXPECT_TRUE(ctx.falseExpr()->isFalse());
  EXPECT_EQ(ctx.boolConst(true), ctx.constant(1, 1));
  EXPECT_EQ(ctx.boolConst(false), ctx.constant(0, 1));
}

TEST(Expr, VariablesInternedByName) {
  Context ctx;
  Ref x1 = ctx.variable("x", 8);
  Ref x2 = ctx.variable("x", 8);
  Ref y = ctx.variable("y", 8);
  EXPECT_EQ(x1, x2);
  EXPECT_NE(x1, y);
  EXPECT_EQ(x1->name(), "x");
  EXPECT_EQ(y->name(), "y");
}

TEST(ExprDeathTest, VariableWidthMismatchAborts) {
  Context ctx;
  ctx.variable("x", 8);
  EXPECT_DEATH(ctx.variable("x", 16), "different width");
}

TEST(Expr, CompositesAreInterned) {
  Context ctx;
  Ref x = ctx.variable("x", 8);
  Ref y = ctx.variable("y", 8);
  EXPECT_EQ(ctx.add(x, y), ctx.add(x, y));
  // Commutative canonicalisation makes both orders the same node.
  EXPECT_EQ(ctx.add(x, y), ctx.add(y, x));
  EXPECT_EQ(ctx.mul(x, y), ctx.mul(y, x));
  EXPECT_EQ(ctx.eq(x, y), ctx.eq(y, x));
  // Non-commutative operators keep order.
  EXPECT_NE(ctx.sub(x, y), ctx.sub(y, x));
  EXPECT_NE(ctx.ult(x, y), ctx.ult(y, x));
}

TEST(Expr, StructuralHashIsWidthAndKindSensitive) {
  Context ctx;
  Ref x8 = ctx.variable("x", 8);
  Ref y8 = ctx.variable("y", 8);
  EXPECT_NE(ctx.add(x8, y8)->hash(), ctx.mul(x8, y8)->hash());
  EXPECT_NE(ctx.constant(1, 8)->hash(), ctx.constant(1, 16)->hash());
}

TEST(Expr, ComparisonResultWidthIsOne) {
  Context ctx;
  Ref x = ctx.variable("x", 32);
  EXPECT_EQ(ctx.eq(x, ctx.constant(3, 32))->width(), 1u);
  EXPECT_EQ(ctx.ult(x, ctx.constant(3, 32))->width(), 1u);
  EXPECT_EQ(ctx.sle(x, ctx.constant(3, 32))->width(), 1u);
}

TEST(Expr, WidthChangingOps) {
  Context ctx;
  Ref x = ctx.variable("x", 8);
  EXPECT_EQ(ctx.zext(x, 32)->width(), 32u);
  EXPECT_EQ(ctx.sext(x, 32)->width(), 32u);
  EXPECT_EQ(ctx.trunc(ctx.zext(x, 32), 8), x);
  EXPECT_EQ(ctx.zcast(x, 8), x);
  EXPECT_EQ(ctx.zcast(x, 4)->width(), 4u);
  EXPECT_EQ(ctx.zcast(x, 16)->width(), 16u);
}

TEST(Expr, ConcatExtract) {
  Context ctx;
  Ref hi = ctx.variable("h", 8);
  Ref lo = ctx.variable("l", 8);
  Ref c = ctx.concat(hi, lo);
  EXPECT_EQ(c->width(), 16u);
  EXPECT_EQ(ctx.extract(c, 0, 8), lo);
  EXPECT_EQ(ctx.extract(c, 8, 8), hi);
}

TEST(Expr, CollectVariablesIsSortedAndDeduplicated) {
  Context ctx;
  Ref x = ctx.variable("x", 8);
  Ref y = ctx.variable("y", 8);
  Ref e = ctx.add(ctx.mul(x, y), ctx.add(x, ctx.constant(1, 8)));
  std::vector<Ref> vars;
  ctx.collectVariables(e, vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], x);  // x interned before y => lower id
  EXPECT_EQ(vars[1], y);
}

TEST(Expr, PrinterProducesReadableForm) {
  Context ctx;
  Ref x = ctx.variable("x", 8);
  Ref e = ctx.add(x, ctx.constant(3, 8));
  // Commutative canonicalisation places constants first.
  EXPECT_EQ(toString(e), "(add w8 3w8 (var x))");
  EXPECT_EQ(toString(ctx.trueExpr()), "1");
}

TEST(Expr, BoolCastOnBoolIsIdentity) {
  Context ctx;
  Ref b = ctx.variable("b", 1);
  EXPECT_EQ(ctx.boolCast(b), b);
  Ref x = ctx.variable("x", 8);
  Ref cast = ctx.boolCast(x);
  EXPECT_EQ(cast->width(), 1u);
}

TEST(Expr, SignExtendHelper) {
  EXPECT_EQ(signExtend(0xff, 8), -1);
  EXPECT_EQ(signExtend(0x7f, 8), 127);
  EXPECT_EQ(signExtend(0x80, 8), -128);
  EXPECT_EQ(signExtend(1, 1), -1);
  EXPECT_EQ(signExtend(0xffffffffffffffffULL, 64), -1);
}

TEST(Expr, MaskToWidthHelper) {
  EXPECT_EQ(maskToWidth(0x1234, 8), 0x34u);
  EXPECT_EQ(maskToWidth(~0ULL, 64), ~0ULL);
  EXPECT_EQ(maskToWidth(~0ULL, 1), 1u);
}

}  // namespace
}  // namespace sde::expr
