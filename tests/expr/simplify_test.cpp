// Simplifier rules: every rewrite the builder performs must preserve
// semantics and produce the expected canonical node.
#include <gtest/gtest.h>

#include "expr/context.hpp"

namespace sde::expr {
namespace {

class SimplifyTest : public ::testing::Test {
 protected:
  Context ctx;
  Ref x = ctx.variable("x", 8);
  Ref y = ctx.variable("y", 8);
  Ref zero = ctx.constant(0, 8);
  Ref one = ctx.constant(1, 8);
  Ref ones = ctx.constant(0xff, 8);
};

TEST_F(SimplifyTest, ConstantFolding) {
  EXPECT_EQ(ctx.add(ctx.constant(200, 8), ctx.constant(100, 8)),
            ctx.constant(44, 8));  // wraps mod 256
  EXPECT_EQ(ctx.mul(ctx.constant(16, 8), ctx.constant(16, 8)), zero);
  EXPECT_EQ(ctx.sub(zero, one), ones);
  EXPECT_EQ(ctx.udiv(ctx.constant(7, 8), ctx.constant(2, 8)),
            ctx.constant(3, 8));
  EXPECT_EQ(ctx.urem(ctx.constant(7, 8), ctx.constant(2, 8)), one);
}

TEST_F(SimplifyTest, DivisionByZeroSemantics) {
  // KLEE/STP convention: x/0 == all-ones, x%0 == x.
  EXPECT_EQ(ctx.udiv(ctx.constant(7, 8), zero), ones);
  EXPECT_EQ(ctx.urem(ctx.constant(7, 8), zero), ctx.constant(7, 8));
  EXPECT_EQ(ctx.sdiv(ctx.constant(7, 8), zero), ones);
  EXPECT_EQ(ctx.srem(ctx.constant(7, 8), zero), ctx.constant(7, 8));
}

TEST_F(SimplifyTest, SignedDivisionEdgeCases) {
  // INT8_MIN / -1 wraps to INT8_MIN (hardware-style), remainder 0.
  EXPECT_EQ(ctx.sdiv(ctx.constant(0x80, 8), ones), ctx.constant(0x80, 8));
  EXPECT_EQ(ctx.srem(ctx.constant(0x80, 8), ones), zero);
  // -7 / 2 == -3 (truncating), -7 % 2 == -1.
  EXPECT_EQ(ctx.sdiv(ctx.constant(0xf9, 8), ctx.constant(2, 8)),
            ctx.constant(0xfd, 8));
  EXPECT_EQ(ctx.srem(ctx.constant(0xf9, 8), ctx.constant(2, 8)),
            ctx.constant(0xff, 8));
}

TEST_F(SimplifyTest, AdditiveIdentities) {
  EXPECT_EQ(ctx.add(x, zero), x);
  EXPECT_EQ(ctx.add(zero, x), x);
  EXPECT_EQ(ctx.sub(x, zero), x);
  EXPECT_EQ(ctx.sub(x, x), zero);
}

TEST_F(SimplifyTest, MultiplicativeIdentities) {
  EXPECT_EQ(ctx.mul(x, one), x);
  EXPECT_EQ(ctx.mul(one, x), x);
  EXPECT_EQ(ctx.mul(x, zero), zero);
  EXPECT_EQ(ctx.udiv(x, one), x);
  EXPECT_EQ(ctx.urem(x, one), zero);
}

TEST_F(SimplifyTest, BitwiseIdentities) {
  EXPECT_EQ(ctx.bvAnd(x, zero), zero);
  EXPECT_EQ(ctx.bvAnd(x, ones), x);
  EXPECT_EQ(ctx.bvAnd(x, x), x);
  EXPECT_EQ(ctx.bvOr(x, zero), x);
  EXPECT_EQ(ctx.bvOr(x, ones), ones);
  EXPECT_EQ(ctx.bvOr(x, x), x);
  EXPECT_EQ(ctx.bvXor(x, zero), x);
  EXPECT_EQ(ctx.bvXor(x, x), zero);
}

TEST_F(SimplifyTest, ShiftIdentities) {
  EXPECT_EQ(ctx.shl(x, zero), x);
  EXPECT_EQ(ctx.lshr(x, zero), x);
  EXPECT_EQ(ctx.ashr(x, zero), x);
  EXPECT_EQ(ctx.shl(zero, x), zero);
  // Shift by >= width folds to zero for constants.
  EXPECT_EQ(ctx.shl(one, ctx.constant(8, 8)), zero);
  EXPECT_EQ(ctx.lshr(ones, ctx.constant(9, 8)), zero);
}

TEST_F(SimplifyTest, DoubleNegation) {
  Ref notX = ctx.bvNot(x);
  EXPECT_EQ(ctx.bvNot(notX), x);
  EXPECT_EQ(ctx.bvNot(ctx.constant(0xf0, 8)), ctx.constant(0x0f, 8));
}

TEST_F(SimplifyTest, ComparisonWithSelf) {
  EXPECT_TRUE(ctx.eq(x, x)->isTrue());
  EXPECT_TRUE(ctx.ult(x, x)->isFalse());
  EXPECT_TRUE(ctx.ule(x, x)->isTrue());
  EXPECT_TRUE(ctx.slt(x, x)->isFalse());
  EXPECT_TRUE(ctx.sle(x, x)->isTrue());
  EXPECT_TRUE(ctx.ne(x, x)->isFalse());
}

TEST_F(SimplifyTest, UnsignedRangeTautologies) {
  EXPECT_TRUE(ctx.ult(x, zero)->isFalse());  // nothing is below zero
  EXPECT_TRUE(ctx.ule(zero, x)->isTrue());   // zero is below everything
  EXPECT_TRUE(ctx.ult(ones, x)->isFalse());  // nothing exceeds all-ones
}

TEST_F(SimplifyTest, BooleanEqualitySimplifies) {
  Ref b = ctx.variable("b", 1);
  EXPECT_EQ(ctx.eq(b, ctx.trueExpr()), b);
  EXPECT_EQ(ctx.eq(ctx.trueExpr(), b), b);
  EXPECT_EQ(ctx.eq(b, ctx.falseExpr()), ctx.bvNot(b));
}

TEST_F(SimplifyTest, IteSimplifies) {
  Ref b = ctx.variable("b", 1);
  EXPECT_EQ(ctx.ite(ctx.trueExpr(), x, y), x);
  EXPECT_EQ(ctx.ite(ctx.falseExpr(), x, y), y);
  EXPECT_EQ(ctx.ite(b, x, x), x);
  EXPECT_EQ(ctx.ite(b, ctx.trueExpr(), ctx.falseExpr()), b);
  EXPECT_EQ(ctx.ite(b, ctx.falseExpr(), ctx.trueExpr()), ctx.bvNot(b));
}

TEST_F(SimplifyTest, LogicalConnectives) {
  Ref b = ctx.variable("b", 1);
  Ref c = ctx.variable("c", 1);
  EXPECT_EQ(ctx.logicalAnd(b, ctx.trueExpr()), b);
  EXPECT_EQ(ctx.logicalAnd(b, ctx.falseExpr()), ctx.falseExpr());
  EXPECT_EQ(ctx.logicalOr(b, ctx.falseExpr()), b);
  EXPECT_EQ(ctx.logicalOr(b, ctx.trueExpr()), ctx.trueExpr());
  EXPECT_TRUE(ctx.implies(ctx.falseExpr(), c)->isTrue());
  EXPECT_EQ(ctx.implies(ctx.trueExpr(), c), c);
}

TEST_F(SimplifyTest, CastFolding) {
  EXPECT_EQ(ctx.zext(ctx.constant(5, 8), 32), ctx.constant(5, 32));
  EXPECT_EQ(ctx.sext(ctx.constant(0xff, 8), 16), ctx.constant(0xffff, 16));
  EXPECT_EQ(ctx.trunc(ctx.constant(0x1234, 16), 8), ctx.constant(0x34, 8));
  // trunc(zext(x)) back to the original width is x itself.
  EXPECT_EQ(ctx.trunc(ctx.zext(x, 32), 8), x);
}

TEST_F(SimplifyTest, ConcatOfConstants) {
  EXPECT_EQ(ctx.concat(ctx.constant(0x12, 8), ctx.constant(0x34, 8)),
            ctx.constant(0x1234, 16));
  EXPECT_EQ(ctx.concat(ctx.constant(0, 8), x), ctx.zext(x, 16));
}

TEST_F(SimplifyTest, ExtractThroughConcat) {
  Ref c = ctx.concat(x, y);  // x = high byte, y = low byte
  EXPECT_EQ(ctx.extract(c, 0, 8), y);
  EXPECT_EQ(ctx.extract(c, 8, 8), x);
  EXPECT_EQ(ctx.extract(x, 0, 8), x);  // full-width extract is identity
}

}  // namespace
}  // namespace sde::expr
