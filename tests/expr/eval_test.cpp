// Concrete evaluation semantics, including the partial evaluator's
// short-circuiting behaviour.
#include <gtest/gtest.h>

#include "expr/context.hpp"
#include "expr/eval.hpp"

namespace sde::expr {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  Context ctx;
  Ref x = ctx.variable("x", 8);
  Ref y = ctx.variable("y", 8);
};

TEST_F(EvalTest, EvaluatesArithmetic) {
  Assignment a;
  a.set(x, 200);
  a.set(y, 100);
  EXPECT_EQ(evaluate(ctx.add(x, y), a), 44u);  // wraps at width 8
  EXPECT_EQ(evaluate(ctx.sub(x, y), a), 100u);
  EXPECT_EQ(evaluate(ctx.mul(x, y), a), (200u * 100u) & 0xff);
  EXPECT_EQ(evaluate(ctx.udiv(x, y), a), 2u);
}

TEST_F(EvalTest, EvaluatesSignedOps) {
  Assignment a;
  a.set(x, 0xf9);  // -7
  a.set(y, 2);
  EXPECT_EQ(evaluate(ctx.sdiv(x, y), a), 0xfdu);  // -3
  EXPECT_EQ(evaluate(ctx.srem(x, y), a), 0xffu);  // -1
  EXPECT_EQ(evaluate(ctx.slt(x, y), a), 1u);
  EXPECT_EQ(evaluate(ctx.ashr(x, ctx.constant(1, 8)), a), 0xfcu);
}

TEST_F(EvalTest, EvaluatesCastsAndStructure) {
  Assignment a;
  a.set(x, 0x80);
  EXPECT_EQ(evaluate(ctx.zext(x, 16), a), 0x80u);
  EXPECT_EQ(evaluate(ctx.sext(x, 16), a), 0xff80u);
  EXPECT_EQ(evaluate(ctx.concat(x, x), a), 0x8080u);
  EXPECT_EQ(evaluate(ctx.extract(ctx.concat(x, x), 4, 8), a), 0x08u);
}

TEST_F(EvalTest, MaskRespectsAssignmentWidth) {
  Assignment a;
  a.set(x, 0x1ff);  // masked to 8 bits on insertion
  EXPECT_EQ(*a.get(x), 0xffu);
}

TEST_F(EvalTest, TryEvaluateReportsUnboundVariables) {
  Assignment a;
  a.set(x, 1);
  EXPECT_EQ(tryEvaluate(ctx.add(x, y), a), std::nullopt);
  EXPECT_EQ(tryEvaluate(ctx.add(x, x), a), 2u);
}

TEST_F(EvalTest, TryEvaluateShortCircuitsIte) {
  // With the condition decided, the untaken arm's unbound variable must
  // not poison the result.
  Assignment a;
  a.set(x, 1);
  Ref cond = ctx.eq(x, ctx.constant(1, 8));
  Ref e = ctx.ite(cond, ctx.constant(7, 8), y);
  EXPECT_EQ(tryEvaluate(e, a), 7u);
}

TEST_F(EvalTest, ShiftBeyondWidth) {
  Assignment a;
  a.set(x, 0xff);
  a.set(y, 9);
  EXPECT_EQ(evaluate(ctx.shl(x, y), a), 0u);
  EXPECT_EQ(evaluate(ctx.lshr(x, y), a), 0u);
  EXPECT_EQ(evaluate(ctx.ashr(x, y), a), 0xffu);  // sign bit replicates
}

TEST_F(EvalTest, ComparisonChain) {
  Assignment a;
  a.set(x, 5);
  a.set(y, 250);
  EXPECT_EQ(evaluate(ctx.ult(x, y), a), 1u);
  EXPECT_EQ(evaluate(ctx.slt(x, y), a), 0u);  // 250 is -6 signed
  EXPECT_EQ(evaluate(ctx.ule(y, y), a), 1u);
  EXPECT_EQ(evaluate(ctx.eq(x, y), a), 0u);
}

}  // namespace
}  // namespace sde::expr
