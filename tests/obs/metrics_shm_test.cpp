// ShmMetricsPlane battery, mirroring shm_cache_property_test: segment
// lifecycle, publish/read roundtrip, validation rejections, aggregation
// across slots and seqlock consistency under a live writer thread.
#include "obs/metrics_shm.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/mman.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

namespace sde::obs {
namespace {

std::string uniqueName(const char* tag) {
  return std::string("/sde_mx_test_") + tag + "_" +
         std::to_string(::getpid());
}

struct SegmentGuard {
  std::string name;
  explicit SegmentGuard(std::string n) : name(std::move(n)) {
    ShmMetricsPlane::unlinkSegment(name);
  }
  ~SegmentGuard() { ShmMetricsPlane::unlinkSegment(name); }
};

MetricsSnapshot snapshotWith(const std::string& name, std::uint64_t value) {
  MetricsRegistry reg;
  reg.add(reg.counter(name), value);
  return reg.snapshot();
}

TEST(ShmMetricsPlane, PublishReadRoundtripAcrossAttach) {
  SegmentGuard guard(uniqueName("roundtrip"));
  ShmMetricsConfig config;
  config.slots = 3;
  const auto writer = ShmMetricsPlane::create(guard.name, config);
  EXPECT_EQ(writer->slots(), 3u);

  EXPECT_FALSE(writer->read(0).has_value());  // never published
  EXPECT_FALSE(writer->read(7).has_value());  // out of range

  ASSERT_TRUE(writer->publish(0, snapshotWith("w.counter", 11)));
  ASSERT_TRUE(writer->publish(2, snapshotWith("w.counter", 31)));
  EXPECT_FALSE(writer->publish(3, snapshotWith("w.counter", 1)));  // range

  const auto reader = ShmMetricsPlane::attach(guard.name);
  const auto slot0 = reader->read(0);
  ASSERT_TRUE(slot0.has_value());
  EXPECT_EQ(slot0->value("w.counter"), 11u);
  EXPECT_FALSE(reader->read(1).has_value());

  // Aggregate folds every readable slot: 11 + 31.
  EXPECT_EQ(reader->aggregate().value("w.counter"), 42u);

  // Re-publish overwrites in place; readers see the newest snapshot.
  ASSERT_TRUE(writer->publish(0, snapshotWith("w.counter", 100)));
  EXPECT_EQ(reader->read(0)->value("w.counter"), 100u);
}

TEST(ShmMetricsPlane, PeakGaugesAggregateWithMax) {
  SegmentGuard guard(uniqueName("peaks"));
  ShmMetricsConfig config;
  config.slots = 4;
  const auto plane = ShmMetricsPlane::create(guard.name, config);
  const std::uint64_t peaks[4] = {120, 450, 90, 301};
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    MetricsRegistry reg;
    reg.setMax(reg.gauge("engine.peak_states"), peaks[slot]);
    ASSERT_TRUE(plane->publish(slot, reg.snapshot()));
  }
  EXPECT_EQ(plane->aggregate().value("engine.peak_states"), 450u);
}

TEST(ShmMetricsPlane, OversizeSnapshotIsDroppedKeepingThePrevious) {
  SegmentGuard guard(uniqueName("oversize"));
  ShmMetricsConfig config;
  config.slots = 1;
  config.slotBytes = 128;  // tiny on purpose
  const auto plane = ShmMetricsPlane::create(guard.name, config);
  ASSERT_TRUE(plane->publish(0, snapshotWith("small", 1)));

  MetricsRegistry big;
  for (int i = 0; i < 64; ++i)
    big.add(big.counter("some.rather.long.metric.name." + std::to_string(i)));
  EXPECT_FALSE(plane->publish(0, big.snapshot()));
  // The previous snapshot is still intact.
  const auto read = plane->read(0);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->value("small"), 1u);
}

TEST(ShmMetricsPlane, AttachRejectsMissingAndForeignSegments) {
  EXPECT_THROW((void)ShmMetricsPlane::attach(uniqueName("nonexistent")),
               ShmMetricsError);

  // A segment full of garbage fails magic validation.
  SegmentGuard guard(uniqueName("foreign"));
  const int fd =
      ::shm_open(guard.name.c_str(), O_CREAT | O_RDWR | O_EXCL, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 4096), 0);
  void* base =
      ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ASSERT_NE(base, MAP_FAILED);
  std::memset(base, 0x5A, 4096);
  ::munmap(base, 4096);
  ::close(fd);
  EXPECT_THROW((void)ShmMetricsPlane::attach(guard.name), ShmMetricsError);

  // A truncated segment (too small for its own geometry) is rejected
  // before any slot is touched.
  SegmentGuard small(uniqueName("truncated"));
  {
    const auto plane = ShmMetricsPlane::create(small.name);
    const int shrinkFd = ::shm_open(small.name.c_str(), O_RDWR, 0600);
    ASSERT_GE(shrinkFd, 0);
    ASSERT_EQ(::ftruncate(shrinkFd, 256), 0);
    ::close(shrinkFd);
    EXPECT_THROW((void)ShmMetricsPlane::attach(small.name), ShmMetricsError);
  }
}

TEST(ShmMetricsPlane, CreateReplacesAStaleSegment) {
  SegmentGuard guard(uniqueName("stale"));
  {
    const auto first = ShmMetricsPlane::create(guard.name);
    ASSERT_TRUE(first->publish(0, snapshotWith("old", 9)));
  }
  // The name still exists (nobody unlinked); a new run must get a
  // fresh, empty plane rather than inheriting the old snapshots.
  ASSERT_TRUE(ShmMetricsPlane::segmentExists(guard.name));
  const auto second = ShmMetricsPlane::create(guard.name);
  EXPECT_FALSE(second->read(0).has_value());
}

// Seqlock gate: a reader polling while a writer republishes
// continuously must only ever see internally consistent snapshots —
// the two mirrored counters are written with the same value, so any
// mix of two publishes would break the equality.
TEST(ShmMetricsPlane, TornReadsRetryUnderLiveWriter) {
  SegmentGuard guard(uniqueName("torn"));
  ShmMetricsConfig config;
  config.slots = 1;
  const auto plane = ShmMetricsPlane::create(guard.name, config);
  std::atomic<bool> stop{false};

  std::thread writer([&] {
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap;
      MetricPoint point;
      point.kind = MetricKind::kCounter;
      point.value = ++i;
      snap.points.emplace("pair.a", point);
      snap.points.emplace("pair.b", point);
      EXPECT_TRUE(plane->publish(0, snap));
    }
  });

  const auto reader = ShmMetricsPlane::attach(guard.name);
  std::uint64_t seen = 0;
  std::uint64_t lastValue = 0;
  for (std::uint64_t attempts = 0; seen < 2000 && attempts < 10000000;
       ++attempts) {
    const auto snap = reader->read(0);
    if (!snap.has_value()) continue;  // torn through the retry budget: skip
    ++seen;
    const std::uint64_t a = snap->value("pair.a");
    ASSERT_EQ(a, snap->value("pair.b"));  // never a mixed snapshot
    ASSERT_GE(a, lastValue);              // publishes are ordered
    lastValue = a;
  }
  stop.store(true);
  writer.join();
  EXPECT_GE(seen, 2000u);
}

}  // namespace
}  // namespace sde::obs
