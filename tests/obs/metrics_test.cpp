// MetricsRegistry / MetricsSnapshot battery: registry semantics, the
// shared max-vs-sum fold rule against StatsRegistry::mergeFrom (the
// 4-worker peak regression of ISSUE 8), codec roundtrip fuzz with
// truncation/magic/version rejection, quantiles and the Prometheus
// exposition.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "snapshot/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "trace/scenario.hpp"

namespace sde::obs {
namespace {

TEST(MetricsRegistry, CountersGaugesAndIdempotentRegistration) {
  MetricsRegistry reg;
  const auto forks = reg.counter("engine.forks_total");
  const auto peak = reg.gauge("engine.peak_states");
  EXPECT_EQ(forks, reg.counter("engine.forks_total"));  // same name, same id

  reg.add(forks);
  reg.add(forks, 41);
  reg.set(peak, 10);
  reg.setMax(peak, 7);   // lower: ignored
  reg.setMax(peak, 25);  // higher: taken

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("engine.forks_total"), 42u);
  EXPECT_EQ(snap.value("engine.peak_states"), 25u);
  EXPECT_EQ(snap.find("engine.forks_total")->kind, MetricKind::kCounter);
  EXPECT_EQ(snap.find("engine.peak_states")->kind, MetricKind::kGauge);
}

TEST(MetricsRegistry, HistogramObservationsLandInLog2Buckets) {
  MetricsRegistry reg;
  const auto lat = reg.histogram("solver.layer.cache.latency_ns");
  reg.observe(lat, 0);
  reg.observe(lat, 1);
  reg.observe(lat, 2);
  reg.observe(lat, 3);
  reg.observe(lat, 1024);

  const MetricsSnapshot snap = reg.snapshot();
  const MetricPoint* point = snap.find("solver.layer.cache.latency_ns");
  ASSERT_NE(point, nullptr);
  EXPECT_EQ(point->kind, MetricKind::kHistogram);
  EXPECT_EQ(point->count, 5u);
  EXPECT_EQ(point->sum, 1030u);
  EXPECT_EQ(point->buckets[0], 1u);   // value 0
  EXPECT_EQ(point->buckets[1], 1u);   // value 1
  EXPECT_EQ(point->buckets[2], 2u);   // values 2, 3
  EXPECT_EQ(point->buckets[11], 1u);  // 1024 = 2^10 -> bucket 11
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry reg;
  const auto c = reg.counter("a.b");
  const auto h = reg.histogram("a.h");
  reg.add(c, 9);
  reg.observe(h, 100);
  reg.reset();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("a.b"), 0u);
  EXPECT_EQ(snap.find("a.h")->count, 0u);
  // Ids remain valid after reset.
  reg.add(c, 3);
  EXPECT_EQ(reg.snapshot().value("a.b"), 3u);
}

TEST(MetricsRegistry, ConcurrentBumpsLoseNothing) {
  MetricsRegistry reg;
  const auto c = reg.counter("hot.counter");
  const auto h = reg.histogram("hot.histogram");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.add(c);
        reg.observe(h, static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  for (auto& thread : threads) thread.join();
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.value("hot.counter"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(snap.find("hot.histogram")->count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// The ISSUE 8 regression: a *.peak_* gauge folds with max across 4
// fleet workers, and the metrics-side fold agrees exactly with
// StatsRegistry::mergeFrom because both run through support::foldCounter.
TEST(MetricsSnapshot, PeakGaugeFoldsWithMaxAcrossFourWorkers) {
  const std::uint64_t peaks[4] = {120, 450, 90, 301};
  const std::uint64_t forks[4] = {10, 20, 30, 40};

  MetricsSnapshot merged;
  support::StatsRegistry mergedStats;
  for (int w = 0; w < 4; ++w) {
    MetricsRegistry reg;
    reg.setMax(reg.gauge("engine.peak_states"), peaks[w]);
    reg.add(reg.counter("engine.forks_total"), forks[w]);
    merged.merge(reg.snapshot());

    support::StatsRegistry workerStats;
    workerStats.maxOf("engine.peak_states", peaks[w]);
    workerStats.bump("engine.forks_total", forks[w]);
    mergedStats.mergeFrom(workerStats);
  }

  EXPECT_EQ(merged.value("engine.peak_states"), 450u);  // max, not 961
  EXPECT_EQ(merged.value("engine.forks_total"), 100u);  // sum
  for (const auto& [name, value] : mergedStats.all())
    EXPECT_EQ(merged.value(name), value) << name;
}

TEST(MetricsSnapshot, MergeAddsHistogramsAndAdoptMissingKeepsExisting) {
  MetricsRegistry a;
  a.observe(a.histogram("h"), 5);
  a.observe(a.histogram("h"), 6);
  MetricsRegistry b;
  b.observe(b.histogram("h"), 1000);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.find("h")->count, 3u);
  EXPECT_EQ(merged.find("h")->sum, 1011u);

  MetricsSnapshot exact;
  MetricPoint point;
  point.kind = MetricKind::kCounter;
  point.value = 7;
  exact.points.emplace("x", point);
  MetricsSnapshot live;
  point.value = 99;
  live.points.emplace("x", point);
  point.value = 3;
  live.points.emplace("y", point);
  exact.adoptMissing(live);
  EXPECT_EQ(exact.value("x"), 7u);  // exact entry wins
  EXPECT_EQ(exact.value("y"), 3u);  // absent name adopted
}

TEST(MetricsSnapshot, SnapshotFromStatsLiftsPeaksToGaugesVerbatim) {
  support::StatsRegistry stats;
  stats.bump("engine.forks", 17);
  stats.maxOf("engine.peak_memory_bytes", 123456);
  const MetricsSnapshot snap = snapshotFromStats(stats);
  EXPECT_EQ(snap.find("engine.forks")->kind, MetricKind::kCounter);
  EXPECT_EQ(snap.find("engine.peak_memory_bytes")->kind, MetricKind::kGauge);
  EXPECT_EQ(snap.value("engine.forks"), 17u);
  EXPECT_EQ(snap.value("engine.peak_memory_bytes"), 123456u);
}

TEST(MetricsCodec, RoundtripFuzz) {
  support::Rng rng(0xC0DECu);
  for (int round = 0; round < 200; ++round) {
    MetricsSnapshot snap;
    const std::size_t n = rng.below(20);
    for (std::size_t i = 0; i < n; ++i) {
      MetricPoint point;
      const std::uint64_t kindPick = rng.below(3);
      point.kind = static_cast<MetricKind>(kindPick);
      if (point.kind == MetricKind::kHistogram) {
        const std::size_t observations = rng.below(50);
        for (std::size_t o = 0; o < observations; ++o) {
          const std::uint64_t v = rng.next() >> rng.below(64);
          ++point.count;
          point.sum += v;
          ++point.buckets[histogramBucketOf(v)];
        }
      } else {
        point.value = rng.next();
      }
      snap.points.insert_or_assign(
          "m." + std::to_string(rng.below(1000)), point);
    }
    const std::string bytes = encodeMetricsSnapshot(snap);
    const MetricsSnapshot back = decodeMetricsSnapshot(bytes);
    ASSERT_EQ(back.points.size(), snap.points.size());
    for (const auto& [name, point] : snap.points) {
      const MetricPoint* decoded = back.find(name);
      ASSERT_NE(decoded, nullptr) << name;
      EXPECT_EQ(decoded->kind, point.kind);
      EXPECT_EQ(decoded->value, point.value);
      EXPECT_EQ(decoded->count, point.count);
      EXPECT_EQ(decoded->sum, point.sum);
      EXPECT_EQ(decoded->buckets, point.buckets);
    }
    // Deterministic encoding: same snapshot, same bytes.
    EXPECT_EQ(encodeMetricsSnapshot(back), bytes);
  }
}

TEST(MetricsCodec, RejectsTruncationMagicAndVersion) {
  MetricsRegistry reg;
  reg.add(reg.counter("a"), 1);
  reg.observe(reg.histogram("b"), 500);
  const std::string bytes = encodeMetricsSnapshot(reg.snapshot());

  // Truncation at every prefix length must throw, never crash or
  // fabricate data.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_THROW((void)decodeMetricsSnapshot(bytes.substr(0, cut)),
                 snapshot::SnapshotError)
        << "prefix " << cut;

  std::string foreign = bytes;
  foreign[0] ^= 0xFF;
  EXPECT_THROW((void)decodeMetricsSnapshot(foreign), snapshot::SnapshotError);

  std::string versioned = bytes;
  versioned[kMetricsMagic.size()] =
      static_cast<char>(kMetricsVersion + 1);  // bump the version field
  EXPECT_THROW((void)decodeMetricsSnapshot(versioned),
               snapshot::SnapshotError);
}

TEST(MetricsHistogram, QuantileHitsBucketUpperBounds) {
  MetricPoint point;
  point.kind = MetricKind::kHistogram;
  for (int i = 0; i < 90; ++i) {
    ++point.count;
    ++point.buckets[histogramBucketOf(3)];  // bucket 2, bound 3
    point.sum += 3;
  }
  for (int i = 0; i < 10; ++i) {
    ++point.count;
    ++point.buckets[histogramBucketOf(1000)];  // bucket 10, bound 1023
    point.sum += 1000;
  }
  EXPECT_EQ(histogramQuantile(point, 0.5), 3u);
  EXPECT_EQ(histogramQuantile(point, 0.9), 3u);
  EXPECT_EQ(histogramQuantile(point, 0.95), 1023u);
  EXPECT_EQ(histogramQuantile(point, 1.0), 1023u);
  MetricPoint empty;
  empty.kind = MetricKind::kHistogram;
  EXPECT_EQ(histogramQuantile(empty, 0.5), 0u);
}

TEST(MetricsPrometheus, RendersFamiliesTenantsAndHistograms) {
  MetricsRegistry reg;
  reg.add(reg.counter("engine.forks_total"), 5);
  reg.add(reg.counter("serve.tenant.alice.preemptions"), 2);
  reg.add(reg.counter("serve.tenant.bob.preemptions"), 3);
  reg.observe(reg.histogram("solver.layer.cache.latency_ns"), 100);
  const std::string text = renderPrometheus(reg.snapshot());

  EXPECT_NE(text.find("# TYPE sde_engine_forks_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("sde_engine_forks_total 5\n"), std::string::npos);
  // Tenant series collapse into one labelled family with ONE TYPE line.
  EXPECT_NE(text.find("sde_serve_preemptions{tenant=\"alice\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("sde_serve_preemptions{tenant=\"bob\"} 3\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE sde_serve_preemptions counter"),
            text.rfind("# TYPE sde_serve_preemptions counter"));
  // Histogram: cumulative buckets, +Inf, sum and count.
  EXPECT_NE(text.find("sde_solver_layer_cache_latency_ns_bucket{le=\"127\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("sde_solver_layer_cache_latency_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("sde_solver_layer_cache_latency_ns_sum 100"),
            std::string::npos);
  EXPECT_NE(text.find("sde_solver_layer_cache_latency_ns_count 1"),
            std::string::npos);

  // Every exposed line is `name{labels} value` over the allowed charset
  // — a cheap "Prometheus parses this" gate.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, line.find_first_of(" {"));
    for (char c : name)
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':')
          << line;
  }
}

// Observability must be free of observer effects: attaching a metrics
// registry to an engine changes counters, never the exploration. The
// stats registry doubles as the digest here — it records the full
// event/fork/termination history of the run.
TEST(MetricsEngine, AttachingMetricsChangesNoExplorationResult) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 4;
  config.gridHeight = 4;
  config.simulationTime = 2000;

  trace::CollectScenario plain(config);
  const trace::ScenarioResult bare = plain.run();

  trace::CollectScenario instrumented(config);
  MetricsRegistry metrics;
  instrumented.engine().setMetrics(&metrics);
  const trace::ScenarioResult observed = instrumented.run();

  EXPECT_EQ(observed.states, bare.states);
  EXPECT_EQ(observed.events, bare.events);
  EXPECT_EQ(observed.packets, bare.packets);
  EXPECT_EQ(observed.groups, bare.groups);
  EXPECT_EQ(instrumented.engine().stats().report(),
            plain.engine().stats().report());

  // And the live counters agree with the run they watched.
  const MetricsSnapshot snap = metrics.snapshot();
  EXPECT_EQ(snap.value("engine.events"), bare.events);
  EXPECT_GT(snap.value("engine.forks_total"), 0u);
}

}  // namespace
}  // namespace sde::obs
