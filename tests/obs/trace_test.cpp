// Structured event traces: container round-trip, structural validation,
// and — the load-bearing oracle — fork attribution recomputed from a
// trace matching the engine's own StatsRegistry counters exactly, for
// all three mapping algorithms.
#include <gtest/gtest.h>

#include <sstream>

#include "obs/chrome_export.hpp"
#include "obs/summary.hpp"
#include "obs/trace_io.hpp"
#include "trace/scenario.hpp"

namespace sde::obs {
namespace {

TraceEvent event(TraceEventKind kind, std::uint64_t stateId = 0,
                 std::uint64_t parent = 0) {
  TraceEvent e;
  e.kind = kind;
  e.stateId = stateId;
  e.parentStateId = parent;
  return e;
}

TEST(TraceSink, StampsTimeSeqAndStream) {
  MemoryTraceSink sink;
  sink.setStream(7);
  sink.setAmbientTime(42);
  sink.emit(event(TraceEventKind::kStateCreate, 1));
  sink.setAmbientTime(99);
  sink.emit(event(TraceEventKind::kStateTerminate, 1));
  ASSERT_EQ(sink.events().size(), 2u);
  EXPECT_EQ(sink.events()[0].time, 42u);
  EXPECT_EQ(sink.events()[0].seq, 0u);
  EXPECT_EQ(sink.events()[0].stream, 7u);
  EXPECT_EQ(sink.events()[1].time, 99u);
  EXPECT_EQ(sink.events()[1].seq, 1u);
}

TEST(TraceIo, RoundTripsHeaderEventsAndProfile) {
  TraceFile trace;
  trace.header.numNodes = 9;
  trace.header.stream = 3;
  trace.header.mapper = "sds";
  trace.header.scenario = "grid 3x3";
  TraceEvent fork = event(TraceEventKind::kStateFork, 5, 2);
  fork.detail = static_cast<std::uint8_t>(ForkCause::kMapping);
  fork.time = 1000;
  fork.seq = 0;
  fork.node = 4;
  fork.groupId = 11;
  fork.a = 1;
  trace.events.push_back(fork);
  trace.profile.phases[static_cast<std::size_t>(Phase::kSolver)] = {500, 2};

  std::stringstream buffer;
  writeTrace(buffer, trace);
  const TraceFile read = readTrace(buffer);
  EXPECT_EQ(read.header.numNodes, 9u);
  EXPECT_EQ(read.header.stream, 3u);
  EXPECT_EQ(read.header.mapper, "sds");
  EXPECT_EQ(read.header.scenario, "grid 3x3");
  ASSERT_EQ(read.events.size(), 1u);
  EXPECT_EQ(read.events[0], fork);
  EXPECT_EQ(read.profile.phases[static_cast<std::size_t>(Phase::kSolver)].nanos,
            500u);
  EXPECT_EQ(read.profile.phases[static_cast<std::size_t>(Phase::kSolver)].calls,
            2u);
}

TEST(TraceIo, StreamingSinkProducesTheSameContainer) {
  std::stringstream buffer;
  TraceHeader header;
  header.numNodes = 4;
  {
    StreamTraceSink sink(buffer, header);
    sink.setAmbientTime(10);
    sink.emit(event(TraceEventKind::kStateCreate, 1));
    sink.emit(event(TraceEventKind::kStateCreate, 2));
    sink.close();
  }
  const TraceFile read = readTrace(buffer);
  ASSERT_EQ(read.events.size(), 2u);
  EXPECT_EQ(read.events[0].seq, 0u);
  EXPECT_EQ(read.events[1].seq, 1u);
  EXPECT_TRUE(read.profile.empty());
}

TEST(TraceIo, RejectsForeignMagicAndTruncation) {
  std::stringstream foreign("not a trace at all");
  EXPECT_THROW((void)readTrace(foreign), TraceError);

  TraceFile trace;
  trace.header.numNodes = 1;
  trace.events.push_back(event(TraceEventKind::kStateCreate, 1));
  std::stringstream buffer;
  writeTrace(buffer, trace);
  const std::string whole = buffer.str();
  std::stringstream torn(whole.substr(0, whole.size() - 4));
  EXPECT_THROW((void)readTrace(torn), TraceError);
}

TEST(TraceValidate, AcceptsAWellFormedLineage) {
  TraceFile trace;
  trace.header.numNodes = 2;
  MemoryTraceSink sink;
  sink.emit(event(TraceEventKind::kStateCreate, 1));
  sink.emit(event(TraceEventKind::kStateCreate, 2));
  TraceEvent fork = event(TraceEventKind::kStateFork, 3, 1);
  fork.detail = static_cast<std::uint8_t>(ForkCause::kBranch);
  sink.emit(fork);
  sink.emit(event(TraceEventKind::kStateTerminate, 3));
  trace.events = sink.events();
  EXPECT_TRUE(validateTrace(trace).empty());
}

TEST(TraceValidate, FlagsSeqGapsTimeRegressionsAndOrphanForks) {
  TraceFile trace;
  trace.header.numNodes = 2;
  // Orphan fork: parent 42 never created.
  TraceEvent fork = event(TraceEventKind::kStateFork, 3, 42);
  fork.detail = static_cast<std::uint8_t>(ForkCause::kBranch);
  fork.seq = 0;
  fork.time = 100;
  trace.events.push_back(fork);
  // Seq gap (1 expected, 5 found) and a time regression.
  TraceEvent terminate = event(TraceEventKind::kStateTerminate, 3);
  terminate.seq = 5;
  terminate.time = 50;
  trace.events.push_back(terminate);
  // Node outside the network.
  TraceEvent create = event(TraceEventKind::kStateCreate, 9);
  create.seq = 6;
  create.time = 50;
  create.node = 7;
  trace.events.push_back(create);
  const std::vector<std::string> violations = validateTrace(trace);
  EXPECT_GE(violations.size(), 4u);
}

// --- The oracle: trace-derived fork attribution == engine counters -----------

class ForkAttributionTest : public ::testing::TestWithParam<MapperKind> {};

TEST_P(ForkAttributionTest, SummaryReproducesEngineForkCounters) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = 5000;
  config.mapper = GetParam();
  trace::CollectScenario scenario(config);

  MemoryTraceSink sink;
  scenario.engine().setTraceSink(&sink);
  PhaseProfiler profiler;
  scenario.engine().setProfiler(&profiler);
  ASSERT_EQ(scenario.run().outcome, RunOutcome::kCompleted);

  // The collect app never branches symbolically during run() (failure
  // forks take both branches unconditionally), so drive the solver the
  // way test-case generation does: one model query against the deepest
  // state's path constraints — that must land in the trace too.
  const ExecutionState* deepest = nullptr;
  for (const auto& state : scenario.engine().states())
    if (deepest == nullptr ||
        state->decisions.size() > deepest->decisions.size())
      deepest = state.get();
  ASSERT_NE(deepest, nullptr);
  ASSERT_FALSE(deepest->decisions.empty());
  EXPECT_TRUE(
      scenario.engine().solver().getModel(deepest->constraints).has_value());

  TraceFile trace;
  trace.header.numNodes = 25;
  trace.header.mapper = std::string(mapperKindName(GetParam()));
  trace.events = sink.events();
  ASSERT_FALSE(trace.events.empty());

  // Structurally valid, including the fork-attribution ledger (every
  // mapping fork claimed by exactly one mapping-layer record).
  EXPECT_EQ(validateTrace(trace), std::vector<std::string>{});

  // Fork attribution from the trace matches the engine's own counters
  // exactly — the trace is a faithful second bookkeeping.
  const TraceSummary summary = summarizeTrace(trace);
  const support::StatsRegistry& stats = scenario.engine().stats();
  EXPECT_EQ(summary.forksTotal(), stats.get("engine.forks_total"));
  EXPECT_EQ(summary.forksLocal(), stats.get("engine.forks_local"));
  EXPECT_EQ(summary.forksMapping, stats.get("engine.forks_mapping"));
  EXPECT_EQ(summary.forksFailure, stats.get("engine.failure_forks"));
  EXPECT_GT(summary.forksTotal(), 0u);

  // One kStateCreate per node at boot.
  EXPECT_EQ(summary.count(TraceEventKind::kStateCreate), 25u);
  // Traffic flowed, the mapper was exercised, and the explicit model
  // query above was recorded.
  EXPECT_GT(summary.count(TraceEventKind::kPacketTransmit), 0u);
  EXPECT_GT(summary.count(TraceEventKind::kPacketDeliver), 0u);
  EXPECT_GE(summary.solverQueries, 1u);

  // SDS's payoff (§III-D): no bystander ever forked.
  if (GetParam() == MapperKind::kSds) EXPECT_EQ(summary.bystandersForked, 0u);
  // COB materialises whole dscenarios on local branches.
  if (GetParam() == MapperKind::kCob) EXPECT_GT(summary.scenarioCopies, 0u);

  // The profiler partitioned real work into phases.
  const PhaseProfile& profile = profiler.profile();
  EXPECT_GT(profile.phases[static_cast<std::size_t>(Phase::kInterp)].calls,
            0u);
  EXPECT_GT(profile.phases[static_cast<std::size_t>(Phase::kSolver)].calls,
            0u);
  EXPECT_GT(profile.totalNanos(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Mappers, ForkAttributionTest,
                         ::testing::Values(MapperKind::kCob, MapperKind::kCow,
                                           MapperKind::kSds),
                         [](const auto& info) {
                           return std::string(mapperKindName(info.param));
                         });

// Merge attribution: a merged run's trace must stay structurally valid
// (absorbed states leave the lineage through kStateMerge, not
// kStateTerminate) and its trace-derived merge totals must match the
// engine's counters — the same second-bookkeeping contract the fork
// ledger has.
TEST(MergeAttributionTest, SummaryReproducesEngineMergeCounters) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = 5000;
  config.mapper = MapperKind::kSds;
  config.engine.mergeStates = true;
  trace::CollectScenario scenario(config);

  MemoryTraceSink sink;
  scenario.engine().setTraceSink(&sink);
  ASSERT_EQ(scenario.run().outcome, RunOutcome::kCompleted);

  TraceFile trace;
  trace.header.numNodes = 25;
  trace.header.mapper = std::string(mapperKindName(MapperKind::kSds));
  trace.events = sink.events();
  EXPECT_EQ(validateTrace(trace), std::vector<std::string>{});

  const TraceSummary summary = summarizeTrace(trace);
  const support::StatsRegistry& stats = scenario.engine().stats();
  EXPECT_GT(summary.count(TraceEventKind::kStateMerge), 0u);
  EXPECT_EQ(summary.count(TraceEventKind::kStateMerge),
            stats.get("engine.merges"));
  EXPECT_EQ(summary.mergeRemovedStates,
            stats.get("engine.merge_removed_states"));
  std::uint64_t mergesAcrossNodes = 0;
  for (const auto& [node, merges] : summary.mergesByNode)
    mergesAcrossNodes += merges;
  EXPECT_EQ(mergesAcrossNodes, summary.count(TraceEventKind::kStateMerge));
}

TEST(ChromeExport, EmitsLoadableJsonShape) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 3;
  config.gridHeight = 3;
  config.simulationTime = 3000;
  trace::CollectScenario scenario(config);
  MemoryTraceSink sink;
  scenario.engine().setTraceSink(&sink);
  ASSERT_EQ(scenario.run().outcome, RunOutcome::kCompleted);

  TraceFile trace;
  trace.header.numNodes = 9;
  trace.header.mapper = "sds";
  trace.events = sink.events();

  std::ostringstream os;
  exportChromeTrace(os, trace);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("state_fork"), std::string::npos);
  EXPECT_NE(json.find("packet_transmit"), std::string::npos);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
}

// --- Checkpoint continuity ---------------------------------------------------
// Suspend + resume must continue the event stream where it stopped:
// consecutive sequence numbers across the boundary, and — determinism —
// the continued tail equal to the uninterrupted run's, record for
// record, once the suspend/restore bookkeeping records are set aside.
TEST(TraceCheckpoint, ResumedStreamContinuesSeamlessly) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 4;
  config.gridHeight = 4;
  config.simulationTime = 4000;
  config.mapper = MapperKind::kSds;

  // Uninterrupted reference run.
  trace::CollectScenario reference(config);
  MemoryTraceSink referenceSink;
  reference.engine().setTraceSink(&referenceSink);
  ASSERT_EQ(reference.run().outcome, RunOutcome::kCompleted);

  // Interrupted run: first half, then checkpoint.
  trace::CollectScenario first(config);
  MemoryTraceSink firstSink;
  first.engine().setTraceSink(&firstSink);
  ASSERT_EQ(first.engine().run(2000), RunOutcome::kCompleted);
  std::stringstream checkpoint;
  first.engine().checkpoint(checkpoint);
  ASSERT_FALSE(firstSink.events().empty());
  const TraceEvent& suspend = firstSink.events().back();
  EXPECT_EQ(suspend.kind, TraceEventKind::kCheckpointSuspend);

  // Fresh engine, sink installed BEFORE restore (the documented order),
  // resumed to the full horizon.
  trace::CollectScenario second(config);
  MemoryTraceSink secondSink;
  second.engine().setTraceSink(&secondSink);
  second.engine().restore(checkpoint);
  ASSERT_EQ(second.engine().run(config.simulationTime),
            RunOutcome::kCompleted);
  ASSERT_FALSE(secondSink.events().empty());
  const TraceEvent& restore = secondSink.events().front();
  EXPECT_EQ(restore.kind, TraceEventKind::kCheckpointRestore);
  // Numbering continues exactly one past the suspend record.
  EXPECT_EQ(restore.seq, suspend.seq + 1);

  // Concatenated, the two halves form one valid stream...
  TraceFile stitched;
  stitched.header.numNodes = 16;
  stitched.events = firstSink.events();
  stitched.events.insert(stitched.events.end(), secondSink.events().begin(),
                         secondSink.events().end());
  EXPECT_EQ(validateTrace(stitched), std::vector<std::string>{});

  // ...and, minus the suspend/restore bookkeeping and the seq shift
  // they introduce, that stream is the uninterrupted run's.
  const auto strip = [](std::vector<TraceEvent> events) {
    std::vector<TraceEvent> out;
    for (TraceEvent& e : events) {
      if (e.kind == TraceEventKind::kCheckpointSuspend ||
          e.kind == TraceEventKind::kCheckpointRestore)
        continue;
      e.seq = 0;
      out.push_back(e);
    }
    return out;
  };
  EXPECT_EQ(strip(stitched.events), strip(referenceSink.events()));
}

}  // namespace
}  // namespace sde::obs
