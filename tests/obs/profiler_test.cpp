// Phase profiler: self-time accounting, the stats/report surfaces, and
// the null-profiler fast path.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "obs/profiler.hpp"

namespace sde::obs {
namespace {

TEST(PhaseProfile, FreshProfileIsEmpty) {
  const PhaseProfile profile;
  EXPECT_TRUE(profile.empty());
  EXPECT_EQ(profile.totalNanos(), 0u);
}

TEST(PhaseProfiler, CountsEveryEnter) {
  PhaseProfiler profiler;
  for (int i = 0; i < 3; ++i) {
    ScopedPhase scope(&profiler, Phase::kSolver);
  }
  {
    ScopedPhase scope(&profiler, Phase::kInterp);
  }
  const PhaseProfile& profile = profiler.profile();
  EXPECT_EQ(profile.phases[static_cast<std::size_t>(Phase::kSolver)].calls,
            3u);
  EXPECT_EQ(profile.phases[static_cast<std::size_t>(Phase::kInterp)].calls,
            1u);
  EXPECT_EQ(
      profile.phases[static_cast<std::size_t>(Phase::kCheckpoint)].calls, 0u);
  EXPECT_FALSE(profile.empty());
}

TEST(PhaseProfiler, NestedPhasesAccountSelfTimeNotInclusiveTime) {
  // kInterp encloses kSolver; the solver sleep must be charged to
  // kSolver only — self-time partitions the instrumented wall-time.
  PhaseProfiler profiler;
  {
    ScopedPhase interp(&profiler, Phase::kInterp);
    ScopedPhase solver(&profiler, Phase::kSolver);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const PhaseProfile& profile = profiler.profile();
  const auto solverNanos =
      profile.phases[static_cast<std::size_t>(Phase::kSolver)].nanos;
  const auto interpNanos =
      profile.phases[static_cast<std::size_t>(Phase::kInterp)].nanos;
  EXPECT_GE(solverNanos, 10'000'000u);  // the sleep, minus scheduler slop
  // The enclosing phase was paused during the sleep: it keeps only its
  // own (tiny) slice, far below the nested phase's.
  EXPECT_LT(interpNanos, solverNanos / 2);
  EXPECT_EQ(profile.totalNanos(), solverNanos + interpNanos);
}

TEST(PhaseProfiler, NullProfilerScopesAreNoOps) {
  // The disabled path everywhere in the engine: must not crash, must
  // not record.
  ScopedPhase scope(nullptr, Phase::kMapping);
  SUCCEED();
}

TEST(PhaseProfile, ToStatsEmitsMicrosAndCallsPerActivePhase) {
  PhaseProfile profile;
  profile.phases[static_cast<std::size_t>(Phase::kSolver)] = {2'500, 3};
  support::StatsRegistry stats;
  profile.toStats(stats);
  EXPECT_EQ(stats.get("profile.solver.micros"), 2u);  // 2500ns -> 2us
  EXPECT_EQ(stats.get("profile.solver.calls"), 3u);
}

TEST(PhaseProfile, MergeFromSumsBothNanosAndCalls) {
  PhaseProfile a;
  PhaseProfile b;
  a.phases[0] = {100, 1};
  b.phases[0] = {50, 2};
  b.phases[3] = {7, 1};
  a.mergeFrom(b);
  EXPECT_EQ(a.phases[0].nanos, 150u);
  EXPECT_EQ(a.phases[0].calls, 3u);
  EXPECT_EQ(a.phases[3].nanos, 7u);
  EXPECT_EQ(a.totalNanos(), 157u);
}

TEST(PhaseProfile, ReportNamesEveryRecordedPhase) {
  PhaseProfiler profiler;
  {
    ScopedPhase scope(&profiler, Phase::kScheduler);
  }
  const std::string report = profiler.profile().report();
  EXPECT_NE(report.find("scheduler"), std::string::npos);
}

TEST(PhaseProfilerDeathTest, ProfileReadInsideAnOpenScopeAsserts) {
  PhaseProfiler profiler;
  profiler.enter(Phase::kInterp);
  EXPECT_DEATH((void)profiler.profile(), "open phase scope");
}

}  // namespace
}  // namespace sde::obs
