// Multi-stream trace merging: the stitchSamples ordering contract
// applied to event records, and the end-to-end determinism oracle —
// the merged trace of a partitioned run is byte-identical for any
// worker count.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/summary.hpp"
#include "obs/trace_merge.hpp"
#include "trace/metrics.hpp"
#include "trace/scenario.hpp"

namespace fs = std::filesystem;

namespace sde::obs {
namespace {

TraceEvent at(std::uint64_t time, std::uint64_t seq, std::uint32_t stream,
              std::uint64_t stateId) {
  TraceEvent e;
  e.kind = TraceEventKind::kStateCreate;
  e.time = time;
  e.seq = seq;
  e.stream = stream;
  e.stateId = stateId;
  return e;
}

TraceFile stream(std::uint32_t id, std::vector<TraceEvent> events) {
  TraceFile trace;
  trace.header.numNodes = 4;
  trace.header.stream = id;
  trace.events = std::move(events);
  return trace;
}

TEST(TraceMerge, OrdersByTimeThenSeqThenInputIndex) {
  const std::vector<TraceFile> inputs{
      stream(0, {at(100, 0, 0, 1), at(300, 1, 0, 2)}),
      stream(1, {at(100, 0, 1, 3), at(200, 1, 1, 4)}),
  };
  const TraceFile merged = mergeTraces(inputs);
  ASSERT_EQ(merged.events.size(), 4u);
  // Full tie at (100, 0): input 0 first — the stitchSamples rule.
  EXPECT_EQ(merged.events[0].stateId, 1u);
  EXPECT_EQ(merged.events[1].stateId, 3u);
  EXPECT_EQ(merged.events[2].stateId, 4u);  // time 200
  EXPECT_EQ(merged.events[3].stateId, 2u);  // time 300
  EXPECT_TRUE(merged.header.merged);
  // Per-stream identity survives in the records.
  EXPECT_EQ(merged.events[0].stream, 0u);
  EXPECT_EQ(merged.events[1].stream, 1u);
}

TEST(TraceMerge, EmptyStreamAmongNonEmptyIsHarmless) {
  const std::vector<TraceFile> inputs{
      stream(0, {at(100, 0, 0, 1)}),
      stream(1, {}),
      stream(2, {at(100, 0, 2, 3)}),
  };
  const TraceFile merged = mergeTraces(inputs);
  ASSERT_EQ(merged.events.size(), 2u);
  EXPECT_EQ(merged.events[0].stateId, 1u);
  EXPECT_EQ(merged.events[1].stateId, 3u);
}

TEST(TraceMerge, RejectsNetworkSizeMismatch) {
  TraceFile a = stream(0, {});
  TraceFile b = stream(1, {});
  b.header.numNodes = 99;
  const std::vector<TraceFile> inputs{a, b};
  EXPECT_THROW((void)mergeTraces(inputs), TraceError);
}

TEST(TraceMerge, DropsProfileSections) {
  // Profiles carry wall-clock, the one thing that varies run to run;
  // keeping them would break byte-identity of merged files.
  TraceFile a = stream(0, {at(1, 0, 0, 1)});
  a.profile.phases[0] = {12345, 3};
  const std::vector<TraceFile> inputs{a};
  EXPECT_TRUE(mergeTraces(inputs).profile.empty());
}

// The satellite oracle: the event merge and the metric-sample stitch
// implement the SAME ordering contract. Feed both sides keys built from
// one common schedule and require identical cross-stream order.
TEST(TraceMerge, AgreesWithStitchSamplesOnEventOrdering) {
  struct Key {
    std::uint64_t time;
    std::uint64_t seq;
    std::uint32_t stream;
  };
  // Two workers sampling interleaved virtual times, with a full tie at
  // (200, 1) that only the input index can break.
  const std::vector<std::vector<Key>> schedule{
      {{100, 0, 0}, {200, 1, 0}, {400, 2, 0}},
      {{150, 0, 1}, {200, 1, 1}, {300, 2, 1}},
  };

  std::vector<TraceFile> traces;
  std::vector<std::vector<trace::MetricSample>> series;
  for (const auto& worker : schedule) {
    TraceFile trace = stream(worker.front().stream, {});
    std::vector<trace::MetricSample> samples;
    for (const Key& key : worker) {
      trace.events.push_back(at(key.time, key.seq, key.stream, 0));
      trace::MetricSample sample;
      sample.virtualTime = key.time;
      sample.events = key.seq;  // the stitch key's second component
      sample.states = key.stream;
      samples.push_back(sample);
    }
    traces.push_back(std::move(trace));
    series.push_back(std::move(samples));
  }

  const TraceFile merged = mergeTraces(traces);
  const std::vector<trace::MetricSample> stitched =
      trace::stitchSamples(series);
  ASSERT_EQ(merged.events.size(), stitched.size());
  for (std::size_t i = 0; i < stitched.size(); ++i) {
    EXPECT_EQ(merged.events[i].time, stitched[i].virtualTime) << i;
    EXPECT_EQ(merged.events[i].stream, stitched[i].states) << i;
  }
}

// --- End-to-end determinism --------------------------------------------------

std::string fileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(TraceMerge, MergedTraceIsByteIdenticalForAnyWorkerCount) {
  trace::CollectScenarioConfig config;
  config.gridWidth = 5;
  config.gridHeight = 5;
  config.simulationTime = 3000;
  config.mapper = MapperKind::kSds;

  std::string reference;
  for (const unsigned workers : {1u, 2u, 4u}) {
    const fs::path dir = fs::path(::testing::TempDir()) /
                         ("sde_trace_merge_w" + std::to_string(workers));
    fs::remove_all(dir);
    ParallelConfig parallel;
    parallel.workers = workers;
    parallel.traceDir = dir.string();
    const trace::PartitionedCollectResult run =
        trace::runCollectPartitioned(config, parallel, /*vars=*/2);
    ASSERT_EQ(run.result.outcome, RunOutcome::kCompleted);

    const fs::path mergedPath = dir / "merged.trc";
    ASSERT_TRUE(fs::exists(mergedPath)) << mergedPath;
    const std::string bytes = fileBytes(mergedPath);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "workers = " << workers;
    }

    // The merged trace is well-formed and covers every job stream.
    const TraceFile merged = readTraceFile(mergedPath.string());
    EXPECT_TRUE(merged.header.merged);
    const TraceSummary summary = summarizeTrace(merged);
    EXPECT_EQ(summary.eventsByStream.size(), run.result.jobs.size());
    for (const std::string& violation : validateTrace(merged))
      ADD_FAILURE() << violation;
    fs::remove_all(dir);
  }
  EXPECT_FALSE(reference.empty());
}

}  // namespace
}  // namespace sde::obs
