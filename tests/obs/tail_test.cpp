// Incremental trace tailing: a TraceTailer polling a growing .trc file
// must see exactly the events a whole-file read sees, cope with partial
// flushes mid-record, and reject structurally corrupt bytes instead of
// waiting on them forever.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/summary.hpp"
#include "obs/tail.hpp"
#include "obs/trace_io.hpp"

namespace sde::obs {
namespace {

namespace fs = std::filesystem;

std::string freshPath(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / ("sde_" + name);
  fs::remove(path);
  return path.string();
}

TraceEvent forkEvent(std::uint64_t seq, std::uint32_t node,
                     ForkCause cause) {
  TraceEvent e;
  e.kind = TraceEventKind::kStateFork;
  e.detail = static_cast<std::uint8_t>(cause);
  e.node = node;
  e.time = 100 * seq;
  e.seq = seq;
  e.stateId = seq + 1;
  e.parentStateId = 0;
  return e;
}

TEST(TraceTailer, SeesEventsAsTheFileGrowsAndMatchesWholeFileRead) {
  const std::string path = freshPath("tail_grow.trc");
  TraceTailer tailer(path);
  EXPECT_EQ(tailer.poll(), 0u);  // file does not exist yet

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  TraceHeader header;
  header.numNodes = 4;
  header.mapper = "sds";
  header.scenario = "tail test";
  StreamTraceSink sink(os, header);
  os.flush();

  EXPECT_EQ(tailer.poll(), 0u);  // header only, no events yet
  EXPECT_TRUE(tailer.headerParsed());
  EXPECT_EQ(tailer.header().mapper, "sds");
  EXPECT_EQ(tailer.header().numNodes, 4u);

  for (std::uint64_t i = 0; i < 3; ++i)
    sink.emit(forkEvent(i, static_cast<std::uint32_t>(i % 4),
                        ForkCause::kBranch));
  os.flush();
  EXPECT_EQ(tailer.poll(), 3u);
  EXPECT_FALSE(tailer.finished());

  for (std::uint64_t i = 3; i < 8; ++i)
    sink.emit(forkEvent(i, static_cast<std::uint32_t>(i % 4),
                        ForkCause::kMapping));
  sink.close();
  os.flush();
  EXPECT_EQ(tailer.poll(), 5u);
  EXPECT_TRUE(tailer.finished());
  EXPECT_EQ(tailer.poll(), 0u);  // idempotent after the terminator

  const TraceSummary live = tailer.summary();
  const TraceSummary whole = summarizeTrace(readTraceFile(path));
  EXPECT_EQ(live.countsByKind, whole.countsByKind);
  EXPECT_EQ(live.forksBranch, whole.forksBranch);
  EXPECT_EQ(live.forksMapping, whole.forksMapping);
  EXPECT_EQ(live.forksByNode, whole.forksByNode);
  EXPECT_EQ(live.firstTime, whole.firstTime);
  EXPECT_EQ(live.lastTime, whole.lastTime);
  EXPECT_EQ(tailer.eventsSeen(), 8u);
}

TEST(TraceTailer, WaitsOnAPartialRecordInsteadOfMisparsing) {
  const std::string path = freshPath("tail_partial.trc");
  // Build a complete two-event trace in memory, then reveal it to the
  // tailer a few bytes at a time.
  std::string bytes;
  {
    std::ostringstream buffer;
    TraceHeader header;
    header.numNodes = 2;
    StreamTraceSink sink(buffer, header);
    sink.emit(forkEvent(0, 0, ForkCause::kBranch));
    sink.emit(forkEvent(1, 1, ForkCause::kFailure));
    sink.close();
    bytes = buffer.str();
  }

  TraceTailer tailer(path);
  std::size_t total = 0;
  // Feed in 7-byte slices — every header field and record boundary gets
  // split at some point.
  for (std::size_t at = 0; at < bytes.size(); at += 7) {
    const std::size_t n = std::min<std::size_t>(7, bytes.size() - at);
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os.write(bytes.data() + at, static_cast<std::streamsize>(n));
    os.flush();
    total += tailer.poll();
  }
  EXPECT_EQ(total, 2u);
  EXPECT_TRUE(tailer.finished());
  EXPECT_EQ(tailer.summary().forksBranch, 1u);
  EXPECT_EQ(tailer.summary().forksFailure, 1u);
}

TEST(TraceTailer, RejectsForeignMagic) {
  const std::string path = freshPath("tail_foreign.trc");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os << "DEFINITELY NOT A TRACE FILE, LONG ENOUGH TO PARSE";
  os.flush();
  TraceTailer tailer(path);
  EXPECT_THROW(tailer.poll(), TraceError);
}

TEST(TraceTailer, RejectsUnknownEventKindInSettledBytes) {
  const std::string path = freshPath("tail_badkind.trc");
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  TraceHeader header;
  header.numNodes = 1;
  StreamTraceSink sink(os, header);
  os.flush();
  TraceTailer tailer(path);
  EXPECT_EQ(tailer.poll(), 0u);
  ASSERT_TRUE(tailer.headerParsed());
  const char junk = static_cast<char>(0xEE);  // not a kind, not 0xFF
  os.write(&junk, 1);
  os.flush();
  EXPECT_THROW(tailer.poll(), TraceError);
}

}  // namespace
}  // namespace sde::obs
