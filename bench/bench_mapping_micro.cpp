// E11 — mapping-operation microbenchmarks (google-benchmark): the cost
// of running the full collect scenario under each algorithm at small
// grid sizes, plus isolated onLocalBranch/onTransmit costs on synthetic
// mapper populations. These quantify the constant factors behind the
// asymptotic story the macro benches tell.
#include <benchmark/benchmark.h>

#include "rime/apps.hpp"
#include "sde/engine.hpp"
#include "vm/builder.hpp"
#include "trace/scenario.hpp"

namespace {

using namespace sde;

void BM_CollectScenario(benchmark::State& state, MapperKind kind) {
  const auto side = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    trace::CollectScenarioConfig config;
    config.gridWidth = side;
    config.gridHeight = side;
    config.simulationTime = 3000;
    config.mapper = kind;
    trace::CollectScenario scenario(config);
    const auto result = scenario.run();
    benchmark::DoNotOptimize(result.states);
    state.counters["states"] = static_cast<double>(result.states);
    state.counters["groups"] = static_cast<double>(result.groups);
  }
}

// Repeated local branching on one node: COB forks the whole dscenario
// every time (O(k) per branch), COW/SDS only record membership (O(1)
// per dstate membership).
void BM_LocalBranchStorm(benchmark::State& state, MapperKind kind) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto rounds = static_cast<std::uint64_t>(state.range(1));
  vm::IRBuilder b("brancher");
  b.setGlobals(9);
  b.beginEntry(vm::Entry::kInit);
  b.constant(vm::Reg(3), 1);
  b.setTimer(1, vm::Reg(3));
  b.halt();
  b.beginEntry(vm::Entry::kTimer);
  b.makeSymbolic(vm::Reg(4), "bit", 1);
  auto yes = b.newLabel();
  auto join = b.newLabel();
  b.branch(vm::Reg(4), yes, join);
  b.bind(yes);
  b.jump(join);
  b.bind(join);
  b.constant(vm::Reg(3), 1);
  b.setTimer(1, vm::Reg(3));
  b.halt();
  const vm::Program program = b.finish();

  for (auto _ : state) {
    os::NetworkPlan plan(net::Topology::line(k));
    plan.runEverywhere(program);
    Engine engine(plan, kind);
    engine.run(rounds);  // one symbolic branch per node per round
    benchmark::DoNotOptimize(engine.numStates());
    state.counters["states"] = static_cast<double>(engine.numStates());
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_CollectScenario, COB, MapperKind::kCob)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectScenario, COW, MapperKind::kCow)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_CollectScenario, SDS, MapperKind::kSds)
    ->Arg(2)
    ->Arg(3)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

// COB's population is k*2^(k*rounds): keep k*rounds bounded.
BENCHMARK_CAPTURE(BM_LocalBranchStorm, COB, MapperKind::kCob)
    ->Args({2, 5})
    ->Args({4, 3})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LocalBranchStorm, COW, MapperKind::kCow)
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_LocalBranchStorm, SDS, MapperKind::kSds)
    ->Args({2, 8})
    ->Args({4, 8})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
