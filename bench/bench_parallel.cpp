// E14 — parallel dscenario execution (§VI): wall-clock and work-split
// behaviour of the partitioned runner on the Figure 10 collect scenario.
//
// For each mapper the bench runs the legacy monolithic engine once,
// then the partitioned fleet at 1/2/4/8 workers over the same partition
// plan, asserting the merged result digest is identical across worker
// counts and reporting speedup vs the legacy run. Two effects compose:
//  - work splitting: each job explores a pruned slice of the tree, and
//    state populations (hence per-event mapper and fork costs) shrink
//    superlinearly with the slice — visible even on one core;
//  - thread scaling: on a multi-core host the jobs overlap in time. On
//    a single-core host (CI containers) wall-clock speedup at >1
//    workers collapses to the work-splitting term alone.
//
// Usage: bench_parallel [--nodes 25|49|100] [--time T] [--vars B]
//                       [--mapper sds|cow|all] [--fleet N]
//
// With --fleet N the bench additionally runs the multi-process fleet
// (sde/fleet.hpp) at N worker processes over the same plan — the
// threads-vs-processes comparison row. The fleet digest must equal the
// thread rows' (process isolation and the shm query cache are
// unobservable); its wall-clock includes fork/coordination overhead,
// which is the honest price of crash isolation.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "sde/explode.hpp"
#include "sde/fleet.hpp"
#include "trace/scenario.hpp"
#include "trace/table.hpp"

namespace {

struct Options {
  std::uint32_t nodes = 49;
  std::uint64_t simulationTime = 5000;
  std::size_t vars = 2;
  std::string mapper = "all";
  unsigned fleet = 0;  // 0 = no fleet row
};

Options parseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::uint64_t {
      return i + 1 < argc ? std::strtoull(argv[++i], nullptr, 10) : 0;
    };
    if (arg == "--nodes")
      options.nodes = static_cast<std::uint32_t>(next());
    else if (arg == "--time")
      options.simulationTime = next();
    else if (arg == "--vars")
      options.vars = static_cast<std::size_t>(next());
    else if (arg == "--mapper" && i + 1 < argc)
      options.mapper = argv[++i];
    else if (arg == "--fleet")
      options.fleet = static_cast<unsigned>(next());
    else
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
  }
  return options;
}

// Makespan of the per-job engine times on `workers` cores under an LPT
// schedule — the wall-clock a host with that many free cores would see.
// On a single-core CI host the measured wall-clock degenerates to the
// sum of job times, so this is the honest thread-scaling figure.
double criticalPathSeconds(std::vector<double> jobSeconds, unsigned workers) {
  std::sort(jobSeconds.begin(), jobSeconds.end(), std::greater<>());
  std::vector<double> load(std::max(1u, workers), 0.0);
  for (const double seconds : jobSeconds)
    *std::min_element(load.begin(), load.end()) += seconds;
  return *std::max_element(load.begin(), load.end());
}

std::uint32_t sideOf(std::uint32_t nodes) {
  switch (nodes) {
    case 25:
      return 5;
    case 49:
      return 7;
    case 100:
      return 10;
    default:
      std::fprintf(stderr, "unsupported node count %u (use 25/49/100)\n",
                   nodes);
      std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sde;
  const Options options = parseArgs(argc, argv);
  const std::uint32_t side = sideOf(options.nodes);

  std::vector<MapperKind> mappers;
  if (options.mapper == "sds")
    mappers = {MapperKind::kSds};
  else if (options.mapper == "cow")
    mappers = {MapperKind::kCow};
  else if (options.mapper == "all")
    mappers = {MapperKind::kSds, MapperKind::kCow};
  else {
    std::fprintf(stderr, "unknown mapper '%s' (use sds/cow/all)\n",
                 options.mapper.c_str());
    return 1;
  }

  std::printf("=== Parallel execution, %u-node scenario (grid %ux%u, %llu "
              "time units, %zu partition vars requested; host has %u "
              "hardware threads) ===\n",
              options.nodes, side, side,
              static_cast<unsigned long long>(options.simulationTime),
              options.vars, std::thread::hardware_concurrency());

  for (const MapperKind kind : mappers) {
    trace::CollectScenarioConfig config;
    config.gridWidth = side;
    config.gridHeight = side;
    config.simulationTime = options.simulationTime;
    config.mapper = kind;

    // Legacy baseline: one monolithic engine over the full tree.
    trace::CollectScenario legacy(config);
    const trace::ScenarioResult base = legacy.run();
    // The scenario may supply fewer variables than requested (the route
    // only has so many hops); report what the plan actually uses.
    const std::size_t actualVars = legacy.partitionVariables(options.vars).size();

    trace::TextTable table({"Config", "Outcome", "Wall", "Speedup",
                            "Critical path", "CP speedup", "States",
                            "Owned scenarios", "Digest"});
    table.addRow({"legacy", std::string(runOutcomeName(base.outcome)),
                  trace::formatDuration(base.wallSeconds), "1.00x",
                  trace::formatDuration(base.wallSeconds), "1.00x",
                  trace::formatCount(base.states),
                  trace::formatCount(countScenarios(legacy.engine().mapper())),
                  "-"});

    std::uint64_t digest = 0;
    bool digestsAgree = true;
    std::vector<double> sequentialJobSeconds;
    for (const unsigned workers : {1u, 2u, 4u, 8u}) {
      ParallelConfig parallel;
      parallel.workers = workers;
      // Fingerprint extraction enumerates every owned dscenario (~1M at
      // 7x7) which the legacy baseline never does; skip it so the table
      // compares engine work. Ownership counting stays exact (it is
      // pure arithmetic over the per-node choice lists) and the digest
      // still covers per-job state/event/group/owned counts and stats.
      parallel.collectStateFingerprints = false;
      parallel.collectScenarioFingerprints = false;
      const trace::PartitionedCollectResult run =
          trace::runCollectPartitioned(config, parallel, options.vars);
      const ParallelResult& result = run.result;
      if (workers == 1)
        digest = result.fingerprintDigest();
      else if (result.fingerprintDigest() != digest)
        digestsAgree = false;

      // Per-job times from the sequential run only: with more workers
      // than cores the jobs time-slice, inflating each job's measured
      // wall time even though the total work is unchanged.
      if (workers == 1)
        for (const JobResult& job : result.jobs)
          sequentialJobSeconds.push_back(job.wallSeconds);
      const double critical =
          criticalPathSeconds(sequentialJobSeconds, workers);

      char label[32];
      std::snprintf(label, sizeof label, "%u worker%s", workers,
                    workers == 1 ? "" : "s");
      char speedup[32];
      std::snprintf(speedup, sizeof speedup, "%.2fx",
                    base.wallSeconds / result.wallSeconds);
      char cpSpeedup[32];
      std::snprintf(cpSpeedup, sizeof cpSpeedup, "%.2fx",
                    base.wallSeconds / critical);
      char digestHex[32];
      std::snprintf(digestHex, sizeof digestHex, "%016llx",
                    static_cast<unsigned long long>(
                        result.fingerprintDigest()));
      table.addRow({label, std::string(runOutcomeName(result.outcome)),
                    trace::formatDuration(result.wallSeconds), speedup,
                    trace::formatDuration(critical), cpSpeedup,
                    trace::formatCount(result.totalStates),
                    trace::formatCount(result.totalScenariosOwned), digestHex});
    }

    // Threads-vs-processes: the same plan as a multi-process fleet.
    std::uint64_t shmHits = 0;
    if (options.fleet > 0) {
      namespace fs = std::filesystem;
      const fs::path dir =
          fs::temp_directory_path() /
          ("sde_bench_fleet_" + std::to_string(static_cast<long>(::getpid())));
      fs::remove_all(dir);
      FleetConfig fleet;
      fleet.processes = options.fleet;
      fleet.collectStateFingerprints = false;
      fleet.collectScenarioFingerprints = false;
      fleet.checkpointDir = dir.string();
      const FleetResult run =
          trace::runCollectFleet(config, fleet, options.vars);
      shmHits = run.shmHits;
      if (run.result.fingerprintDigest() != digest) digestsAgree = false;

      char label[40];
      std::snprintf(label, sizeof label, "%u procs (fleet)", options.fleet);
      char speedup[32];
      std::snprintf(speedup, sizeof speedup, "%.2fx",
                    base.wallSeconds / run.result.wallSeconds);
      const double critical =
          criticalPathSeconds(sequentialJobSeconds, options.fleet);
      char cpSpeedup[32];
      std::snprintf(cpSpeedup, sizeof cpSpeedup, "%.2fx",
                    base.wallSeconds / critical);
      char digestHex[32];
      std::snprintf(digestHex, sizeof digestHex, "%016llx",
                    static_cast<unsigned long long>(
                        run.result.fingerprintDigest()));
      table.addRow({label, std::string(runOutcomeName(run.result.outcome)),
                    trace::formatDuration(run.result.wallSeconds), speedup,
                    trace::formatDuration(critical), cpSpeedup,
                    trace::formatCount(run.result.totalStates),
                    trace::formatCount(run.result.totalScenariosOwned),
                    digestHex});
      fs::remove_all(dir);
    }

    std::printf("--- %s (%zu partition vars -> %zu jobs) ---\n%s",
                std::string(mapperKindName(kind)).c_str(), actualVars,
                static_cast<std::size_t>(1) << actualVars,
                table.render().c_str());
    std::printf("merged digests %s across worker counts%s\n",
                digestsAgree ? "IDENTICAL" : "DIFFER (BUG)",
                options.fleet > 0 ? " and the process fleet" : "");
    if (options.fleet > 0)
      std::printf("fleet shm query cache: %llu cross-process hits\n",
                  static_cast<unsigned long long>(shmHits));
    std::printf("\n");
    if (!digestsAgree) return 1;
  }

  std::printf(
      "Interpretation: 'Speedup' is measured wall-clock; on a single-core "
      "host it only shows the work-splitting term (pruned per-job trees, "
      "smaller state populations). 'CP speedup' is the critical path of "
      "the measured per-job engine times scheduled on that many cores — "
      "the wall-clock a host with free cores would see.\n");
  return 0;
}
