// E9 — §IV-C limitation: scenarios where COW and SDS degrade towards
// COB. Network flooding over a full mesh maximises communication fan-out
// (every node transmits to its k-1 neighbours), so nearly every state is
// a target or rival and SDS's bystander saving vanishes. We contrast the
// ratios states(SDS)/states(COB) on the flooding mesh against the grid
// collect scenario, where bystanders dominate and SDS wins big.
#include <cstdio>

#include "trace/scenario.hpp"
#include "trace/table.hpp"

namespace {

using namespace sde;

struct Row {
  std::uint64_t states[3] = {0, 0, 0};
};

Row runFlood(std::uint32_t nodes, std::uint64_t simTime) {
  Row row;
  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    trace::FloodScenarioConfig config;
    config.nodes = nodes;
    config.fullMesh = true;
    config.simulationTime = simTime;
    config.mapper = kind;
    config.engine.maxStates = 400'000;
    config.engine.maxWallSeconds = 60;
    trace::FloodScenario scenario(config);
    row.states[static_cast<int>(kind)] = scenario.run().states;
  }
  return row;
}

Row runCollect(std::uint32_t side, std::uint64_t simTime) {
  Row row;
  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    trace::CollectScenarioConfig config;
    config.gridWidth = side;
    config.gridHeight = side;
    config.simulationTime = simTime;
    config.mapper = kind;
    config.engine.maxStates = 400'000;
    config.engine.maxWallSeconds = 60;
    trace::CollectScenario scenario(config);
    row.states[static_cast<int>(kind)] = scenario.run().states;
  }
  return row;
}

std::string ratio(std::uint64_t a, std::uint64_t b) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", static_cast<double>(a) /
                                             static_cast<double>(b));
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "SS IV-C: adversarial communication patterns. Flooding on a full "
      "mesh leaves no bystanders; SDS and COW lose their advantage and "
      "approach COB. The grid collect scenario is shown for contrast.\n\n");

  trace::TextTable table({"Scenario", "COB states", "COW states",
                          "SDS states", "COW/COB", "SDS/COB"});

  const struct {
    const char* name;
    Row row;
  } experiments[] = {
      {"flood mesh k=4 (2 waves)", runFlood(4, 2500)},
      {"flood mesh k=5 (2 waves)", runFlood(5, 2500)},
      {"flood mesh k=6 (1 wave)", runFlood(6, 1500)},
      {"collect grid 4x4 (4 pkts)", runCollect(4, 4000)},
      {"collect grid 5x5 (4 pkts)", runCollect(5, 4000)},
  };

  for (const auto& experiment : experiments) {
    const Row& row = experiment.row;
    table.addRow({experiment.name, trace::formatCount(row.states[0]),
                  trace::formatCount(row.states[1]),
                  trace::formatCount(row.states[2]),
                  ratio(row.states[1], row.states[0]),
                  ratio(row.states[2], row.states[0])});
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nExpected shape: SDS/COB close to 1 on the flooding mesh (no "
      "bystanders to save), but far below 1 on the grid collect.\n");
  return 0;
}
