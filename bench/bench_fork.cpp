// E17 — fork-cost microbenchmarks (google-benchmark): how much work a
// single ExecutionState::fork does as the state's append-only histories
// grow, persistent structural sharing vs the legacy eager deep copy.
// The per-iteration `copied_elems` counter (from support::persistStats)
// is the payload-copy cost the tentpole claims is O(1): flat in history
// size for the persistent representation, linear for the legacy one.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "support/pvector.hpp"
#include "vm/builder.hpp"
#include "vm/state.hpp"

namespace {

using namespace sde;

vm::Program noopProgram() {
  vm::IRBuilder b("noop");
  b.setGlobals(2);
  b.beginEntry(vm::Entry::kInit);
  b.halt();
  return b.finish();
}

// A state whose every chunked history holds `records` entries — the
// shape a long-lived state has after thousands of events.
vm::ExecutionState grownState(expr::Context& ctx, const vm::Program& program,
                              std::uint64_t records) {
  vm::ExecutionState state(1, 1, program);
  state.space.initGlobals(ctx, 2);
  for (std::uint64_t i = 0; i < records; ++i) {
    state.constraints.add(
        ctx.ult(ctx.variable("v", 32), ctx.constant(i + 1, 32)));
    state.commLog.push_back({(i & 1) == 0, 2, i, i * 31, i});
    state.decisions.push_back({ctx.variable("d", 1), (i & 1) == 0});
    state.symbolics.push_back(ctx.variable("s" + std::to_string(i), 8));
  }
  return state;
}

void BM_Fork(benchmark::State& state, bool deepCopy) {
  const auto records = static_cast<std::uint64_t>(state.range(0));
  expr::Context ctx;
  const vm::Program program = noopProgram();
  vm::ExecutionState original = grownState(ctx, program, records);

  support::setPersistDeepCopyMode(deepCopy);
  const std::uint64_t advertised = original.forkCopyCost();
  const std::uint64_t sharedChunks = original.forkSharedChunks();
  auto& stats = support::persistStats();
  const std::uint64_t copiedBefore =
      stats.elementsCopied.load(std::memory_order_relaxed);
  vm::StateId next = 100;
  std::uint64_t iterations = 0;
  for (auto _ : state) {
    auto clone = original.fork(next++);
    benchmark::DoNotOptimize(clone->configHash());
    ++iterations;
  }
  support::setPersistDeepCopyMode(false);

  const std::uint64_t copied =
      stats.elementsCopied.load(std::memory_order_relaxed) - copiedBefore;
  state.counters["copied_elems"] = benchmark::Counter(
      static_cast<double>(copied) / static_cast<double>(iterations));
  state.counters["advertised"] = static_cast<double>(advertised);
  state.counters["shared_chunks"] = static_cast<double>(sharedChunks);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Fork, persistent, false)
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_Fork, deep_copy, true)
    ->Arg(64)
    ->Arg(512)
    ->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
