// E12 — solver-stack ablation (google-benchmark): the optimisation
// layers (independence slicing, interval refutation, caching) against
// the bare enumerative core, on the query mix an SDE run produces:
// long conjunctions of per-node constraints with narrow per-query
// relevance.
//
// E18 — layered-pipeline breakdown on replayed query streams: records
// the raw conjunction stream of real 5x5 / 7x7 collect-scenario
// explorations (Solver::setQueryRecorder), then replays each stream
// against differently composed SolverPipelines, reporting per-layer
// traffic/hit-rate/self-time and the whole-query latency distribution.
// CSV output: bench_results/solver_layers.csv and
// bench_results/solver_latency.csv.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sde/explode.hpp"
#include "sde/testcase.hpp"
#include "solver/pipeline.hpp"
#include "solver/solver.hpp"
#include "trace/scenario.hpp"

namespace {

using namespace sde;

// A constraint set shaped like a distributed path condition: `nodes`
// independent clusters of three constraints over small bitvectors.
solver::ConstraintSet makeDistributedConstraints(expr::Context& ctx,
                                                 unsigned nodes) {
  solver::ConstraintSet cs;
  for (unsigned n = 0; n < nodes; ++n) {
    const std::string prefix = "n" + std::to_string(n);
    expr::Ref drop = ctx.variable(prefix + ".drop", 1);
    expr::Ref seq = ctx.variable(prefix + ".seq", 8);
    cs.add(ctx.logicalNot(drop));
    cs.add(ctx.ult(seq, ctx.constant(100, 8)));
    cs.add(ctx.ne(seq, ctx.constant(7, 8)));
  }
  return cs;
}

void BM_MayBeTrue(benchmark::State& state, bool independence, bool intervals,
                  bool cache) {
  expr::Context ctx;
  solver::SolverConfig config;
  config.useIndependence = independence;
  config.useIntervals = intervals;
  config.useCache = cache;
  solver::Solver solver(ctx, config);
  const auto nodes = static_cast<unsigned>(state.range(0));
  const solver::ConstraintSet cs = makeDistributedConstraints(ctx, nodes);
  expr::Ref seq0 = ctx.variable("n0.seq", 8);
  int k = 0;
  for (auto _ : state) {
    // Rotate through query constants so the cache layer is exercised the
    // way an engine run exercises it (repeats with occasional novelty).
    const int v = (k++ % 8) + 1;
    benchmark::DoNotOptimize(
        solver.mayBeTrue(cs, ctx.eq(seq0, ctx.constant(v, 8))));
  }
  state.counters["queries"] =
      static_cast<double>(solver.stats().get("solver.queries"));
  state.counters["enum_runs"] =
      static_cast<double>(solver.stats().get("solver.enum_runs"));
}

void BM_GetModel(benchmark::State& state) {
  expr::Context ctx;
  solver::Solver solver(ctx);
  const auto nodes = static_cast<unsigned>(state.range(0));
  const solver::ConstraintSet cs = makeDistributedConstraints(ctx, nodes);
  for (auto _ : state) {
    auto model = solver.getModel(cs);
    benchmark::DoNotOptimize(model);
  }
}

void BM_BranchClassify(benchmark::State& state) {
  // The hot path of symbolic execution: classify a fresh branch
  // condition against an existing path condition.
  expr::Context ctx;
  solver::Solver solver(ctx);
  const solver::ConstraintSet cs = makeDistributedConstraints(ctx, 8);
  expr::Ref seq3 = ctx.variable("n3.seq", 8);
  int k = 0;
  for (auto _ : state) {
    const int v = k++ % 100;
    benchmark::DoNotOptimize(
        solver.classify(cs, ctx.ult(seq3, ctx.constant(v, 8))));
  }
}

// --- E18: replayed-stream pipeline breakdown ---------------------------------

struct RecordedQuery {
  std::vector<expr::Ref> conjunction;
  bool needModel = false;
};

struct ReplayOutcome {
  std::vector<std::uint64_t> queryNanos;  // one entry per replayed query
  // One row per layer: name, queries, hits, self-nanos.
  struct LayerRow {
    std::string name;
    std::uint64_t queries = 0;
    std::uint64_t hits = 0;
    std::uint64_t nanos = 0;
  };
  std::vector<LayerRow> layers;
};

// Records the solver query stream of test-case generation over the
// run's dscenarios — the paper's "test cases for all nodes in all
// dscenarios" payoff, and the solver-heaviest phase of a collect run
// (exploration itself branches in the failure models, not the solver).
// Caps at `maxScenarios` dscenarios and reports what was dropped.
std::vector<RecordedQuery> recordQueryStream(trace::CollectScenario& scenario,
                                             std::uint64_t maxScenarios) {
  std::vector<RecordedQuery> stream;
  scenario.engine().solver().setQueryRecorder(
      [&stream](std::span<const expr::Ref> conjunction, bool needModel) {
        stream.push_back(
            {{conjunction.begin(), conjunction.end()}, needModel});
      });
  const std::uint64_t total = countScenarios(scenario.engine().mapper());
  ExplosionIterator it(scenario.engine().mapper());
  std::uint64_t used = 0;
  while (used < maxScenarios) {
    const auto dscenario = it.next();
    if (!dscenario) break;
    ++used;
    benchmark::DoNotOptimize(
        generateScenarioTestCases(scenario.engine().solver(), *dscenario));
  }
  scenario.engine().solver().setQueryRecorder(nullptr);
  if (used < total)
    std::printf("  (capped at %llu of %llu dscenarios)\n",
                static_cast<unsigned long long>(used),
                static_cast<unsigned long long>(total));
  return stream;
}

// Replays `queries` (owned by the recording engine's context, which
// outlives the replay) through a fresh pipeline composed per `config`.
ReplayOutcome replayStream(expr::Context& ctx,
                           const std::vector<RecordedQuery>& queries,
                           const solver::SolverConfig& config) {
  ReplayOutcome outcome;
  solver::QueryCache cache;
  support::StatsRegistry stats;
  solver::SolverPipeline pipeline(ctx, config, cache, stats);
  outcome.queryNanos.reserve(queries.size());
  for (const auto& query : queries) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(pipeline.solve(query.conjunction, query.needModel));
    const auto t1 = std::chrono::steady_clock::now();
    outcome.queryNanos.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  for (const auto& layer : pipeline.layers()) {
    outcome.layers.push_back({std::string(layer->name()),
                              layer->counters().queries,
                              layer->counters().hits,
                              layer->counters().nanos});
  }
  return outcome;
}

std::uint64_t percentile(std::vector<std::uint64_t> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

void runReplayExperiment(bool quick) {
  namespace fs = std::filesystem;
  fs::create_directories("bench_results");
  std::ofstream layersCsv("bench_results/solver_layers.csv");
  std::ofstream latencyCsv("bench_results/solver_latency.csv");
  layersCsv << "scenario,composition,layer,queries,hits,hit_rate,self_nanos\n";
  latencyCsv << "scenario,composition,queries,total_nanos,mean_nanos,"
                "p50_nanos,p90_nanos,p99_nanos,max_nanos\n";

  struct Composition {
    const char* name;
    solver::SolverConfig config;
  };
  std::vector<Composition> compositions;
  {
    Composition full{"full", {}};
    compositions.push_back(full);
    Composition noSubsumption{"no_subsumption", {}};
    noSubsumption.config.useSubsumption = false;
    compositions.push_back(noSubsumption);
    Composition noCache{"no_cache", {}};
    noCache.config.useCache = false;
    noCache.config.useSubsumption = false;
    compositions.push_back(noCache);
  }

  struct Grid {
    const char* name;
    std::uint32_t side;
  };
  std::vector<Grid> grids{{"5x5", 5}};
  if (!quick) grids.push_back({"7x7", 7});

  for (const Grid& grid : grids) {
    trace::CollectScenarioConfig config;
    config.gridWidth = grid.side;
    config.gridHeight = grid.side;
    if (quick) config.simulationTime = 3000;
    trace::CollectScenario scenario(config);
    scenario.run();
    const std::vector<RecordedQuery> stream =
        recordQueryStream(scenario, quick ? 200 : 2000);
    std::printf("replay %s: %zu queries recorded\n", grid.name,
                stream.size());

    for (const Composition& composition : compositions) {
      const ReplayOutcome outcome =
          replayStream(scenario.engine().context(), stream,
                       composition.config);
      std::uint64_t total = 0;
      for (const auto& row : outcome.layers) {
        const double hitRate =
            row.queries == 0
                ? 0.0
                : static_cast<double>(row.hits) /
                      static_cast<double>(row.queries);
        layersCsv << grid.name << ',' << composition.name << ',' << row.name
                  << ',' << row.queries << ',' << row.hits << ',' << hitRate
                  << ',' << row.nanos << '\n';
      }
      for (const std::uint64_t nanos : outcome.queryNanos) total += nanos;
      std::vector<std::uint64_t> sorted = outcome.queryNanos;
      std::sort(sorted.begin(), sorted.end());
      const double mean =
          sorted.empty() ? 0.0
                         : static_cast<double>(total) /
                               static_cast<double>(sorted.size());
      latencyCsv << grid.name << ',' << composition.name << ','
                 << sorted.size() << ',' << total << ',' << mean << ','
                 << percentile(sorted, 0.50) << ','
                 << percentile(sorted, 0.90) << ','
                 << percentile(sorted, 0.99) << ','
                 << (sorted.empty() ? 0 : sorted.back()) << '\n';
      std::printf("  %-16s total %.2f ms over %zu queries\n",
                  composition.name, static_cast<double>(total) / 1e6,
                  sorted.size());
    }
  }
  std::printf(
      "wrote bench_results/solver_layers.csv and "
      "bench_results/solver_latency.csv\n");
}

// The shared-cache payoff in the fleet setting (the acceptance
// experiment): a partitioned run with test-case generation, shared
// query cache on vs off, reporting the fleet's aggregate solver
// self-time (sum of per-layer nanos across jobs) and enumeration count.
void runSharedCacheExperiment(bool quick) {
  std::ofstream csv("bench_results/solver_shared_cache.csv");
  csv << "scenario,workers,shared_cache,queries,enum_runs,shared_hits,"
         "solver_self_nanos,wall_seconds\n";
  const std::uint32_t side = quick ? 5 : 7;
  const std::string name = std::to_string(side) + "x" + std::to_string(side);
  for (const bool shared : {false, true}) {
    trace::CollectScenarioConfig config;
    config.gridWidth = side;
    config.gridHeight = side;
    config.simulationTime = quick ? 2500 : 4000;
    ParallelConfig parallel;
    parallel.workers = 4;
    parallel.collectTestcases = true;
    parallel.sharedQueryCache = shared;
    const trace::PartitionedCollectResult run =
        trace::runCollectPartitioned(config, parallel, /*vars=*/2);
    std::uint64_t selfNanos = 0;
    for (const auto& [key, value] : run.result.stats.all())
      if (key.starts_with("solver.layer.") && key.ends_with(".nanos"))
        selfNanos += value;
    csv << name << ",4," << (shared ? "on" : "off") << ','
        << run.result.stats.get("solver.queries") << ','
        << run.result.stats.get("solver.enum_runs") << ','
        << run.result.stats.get("solver.shared_hits") << ',' << selfNanos
        << ',' << run.result.wallSeconds << '\n';
    std::printf(
        "shared cache %-3s (%s, 4 workers): solver self-time %.2f ms, "
        "%llu enum runs, %llu shared hits\n",
        shared ? "on" : "off", name.c_str(),
        static_cast<double>(selfNanos) / 1e6,
        static_cast<unsigned long long>(
            run.result.stats.get("solver.enum_runs")),
        static_cast<unsigned long long>(
            run.result.stats.get("solver.shared_hits")));
  }
  std::printf("wrote bench_results/solver_shared_cache.csv\n");
}

}  // namespace

BENCHMARK_CAPTURE(BM_MayBeTrue, full_stack, true, true, true)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_MayBeTrue, no_independence, false, true, true)
    ->Arg(4)
    ->Arg(16);
BENCHMARK_CAPTURE(BM_MayBeTrue, no_intervals, true, false, true)
    ->Arg(4)
    ->Arg(16);
BENCHMARK_CAPTURE(BM_MayBeTrue, no_cache, true, true, false)
    ->Arg(4)
    ->Arg(16);
BENCHMARK_CAPTURE(BM_MayBeTrue, bare_enumeration, false, false, false)
    ->Arg(4)
    ->Arg(16);

BENCHMARK(BM_GetModel)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_BranchClassify);

int main(int argc, char** argv) {
  bool quick = false;
  bool replayOnly = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
    if (std::string(argv[i]) == "--replay-only") replayOnly = true;
  }
  runReplayExperiment(quick);
  runSharedCacheExperiment(quick);
  if (replayOnly) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
