// E12 — solver-stack ablation (google-benchmark): the optimisation
// layers (independence slicing, interval refutation, caching) against
// the bare enumerative core, on the query mix an SDE run produces:
// long conjunctions of per-node constraints with narrow per-query
// relevance.
#include <benchmark/benchmark.h>

#include "solver/solver.hpp"

namespace {

using namespace sde;

// A constraint set shaped like a distributed path condition: `nodes`
// independent clusters of three constraints over small bitvectors.
solver::ConstraintSet makeDistributedConstraints(expr::Context& ctx,
                                                 unsigned nodes) {
  solver::ConstraintSet cs;
  for (unsigned n = 0; n < nodes; ++n) {
    const std::string prefix = "n" + std::to_string(n);
    expr::Ref drop = ctx.variable(prefix + ".drop", 1);
    expr::Ref seq = ctx.variable(prefix + ".seq", 8);
    cs.add(ctx.logicalNot(drop));
    cs.add(ctx.ult(seq, ctx.constant(100, 8)));
    cs.add(ctx.ne(seq, ctx.constant(7, 8)));
  }
  return cs;
}

void BM_MayBeTrue(benchmark::State& state, bool independence, bool intervals,
                  bool cache) {
  expr::Context ctx;
  solver::SolverConfig config;
  config.useIndependence = independence;
  config.useIntervals = intervals;
  config.useCache = cache;
  solver::Solver solver(ctx, config);
  const auto nodes = static_cast<unsigned>(state.range(0));
  const solver::ConstraintSet cs = makeDistributedConstraints(ctx, nodes);
  expr::Ref seq0 = ctx.variable("n0.seq", 8);
  int k = 0;
  for (auto _ : state) {
    // Rotate through query constants so the cache layer is exercised the
    // way an engine run exercises it (repeats with occasional novelty).
    const int v = (k++ % 8) + 1;
    benchmark::DoNotOptimize(
        solver.mayBeTrue(cs, ctx.eq(seq0, ctx.constant(v, 8))));
  }
  state.counters["queries"] =
      static_cast<double>(solver.stats().get("solver.queries"));
  state.counters["enum_runs"] =
      static_cast<double>(solver.stats().get("solver.enum_runs"));
}

void BM_GetModel(benchmark::State& state) {
  expr::Context ctx;
  solver::Solver solver(ctx);
  const auto nodes = static_cast<unsigned>(state.range(0));
  const solver::ConstraintSet cs = makeDistributedConstraints(ctx, nodes);
  for (auto _ : state) {
    auto model = solver.getModel(cs);
    benchmark::DoNotOptimize(model);
  }
}

void BM_BranchClassify(benchmark::State& state) {
  // The hot path of symbolic execution: classify a fresh branch
  // condition against an existing path condition.
  expr::Context ctx;
  solver::Solver solver(ctx);
  const solver::ConstraintSet cs = makeDistributedConstraints(ctx, 8);
  expr::Ref seq3 = ctx.variable("n3.seq", 8);
  int k = 0;
  for (auto _ : state) {
    const int v = k++ % 100;
    benchmark::DoNotOptimize(
        solver.classify(cs, ctx.ult(seq3, ctx.constant(v, 8))));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_MayBeTrue, full_stack, true, true, true)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_MayBeTrue, no_independence, false, true, true)
    ->Arg(4)
    ->Arg(16);
BENCHMARK_CAPTURE(BM_MayBeTrue, no_intervals, true, false, true)
    ->Arg(4)
    ->Arg(16);
BENCHMARK_CAPTURE(BM_MayBeTrue, no_cache, true, true, false)
    ->Arg(4)
    ->Arg(16);
BENCHMARK_CAPTURE(BM_MayBeTrue, bare_enumeration, false, false, false)
    ->Arg(4)
    ->Arg(16);

BENCHMARK(BM_GetModel)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_BranchClassify);

BENCHMARK_MAIN();
