// E13 — §VI future work: parallelisation potential. The paper plans to
// "identify the sets of states which can be safely offloaded on other
// cores". Our partition module computes exactly those sets (connected
// components of the state–group membership graph). This bench reports,
// per algorithm and scenario, how many independently executable
// components exist and the resulting upper bound on parallel speedup.
#include <cstdio>

#include "sde/partition.hpp"
#include "trace/scenario.hpp"
#include "trace/table.hpp"

int main() {
  using namespace sde;

  std::printf(
      "SS VI parallelisation: independently executable state sets per "
      "algorithm.\nmax speedup = total states / largest component "
      "(perfectly balanced cores).\n\n");

  trace::TextTable table({"Scenario", "Algorithm", "States", "Components",
                          "Largest", "Max speedup"});

  for (const auto& [side, simTime] :
       {std::pair<std::uint32_t, std::uint64_t>{3, 5000}, {4, 5000},
        {5, 4000}}) {
    for (const MapperKind kind :
         {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
      trace::CollectScenarioConfig config;
      config.gridWidth = side;
      config.gridHeight = side;
      config.simulationTime = simTime;
      config.mapper = kind;
      config.engine.maxStates = 400'000;
      config.engine.maxWallSeconds = 60;
      trace::CollectScenario scenario(config);
      const auto result = scenario.run();
      const PartitionReport report =
          partitionStates(scenario.engine().mapper());

      char speedup[32];
      std::snprintf(speedup, sizeof speedup, "%.1fx", report.maxSpeedup());
      table.addRow({std::to_string(side) + "x" + std::to_string(side) +
                        (result.outcome == RunOutcome::kCompleted
                             ? ""
                             : " (aborted)"),
                    std::string(mapperKindName(kind)),
                    trace::formatCount(report.states),
                    trace::formatCount(report.components),
                    trace::formatCount(report.largestComponent), speedup});
    }
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: COB fragments into one component per dscenario "
      "(embarrassingly parallel but each core re-executes duplicates); "
      "SDS's compactness concentrates states into fewer components — the "
      "price of sharing. The paper's offloading strategy would split "
      "along these component boundaries.\n");
  return 0;
}
