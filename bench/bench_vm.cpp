// E23 — VM hot-path microbenchmarks: dispatch strategy A/B and arena
// interning vs per-node heap allocation, isolated from the SDE layer.
//
// Two workloads exercise the interpreter through Interpreter::runEvent
// with a minimal effect sink and fully concrete data (no forks, no
// solver time), so the measured delta is dispatch + interning cost:
//
//   alu_loop     const/ALU-heavy checksum loop — the const+alu and
//                alu+br superinstruction shapes
//   global_walk  globals-segment walk — loadg/storeg traffic plus the
//                loadg+br / const+storeg shapes
//
// Each workload runs under every DispatchMode; the arena benchmark
// interns a fresh-node-heavy expression stream into a default Context
// (256 KiB arena blocks) and into a Context(1) whose degenerate blocks
// make every node an individual allocation — the pre-arena layout.
//
// Outputs (schema-driven, trace/csv.hpp):
//   <outdir>/vm_dispatch.csv   workload,dispatch,events,instructions,
//                              wall_s,ns_per_instr
//   <outdir>/vm_arena.csv      mode,nodes,build_s,reintern_s,
//                              ns_per_node,bytes_allocated,
//                              bytes_reserved,blocks
//
// Usage: bench_vm [--outdir DIR] [--events N] [--arena-nodes N]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "solver/solver.hpp"
#include "trace/csv.hpp"
#include "trace/table.hpp"
#include "vm/builder.hpp"
#include "vm/interp.hpp"

namespace {

using namespace sde;

struct Options {
  std::string outdir = "bench_results";
  std::uint64_t events = 400;       // handler dispatches per measurement
  std::uint64_t arenaNodes = 500'000;  // fresh nodes per arena run
};

Options parseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::uint64_t {
      return i + 1 < argc ? std::strtoull(argv[++i], nullptr, 10) : 0;
    };
    if (arg == "--outdir" && i + 1 < argc)
      options.outdir = argv[++i];
    else if (arg == "--events")
      options.events = next();
    else if (arg == "--arena-nodes")
      options.arenaNodes = next();
    else
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
  }
  return options;
}

double seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Minimal effect sink: the workloads are concrete, so a fork would be a
// workload bug; sends/logs are counted and dropped.
class NullSink final : public vm::EffectSink {
 public:
  vm::ExecutionState& forkState(vm::ExecutionState& original) override {
    (void)original;
    SDE_ASSERT(false, "bench workloads must not fork");
    std::abort();
  }
  void onSend(vm::ExecutionState&, vm::NodeId,
              std::vector<expr::Ref>) override {
    ++sends;
  }
  std::uint64_t sends = 0;
};

// Checksum loop: tight const/ALU/branch kernel, ~6 instructions per
// iteration, dominated by the const+alu and (cmp)+br pair shapes.
vm::Program buildAluLoop(std::uint64_t iterations) {
  using vm::Op;
  using vm::Reg;
  vm::IRBuilder b("bench_alu_loop");
  b.setGlobals(1);
  b.beginEntry(vm::Entry::kTimer);
  const Reg counter(1), acc(2), scratch(3);
  b.constant(counter, static_cast<std::int64_t>(iterations));
  b.constant(acc, 0x9e3779b9);
  auto loop = b.newLabel();
  b.bind(loop);
  b.aluImm(Op::kMul, acc, acc, 6364136223846793005, scratch);
  b.aluImm(Op::kAdd, acc, acc, 1442695040888963407, scratch);
  b.aluImm(Op::kLShr, scratch, acc, 17, scratch);
  b.alu(Op::kXor, acc, acc, scratch);
  b.aluImm(Op::kSub, counter, counter, 1, scratch);
  b.branchIfNonZero(counter, loop);
  b.storeGlobal(acc, 0);
  b.ret();
  return b.finish();
}

// Globals walk: load/modify/store over the globals segment, exercising
// loadg/storeg and the loadg+br / const+storeg pair shapes.
vm::Program buildGlobalWalk(std::uint64_t iterations) {
  using vm::Op;
  using vm::Reg;
  vm::IRBuilder b("bench_global_walk");
  constexpr std::uint64_t kCells = 16;
  b.setGlobals(kCells);
  b.beginEntry(vm::Entry::kTimer);
  const Reg counter(1), value(2), scratch(3);
  b.constant(counter, static_cast<std::int64_t>(iterations));
  auto loop = b.newLabel();
  b.bind(loop);
  for (std::uint64_t cell = 0; cell + 1 < kCells; cell += 2) {
    b.loadGlobal(value, cell);
    b.aluImm(Op::kAdd, value, value, static_cast<std::int64_t>(cell + 1),
             scratch);
    b.storeGlobal(value, cell + 1);
  }
  b.aluImm(Op::kSub, counter, counter, 1, scratch);
  b.branchIfNonZero(counter, loop);
  b.ret();
  return b.finish();
}

struct DispatchRow {
  std::string workload;
  std::string dispatch;
  std::uint64_t events = 0;
  std::uint64_t instructions = 0;
  double wallSeconds = 0;
  double nsPerInstr = 0;
};

std::span<const trace::CsvColumn<DispatchRow>> dispatchCsvSchema() {
  static constexpr trace::CsvColumn<DispatchRow> kSchema[] = {
      {"workload",
       [](std::ostream& os, const DispatchRow& r) { os << r.workload; }},
      {"dispatch",
       [](std::ostream& os, const DispatchRow& r) { os << r.dispatch; }},
      {"events", [](std::ostream& os, const DispatchRow& r) { os << r.events; }},
      {"instructions",
       [](std::ostream& os, const DispatchRow& r) { os << r.instructions; }},
      {"wall_s",
       [](std::ostream& os, const DispatchRow& r) { os << r.wallSeconds; }},
      {"ns_per_instr",
       [](std::ostream& os, const DispatchRow& r) { os << r.nsPerInstr; }},
  };
  return kSchema;
}

DispatchRow runDispatch(const std::string& workload, const vm::Program& program,
                        vm::DispatchMode mode, std::uint64_t events) {
  expr::Context ctx;
  solver::Solver solver(ctx);
  vm::InterpConfig config;
  config.dispatch = mode;
  config.opcodeTiming = false;
  config.maxStepsPerEvent = 1ull << 30;
  vm::Interpreter interp(ctx, solver, config);
  interp.setNumNodes(1);

  vm::ExecutionState state(0, 0, program);
  state.space.initGlobals(ctx, program.globalsSize());
  NullSink sink;
  const std::vector<expr::Ref> args{ctx.constant(0, 64)};

  // Warm-up dispatch (decodes the program, interns the constants) so the
  // measurement sees steady state.
  interp.runEvent(state, vm::Entry::kTimer, args, sink);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < events; ++i)
    interp.runEvent(state, vm::Entry::kTimer, args, sink);
  const auto t1 = std::chrono::steady_clock::now();

  DispatchRow row;
  row.workload = workload;
  row.dispatch = std::string(vm::dispatchModeName(mode));
  row.events = events;
  row.instructions = interp.stats().get("vm.instructions");
  row.wallSeconds = seconds(t0, t1);
  row.nsPerInstr = row.instructions == 0
                       ? 0
                       : row.wallSeconds * 1e9 /
                             static_cast<double>(row.instructions);
  return row;
}

struct ArenaRow {
  std::string mode;
  std::uint64_t nodes = 0;
  double buildSeconds = 0;
  double reinternSeconds = 0;
  double nsPerNode = 0;
  std::uint64_t bytesAllocated = 0;
  std::uint64_t bytesReserved = 0;
  std::uint64_t blocks = 0;
};

std::span<const trace::CsvColumn<ArenaRow>> arenaCsvSchema() {
  static constexpr trace::CsvColumn<ArenaRow> kSchema[] = {
      {"mode", [](std::ostream& os, const ArenaRow& r) { os << r.mode; }},
      {"nodes", [](std::ostream& os, const ArenaRow& r) { os << r.nodes; }},
      {"build_s",
       [](std::ostream& os, const ArenaRow& r) { os << r.buildSeconds; }},
      {"reintern_s",
       [](std::ostream& os, const ArenaRow& r) { os << r.reinternSeconds; }},
      {"ns_per_node",
       [](std::ostream& os, const ArenaRow& r) { os << r.nsPerNode; }},
      {"bytes_allocated",
       [](std::ostream& os, const ArenaRow& r) { os << r.bytesAllocated; }},
      {"bytes_reserved",
       [](std::ostream& os, const ArenaRow& r) { os << r.bytesReserved; }},
      {"blocks", [](std::ostream& os, const ArenaRow& r) { os << r.blocks; }},
  };
  return kSchema;
}

// Interns a fresh-node-heavy stream: a xor-fold over distinct constants,
// the shape a long symbolic execution produces (every step a handful of
// new nodes, old nodes stay live).
void internStream(expr::Context& ctx, std::uint64_t nodes) {
  expr::Ref acc = ctx.constant(1, 64);
  // Each iteration interns ~2 fresh nodes (a constant and a xor).
  const std::uint64_t iterations = nodes / 2;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const expr::Ref c = ctx.constant(i * 0x9e3779b97f4a7c15ull + 1, 64);
    acc = ctx.bvXor(acc, c);
  }
}

ArenaRow runArena(const std::string& mode, std::size_t blockBytes,
                  std::uint64_t nodes) {
  expr::Context ctx(blockBytes);
  const auto t0 = std::chrono::steady_clock::now();
  internStream(ctx, nodes);
  const auto t1 = std::chrono::steady_clock::now();
  // Second pass: every intern is a hit — lookup speed over the same
  // node population and layout.
  internStream(ctx, nodes);
  const auto t2 = std::chrono::steady_clock::now();

  ArenaRow row;
  row.mode = mode;
  row.nodes = ctx.numNodes();
  row.buildSeconds = seconds(t0, t1);
  row.reinternSeconds = seconds(t1, t2);
  row.nsPerNode = row.nodes == 0 ? 0
                                 : row.buildSeconds * 1e9 /
                                       static_cast<double>(row.nodes);
  row.bytesAllocated = ctx.arenaBytesAllocated();
  row.bytesReserved = ctx.arenaBytesReserved();
  row.blocks = ctx.arenaBlocks();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parseArgs(argc, argv);
  std::filesystem::create_directories(options.outdir);

  constexpr std::uint64_t kIterationsPerEvent = 20'000;
  const struct {
    const char* name;
    vm::Program program;
  } workloads[] = {
      {"alu_loop", buildAluLoop(kIterationsPerEvent)},
      {"global_walk", buildGlobalWalk(kIterationsPerEvent)},
  };

  std::printf("=== VM dispatch microbench (%llu events/workload) ===\n",
              static_cast<unsigned long long>(options.events));
  trace::TextTable dispatchTable(
      {"Workload", "Dispatch", "Instructions", "Wall", "ns/instr", "Speedup"});
  std::vector<DispatchRow> dispatchRows;
  for (const auto& workload : workloads) {
    double switchNs = 0;
    for (const vm::DispatchMode mode :
         {vm::DispatchMode::kSwitch, vm::DispatchMode::kThreaded,
          vm::DispatchMode::kFused}) {
      const DispatchRow row =
          runDispatch(workload.name, workload.program, mode, options.events);
      if (mode == vm::DispatchMode::kSwitch) switchNs = row.nsPerInstr;
      char wall[32], ns[32], speedup[32];
      std::snprintf(wall, sizeof(wall), "%.3f s", row.wallSeconds);
      std::snprintf(ns, sizeof(ns), "%.2f", row.nsPerInstr);
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    row.nsPerInstr == 0 ? 0 : switchNs / row.nsPerInstr);
      dispatchTable.addRow({workload.name, std::string(row.dispatch),
                            std::to_string(row.instructions), wall, ns,
                            speedup});
      dispatchRows.push_back(row);
    }
  }
  std::fputs(dispatchTable.render().c_str(), stdout);

  const std::string dispatchPath = options.outdir + "/vm_dispatch.csv";
  {
    std::ofstream os(dispatchPath);
    trace::CsvWriter<DispatchRow> csv(os, dispatchCsvSchema());
    for (const DispatchRow& row : dispatchRows) csv.row(row);
  }
  std::printf("[csv] %s\n\n", dispatchPath.c_str());

  std::printf("=== Expression interning: arena vs per-node heap (%llu nodes) "
              "===\n",
              static_cast<unsigned long long>(options.arenaNodes));
  trace::TextTable arenaTable({"Mode", "Nodes", "Build", "Re-intern",
                               "ns/node", "Reserved", "Blocks"});
  std::vector<ArenaRow> arenaRows;
  for (const auto& [mode, blockBytes] :
       {std::pair<const char*, std::size_t>{"arena",
                                            support::Arena::kDefaultBlockBytes},
        std::pair<const char*, std::size_t>{"heap", 1}}) {
    const ArenaRow row = runArena(mode, blockBytes, options.arenaNodes);
    char build[32], rehit[32], ns[32];
    std::snprintf(build, sizeof(build), "%.3f s", row.buildSeconds);
    std::snprintf(rehit, sizeof(rehit), "%.3f s", row.reinternSeconds);
    std::snprintf(ns, sizeof(ns), "%.1f", row.nsPerNode);
    arenaTable.addRow({row.mode, std::to_string(row.nodes), build, rehit, ns,
                       std::to_string(row.bytesReserved),
                       std::to_string(row.blocks)});
    arenaRows.push_back(row);
  }
  std::fputs(arenaTable.render().c_str(), stdout);

  const std::string arenaPath = options.outdir + "/vm_arena.csv";
  {
    std::ofstream os(arenaPath);
    trace::CsvWriter<ArenaRow> csv(os, arenaCsvSchema());
    for (const ArenaRow& row : arenaRows) csv.row(row);
  }
  std::printf("[csv] %s\n", arenaPath.c_str());
  return 0;
}
