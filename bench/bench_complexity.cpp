// E8 — §III-E complexity validation: the worst-case input program where
// every step is a symbolic branch. Each node branches once per round for
// u rounds (no communication). The paper's analysis predicts:
//
//   * u-complete dscenarios:  (2^k)^u = 2^(k*u)      [exact for COB]
//   * states held by COB:     k * 2^(k*u)            [upper bound O(k·2^ku)]
//   * COW/SDS need only:      k * 2^u  states in ONE dstate — communication-
//     free branching is where delayed copying pays off maximally.
//
// The bench builds that program, runs all three algorithms across a
// (k, u) sweep and reports measured values against the formulas.
#include <cinttypes>
#include <cstdio>

#include "sde/engine.hpp"
#include "trace/table.hpp"
#include "vm/builder.hpp"

namespace {

using namespace sde;

// One symbolic branch per timer round, `rounds` rounds in total.
vm::Program buildWorstCaseProgram(std::uint64_t rounds) {
  vm::IRBuilder b("worstcase");
  b.setGlobals(9);
  constexpr vm::Reg rRound{3};
  constexpr vm::Reg rCmp{4};
  constexpr vm::Reg rBit{5};
  constexpr vm::Reg rOne{6};
  constexpr vm::Reg rS{15};

  b.beginEntry(vm::Entry::kInit);
  b.constant(rOne, 1);
  b.setTimer(1, rOne);
  b.halt();

  b.beginEntry(vm::Entry::kTimer);
  auto done = b.newLabel();
  auto join = b.newLabel();
  auto took = b.newLabel();
  b.loadGlobal(rRound, 8);
  b.aluImm(vm::Op::kUlt, rCmp, rRound, static_cast<std::int64_t>(rounds), rS);
  b.branchIfZero(rCmp, done);
  b.makeSymbolic(rBit, "bit", 1);
  b.branch(rBit, took, join);  // the worst-case branch: always symbolic
  b.bind(took);
  b.jump(join);
  b.bind(join);
  b.aluImm(vm::Op::kAdd, rRound, rRound, 1, rS);
  b.storeGlobal(rRound, 8);
  b.constant(rOne, 1);
  b.setTimer(1, rOne);
  b.halt();
  b.bind(done);
  b.halt();
  return b.finish();
}

std::uint64_t pow2(std::uint64_t e) { return std::uint64_t{1} << e; }

}  // namespace

int main() {
  std::printf(
      "SS III-E worst case: every step branches; no communication.\n"
      "Formulas: dscenarios = 2^(k*u); COB states = k*2^(k*u); "
      "COW/SDS states = k*2^u.\n\n");

  trace::TextTable table({"k", "u", "COB groups", "2^(k*u)", "COB states",
                          "k*2^(k*u)", "COW states", "SDS states", "k*2^u",
                          "COB wall"});

  for (const auto& [k, u] : {std::pair<std::uint32_t, std::uint64_t>{1, 4},
                            {2, 2},
                            {2, 4},
                            {3, 2},
                            {3, 3},
                            {3, 4},
                            {4, 3}}) {
    const vm::Program program = buildWorstCaseProgram(u);
    std::uint64_t results[3] = {0, 0, 0};
    std::uint64_t groupsCob = 0;
    double wallCob = 0;
    for (const MapperKind kind :
         {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
      os::NetworkPlan plan(k == 1 ? net::Topology::line(1)
                                  : net::Topology::line(k));
      plan.runEverywhere(program);
      Engine engine(plan, kind);
      const RunOutcome outcome = engine.run(u + 2);
      SDE_ASSERT(outcome == RunOutcome::kCompleted, "sweep sized to finish");
      results[static_cast<int>(kind)] = engine.numStates();
      if (kind == MapperKind::kCob) {
        groupsCob = engine.mapper().numGroups();
        wallCob = engine.wallSeconds();
      }
    }
    table.addRow({std::to_string(k), std::to_string(u),
                  trace::formatCount(groupsCob),
                  trace::formatCount(pow2(k * u)),
                  trace::formatCount(results[0]),
                  trace::formatCount(k * pow2(k * u)),
                  trace::formatCount(results[1]),
                  trace::formatCount(results[2]),
                  trace::formatCount(k * pow2(u)),
                  trace::formatDuration(wallCob)});

    // Hard checks: measured == formula (the analysis is exact here).
    SDE_ASSERT(groupsCob == pow2(k * u), "dscenario count formula");
    SDE_ASSERT(results[0] == k * pow2(k * u), "COB state formula");
    SDE_ASSERT(results[1] == k * pow2(u), "COW state formula");
    SDE_ASSERT(results[2] == k * pow2(u), "SDS state formula");
  }

  std::printf("%s", table.render().c_str());
  std::printf("\nAll measured values match the closed forms.\n");
  return 0;
}
