// E1 — Table I: the 100-node (10x10 grid) scenario with symbolic packet
// drops, one row per state-mapping algorithm: runtime, number of states,
// RAM. As in the paper, COB does not finish — it is aborted at a
// resource cap and reported as such ("9h:39m (aborted)" in the paper).
//
// Absolute numbers are testbed-specific (the paper used a 3.33 GHz Xeon
// with 64 GB RAM and real Contiki images under KLEE); the reproduced
// claims are the row *ordering* and the rough factors: COB aborted,
// COW finishing with an order of magnitude fewer states, SDS with yet
// another order less and the shortest runtime.
//
// Usage: bench_table1 [--width W] [--height H] [--time T]
//                     [--cob-state-cap N] [--cob-wall-cap SECONDS]
//                     [--paper]   (full 10-second simulation; slow)
//                     [--checkpoint-dir DIR] [--resume] [--trace-out DIR]
//                     [--deep-copy]  (legacy eager-copy forks: the
//                                     pre-sharing memory baseline for E17)
//                     [--merge] [--loop-summarize]  (state merging at
//                                     post-dominator joins / bounded loop
//                                     summarization on top; E22)
//
// With --checkpoint-dir, each algorithm's run periodically checkpoints
// (and checkpoints once more when a cap aborts it — the paper's COB
// abort suspends instead of discarding); --resume continues from the
// recorded checkpoints. With --trace-out, each algorithm's run streams
// a structured event trace to DIR/table1_<alg>.trc and prints a phase
// profile (where the wall-clock went) next to its table row.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "obs/profiler.hpp"
#include "obs/trace_io.hpp"
#include "sde/explode.hpp"
#include "support/pvector.hpp"
#include "trace/scenario.hpp"
#include "trace/table.hpp"

namespace {

struct Options {
  std::uint32_t width = 10;
  std::uint32_t height = 10;
  std::uint64_t simulationTime = 5000;
  std::uint64_t cobStateCap = 1'100'000;
  double cobWallCap = 120.0;
  std::string checkpointDir;
  bool resume = false;
  std::string traceDir;
  bool deepCopy = false;
  bool merge = false;          // state merging at post-dominator joins
  bool loopSummarize = false;  // bounded loop summarization
};

Options parseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::uint64_t {
      return i + 1 < argc ? std::strtoull(argv[++i], nullptr, 10) : 0;
    };
    if (arg == "--width") options.width = static_cast<std::uint32_t>(next());
    else if (arg == "--height")
      options.height = static_cast<std::uint32_t>(next());
    else if (arg == "--time") options.simulationTime = next();
    else if (arg == "--cob-state-cap") options.cobStateCap = next();
    else if (arg == "--cob-wall-cap")
      options.cobWallCap = static_cast<double>(next());
    else if (arg == "--paper")
      options.simulationTime = 10000;
    else if (arg == "--checkpoint-dir" && i + 1 < argc)
      options.checkpointDir = argv[++i];
    else if (arg == "--resume")
      options.resume = true;
    else if (arg == "--trace-out" && i + 1 < argc)
      options.traceDir = argv[++i];
    else if (arg == "--deep-copy")
      options.deepCopy = true;
    else if (arg == "--merge")
      options.merge = true;
    else if (arg == "--loop-summarize")
      options.loopSummarize = true;
    else
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sde;
  const Options options = parseArgs(argc, argv);
  if (options.deepCopy) {
    support::setPersistDeepCopyMode(true);
    std::printf("[deep-copy] legacy eager-copy forks (pre-sharing baseline)\n");
  }

  std::printf(
      "Table I — %ux%u grid (%u nodes), source->sink collect, symbolic "
      "packet drops, %llu time units simulated\n\n",
      options.width, options.height, options.width * options.height,
      static_cast<unsigned long long>(options.simulationTime));

  trace::TextTable table({"State mapping algorithm", "Runtime", "States",
                          "RAM", "Peak RAM", "dstates/dscenarios",
                          "dup (strict)", "dup (content)", "Merges"});

  for (const MapperKind kind :
       {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
    trace::CollectScenarioConfig config;
    config.gridWidth = options.width;
    config.gridHeight = options.height;
    config.simulationTime = options.simulationTime;
    config.mapper = kind;
    if (kind == MapperKind::kCob) {
      // Emulates the paper's physical-memory abort of COB.
      config.engine.maxStates = options.cobStateCap;
      config.engine.maxWallSeconds = options.cobWallCap;
    }
    config.engine.mergeStates = options.merge;
    config.engine.loopSummarize = options.loopSummarize;
    trace::CollectScenario scenario(config);

    // Tracing + profiling attach before any checkpoint restore so a
    // resumed run continues its event stream (see Engine docs).
    std::ofstream traceStream;
    std::unique_ptr<obs::StreamTraceSink> traceSink;
    obs::PhaseProfiler profiler;
    std::filesystem::path tracePath;
    if (!options.traceDir.empty()) {
      std::filesystem::create_directories(options.traceDir);
      tracePath = std::filesystem::path(options.traceDir) /
                  ("table1_" + std::string(mapperKindName(kind)) + ".trc");
      traceStream.open(tracePath, std::ios::binary | std::ios::trunc);
      obs::TraceHeader header;
      header.numNodes = options.width * options.height;
      header.mapper = std::string(mapperKindName(kind));
      header.scenario = "table1 grid " + std::to_string(options.width) + "x" +
                        std::to_string(options.height);
      traceSink = std::make_unique<obs::StreamTraceSink>(traceStream, header);
      scenario.engine().setTraceSink(traceSink.get());
      scenario.engine().setProfiler(&profiler);
    }

    std::filesystem::path ckpt;
    if (!options.checkpointDir.empty()) {
      ckpt = std::filesystem::path(options.checkpointDir) /
             ("table1_" + std::string(mapperKindName(kind)) + ".ckpt");
      if (trace::attachCheckpointing(scenario.engine(), ckpt, options.resume))
        std::fprintf(stderr, "[resume] %s from %s\n",
                     mapperKindName(kind).data(), ckpt.string().c_str());
    }

    const trace::ScenarioResult result = scenario.run();
    if (!ckpt.empty() && result.outcome == RunOutcome::kCompleted) {
      std::error_code ec;
      std::filesystem::remove(ckpt, ec);  // run finished: nothing to resume
    }

    std::string runtime = trace::formatDuration(result.wallSeconds);
    if (result.outcome != RunOutcome::kCompleted) runtime += " (aborted)";
    table.addRow({std::string(mapperKindName(kind)), runtime,
                  trace::formatCount(result.states),
                  trace::formatBytes(result.memoryBytes),
                  trace::formatBytes(result.peakMemoryBytes),
                  trace::formatCount(result.groups),
                  trace::formatCount(result.duplicatesStrict.duplicateStates),
                  trace::formatCount(result.duplicatesContent.duplicateStates),
                  trace::formatCount(result.merges)});
    std::fprintf(stderr, "[done] %s: %s, %llu states\n",
                 mapperKindName(kind).data(),
                 runOutcomeName(result.outcome).data(),
                 static_cast<unsigned long long>(result.states));

    if (traceSink != nullptr) {
      scenario.engine().setTraceSink(nullptr);
      scenario.engine().setProfiler(nullptr);
      traceSink->setProfile(profiler.profile());
      traceSink->close();
      std::fprintf(stderr, "[trace] %s -> %s\n", mapperKindName(kind).data(),
                   tracePath.string().c_str());
      std::printf("%s phase profile:\n%s", mapperKindName(kind).data(),
                  profiler.profile().report().c_str());
    }
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nPaper reference (their testbed): COB 9h:39m aborted / 1,025,700 "
      "states / 38.1 GB; COW 1h:38m / 30,464 / 3.4 GB; SDS 19m / 4,159 / "
      "1.6 GB.\n");
  return 0;
}
