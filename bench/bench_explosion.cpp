// E10 — §IV-C deliberate state explosion and incremental test-case
// generation. After an SDS run, generating "test cases for all nodes in
// all dscenarios" requires expanding the compact representation back to
// COB's output. The paper notes this is expensive but can be done
// incrementally — and is still orders of magnitude faster than having
// executed COB outright. We measure:
//
//   1. the compact representation size vs the exploded dscenario count,
//   2. incremental expansion + joint test-case generation throughput,
//   3. the (estimated) COB cost avoided, in states.
#include <chrono>
#include <cstdio>

#include "sde/explode.hpp"
#include "sde/testcase.hpp"
#include "trace/scenario.hpp"
#include "trace/table.hpp"

int main() {
  using namespace sde;
  using Clock = std::chrono::steady_clock;

  trace::TextTable table({"Grid", "SDS states", "dstates", "dscenarios",
                          "COB states (=k*dscen)", "explode+gen time",
                          "testcases/s"});

  for (const auto& [side, simTime] :
       {std::pair<std::uint32_t, std::uint64_t>{3, 6000},
        {4, 5000},
        {5, 5000}}) {
    trace::CollectScenarioConfig config;
    config.gridWidth = side;
    config.gridHeight = side;
    config.simulationTime = simTime;
    config.mapper = MapperKind::kSds;
    trace::CollectScenario scenario(config);
    const auto result = scenario.run();
    auto& engine = scenario.engine();

    const std::uint64_t totalScenarios = countScenarios(engine.mapper());
    const std::uint64_t nodes = side * side;

    // Incremental explosion with bounded expansion: we cap the number of
    // materialised dscenarios per bench row so the row finishes quickly;
    // throughput extrapolates (generation cost is per-dscenario).
    const std::uint64_t cap = 2000;
    const auto start = Clock::now();
    ExplosionIterator it(engine.mapper());
    std::uint64_t generated = 0;
    while (generated < cap) {
      const auto dscenario = it.next();
      if (!dscenario) break;
      const auto cases =
          generateScenarioTestCases(engine.solver(), *dscenario);
      SDE_ASSERT(cases.has_value(), "explored dscenarios are satisfiable");
      generated += 1;
    }
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    char timing[64];
    std::snprintf(timing, sizeof timing, "%.2fs for %llu", seconds,
                  static_cast<unsigned long long>(generated));
    char rate[64];
    std::snprintf(rate, sizeof rate, "%.0f",
                  seconds > 0 ? generated / seconds : 0.0);

    table.addRow({std::to_string(side) + "x" + std::to_string(side),
                  trace::formatCount(result.states),
                  trace::formatCount(result.groups),
                  trace::formatCount(totalScenarios),
                  trace::formatCount(nodes * totalScenarios), timing, rate});
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nThe compact SDS representation holds orders of magnitude fewer "
      "states than the dscenario expansion COB would have executed; the "
      "iterator materialises one dscenario at a time (O(k) live states), "
      "so full test-suite generation never needs COB's peak memory.\n");
  return 0;
}
