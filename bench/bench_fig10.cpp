// E2–E7 — Figure 10 (a)–(f): state growth and memory growth over time
// for the 25-, 49- and 100-node grid scenarios, one series per mapping
// algorithm. Emits the raw series as CSV files (fig10_<nodes>_<alg>.csv,
// columns: wall seconds, virtual time, states, memory bytes, groups) —
// the log-log curves of the paper plot directly from these — plus a
// per-scenario summary with completion markers ("COB aborted", "COW
// finished", "SDS finished" in the paper's annotations).
//
// Usage: bench_fig10 [--nodes 25|49|100] [--time T] [--wall-cap SECONDS]
//                    [--outdir DIR] [--paper]
//                    [--checkpoint-dir DIR] [--resume] [--trace-out DIR]
//                    [--fleet N] [--metrics] [--merge] [--loop-summarize]
//                    [--phase-profile]
//
// With --phase-profile every run attaches the phase profiler and prints
// the per-phase self-time table plus the interpreter's per-opcode
// histogram (execution counts always; self-times and adjacent-pair
// counts when SDE_OPCODE_TIME=1) without requiring a trace directory.
//
// With --merge (and optionally --loop-summarize) every run explores with
// state merging at post-dominator join points (bounded loop summarization
// on top); the CSV's merges/loop_summaries columns record the counters.
// E22 compares states and wall-clock with and without these flags at an
// identical expanded test-case set.
//
// With --metrics every single-engine run carries the full live metrics
// plane: a MetricsRegistry attached to the engine (per-event counter
// bumps) plus a background thread publishing shm snapshots at 1 Hz —
// the cadence sde_top polls at. E21 measures the plane's overhead by
// comparing wall-clock with and without this flag.
//
// With --fleet N every (nodes, algorithm) scenario additionally runs as
// an N-process fleet (sde/fleet.hpp) over a 4-job partition plan, adding
// a comparison row: same states universe, process-isolated wall-clock.
// No metric series is recorded for the fleet rows (the workers own the
// engine sampler), so the CSV files always come from the single-engine
// runs.
//
// With --checkpoint-dir, every (nodes, algorithm) run periodically writes
// an engine checkpoint; --resume continues a suspended run from it (e.g.
// after a wall-cap abort or a killed process) instead of starting over.
// A resumed run's CSV only covers the samples recorded after the resume —
// the states/memory endpoints still match the uninterrupted run.
//
// With --trace-out, every run additionally streams a structured event
// trace to DIR/trace_<nodes>_<alg>.trc (inspect with sde_trace) and
// attaches a phase profiler whose per-phase self-times land both in the
// trace's profile section and in the printed stats block.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/metrics_shm.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_io.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/manifest.hpp"
#include "support/pvector.hpp"
#include "trace/scenario.hpp"
#include "trace/table.hpp"

namespace {

struct Options {
  std::vector<std::uint32_t> nodeCounts = {25, 49, 100};
  // 0 = per-scenario default (full 10 s for 25/49, 5 s for 100 — the
  // 100-node run is scaled down to stay laptop-sized; --paper restores
  // the full duration).
  std::uint64_t simulationTime = 0;
  double wallCap = 60.0;
  std::string outdir = ".";
  bool paper = false;
  std::string checkpointDir;
  bool resume = false;
  std::string traceDir;
  bool deepCopy = false;  // legacy eager-copy forks (E17 memory baseline)
  unsigned fleet = 0;     // 0 = no fleet comparison rows
  bool metrics = false;   // attach the live metrics plane (E21 overhead)
  bool merge = false;     // state merging at post-dominator joins (E22)
  bool loopSummarize = false;  // bounded loop summarization (E22)
  bool phaseProfile = false;   // print phase + opcode profile (E23)
};

Options parseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::uint64_t {
      return i + 1 < argc ? std::strtoull(argv[++i], nullptr, 10) : 0;
    };
    if (arg == "--nodes")
      options.nodeCounts = {static_cast<std::uint32_t>(next())};
    else if (arg == "--time")
      options.simulationTime = next();
    else if (arg == "--wall-cap")
      options.wallCap = static_cast<double>(next());
    else if (arg == "--outdir" && i + 1 < argc)
      options.outdir = argv[++i];
    else if (arg == "--paper")
      options.paper = true;
    else if (arg == "--checkpoint-dir" && i + 1 < argc)
      options.checkpointDir = argv[++i];
    else if (arg == "--resume")
      options.resume = true;
    else if (arg == "--trace-out" && i + 1 < argc)
      options.traceDir = argv[++i];
    else if (arg == "--deep-copy")
      options.deepCopy = true;
    else if (arg == "--fleet")
      options.fleet = static_cast<unsigned>(next());
    else if (arg == "--metrics")
      options.metrics = true;
    else if (arg == "--merge")
      options.merge = true;
    else if (arg == "--loop-summarize")
      options.loopSummarize = true;
    else if (arg == "--phase-profile")
      options.phaseProfile = true;
    else
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
  }
  return options;
}

std::uint32_t sideOf(std::uint32_t nodes) {
  switch (nodes) {
    case 25:
      return 5;
    case 49:
      return 7;
    case 100:
      return 10;
    default:
      std::fprintf(stderr, "unsupported node count %u (use 25/49/100)\n",
                   nodes);
      std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sde;
  const Options options = parseArgs(argc, argv);
  if (options.deepCopy) {
    support::setPersistDeepCopyMode(true);
    std::printf("[deep-copy] legacy eager-copy forks (pre-sharing baseline)\n");
  }

  for (const std::uint32_t nodes : options.nodeCounts) {
    const std::uint32_t side = sideOf(nodes);
    std::uint64_t simTime = options.simulationTime;
    if (simTime == 0) simTime = (nodes == 100 && !options.paper) ? 5000 : 10000;

    std::printf("=== Figure 10, %u-node scenario (grid %ux%u, %llu time "
                "units) ===\n",
                nodes, side, side, static_cast<unsigned long long>(simTime));
    trace::TextTable table(
        {"Algorithm", "Outcome", "Runtime", "States", "Memory", "Samples"});

    for (const MapperKind kind :
         {MapperKind::kCob, MapperKind::kCow, MapperKind::kSds}) {
      trace::CollectScenarioConfig config;
      config.gridWidth = side;
      config.gridHeight = side;
      config.simulationTime = simTime;
      config.mapper = kind;
      // Every algorithm runs under the same wall cap; in the paper only
      // COB hits the (memory) limit on the 100-node scenario.
      config.engine.maxWallSeconds =
          kind == MapperKind::kCob ? options.wallCap : options.wallCap * 4;
      config.engine.maxStates = 2'000'000;
      config.engine.mergeStates = options.merge;
      config.engine.loopSummarize = options.loopSummarize;

      trace::CollectScenario scenario(config);
      const std::string name(mapperKindName(kind));

      // Tracing + profiling attach before any checkpoint restore so a
      // resumed run continues its event stream (see Engine docs).
      std::ofstream traceStream;
      std::unique_ptr<obs::StreamTraceSink> traceSink;
      obs::PhaseProfiler profiler;
      std::filesystem::path tracePath;
      if (!options.traceDir.empty()) {
        std::filesystem::create_directories(options.traceDir);
        tracePath = std::filesystem::path(options.traceDir) /
                    ("trace_" + std::to_string(nodes) + "_" + name + ".trc");
        traceStream.open(tracePath, std::ios::binary | std::ios::trunc);
        obs::TraceHeader header;
        header.numNodes = nodes;
        header.mapper = name;
        header.scenario = "fig10 grid " + std::to_string(side) + "x" +
                          std::to_string(side);
        traceSink = std::make_unique<obs::StreamTraceSink>(traceStream, header);
        scenario.engine().setTraceSink(traceSink.get());
        scenario.engine().setProfiler(&profiler);
      }
      if (options.phaseProfile && traceSink == nullptr)
        scenario.engine().setProfiler(&profiler);

      std::filesystem::path ckpt;
      if (!options.checkpointDir.empty()) {
        ckpt = std::filesystem::path(options.checkpointDir) /
               ("fig10_" + std::to_string(nodes) + "_" + name + ".ckpt");
        if (trace::attachCheckpointing(scenario.engine(), ckpt,
                                       options.resume))
          std::fprintf(stderr, "[resume] %u nodes %s from %s\n", nodes,
                       name.c_str(), ckpt.string().c_str());
      }

      // The full live plane: engine counter bumps plus a publisher
      // thread snapshotting into shm at 1 Hz — the cadence sde_top
      // polls at. Publishing faster than the consumers poll buys
      // nothing and costs engine cache locality on small machines.
      obs::MetricsRegistry benchMetrics;
      std::unique_ptr<obs::ShmMetricsPlane> benchPlane;
      std::thread publisher;
      std::atomic<bool> publisherStop{false};
      const std::string planeName =
          "/sde_mx_bench_" + std::to_string(::getpid());
      if (options.metrics) {
        scenario.engine().setMetrics(&benchMetrics);
        benchPlane = obs::ShmMetricsPlane::create(planeName);
        publisher = std::thread([&] {
          while (!publisherStop.load(std::memory_order_relaxed)) {
            (void)benchPlane->publish(0, benchMetrics.snapshot());
            // Sliced sleep so shutdown stays prompt.
            for (int slice = 0;
                 slice < 10 && !publisherStop.load(std::memory_order_relaxed);
                 ++slice)
              std::this_thread::sleep_for(std::chrono::milliseconds(100));
          }
        });
      }

      const trace::ScenarioResult result = scenario.run();
      if (options.metrics) {
        publisherStop.store(true);
        publisher.join();
        (void)benchPlane->publish(0, benchMetrics.snapshot());
        scenario.engine().setMetrics(nullptr);
        const obs::MetricsSnapshot finalSnap = benchMetrics.snapshot();
        std::printf("[metrics] %s: %llu events, %llu forks published via %s\n",
                    name.c_str(),
                    static_cast<unsigned long long>(
                        finalSnap.value("engine.events")),
                    static_cast<unsigned long long>(
                        finalSnap.value("engine.forks_total")),
                    planeName.c_str());
        benchPlane.reset();
        obs::ShmMetricsPlane::unlinkSegment(planeName);
      }
      if (!ckpt.empty() && result.outcome == RunOutcome::kCompleted) {
        std::error_code ec;
        std::filesystem::remove(ckpt, ec);  // run finished: nothing to resume
      }

      const std::string path = options.outdir + "/fig10_" +
                               std::to_string(nodes) + "_" + name + ".csv";
      std::ofstream csv(path);
      scenario.metrics().writeCsv(csv, name);
      std::fprintf(stderr, "[done] %u nodes %s -> %s\n", nodes, name.c_str(),
                   path.c_str());

      if (traceSink != nullptr) {
        scenario.engine().setTraceSink(nullptr);
        scenario.engine().setProfiler(nullptr);
        traceSink->setProfile(profiler.profile());
        traceSink->close();
        std::fprintf(stderr, "[trace] %u nodes %s -> %s\n", nodes,
                     name.c_str(), tracePath.string().c_str());
      } else if (options.phaseProfile) {
        scenario.engine().setProfiler(nullptr);
      }
      if (traceSink != nullptr || options.phaseProfile) {
        support::StatsRegistry profileStats;
        profiler.profile().toStats(profileStats);
        std::printf("%s phase profile:\n%s%s", name.c_str(),
                    profiler.profile().report().c_str(),
                    profileStats.report().c_str());
      }

      table.addRow({name, std::string(runOutcomeName(result.outcome)),
                    trace::formatDuration(result.wallSeconds),
                    trace::formatCount(result.states),
                    trace::formatBytes(result.memoryBytes),
                    trace::formatCount(scenario.metrics().samples().size())});

      // Threads-vs-processes comparison row: the same scenario as an
      // N-process fleet over a 4-job partition plan.
      if (options.fleet > 0) {
        const std::filesystem::path fleetDir =
            std::filesystem::temp_directory_path() /
            ("sde_fig10_fleet_" + std::to_string(nodes) + "_" + name);
        std::filesystem::remove_all(fleetDir);
        FleetConfig fleet;
        fleet.processes = options.fleet;
        fleet.collectStateFingerprints = false;
        fleet.collectScenarioFingerprints = false;
        fleet.checkpointDir = fleetDir.string();
        const FleetResult run =
            trace::runCollectFleet(config, fleet, /*numPartitionVariables=*/2);
        table.addRow({name + " fleet x" + std::to_string(options.fleet),
                      std::string(runOutcomeName(run.result.outcome)),
                      trace::formatDuration(run.result.wallSeconds),
                      trace::formatCount(run.result.totalStates), "-", "-"});
        std::filesystem::remove_all(fleetDir);
      }
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf(
      "Paper shape to verify in the CSVs: states and memory grow over time "
      "for every algorithm; COB's curves dominate and terminate early "
      "(abort), COW finishes above SDS, SDS lowest in both states and "
      "memory; the gap widens with network size.\n");
  return 0;
}
