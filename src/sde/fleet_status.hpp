// Fleet run-directory inspection as a library: the `sde_fleet status`
// view of a durable queue (manifest + .ckpt/.done files), decoupled
// from the CLI so the daemon, scripts and tests consume one
// implementation — and one JSON emitter, which must stay valid JSON for
// every run shape (zero completed jobs, no scenario spec, no metrics
// sidecar). Optional fields are omitted, never emitted half-filled.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "snapshot/manifest.hpp"

namespace sde {

enum class FleetJobState : std::uint8_t {
  kDone,       // .done file present and readable
  kSuspended,  // .ckpt file present and readable
  kPending,    // neither file: never ran or lost to a crash
  kBroken,     // a present file failed to decode (torn by a hard crash)
};
[[nodiscard]] std::string_view fleetJobStateName(FleetJobState state);

struct FleetJobStatus {
  std::uint32_t id = 0;
  FleetJobState state = FleetJobState::kPending;
  std::uint64_t states = 0;      // meaningful for done/suspended
  std::uint64_t virtualNow = 0;  // meaningful for suspended
};

struct FleetRunStatus {
  std::filesystem::path dir;
  snapshot::RunManifest manifest;
  std::vector<FleetJobStatus> jobs;
  std::size_t done = 0;
  std::size_t suspended = 0;
  std::size_t pending = 0;
  std::size_t broken = 0;
  // The merged metrics.sde sidecar of a completed run; absent (or torn,
  // which reads the same) leaves hasMetrics false and `metrics` empty.
  bool hasMetrics = false;
  obs::MetricsSnapshot metrics;
};

// Reads the run directory without running anything. Throws
// snapshot::SnapshotError when the manifest is missing or foreign;
// per-job file damage is reported as kBroken, never thrown.
[[nodiscard]] FleetRunStatus inspectFleetRun(const std::filesystem::path& dir);

// One machine-readable JSON object, always syntactically valid:
//   {"dir":...,"horizon":...,["scenario":...,]"jobsTotal":...,
//    "done":...,"suspended":...,"pending":...,"broken":...,
//    "jobs":[{"id":...,"state":"done","states":...} ...]
//    [,"metrics":{...}]}
// Per-job "states"/"virtualNow" appear only for the states they mean
// something in; "scenario" and "metrics" are omitted when empty. A
// metrics scalar renders as a number, a histogram as
// {"count":...,"sum":...,"p50":...,"p99":...}.
[[nodiscard]] std::string fleetStatusJson(const FleetRunStatus& status);

// Minimal JSON string escaping shared by every SDE JSON emitter.
[[nodiscard]] std::string jsonEscape(std::string_view s);

}  // namespace sde
