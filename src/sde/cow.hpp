// Delayed Copy On Write (paper §III-B).
//
// A dstate allows several states per node as long as all members are
// pairwise conflict-free (same communication history). Local branches
// just add the sibling to the predecessor's dstate — no copying at all.
// Copying is delayed until a transmission whose sender has rivals
// (sibling states of the sender's node in the same dstate): then the
// sender moves to a fresh dstate together with forked copies of every
// non-rival member — the targets (which receive) and, wastefully, all
// bystanders. The bystander copies are the duplication SDS eliminates.
#pragma once

#include <deque>
#include <unordered_map>

#include "sde/mapper.hpp"

namespace sde {

class CowMapper final : public StateMapper {
 public:
  explicit CowMapper(std::uint32_t numNodes) : numNodes_(numNodes) {}

  [[nodiscard]] std::string_view name() const override { return "COW"; }

  void registerInitialStates(
      std::span<ExecutionState* const> states) override;
  void onLocalBranch(ExecutionState& original, ExecutionState& sibling,
                     MapperRuntime& runtime) override;
  [[nodiscard]] std::vector<ExecutionState*> onTransmit(
      ExecutionState& sender, const net::Packet& packet,
      MapperRuntime& runtime) override;

  [[nodiscard]] std::uint64_t numGroups() const override {
    return dstates_.size();
  }
  [[nodiscard]] std::vector<std::vector<std::vector<ExecutionState*>>>
  groupChoices() const override;

  // State merging: two same-node rivals of the *same* dstate may merge
  // — the dscenarios the dstate represents with the absorbed member are
  // exactly the merged survivor's guard-false expansions. Cross-dstate
  // merges are vetoed (they would conflate distinct dscenario sets).
  [[nodiscard]] bool canMerge(const ExecutionState& survivor,
                              const ExecutionState& absorbed) const override;
  std::vector<ExecutionState*> onStatesMerged(
      ExecutionState& survivor, ExecutionState& absorbed) override;

  void checkInvariants() const override;

  void snapshotSave(snapshot::Writer& out) const override;
  void snapshotLoad(snapshot::Reader& in,
                    const StateResolver& resolve) override;

  // Test hook: the dstate membership of `state` as a StateGroup view.
  [[nodiscard]] const StateGroup& dstateOf(const ExecutionState& state) const;

 private:
  struct DState {
    std::uint64_t id = 0;
    StateGroup members;
    explicit DState(std::uint32_t numNodes) : members(numNodes) {}
  };

  DState& mutableDstateOf(const ExecutionState& state);

  std::uint32_t numNodes_;
  std::deque<DState> dstates_;
  std::unordered_map<const ExecutionState*, DState*> dstateOf_;
  std::uint64_t nextDstateId_ = 0;
};

}  // namespace sde
