#include "sde/sds.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "obs/trace_sink.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

namespace sde {

namespace {

// Erase by value from a small vector (order-preserving).
template <typename T>
void eraseValue(std::vector<T*>& vec, const T* value) {
  const auto it = std::find(vec.begin(), vec.end(), value);
  SDE_ASSERT(it != vec.end(), "value not present");
  vec.erase(it);
}

// Serialized actual/dstate id of a dead (tombstoned) virtual state.
constexpr std::uint64_t kDeadVirtualSentinel = ~std::uint64_t{0};

}  // namespace

SdsMapper::VState& SdsMapper::newVirtual(ExecutionState* actual,
                                         VDState& dstate) {
  VState& v = virtualPool_.emplace_back();
  v.id = nextVirtualId_++;
  v.actual = actual;
  v.dstate = &dstate;
  dstate.byNode[actual->node()].push_back(&v);
  byActual_[actual].push_back(&v);
  ++liveVirtuals_;
  return v;
}

void SdsMapper::removeFromDstate(VState& v) {
  eraseValue(v.dstate->byNode[v.actual->node()], &v);
}

void SdsMapper::moveVirtual(VState& v, VDState& dstate) {
  removeFromDstate(v);
  v.dstate = &dstate;
  dstate.byNode[v.actual->node()].push_back(&v);
}

void SdsMapper::rebindVirtual(VState& v, ExecutionState* actual) {
  SDE_ASSERT(actual->node() == v.actual->node(),
             "rebind must stay on the same node");
  eraseValue(byActual_[v.actual], &v);
  // Within the dstate the slot is per-node, so the membership list does
  // not change — only the actual-state binding.
  v.actual = actual;
  byActual_[actual].push_back(&v);
}

std::vector<SdsMapper::VState*>& SdsMapper::virtualsOf(
    const ExecutionState& state) {
  const auto it = byActual_.find(&state);
  SDE_ASSERT(it != byActual_.end(), "state not registered with SDS");
  return it->second;
}

void SdsMapper::registerInitialStates(
    std::span<ExecutionState* const> states) {
  SDE_ASSERT(states.size() == numNodes_, "need exactly one state per node");
  VDState& dstate = dstates_.emplace_back();
  dstate.id = nextDstateId_++;
  dstate.byNode.resize(numNodes_);
  for (ExecutionState* state : states) newVirtual(state, dstate);
}

void SdsMapper::onLocalBranch(ExecutionState& original,
                              ExecutionState& sibling, MapperRuntime&) {
  // COW semantics lifted to virtual states: the sibling joins every
  // dstate the original inhabits (they share one communication history).
  const std::vector<VState*> snapshot = virtualsOf(original);
  for (VState* vo : snapshot) newVirtual(&sibling, *vo->dstate);
}

std::vector<ExecutionState*> SdsMapper::onTransmit(ExecutionState& sender,
                                                   const net::Packet& packet,
                                                   MapperRuntime& runtime) {
  runtime.stats().bump("map.transmissions");
  const NodeId src = sender.node();
  const NodeId dst = packet.dst;
  SDE_ASSERT(dst < numNodes_, "destination out of range");

  // Phase 1+2 (paper §III-C.1/2): identify the sending virtual states,
  // their dstates, and — per dstate — whether direct rivals exist.
  const std::vector<VState*> sendingVirtuals = virtualsOf(sender);
  std::unordered_set<const VDState*> senderDstates;
  for (const VState* vs : sendingVirtuals) senderDstates.insert(vs->dstate);
  SDE_ASSERT(senderDstates.size() == sendingVirtuals.size(),
             "a dstate may contain at most one virtual per actual state");

  auto hasDirectRivals = [&](const VDState& dstate) {
    // Any node-src virtual besides the sender's own is a direct rival.
    return dstate.byNode[src].size() > 1;
  };

  // Target actual states: actuals of destination-node virtuals in the
  // sender's dstates (deterministic order: by dstate, then slot order).
  std::vector<ExecutionState*> targets;
  for (const VState* vs : sendingVirtuals)
    for (const VState* vt : vs->dstate->byNode[dst])
      if (std::find(targets.begin(), targets.end(), vt->actual) ==
          targets.end())
        targets.push_back(vt->actual);
  SDE_ASSERT(!targets.empty(), "every dstate covers the destination node");

  // Phase 3 (forking condition): a target forks iff any of its virtual
  // states lives in a dstate that either lacks a sending virtual (its
  // node-src members are super-rivals, Figure 7) or has direct rivals.
  // A terminal target never forks: a crashed node absorbs the packet.
  struct TargetFork {
    ExecutionState* receiving = nullptr;
    ExecutionState* nonReceiving = nullptr;  // nullptr: not forked
  };
  std::unordered_map<const ExecutionState*, TargetFork> forkOf;

  std::uint64_t targetsForked = 0;
  std::vector<ExecutionState*> receivers;
  for (ExecutionState* target : targets) {
    bool needFork = false;
    if (!target->isTerminal()) {
      for (const VState* vt : virtualsOf(*target)) {
        const VDState& dstate = *vt->dstate;
        if (!senderDstates.contains(&dstate) || hasDirectRivals(dstate)) {
          needFork = true;
          break;
        }
      }
    }
    TargetFork fork;
    fork.receiving = target;
    if (needFork) {
      runtime.stats().bump("map.sds.target_copy_elements",
                           target->forkCopyCost());
      fork.nonReceiving = &runtime.forkState(*target);
      runtime.stats().bump("map.targets_forked");
      ++targetsForked;
      // Phase 4a: virtual states of the target in super-rival dstates
      // (no sending virtual there) migrate to the non-receiving copy —
      // no virtual forking, the dstate itself is untouched (Figure 7).
      const std::vector<VState*> snapshot = virtualsOf(*target);
      for (VState* vt : snapshot)
        if (!senderDstates.contains(vt->dstate))
          rebindVirtual(*vt, fork.nonReceiving);
    }
    forkOf[target] = fork;
    receivers.push_back(fork.receiving);
  }

  // Phase 4b: per sender-dstate with direct rivals, run COW at the
  // virtual level (Figure 8): the sending virtual moves to a fresh
  // dstate; original virtual targets re-bind to the non-receiving
  // copies; fresh virtual-target copies bind to the receiving states;
  // bystanders just gain a virtual in the fresh dstate — their actual
  // states are never forked (the SDS payoff).
  for (VState* vs : sendingVirtuals) {
    VDState& old = *vs->dstate;
    if (!hasDirectRivals(old)) continue;  // delivery happens in place
    runtime.stats().bump("map.sds.virtual_conflict_resolutions");
    const std::uint64_t oldId = old.id;

    VDState& fresh = dstates_.emplace_back();
    fresh.id = nextDstateId_++;
    fresh.byNode.resize(numNodes_);
    moveVirtual(*vs, fresh);

    std::uint64_t freshVirtuals = 0;
    for (NodeId node = 0; node < numNodes_; ++node) {
      if (node == src) continue;  // direct rivals stay behind
      const std::vector<VState*> snapshot = old.byNode[node];
      for (VState* v : snapshot) {
        if (node == dst) {
          const auto it = forkOf.find(v->actual);
          SDE_ASSERT(it != forkOf.end(), "virtual target missing fork entry");
          const TargetFork& fork = it->second;
          // Copy receives (binds to the receiving state); the original
          // stays in `old`, bound to the non-receiving copy.
          newVirtual(fork.receiving, fresh);
          if (fork.nonReceiving != nullptr)
            rebindVirtual(*v, fork.nonReceiving);
          runtime.stats().bump("map.sds.virtual_targets_forked");
        } else {
          newVirtual(v->actual, fresh);  // bystander: a reference, no fork
          runtime.stats().bump("map.sds.virtual_bystanders_forked");
        }
        ++freshVirtuals;
      }
    }
    if (obs::TraceSink* trace = runtime.trace()) {
      // b counts fresh *virtual* members — SDS never forks actual
      // bystanders, which is exactly what this record shows next to a
      // COW kDstateSplit of the same run.
      obs::TraceEvent split;
      split.kind = obs::TraceEventKind::kGroupFork;
      split.detail =
          static_cast<std::uint8_t>(obs::GroupForkDetail::kVirtualSplit);
      split.node = src;
      split.stateId = sender.id();
      split.groupId = fresh.id;
      split.a = oldId;
      split.b = freshVirtuals;
      trace->emit(split);
    }
  }

  if (runtime.trace() != nullptr && targetsForked > 0) {
    obs::TraceEvent invoked;
    invoked.kind = obs::TraceEventKind::kMappingInvoked;
    invoked.node = src;
    invoked.peer = dst;
    invoked.stateId = sender.id();
    invoked.packetId = packet.id;
    invoked.a = targetsForked;
    invoked.b = 0;  // the SDS payoff: bystanders are never forked
    runtime.trace()->emit(invoked);
  }

  return receivers;
}

bool SdsMapper::canMerge(const ExecutionState& survivor,
                         const ExecutionState& absorbed) const {
  const auto keep = byActual_.find(&survivor);
  const auto drop = byActual_.find(&absorbed);
  SDE_ASSERT(keep != byActual_.end() && drop != byActual_.end(),
             "state not registered with SDS");
  if (keep->second.size() != drop->second.size()) return false;
  // Each dstate holds at most one virtual per actual state, so the
  // virtual lists visit distinct dstates — set comparison via sorting.
  std::vector<const VDState*> a;
  std::vector<const VDState*> b;
  a.reserve(keep->second.size());
  b.reserve(drop->second.size());
  for (const VState* v : keep->second) a.push_back(v->dstate);
  for (const VState* v : drop->second) b.push_back(v->dstate);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

std::vector<ExecutionState*> SdsMapper::onStatesMerged(
    ExecutionState& survivor, ExecutionState& absorbed) {
  (void)survivor;
  const auto it = byActual_.find(&absorbed);
  SDE_ASSERT(it != byActual_.end(), "state not registered with SDS");
  const std::vector<VState*> virtuals = std::move(it->second);
  byActual_.erase(it);
  for (VState* v : virtuals) {
    removeFromDstate(*v);
    v->actual = nullptr;
    v->dstate = nullptr;
    v->dead = true;
    --liveVirtuals_;
  }
  return {};
}

std::vector<std::vector<std::vector<ExecutionState*>>>
SdsMapper::groupChoices() const {
  std::vector<std::vector<std::vector<ExecutionState*>>> result;
  result.reserve(dstates_.size());
  for (const VDState& dstate : dstates_) {
    std::vector<std::vector<ExecutionState*>> group;
    group.reserve(numNodes_);
    for (NodeId node = 0; node < numNodes_; ++node) {
      std::vector<ExecutionState*> choices;
      choices.reserve(dstate.byNode[node].size());
      for (const VState* v : dstate.byNode[node]) choices.push_back(v->actual);
      group.push_back(std::move(choices));
    }
    result.push_back(std::move(group));
  }
  return result;
}

std::size_t SdsMapper::superDstateSize(const ExecutionState& s) const {
  const auto it = byActual_.find(&s);
  return it == byActual_.end() ? 0 : it->second.size();
}

void SdsMapper::snapshotSave(snapshot::Writer& out) const {
  // Virtual states and dstates are only ever appended, so their ids
  // equal their container indices — serialized references are ids.
  out.u64(nextVirtualId_);
  out.u64(nextDstateId_);
  out.u64(liveVirtuals_);

  out.u64(virtualPool_.size());
  std::uint64_t poolIndex = 0;
  for (const VState& v : virtualPool_) {
    SDE_ASSERT(v.id == poolIndex++, "virtual pool ids must equal indices");
    if (v.dead) {
      // Tombstone of a merged-away actual: keeps the id == index
      // invariant across the round trip without a resolvable referent.
      out.u64(kDeadVirtualSentinel);
      out.u64(kDeadVirtualSentinel);
      continue;
    }
    out.u64(v.actual->id());
    out.u64(v.dstate->id);
  }

  out.u64(dstates_.size());
  std::uint64_t dstateIndex = 0;
  for (const VDState& dstate : dstates_) {
    SDE_ASSERT(dstate.id == dstateIndex++, "dstate ids must equal indices");
    // Per-node slot order determines receiver order on future
    // transmissions — serialized verbatim.
    for (NodeId node = 0; node < numNodes_; ++node) {
      out.u64(dstate.byNode[node].size());
      for (const VState* v : dstate.byNode[node]) out.u64(v->id);
    }
  }

  // byActual_ is an unordered map of ordered vectors; the vector order
  // matters (virtualsOf() snapshots drive onTransmit's iteration), the
  // map order does not — serialize keyed by state id, sorted.
  std::map<StateId, const std::vector<VState*>*> byActual;
  for (const auto& [actual, virtuals] : byActual_)
    byActual[actual->id()] = &virtuals;
  out.u64(byActual.size());
  for (const auto& [stateId, virtuals] : byActual) {
    out.u64(stateId);
    out.u64(virtuals->size());
    for (const VState* v : *virtuals) out.u64(v->id);
  }
}

void SdsMapper::snapshotLoad(snapshot::Reader& in,
                             const StateResolver& resolve) {
  SDE_ASSERT(dstates_.empty() && virtualPool_.empty(),
             "snapshotLoad needs a fresh mapper");
  nextVirtualId_ = in.u64();
  nextDstateId_ = in.u64();
  liveVirtuals_ = in.u64();

  const std::uint64_t poolSize = in.u64();
  struct PendingVirtual {
    StateId actual = 0;
    std::uint64_t dstate = 0;
  };
  std::vector<PendingVirtual> pending(poolSize);
  for (std::uint64_t i = 0; i < poolSize; ++i) {
    pending[i].actual = in.u64();
    pending[i].dstate = in.u64();
  }

  const std::uint64_t numDstates = in.u64();
  for (std::uint64_t i = 0; i < numDstates; ++i) {
    VDState& dstate = dstates_.emplace_back();
    dstate.id = i;
    dstate.byNode.resize(numNodes_);
  }

  for (std::uint64_t i = 0; i < poolSize; ++i) {
    VState& v = virtualPool_.emplace_back();
    v.id = i;
    if (pending[i].actual == kDeadVirtualSentinel) {
      if (pending[i].dstate != kDeadVirtualSentinel)
        throw snapshot::SnapshotError("SDS snapshot has a half-dead virtual");
      v.dead = true;
      continue;
    }
    v.actual = resolve(pending[i].actual);
    if (v.actual == nullptr || pending[i].dstate >= dstates_.size())
      throw snapshot::SnapshotError(
          "SDS snapshot references an unknown state or dstate");
    v.dstate = &dstates_[pending[i].dstate];
  }

  const auto virtualAt = [this](std::uint64_t id) -> VState& {
    if (id >= virtualPool_.size())
      throw snapshot::SnapshotError(
          "SDS snapshot references an unknown virtual state");
    return virtualPool_[id];
  };

  for (VDState& dstate : dstates_) {
    for (NodeId node = 0; node < numNodes_; ++node) {
      const std::uint64_t count = in.u64();
      dstate.byNode[node].reserve(count);
      for (std::uint64_t m = 0; m < count; ++m)
        dstate.byNode[node].push_back(&virtualAt(in.u64()));
    }
  }

  const std::uint64_t numActuals = in.u64();
  for (std::uint64_t i = 0; i < numActuals; ++i) {
    ExecutionState* actual = resolve(in.u64());
    if (actual == nullptr)
      throw snapshot::SnapshotError(
          "SDS snapshot references an unknown state");
    const std::uint64_t count = in.u64();
    std::vector<VState*>& virtuals = byActual_[actual];
    virtuals.reserve(count);
    for (std::uint64_t m = 0; m < count; ++m)
      virtuals.push_back(&virtualAt(in.u64()));
  }
}

void SdsMapper::checkInvariants() const {
  std::size_t totalVirtuals = 0;
  for (const VDState& dstate : dstates_) {
    SDE_ASSERT(dstate.byNode.size() == numNodes_, "dstate shape");
    StateGroup actuals(numNodes_);
    std::unordered_set<const ExecutionState*> distinct;
    for (NodeId node = 0; node < numNodes_; ++node) {
      SDE_ASSERT(!dstate.byNode[node].empty(),
                 "dstate must have >= 1 virtual per node");
      for (const VState* v : dstate.byNode[node]) {
        ++totalVirtuals;
        SDE_ASSERT(v->dstate == &dstate, "virtual's dstate link broken");
        SDE_ASSERT(v->actual->node() == node, "virtual on the wrong node");
        SDE_ASSERT(distinct.insert(v->actual).second,
                   "two virtuals of one dstate share an actual state");
        actuals.add(v->actual);
        // Cross-check the byActual_ index.
        const auto it = byActual_.find(v->actual);
        SDE_ASSERT(it != byActual_.end() &&
                       std::find(it->second.begin(), it->second.end(), v) !=
                           it->second.end(),
                   "byActual_ index out of sync");
      }
    }
    SDE_ASSERT(countConflicts(actuals) == 0,
               "dstate actuals must be pairwise conflict-free");
  }
  SDE_ASSERT(totalVirtuals == liveVirtuals_, "virtual count out of sync");
  for (const VState& v : virtualPool_)
    SDE_ASSERT(v.dead == (v.actual == nullptr && v.dstate == nullptr),
               "dead flag out of sync with virtual links");
  for (const auto& [actual, virtuals] : byActual_)
    SDE_ASSERT(!virtuals.empty(),
               "every state must have at least one virtual state");
}

}  // namespace sde
