// Duplicate-state detection.
//
// Duplicates — states with identical configuration (heap, stack, program
// counter, path constraints, communication history; §III-A) — are the
// quantity the paper's algorithms compete on: COB mass-produces them,
// COW produces bystander copies, SDS provably produces none (§III-D).
//
// Two notions are measured:
//  * kStrict — packets distinguished by identity, matching the paper's
//    formal model (§II-B: packets are "unique and distinguishable").
//    The §III-D theorem states SDS is duplicate-free in this sense.
//  * kContent — packets compared by content only. Equal-content packets
//    from rival senders then make receiver states compare equal; this
//    quantifies the headroom of the content-analysis optimisation the
//    paper sketches (and deliberately does not implement) in §III-D.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "vm/state.hpp"

namespace sde {

enum class DuplicateMode : std::uint8_t { kStrict, kContent };

struct DuplicateReport {
  std::uint64_t totalStates = 0;
  std::uint64_t distinctConfigurations = 0;
  // States beyond the first of each configuration class.
  std::uint64_t duplicateStates = 0;
  // Size of the largest configuration class.
  std::uint64_t largestClass = 0;

  [[nodiscard]] bool duplicateFree() const { return duplicateStates == 0; }
};

[[nodiscard]] DuplicateReport findDuplicates(
    const std::deque<std::unique_ptr<vm::ExecutionState>>& states,
    DuplicateMode mode = DuplicateMode::kStrict);

[[nodiscard]] DuplicateReport findDuplicates(
    const std::vector<vm::ExecutionState*>& states,
    DuplicateMode mode = DuplicateMode::kStrict);

}  // namespace sde
