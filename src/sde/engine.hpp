// The SDE engine: KleeNet's equivalent. Simulates a complete distributed
// system in a single process (paper §IV): it starts with k states — one
// per node — executes events in virtual-time order, forks states at
// symbolic branches, injects symbolic network failures, and delegates
// every packet transmission to a pluggable state-mapping algorithm
// (COB / COW / SDS).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "net/failure.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"
#include "os/events.hpp"
#include "os/node.hpp"
#include "os/runtime.hpp"
#include "sde/mapper.hpp"
#include "sde/scheduler.hpp"
#include "solver/solver.hpp"
#include "vm/merge.hpp"

namespace sde {

struct EngineConfig {
  // Virtual-time units a packet spends in flight per hop.
  std::uint64_t linkLatency = 1;
  // Resource caps emulating the paper's 40 GB abort of COB (0 = off).
  std::uint64_t maxStates = 0;
  std::uint64_t maxSimulatedMemoryBytes = 0;
  std::uint64_t maxEvents = 0;  // guards against event storms (broadcast
                                // loops produce exponentially many packets
                                // without creating new states)
  double maxWallSeconds = 0;
  // Worker threads of the parallel execution mode (sde/parallel.hpp).
  // Each Engine instance stays single-threaded; this is the fleet size
  // the partitioned runner spreads jobs over. 1 = current sequential
  // behavior.
  unsigned workers = 1;
  // Metric sampling / memory-cap checking cadence, in processed events.
  std::uint64_t sampleEveryEvents = 16;
  // Grow the sampling gap with the state count (a full sample walks all
  // states, so fixed-cadence sampling turns quadratic on large runs).
  // Disable for tests that must observe every event. State- and
  // wall-clock caps are still checked on every event; only the memory
  // cap is evaluated at sampling points.
  bool adaptiveSampling = true;
  // Run full structural + conflict-freeness checks after every event
  // (quadratic; tests and small scenarios only).
  bool checkInvariants = false;
  // Opt-in state merging: symbolic branches whose arms rejoin at a
  // post-dominator park there and ite-merge (vm/merge.hpp), and an
  // idle-state sweep after every event folds compatible siblings. Off by
  // default — exploration then matches the historical engine exactly.
  bool mergeStates = false;
  // Opt-in bounded loop summarization: a timer handler observed twice
  // with identical pre-dispatch state and clean effects (no clock reads,
  // sends, fresh symbolics or forks; one constant-delay re-arm) is
  // replayed from the recorded summary instead of the VM.
  bool loopSummarize = false;
  // Same-key event batching: consecutive ready events that dispatch the
  // same handler (equal time/node/kind/id, sibling states) are stepped
  // in one block, amortizing outer-loop housekeeping and string-keyed
  // stats bumps. Digest-invariant — pop order and per-event semantics
  // are untouched — so it stays on; the switch exists for A/B isolation
  // (bench_vm, dispatch equivalence fuzzing).
  bool batchEvents = true;
  vm::InterpConfig interp;
  solver::SolverConfig solver;
};

enum class RunOutcome : std::uint8_t {
  kCompleted,        // all events up to the horizon processed
  kAbortedStates,    // state cap hit
  kAbortedMemory,    // simulated-memory cap hit
  kAbortedEvents,    // event cap hit
  kAbortedWallTime,  // wall-clock cap hit
  kSuspended,        // external suspend request (requestSuspend)
};

[[nodiscard]] std::string_view runOutcomeName(RunOutcome outcome);

// Fleet-wide resource caps for a partitioned run (the paper's 40 GB
// cap-abort semantics, §IV-B, lifted to many engines): every engine
// checks the abort latch on each event, contributes its state count and
// sampled memory to the fleet totals, and the first worker to trip a
// cap latches the abort for everyone. All members are lock-free;
// engines on other threads observe the latch at their next event.
class SharedCaps {
 public:
  SharedCaps(std::uint64_t maxTotalStates, std::uint64_t maxTotalMemoryBytes,
             double maxWallSeconds)
      : maxTotalStates_(maxTotalStates),
        maxTotalMemoryBytes_(maxTotalMemoryBytes),
        maxWallSeconds_(maxWallSeconds),
        start_(std::chrono::steady_clock::now()) {}

  void noteStatesCreated(std::uint64_t n) {
    totalStates_.fetch_add(n, std::memory_order_relaxed);
  }
  // Engines report the change in their simulated-memory footprint at
  // sampling points (the same cadence the single-threaded memory cap
  // uses).
  void noteMemoryDelta(std::int64_t delta) {
    totalMemory_.fetch_add(delta, std::memory_order_relaxed);
  }

  // Latches `reason` if no abort is latched yet (first cap wins).
  void latch(RunOutcome reason) {
    std::uint8_t expected = kNotLatched;
    latched_.compare_exchange_strong(expected,
                                     static_cast<std::uint8_t>(reason),
                                     std::memory_order_relaxed);
  }

  // Called by every engine on every event: the latched abort, or a
  // freshly tripped cap (which this call latches).
  [[nodiscard]] std::optional<RunOutcome> check() {
    const std::uint8_t latched = latched_.load(std::memory_order_relaxed);
    if (latched != kNotLatched) return static_cast<RunOutcome>(latched);
    if (maxTotalStates_ != 0 &&
        totalStates_.load(std::memory_order_relaxed) >= maxTotalStates_) {
      latch(RunOutcome::kAbortedStates);
    } else if (maxTotalMemoryBytes_ != 0 &&
               totalMemory_.load(std::memory_order_relaxed) >=
                   static_cast<std::int64_t>(maxTotalMemoryBytes_)) {
      latch(RunOutcome::kAbortedMemory);
    } else if (maxWallSeconds_ != 0 &&
               std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
                       .count() >= maxWallSeconds_) {
      latch(RunOutcome::kAbortedWallTime);
    } else {
      return std::nullopt;
    }
    return static_cast<RunOutcome>(latched_.load(std::memory_order_relaxed));
  }

  [[nodiscard]] bool aborted() const {
    return latched_.load(std::memory_order_relaxed) != kNotLatched;
  }
  // Whether engines need to meter memory for these caps at all.
  [[nodiscard]] bool tracksMemory() const { return maxTotalMemoryBytes_ != 0; }
  [[nodiscard]] std::uint64_t totalStates() const {
    return totalStates_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint8_t kNotLatched = 0xFF;

  std::uint64_t maxTotalStates_;
  std::uint64_t maxTotalMemoryBytes_;
  double maxWallSeconds_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> totalStates_{0};
  std::atomic<std::int64_t> totalMemory_{0};
  std::atomic<std::uint8_t> latched_{kNotLatched};
};

class Engine {
 public:
  Engine(const os::NetworkPlan& plan, MapperKind mapperKind,
         EngineConfig config = {});
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Configuration (before the first run() call) -------------------------
  void setFailureModel(std::unique_ptr<net::FailureModel> model);
  // Preconfigures globals[slot] = value on `node` at boot — how routes
  // and roles reach node programs (the paper's "preconfigured data
  // path", Figure 9).
  void setBootGlobal(net::NodeId node, std::uint64_t slot,
                     std::uint64_t value);

  // Observer invoked every `sampleEveryEvents` processed events and once
  // at the end of each run (metric recording for the benches).
  using Sampler = std::function<void(const Engine&)>;
  void setSampler(Sampler sampler) { sampler_ = std::move(sampler); }

  // Deterministic-replay filter: failure decisions whose fully scoped
  // variable name ("n<node>.<label>.<k>") appears here are not forked —
  // the engine takes only the mapped branch (true = the failure branch)
  // and adds the same path constraint the corresponding branch of an
  // unfiltered run would carry. This is how the parallel runner turns
  // one exploration into disjoint partition jobs, and how a recorded
  // decision log replays a specific dscenario.
  void setDecisionFilter(
      std::unordered_map<std::string, bool> forcedDecisions) {
    decisionFilter_ = std::move(forcedDecisions);
  }

  // Attaches fleet-wide caps (cooperative abort across the engines of a
  // partitioned run). The SharedCaps object must outlive all runs.
  void setSharedCaps(SharedCaps* caps) { sharedCaps_ = caps; }

  // Cooperative external suspend: the current (or next) run() returns
  // RunOutcome::kSuspended at its next event boundary, after triggering
  // the abort-time checkpoint exactly like a resource-cap latch — a
  // restored checkpoint continues the run losslessly. Safe to call from
  // a signal-handling context of the same thread (the sampler hook) or
  // another thread; sticky until clearSuspendRequest().
  void requestSuspend() {
    suspendRequested_.store(true, std::memory_order_relaxed);
  }
  void clearSuspendRequest() {
    suspendRequested_.store(false, std::memory_order_relaxed);
  }

  // --- Observability ---------------------------------------------------------
  // Attaches a structured event tracer (obs/). nullptr (the default)
  // disables tracing; every emit site is a single pointer compare then.
  // The sink must outlive all runs; install it *before* restore() so a
  // resumed run continues the suspended run's sequence numbering.
  void setTraceSink(obs::TraceSink* sink);
  [[nodiscard]] obs::TraceSink* traceSink() const { return trace_; }
  // Attaches a phase profiler (wall-time by engine phase). Never feeds
  // stats_: profiler output is wall-clock and must stay out of the
  // deterministic fingerprint.
  void setProfiler(obs::PhaseProfiler* profiler);
  [[nodiscard]] obs::PhaseProfiler* profiler() const { return profiler_; }
  // Attaches the live metrics registry (obs/metrics.hpp): engine
  // fork/deliver/terminate counters, peak gauges, and per-layer solver
  // latency histograms (forwarded to the solver pipeline). Purely
  // observational — never feeds exploration decisions, so the run
  // fingerprint is identical with or without it. nullptr (the default)
  // costs one pointer compare per site.
  void setMetrics(obs::MetricsRegistry* metrics);
  [[nodiscard]] obs::MetricsRegistry* metricsRegistry() const {
    return metrics_;
  }

  // --- Execution -------------------------------------------------------------
  // Processes all events with time <= `untilVirtualTime`. May be called
  // repeatedly with increasing horizons.
  RunOutcome run(std::uint64_t untilVirtualTime);

  // --- Checkpoint / restore ---------------------------------------------------
  // Serializes the complete run state — expression DAG, states (with
  // copy-on-write memory sharing preserved), constraints, solver cache
  // and stats, scheduler heap, mapper grouping — such that a restored
  // engine continues the run exactly where the original stood: the
  // resumed run's merged fingerprint digest is byte-identical to the
  // uninterrupted run's. Implemented in snapshot/checkpoint.cpp.
  void checkpoint(std::ostream& out) const;
  // Restores a checkpoint into this engine, which must be freshly
  // constructed over the same network plan, mapper kind and
  // configuration as the engine that wrote it. Throws
  // snapshot::SnapshotError on version/shape mismatches or corrupt
  // streams (the engine is then unusable — construct a new one).
  void restore(std::istream& in);

  // Auto-checkpoint: once at least `everyEvents` events have been
  // processed since the last checkpoint, `sink` is invoked at the next
  // sampling point (the cadence rides the sampling hook, so the actual
  // gap is max(everyEvents, sampling gap)); the sink is also invoked
  // once when a resource cap aborts the run, turning cap latches into
  // suspensions instead of lost work. everyEvents = 0 disables the
  // periodic trigger but keeps the abort-time checkpoint.
  using CheckpointSink = std::function<void(const Engine&)>;
  void setCheckpointSink(CheckpointSink sink, std::uint64_t everyEvents) {
    checkpointSink_ = std::move(sink);
    checkpointEveryEvents_ = everyEvents;
  }

  // --- Introspection -----------------------------------------------------------
  [[nodiscard]] std::uint64_t numStates() const { return states_.size(); }
  [[nodiscard]] std::uint64_t numLiveStates() const;
  [[nodiscard]] const std::deque<std::unique_ptr<ExecutionState>>& states()
      const {
    return states_;
  }
  [[nodiscard]] std::vector<ExecutionState*> statesOfNode(NodeId node) const;

  [[nodiscard]] StateMapper& mapper() { return *mapper_; }
  [[nodiscard]] const StateMapper& mapper() const { return *mapper_; }
  [[nodiscard]] expr::Context& context() { return ctx_; }
  [[nodiscard]] solver::Solver& solver() { return solver_; }
  [[nodiscard]] const net::Topology& topology() const {
    return plan_.topology();
  }

  [[nodiscard]] std::uint64_t virtualNow() const { return virtualNow_; }
  [[nodiscard]] std::uint64_t eventsProcessed() const {
    return eventsProcessed_;
  }
  // Wall-clock time spent inside run(), cumulative.
  [[nodiscard]] double wallSeconds() const;

  // Bytes of state the run holds, with copy-on-write sharing attributed
  // once (the paper's "RAM" axis, deterministically).
  [[nodiscard]] std::uint64_t simulatedMemoryBytes() const;

  // Same-key batch shape of this engine's run() calls, for benches and
  // the dispatch battery's anti-vacuity check. Deliberately NOT registry
  // counters: where a batch breaks depends on suspend cuts and sampling
  // cadence, so these may differ between an uninterrupted run and a
  // suspend/resume split of it while every real counter converges.
  [[nodiscard]] std::uint64_t batches() const { return batches_; }
  [[nodiscard]] std::uint64_t batchedEvents() const { return batchedEvents_; }

  [[nodiscard]] support::StatsRegistry& stats() { return stats_; }
  [[nodiscard]] const support::StatsRegistry& stats() const { return stats_; }
  [[nodiscard]] const support::StatsRegistry& interpStats() const {
    return interp_.stats();
  }
  [[nodiscard]] const support::StatsRegistry& solverStats() const {
    return solver_.stats();
  }

 private:
  // Interpreter callbacks: a fork here is a *local symbolic branch*, so
  // the mapper is notified (COB reacts by forking the whole dscenario).
  class InterpSink final : public vm::EffectSink {
   public:
    explicit InterpSink(Engine& engine) : engine_(engine) {}
    ExecutionState& forkState(ExecutionState& original) override;
    void onSend(ExecutionState& sender, NodeId dst,
                std::vector<expr::Ref> payload) override;
    bool tryMerge(ExecutionState& survivor, ExecutionState& absorbed) override;
    void onLog(ExecutionState& state, std::string_view message,
               expr::Ref value) override;

   private:
    Engine& engine_;
  };

  // Mapper services: forks performed *by* the mapping algorithm are pure
  // clones — no re-notification (that would recurse).
  class Runtime final : public MapperRuntime {
   public:
    explicit Runtime(Engine& engine) : engine_(engine) {}
    ExecutionState& forkState(ExecutionState& original) override;
    support::StatsRegistry& stats() override;
    obs::TraceSink* trace() override;

   private:
    Engine& engine_;
  };

  void boot();
  void processEvent(ExecutionState& state, vm::PendingEvent event);
  void deliver(ExecutionState& state, const vm::PendingEvent& event);
  // The local-branch fork path (interpreter and failure models);
  // `cause` is the trace attribution (kBranch or kFailure).
  ExecutionState& forkLocal(ExecutionState& original, obs::ForkCause cause);
  void sendOne(ExecutionState& sender, NodeId dst,
               const std::vector<expr::Ref>& payload);
  ExecutionState& cloneInternal(ExecutionState& original);
  struct FailureVariable {
    expr::Ref var = nullptr;
    std::string name;
  };
  FailureVariable makeFailureVariable(ExecutionState& state,
                                      std::string_view label);
  void applyFailureBranch(ExecutionState& state, net::FailureKind kind,
                          bool failed, const vm::PendingEvent& event);
  void appendRecvRecord(ExecutionState& state, const vm::PendingEvent& event);
  void sampleAndCheck();
  [[nodiscard]] std::optional<RunOutcome> checkCaps();

  // --- State merging (config_.mergeStates) ---------------------------------
  // Full merge pipeline: vm compatibility -> mapper veto -> algebra.
  // On success the absorbed state (plus any mapper casualties) joins
  // pendingReaps_; removal is deferred to the end of the event so no
  // live reference dangles mid-run.
  bool tryMergeStates(ExecutionState& survivor, ExecutionState& absorbed);
  // Pairwise sweep over this event's touched idle states.
  void mergeSweep();
  void reapMergedStates();

  // --- Loop summarization (config_.loopSummarize) --------------------------
  struct LoopEntry {
    std::uint64_t signature = 0;     // pre-dispatch state fingerprint
    std::uint64_t period = 0;        // recorded constant re-arm delay
    std::uint64_t instructions = 0;  // instructions one iteration costs
    std::uint32_t streak = 0;        // consecutive identical observations
    bool armed = false;
  };
  [[nodiscard]] std::uint64_t loopSignature(const ExecutionState& state,
                                            std::uint32_t timerId) const;
  // Fast path: replays the recorded iteration (clock, re-arm, fuel)
  // without entering the VM. Returns false when not armed / mismatched.
  bool tryLoopFastPath(ExecutionState& state, const vm::PendingEvent& event,
                       std::uint64_t preSignature);
  void noteLoopObservation(ExecutionState& state,
                           const vm::PendingEvent& event,
                           std::uint64_t preSignature);

  os::NetworkPlan plan_;
  EngineConfig config_;
  expr::Context ctx_;
  solver::Solver solver_;
  vm::Interpreter interp_;
  std::unique_ptr<StateMapper> mapper_;
  std::unique_ptr<net::FailureModel> failureModel_;
  Scheduler scheduler_;
  Sampler sampler_;
  CheckpointSink checkpointSink_;
  std::uint64_t checkpointEveryEvents_ = 0;
  std::uint64_t lastCheckpointAt_ = 0;  // not serialized: a resumed run
                                        // restarts its cadence
  std::unordered_map<std::string, bool> decisionFilter_;
  SharedCaps* sharedCaps_ = nullptr;
  std::atomic<bool> suspendRequested_{false};
  obs::TraceSink* trace_ = nullptr;
  obs::PhaseProfiler* profiler_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Metric ids, registered once in setMetrics so the hot sites are one
  // relaxed atomic each.
  obs::MetricsRegistry::Id mForks_ = 0;
  obs::MetricsRegistry::Id mEvents_ = 0;
  obs::MetricsRegistry::Id mPackets_ = 0;
  obs::MetricsRegistry::Id mTerminations_ = 0;
  obs::MetricsRegistry::Id mPeakStates_ = 0;
  obs::MetricsRegistry::Id mPeakMemory_ = 0;
  obs::MetricsRegistry::Id mMerges_ = 0;
  obs::MetricsRegistry::Id mLoopSummaries_ = 0;
  // States whose termination was already traced (only populated while a
  // sink is attached; deliberately not serialized — a resumed trace may
  // re-report a termination, which the validator tolerates for resumed
  // streams).
  std::unordered_set<StateId> traceTerminated_;
  std::uint64_t lastReportedMemoryBytes_ = 0;
  support::StatsRegistry stats_;
  InterpSink interpSink_;
  Runtime mapperRuntime_;

  std::deque<std::unique_ptr<ExecutionState>> states_;
  std::unordered_map<StateId, ExecutionState*> byId_;
  std::unordered_map<NodeId, std::unordered_map<std::uint64_t, std::uint64_t>>
      bootGlobals_;

  std::vector<ExecutionState*> touched_;  // re-register after each event
  // Merge machinery: the guard-variable allocator is serialized
  // (checkpoint v5) so resumed runs mint disjoint guard names; the reap
  // list and the loop-summary table are engine-local.
  vm::Merger merger_;
  std::uint64_t nextMergeGuard_ = 0;
  std::vector<ExecutionState*> pendingReaps_;
  std::map<std::pair<StateId, std::uint32_t>, LoopEntry> loopDetector_;
  // Fork cost of the most recent cloneInternal (deterministic per state
  // shape); carried on the kStateFork trace event by both fork paths.
  std::uint64_t lastForkCopiedElements_ = 0;
  std::uint64_t lastForkSharedChunks_ = 0;
  bool booted_ = false;
  StateId nextStateId_ = 0;
  std::uint64_t nextPacketId_ = 1;
  std::uint64_t virtualNow_ = 0;
  std::uint64_t eventsProcessed_ = 0;
  std::uint64_t batches_ = 0;        // run-local diagnostics — see batches()
  std::uint64_t batchedEvents_ = 0;  // for why these are not stats counters
  double wallSecondsAccumulated_ = 0;
  std::chrono::steady_clock::time_point runStart_{};
  bool running_ = false;
};

}  // namespace sde
