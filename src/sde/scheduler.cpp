#include "sde/scheduler.hpp"

namespace sde {

void Scheduler::registerState(const vm::ExecutionState& state) {
  for (const vm::PendingEvent& event : state.pendingEvents) {
    heap_.push(Entry{event.time, state.node(),
                     static_cast<std::uint8_t>(event.kind), event.seq,
                     state.id()});
  }
}

}  // namespace sde
