#include "sde/duplicates.hpp"

#include <algorithm>

namespace sde {

namespace {

template <typename Range, typename Deref>
DuplicateReport analyse(const Range& states, DuplicateMode mode,
                        Deref&& deref) {
  DuplicateReport report;
  std::unordered_map<std::uint64_t, std::uint64_t> classes;
  for (const auto& holder : states) {
    const vm::ExecutionState& state = deref(holder);
    ++report.totalStates;
    const std::uint64_t hash = mode == DuplicateMode::kStrict
                                   ? state.configHashStrict()
                                   : state.configHash();
    ++classes[hash];
  }
  report.distinctConfigurations = classes.size();
  for (const auto& [hash, count] : classes) {
    report.duplicateStates += count - 1;
    report.largestClass = std::max(report.largestClass, count);
  }
  return report;
}

}  // namespace

DuplicateReport findDuplicates(
    const std::deque<std::unique_ptr<vm::ExecutionState>>& states,
    DuplicateMode mode) {
  return analyse(states, mode,
                 [](const auto& p) -> const vm::ExecutionState& { return *p; });
}

DuplicateReport findDuplicates(const std::vector<vm::ExecutionState*>& states,
                               DuplicateMode mode) {
  return analyse(states, mode,
                 [](const auto* p) -> const vm::ExecutionState& { return *p; });
}

}  // namespace sde
