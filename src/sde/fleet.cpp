#include "sde/fleet.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "obs/metrics_shm.hpp"
#include "obs/trace_io.hpp"
#include "snapshot/manifest.hpp"
#include "snapshot/shared_cache_io.hpp"
#include "solver/shm_cache.hpp"
#include "support/logging.hpp"

namespace sde {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Frame protocol. Every message is one fixed-size length-prefixed frame
// well under PIPE_BUF, so pipe writes are atomic and frames never
// interleave even if a future change made two threads share a pipe.

enum class FrameType : std::uint8_t {
  kAssign = 1,      // coord -> worker: lease [a, b)
  kSteal = 2,       // coord -> worker: split your pending shard; seq = a
  kShutdown = 3,    // coord -> worker: exit cleanly
  kIdle = 4,        // worker -> coord: shard exhausted, want work
  kStatus = 5,      // worker -> coord: next=a, hi=b, states=c, events=d
  kJobDone = 6,     // worker -> coord: job=a, executed|outcome<<8=b,
                    //                  states=c, events=d
  kStealReply = 7,  // worker -> coord: seq=a, victimNext=b,
                    //                  stolen=[c, d)
  kSuspendFleet = 8,  // coord -> worker: checkpoint in-flight job, exit
  kSuspended = 9,     // worker -> coord: job=a checkpointed (states=c,
                      //                  events=d); worker exits next
};

struct Frame {
  FrameType type{};
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t d = 0;
};

constexpr std::uint32_t kFramePayload = 1 + 4 + 4 + 8 + 8;
constexpr std::size_t kFrameWire = 4 + kFramePayload;

// Blocking write of one frame. Returns false if the peer is gone
// (EPIPE with SIGPIPE ignored) — the caller decides whether that is
// fatal (worker: yes) or expected (coordinator writing to a corpse).
bool writeFrame(int fd, const Frame& frame) {
  char wire[kFrameWire];
  std::memcpy(wire, &kFramePayload, 4);
  wire[4] = static_cast<char>(frame.type);
  std::memcpy(wire + 5, &frame.a, 4);
  std::memcpy(wire + 9, &frame.b, 4);
  std::memcpy(wire + 13, &frame.c, 8);
  std::memcpy(wire + 21, &frame.d, 8);
  std::size_t off = 0;
  while (off < kFrameWire) {
    const ssize_t n = ::write(fd, wire + off, kFrameWire - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

// Incremental frame parser over a nonblocking fd.
class FrameReader {
 public:
  enum class Fill : std::uint8_t { kData, kWouldBlock, kEof };

  Fill fill(int fd) {
    char tmp[4096];
    const ssize_t n = ::read(fd, tmp, sizeof tmp);
    if (n > 0) {
      buf_.insert(buf_.end(), tmp, tmp + n);
      return Fill::kData;
    }
    if (n == 0) return Fill::kEof;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
      return Fill::kWouldBlock;
    return Fill::kEof;  // read errors count as peer death
  }

  std::optional<Frame> next() {
    const std::size_t avail = buf_.size() - pos_;
    if (avail < 4) return std::nullopt;
    std::uint32_t len = 0;
    std::memcpy(&len, buf_.data() + pos_, 4);
    if (len != kFramePayload)
      throw FleetError("fleet pipe protocol violation (bad frame length " +
                       std::to_string(len) + ")");
    if (avail < 4 + len) return std::nullopt;
    const char* p = buf_.data() + pos_ + 4;
    Frame frame;
    frame.type = static_cast<FrameType>(p[0]);
    std::memcpy(&frame.a, p + 1, 4);
    std::memcpy(&frame.b, p + 5, 4);
    std::memcpy(&frame.c, p + 9, 8);
    std::memcpy(&frame.d, p + 17, 8);
    pos_ += 4 + len;
    if (pos_ > 4096) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
      pos_ = 0;
    }
    return frame;
  }

 private:
  std::vector<char> buf_;
  std::size_t pos_ = 0;
};

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// ---------------------------------------------------------------------------
// Worker process. Runs jobs of its leased [next, hi) range in id order,
// polling the command pipe between jobs and at every engine sampling
// point so steals are answered mid-job. Exits only via _exit — the
// child must never unwind into the coordinator's stack.

struct WorkerContext {
  unsigned slot = 0;
  int cmdFd = -1;     // read end, nonblocking
  int statusFd = -1;  // write end
  const EngineFactory* factory = nullptr;
  const PartitionPlan* plan = nullptr;
  const FleetConfig* config = nullptr;
  solver::SharedQueryStore* shared = nullptr;  // inherited shm mapping
  // Live metrics: the worker's registry (the process-global one, reset
  // right after fork so inherited coordinator counters are not
  // re-counted) and the inherited shm plane mapping. Slot i publishes
  // into plane slot i+1; slot 0 belongs to the coordinator.
  obs::MetricsRegistry* metrics = nullptr;
  obs::ShmMetricsPlane* metricsPlane = nullptr;
  ParallelConfig pc;  // collect flags for collectJobResult

  FrameReader reader;
  std::uint32_t next = 0;
  std::uint32_t hi = 0;
  bool active = false;
  bool shutdown = false;
  bool suspend = false;             // graceful fleet suspend requested
  Engine* runningEngine = nullptr;  // engine of the in-flight job, if any
};

[[noreturn]] void workerExit(int code) { ::_exit(code); }

// Best-effort snapshot publication into this worker's plane slot. An
// oversize snapshot (or a plane that was never created) publishes
// nothing — the live view is lossy by contract, the durable merge is
// not.
void workerPublishMetrics(const WorkerContext& w) {
  if (w.metrics == nullptr || w.metricsPlane == nullptr) return;
  w.metricsPlane->publish(w.slot + 1, w.metrics->snapshot());
}

void workerSend(WorkerContext& w, const Frame& frame) {
  // A dead coordinator makes this worker useless; its jobs are safe in
  // the durable queue.
  if (!writeFrame(w.statusFd, frame)) workerExit(1);
}

// The victim half of the steal protocol: hand over the upper half of
// the strictly-pending jobs (the running/imminent job `next` always
// stays), shrinking our own range BEFORE the reply is written — dying
// between the two steps leaves the range unshrunk from the
// coordinator's view and simply re-leased wholesale by the death path.
void workerHandleSteal(WorkerContext& w, std::uint32_t seq) {
  Frame reply;
  reply.type = FrameType::kStealReply;
  reply.a = seq;
  reply.b = w.next;
  const std::uint32_t firstPending = w.next + 1;
  if (w.active && firstPending < w.hi) {
    const std::uint32_t pending = w.hi - firstPending;
    const std::uint32_t stolenLo = firstPending + pending / 2;
    reply.c = stolenLo;
    reply.d = w.hi;
    w.hi = stolenLo;
  } else {
    reply.c = 0;
    reply.d = 0;
  }
  workerSend(w, reply);
}

void workerProcessCommand(WorkerContext& w, const Frame& frame) {
  switch (frame.type) {
    case FrameType::kAssign:
      if (frame.a < frame.b) {
        w.next = frame.a;
        w.hi = frame.b;
        w.active = true;
        Frame status;
        status.type = FrameType::kStatus;
        status.a = w.next;
        status.b = w.hi;
        workerSend(w, status);
      } else {
        Frame idle;
        idle.type = FrameType::kIdle;
        workerSend(w, idle);
      }
      break;
    case FrameType::kSteal:
      workerHandleSteal(w, frame.a);
      break;
    case FrameType::kShutdown:
      w.shutdown = true;
      break;
    case FrameType::kSuspendFleet:
      w.suspend = true;
      // Mid-job: ask the engine to abort at its next event; its abort
      // path writes the checkpoint, workerRunOneJob sees kSuspended.
      if (w.runningEngine != nullptr) w.runningEngine->requestSuspend();
      break;
    default:
      break;  // coordinator-only frame types: ignore
  }
}

// Drains every command currently in the pipe without blocking.
void workerDrainCommands(WorkerContext& w) {
  for (;;) {
    while (auto frame = w.reader.next()) workerProcessCommand(w, *frame);
    const FrameReader::Fill fill = w.reader.fill(w.cmdFd);
    if (fill == FrameReader::Fill::kEof) workerExit(1);  // coordinator died
    if (fill == FrameReader::Fill::kWouldBlock) {
      while (auto frame = w.reader.next()) workerProcessCommand(w, *frame);
      return;
    }
  }
}

// Runs the job at w.next. Returns true if the run was interrupted by a
// fleet suspend (checkpoint written, kSuspended reported — the caller
// must exit instead of advancing).
bool workerRunOneJob(WorkerContext& w) {
  const PartitionJob& job = w.plan->jobs[w.next];
  const FleetConfig& config = *w.config;
  if (config.chaos.beforeJob) config.chaos.beforeJob(w.slot, job.id);

  const fs::path dir = config.checkpointDir;
  const fs::path done = snapshot::jobDonePath(dir, job.id);
  const fs::path ckpt = snapshot::jobCheckpointPath(dir, job.id);

  bool executed = false;
  RunOutcome outcome = RunOutcome::kCompleted;
  std::uint64_t states = 0;
  std::uint64_t events = 0;
  bool haveResult = false;
  // Completed jobs are never re-run — re-leasing after a crash is
  // idempotent because this check precedes any engine construction.
  if (fs::exists(done)) {
    try {
      const JobResult prior = snapshot::readJobResultFile(done);
      outcome = prior.outcome;
      states = prior.states;
      events = prior.events;
      haveResult = true;
    } catch (const snapshot::SnapshotError&) {
      // Torn .done (hard machine crash): re-run the job.
    }
  }

  if (!haveResult) {
    executed = true;
    const auto makeEngine = [&] {
      std::unique_ptr<Engine> engine = (*w.factory)(job);
      SDE_ASSERT(engine != nullptr, "engine factory returned null");
      engine->setDecisionFilter(std::unordered_map<std::string, bool>(
          job.forced.begin(), job.forced.end()));
      if (w.shared != nullptr) engine->solver().setSharedCache(w.shared);
      if (w.metrics != nullptr) engine->setMetrics(w.metrics);
      return engine;
    };
    std::unique_ptr<Engine> engine = makeEngine();

    // Per-job wall-clock attribution, bridged into the metrics registry
    // after the run. Digest-safe: profiler output never feeds stats_.
    obs::PhaseProfiler metricsProfiler;
    if (w.metrics != nullptr) engine->setProfiler(&metricsProfiler);

    // Tracing: sink installed before restore so a resumed job continues
    // the suspended run's sequence numbering (same as the thread
    // runner).
    std::ofstream traceOs;
    std::unique_ptr<obs::StreamTraceSink> traceSink;
    if (!config.traceDir.empty()) {
      traceOs.open(jobTracePath(config.traceDir, job.id),
                   std::ios::binary | std::ios::trunc);
      obs::TraceHeader header;
      header.numNodes = engine->topology().numNodes();
      header.stream = job.id;
      header.mapper = std::string(engine->mapper().name());
      header.scenario = config.scenarioSpec;
      traceSink = std::make_unique<obs::StreamTraceSink>(traceOs, header);
      engine->setTraceSink(traceSink.get());
    }

    // Any checkpoint present belongs to this run (the coordinator
    // cleared foreign files at startup): resume it — this is both the
    // config.resume path and the cheap continuation of a re-leased job
    // whose previous owner was killed mid-shard.
    if (fs::exists(ckpt)) {
      try {
        std::ifstream in(ckpt, std::ios::binary);
        engine->restore(in);
      } catch (const snapshot::SnapshotError&) {
        engine = makeEngine();  // torn checkpoint: restart from scratch
        if (traceSink != nullptr) engine->setTraceSink(traceSink.get());
        if (w.metrics != nullptr) engine->setProfiler(&metricsProfiler);
      }
    }
    // Visible to the command pump so a kSuspendFleet arriving mid-run
    // aborts this engine; a suspend that raced job startup is applied
    // here instead of being lost.
    w.runningEngine = engine.get();
    if (w.suspend) engine->requestSuspend();

    engine->setCheckpointSink(
        [&](const Engine& e) {
          snapshot::atomicWriteFile(ckpt,
                                    [&](std::ostream& os) { e.checkpoint(os); });
          if (config.chaos.onCheckpoint)
            config.chaos.onCheckpoint(w.slot, job.id);
        },
        config.checkpointEveryEvents);

    // The sampler hook doubles as the mid-job protocol pump: answer
    // steals and refresh the coordinator's mirror of our frontier.
    std::uint64_t lastStatusEvents = 0;
    engine->setSampler([&](const Engine& e) {
      workerDrainCommands(w);
      if (e.eventsProcessed() - lastStatusEvents >=
          std::max<std::uint64_t>(1, config.statusEveryEvents)) {
        lastStatusEvents = e.eventsProcessed();
        Frame status;
        status.type = FrameType::kStatus;
        status.a = w.next;
        status.b = w.hi;
        status.c = e.numStates();
        status.d = e.eventsProcessed();
        workerSend(w, status);
        workerPublishMetrics(w);
      }
    });

    outcome = engine->run(w.pc.horizon);
    w.runningEngine = nullptr;
    if (outcome == RunOutcome::kSuspended) {
      // The abort path already wrote the checkpoint. Report and bail —
      // no result extraction for a job that is deliberately unfinished.
      if (traceSink != nullptr) {
        engine->setTraceSink(nullptr);
        try {
          traceSink->close();
        } catch (const obs::TraceError& e) {
          support::logError("trace", e.what());
        }
      }
      if (w.metrics != nullptr) {
        metricsProfiler.profile().toMetrics(*w.metrics);
        workerPublishMetrics(w);
      }
      Frame suspendedFrame;
      suspendedFrame.type = FrameType::kSuspended;
      suspendedFrame.a = job.id;
      suspendedFrame.c = engine->numStates();
      suspendedFrame.d = engine->eventsProcessed();
      workerSend(w, suspendedFrame);
      return true;
    }
    const JobResult result = collectJobResult(*engine, job, w.pc, outcome);
    if (traceSink != nullptr) {
      engine->setTraceSink(nullptr);
      try {
        traceSink->close();
      } catch (const obs::TraceError& e) {
        support::logError("trace", e.what());
      }
    }
    if (outcome == RunOutcome::kCompleted) {
      snapshot::writeJobResultFile(done, result);
      std::error_code ec;
      fs::remove(ckpt, ec);  // superseded by the .done file
    }
    states = result.states;
    events = result.events;
    if (w.metrics != nullptr) {
      metricsProfiler.profile().toMetrics(*w.metrics);
      workerPublishMetrics(w);
    }
  }

  Frame doneFrame;
  doneFrame.type = FrameType::kJobDone;
  doneFrame.a = job.id;
  doneFrame.b = (executed ? 1u : 0u) |
                (static_cast<std::uint32_t>(outcome) << 8);
  doneFrame.c = states;
  doneFrame.d = events;
  workerSend(w, doneFrame);
  ++w.next;
  return false;
}

[[noreturn]] void workerMain(WorkerContext& w) {
  for (;;) {
    if (w.shutdown || w.suspend) workerExit(0);
    if (w.active) {
      workerDrainCommands(w);  // a steal may have shrunk hi
      if (w.shutdown || w.suspend) workerExit(0);
      if (w.next < w.hi) {
        if (workerRunOneJob(w)) workerExit(0);
        continue;
      }
      w.active = false;
      Frame idle;
      idle.type = FrameType::kIdle;
      workerSend(w, idle);
    }
    // Idle: block until the coordinator says something.
    struct pollfd pfd {};
    pfd.fd = w.cmdFd;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, -1);
    if (rc < 0 && errno != EINTR) workerExit(1);
    workerDrainCommands(w);
  }
}

// ---------------------------------------------------------------------------
// Coordinator.

// SIGTERM-triggered graceful suspend (FleetConfig::installSigtermSuspend).
// The handler only sets the flag; the coordinator polls it between
// protocol rounds. File-scope because signal handlers cannot capture.
volatile std::sig_atomic_t g_fleetSigterm = 0;

void fleetSigtermHandler(int) { g_fleetSigterm = 1; }

class ScopedSigtermSuspend {
 public:
  explicit ScopedSigtermSuspend(bool install) : installed_(install) {
    if (!installed_) return;
    g_fleetSigterm = 0;
    struct sigaction action {};
    action.sa_handler = fleetSigtermHandler;
    ::sigaction(SIGTERM, &action, &saved_);
  }
  ~ScopedSigtermSuspend() {
    if (installed_) ::sigaction(SIGTERM, &saved_, nullptr);
  }

 private:
  bool installed_;
  struct sigaction saved_ {};
};

struct SlotState {
  pid_t pid = -1;
  int cmdW = -1;
  int statusR = -1;
  FrameReader reader;
  bool alive = false;
  bool idle = false;
  // Mirror of the worker's lease. nextKnown lags the truth by at most
  // one in-flight frame; re-leases use it, so a killed worker's
  // *completed* jobs may be re-leased — harmless, the .done check makes
  // re-runs impossible.
  std::uint32_t nextKnown = 0;
  std::uint32_t hi = 0;
  // Pending steal where this slot is the victim (0 = none).
  std::uint32_t stealSeq = 0;
  int thiefSlot = -1;
};

struct JobReport {
  bool seen = false;
  bool completed = false;  // RunOutcome::kCompleted
  RunOutcome outcome = RunOutcome::kCompleted;
  std::uint64_t states = 0;
  std::uint64_t events = 0;
};

class Coordinator {
 public:
  Coordinator(const EngineFactory& factory, const PartitionPlan& plan,
              const FleetConfig& config, solver::ShmQueryCache* shm,
              obs::ShmMetricsPlane* metricsPlane)
      : factory_(factory),
        plan_(plan),
        config_(config),
        shm_(shm),
        metricsPlane_(metricsPlane) {
    if (config_.shmMetrics) {
      // A registry of our own (not the process-global one): a process
      // embedding several sequential fleets must not leak one run's
      // fleet.* counters into the next run's plane.
      mSteals_ = coordinatorMetrics_.counter("fleet.steals");
      mRespawns_ = coordinatorMetrics_.counter("fleet.respawns");
      mDeaths_ = coordinatorMetrics_.counter("fleet.worker_deaths");
      mSuspends_ = coordinatorMetrics_.counter("fleet.suspends");
    }
    pc_.horizon = config.horizon;
    pc_.collectScenarioFingerprints = config.collectScenarioFingerprints;
    pc_.collectStateFingerprints = config.collectStateFingerprints;
    pc_.collectTestcases = config.collectTestcases;
    pc_.checkpointDir = config.checkpointDir;
    pc_.checkpointEveryEvents = config.checkpointEveryEvents;
    pc_.scenarioSpec = config.scenarioSpec;
    pc_.traceDir = config.traceDir;
  }

  ~Coordinator() { killAll(); }

  FleetResult run() {
    const auto start = std::chrono::steady_clock::now();
    const std::uint32_t numJobs =
        static_cast<std::uint32_t>(plan_.jobs.size());
    reports_.resize(numJobs);
    result_.executedCounts.assign(numJobs, 0);
    result_.processes = config_.processes;

    pool_ = initialLeases();
    slots_.resize(config_.processes);
    for (unsigned slot = 0; slot < config_.processes; ++slot) {
      spawn(slot);
      if (!pool_.empty()) {
        const auto range = pool_.back();
        pool_.pop_back();
        assign(slot, range.first, range.second);
      } else {
        assign(slot, 0, 0);  // empty lease: worker reports idle
      }
    }

    lastActivity_ = std::chrono::steady_clock::now();
    for (;;) {
      if (suspending_) {
        if (allDead()) break;
      } else if (completed_ == numJobs) {
        if (!shuttingDown_)
          beginShutdown();
        else if (allDead())
          break;
      } else if (suspendRequested()) {
        beginSuspend();
      }
      pollOnce();
      publishCoordinatorMetrics();
    }
    reapAll();
    publishCoordinatorMetrics();
    if (config_.shmMetrics) {
      // The live view: every published worker slot plus our own. Exact
      // totals are grafted on top from the durable merge in runFleet.
      result_.metrics = metricsPlane_ != nullptr
                            ? metricsPlane_->aggregate()
                            : coordinatorMetrics_.snapshot();
    }

    if (suspending_ && completed_ != numJobs) {
      // Deliberately unfinished: count what the durable queue holds and
      // skip the merge — digests only exist for finished runs.
      result_.suspended = true;
      result_.result.outcome = RunOutcome::kSuspended;
      const fs::path dir = config_.checkpointDir;
      for (const PartitionJob& job : plan_.jobs)
        if (fs::exists(snapshot::jobDonePath(dir, job.id)))
          ++result_.jobsDone;
    } else {
      merge();
      result_.jobsDone = static_cast<std::uint32_t>(plan_.jobs.size());
    }
    result_.result.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return std::move(result_);
  }

 private:
  // Initial shard leases, as a stack the spawn loop pops from.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> initialLeases() {
    const std::uint32_t numJobs =
        static_cast<std::uint32_t>(plan_.jobs.size());
    std::vector<std::pair<std::uint32_t, std::uint32_t>> leases;
    if (!config_.initialLeases.empty()) {
      leases = config_.initialLeases;
      auto sorted = leases;
      std::sort(sorted.begin(), sorted.end());
      std::uint32_t cursor = 0;
      for (const auto& [lo, hi] : sorted) {
        if (lo != cursor || hi < lo)
          throw FleetError("initialLeases must be disjoint and cover all jobs");
        cursor = hi;
      }
      if (cursor != numJobs || leases.size() > config_.processes)
        throw FleetError("initialLeases must cover all jobs with at most one "
                         "lease per worker");
    } else {
      const std::uint32_t per =
          (numJobs + config_.processes - 1) / config_.processes;
      for (std::uint32_t lo = 0; lo < numJobs; lo += per)
        leases.emplace_back(lo, std::min(numJobs, lo + per));
    }
    // The spawn loop pops from the back; reverse so slot 0 gets the
    // first lease (tests rely on the slot <-> lease correspondence).
    std::reverse(leases.begin(), leases.end());
    return leases;
  }

  void spawn(unsigned slot) {
    int cmdPipe[2];
    int statusPipe[2];
    if (::pipe(cmdPipe) != 0)
      throw FleetError("pipe() failed: " + std::string(std::strerror(errno)));
    if (::pipe(statusPipe) != 0) {
      ::close(cmdPipe[0]);
      ::close(cmdPipe[1]);
      throw FleetError("pipe() failed: " + std::string(std::strerror(errno)));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(cmdPipe[0]);
      ::close(cmdPipe[1]);
      ::close(statusPipe[0]);
      ::close(statusPipe[1]);
      throw FleetError("fork() failed: " + std::string(std::strerror(errno)));
    }
    if (pid == 0) {
      // Child. Close the parent-side ends of our pipes and EVERY fd of
      // the other workers we inherited — a leaked status read end is
      // harmless, but hygiene is cheap and uniform.
      ::close(cmdPipe[1]);
      ::close(statusPipe[0]);
      for (const SlotState& other : slots_) {
        if (other.cmdW >= 0) ::close(other.cmdW);
        if (other.statusR >= 0) ::close(other.statusR);
      }
#ifdef __linux__
      // A dead coordinator must reap its fleet, not leak it.
      ::prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
      WorkerContext w;
      w.slot = slot;
      w.cmdFd = cmdPipe[0];
      w.statusFd = statusPipe[1];
      setNonBlocking(w.cmdFd);
      w.factory = &factory_;
      w.plan = &plan_;
      w.config = &config_;
      w.shared = (shm_ != nullptr && config_.shmQueryCache) ? shm_ : nullptr;
      if (config_.shmMetrics) {
        // The global registry was copied in by fork; zero it so
        // coordinator-side values are not re-published from this slot.
        obs::MetricsRegistry::global().reset();
        w.metrics = &obs::MetricsRegistry::global();
        w.metricsPlane = metricsPlane_;
      }
      w.pc = pc_;
      try {
        workerMain(w);
      } catch (...) {
        workerExit(2);
      }
    }
    // Parent.
    ::close(cmdPipe[0]);
    ::close(statusPipe[1]);
    setNonBlocking(statusPipe[0]);
    SlotState& s = slots_[slot];
    s = SlotState{};
    s.pid = pid;
    s.cmdW = cmdPipe[1];
    s.statusR = statusPipe[0];
    s.alive = true;
  }

  void assign(unsigned slot, std::uint32_t lo, std::uint32_t hi) {
    SlotState& s = slots_[slot];
    s.nextKnown = lo;
    s.hi = hi;
    s.idle = false;
    Frame frame;
    frame.type = FrameType::kAssign;
    frame.a = lo;
    frame.b = hi;
    writeFrame(s.cmdW, frame);  // a dead worker surfaces via its pipe EOF
  }

  [[nodiscard]] bool allDead() const {
    return std::none_of(slots_.begin(), slots_.end(),
                        [](const SlotState& s) { return s.alive; });
  }

  void beginShutdown() {
    shuttingDown_ = true;
    Frame frame;
    frame.type = FrameType::kShutdown;
    for (SlotState& s : slots_)
      if (s.alive) writeFrame(s.cmdW, frame);
  }

  [[nodiscard]] bool suspendRequested() const {
    if (config_.installSigtermSuspend && g_fleetSigterm != 0) return true;
    return config_.stopRequested && config_.stopRequested();
  }

  void publishCoordinatorMetrics() {
    if (metricsPlane_ != nullptr)
      metricsPlane_->publish(0, coordinatorMetrics_.snapshot());
  }

  void beginSuspend() {
    suspending_ = true;
    if (config_.shmMetrics) coordinatorMetrics_.add(mSuspends_);
    Frame frame;
    frame.type = FrameType::kSuspendFleet;
    for (SlotState& s : slots_)
      if (s.alive) writeFrame(s.cmdW, frame);
  }

  void pollOnce() {
    std::vector<struct pollfd> fds;
    std::vector<unsigned> slotOf;
    for (unsigned slot = 0; slot < slots_.size(); ++slot) {
      if (!slots_[slot].alive) continue;
      fds.push_back({slots_[slot].statusR, POLLIN, 0});
      slotOf.push_back(slot);
    }
    if (fds.empty()) {
      if (completed_ != plan_.jobs.size() && !suspending_)
        throw FleetError(
            "all fleet workers died with jobs remaining (restart budget "
            "exhausted)");
      return;
    }
    const int rc = ::poll(fds.data(), fds.size(), 200);
    if (rc < 0 && errno != EINTR)
      throw FleetError("poll() failed: " + std::string(std::strerror(errno)));
    bool activity = false;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      activity |= service(slotOf[i]);
    }
    if (activity) {
      lastActivity_ = std::chrono::steady_clock::now();
    } else if (config_.watchdogSeconds > 0 &&
               std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             lastActivity_)
                       .count() > config_.watchdogSeconds) {
      throw FleetError("fleet watchdog: no worker progress for " +
                       std::to_string(config_.watchdogSeconds) + "s");
    }
  }

  // Reads everything the slot's status pipe holds; on EOF runs the
  // death path. Returns whether any frame arrived.
  bool service(unsigned slot) {
    SlotState& s = slots_[slot];
    bool any = false;
    for (;;) {
      while (auto frame = s.reader.next()) {
        any = true;
        handleFrame(slot, *frame);
      }
      const FrameReader::Fill fill = s.reader.fill(s.statusR);
      if (fill == FrameReader::Fill::kWouldBlock) break;
      if (fill == FrameReader::Fill::kEof) {
        // Pipes preserve written data past writer death: drain what is
        // buffered (a steal reply written before dying is never lost),
        // THEN account the death against the updated mirror.
        while (auto frame = s.reader.next()) {
          any = true;
          handleFrame(slot, *frame);
        }
        handleDeath(slot);
        return true;
      }
    }
    return any;
  }

  void handleFrame(unsigned slot, const Frame& frame) {
    SlotState& s = slots_[slot];
    switch (frame.type) {
      case FrameType::kIdle:
        s.idle = true;
        s.nextKnown = s.hi;  // lease exhausted
        feed(slot);
        break;
      case FrameType::kStatus:
        s.nextKnown = frame.a;
        s.hi = frame.b;
        break;
      case FrameType::kJobDone: {
        const std::uint32_t jobId = frame.a;
        if (jobId >= reports_.size()) break;
        const bool executed = (frame.b & 0xffu) != 0;
        const auto outcome = static_cast<RunOutcome>(frame.b >> 8);
        if (executed) ++result_.executedCounts[jobId];
        JobReport& report = reports_[jobId];
        if (!report.seen) {
          report.seen = true;
          ++completed_;
        }
        report.outcome = outcome;
        report.completed = outcome == RunOutcome::kCompleted;
        report.states = frame.c;
        report.events = frame.d;
        s.nextKnown = std::max(s.nextKnown, jobId + 1);
        break;
      }
      case FrameType::kSuspended:
        // The worker checkpointed its in-flight job and will exit; its
        // mirror range re-enters the pool via the (clean) death path on
        // resume, but during a suspend nothing is re-leased.
        ++result_.jobsSuspendedMidRun;
        break;
      case FrameType::kStealReply: {
        if (frame.a != s.stealSeq) break;  // stale reply (victim respawned)
        s.stealSeq = 0;
        const int thief = s.thiefSlot;
        s.thiefSlot = -1;
        s.nextKnown = std::max(s.nextKnown, frame.b);
        const auto stolenLo = static_cast<std::uint32_t>(frame.c);
        const auto stolenHi = static_cast<std::uint32_t>(frame.d);
        if (stolenLo < stolenHi) {
          s.hi = stolenLo;
          ++result_.steals;
          if (config_.shmMetrics) coordinatorMetrics_.add(mSteals_);
          if (thief >= 0 && slots_[thief].alive && slots_[thief].idle) {
            assign(static_cast<unsigned>(thief), stolenLo, stolenHi);
          } else {
            pool_.emplace_back(stolenLo, stolenHi);
            feedIdle();
          }
        } else if (thief >= 0 && slots_[thief].alive && slots_[thief].idle) {
          // Empty reply: the mirror just synced (the victim was thinner
          // than we thought), so retrying the feed cannot loop forever.
          feed(static_cast<unsigned>(thief));
        }
        break;
      }
      default:
        break;  // worker-only frame types: ignore
    }
  }

  // Gives an idle slot work: the re-lease pool first, then a steal from
  // the fattest victim.
  void feed(unsigned slot) {
    SlotState& s = slots_[slot];
    if (!s.alive || !s.idle) return;
    if (!pool_.empty()) {
      const auto range = pool_.back();
      pool_.pop_back();
      assign(slot, range.first, range.second);
      return;
    }
    int victim = -1;
    std::uint32_t fattest = 1;  // require >= 2: the current job + 1 pending
    for (unsigned v = 0; v < slots_.size(); ++v) {
      const SlotState& cand = slots_[v];
      if (v == slot || !cand.alive || cand.idle || cand.stealSeq != 0)
        continue;
      const std::uint32_t pending =
          cand.hi > cand.nextKnown ? cand.hi - cand.nextKnown : 0;
      if (pending > fattest) {
        fattest = pending;
        victim = static_cast<int>(v);
      }
    }
    if (victim < 0) return;  // nothing worth stealing; stay idle
    SlotState& v = slots_[victim];
    v.stealSeq = ++stealSeqCounter_;
    v.thiefSlot = static_cast<int>(slot);
    Frame frame;
    frame.type = FrameType::kSteal;
    frame.a = v.stealSeq;
    writeFrame(v.cmdW, frame);
  }

  void feedIdle() {
    for (unsigned slot = 0; slot < slots_.size() && !pool_.empty(); ++slot)
      feed(slot);
  }

  void handleDeath(unsigned slot) {
    SlotState& s = slots_[slot];
    ::close(s.cmdW);
    ::close(s.statusR);
    s.cmdW = s.statusR = -1;
    int status = 0;
    ::waitpid(s.pid, &status, 0);
    const bool clean = (shuttingDown_ || suspending_) && WIFEXITED(status) &&
                       WEXITSTATUS(status) == 0;
    s.alive = false;
    s.idle = false;
    if (clean) return;

    ++result_.workerDeaths;
    if (config_.shmMetrics) coordinatorMetrics_.add(mDeaths_);
    // A pending steal where this slot was the victim is void: no reply
    // will come, and the unshrunk mirror range below re-leases
    // everything the victim still held (a reply written before death
    // was drained before we got here and already shrank the mirror).
    if (s.stealSeq != 0) {
      const int thief = s.thiefSlot;
      s.stealSeq = 0;
      s.thiefSlot = -1;
      if (thief >= 0 && slots_[thief].alive && slots_[thief].idle)
        pendingFeeds_.push_back(static_cast<unsigned>(thief));
    }
    // If this slot was a thief awaiting a steal, the eventual reply
    // routes the range to the pool (handled in kStealReply).
    for (SlotState& other : slots_)
      if (other.thiefSlot == static_cast<int>(slot)) other.thiefSlot = -1;

    // Disjoint-lease invariant: nobody else holds [nextKnown, hi), so
    // re-leasing it cannot double-execute a job another live worker
    // owns. Jobs the dead worker already finished are skipped by their
    // .done files.
    if (s.nextKnown < s.hi) pool_.emplace_back(s.nextKnown, s.hi);
    s.nextKnown = s.hi = 0;

    // Respawn while the budget lasts; past it, surviving workers pick
    // up the re-leased pool, and only a fully dead fleet with jobs
    // remaining is fatal (pollOnce throws then).
    if (completed_ != plan_.jobs.size() && !suspending_ && respawnPossible()) {
      ++result_.respawns;
      if (config_.shmMetrics) coordinatorMetrics_.add(mRespawns_);
      spawn(slot);
      if (!pool_.empty()) {
        const auto range = pool_.back();
        pool_.pop_back();
        assign(slot, range.first, range.second);
      } else {
        assign(slot, 0, 0);
      }
    }
    for (const unsigned thief : pendingFeeds_) feed(thief);
    pendingFeeds_.clear();
    feedIdle();
  }

  [[nodiscard]] bool respawnPossible() const {
    return result_.respawns < config_.maxWorkerRestarts;
  }

  void reapAll() {
    for (SlotState& s : slots_) {
      if (s.pid < 0) continue;
      if (s.alive) {
        if (s.cmdW >= 0) ::close(s.cmdW);
        if (s.statusR >= 0) ::close(s.statusR);
        ::waitpid(s.pid, nullptr, 0);
        s.alive = false;
      }
      s.pid = -1;
    }
  }

  void killAll() {
    for (SlotState& s : slots_) {
      if (s.pid < 0) continue;
      if (s.alive) {
        ::kill(s.pid, SIGKILL);
        if (s.cmdW >= 0) ::close(s.cmdW);
        if (s.statusR >= 0) ::close(s.statusR);
        ::waitpid(s.pid, nullptr, 0);
      }
      s.pid = -1;
      s.alive = false;
    }
  }

  // Builds the merged ParallelResult from the durable queue — the same
  // .done files, folded by the same finalizeParallelResult as the
  // thread runner.
  void merge() {
    ParallelResult& pr = result_.result;
    pr.jobs.resize(plan_.jobs.size());
    const fs::path dir = config_.checkpointDir;
    for (std::size_t i = 0; i < plan_.jobs.size(); ++i) {
      const std::uint32_t jobId = plan_.jobs[i].id;
      const fs::path done = snapshot::jobDonePath(dir, jobId);
      bool loaded = false;
      if (fs::exists(done)) {
        try {
          pr.jobs[i] = snapshot::readJobResultFile(done);
          loaded = true;
        } catch (const snapshot::SnapshotError&) {
        }
      }
      if (!loaded) {
        // Cap-aborted jobs have no .done file; carry the reported
        // partial numbers so the run outcome folds correctly. (The
        // equivalence oracles only apply to cap-free runs, as with the
        // thread runner.)
        const JobReport& report =
            jobId < reports_.size() ? reports_[jobId] : JobReport{};
        if (!report.seen)
          throw FleetError("job " + std::to_string(jobId) +
                           " finished neither durably nor reportedly");
        JobResult& job = pr.jobs[i];
        job.jobId = jobId;
        job.outcome = report.outcome;
        job.states = report.states;
        job.events = report.events;
      }
    }
    finalizeParallelResult(pr, plan_, pc_);
  }

  const EngineFactory& factory_;
  const PartitionPlan& plan_;
  const FleetConfig& config_;
  solver::ShmQueryCache* shm_;
  obs::ShmMetricsPlane* metricsPlane_;
  obs::MetricsRegistry coordinatorMetrics_;
  obs::MetricsRegistry::Id mSteals_ = 0;
  obs::MetricsRegistry::Id mRespawns_ = 0;
  obs::MetricsRegistry::Id mDeaths_ = 0;
  obs::MetricsRegistry::Id mSuspends_ = 0;
  ParallelConfig pc_;

  std::vector<SlotState> slots_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pool_;
  std::vector<JobReport> reports_;
  std::vector<unsigned> pendingFeeds_;
  std::uint32_t completed_ = 0;
  std::uint32_t stealSeqCounter_ = 0;
  bool shuttingDown_ = false;
  bool suspending_ = false;
  std::chrono::steady_clock::time_point lastActivity_{};
  FleetResult result_;
};

// RAII: ignore SIGPIPE for the duration of runFleet (a worker dying
// while the coordinator writes a command must surface as EPIPE, not
// kill the coordinator), restoring the previous disposition after.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    ::sigaction(SIGPIPE, &ignore, &saved_);
  }
  ~ScopedSigpipeIgnore() { ::sigaction(SIGPIPE, &saved_, nullptr); }

 private:
  struct sigaction saved_ {};
};

}  // namespace

FleetResult runFleet(const EngineFactory& factory, const PartitionPlan& plan,
                     const FleetConfig& config) {
  SDE_ASSERT(factory != nullptr, "runFleet needs an engine factory");
  SDE_ASSERT(!plan.jobs.empty(), "empty partition plan");
  if (config.processes == 0)
    throw FleetError("fleet needs at least one worker process");
  if (config.checkpointDir.empty())
    throw FleetError(
        "fleet runs require a checkpoint directory (the durable job queue)");

  ScopedSigpipeIgnore sigpipe;
  ScopedSigtermSuspend sigterm(config.installSigtermSuspend);

  // Durable queue setup — identical semantics to the thread runner's
  // durable mode, so sde_checkpoint and resume tooling work unchanged.
  const fs::path dir = config.checkpointDir;
  fs::create_directories(dir);
  if (!config.traceDir.empty()) fs::create_directories(config.traceDir);
  const snapshot::RunManifest manifest{config.scenarioSpec, config.horizon,
                                       plan};
  const bool resuming =
      snapshot::prepareRunDir(dir, manifest, config.resume);

  // Shared-memory query cache: create (or re-attach to) the segment
  // BEFORE forking, so every worker inherits the mapping.
  std::unique_ptr<solver::ShmQueryCache> shm;
  bool shmDegraded = false;
  std::string shmName = config.shmName;
  const bool derivedName = shmName.empty();
  if (config.shmQueryCache) {
    if (derivedName)
      shmName = "/sde_qc_" + std::to_string(static_cast<long>(::getpid()));
    solver::ShmCacheConfig shmConfig;
    shmConfig.bytes = config.shmBytes;
    if (!derivedName && solver::ShmQueryCache::segmentExists(shmName)) {
      try {
        shm = solver::ShmQueryCache::attach(shmName);
      } catch (const solver::ShmCacheError& e) {
        // Torn/truncated/stale segment: degrade to a cold cache.
        support::logError("fleet", e.what());
        solver::ShmQueryCache::unlinkSegment(shmName);
        shmDegraded = true;
      }
    }
    if (shm == nullptr) {
      try {
        shm = solver::ShmQueryCache::create(shmName, shmConfig);
      } catch (const solver::ShmCacheError&) {
        // Stale name from a crashed fleet of this pid's predecessor.
        solver::ShmQueryCache::unlinkSegment(shmName);
        shm = solver::ShmQueryCache::create(shmName, shmConfig);
      }
    }
    // Warm start: seed the segment from the durable sidecar.
    if (resuming) {
      const fs::path sidecar = snapshot::sharedCachePath(dir.string());
      if (fs::exists(sidecar)) {
        try {
          std::ifstream in(sidecar, std::ios::binary);
          for (auto& [key, value] : snapshot::readSharedCacheEntries(in))
            shm->insert(key, std::move(value));
        } catch (const snapshot::SnapshotError& e) {
          support::logError("snapshot", e.what());
        }
      }
    }
  }

  // Live metrics plane: created before forking (workers inherit the
  // mapping), one slot per worker plus slot 0 for the coordinator. A
  // creation failure degrades to no live plane — the durable merge
  // still produces exact post-run metrics.
  std::unique_ptr<obs::ShmMetricsPlane> metricsPlane;
  std::string metricsName = config.metricsShmName;
  if (config.shmMetrics) {
    if (metricsName.empty())
      metricsName = "/sde_mx_" + std::to_string(static_cast<long>(::getpid()));
    obs::ShmMetricsConfig metricsConfig;
    metricsConfig.slots = config.processes + 1;
    try {
      metricsPlane = obs::ShmMetricsPlane::create(metricsName, metricsConfig);
    } catch (const obs::ShmMetricsError& e) {
      support::logError("fleet", e.what());
    }
  }

  FleetResult result;
  try {
    Coordinator coordinator(factory, plan, config, shm.get(),
                            metricsPlane.get());
    result = coordinator.run();
  } catch (...) {
    if (shm != nullptr && derivedName)
      solver::ShmQueryCache::unlinkSegment(shmName);
    if (metricsPlane != nullptr)
      obs::ShmMetricsPlane::unlinkSegment(metricsName);
    throw;
  }
  result.shmDegraded = shmDegraded;
  if (shm != nullptr) {
    result.shmEntries = shm->entries();
    result.shmHits = shm->hits();
    result.shmMisses = shm->misses();
    result.shmInserts = shm->inserts();
    result.shmDropped = shm->dropped();
    // Leave the warm cache behind durably; the segment itself dies with
    // the machine (or right now, for derived names).
    try {
      snapshot::atomicWriteFile(
          fs::path(snapshot::sharedCachePath(dir.string())),
          [&](std::ostream& os) {
            snapshot::writeSharedCacheEntries(os, shm->sortedEntries());
          });
    } catch (const snapshot::SnapshotError& e) {
      support::logError("snapshot", e.what());
    }
    if (derivedName) solver::ShmQueryCache::unlinkSegment(shmName);
  }
  if (config.shmMetrics) {
    // Exact totals win: the merged post-run stats are lifted verbatim,
    // then live-only series (latency histograms, profile bridges,
    // fleet.* counters) are adopted for the names stats do not carry.
    // A suspended run has no merged stats — the live view stands alone.
    obs::MetricsSnapshot merged;
    if (!result.suspended)
      merged = obs::snapshotFromStats(result.result.stats);
    merged.adoptMissing(result.metrics);
    result.metrics = std::move(merged);
    if (!result.suspended) {
      try {
        const std::string bytes = obs::encodeMetricsSnapshot(result.metrics);
        snapshot::atomicWriteFile(
            snapshot::metricsSnapshotPath(dir), [&](std::ostream& os) {
              os.write(bytes.data(),
                       static_cast<std::streamsize>(bytes.size()));
            });
      } catch (const snapshot::SnapshotError& e) {
        support::logError("snapshot", e.what());
      }
    }
    if (metricsPlane != nullptr)
      obs::ShmMetricsPlane::unlinkSegment(metricsName);
  }
  return result;
}

}  // namespace sde
