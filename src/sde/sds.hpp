// Super DStates (paper §III-C) — the paper's contribution.
//
// SDS is COW executed on *virtual states*: lightweight references to
// actual execution states. Each virtual state belongs to exactly one
// dstate; an actual state can have many virtual states, and the set of
// dstates its virtuals inhabit is its super-dstate. On a transmission,
// only target states are ever forked (at most once each); bystanders
// merely gain a virtual state in the newly created dstate. This removes
// the bystander duplication that dominates COW's cost on large networks
// while representing exactly the same set of dscenarios.
#pragma once

#include <deque>
#include <unordered_map>

#include "sde/mapper.hpp"

namespace sde {

class SdsMapper final : public StateMapper {
 public:
  explicit SdsMapper(std::uint32_t numNodes) : numNodes_(numNodes) {}

  [[nodiscard]] std::string_view name() const override { return "SDS"; }

  void registerInitialStates(
      std::span<ExecutionState* const> states) override;
  void onLocalBranch(ExecutionState& original, ExecutionState& sibling,
                     MapperRuntime& runtime) override;
  [[nodiscard]] std::vector<ExecutionState*> onTransmit(
      ExecutionState& sender, const net::Packet& packet,
      MapperRuntime& runtime) override;

  [[nodiscard]] std::uint64_t numGroups() const override {
    return dstates_.size();
  }
  [[nodiscard]] std::vector<std::vector<std::vector<ExecutionState*>>>
  groupChoices() const override;

  // State merging: two same-node states may merge when their virtual
  // states inhabit *exactly the same* dstates — then each shared dstate
  // offered both as alternative members, and dropping the absorbed
  // one's virtuals loses nothing the survivor's guard expansion does
  // not regenerate. Differing super-dstates are vetoed (a dstate only
  // the absorbed inhabits would pair its partners with survivor-arm
  // behaviours the unmerged run never paired them with).
  [[nodiscard]] bool canMerge(const ExecutionState& survivor,
                              const ExecutionState& absorbed) const override;
  std::vector<ExecutionState*> onStatesMerged(
      ExecutionState& survivor, ExecutionState& absorbed) override;

  void checkInvariants() const override;

  void snapshotSave(snapshot::Writer& out) const override;
  void snapshotLoad(snapshot::Reader& in,
                    const StateResolver& resolve) override;

  // Test hooks.
  [[nodiscard]] std::size_t numVirtualStates() const { return liveVirtuals_; }
  [[nodiscard]] std::size_t superDstateSize(const ExecutionState& s) const;

 private:
  struct VDState;

  struct VState {
    std::uint64_t id = 0;
    ExecutionState* actual = nullptr;
    VDState* dstate = nullptr;  // exactly one (the defining invariant)
    // Tombstone (state merging): the pool asserts id == index and never
    // erases, so an absorbed state's virtuals are unlinked (actual and
    // dstate nulled) and flagged; serialization writes a sentinel.
    bool dead = false;
  };

  struct VDState {
    std::uint64_t id = 0;
    std::vector<std::vector<VState*>> byNode;
  };

  VState& newVirtual(ExecutionState* actual, VDState& dstate);
  // Moves `v` to `dstate` (removing it from its current one).
  void moveVirtual(VState& v, VDState& dstate);
  // Re-binds `v` to a different actual state (same dstate).
  void rebindVirtual(VState& v, ExecutionState* actual);
  void removeFromDstate(VState& v);

  [[nodiscard]] std::vector<VState*>& virtualsOf(const ExecutionState& state);

  std::uint32_t numNodes_;
  std::deque<VState> virtualPool_;
  std::deque<VDState> dstates_;
  std::unordered_map<const ExecutionState*, std::vector<VState*>> byActual_;
  std::uint64_t nextVirtualId_ = 0;
  std::uint64_t nextDstateId_ = 0;
  std::size_t liveVirtuals_ = 0;
};

}  // namespace sde
