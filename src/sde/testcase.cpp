#include "sde/testcase.hpp"

#include <sstream>

namespace sde {

namespace {

TestCase buildFromModel(const ExecutionState& state,
                        const expr::Assignment& model) {
  TestCase testCase;
  testCase.state = state.id();
  testCase.node = state.node();
  testCase.failureMessage = state.failureMessage;
  testCase.inputs.reserve(state.symbolics.size());
  for (expr::Ref var : state.symbolics) {
    // Inputs unconstrained on this path may take any value; 0 is the
    // canonical witness (same convention as KLEE's ktest files).
    testCase.inputs.push_back(TestCaseInput{std::string(var->name()),
                                            var->width(),
                                            model.get(var).value_or(0)});
  }
  return testCase;
}

}  // namespace

std::optional<TestCase> generateTestCase(solver::SolverClient& solver,
                                         const ExecutionState& state) {
  const auto model = solver.getModel(state.constraints);
  if (!model) return std::nullopt;
  return buildFromModel(state, *model);
}

std::optional<std::vector<TestCase>> generateScenarioTestCases(
    solver::SolverClient& solver, std::span<ExecutionState* const> scenario) {
  // Union of all members' path constraints: one consistent run of the
  // whole network.
  solver::ConstraintSet combined;
  for (const ExecutionState* state : scenario) {
    for (expr::Ref c : state->constraints.items()) {
      if (combined.add(c) == solver::ConstraintSet::AddResult::kTriviallyFalse)
        return std::nullopt;
    }
  }
  return generateScenarioTestCasesOver(solver, scenario, combined);
}

std::optional<std::vector<TestCase>> generateScenarioTestCasesOver(
    solver::SolverClient& solver, std::span<ExecutionState* const> scenario,
    const solver::ConstraintSet& combined) {
  const auto model = solver.getModel(combined);
  if (!model) return std::nullopt;

  std::vector<TestCase> result;
  result.reserve(scenario.size());
  for (const ExecutionState* state : scenario)
    result.push_back(buildFromModel(*state, *model));
  return result;
}

std::string formatTestCase(const TestCase& testCase) {
  std::ostringstream os;
  os << "test case [node " << testCase.node << ", state " << testCase.state
     << "]";
  if (!testCase.failureMessage.empty())
    os << " FAILURE: " << testCase.failureMessage;
  os << "\n";
  for (const TestCaseInput& input : testCase.inputs)
    os << "  " << input.name << " (w" << input.width << ") = " << input.value
       << "\n";
  return os.str();
}

}  // namespace sde
