// Copy On Branch (paper §III-A).
//
// The distributed system is a set of dscenarios, each holding exactly
// one state per node — the explicit enumeration of every distributed
// execution a monolithic simulation would explore. A local branch of any
// state forks *all other states* of its dscenario to keep the invariant;
// packet delivery is then a constant-time lookup in the sender's
// dscenario. Correct, simple, and catastrophically duplicative — the
// baseline the paper measures COW and SDS against.
#pragma once

#include <deque>
#include <unordered_map>

#include "sde/mapper.hpp"

namespace sde {

class CobMapper final : public StateMapper {
 public:
  explicit CobMapper(std::uint32_t numNodes) : numNodes_(numNodes) {}

  [[nodiscard]] std::string_view name() const override { return "COB"; }

  void registerInitialStates(
      std::span<ExecutionState* const> states) override;
  void onLocalBranch(ExecutionState& original, ExecutionState& sibling,
                     MapperRuntime& runtime) override;
  [[nodiscard]] std::vector<ExecutionState*> onTransmit(
      ExecutionState& sender, const net::Packet& packet,
      MapperRuntime& runtime) override;

  [[nodiscard]] std::uint64_t numGroups() const override {
    return scenarios_.size() - deadScenarios_;
  }
  [[nodiscard]] std::vector<std::vector<std::vector<ExecutionState*>>>
  groupChoices() const override;

  // State merging: two same-node states of *different* dscenarios may
  // merge when every other node's members are indistinguishable (strict
  // config, symbolic inputs, decision log) — then the absorbed
  // dscenario is redundant and dies together with its k-1 bystander
  // clones, which is exactly the duplication COB's materialisation
  // created.
  [[nodiscard]] bool canMerge(const ExecutionState& survivor,
                              const ExecutionState& absorbed) const override;
  std::vector<ExecutionState*> onStatesMerged(
      ExecutionState& survivor, ExecutionState& absorbed) override;

  void checkInvariants() const override;

  void snapshotSave(snapshot::Writer& out) const override;
  void snapshotLoad(snapshot::Reader& in,
                    const StateResolver& resolve) override;

 private:
  struct Scenario {
    std::uint64_t id = 0;
    std::vector<ExecutionState*> byNode;  // exactly one per node
    // Tombstone (state merging): the deque never erases (stable
    // addresses), so an absorbed dscenario is flagged dead, its byNode
    // cleared, and every walk skips it. Dead scenarios are not
    // serialized — ids are explicit, so the gap round-trips fine.
    bool dead = false;
  };

  Scenario& scenarioOf(const ExecutionState& state);
  const Scenario& scenarioOf(const ExecutionState& state) const;

  std::uint32_t numNodes_;
  std::deque<Scenario> scenarios_;  // stable addresses
  std::unordered_map<const ExecutionState*, Scenario*> scenarioOf_;
  std::uint64_t nextScenarioId_ = 0;
  std::size_t deadScenarios_ = 0;
};

}  // namespace sde
