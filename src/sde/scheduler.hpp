// Global discrete-event scheduler over per-state event queues.
//
// States own their pending events (so forking a state clones its
// timeline); the scheduler maintains a lazily-invalidated global heap of
// (time, node, kind, seq, state) keys. Stale entries — events already
// consumed, timers re-armed, duplicate registrations after a fork — are
// detected on pop by re-validating against the owning state. Ordering is
// fully deterministic: (time, node, kind, seq, stateId).
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <queue>
#include <span>
#include <vector>

#include "vm/state.hpp"

namespace sde {

class Scheduler {
 public:
  struct Entry {
    std::uint64_t time = 0;
    vm::NodeId node = 0;
    std::uint8_t kind = 0;
    std::uint64_t seq = 0;
    vm::StateId state = 0;

    // Min-heap by (time, node, kind, seq, state).
    [[nodiscard]] bool after(const Entry& other) const {
      if (time != other.time) return time > other.time;
      if (node != other.node) return node > other.node;
      if (kind != other.kind) return kind > other.kind;
      if (seq != other.seq) return seq > other.seq;
      return state > other.state;
    }
  };

  // Registers every pending event of `state`. Duplicate registrations
  // are harmless (validated on pop).
  void registerState(const vm::ExecutionState& state);

  // Pops the next valid entry with time <= horizon. `resolve` maps a
  // StateId to the live state (nullptr if the state no longer exists or
  // is terminal). The matching PendingEvent is *removed* from the state
  // and returned.
  struct Popped {
    vm::ExecutionState* state = nullptr;
    vm::PendingEvent event;
  };
  template <typename Resolve>
  std::optional<Popped> pop(std::uint64_t horizon, Resolve&& resolve) {
    return popMatching(horizon, std::forward<Resolve>(resolve),
                       [](const Entry&, const vm::ExecutionState&,
                          const vm::PendingEvent&) { return true; });
  }

  // pop(), but the next *valid* entry is consumed only if
  // `pred(entry, state, event)` accepts it; otherwise it stays queued and
  // nullopt is returned. Stale entries encountered on the way are dropped
  // exactly as pop() would drop them (a declined head changes nothing
  // about what the following pop observes), which is what lets the
  // engine's same-key event batching probe for a continuation without
  // perturbing the deterministic pop order.
  template <typename Resolve, typename Pred>
  std::optional<Popped> popMatching(std::uint64_t horizon, Resolve&& resolve,
                                    Pred&& pred) {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      if (top.time > horizon) return std::nullopt;
      vm::ExecutionState* state = resolve(top.state);
      if (state == nullptr || state->isTerminal()) {
        heap_.pop();
        ++staleDrops_;
        continue;
      }
      const auto it = std::find_if(
          state->pendingEvents.begin(), state->pendingEvents.end(),
          [&](const vm::PendingEvent& e) {
            return e.seq == top.seq && e.time == top.time &&
                   static_cast<std::uint8_t>(e.kind) == top.kind;
          });
      if (it == state->pendingEvents.end()) {  // stale entry
        heap_.pop();
        ++staleDrops_;
        continue;
      }
      if (!pred(top, *state, *it)) return std::nullopt;
      heap_.pop();
      Popped popped{state, *it};  // copy: erase may CoW-clone the storage
      state->pendingEvents.erase(it);
      return popped;
    }
    return std::nullopt;
  }

  [[nodiscard]] bool maybeEmpty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t heapSize() const { return heap_.size(); }
  // Entries discarded by lazy invalidation (consumed events, re-armed
  // timers, duplicate registrations). Observable so stress tests can
  // verify the invalidation path actually ran.
  [[nodiscard]] std::uint64_t staleDrops() const { return staleDrops_; }

  // --- Snapshot support ----------------------------------------------------
  // Every heap entry in ascending pop order — *including* stale ones.
  // Rebuilding the heap from live states instead would silently shed
  // the stale entries and change the staleDrops() trajectory of the
  // resumed run, breaking resume-equivalence of anything that observes
  // it; the heap multiset is therefore serialized as-is.
  [[nodiscard]] std::vector<Entry> snapshotEntries() const {
    auto copy = heap_;
    std::vector<Entry> entries;
    entries.reserve(copy.size());
    while (!copy.empty()) {
      entries.push_back(copy.top());
      copy.pop();
    }
    return entries;
  }
  void restoreSnapshot(std::span<const Entry> entries,
                       std::uint64_t staleDrops) {
    SDE_ASSERT(heap_.empty() && staleDrops_ == 0,
               "restoreSnapshot needs a fresh scheduler");
    for (const Entry& entry : entries) heap_.push(entry);
    staleDrops_ = staleDrops;
  }

 private:
  struct After {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.after(b);
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, After> heap_;
  std::uint64_t staleDrops_ = 0;
};

}  // namespace sde
