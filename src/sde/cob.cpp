#include "sde/cob.hpp"

#include "obs/trace_sink.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

namespace sde {

void CobMapper::registerInitialStates(
    std::span<ExecutionState* const> states) {
  SDE_ASSERT(states.size() == numNodes_, "need exactly one state per node");
  Scenario& scenario = scenarios_.emplace_back();
  scenario.id = nextScenarioId_++;
  scenario.byNode.assign(states.begin(), states.end());
  for (ExecutionState* state : states) scenarioOf_[state] = &scenario;
}

CobMapper::Scenario& CobMapper::scenarioOf(const ExecutionState& state) {
  const auto it = scenarioOf_.find(&state);
  SDE_ASSERT(it != scenarioOf_.end(), "state not registered with COB");
  return *it->second;
}

const CobMapper::Scenario& CobMapper::scenarioOf(
    const ExecutionState& state) const {
  const auto it = scenarioOf_.find(&state);
  SDE_ASSERT(it != scenarioOf_.end(), "state not registered with COB");
  return *it->second;
}

namespace {

// Two bystander states (same node, different dscenarios) are
// interchangeable when nothing observable distinguishes them: strict
// configuration (pc, registers, memory, constraints, pending events,
// clock, packet-identity comm history), the symbolic-input list, the
// decision log driving replay and partitioning, and — conservatively —
// an empty merge history on both.
bool bystandersEqual(const ExecutionState& a, const ExecutionState& b) {
  if (&a.program() != &b.program()) return false;
  if (a.status != b.status) return false;
  if (!a.mergeGuards.empty() || !b.mergeGuards.empty()) return false;
  if (a.symbolics.size() != b.symbolics.size()) return false;
  for (std::size_t i = 0; i < a.symbolics.size(); ++i)
    if (a.symbolics[i] != b.symbolics[i]) return false;
  if (a.decisions.size() != b.decisions.size()) return false;
  for (std::size_t i = 0; i < a.decisions.size(); ++i)
    if (a.decisions[i].var != b.decisions[i].var ||
        a.decisions[i].failed != b.decisions[i].failed)
      return false;
  return a.configHashStrict() == b.configHashStrict();
}

}  // namespace

bool CobMapper::canMerge(const ExecutionState& survivor,
                         const ExecutionState& absorbed) const {
  const Scenario& keep = scenarioOf(survivor);
  const Scenario& drop = scenarioOf(absorbed);
  SDE_ASSERT(&keep != &drop, "one dscenario cannot hold two same-node states");
  for (NodeId node = 0; node < numNodes_; ++node) {
    if (node == survivor.node()) continue;
    if (!bystandersEqual(*keep.byNode[node], *drop.byNode[node])) return false;
  }
  return true;
}

std::vector<ExecutionState*> CobMapper::onStatesMerged(
    ExecutionState& survivor, ExecutionState& absorbed) {
  Scenario& drop = scenarioOf(absorbed);
  SDE_ASSERT(!drop.dead, "absorbed dscenario already dead");
  std::vector<ExecutionState*> casualties;
  casualties.reserve(numNodes_ - 1);
  for (ExecutionState* member : drop.byNode) {
    scenarioOf_.erase(member);
    if (member == &absorbed) continue;  // the engine reaps it itself
    SDE_ASSERT(!member->mergedAway, "bystander absorbed twice");
    member->mergedAway = true;
    casualties.push_back(member);
  }
  (void)survivor;
  drop.byNode.clear();
  drop.dead = true;
  ++deadScenarios_;
  return casualties;
}

void CobMapper::onLocalBranch(ExecutionState& original,
                              ExecutionState& sibling,
                              MapperRuntime& runtime) {
  // The dscenario invariant (one state per node) broke: materialise a
  // second dscenario by forking every *other* node's state (Figure 3).
  // (std::deque::emplace_back never invalidates references, so holding
  // `orig` across the emplace is safe.)
  Scenario& orig = scenarioOf(original);
  Scenario& scenario = scenarios_.emplace_back();
  scenario.id = nextScenarioId_++;
  scenario.byNode.resize(numNodes_);
  std::uint64_t copies = 0;
  for (NodeId node = 0; node < numNodes_; ++node) {
    ExecutionState* member = orig.byNode[node];
    if (member == &original) {
      scenario.byNode[node] = &sibling;
      continue;
    }
    // Elements the scenario copy actually deep-copies (sequence tails
    // under the persistent representation): the per-mapper face of the
    // paper's k-1-sibling-copies cost that aborts COB in Table I.
    runtime.stats().bump("map.cob.scenario_copy_elements",
                         member->forkCopyCost());
    ExecutionState& copy = runtime.forkState(*member);
    scenario.byNode[node] = &copy;
    runtime.stats().bump("map.cob.scenario_copies");
    ++copies;
  }
  for (ExecutionState* state : scenario.byNode) scenarioOf_[state] = &scenario;
  if (obs::TraceSink* trace = runtime.trace()) {
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kGroupFork;
    event.detail =
        static_cast<std::uint8_t>(obs::GroupForkDetail::kScenarioFork);
    event.node = original.node();
    event.stateId = sibling.id();
    event.groupId = scenario.id;
    event.a = orig.id;
    event.b = copies;
    trace->emit(event);
  }
}

std::vector<ExecutionState*> CobMapper::onTransmit(ExecutionState& sender,
                                                   const net::Packet& packet,
                                                   MapperRuntime& runtime) {
  // No conflicts are possible: the receiver is the destination node's
  // single state in the sender's dscenario (constant-time lookup).
  runtime.stats().bump("map.transmissions");
  Scenario& scenario = scenarioOf(sender);
  SDE_ASSERT(packet.dst < numNodes_, "destination out of range");
  return {scenario.byNode[packet.dst]};
}

std::vector<std::vector<std::vector<ExecutionState*>>>
CobMapper::groupChoices() const {
  std::vector<std::vector<std::vector<ExecutionState*>>> result;
  result.reserve(numGroups());
  for (const Scenario& scenario : scenarios_) {
    if (scenario.dead) continue;
    std::vector<std::vector<ExecutionState*>> group;
    group.reserve(numNodes_);
    for (ExecutionState* state : scenario.byNode) group.push_back({state});
    result.push_back(std::move(group));
  }
  return result;
}

void CobMapper::snapshotSave(snapshot::Writer& out) const {
  out.u64(nextScenarioId_);
  out.u64(numGroups());
  for (const Scenario& scenario : scenarios_) {
    if (scenario.dead) continue;
    out.u64(scenario.id);
    for (const ExecutionState* state : scenario.byNode) out.u64(state->id());
  }
}

void CobMapper::snapshotLoad(snapshot::Reader& in,
                             const StateResolver& resolve) {
  SDE_ASSERT(scenarios_.empty(), "snapshotLoad needs a fresh mapper");
  nextScenarioId_ = in.u64();
  const std::uint64_t count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    Scenario& scenario = scenarios_.emplace_back();
    scenario.id = in.u64();
    scenario.byNode.resize(numNodes_);
    for (NodeId node = 0; node < numNodes_; ++node) {
      ExecutionState* state = resolve(in.u64());
      if (state == nullptr)
        throw snapshot::SnapshotError(
            "COB snapshot references an unknown state");
      scenario.byNode[node] = state;
      scenarioOf_[state] = &scenario;
    }
  }
}

void CobMapper::checkInvariants() const {
  std::size_t dead = 0;
  std::size_t mapped = 0;
  for (const Scenario& scenario : scenarios_) {
    if (scenario.dead) {
      SDE_ASSERT(scenario.byNode.empty(), "dead dscenario keeps members");
      ++dead;
      continue;
    }
    SDE_ASSERT(scenario.byNode.size() == numNodes_,
               "dscenario must span all nodes");
    for (NodeId node = 0; node < numNodes_; ++node) {
      const ExecutionState* state = scenario.byNode[node];
      SDE_ASSERT(state != nullptr && state->node() == node,
                 "dscenario member on the wrong node");
      SDE_ASSERT(!state->mergedAway, "dscenario member was absorbed");
      ++mapped;
      const auto it = scenarioOf_.find(state);
      SDE_ASSERT(it != scenarioOf_.end() && it->second == &scenario,
                 "scenarioOf_ out of sync");
    }
  }
  SDE_ASSERT(dead == deadScenarios_, "dead-dscenario count out of sync");
  SDE_ASSERT(mapped == scenarioOf_.size(), "orphan entries in scenarioOf_");
}

}  // namespace sde
