#include "sde/mapper.hpp"

#include "sde/cob.hpp"
#include "sde/cow.hpp"
#include "sde/sds.hpp"

namespace sde {

std::string_view mapperKindName(MapperKind kind) {
  switch (kind) {
    case MapperKind::kCob:
      return "COB";
    case MapperKind::kCow:
      return "COW";
    case MapperKind::kSds:
      return "SDS";
  }
  return "?";
}

std::unique_ptr<StateMapper> makeMapper(MapperKind kind,
                                        std::uint32_t numNodes) {
  switch (kind) {
    case MapperKind::kCob:
      return std::make_unique<CobMapper>(numNodes);
    case MapperKind::kCow:
      return std::make_unique<CowMapper>(numNodes);
    case MapperKind::kSds:
      return std::make_unique<SdsMapper>(numNodes);
  }
  SDE_UNREACHABLE("unknown mapper kind");
}

}  // namespace sde
