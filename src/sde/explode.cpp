#include "sde/explode.hpp"

#include <algorithm>

namespace sde {

std::vector<std::vector<ExecutionState*>> explodeScenarios(
    const StateMapper& mapper) {
  std::vector<std::vector<ExecutionState*>> result;
  ExplosionIterator it(mapper);
  while (auto scenario = it.next()) result.push_back(std::move(*scenario));
  return result;
}

std::uint64_t countScenarios(const StateMapper& mapper) {
  std::uint64_t total = 0;
  for (const auto& group : mapper.groupChoices()) {
    std::uint64_t product = 1;
    for (const auto& choices : group) product *= choices.size();
    total += product;
  }
  return total;
}

std::unordered_set<std::uint64_t> scenarioFingerprints(
    const StateMapper& mapper) {
  std::unordered_set<std::uint64_t> fingerprints;
  ExplosionIterator it(mapper);
  while (auto scenario = it.next())
    fingerprints.insert(scenarioFingerprint(*scenario));
  return fingerprints;
}

std::optional<std::vector<ExecutionState*>> scenarioContaining(
    const StateMapper& mapper, const ExecutionState& state) {
  for (const auto& group : mapper.groupChoices()) {
    const auto& choices = group[state.node()];
    if (std::find(choices.begin(), choices.end(), &state) == choices.end())
      continue;
    std::vector<ExecutionState*> scenario;
    scenario.reserve(group.size());
    for (NodeId node = 0; node < group.size(); ++node)
      scenario.push_back(node == state.node()
                             ? const_cast<ExecutionState*>(&state)
                             : group[node].front());
    return scenario;
  }
  return std::nullopt;
}

ExplosionIterator::ExplosionIterator(const StateMapper& mapper)
    : groups_(mapper.groupChoices()) {}

std::optional<std::vector<ExecutionState*>> ExplosionIterator::next() {
  while (group_ < groups_.size()) {
    const auto& group = groups_[group_];
    if (groupFresh_) {
      odometer_.assign(group.size(), 0);
      groupFresh_ = false;
      // A well-formed group has non-empty choices for every node.
      const bool valid = std::all_of(
          group.begin(), group.end(),
          [](const auto& choices) { return !choices.empty(); });
      SDE_ASSERT(valid, "group with an uncovered node");
    } else {
      // Advance the odometer (last node fastest).
      std::size_t digit = group.size();
      while (digit > 0) {
        --digit;
        if (++odometer_[digit] < group[digit].size()) break;
        odometer_[digit] = 0;
        if (digit == 0) {
          ++group_;
          groupFresh_ = true;
        }
      }
      if (groupFresh_) continue;
    }

    std::vector<ExecutionState*> scenario;
    scenario.reserve(group.size());
    for (std::size_t node = 0; node < group.size(); ++node)
      scenario.push_back(group[node][odometer_[node]]);
    ++produced_;
    return scenario;
  }
  return std::nullopt;
}

}  // namespace sde
