// Shared distributed-state vocabulary.
//
// The three mapping algorithms group execution states differently —
// dscenarios (COB, one state per node), dstates (COW, several
// conflict-free states per node), and dstates over virtual states (SDS).
// This header provides the pieces they share: node-indexed state groups,
// scenario fingerprints for cross-algorithm equivalence checks, and the
// communication-history compatibility predicate that defines "conflict"
// (paper §II-B).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "vm/state.hpp"

namespace sde {

using vm::ExecutionState;
using vm::NodeId;
using vm::StateId;

// A group of execution states indexed by node, allowing several states
// per node. COW uses it directly as the dstate representation; tests use
// it to materialise exploded dscenarios.
class StateGroup {
 public:
  explicit StateGroup(std::uint32_t numNodes) : byNode_(numNodes) {}

  void add(ExecutionState* state) {
    SDE_ASSERT(state->node() < byNode_.size(), "node out of range");
    byNode_[state->node()].push_back(state);
  }
  // Removes `state`; returns whether it was present.
  bool remove(const ExecutionState* state);

  [[nodiscard]] std::span<ExecutionState* const> statesOf(NodeId node) const {
    SDE_ASSERT(node < byNode_.size(), "node out of range");
    return byNode_[node];
  }
  [[nodiscard]] std::uint32_t numNodes() const {
    return static_cast<std::uint32_t>(byNode_.size());
  }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool contains(const ExecutionState* state) const;

  // Every node is populated (the invariant both COW dstates and SDS
  // dstates maintain).
  [[nodiscard]] bool coversAllNodes() const;

  // All member states, node-major (deterministic order).
  [[nodiscard]] std::vector<ExecutionState*> all() const;

 private:
  std::vector<std::vector<ExecutionState*>> byNode_;
};

// Order-independent fingerprint of a dscenario: combines the per-state
// configuration hashes keyed by node. Two dscenarios with the same
// fingerprint represent the same distributed execution (up to the
// packet-id renaming configHash already quotients out).
[[nodiscard]] std::uint64_t scenarioFingerprint(
    std::span<ExecutionState* const> states);

// --- Communication-history compatibility (conflict detection) -------------
//
// Two states s, t are in direct conflict if s sent a packet to node(t)
// that t did not receive, or t received a packet from node(s) that s did
// not send (and symmetrically). A packet still in flight (a pending
// kRecv event carrying its id) counts as received: delivery latency must
// not look like a conflict.

// True when `receiver` has received — or will receive — the packet.
[[nodiscard]] bool hasOrWillReceive(const ExecutionState& receiver,
                                    std::uint64_t packetId);

// Direct-conflict predicate between two states (of any nodes).
[[nodiscard]] bool inDirectConflict(const ExecutionState& s,
                                    const ExecutionState& t);

// Checks pairwise conflict-freeness of a group; returns the number of
// conflicting pairs (0 = the group is a valid dstate). Terminal states
// are skipped: a crashed node's history legitimately stops short.
[[nodiscard]] std::size_t countConflicts(const StateGroup& group);

}  // namespace sde
