#include "sde/engine.hpp"

#include <algorithm>

#include "support/logging.hpp"

namespace sde {

std::string_view runOutcomeName(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kCompleted:
      return "completed";
    case RunOutcome::kAbortedStates:
      return "aborted (state cap)";
    case RunOutcome::kAbortedMemory:
      return "aborted (memory cap)";
    case RunOutcome::kAbortedEvents:
      return "aborted (event cap)";
    case RunOutcome::kAbortedWallTime:
      return "aborted (wall-clock cap)";
    case RunOutcome::kSuspended:
      return "suspended";
  }
  return "?";
}

namespace {

// The engine-level mergeStates switch is authoritative; the interpreter
// flag mirrors it so the join-point parking machinery engages.
vm::InterpConfig interpConfigFor(const EngineConfig& config) {
  vm::InterpConfig ic = config.interp;
  ic.mergeStates = ic.mergeStates || config.mergeStates;
  return ic;
}

}  // namespace

Engine::Engine(const os::NetworkPlan& plan, MapperKind mapperKind,
               EngineConfig config)
    : plan_(plan),
      config_(config),
      solver_(ctx_, config.solver),
      interp_(ctx_, solver_, interpConfigFor(config)),
      mapper_(makeMapper(mapperKind, plan.topology().numNodes())),
      failureModel_(std::make_unique<net::NoFailures>()),
      interpSink_(*this),
      mapperRuntime_(*this),
      merger_(ctx_) {
  SDE_ASSERT(plan_.complete(), "every node needs a program before running");
  config_.mergeStates = config_.mergeStates || config_.interp.mergeStates;
  config_.interp.mergeStates = config_.mergeStates;
  interp_.setNumNodes(plan_.topology().numNodes());
}

void Engine::setFailureModel(std::unique_ptr<net::FailureModel> model) {
  SDE_ASSERT(model != nullptr, "null failure model");
  failureModel_ = std::move(model);
}

void Engine::setBootGlobal(net::NodeId node, std::uint64_t slot,
                           std::uint64_t value) {
  SDE_ASSERT(!booted_, "boot globals must be set before run()");
  bootGlobals_[node][slot] = value;
}

void Engine::boot() {
  SDE_ASSERT(!booted_, "boot() called twice");
  booted_ = true;

  // Deterministic node order regardless of plan insertion order.
  std::vector<os::NodeConfig> configs = plan_.nodes();
  std::sort(configs.begin(), configs.end(),
            [](const os::NodeConfig& a, const os::NodeConfig& b) {
              return a.id < b.id;
            });

  std::vector<ExecutionState*> initial;
  for (const os::NodeConfig& node : configs) {
    auto state = std::make_unique<ExecutionState>(nextStateId_++, node.id,
                                                  *node.program);
    os::setupBoot(ctx_, *state, node.bootTime);
    const auto it = bootGlobals_.find(node.id);
    if (it != bootGlobals_.end())
      for (const auto& [slot, value] : it->second)
        state->space.store(vm::kGlobalsObject, slot, ctx_.constant(value, 64));
    initial.push_back(state.get());
    byId_[state->id()] = state.get();
    states_.push_back(std::move(state));
  }
  stats_.set("engine.initial_states", initial.size());
  if (sharedCaps_ != nullptr) sharedCaps_->noteStatesCreated(initial.size());
  mapper_->registerInitialStates(initial);
  for (ExecutionState* state : initial) scheduler_.registerState(*state);
  if (trace_ != nullptr) {
    for (const ExecutionState* state : initial) {
      obs::TraceEvent event;
      event.kind = obs::TraceEventKind::kStateCreate;
      event.node = state->node();
      event.stateId = state->id();
      trace_->emit(event);
    }
  }
}

void Engine::setTraceSink(obs::TraceSink* sink) {
  trace_ = sink;
  solver_.setTraceSink(sink);
}

void Engine::setProfiler(obs::PhaseProfiler* profiler) {
  profiler_ = profiler;
  solver_.setProfiler(profiler);
}

void Engine::setMetrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  solver_.setMetrics(metrics);
  if (metrics_ == nullptr) return;
  mForks_ = metrics_->counter("engine.forks_total");
  mEvents_ = metrics_->counter("engine.events");
  mPackets_ = metrics_->counter("engine.packets");
  mTerminations_ = metrics_->counter("engine.terminations");
  mPeakStates_ = metrics_->gauge("engine.peak_states");
  mPeakMemory_ = metrics_->gauge("engine.peak_memory_bytes");
  mMerges_ = metrics_->counter("engine.merges");
  mLoopSummaries_ = metrics_->counter("engine.loop_summaries");
}

ExecutionState& Engine::cloneInternal(ExecutionState& original) {
  // Fork cost is a deterministic structural function of the parent
  // (sequence tails + CoW queue), recorded before the fork and carried
  // on the kStateFork trace event — the observable backing the O(1)
  // fork claim.
  lastForkCopiedElements_ = original.forkCopyCost();
  lastForkSharedChunks_ = original.forkSharedChunks();
  auto clone = original.fork(nextStateId_++);
  ExecutionState& ref = *clone;
  byId_[ref.id()] = &ref;
  states_.push_back(std::move(clone));
  touched_.push_back(&ref);
  stats_.bump("engine.forks_total");
  stats_.bump("engine.fork_copied_elements", lastForkCopiedElements_);
  stats_.bump("engine.fork_shared_chunks", lastForkSharedChunks_);
  stats_.maxOf("engine.peak_states", states_.size());
  if (metrics_ != nullptr) {
    metrics_->add(mForks_);
    metrics_->setMax(mPeakStates_, states_.size());
  }
  if (sharedCaps_ != nullptr) sharedCaps_->noteStatesCreated(1);
  return ref;
}

ExecutionState& Engine::forkLocal(ExecutionState& original,
                                  obs::ForkCause cause) {
  ExecutionState& sibling = cloneInternal(original);
  stats_.bump("engine.forks_local");
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kStateFork;
    event.detail = static_cast<std::uint8_t>(cause);
    event.node = original.node();
    event.stateId = sibling.id();
    event.parentStateId = original.id();
    event.a = lastForkCopiedElements_;
    event.b = lastForkSharedChunks_;
    trace_->emit(event);
  }
  {
    obs::ScopedPhase phase(profiler_, obs::Phase::kMapping);
    mapper_->onLocalBranch(original, sibling, mapperRuntime_);
  }
  return sibling;
}

ExecutionState& Engine::InterpSink::forkState(ExecutionState& original) {
  return engine_.forkLocal(original, obs::ForkCause::kBranch);
}

void Engine::InterpSink::onSend(ExecutionState& sender, NodeId dst,
                                std::vector<expr::Ref> payload) {
  engine_.touched_.push_back(&sender);
  if (dst == net::kBroadcastAddress) {
    // Broadcast as a series of unicasts to the radio neighbourhood
    // (paper §II-B footnote 1).
    for (NodeId neighbor : engine_.topology().neighbors(sender.node()))
      engine_.sendOne(sender, neighbor, payload);
    return;
  }
  engine_.sendOne(sender, dst, payload);
}

bool Engine::InterpSink::tryMerge(ExecutionState& survivor,
                                  ExecutionState& absorbed) {
  return engine_.tryMergeStates(survivor, absorbed);
}

void Engine::InterpSink::onLog(ExecutionState& state,
                               std::string_view message, expr::Ref value) {
  if (support::logLevel() <= support::LogLevel::kDebug) {
    support::logDebug("node", std::string(message) + " [node " +
                                  std::to_string(state.node()) + " state " +
                                  std::to_string(state.id()) + " value " +
                                  (value->isConstant()
                                       ? std::to_string(value->value())
                                       : std::string("<symbolic>")) +
                                  "]");
  }
}

ExecutionState& Engine::Runtime::forkState(ExecutionState& original) {
  ExecutionState& clone = engine_.cloneInternal(original);
  engine_.stats_.bump("engine.forks_mapping");
  if (engine_.trace_ != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kStateFork;
    event.detail = static_cast<std::uint8_t>(obs::ForkCause::kMapping);
    event.node = original.node();
    event.stateId = clone.id();
    event.parentStateId = original.id();
    event.a = engine_.lastForkCopiedElements_;
    event.b = engine_.lastForkSharedChunks_;
    engine_.trace_->emit(event);
  }
  return clone;
}

support::StatsRegistry& Engine::Runtime::stats() { return engine_.stats_; }

obs::TraceSink* Engine::Runtime::trace() { return engine_.trace_; }

void Engine::sendOne(ExecutionState& sender, NodeId dst,
                     const std::vector<expr::Ref>& payload) {
  const auto numNodes = topology().numNodes();
  if (dst >= numNodes || dst == sender.node() ||
      !topology().hasEdge(sender.node(), dst)) {
    // Out of radio range (or self/bogus destination): the transmission
    // is lost. Counted — a protocol bug a test may want to see.
    stats_.bump("net.undeliverable");
    return;
  }

  net::Packet packet;
  packet.id = nextPacketId_++;
  packet.src = sender.node();
  packet.dst = dst;
  packet.sendTime = sender.clock;
  packet.payload = payload;

  std::vector<ExecutionState*> receivers;
  {
    obs::ScopedPhase phase(profiler_, obs::Phase::kMapping);
    receivers = mapper_->onTransmit(sender, packet, mapperRuntime_);
  }
  stats_.bump("engine.packets");
  if (metrics_ != nullptr) metrics_->add(mPackets_);
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kPacketTransmit;
    event.node = sender.node();
    event.peer = dst;
    event.stateId = sender.id();
    event.packetId = packet.id;
    event.a = receivers.size();
    trace_->emit(event);
  }

  sender.commLog.push_back({/*sent=*/true, dst, sender.clock,
                            packet.payloadHash(), packet.id});

  for (ExecutionState* receiver : receivers) {
    SDE_ASSERT(receiver->node() == dst, "receiver on the wrong node");
    vm::PendingEvent event;
    event.time = sender.clock + config_.linkLatency;
    event.kind = vm::EventKind::kRecv;
    event.a = packet.src;
    event.b = packet.id;
    event.payload = packet.payload;
    event.seq = receiver->nextEventSeq++;
    receiver->pendingEvents.push_back(std::move(event));
    touched_.push_back(receiver);
  }
}

Engine::FailureVariable Engine::makeFailureVariable(ExecutionState& state,
                                                    std::string_view label) {
  // Mirrors the interpreter's kSymbolic naming so failure decisions are
  // first-class symbolic inputs in generated test cases.
  const std::string key(label);
  const std::uint32_t n = state.symbolicCounters[key]++;
  std::string name = "n" + std::to_string(state.node()) + "." + key + "." +
                     std::to_string(n);
  const expr::Ref var = ctx_.variable(name, 1);
  state.symbolics.push_back(var);
  return FailureVariable{var, std::move(name)};
}

// Runs one branch of a failure decision on `state`: failed = false is
// the normal delivery, failed = true the failure semantics of `kind`.
void Engine::applyFailureBranch(ExecutionState& state, net::FailureKind kind,
                                bool failed, const vm::PendingEvent& event) {
  if (!failed) {
    deliver(state, event);
    return;
  }
  switch (kind) {
    case net::FailureKind::kDrop:
      // The radio received the packet (the communication history stays
      // conflict-free) but the stack dropped it — no handler runs.
      break;
    case net::FailureKind::kDuplicate:
      if (!state.isTerminal()) {
        deliver(state, event);  // first copy
        if (!state.isTerminal()) {
          const vm::PendingEvent dup = event;
          deliver(state, dup);  // duplicated delivery
        }
      }
      break;
    case net::FailureKind::kReboot:
      if (!state.isTerminal()) os::reboot(ctx_, state, event.time);
      break;
    case net::FailureKind::kNone:
      SDE_UNREACHABLE("kNone is not a failure branch");
  }
}

void Engine::appendRecvRecord(ExecutionState& state,
                              const vm::PendingEvent& event) {
  net::Packet view;
  view.payload = event.payload;
  state.commLog.push_back({/*sent=*/false, static_cast<NodeId>(event.a),
                           event.time, view.payloadHash(), event.b});
  if (trace_ != nullptr) {
    obs::TraceEvent record;
    record.kind = obs::TraceEventKind::kPacketDeliver;
    record.node = state.node();
    record.peer = static_cast<NodeId>(event.a);
    record.stateId = state.id();
    record.packetId = event.b;
    trace_->emit(record);
  }
}

void Engine::deliver(ExecutionState& state, const vm::PendingEvent& event) {
  os::dispatchEvent(ctx_, interp_, state, event, interpSink_);
}

void Engine::processEvent(ExecutionState& state, vm::PendingEvent event) {
  virtualNow_ = std::max(virtualNow_, event.time);
  if (trace_ != nullptr) trace_->setAmbientTime(virtualNow_);
  touched_.push_back(&state);

  if (event.kind != vm::EventKind::kRecv) {
    if (config_.loopSummarize && event.kind == vm::EventKind::kTimer) {
      const std::uint64_t preSignature =
          loopSignature(state, static_cast<std::uint32_t>(event.a));
      if (tryLoopFastPath(state, event, preSignature)) return;
      deliver(state, event);
      noteLoopObservation(state, event, preSignature);
      return;
    }
    deliver(state, event);
    return;
  }

  // Network failure injection (§IV-A): consulted per delivery, above the
  // mapping layer. The radio reception itself happened in every branch —
  // the communication history stays conflict-free — and the symbolic
  // failure variable decides what the node's stack observes.
  net::Packet view;
  view.id = event.b;
  view.src = static_cast<NodeId>(event.a);
  view.dst = state.node();
  view.payload = event.payload;
  const net::FailureDecision decision =
      failureModel_->onDelivery(state, view);

  if (decision.kind == net::FailureKind::kNone) {
    appendRecvRecord(state, event);
    deliver(state, event);
    return;
  }

  const FailureVariable failVar = makeFailureVariable(state, decision.label);
  appendRecvRecord(state, event);

  const auto forced = decisionFilter_.find(failVar.name);
  if (forced != decisionFilter_.end()) {
    // Replay / partition mode: take only the filtered branch. The path
    // constraint and decision record match the corresponding branch of
    // an unfiltered run exactly; the other branch belongs to a
    // different partition job (or was not the recorded decision).
    const bool failed = forced->second;
    state.constraints.add(failed ? failVar.var
                                 : ctx_.logicalNot(failVar.var));
    state.decisions.push_back({failVar.var, failed});
    stats_.bump("engine.forced_decisions");
    applyFailureBranch(state, decision.kind, failed, event);
    return;
  }

  // Local-branch fork: the mapper treats failure forks exactly like
  // program branches (they are triggered by local state only).
  ExecutionState& failing = forkLocal(state, obs::ForkCause::kFailure);
  state.constraints.add(ctx_.logicalNot(failVar.var));
  failing.constraints.add(failVar.var);
  state.decisions.push_back({failVar.var, false});
  failing.decisions.push_back({failVar.var, true});
  stats_.bump("engine.failure_forks");

  applyFailureBranch(state, decision.kind, /*failed=*/false, event);
  if (!failing.isTerminal())
    applyFailureBranch(failing, decision.kind, /*failed=*/true, event);
}

bool Engine::tryMergeStates(ExecutionState& survivor,
                            ExecutionState& absorbed) {
  if (!config_.mergeStates) return false;
  SDE_ASSERT(survivor.id() < absorbed.id(),
             "the merge survivor is the earlier-created state");
  if (!merger_.compatible(survivor, absorbed)) {
    stats_.bump("engine.merges_declined_incompatible");
    return false;
  }
  if (!mapper_->canMerge(survivor, absorbed)) {
    stats_.bump("engine.merges_declined_mapper");
    return false;
  }
  const expr::Ref guard =
      ctx_.variable("mrg." + std::to_string(nextMergeGuard_), 1);
  if (!merger_.merge(survivor, absorbed, guard)) {
    stats_.bump("engine.merges_declined_algebra");
    return false;
  }
  ++nextMergeGuard_;
  pendingReaps_.push_back(&absorbed);
  std::uint64_t removed = 1;
  for (ExecutionState* extra : mapper_->onStatesMerged(survivor, absorbed)) {
    SDE_ASSERT(extra->mergedAway,
               "mapper merge casualties must be marked mergedAway");
    pendingReaps_.push_back(extra);
    ++removed;
  }
  stats_.bump("engine.merges");
  stats_.bump("engine.merge_removed_states", removed);
  if (metrics_ != nullptr) metrics_->add(mMerges_);
  if (trace_ != nullptr) {
    obs::TraceEvent event;
    event.kind = obs::TraceEventKind::kStateMerge;
    event.node = survivor.node();
    event.stateId = survivor.id();
    event.parentStateId = absorbed.id();
    event.a = removed;
    trace_->emit(event);
  }
  return true;
}

void Engine::mergeSweep() {
  // Candidates: this event's touched states that ended idle. Sorted and
  // deduped by id so the earliest-created compatible state survives —
  // the same orientation the join-point parking uses.
  std::vector<ExecutionState*> candidates;
  for (ExecutionState* state : touched_) {
    if (state->mergedAway || state->status != vm::StateStatus::kIdle) continue;
    candidates.push_back(state);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const ExecutionState* a, const ExecutionState* b) {
              return a->id() < b->id();
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ExecutionState* survivor = candidates[i];
    if (survivor->mergedAway) continue;
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      ExecutionState* other = candidates[j];
      if (other->mergedAway) continue;
      tryMergeStates(*survivor, *other);
    }
  }
}

void Engine::reapMergedStates() {
  std::unordered_set<const ExecutionState*> reaped;
  for (ExecutionState* state : pendingReaps_) {
    SDE_ASSERT(state->mergedAway, "reaping a state that was not merged away");
    if (!reaped.insert(state).second) continue;
    byId_.erase(state->id());
    traceTerminated_.erase(state->id());
    // Forget the summariser's observations of the state.
    auto it = loopDetector_.lower_bound({state->id(), 0});
    while (it != loopDetector_.end() && it->first.first == state->id())
      it = loopDetector_.erase(it);
  }
  pendingReaps_.clear();
  touched_.erase(std::remove_if(
                     touched_.begin(), touched_.end(),
                     [&](ExecutionState* s) { return reaped.contains(s); }),
                 touched_.end());
  // Scheduler heap entries of reaped states go stale and are dropped
  // lazily on pop (byId_ no longer resolves the id).
  states_.erase(std::remove_if(states_.begin(), states_.end(),
                               [&](const std::unique_ptr<ExecutionState>& s) {
                                 return reaped.contains(s.get());
                               }),
                states_.end());
}

std::uint64_t Engine::loopSignature(const ExecutionState& state,
                                    std::uint32_t timerId) const {
  // Everything the fast path does not update must be pinned by the
  // signature; what it replays deterministically (clock, the re-armed
  // event's seq, the fuel counter) is excluded. The fired event is
  // already popped from the queue when this runs.
  support::Hasher h;
  h.u64(static_cast<std::uint64_t>(state.status));
  h.u64(state.pc);
  h.u64(state.space.contentHash());
  h.u64(state.constraints.setHash());
  h.u64(state.commLog.size());
  h.u64(state.commLog.contentChainHash());
  h.u64(state.commLog.strictChainHash());
  h.u64(state.symbolics.size());
  h.u64(state.mergeGuards.size());
  h.u64(state.pendingEvents.contentHash());
  h.u64(state.pendingEvents.strictRecvHash());
  for (const expr::Ref& r : state.regs_) h.u64(r == nullptr ? 0 : r->hash());
  for (const auto& [timer, seq] : state.activeTimers) {
    if (timer == timerId) continue;  // its seq advances every re-arm
    h.u64(timer);
    h.u64(seq);
  }
  return h.digest();
}

bool Engine::tryLoopFastPath(ExecutionState& state,
                             const vm::PendingEvent& event,
                             std::uint64_t preSignature) {
  const auto timerId = static_cast<std::uint32_t>(event.a);
  const auto it = loopDetector_.find({state.id(), timerId});
  if (it == loopDetector_.end() || !it->second.armed) return false;
  const LoopEntry& entry = it->second;
  if (entry.signature != preSignature) return false;
  // Replay the recorded iteration: the handler's only effects were the
  // clock update and one constant-delay re-arm of this same timer.
  state.clock = event.time;
  vm::PendingEvent next;
  next.time = event.time + entry.period;
  next.kind = vm::EventKind::kTimer;
  next.a = timerId;
  next.seq = state.nextEventSeq++;
  state.activeTimers[timerId] = next.seq;
  state.pendingEvents.push_back(std::move(next));
  state.executedInstructions += entry.instructions;
  stats_.bump("engine.loop_summaries");
  stats_.bump("engine.loop_summarized_instructions", entry.instructions);
  if (metrics_ != nullptr) metrics_->add(mLoopSummaries_);
  if (trace_ != nullptr) {
    obs::TraceEvent record;
    record.kind = obs::TraceEventKind::kLoopSummary;
    record.node = state.node();
    record.stateId = state.id();
    record.a = timerId;
    record.b = entry.period;
    trace_->emit(record);
  }
  return true;
}

void Engine::noteLoopObservation(ExecutionState& state,
                                 const vm::PendingEvent& event,
                                 std::uint64_t preSignature) {
  const auto timerId = static_cast<std::uint32_t>(event.a);
  const auto key = std::make_pair(state.id(), timerId);
  const vm::EventEffects& effects = interp_.lastEventEffects();
  const bool clean = state.status == vm::StateStatus::kIdle &&
                     !effects.usedNow && effects.sends == 0 &&
                     effects.symbolicsMinted == 0 && effects.forks == 0 &&
                     effects.timerOps == 1 && effects.rearmConstant &&
                     effects.rearmTimerId == timerId;
  if (!clean) {
    loopDetector_.erase(key);
    return;
  }
  const auto [it, inserted] = loopDetector_.try_emplace(key);
  LoopEntry& entry = it->second;
  if (!inserted && entry.signature == preSignature &&
      entry.period == effects.rearmDelay) {
    entry.instructions = effects.instructions;
    if (++entry.streak >= 2) entry.armed = true;
  } else {
    entry = LoopEntry{preSignature, effects.rearmDelay, effects.instructions,
                      /*streak=*/1, /*armed=*/false};
  }
}

std::optional<RunOutcome> Engine::checkCaps() {
  // External suspend outranks every cap: the requester wants the
  // checkpoint written NOW, not after more exploration.
  if (suspendRequested_.load(std::memory_order_relaxed))
    return RunOutcome::kSuspended;
  if (sharedCaps_ != nullptr)
    if (const auto shared = sharedCaps_->check()) return *shared;
  if (config_.maxStates != 0 && states_.size() >= config_.maxStates)
    return RunOutcome::kAbortedStates;
  if (config_.maxEvents != 0 && eventsProcessed_ >= config_.maxEvents)
    return RunOutcome::kAbortedEvents;
  if (config_.maxWallSeconds != 0 && wallSeconds() >= config_.maxWallSeconds)
    return RunOutcome::kAbortedWallTime;
  return std::nullopt;
}

void Engine::sampleAndCheck() {
  if (sampler_) sampler_(*this);
  if (config_.checkInvariants) mapper_->checkInvariants();
}

RunOutcome Engine::run(std::uint64_t untilVirtualTime) {
  if (!booted_) boot();
  running_ = true;
  runStart_ = std::chrono::steady_clock::now();
  RunOutcome outcome = RunOutcome::kCompleted;

  const auto resolve = [this](StateId id) -> ExecutionState* {
    const auto it = byId_.find(id);
    return it == byId_.end() ? nullptr : it->second;
  };

  std::uint64_t nextSampleAt = eventsProcessed_;
  const auto sampleGap = [this]() -> std::uint64_t {
    const std::uint64_t base = std::max<std::uint64_t>(
        config_.sampleEveryEvents, 1);
    if (!config_.adaptiveSampling) return base;
    return std::max<std::uint64_t>(base, states_.size() / 8);
  };

  while (true) {
    if (const auto aborted = checkCaps()) {
      outcome = *aborted;
      break;
    }
    if (eventsProcessed_ >= nextSampleAt) {
      // The memory meter walks all live state, so it only runs at
      // sampling points (the cap may overshoot by up to one gap).
      if (config_.maxSimulatedMemoryBytes != 0 ||
          (sharedCaps_ != nullptr && sharedCaps_->tracksMemory())) {
        const std::uint64_t memory = simulatedMemoryBytes();
        if (sharedCaps_ != nullptr && sharedCaps_->tracksMemory()) {
          sharedCaps_->noteMemoryDelta(
              static_cast<std::int64_t>(memory) -
              static_cast<std::int64_t>(lastReportedMemoryBytes_));
          lastReportedMemoryBytes_ = memory;
        }
        if (config_.maxSimulatedMemoryBytes != 0 &&
            memory >= config_.maxSimulatedMemoryBytes) {
          outcome = RunOutcome::kAbortedMemory;
          break;
        }
      }
      sampleAndCheck();
      if (checkpointSink_ && checkpointEveryEvents_ != 0 &&
          eventsProcessed_ - lastCheckpointAt_ >= checkpointEveryEvents_) {
        checkpointSink_(*this);
        lastCheckpointAt_ = eventsProcessed_;
      }
      nextSampleAt = eventsProcessed_ + sampleGap();
    }

    decltype(scheduler_.pop(untilVirtualTime, resolve)) popped;
    {
      obs::ScopedPhase phase(profiler_, obs::Phase::kScheduler);
      popped = scheduler_.pop(untilVirtualTime, resolve);
    }
    if (!popped) break;

    // Same-key batch stepping: consecutive ready events dispatching the
    // same handler — equal (time, node, kind, timer/sender id), differing
    // only in which sibling state receives them, the shape forking
    // produces en masse — are stepped in one block. The pop sequence,
    // per-event processing and re-registration are exactly the per-event
    // loop's (the continuation probe consumes the scheduler head only
    // when it extends the batch), so delivery release order and digests
    // are unchanged; the batch amortizes the outer-loop housekeeping and
    // the string-keyed stats bumps.
    const std::uint64_t batchTime = popped->event.time;
    const auto batchNode = popped->state->node();
    const auto batchKind = popped->event.kind;
    const auto batchA = popped->event.a;
    std::uint64_t batchLen = 0;
    while (true) {
      touched_.clear();
      {
        obs::ScopedPhase phase(profiler_, obs::Phase::kInterp);
        processEvent(*popped->state, std::move(popped->event));
      }
      popped.reset();
      if (config_.mergeStates) {
        {
          obs::ScopedPhase phase(profiler_, obs::Phase::kMapping);
          mergeSweep();
        }
        // Deferred removal: nothing holds a pointer into the absorbed
        // states once the event is fully processed.
        if (!pendingReaps_.empty()) reapMergedStates();
      }
      ++eventsProcessed_;
      ++batchLen;
      if (metrics_ != nullptr) metrics_->add(mEvents_);

      {
        // Re-register every state whose timeline changed (the dispatched
        // state, forked siblings, delivery receivers). Duplicate heap
        // entries are validated away on pop.
        obs::ScopedPhase phase(profiler_, obs::Phase::kScheduler);
        std::sort(touched_.begin(), touched_.end(),
                  [](const ExecutionState* a, const ExecutionState* b) {
                    return a->id() < b->id();
                  });
        touched_.erase(std::unique(touched_.begin(), touched_.end()),
                       touched_.end());
        for (ExecutionState* state : touched_) scheduler_.registerState(*state);
        if (trace_ != nullptr || metrics_ != nullptr) {
          // Trace and metrics share the termination dedup set; both care
          // about "became terminal this step", exactly once per state.
          for (const ExecutionState* state : touched_) {
            if (!state->isTerminal() ||
                !traceTerminated_.insert(state->id()).second)
              continue;
            if (metrics_ != nullptr) metrics_->add(mTerminations_);
            if (trace_ == nullptr) continue;
            obs::TraceEvent record;
            record.kind = obs::TraceEventKind::kStateTerminate;
            record.node = state->node();
            record.stateId = state->id();
            trace_->emit(record);
          }
        }
      }

      if (!config_.batchEvents) break;
      // Sampling, checkpointing and cap aborts happen between batches,
      // at the exact event counts the per-event loop would hit them.
      if (eventsProcessed_ >= nextSampleAt) break;
      if (checkCaps()) break;  // the outer loop re-checks and aborts
      {
        obs::ScopedPhase phase(profiler_, obs::Phase::kScheduler);
        popped = scheduler_.popMatching(
            untilVirtualTime, resolve,
            [&](const Scheduler::Entry& entry, const ExecutionState& next,
                const vm::PendingEvent& event) {
              return entry.time == batchTime && next.node() == batchNode &&
                     event.kind == batchKind && event.a == batchA;
            });
      }
      if (!popped) break;
    }
    // One string-keyed map bump per batch instead of per event; every
    // observer (sampling, checkpoints, end-of-run reports) runs at batch
    // boundaries, so the visible counter trajectory is the baseline's.
    // Batch shape diagnostics stay plain members (not registry counters):
    // where a batch happens to break depends on suspend cuts and sampling
    // cadence, so folding them into the stats registry would violate the
    // checkpoint invariant that every serialized counter converges to the
    // uninterrupted run's totals.
    stats_.bump("engine.events", batchLen);
    ++batches_;
    if (batchLen > 1) batchedEvents_ += batchLen - 1;
  }

  if (outcome == RunOutcome::kCompleted)
    virtualNow_ = std::max(virtualNow_, untilVirtualTime);
  sampleAndCheck();
  if (profiler_ != nullptr) {
    // Attach the interpreter's opcode histogram (cumulative across runs;
    // re-attaching replaces the previous snapshot's entries).
    std::vector<obs::PhaseProfile::OpEntry> opcodes;
    for (const auto& entry : interp_.opcodeProfile())
      opcodes.push_back({entry.name, entry.count, entry.nanos});
    profiler_->setOpcodes(std::move(opcodes));
  }
  running_ = false;
  wallSecondsAccumulated_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    runStart_)
          .count();
  stats_.maxOf("engine.peak_memory_bytes", simulatedMemoryBytes());
  if (metrics_ != nullptr)
    metrics_->setMax(mPeakMemory_, simulatedMemoryBytes());
  if (outcome != RunOutcome::kCompleted) {
    // A cap latch suspends instead of discarding: the final checkpoint
    // captures the exact abort point, so a resumed run (with the cap
    // lifted) completes as if never interrupted.
    if (checkpointSink_) checkpointSink_(*this);
    // A locally tripped cap aborts the whole fleet: partition jobs are
    // only comparable when every job saw the same caps fire.
    if (sharedCaps_ != nullptr) sharedCaps_->latch(outcome);
  }
  return outcome;
}

double Engine::wallSeconds() const {
  double total = wallSecondsAccumulated_;
  if (running_)
    total += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           runStart_)
                 .count();
  return total;
}

std::uint64_t Engine::numLiveStates() const {
  return static_cast<std::uint64_t>(
      std::count_if(states_.begin(), states_.end(), [](const auto& state) {
        return !state->isTerminal();
      }));
}

std::vector<ExecutionState*> Engine::statesOfNode(NodeId node) const {
  std::vector<ExecutionState*> result;
  for (const auto& state : states_)
    if (state->node() == node) result.push_back(state.get());
  return result;
}

std::uint64_t Engine::simulatedMemoryBytes() const {
  // All-component shared-aware accounting: every shared block — memory
  // payloads, sealed history chunks, CoW event queues — is charged to
  // the first state that reaches it, so the total is what a deduplicated
  // heap would hold (the quantity the paper's Table I RAM column caps).
  std::map<const void*, std::uint64_t> seen;
  std::uint64_t total = 0;
  for (const auto& state : states_) total += state->accountBytes(seen);
  return total;
}

}  // namespace sde
