#include "sde/parallel.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>

#include "obs/trace_io.hpp"
#include "obs/trace_merge.hpp"
#include "sde/explode.hpp"
#include "sde/testcase.hpp"
#include "snapshot/manifest.hpp"
#include "snapshot/shared_cache_io.hpp"
#include "solver/shared_cache.hpp"
#include "support/hash.hpp"
#include "support/logging.hpp"
#include "support/thread_pool.hpp"
#include "vm/merge.hpp"

namespace sde {

JobResult collectJobResult(Engine& engine, const PartitionJob& job,
                           const ParallelConfig& config, RunOutcome outcome) {
  JobResult result;
  result.jobId = job.id;
  result.outcome = outcome;
  result.states = engine.numStates();
  result.events = engine.eventsProcessed();
  result.groups = engine.mapper().numGroups();
  result.memoryBytes = engine.simulatedMemoryBytes();
  result.scenariosRepresented = countScenarios(engine.mapper());
  result.wallSeconds = engine.wallSeconds();

  // Ownership rule: paths that never reached a partition variable are
  // explored by several jobs (every job agreeing on the variables they
  // did decide). The canonical owner is the job forcing all remaining
  // variables to false, i.e. a job owns a dscenario iff each of its
  // forced-TRUE variables was actually decided on some member's path.
  //
  // The rule factorises per node: decision names are node-scoped
  // ("n<node>.<label>.<k>", minted by the engine from state.node()), so
  // a forced variable of node X can only appear in the decision log of
  // the dscenario's member FOR node X. Filtering each node's choice
  // list down to the states that decided the node's forced variables
  // therefore yields exactly the owned sub-product — counting is pure
  // arithmetic and enumeration only ever visits owned dscenarios.
  std::unordered_map<NodeId, std::vector<std::string_view>> forcedByNode;
  bool unreachableVariable = false;
  for (const auto& [name, value] : job.forced) {
    if (!value) continue;
    NodeId node = 0;
    std::size_t pos = 1;
    if (name.size() < 2 || name[0] != 'n' || !std::isdigit(name[1])) {
      unreachableVariable = true;  // not an engine decision name: no
      break;                       // path can ever decide it
    }
    while (pos < name.size() && std::isdigit(name[pos]))
      node = node * 10 + static_cast<NodeId>(name[pos++] - '0');
    forcedByNode[node].emplace_back(name);
  }

  std::set<std::uint64_t> scenarioPrints;
  std::set<std::string> testcases;
  if (!unreachableVariable) {
    // Decision logs are short; memoise the containment test per state
    // (states are shared across many groups under COW/SDS).
    std::unordered_map<const ExecutionState*, bool> satisfiesCache;
    const auto satisfies = [&](const ExecutionState* state,
                               const std::vector<std::string_view>& vars) {
      const auto [it, fresh] = satisfiesCache.try_emplace(state, false);
      if (fresh) {
        it->second = std::all_of(
            vars.begin(), vars.end(), [&](std::string_view name) {
              for (const auto& decision : state->decisions)
                if (decision.var->name() == name) return true;
              return false;
            });
      }
      return it->second;
    };

    for (const auto& group : engine.mapper().groupChoices()) {
      std::vector<std::vector<ExecutionState*>> ownedChoices;
      ownedChoices.reserve(group.size());
      std::uint64_t product = 1;
      for (NodeId node = 0; node < group.size(); ++node) {
        const auto forcedIt = forcedByNode.find(node);
        if (forcedIt == forcedByNode.end()) {
          ownedChoices.push_back(group[node]);
        } else {
          std::vector<ExecutionState*> kept;
          for (ExecutionState* state : group[node])
            if (satisfies(state, forcedIt->second)) kept.push_back(state);
          ownedChoices.push_back(std::move(kept));
        }
        product *= ownedChoices.back().size();
      }
      result.scenariosOwned += product;
      if (product == 0 ||
          (!config.collectScenarioFingerprints && !config.collectTestcases))
        continue;

      // Node-major odometer over the owned sub-product.
      std::vector<std::size_t> odometer(ownedChoices.size(), 0);
      std::vector<ExecutionState*> scenario(ownedChoices.size());
      bool exhausted = false;
      while (!exhausted) {
        for (std::size_t node = 0; node < ownedChoices.size(); ++node)
          scenario[node] = ownedChoices[node][odometer[node]];
        if (config.collectScenarioFingerprints)
          scenarioPrints.insert(scenarioFingerprint(scenario));
        if (config.collectTestcases)
          for (std::string& testcase : expandedScenarioTestcases(
                   engine.context(), engine.solver(), scenario))
            testcases.insert(std::move(testcase));
        std::size_t digit = odometer.size();
        while (true) {
          if (digit == 0) {
            exhausted = true;
            break;
          }
          --digit;
          if (++odometer[digit] < ownedChoices[digit].size()) break;
          odometer[digit] = 0;
        }
      }
    }
  }
  result.scenarioFingerprints.assign(scenarioPrints.begin(),
                                     scenarioPrints.end());
  result.testcases.assign(testcases.begin(), testcases.end());

  if (config.collectStateFingerprints) {
    std::set<std::uint64_t> statePrints;
    for (const auto& state : engine.states())
      statePrints.insert(state->configHash());
    result.stateFingerprints.assign(statePrints.begin(), statePrints.end());
  }

  result.stats.mergeFrom(engine.stats());
  result.stats.mergeFrom(engine.interpStats());
  result.stats.mergeFrom(engine.solverStats());
  return result;
}

std::string jobTracePath(const std::string& traceDir, std::uint32_t jobId) {
  return (std::filesystem::path(traceDir) /
          ("trace_job" + std::to_string(jobId) + ".trc"))
      .string();
}

void finalizeParallelResult(ParallelResult& result, const PartitionPlan& plan,
                            const ParallelConfig& config) {
  namespace fs = std::filesystem;
  std::set<std::uint64_t> scenarioPrints;
  std::set<std::uint64_t> statePrints;
  std::set<std::string> testcases;
  for (const JobResult& job : result.jobs) {
    if (result.outcome == RunOutcome::kCompleted &&
        job.outcome != RunOutcome::kCompleted)
      result.outcome = job.outcome;
    result.totalStates += job.states;
    result.totalEvents += job.events;
    result.totalScenariosOwned += job.scenariosOwned;
    scenarioPrints.insert(job.scenarioFingerprints.begin(),
                          job.scenarioFingerprints.end());
    statePrints.insert(job.stateFingerprints.begin(),
                       job.stateFingerprints.end());
    testcases.insert(job.testcases.begin(), job.testcases.end());
    result.stats.mergeFrom(job.stats);
  }
  result.scenarioFingerprints.assign(scenarioPrints.begin(),
                                     scenarioPrints.end());
  result.stateFingerprints.assign(statePrints.begin(), statePrints.end());
  result.testcases.assign(testcases.begin(), testcases.end());
  // Trace merge, after the barrier and in job-id order (the input order
  // is the merge tie-break, so it must not depend on completion order).
  // Jobs loaded from .done files on a resume did not run here and have
  // no trace file; they are simply absent from the merge.
  if (!config.traceDir.empty()) {
    std::vector<std::string> inputs;
    for (const PartitionJob& job : plan.jobs) {
      const std::string path = jobTracePath(config.traceDir, job.id);
      if (fs::exists(path)) inputs.push_back(path);
    }
    try {
      obs::mergeTraceFiles(
          inputs, (fs::path(config.traceDir) / "merged.trc").string());
    } catch (const obs::TraceError& e) {
      support::logError("trace", e.what());
    }
  }
}

PartitionPlan planPartitions(std::span<const std::string> variables,
                             std::uint64_t seed) {
  SDE_ASSERT(variables.size() <= 16,
             "2^B jobs: refusing more than 16 partition variables");
  PartitionPlan plan;
  plan.variables.assign(variables.begin(), variables.end());
  const std::uint32_t numJobs = 1u << variables.size();
  plan.jobs.reserve(numJobs);
  for (std::uint32_t id = 0; id < numJobs; ++id) {
    PartitionJob job;
    job.id = id;
    support::Hasher h;
    h.u64(seed).u64(id);
    for (const std::string& name : plan.variables) h.str(name);
    job.seed = h.digest();
    job.forced.reserve(variables.size());
    for (std::size_t bit = 0; bit < variables.size(); ++bit)
      job.forced.emplace_back(plan.variables[bit], (id >> bit & 1u) != 0);
    plan.jobs.push_back(std::move(job));
  }
  return plan;
}

namespace {

std::string renderScenarioCases(const std::vector<TestCase>& cases) {
  std::ostringstream os;
  for (const TestCase& testCase : cases) {
    os << "node " << testCase.node;
    if (!testCase.failureMessage.empty())
      os << " FAILURE: " << testCase.failureMessage;
    os << "\n";
    for (const TestCaseInput& input : testCase.inputs)
      os << "  " << input.name << " (w" << input.width << ") = " << input.value
         << "\n";
  }
  return os.str();
}

}  // namespace

std::string canonicalScenarioTestcase(
    solver::SolverClient& solver, std::span<ExecutionState* const> scenario) {
  const auto cases = generateScenarioTestCases(solver, scenario);
  if (!cases) return "<unsatisfiable scenario>";
  return renderScenarioCases(*cases);
}

std::vector<std::string> expandedScenarioTestcases(
    expr::Context& ctx, solver::SolverClient& solver,
    std::span<ExecutionState* const> scenario) {
  vm::MergeExpansion expansion(ctx);
  for (const ExecutionState* member : scenario) expansion.addState(*member);
  const std::vector<expr::Ref>& guards = expansion.guards();
  if (guards.empty()) return {canonicalScenarioTestcase(solver, scenario)};
  SDE_ASSERT(guards.size() < 24, "merge-guard expansion too wide");

  std::vector<std::string> result;
  std::vector<bool> assignment(guards.size());
  std::vector<expr::Ref> items;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << guards.size());
       ++mask) {
    for (std::size_t bit = 0; bit < guards.size(); ++bit)
      assignment[bit] = ((mask >> bit) & 1u) != 0;
    // Reconstruct every member's unmerged constraint items under this
    // assignment and re-add them in the member/item order the unmerged
    // generator uses, so the combined system — and with it the solver's
    // model — is byte-identical to the unmerged run's.
    solver::ConstraintSet combined;
    bool viable = true;       // a member never existed unmerged here
    bool satisfiable = true;  // the unmerged combination is contradictory
    for (const ExecutionState* member : scenario) {
      items.clear();
      if (!expansion.expandItems(*member, assignment, items)) {
        viable = false;
        break;
      }
      for (const expr::Ref item : items) {
        if (combined.add(item) ==
            solver::ConstraintSet::AddResult::kTriviallyFalse) {
          satisfiable = false;
          break;
        }
      }
      if (!satisfiable) break;
    }
    if (!viable) continue;  // a sibling fork covers this assignment
    std::optional<std::vector<TestCase>> cases;
    if (satisfiable)
      cases = generateScenarioTestCasesOver(solver, scenario, combined);
    if (cases) {
      result.push_back(renderScenarioCases(*cases));
      continue;
    }
    // The combination is unsatisfiable — for one of two very different
    // reasons. If a *merged* member's reconstructed constraints are
    // contradictory on their own, the unmerged exploration never created
    // that arm state (merging weakened the path condition to the arm
    // disjunction, so a later branch forked both ways where the unmerged
    // arm state was one-sided): a phantom assignment, skipped. If every
    // member is individually satisfiable but the cross-node conjunction
    // is not, the unmerged run enumerates the same contradictory
    // scenario and renders the same placeholder.
    bool phantom = false;
    for (const ExecutionState* member : scenario) {
      if (member->mergeGuards.empty()) continue;  // real explored state
      items.clear();
      const bool expanded = expansion.expandItems(*member, assignment, items);
      SDE_ASSERT(expanded, "viable assignment must expand every member");
      solver::ConstraintSet alone;
      bool aloneFalse = false;
      for (const expr::Ref item : items) {
        if (alone.add(item) ==
            solver::ConstraintSet::AddResult::kTriviallyFalse) {
          aloneFalse = true;
          break;
        }
      }
      if (aloneFalse || !solver.getModel(alone)) {
        phantom = true;
        break;
      }
    }
    if (!phantom) result.push_back("<unsatisfiable scenario>");
  }
  return result;
}

ParallelResult runPartitioned(const EngineFactory& factory,
                              const PartitionPlan& plan,
                              const ParallelConfig& config) {
  SDE_ASSERT(factory != nullptr, "runPartitioned needs an engine factory");
  SDE_ASSERT(!plan.jobs.empty(), "empty partition plan");
  const auto start = std::chrono::steady_clock::now();

  std::unique_ptr<SharedCaps> caps;
  if (config.maxTotalStates != 0 || config.maxTotalMemoryBytes != 0 ||
      config.maxWallSeconds != 0) {
    caps = std::make_unique<SharedCaps>(config.maxTotalStates,
                                        config.maxTotalMemoryBytes,
                                        config.maxWallSeconds);
  }

  ParallelResult result;
  result.jobs.resize(plan.jobs.size());

  // Durable mode: bind the run to its checkpoint directory. A resume
  // must find a manifest of *this* run (or no manifest at all — then it
  // degrades to a fresh start); a fresh start clears leftover per-job
  // files so checkpoints of an older run can never leak into this one.
  namespace fs = std::filesystem;
  const bool tracing = !config.traceDir.empty();
  const fs::path traceDirPath = config.traceDir;
  if (tracing) fs::create_directories(traceDirPath);
  const bool durable = !config.checkpointDir.empty();
  const fs::path dir = config.checkpointDir;
  bool resuming = false;
  if (durable) {
    fs::create_directories(dir);
    const snapshot::RunManifest manifest{config.scenarioSpec, config.horizon,
                                         plan};
    resuming = snapshot::prepareRunDir(dir, manifest, config.resume);
  }

  // Live cross-worker query sharing: one cache for the whole fleet,
  // attached to every job's solver. Durable runs persist it as the
  // shared_cache.bin sidecar (checkpoint format v4) so a resumed run
  // keeps the warm cache; a torn or missing sidecar degrades to a cold
  // start, never to an error.
  std::unique_ptr<solver::SharedQueryCache> sharedCache;
  std::mutex sharedCacheFileMu;
  const fs::path sharedCacheFile =
      durable ? fs::path(snapshot::sharedCachePath(dir.string())) : fs::path();
  if (config.sharedQueryCache) {
    sharedCache = std::make_unique<solver::SharedQueryCache>();
    if (resuming && fs::exists(sharedCacheFile)) {
      try {
        std::ifstream in(sharedCacheFile, std::ios::binary);
        snapshot::readSharedCache(in, *sharedCache);
      } catch (const snapshot::SnapshotError& e) {
        support::logError("snapshot", e.what());
        sharedCache->clear();
      }
    }
  }

  const unsigned workers = std::max<unsigned>(
      1, std::min<unsigned>(config.workers,
                            static_cast<unsigned>(plan.jobs.size())));
  {
    support::ThreadPool pool(workers);
    for (std::size_t i = 0; i < plan.jobs.size(); ++i) {
      pool.submit([&, i] {
        const PartitionJob& job = plan.jobs[i];

        // Completed jobs are never re-run: their recorded result is the
        // result (checked before any engine is even constructed).
        if (resuming) {
          const fs::path done = snapshot::jobDonePath(dir, job.id);
          if (fs::exists(done)) {
            try {
              result.jobs[i] = snapshot::readJobResultFile(done);
              return;
            } catch (const snapshot::SnapshotError&) {
              // Torn .done file (hard crash mid-write): re-run the job.
            }
          }
        }

        const auto makeEngine = [&] {
          std::unique_ptr<Engine> engine = factory(job);
          SDE_ASSERT(engine != nullptr, "engine factory returned null");
          engine->setDecisionFilter(std::unordered_map<std::string, bool>(
              job.forced.begin(), job.forced.end()));
          if (caps != nullptr) engine->setSharedCaps(caps.get());
          if (sharedCache != nullptr)
            engine->solver().setSharedCache(sharedCache.get());
          return engine;
        };
        std::unique_ptr<Engine> engine = makeEngine();

        // Tracing: the sink is installed *before* restore so a resumed
        // job continues the suspended run's sequence numbering (the
        // file itself restarts — the pre-crash events live in the old
        // process's file, which this open truncates).
        std::ofstream traceOs;
        std::unique_ptr<obs::StreamTraceSink> traceSink;
        if (tracing) {
          traceOs.open(jobTracePath(config.traceDir, job.id),
                       std::ios::binary | std::ios::trunc);
          obs::TraceHeader header;
          header.numNodes = engine->topology().numNodes();
          header.stream = job.id;
          header.mapper = std::string(engine->mapper().name());
          header.scenario = config.scenarioSpec;
          traceSink = std::make_unique<obs::StreamTraceSink>(traceOs, header);
          engine->setTraceSink(traceSink.get());
        }

        const fs::path ckpt =
            durable ? snapshot::jobCheckpointPath(dir, job.id) : fs::path();
        if (resuming && fs::exists(ckpt)) {
          try {
            std::ifstream in(ckpt, std::ios::binary);
            engine->restore(in);
          } catch (const snapshot::SnapshotError&) {
            engine = makeEngine();  // torn checkpoint: restart from scratch
            if (traceSink != nullptr) engine->setTraceSink(traceSink.get());
          }
        }
        if (durable) {
          engine->setCheckpointSink(
              [&](const Engine& e) {
                snapshot::atomicWriteFile(
                    ckpt, [&](std::ostream& os) { e.checkpoint(os); });
                // Piggyback the shared-cache sidecar on the job cadence
                // (serialized: jobs checkpoint concurrently and the
                // atomic-write temp file is path-derived).
                if (sharedCache != nullptr) {
                  std::lock_guard<std::mutex> lock(sharedCacheFileMu);
                  snapshot::atomicWriteFile(
                      sharedCacheFile, [&](std::ostream& os) {
                        snapshot::writeSharedCache(os, *sharedCache);
                      });
                }
              },
              config.checkpointEveryEvents);
        }

        const RunOutcome outcome = engine->run(config.horizon);
        result.jobs[i] = collectJobResult(*engine, job, config, outcome);
        if (traceSink != nullptr) {
          engine->setTraceSink(nullptr);
          try {
            traceSink->close();
          } catch (const obs::TraceError& e) {
            support::logError("trace", e.what());
          }
        }
        if (durable && outcome == RunOutcome::kCompleted) {
          snapshot::writeJobResultFile(snapshot::jobDonePath(dir, job.id),
                                       result.jobs[i]);
          std::error_code ec;
          fs::remove(ckpt, ec);  // superseded by the .done file
        }
      });
    }
    pool.wait();
  }

  // Final sidecar write: leave the fully warm cache behind so a later
  // resume (e.g. after a cap-triggered abort) starts from everything
  // the whole fleet solved.
  if (durable && sharedCache != nullptr) {
    try {
      snapshot::atomicWriteFile(sharedCacheFile, [&](std::ostream& os) {
        snapshot::writeSharedCache(os, *sharedCache);
      });
    } catch (const snapshot::SnapshotError& e) {
      support::logError("snapshot", e.what());
    }
  }

  // Deterministic merge barrier: fold the jobs in id order.
  finalizeParallelResult(result, plan, config);

  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

std::uint64_t ParallelResult::fingerprintDigest() const {
  support::Hasher h;
  h.u64(static_cast<std::uint64_t>(outcome));
  h.u64(totalStates).u64(totalEvents).u64(totalScenariosOwned);
  for (const JobResult& job : jobs) {
    h.u64(job.jobId).u64(static_cast<std::uint64_t>(job.outcome));
    h.u64(job.states).u64(job.events).u64(job.groups).u64(job.memoryBytes);
    h.u64(job.scenariosRepresented).u64(job.scenariosOwned);
    for (const std::uint64_t print : job.scenarioFingerprints) h.u64(print);
    for (const std::uint64_t print : job.stateFingerprints) h.u64(print);
    for (const std::string& testcase : job.testcases) h.str(testcase);
    for (const auto& [name, value] : job.stats.all()) {
      // "solver." counters are attribution, not exploration: with live
      // sharing, *which* layer answered a query depends on what other
      // workers already published (and layer latencies are wall-clock).
      // Everything the run explored is covered by the fingerprints,
      // testcases and engine counters hashed here.
      if (name.starts_with("solver.")) continue;
      h.str(name).u64(value);
    }
  }
  for (const std::uint64_t print : scenarioFingerprints) h.u64(print);
  for (const std::uint64_t print : stateFingerprints) h.u64(print);
  for (const std::string& testcase : testcases) h.str(testcase);
  return h.digest();
}

}  // namespace sde
