// Multi-process fleet execution (ROADMAP item "scale out to worker
// processes").
//
// The thread runner (sde/parallel.hpp) spreads partition jobs over a
// thread pool inside one process. The fleet runner spreads the same
// jobs over N forked worker *processes* — the test-depth/prefix
// partitioning view: the 2^B partition jobs are a prefix enumeration of
// the failure-decision space, and a *shard* is a contiguous job-id
// range a worker leases. Because each job is a complete shared-nothing
// engine run, a worker process needs nothing from anyone else to make
// progress; everything cross-process is coordination:
//
//   * Durable job queue. The PR 2 checkpoint substrate IS the queue:
//     the run directory's manifest fixes the job table, `job_<id>.ckpt`
//     is a suspended job, `job_<id>.done` (atomic temp+rename) is the
//     completion marker. A SIGKILLed worker's shard is simply re-leased
//     to a fresh process; re-running an already-completed job is
//     impossible (.done short-circuits before an engine is built) and
//     re-running a half-done one resumes from its checkpoint. Nothing
//     in the protocol below is load-bearing for correctness — a crash
//     at ANY point loses at most in-flight work, never results.
//
//   * Pipe protocol. Each worker has a command pipe (coordinator →
//     worker) and a status pipe (worker → coordinator), carrying
//     length-prefixed fixed-size frames smaller than PIPE_BUF (writes
//     are atomic, no interleaving). Workers report progress and
//     frontier sizes; the coordinator poll()s all status pipes.
//
//   * Work stealing. When a worker goes idle and the re-lease pool is
//     empty, the coordinator picks the fattest victim (most strictly-
//     pending jobs in its shard, by the coordinator's mirror) and sends
//     kSteal. The *victim* splits — it alone knows its true progress —
//     handing over the upper half of [next+1, hi), shrinking its own
//     hi first and replying second. A victim killed between the two
//     steps is handled by the death path: the coordinator drains the
//     status pipe to EOF (pipes preserve written data past writer
//     death, so a written reply is never lost), then re-leases
//     [nextKnown, hi) of its mirror — the reply, if received, already
//     shrank the mirror, so stolen ranges are never double-leased.
//
//   * Death handling. POLLHUP/EOF on a status pipe → drain, waitpid,
//     re-lease the mirror range to the pool, fork a replacement (up to
//     maxWorkerRestarts). Workers set PR_SET_PDEATHSIG so a dead
//     coordinator reaps its fleet instead of leaking it.
//
//   * Shared-memory query cache. The PR 5 SharedQueryCache promoted to
//     a process-external store (solver/shm_cache.hpp): the coordinator
//     creates (or, on resume, attaches) the segment, seeds it from the
//     durable shared_cache.bin sidecar, and every worker's solver
//     shares queries through it live. A torn pre-existing segment
//     degrades to a cold cache (FleetResult::shmDegraded), never to an
//     error, and never to different exploration results — the store
//     contract guarantees digest equality with the cache on or off.
//
// Merge: after shutdown the coordinator loads every job's .done file in
// job-id order and folds them through the same finalizeParallelResult
// the thread runner uses, so "fleet digest == partitioned digest ==
// single-engine digest" is a structural property. Per-worker trace
// files merge into the same deterministic merged.trc.
//
// Graceful suspend: a FleetConfig::stopRequested poll (or SIGTERM with
// installSigtermSuspend) broadcasts kSuspendFleet; each worker asks its
// running engine to suspend (Engine::requestSuspend), the abort path
// writes the job checkpoint, the worker reports kSuspended and exits
// cleanly. The coordinator returns FleetResult::suspended without
// merging; the durable queue holds everything needed to resume. This is
// what makes preemption free for a scheduler embedding the fleet: a
// suspended run costs one checkpoint write, never lost exploration.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sde/parallel.hpp"

namespace sde {

class FleetError : public std::runtime_error {
 public:
  explicit FleetError(const std::string& what) : std::runtime_error(what) {}
};

// Test-only fault-injection hooks. They run INSIDE the worker process
// (the closures are captured at fork time); a chaos test typically
// raises SIGKILL on itself when an on-disk sentinel says it is this
// worker's turn to die. Because a respawned worker restarts from the
// same fork image, kill-once conditions must live on the file system,
// not in captured memory.
struct FleetChaos {
  // Before the worker runs `jobId` (after leasing, before any engine).
  std::function<void(unsigned slot, std::uint32_t jobId)> beforeJob;
  // Inside the checkpoint sink, right after the engine checkpoint was
  // atomically written ("mid-checkpoint-write" from the job's view: the
  // job is suspended on disk but far from done).
  std::function<void(unsigned slot, std::uint32_t jobId)> onCheckpoint;
};

struct FleetConfig {
  unsigned processes = 1;     // worker processes to fork
  std::uint64_t horizon = 0;  // virtual-time horizon passed to run()
  // --- Graceful suspend (the embed-able coordinator API) ---------------------
  // Polled by the coordinator between protocol rounds (~5x/s). Returning
  // true triggers a fleet-wide graceful suspend: every worker checkpoints
  // its in-flight job (engine abort path -> job_<id>.ckpt) and exits
  // cleanly, runFleet returns with FleetResult::suspended set, and a
  // later run with FleetConfig::resume finishes the run losslessly —
  // same digest as an uninterrupted run. This is how an embedding
  // service preempts a fleet without losing work.
  std::function<bool()> stopRequested;
  // Install a SIGTERM handler for the duration of runFleet that triggers
  // the same graceful suspend (restored on return). The idiom for
  // daemon-managed fleet processes: SIGTERM means "checkpoint and yield",
  // SIGKILL still degrades to the crash-recovery path.
  bool installSigtermSuspend = false;
  bool collectScenarioFingerprints = true;
  bool collectStateFingerprints = true;
  bool collectTestcases = false;
  // The process-external shared query cache. Off runs every worker with
  // fully isolated caches; exploration results are identical either
  // way (the digest gate of fleet_equivalence_test).
  bool shmQueryCache = true;
  // POSIX shm name of the segment ("/sde_qc_..."). Empty derives a
  // per-run name from the coordinator pid. When a segment of this name
  // already exists, the coordinator tries to attach (warm cache across
  // fleets); a torn/foreign/stale segment is unlinked and replaced by a
  // fresh cold one (FleetResult::shmDegraded).
  std::string shmName;
  std::size_t shmBytes = 32u << 20;
  // --- Live metrics plane (obs/metrics.hpp + obs/metrics_shm.hpp) -----------
  // On: each worker attaches the process-global MetricsRegistry to its
  // engines (fork/deliver/terminate counters, peak gauges, per-layer
  // solver latency histograms, a per-job PhaseProfiler bridge) and
  // seqlock-publishes registry snapshots into its slot of a POSIX shm
  // metrics segment at the status cadence; the coordinator publishes
  // its fleet.* counters into slot 0 and writes the merged snapshot to
  // the durable metrics.sde sidecar at the end. Purely observational:
  // exploration digests are identical with the plane on or off.
  bool shmMetrics = true;
  // POSIX shm name of the metrics segment ("/sde_mx_..."). Empty
  // derives a per-run name from the coordinator pid. An embedding
  // service passes a deterministic name so it can attach mid-run.
  std::string metricsShmName;
  // REQUIRED — the durable job queue lives here (manifest, .ckpt/.done
  // files; see snapshot/manifest.hpp). Same layout as the thread
  // runner's durable mode, so sde_checkpoint understands fleet runs.
  std::string checkpointDir;
  std::uint64_t checkpointEveryEvents = 256;
  // Resume from checkpointDir: .done jobs load instead of running,
  // suspended jobs continue from their .ckpt, the shm cache seeds from
  // the shared_cache.bin sidecar. Manifest mismatch throws.
  bool resume = false;
  std::string scenarioSpec;
  // Non-empty: per-job trace files (trace_job<id>.trc) merged into
  // <traceDir>/merged.trc after the run, exactly like the thread
  // runner. Note: with a live shared cache, kSolverQuery layer
  // attribution is timing-dependent — byte-compare merged traces only
  // with the cache off (digests are safe either way).
  std::string traceDir;
  // Status-frame cadence, in processed events per worker.
  std::uint64_t statusEveryEvents = 256;
  // Initial shard leases as contiguous [lo, hi) job-id ranges, one per
  // worker slot (tests use this to force skew). Empty = even split.
  // Ranges must be disjoint and cover all jobs.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> initialLeases;
  // Replacement workers forked across the whole run before the
  // coordinator gives up with FleetError.
  unsigned maxWorkerRestarts = 16;
  // No frame from any worker for this long → the fleet is declared
  // wedged: workers are killed and FleetError thrown. 0 disables.
  double watchdogSeconds = 120;
  FleetChaos chaos;
};

struct FleetResult {
  // Merged exactly like the thread runner's result; fingerprintDigest()
  // is the cross-mode equivalence oracle.
  ParallelResult result;
  // A stopRequested/SIGTERM suspend interrupted the run: in-flight jobs
  // are checkpointed in the durable queue, `result` carries outcome
  // kSuspended with jobsDone completed entries, and nothing is merged
  // (digests only exist for finished runs). Resume with
  // FleetConfig::resume to finish.
  bool suspended = false;
  std::uint32_t jobsDone = 0;        // .done files present at return
  std::uint32_t jobsSuspendedMidRun = 0;  // workers that checkpointed a
                                          // job in response to suspend
  unsigned processes = 0;
  std::uint64_t steals = 0;        // non-empty steal handoffs completed
  std::uint64_t workerDeaths = 0;  // unexpected worker exits
  std::uint64_t respawns = 0;      // replacement workers forked
  // Times each job ran an engine AND reported completion (jobs loaded
  // from .done files count 0; a worker killed mid-job reports nothing,
  // so its aborted attempt is invisible here). In a crash-free run
  // every executed job counts exactly 1 — the no-double-execution
  // oracle of the stealing tests.
  std::vector<std::uint32_t> executedCounts;
  // Merged metrics snapshot (empty when shmMetrics is off): the post-run
  // merged StatsRegistry lifted verbatim into the metrics value space —
  // so every counter the stats carry is bit-exact — plus live-plane-only
  // series (latency histograms, fleet.* counters, profile bridges)
  // adopted for the names the stats do not cover. Also written durably
  // to <checkpointDir>/metrics.sde for completed runs.
  obs::MetricsSnapshot metrics;
  // Shared-memory cache outcome (zeros when shmQueryCache is off).
  bool shmDegraded = false;  // pre-existing segment was torn; ran cold
  std::uint64_t shmEntries = 0;
  std::uint64_t shmHits = 0;
  std::uint64_t shmMisses = 0;
  std::uint64_t shmInserts = 0;
  std::uint64_t shmDropped = 0;
};

// Runs `plan` over config.processes forked workers. The factory is
// called inside worker processes (and once in the coordinator for
// validation-free setup paths); it must therefore not depend on state
// the coordinator mutates after runFleet starts. Throws FleetError on
// coordination failures (fork/pipe errors, restart budget exhausted,
// watchdog) and snapshot::SnapshotError on a foreign checkpoint
// directory.
[[nodiscard]] FleetResult runFleet(const EngineFactory& factory,
                                   const PartitionPlan& plan,
                                   const FleetConfig& config);

}  // namespace sde
