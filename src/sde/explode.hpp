// Deliberate state explosion (paper §IV-C).
//
// COW and SDS keep a compact representation; generating test cases "for
// all nodes in all dscenarios" requires expanding it back to COB's
// explicit dscenario list. Full expansion is exponential, so next to the
// eager expander (fine for tests and small runs) we provide the
// incremental iterator the paper proposes as future work: dscenarios are
// produced one at a time with O(k) live memory via a per-group odometer
// over the per-node choice lists.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "sde/mapper.hpp"

namespace sde {

// Eagerly materialises every dscenario of `mapper`. Deterministic order:
// groups in mapper order, node-major odometer within a group.
[[nodiscard]] std::vector<std::vector<ExecutionState*>> explodeScenarios(
    const StateMapper& mapper);

// The number of dscenarios the mapper represents, computed without
// materialising them (product of choice-list sizes, summed over groups).
[[nodiscard]] std::uint64_t countScenarios(const StateMapper& mapper);

// The set of distinct dscenario fingerprints — the cross-algorithm
// equivalence oracle: two mapping algorithms explored the same
// distributed executions iff these sets are equal.
[[nodiscard]] std::unordered_set<std::uint64_t> scenarioFingerprints(
    const StateMapper& mapper);

// One dscenario that contains `state` (the failing state's distributed
// context: pick `state` for its node and the first choice for every
// other node of a group containing it). nullopt if the state is not part
// of any group — e.g. it was never registered with this mapper.
[[nodiscard]] std::optional<std::vector<ExecutionState*>> scenarioContaining(
    const StateMapper& mapper, const ExecutionState& state);

// Incremental expansion: yields one dscenario per next() call.
class ExplosionIterator {
 public:
  explicit ExplosionIterator(const StateMapper& mapper);

  // The next dscenario (one state per node), or nullopt when exhausted.
  [[nodiscard]] std::optional<std::vector<ExecutionState*>> next();

  [[nodiscard]] std::uint64_t produced() const { return produced_; }

 private:
  std::vector<std::vector<std::vector<ExecutionState*>>> groups_;
  std::size_t group_ = 0;
  std::vector<std::size_t> odometer_;
  bool groupFresh_ = true;
  std::uint64_t produced_ = 0;
};

}  // namespace sde
