// Parallelisation analysis (paper §VI, future work): "For the
// parallelization, we have to identify the sets of states which can be
// safely offloaded on other cores and thus can be independently
// executed."
//
// Two execution states can interact only through a shared group (a
// transmission inside a dstate forks/delivers to members of that dstate;
// COB analogously within a dscenario). Groups created later are always
// carved out of existing ones, so connected components of the
// state–group membership graph never merge: each component is a unit of
// work that can run on its own core without synchronisation. This module
// computes that partition; bench_partition tracks how much parallelism
// each mapping algorithm exposes over a run.
#pragma once

#include <cstddef>
#include <vector>

#include "sde/mapper.hpp"

namespace sde {

struct PartitionReport {
  std::size_t states = 0;
  std::size_t components = 0;
  std::size_t largestComponent = 0;
  // Component sizes, descending.
  std::vector<std::size_t> sizes;

  // Upper bound on parallel speedup with perfectly balanced scheduling
  // of whole components: total / largest.
  [[nodiscard]] double maxSpeedup() const {
    return largestComponent == 0
               ? 1.0
               : static_cast<double>(states) /
                     static_cast<double>(largestComponent);
  }
};

// Partitions the mapper's states into independently executable sets.
[[nodiscard]] PartitionReport partitionStates(const StateMapper& mapper);

}  // namespace sde
