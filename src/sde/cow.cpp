#include "sde/cow.hpp"

#include <algorithm>

#include "obs/trace_sink.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

namespace sde {

void CowMapper::registerInitialStates(
    std::span<ExecutionState* const> states) {
  SDE_ASSERT(states.size() == numNodes_, "need exactly one state per node");
  DState& dstate = dstates_.emplace_back(numNodes_);
  dstate.id = nextDstateId_++;
  for (ExecutionState* state : states) {
    dstate.members.add(state);
    dstateOf_[state] = &dstate;
  }
}

CowMapper::DState& CowMapper::mutableDstateOf(const ExecutionState& state) {
  const auto it = dstateOf_.find(&state);
  SDE_ASSERT(it != dstateOf_.end(), "state not registered with COW");
  return *it->second;
}

const StateGroup& CowMapper::dstateOf(const ExecutionState& state) const {
  const auto it = dstateOf_.find(&state);
  SDE_ASSERT(it != dstateOf_.end(), "state not registered with COW");
  return it->second->members;
}

void CowMapper::onLocalBranch(ExecutionState& original,
                              ExecutionState& sibling, MapperRuntime&) {
  // Conflict-free by construction: the siblings differ only in the
  // branch constraint, their communication histories are identical. Just
  // record membership (this is the entire point of COW).
  DState& dstate = mutableDstateOf(original);
  dstate.members.add(&sibling);
  dstateOf_[&sibling] = &dstate;
}

std::vector<ExecutionState*> CowMapper::onTransmit(ExecutionState& sender,
                                                   const net::Packet& packet,
                                                   MapperRuntime& runtime) {
  runtime.stats().bump("map.transmissions");
  DState& dstate = mutableDstateOf(sender);
  const NodeId dst = packet.dst;
  SDE_ASSERT(dst < numNodes_, "destination out of range");

  const auto senderSiblings = dstate.members.statesOf(sender.node());
  const bool hasRivals = senderSiblings.size() > 1;

  if (!hasRivals) {
    // Every dscenario this dstate represents has the sender sending —
    // all destination-node members receive in place, nothing forks.
    const auto targets = dstate.members.statesOf(dst);
    return {targets.begin(), targets.end()};
  }

  // Conflict: rivals did not send this packet. Move the sender into a
  // fresh dstate together with forked copies of every member except the
  // rivals (Figure 4). The target copies receive the packet; the
  // bystander copies are pure duplicates (the COW inefficiency).
  runtime.stats().bump("map.cow.conflict_resolutions");
  DState& fresh = dstates_.emplace_back(numNodes_);
  DState& old = mutableDstateOf(sender);  // deque kept `old` stable
  const std::uint64_t oldId = old.id;
  fresh.id = nextDstateId_++;

  old.members.remove(&sender);
  fresh.members.add(&sender);
  dstateOf_[&sender] = &fresh;

  std::uint64_t targetsForked = 0;
  std::uint64_t bystandersForked = 0;
  std::vector<ExecutionState*> receivers;
  for (NodeId node = 0; node < numNodes_; ++node) {
    if (node == sender.node()) continue;  // rivals stay, sender moved
    for (ExecutionState* member : old.members.statesOf(node)) {
      runtime.stats().bump("map.cow.split_copy_elements",
                           member->forkCopyCost());
      ExecutionState& copy = runtime.forkState(*member);
      fresh.members.add(&copy);
      dstateOf_[&copy] = &fresh;
      if (node == dst) {
        receivers.push_back(&copy);
        runtime.stats().bump("map.targets_forked");
        ++targetsForked;
      } else {
        runtime.stats().bump("map.bystanders_forked");
        ++bystandersForked;
      }
    }
  }
  SDE_ASSERT(!receivers.empty(), "dstate must cover the destination node");
  if (obs::TraceSink* trace = runtime.trace()) {
    obs::TraceEvent split;
    split.kind = obs::TraceEventKind::kGroupFork;
    split.detail =
        static_cast<std::uint8_t>(obs::GroupForkDetail::kDstateSplit);
    split.node = sender.node();
    split.stateId = sender.id();
    split.groupId = fresh.id;
    split.a = oldId;
    split.b = targetsForked + bystandersForked;
    trace->emit(split);

    obs::TraceEvent invoked;
    invoked.kind = obs::TraceEventKind::kMappingInvoked;
    invoked.node = sender.node();
    invoked.peer = dst;
    invoked.stateId = sender.id();
    invoked.groupId = fresh.id;
    invoked.packetId = packet.id;
    invoked.a = targetsForked;
    invoked.b = bystandersForked;
    trace->emit(invoked);
  }
  return receivers;
}

bool CowMapper::canMerge(const ExecutionState& survivor,
                         const ExecutionState& absorbed) const {
  const auto keep = dstateOf_.find(&survivor);
  const auto drop = dstateOf_.find(&absorbed);
  SDE_ASSERT(keep != dstateOf_.end() && drop != dstateOf_.end(),
             "state not registered with COW");
  return keep->second == drop->second;
}

std::vector<ExecutionState*> CowMapper::onStatesMerged(
    ExecutionState& survivor, ExecutionState& absorbed) {
  DState& dstate = mutableDstateOf(absorbed);
  SDE_ASSERT(&dstate == &mutableDstateOf(survivor),
             "merge across dstates slipped past canMerge");
  const bool removed = dstate.members.remove(&absorbed);
  SDE_ASSERT(removed, "absorbed state missing from its dstate");
  dstateOf_.erase(&absorbed);
  return {};
}

std::vector<std::vector<std::vector<ExecutionState*>>>
CowMapper::groupChoices() const {
  // Each dstate represents the cartesian product of its per-node member
  // sets: all members share one communication history, so every
  // combination is a consistent dscenario.
  std::vector<std::vector<std::vector<ExecutionState*>>> result;
  result.reserve(dstates_.size());
  for (const DState& dstate : dstates_) {
    std::vector<std::vector<ExecutionState*>> group;
    group.reserve(numNodes_);
    for (NodeId node = 0; node < numNodes_; ++node) {
      const auto choices = dstate.members.statesOf(node);
      group.emplace_back(choices.begin(), choices.end());
    }
    result.push_back(std::move(group));
  }
  return result;
}

void CowMapper::snapshotSave(snapshot::Writer& out) const {
  out.u64(nextDstateId_);
  out.u64(dstates_.size());
  for (const DState& dstate : dstates_) {
    out.u64(dstate.id);
    // Node-major with explicit per-node counts: the slot order inside a
    // node's member list is the order onTransmit returns receivers in,
    // so it must survive the round trip verbatim.
    for (NodeId node = 0; node < numNodes_; ++node) {
      const auto members = dstate.members.statesOf(node);
      out.u64(members.size());
      for (const ExecutionState* member : members) out.u64(member->id());
    }
  }
}

void CowMapper::snapshotLoad(snapshot::Reader& in,
                             const StateResolver& resolve) {
  SDE_ASSERT(dstates_.empty(), "snapshotLoad needs a fresh mapper");
  nextDstateId_ = in.u64();
  const std::uint64_t count = in.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    DState& dstate = dstates_.emplace_back(numNodes_);
    dstate.id = in.u64();
    for (NodeId node = 0; node < numNodes_; ++node) {
      const std::uint64_t members = in.u64();
      for (std::uint64_t m = 0; m < members; ++m) {
        ExecutionState* state = resolve(in.u64());
        if (state == nullptr)
          throw snapshot::SnapshotError(
              "COW snapshot references an unknown state");
        dstate.members.add(state);
        dstateOf_[state] = &dstate;
      }
    }
  }
}

void CowMapper::checkInvariants() const {
  std::size_t mapped = 0;
  for (const DState& dstate : dstates_) {
    SDE_ASSERT(dstate.members.coversAllNodes(),
               "dstate must have >= 1 state per node");
    for (ExecutionState* member : dstate.members.all()) {
      ++mapped;
      const auto it = dstateOf_.find(member);
      SDE_ASSERT(it != dstateOf_.end() && it->second == &dstate,
                 "dstateOf_ out of sync (a state must be in exactly one "
                 "dstate)");
    }
    SDE_ASSERT(countConflicts(dstate.members) == 0,
               "dstate members must be pairwise conflict-free");
  }
  SDE_ASSERT(mapped == dstateOf_.size(), "orphan entries in dstateOf_");
}

}  // namespace sde
