// The state-mapping interface (the paper's core abstraction, §III).
//
// A mapping algorithm answers one question — when an execution state
// transmits a packet, which states on the destination node receive it —
// and maintains whatever grouping structure (dscenarios, dstates,
// virtual states) it needs to answer consistently. It reacts to exactly
// two stimuli, matching the paper's reactive model (§III-D): local
// symbolic branches and packet transmissions. It never inspects state
// configurations or packet contents.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "net/packet.hpp"
#include "sde/dstate.hpp"
#include "support/stats.hpp"

namespace sde::snapshot {
class Writer;
class Reader;
}  // namespace sde::snapshot

namespace sde::obs {
class TraceSink;
}  // namespace sde::obs

namespace sde {

// Engine services available to mapping algorithms. Forking through the
// runtime registers the clone with the engine (id assignment, scheduler,
// metrics) but does NOT re-notify the mapper.
class MapperRuntime {
 public:
  virtual ~MapperRuntime() = default;
  virtual ExecutionState& forkState(ExecutionState& original) = 0;
  virtual support::StatsRegistry& stats() = 0;
  // The engine's trace sink; nullptr (the default) when tracing is off.
  // Mappers emit kMappingInvoked / kGroupFork records through it.
  virtual obs::TraceSink* trace() { return nullptr; }
};

class StateMapper {
 public:
  virtual ~StateMapper() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Called once with the initial k states (exactly one per node, ordered
  // by node id).
  virtual void registerInitialStates(
      std::span<ExecutionState* const> states) = 0;

  // `original` forked into `sibling` at a local symbolic branch (the
  // sibling is already registered with the engine). COB resolves the
  // one-state-per-node-per-dscenario invariant here; COW and SDS merely
  // record membership.
  virtual void onLocalBranch(ExecutionState& original,
                             ExecutionState& sibling,
                             MapperRuntime& runtime) = 0;

  // `sender` transmits `packet` (dst = packet.dst). Performs conflict
  // resolution and returns the states that receive the packet. Every
  // returned state is a live state of node packet.dst.
  [[nodiscard]] virtual std::vector<ExecutionState*> onTransmit(
      ExecutionState& sender, const net::Packet& packet,
      MapperRuntime& runtime) = 0;

  // Number of groups (dscenarios for COB, dstates for COW/SDS) currently
  // representing the distributed execution.
  [[nodiscard]] virtual std::uint64_t numGroups() const = 0;

  // The per-node member choices of each group: result[g][n] lists the
  // states a dscenario drawn from group g may use for node n (always a
  // singleton for COB). The dscenarios a group represents are exactly
  // the cartesian product of its per-node choices — the "deliberate
  // state explosion" of §IV-C builds on this (see sde/explode.hpp).
  [[nodiscard]] virtual std::vector<std::vector<std::vector<ExecutionState*>>>
  groupChoices() const = 0;

  // --- State merging (opt-in, EngineConfig::mergeStates) -------------------
  // May `absorbed` be ite-merged into `survivor`? Both are live states
  // of the same node that the engine already found vm-compatible. The
  // mapper vetoes merges that would break its grouping structure (e.g.
  // COW states of different dstates). Default: decline everything.
  [[nodiscard]] virtual bool canMerge(const ExecutionState& survivor,
                                      const ExecutionState& absorbed) const {
    (void)survivor;
    (void)absorbed;
    return false;
  }
  // `absorbed` was merged into `survivor` (absorbed.mergedAway is set).
  // The mapper repairs its grouping and returns any *additional* states
  // it marked mergedAway as a consequence (COB's bystander clones of the
  // absorbed dscenario); the engine reaps them together with `absorbed`.
  virtual std::vector<ExecutionState*> onStatesMerged(
      ExecutionState& survivor, ExecutionState& absorbed) {
    (void)survivor;
    (void)absorbed;
    return {};
  }

  // Structural self-check; fires SDE_ASSERT on violation (used by tests
  // and the engine's checkInvariants mode).
  virtual void checkInvariants() const = 0;

  // --- Checkpoint / restore (snapshot subsystem) ---------------------------
  // Serializes the complete grouping structure — group membership, the
  // per-node slot orders (which determine future receiver order, so
  // they must round-trip exactly), and the id allocators. snapshotLoad
  // runs on a freshly constructed mapper of the same kind and network
  // size; `resolve` maps serialized state ids to the engine's restored
  // states and returns nullptr for unknown ids (a corrupt snapshot —
  // implementations throw snapshot::SnapshotError).
  using StateResolver = std::function<ExecutionState*(StateId)>;
  virtual void snapshotSave(snapshot::Writer& out) const = 0;
  virtual void snapshotLoad(snapshot::Reader& in,
                            const StateResolver& resolve) = 0;
};

enum class MapperKind : std::uint8_t { kCob, kCow, kSds };

[[nodiscard]] std::string_view mapperKindName(MapperKind kind);
[[nodiscard]] std::unique_ptr<StateMapper> makeMapper(MapperKind kind,
                                                      std::uint32_t numNodes);

}  // namespace sde
