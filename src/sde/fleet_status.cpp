#include "sde/fleet_status.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "snapshot/checkpoint.hpp"

namespace sde {

namespace fs = std::filesystem;

std::string_view fleetJobStateName(FleetJobState state) {
  switch (state) {
    case FleetJobState::kDone: return "done";
    case FleetJobState::kSuspended: return "suspended";
    case FleetJobState::kPending: return "pending";
    case FleetJobState::kBroken: return "broken";
  }
  return "unknown";
}

FleetRunStatus inspectFleetRun(const fs::path& dir) {
  FleetRunStatus status;
  status.dir = dir;
  status.manifest = snapshot::readManifest(dir);
  for (const PartitionJob& job : status.manifest.plan.jobs) {
    FleetJobStatus row;
    row.id = job.id;
    const fs::path donePath = snapshot::jobDonePath(dir, job.id);
    const fs::path ckptPath = snapshot::jobCheckpointPath(dir, job.id);
    if (fs::exists(donePath)) {
      try {
        const JobResult result = snapshot::readJobResultFile(donePath);
        row.state = FleetJobState::kDone;
        row.states = result.states;
        ++status.done;
      } catch (const snapshot::SnapshotError&) {
        row.state = FleetJobState::kBroken;
        ++status.broken;
      }
    } else if (fs::exists(ckptPath)) {
      try {
        std::ifstream is(ckptPath, std::ios::binary);
        const snapshot::CheckpointInfo info =
            snapshot::inspectCheckpointHeader(is);
        row.state = FleetJobState::kSuspended;
        row.states = info.numStates;
        row.virtualNow = info.virtualNow;
        ++status.suspended;
      } catch (const snapshot::SnapshotError&) {
        row.state = FleetJobState::kBroken;
        ++status.broken;
      }
    } else {
      row.state = FleetJobState::kPending;
      ++status.pending;
    }
    status.jobs.push_back(row);
  }
  const fs::path metricsPath = snapshot::metricsSnapshotPath(dir);
  if (fs::exists(metricsPath)) {
    try {
      std::ifstream is(metricsPath, std::ios::binary);
      std::ostringstream bytes;
      bytes << is.rdbuf();
      status.metrics = obs::decodeMetricsSnapshot(std::move(bytes).str());
      status.hasMetrics = true;
    } catch (const snapshot::SnapshotError&) {
      // A torn sidecar is a diagnostics loss; the run status stands.
    }
  }
  return status;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fleetStatusJson(const FleetRunStatus& status) {
  std::ostringstream out;
  out << "{\"dir\":\"" << jsonEscape(status.dir.string()) << "\""
      << ",\"horizon\":" << status.manifest.horizon;
  if (!status.manifest.scenarioSpec.empty())
    out << ",\"scenario\":\"" << jsonEscape(status.manifest.scenarioSpec)
        << "\"";
  out << ",\"jobsTotal\":" << status.manifest.plan.jobs.size()
      << ",\"done\":" << status.done << ",\"suspended\":" << status.suspended
      << ",\"pending\":" << status.pending << ",\"broken\":" << status.broken
      << ",\"jobs\":[";
  bool firstJob = true;
  for (const FleetJobStatus& job : status.jobs) {
    if (!firstJob) out << ",";
    firstJob = false;
    out << "{\"id\":" << job.id << ",\"state\":\""
        << fleetJobStateName(job.state) << "\"";
    // Omit-empty: a pending or broken job HAS no state count, and a
    // done job has no virtual clock — emitting zeros would make them
    // indistinguishable from real values.
    if (job.state == FleetJobState::kDone ||
        job.state == FleetJobState::kSuspended)
      out << ",\"states\":" << job.states;
    if (job.state == FleetJobState::kSuspended)
      out << ",\"virtualNow\":" << job.virtualNow;
    out << "}";
  }
  out << "]";
  if (status.hasMetrics && !status.metrics.empty()) {
    out << ",\"metrics\":{";
    bool firstPoint = true;
    for (const auto& [name, point] : status.metrics.points) {
      if (!firstPoint) out << ",";
      firstPoint = false;
      out << "\"" << jsonEscape(name) << "\":";
      if (point.kind == obs::MetricKind::kHistogram) {
        out << "{\"count\":" << point.count << ",\"sum\":" << point.sum
            << ",\"p50\":" << obs::histogramQuantile(point, 0.5)
            << ",\"p99\":" << obs::histogramQuantile(point, 0.99) << "}";
      } else {
        out << point.value;
      }
    }
    out << "}";
  }
  out << "}";
  return std::move(out).str();
}

}  // namespace sde
