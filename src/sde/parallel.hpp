// Parallel dscenario exploration (paper §VI).
//
// The paper observes that distributed symbolic execution parallelises
// naturally: dscenarios are independent once the failure decisions that
// separate them are fixed. We exploit exactly that: a PartitionPlan
// names B failure-decision variables and spawns 2^B *partition jobs*,
// one per assignment. Each job runs a complete, shared-nothing Engine
// (own expression context, solver, query cache, scheduler) with the
// plan's variables forced through the engine's decision filter, so the
// jobs explore disjoint slices of the legacy search tree and never
// share mutable engine state — workers need no locks around engine
// internals. The one deliberately shared structure is the
// SharedQueryCache the runner attaches to every job's solver: workers
// consult it live and publish canonical results, so a query one job
// solved is never enumerated again anywhere in the fleet. Its contract
// (context-independent keys, canonical values only — see
// solver/shared_cache.hpp) keeps every determinism guarantee below
// intact with the cache on or off.
//
// Determinism: the plan depends only on (variables, seed), jobs are
// merged in job-id order at a barrier, and each engine is sequential —
// so the merged result is byte-identical for any worker count and any
// thread interleaving. Paths that never decide a partition variable are
// re-explored by every job that agrees on the variables they *did*
// decide; the ownership rule (each dscenario is owned by the job whose
// extra forced-true variables all appear in the members' decision logs)
// assigns every legacy dscenario to exactly one job, so owned counts
// and fingerprint unions match the single-engine run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sde/engine.hpp"
#include "support/stats.hpp"

namespace sde {

// One slice of the search tree: run the engine with every listed
// variable forced to the paired value.
struct PartitionJob {
  std::uint32_t id = 0;      // bit i = forced value of plan.variables[i]
  std::uint64_t seed = 0;    // per-job stream, derived from the plan seed
  std::vector<std::pair<std::string, bool>> forced;
};

struct PartitionPlan {
  std::vector<std::string> variables;  // failure-decision variable names
  std::vector<PartitionJob> jobs;      // 2^variables.size(), in id order
};

// Builds the full-factorial plan over `variables` (at most 16 — jobs
// grow as 2^B). Deterministic in (variables, seed).
[[nodiscard]] PartitionPlan planPartitions(
    std::span<const std::string> variables, std::uint64_t seed = 0);

struct ParallelConfig {
  unsigned workers = 1;        // thread-pool size (jobs stay sequential)
  std::uint64_t horizon = 0;   // virtual-time horizon passed to run()
  bool collectScenarioFingerprints = true;
  bool collectStateFingerprints = true;
  // Generate canonical test cases for every owned dscenario (solver
  // work per dscenario — keep off for large runs).
  bool collectTestcases = false;
  // Fleet-wide cooperative caps (0 = off). When a cap trips, the abort
  // latches and every job observes it at its next event; capped runs
  // abort deterministically in *which* cap fired, but not in how far
  // each job got, so the equivalence oracles only apply to runs that
  // did not trip a cap.
  std::uint64_t maxTotalStates = 0;
  std::uint64_t maxTotalMemoryBytes = 0;
  double maxWallSeconds = 0;
  // Live cross-worker query sharing: one SharedQueryCache attached to
  // every job's solver for the duration of the run. Off reverts to
  // fully isolated per-job caches. Exploration results are identical
  // either way; only solver work changes.
  bool sharedQueryCache = true;
  // --- Durable runs (snapshot subsystem) -------------------------------------
  // Non-empty: the run is crash-tolerant. The directory receives a run
  // manifest, one periodic checkpoint per unfinished job and one .done
  // file per completed job (see snapshot/manifest.hpp for the layout).
  std::string checkpointDir;
  // Minimum processed events between two checkpoints of one job (the
  // cadence rides the engine's sampling hook; 0 checkpoints only when a
  // resource cap aborts a job).
  std::uint64_t checkpointEveryEvents = 256;
  // Resume from `checkpointDir`: completed jobs are loaded from their
  // .done files and never re-run, suspended jobs continue from their
  // last checkpoint, everything else starts fresh. The directory's
  // manifest must describe this run (variables, jobs, horizon, spec) —
  // a mismatch throws snapshot::SnapshotError rather than silently
  // mixing two runs. A missing manifest degrades to a fresh start.
  bool resume = false;
  // Opaque scenario descriptor recorded in the manifest so external
  // tools (sde_checkpoint resume) can rebuild the engine factory.
  std::string scenarioSpec;
  // --- Tracing (obs/) --------------------------------------------------------
  // Non-empty: every job streams a structured event trace to
  // <traceDir>/trace_job<id>.trc (stream id = job id), and after the
  // merge barrier the runner stitches all job traces into
  // <traceDir>/merged.trc. The merge is keyed on virtual time and
  // per-stream sequence numbers only (the stitchSamples contract), so
  // the merged file is byte-identical for any worker count.
  std::string traceDir;
};

// Everything observable about one finished partition job. All fields
// except wallSeconds are deterministic functions of the job definition.
struct JobResult {
  std::uint32_t jobId = 0;
  RunOutcome outcome = RunOutcome::kCompleted;
  std::uint64_t states = 0;
  std::uint64_t events = 0;
  std::uint64_t groups = 0;
  std::uint64_t memoryBytes = 0;
  std::uint64_t scenariosRepresented = 0;  // countScenarios() of the job
  std::uint64_t scenariosOwned = 0;        // after the ownership rule
  double wallSeconds = 0;
  std::vector<std::uint64_t> scenarioFingerprints;  // owned, sorted distinct
  std::vector<std::uint64_t> stateFingerprints;     // configHash, sorted
                                                    // distinct
  std::vector<std::string> testcases;  // canonical (id-free), sorted
  support::StatsRegistry stats;        // engine + interpreter + solver
};

struct ParallelResult {
  std::vector<JobResult> jobs;  // job-id order
  RunOutcome outcome = RunOutcome::kCompleted;
  std::uint64_t totalStates = 0;
  std::uint64_t totalEvents = 0;
  std::uint64_t totalScenariosOwned = 0;  // == legacy countScenarios()
  std::vector<std::uint64_t> scenarioFingerprints;  // union, sorted distinct
  std::vector<std::uint64_t> stateFingerprints;     // union, sorted distinct
  std::vector<std::string> testcases;               // union, sorted distinct
  support::StatsRegistry stats;
  double wallSeconds = 0;  // whole fleet, wall clock

  // Digest over every deterministic field — the workers-invariance
  // oracle: runs of the same plan must produce equal digests for any
  // worker count, with the solver pipeline or the shared query cache
  // on or off. "solver."-prefixed counters are excluded: *what* was
  // explored is timing-invariant, but *which pipeline layer* answered
  // each query legitimately depends on what the shared cache already
  // held (and layer latencies are wall-clock).
  [[nodiscard]] std::uint64_t fingerprintDigest() const;
};

// Builds the engine for one job: a fresh Engine over the same network
// plan and configuration every time. Called from worker threads
// concurrently — must not touch shared mutable data. The runner applies
// the job's decision filter and the shared caps afterwards, so the
// factory only constructs and configures scenario-level detail (failure
// model, boot globals, samplers).
using EngineFactory =
    std::function<std::unique_ptr<Engine>(const PartitionJob&)>;

[[nodiscard]] ParallelResult runPartitioned(const EngineFactory& factory,
                                            const PartitionPlan& plan,
                                            const ParallelConfig& config);

// Canonical, run-independent rendering of a dscenario's test cases: the
// member states' inputs under one joint model, keyed by node — state
// ids (which depend on exploration order) are deliberately absent, so
// the strings compare equal across partitioned and legacy runs.
[[nodiscard]] std::string canonicalScenarioTestcase(
    solver::SolverClient& solver, std::span<ExecutionState* const> scenario);

// Merge-aware test-case extraction: a dscenario whose members carry
// merge guards stands for one unmerged dscenario per feasible guard
// assignment. Enumerates every assignment, reconstructs the exact
// unmerged constraint system (vm::MergeExpansion) and renders each
// variant with canonicalScenarioTestcase's format, so the union over a
// merged run equals the unmerged run's testcase set verbatim. With no
// guards this is exactly {canonicalScenarioTestcase(...)}.
[[nodiscard]] std::vector<std::string> expandedScenarioTestcases(
    expr::Context& ctx, solver::SolverClient& solver,
    std::span<ExecutionState* const> scenario);

// --- Building blocks shared with the fleet runner (sde/fleet.hpp) ----------
// The thread runner above and the multi-process fleet produce their
// digests through the same extraction and merge code, which is what
// makes "fleet digest == partitioned digest" a structural property
// rather than a re-implementation kept in sync by tests alone.

// The deterministic per-job extraction pass: run outcome, sizes, and —
// after the ownership rule — the job's share of the dscenario universe.
[[nodiscard]] JobResult collectJobResult(Engine& engine,
                                         const PartitionJob& job,
                                         const ParallelConfig& config,
                                         RunOutcome outcome);

// Per-job trace file location inside a trace directory
// ("trace_job<id>.trc", stream id = job id).
[[nodiscard]] std::string jobTracePath(const std::string& traceDir,
                                       std::uint32_t jobId);

// The deterministic merge barrier: folds result.jobs (already filled,
// job-id order) into the totals, fingerprint/testcase unions and the
// run outcome, then — when config.traceDir is set — stitches the
// existing per-job trace files into <traceDir>/merged.trc in job-id
// order. Does not touch result.wallSeconds.
void finalizeParallelResult(ParallelResult& result, const PartitionPlan& plan,
                            const ParallelConfig& config);

}  // namespace sde
