// Concrete test-case generation — the payoff of symbolic execution
// (paper §II-A, Figure 1): solving a path's constraints yields input
// values that replay exactly that path. For distributed runs a test case
// spans a dscenario: one consistent assignment for every symbolic input
// of every node (failure decisions included, since those are ordinary
// symbolic variables).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sde/dstate.hpp"
#include "solver/client.hpp"

namespace sde {

struct TestCaseInput {
  std::string name;      // e.g. "n7.netdrop.0"
  unsigned width = 1;    // bits
  std::uint64_t value = 0;
};

struct TestCase {
  StateId state = 0;
  NodeId node = 0;
  std::vector<TestCaseInput> inputs;
  // Non-empty when this path ended in an assertion failure — the test
  // case then reproduces a bug.
  std::string failureMessage;
};

// Test case for a single state's path. nullopt only if the constraints
// are unsatisfiable (which the engine's branch feasibility checks rule
// out for states it created) or the solver budget was exhausted.
[[nodiscard]] std::optional<TestCase> generateTestCase(
    solver::SolverClient& solver, const ExecutionState& state);

// Test cases for a whole dscenario: the member states' constraints are
// solved *jointly*, because symbolic data flows across the network (a
// sender's symbolic input can appear in a receiver's constraints).
// Returns one test case per member state under a single global model;
// nullopt if the combined system is unsatisfiable.
[[nodiscard]] std::optional<std::vector<TestCase>> generateScenarioTestCases(
    solver::SolverClient& solver, std::span<ExecutionState* const> scenario);

// Like generateScenarioTestCases, but solving a caller-provided
// constraint system instead of the members' own — the merge-expansion
// path, where the items are the reconstructed unmerged lists of one
// guard assignment.
[[nodiscard]] std::optional<std::vector<TestCase>>
generateScenarioTestCasesOver(solver::SolverClient& solver,
                              std::span<ExecutionState* const> scenario,
                              const solver::ConstraintSet& combined);

// Renders a test case as a stable, human-readable block (examples and
// golden tests).
[[nodiscard]] std::string formatTestCase(const TestCase& testCase);

}  // namespace sde
