#include "sde/dstate.hpp"

#include <algorithm>

#include "support/hash.hpp"

namespace sde {

bool StateGroup::remove(const ExecutionState* state) {
  auto& slot = byNode_[state->node()];
  const auto it = std::find(slot.begin(), slot.end(), state);
  if (it == slot.end()) return false;
  slot.erase(it);
  return true;
}

std::size_t StateGroup::size() const {
  std::size_t n = 0;
  for (const auto& slot : byNode_) n += slot.size();
  return n;
}

bool StateGroup::contains(const ExecutionState* state) const {
  const auto& slot = byNode_[state->node()];
  return std::find(slot.begin(), slot.end(), state) != slot.end();
}

bool StateGroup::coversAllNodes() const {
  return std::all_of(byNode_.begin(), byNode_.end(),
                     [](const auto& slot) { return !slot.empty(); });
}

std::vector<ExecutionState*> StateGroup::all() const {
  std::vector<ExecutionState*> result;
  result.reserve(size());
  for (const auto& slot : byNode_)
    result.insert(result.end(), slot.begin(), slot.end());
  return result;
}

std::uint64_t scenarioFingerprint(std::span<ExecutionState* const> states) {
  // XOR of node-keyed mixes: order independent, and node ids keep
  // distinct nodes from cancelling each other out.
  std::uint64_t h = 0;
  for (const ExecutionState* state : states)
    h ^= support::mix64(support::Hasher()
                            .u64(state->node())
                            .u64(state->configHash())
                            .digest());
  return h;
}

bool hasOrWillReceive(const ExecutionState& receiver, std::uint64_t packetId) {
  for (const vm::CommRecord& rec : receiver.commLog)
    if (!rec.sent && rec.packetId == packetId) return true;
  for (const vm::PendingEvent& event : receiver.pendingEvents)
    if (event.kind == vm::EventKind::kRecv && event.b == packetId)
      return true;
  return false;
}

bool inDirectConflict(const ExecutionState& s, const ExecutionState& t) {
  // Sends from s to node(t) must be (eventually) received by t…
  for (const vm::CommRecord& rec : s.commLog)
    if (rec.sent && rec.peer == t.node() && !hasOrWillReceive(t, rec.packetId))
      return true;
  // …and receptions by s from node(t) must have been sent by t.
  for (const vm::CommRecord& rec : s.commLog) {
    if (rec.sent || rec.peer != t.node()) continue;
    const bool sentByT =
        std::any_of(t.commLog.begin(), t.commLog.end(),
                    [&](const vm::CommRecord& other) {
                      return other.sent && other.packetId == rec.packetId;
                    });
    if (!sentByT) return true;
  }
  return false;
}

std::size_t countConflicts(const StateGroup& group) {
  const std::vector<ExecutionState*> members = group.all();
  std::size_t conflicts = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i]->isTerminal()) continue;
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (members[j]->isTerminal()) continue;
      if (inDirectConflict(*members[i], *members[j]) ||
          inDirectConflict(*members[j], *members[i]))
        ++conflicts;
    }
  }
  return conflicts;
}

}  // namespace sde
