#include "sde/partition.hpp"

#include <algorithm>
#include <unordered_map>

namespace sde {

PartitionReport partitionStates(const StateMapper& mapper) {
  const auto groups = mapper.groupChoices();

  // Union-find over state pointers, joined through group membership.
  std::unordered_map<const ExecutionState*, std::size_t> indexOf;
  std::vector<std::size_t> parent;
  const auto indexFor = [&](const ExecutionState* state) {
    const auto [it, inserted] = indexOf.emplace(state, parent.size());
    if (inserted) parent.push_back(it->second);
    return it->second;
  };
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (const auto& group : groups) {
    std::size_t anchor = SIZE_MAX;
    for (const auto& choices : group) {
      for (const ExecutionState* state : choices) {
        const std::size_t idx = indexFor(state);
        if (anchor == SIZE_MAX) {
          anchor = idx;
          continue;
        }
        const std::size_t rootA = find(anchor);
        const std::size_t rootB = find(idx);
        if (rootA != rootB) parent[std::max(rootA, rootB)] = std::min(rootA, rootB);
      }
    }
  }

  std::unordered_map<std::size_t, std::size_t> componentSize;
  for (std::size_t i = 0; i < parent.size(); ++i) ++componentSize[find(i)];

  PartitionReport report;
  report.states = parent.size();
  report.components = componentSize.size();
  report.sizes.reserve(componentSize.size());
  for (const auto& [root, size] : componentSize) report.sizes.push_back(size);
  std::sort(report.sizes.rbegin(), report.sizes.rend());
  report.largestComponent = report.sizes.empty() ? 0 : report.sizes.front();
  return report;
}

}  // namespace sde
