#include "obs/trace_merge.hpp"

#include <algorithm>

namespace sde::obs {

TraceFile mergeTraces(std::span<const TraceFile> inputs) {
  TraceFile merged;
  merged.header.merged = true;
  if (inputs.empty()) return merged;

  merged.header.numNodes = inputs.front().header.numNodes;
  merged.header.mapper = inputs.front().header.mapper;
  merged.header.scenario = inputs.front().header.scenario;
  for (const TraceFile& input : inputs) {
    if (input.header.numNodes != merged.header.numNodes)
      throw TraceError("refusing to merge traces of different networks (" +
                       std::to_string(input.header.numNodes) + " vs " +
                       std::to_string(merged.header.numNodes) + " nodes)");
  }

  struct Keyed {
    TraceEvent event;
    std::size_t inputIndex = 0;
  };
  std::vector<Keyed> keyed;
  for (std::size_t i = 0; i < inputs.size(); ++i)
    for (const TraceEvent& event : inputs[i].events)
      keyed.push_back({event, i});
  // The stitchSamples key, verbatim: virtual time, then the per-stream
  // progress counter (seq here, events there), then input index.
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.event.time != b.event.time)
                       return a.event.time < b.event.time;
                     if (a.event.seq != b.event.seq)
                       return a.event.seq < b.event.seq;
                     return a.inputIndex < b.inputIndex;
                   });
  merged.events.reserve(keyed.size());
  for (const Keyed& k : keyed) merged.events.push_back(k.event);
  return merged;
}

void mergeTraceFiles(std::span<const std::string> inputPaths,
                     const std::string& outputPath) {
  std::vector<TraceFile> inputs;
  inputs.reserve(inputPaths.size());
  for (const std::string& path : inputPaths)
    inputs.push_back(readTraceFile(path));
  writeTraceFile(outputPath, mergeTraces(inputs));
}

}  // namespace sde::obs
