#include "obs/trace_event.hpp"

namespace sde::obs {

std::string_view traceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kStateCreate:
      return "state_create";
    case TraceEventKind::kStateFork:
      return "state_fork";
    case TraceEventKind::kStateTerminate:
      return "state_terminate";
    case TraceEventKind::kPacketTransmit:
      return "packet_transmit";
    case TraceEventKind::kPacketDeliver:
      return "packet_deliver";
    case TraceEventKind::kMappingInvoked:
      return "mapping_invoked";
    case TraceEventKind::kGroupFork:
      return "group_fork";
    case TraceEventKind::kCheckpointSuspend:
      return "checkpoint_suspend";
    case TraceEventKind::kCheckpointRestore:
      return "checkpoint_restore";
    case TraceEventKind::kSolverQuery:
      return "solver_query";
  }
  return "?";
}

std::string_view forkCauseName(ForkCause cause) {
  switch (cause) {
    case ForkCause::kBranch:
      return "branch";
    case ForkCause::kFailure:
      return "failure";
    case ForkCause::kMapping:
      return "mapping";
  }
  return "?";
}

std::string_view solverQueryDetailName(SolverQueryDetail detail) {
  switch (detail) {
    case SolverQueryDetail::kConstant:
      return "constant";
    case SolverQueryDetail::kCacheHit:
      return "cache_hit";
    case SolverQueryDetail::kModelReuse:
      return "model_reuse";
    case SolverQueryDetail::kInterval:
      return "interval_refuted";
    case SolverQueryDetail::kEnumerated:
      return "enumerated";
  }
  return "?";
}

bool validTraceEventKind(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(TraceEventKind::kStateCreate) &&
         kind < kNumTraceEventKinds;
}

}  // namespace sde::obs
