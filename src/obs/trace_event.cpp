#include "obs/trace_event.hpp"

namespace sde::obs {

std::string_view traceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kStateCreate:
      return "state_create";
    case TraceEventKind::kStateFork:
      return "state_fork";
    case TraceEventKind::kStateTerminate:
      return "state_terminate";
    case TraceEventKind::kPacketTransmit:
      return "packet_transmit";
    case TraceEventKind::kPacketDeliver:
      return "packet_deliver";
    case TraceEventKind::kMappingInvoked:
      return "mapping_invoked";
    case TraceEventKind::kGroupFork:
      return "group_fork";
    case TraceEventKind::kCheckpointSuspend:
      return "checkpoint_suspend";
    case TraceEventKind::kCheckpointRestore:
      return "checkpoint_restore";
    case TraceEventKind::kSolverQuery:
      return "solver_query";
    case TraceEventKind::kStateMerge:
      return "state_merge";
    case TraceEventKind::kLoopSummary:
      return "loop_summary";
  }
  return "?";
}

std::string_view forkCauseName(ForkCause cause) {
  switch (cause) {
    case ForkCause::kBranch:
      return "branch";
    case ForkCause::kFailure:
      return "failure";
    case ForkCause::kMapping:
      return "mapping";
  }
  return "?";
}

std::string_view solverLayerDetailName(SolverLayerDetail detail) {
  switch (detail) {
    case SolverLayerDetail::kConstant:
      return "constant";
    case SolverLayerDetail::kCacheHit:
      return "cache_hit";
    case SolverLayerDetail::kModelReuse:
      return "model_reuse";
    case SolverLayerDetail::kInterval:
      return "interval_refuted";
    case SolverLayerDetail::kEnumerated:
      return "enumerated";
    case SolverLayerDetail::kSubsumption:
      return "subsumption";
    case SolverLayerDetail::kSharedCache:
      return "shared_cache";
  }
  return "?";
}

bool validTraceEventKind(std::uint8_t kind) {
  return kind >= static_cast<std::uint8_t>(TraceEventKind::kStateCreate) &&
         kind < kNumTraceEventKinds;
}

}  // namespace sde::obs
