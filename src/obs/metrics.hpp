// Live metrics plane, part 1: the in-process registry.
//
// StatsRegistry (support/stats.hpp) is a post-run artifact — a plain
// map the engine bumps under no concurrency and benches print at exit.
// The service needs numbers *while* exploration runs, from hot paths
// (fork, deliver, per-solver-layer latency) where a map lookup per bump
// would show up in the Fig. 10 wall clock. MetricsRegistry splits the
// cost: registration (rare, mutex + name lookup) hands out a dense
// integer id; the bump itself is one relaxed atomic RMW on stable
// storage. Three metric kinds:
//
//   * counter   — monotonic running total (engine.forks_total),
//   * gauge     — last-write or high-water value (engine.peak_states),
//   * histogram — fixed log2 buckets + count + sum, for latency
//                 distributions (solver.layer.interval.latency_ns).
//
// Snapshots are plain values (MetricsSnapshot) with merge semantics
// that reuse the StatsRegistry max-vs-sum rule via support::foldCounter:
// a name with a "peak"/"peak_*" component folds with max, everything
// else with +; histogram counts, sums and buckets always add. The
// snapshot has a compact binary codec (magic-tagged, versioned,
// truncation-checked — snapshot dialect) so it can cross process
// boundaries through the shm plane (obs/metrics_shm.hpp), the serve
// wire protocol, and durable metrics.sde sidecars, plus a Prometheus
// text exposition for operators.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/stats.hpp"

namespace sde::obs {

enum class MetricKind : std::uint8_t {
  kCounter = 0,
  kGauge = 1,
  kHistogram = 2,
};

// Log2 bucketing: bucket 0 holds the value 0, bucket i (i >= 1) holds
// values in [2^(i-1), 2^i - 1]. A u64 value always lands in a bucket —
// bit_width(v) <= 64 — so there are 65 buckets and no clamping.
inline constexpr std::size_t kHistogramBuckets = 65;

[[nodiscard]] constexpr std::size_t histogramBucketOf(std::uint64_t value) {
  std::size_t width = 0;
  while (value != 0) {
    value >>= 1;
    ++width;
  }
  return width;
}

// Inclusive upper bound of a bucket (the Prometheus `le` edge).
// Bucket 64's bound is UINT64_MAX.
[[nodiscard]] constexpr std::uint64_t histogramBucketBound(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

// One metric in a snapshot: a plain value, no atomics.
struct MetricPoint {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t value = 0;  // counter / gauge
  // Histogram only.
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

// A consistent-enough copy of a registry (per-cell atomicity; cross-cell
// skew is fine for telemetry), keyed by name so merges are positional-
// independent. This is the unit that crosses processes.
class MetricsSnapshot {
 public:
  std::map<std::string, MetricPoint, std::less<>> points;

  // Folds `other` in. Scalars (counters and gauges) follow the
  // StatsRegistry rule via support::foldCounter — max for peak-named
  // metrics, sum otherwise. Histograms add count/sum/buckets. A kind
  // mismatch keeps the existing entry's kind and folds scalars only.
  void merge(const MetricsSnapshot& other);

  // Adopts only entries whose names are absent here. Used where an
  // exact source of truth (post-run StatsRegistry) must win over the
  // live plane for overlapping names.
  void adoptMissing(const MetricsSnapshot& other);

  [[nodiscard]] std::uint64_t value(std::string_view name) const;
  [[nodiscard]] const MetricPoint* find(std::string_view name) const;
  [[nodiscard]] bool empty() const { return points.empty(); }
};

// Estimate of the q-quantile (q in [0,1]) of a histogram: the inclusive
// upper bound of the first bucket whose cumulative count reaches
// q * count. Returns 0 for an empty histogram.
[[nodiscard]] std::uint64_t histogramQuantile(const MetricPoint& point,
                                              double q);

// Binary codec (snapshot dialect). Throws snapshot::SnapshotError on a
// truncated, foreign or version-mismatched blob.
inline constexpr std::string_view kMetricsMagic = "SDEMETRX";
inline constexpr std::uint32_t kMetricsVersion = 1;

[[nodiscard]] std::string encodeMetricsSnapshot(const MetricsSnapshot& snap);
[[nodiscard]] MetricsSnapshot decodeMetricsSnapshot(std::string_view bytes);

// Lifts a post-run StatsRegistry into the metrics value space: peak
// counters become gauges, everything else counters. Values are copied
// verbatim, so re-encoding a completed job's merged stats through this
// lens preserves every total bit-for-bit.
[[nodiscard]] MetricsSnapshot snapshotFromStats(
    const support::StatsRegistry& stats);

// Prometheus text exposition. Names are sanitised to [a-zA-Z0-9_:] and
// prefixed "sde_"; a "serve.tenant.<t>.<rest>" name becomes
// sde_serve_<rest>{tenant="<t>"} so per-tenant series share one metric
// family. Histograms render cumulative _bucket{le=...} plus _sum/_count.
[[nodiscard]] std::string renderPrometheus(const MetricsSnapshot& snap);

// The registry. Registration is mutex-guarded and idempotent (same name
// → same id); bumps are lock-free relaxed atomics on storage that is
// never moved (chunked blocks, block pointers published with release
// stores), so a hot path can cache an id across the whole run.
class MetricsRegistry {
 public:
  using Id = std::uint32_t;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  [[nodiscard]] Id counter(std::string_view name);
  [[nodiscard]] Id gauge(std::string_view name);
  [[nodiscard]] Id histogram(std::string_view name);

  // Counter bump. Relaxed fetch_add, no lock.
  void add(Id id, std::uint64_t delta = 1);
  // Gauge last-write / high-water.
  void set(Id id, std::uint64_t value);
  void setMax(Id id, std::uint64_t value);
  // Histogram observation: count, sum and the log2 bucket.
  void observe(Id id, std::uint64_t value);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  // Zeroes every value, keeping registrations (ids stay valid). A
  // forked fleet worker calls this so counters inherited from the
  // coordinator's address space are not double-counted when slots are
  // aggregated.
  void reset();

  // Process-wide registry. fork() gives each worker an independent
  // copy-on-write instance — exactly the per-process granularity the
  // shm plane's per-slot publication wants.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  struct Cell {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  static constexpr std::size_t kBlockShift = 6;
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;
  static constexpr std::size_t kMaxBlocks = 256;  // 16384 metrics, plenty

  struct Block {
    std::array<Cell, kBlockSize> cells;
  };

  [[nodiscard]] Id registerMetric(std::string_view name, MetricKind kind);
  [[nodiscard]] Cell& cell(Id id) const;

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Id> byName_;
  std::array<std::atomic<Block*>, kMaxBlocks> blocks_{};
  std::atomic<std::uint32_t> size_{0};
};

}  // namespace sde::obs
