// Deterministic multi-stream trace merge.
//
// Mirrors trace::stitchSamples exactly: events are ordered by virtual
// time first, equal times by the per-stream sequence number, full ties
// by input-stream index — and the sort is stable, so one stream's
// events never reorder. The key never looks at wall-clock (there is
// none in a trace) or thread interleaving, so merging the per-job
// traces of a partitioned run produces byte-identical output for any
// worker count.
//
// The merged header keeps numNodes/mapper/scenario from the first input
// (inputs must agree on numNodes) and sets `merged`; per-stream
// identity lives on in each event's `stream` field. Profile sections
// are deliberately dropped: they carry wall-clock totals, which would
// break byte-identity across runs.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"

namespace sde::obs {

[[nodiscard]] TraceFile mergeTraces(std::span<const TraceFile> inputs);

// Reads `inputPaths` in order (the order defines the tie-break stream
// index) and writes the merged container to `outputPath`.
void mergeTraceFiles(std::span<const std::string> inputPaths,
                     const std::string& outputPath);

}  // namespace sde::obs
