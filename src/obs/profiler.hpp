// Scoped phase profiler: where does the wall-clock go — interpretation,
// mapping, solving, checkpointing, or scheduling?
//
// Accounting is *self-time*: entering a nested phase pauses the
// enclosing one, so the per-phase totals partition the instrumented
// wall-time instead of double-counting it (solver time spent inside an
// interpreter step is charged to kSolver, not to both). The profiler is
// opt-in and pointer-guarded exactly like the trace sink: a null
// profiler costs one compare per scope, no clock read.
//
// The profiler is NOT thread-safe by design — each Engine is
// single-threaded and owns at most one; a partitioned run uses one
// profiler per job and merges the snapshots.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/assert.hpp"
#include "support/stats.hpp"

namespace sde::obs {

class MetricsRegistry;

enum class Phase : std::uint8_t {
  kInterp = 0,      // event dispatch / bytecode interpretation
  kMapping,         // StateMapper::onTransmit / onLocalBranch
  kSolver,          // solver facade entry points
  kCheckpoint,      // Engine::checkpoint / restore
  kScheduler,       // scheduler pop + re-registration
  kNumPhases,
};
inline constexpr std::size_t kNumPhases =
    static_cast<std::size_t>(Phase::kNumPhases);

[[nodiscard]] std::string_view phaseName(Phase phase);

// Deterministic-shape snapshot of a profiler (or of a trace file's
// profile section): per-phase self-time and enter counts.
struct PhaseProfile {
  struct Entry {
    std::uint64_t nanos = 0;
    std::uint64_t calls = 0;
  };
  std::array<Entry, kNumPhases> phases{};

  // Per-opcode execution histogram from the interpreter: "op.<name>"
  // entries carry execution counts (and self-time when the run was made
  // under SDE_OPCODE_TIME); "pair.<a>+<b>" entries carry adjacent-pair
  // counts — the data the superinstruction selection is audited
  // against. They ride the trace file's name-keyed profile section
  // unchanged; readers that predate them drop unknown names.
  struct OpEntry {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t nanos = 0;
  };
  std::vector<OpEntry> opcodes;

  // Phase self-time only: opcode nanos are inclusive (nested solver and
  // mapping work included) and would double-count.
  [[nodiscard]] std::uint64_t totalNanos() const;
  [[nodiscard]] bool empty() const;
  // Folds per-phase totals into a StatsRegistry as
  // "profile.<phase>.micros" / "profile.<phase>.calls" — the bench
  // report surface. Micros, not nanos: these counters are summed by
  // StatsRegistry::mergeFrom across a fleet and stay readable.
  void toStats(support::StatsRegistry& stats) const;
  // The same totals as counters in the live metrics registry
  // ("profile.<phase>.micros" / "profile.<phase>.calls") — the bridge
  // from per-engine wall-clock attribution to the fleet-wide metrics
  // plane. Adds (the registry accumulates across jobs).
  void toMetrics(MetricsRegistry& metrics) const;
  // Rendered table rows: phase, self time, calls, share of total.
  [[nodiscard]] std::string report() const;

  PhaseProfile& mergeFrom(const PhaseProfile& other);
};

class PhaseProfiler {
 public:
  void enter(Phase phase) {
    const auto now = Clock::now();
    if (!stack_.empty()) accumulate(stack_.back(), now);
    stack_.push_back(phase);
    ++profile_.phases[index(phase)].calls;
    sliceStart_ = now;
  }
  void exit() {
    SDE_ASSERT(!stack_.empty(), "phase exit without matching enter");
    accumulate(stack_.back(), Clock::now());
    stack_.pop_back();
    sliceStart_ = Clock::now();
  }

  [[nodiscard]] const PhaseProfile& profile() const {
    SDE_ASSERT(stack_.empty(), "profile read inside an open phase scope");
    return profile_;
  }
  // Attaches the interpreter's opcode histogram to the snapshot
  // (replacing any previous attachment — the interpreter's counters are
  // cumulative, so the engine re-attaches after every run).
  void setOpcodes(std::vector<PhaseProfile::OpEntry> opcodes) {
    profile_.opcodes = std::move(opcodes);
  }
  void clear() {
    SDE_ASSERT(stack_.empty(), "clear inside an open phase scope");
    profile_ = PhaseProfile{};
  }

 private:
  using Clock = std::chrono::steady_clock;
  static std::size_t index(Phase phase) {
    return static_cast<std::size_t>(phase);
  }
  void accumulate(Phase phase, Clock::time_point now) {
    profile_.phases[index(phase)].nanos += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - sliceStart_)
            .count());
  }

  PhaseProfile profile_;
  std::vector<Phase> stack_;
  Clock::time_point sliceStart_{};
};

// RAII scope; null profiler => a single pointer compare, nothing else.
class ScopedPhase {
 public:
  ScopedPhase(PhaseProfiler* profiler, Phase phase) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->enter(phase);
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() {
    if (profiler_ != nullptr) profiler_->exit();
  }

 private:
  PhaseProfiler* profiler_;
};

}  // namespace sde::obs
