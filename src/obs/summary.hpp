// Trace analysis: structural validation and the aggregate summary the
// `sde_trace` CLI prints (and tests compare against engine counters).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/trace_io.hpp"

namespace sde::obs {

// One transmission's fork bill: how many states (targets + bystanders)
// the mapping algorithm forked to resolve it. The "top-K forking
// transmissions" ranking — the paper's Table I blame, per packet.
struct TransmissionForks {
  std::uint64_t packetId = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t time = 0;
  std::uint64_t targetsForked = 0;
  std::uint64_t bystandersForked = 0;
  [[nodiscard]] std::uint64_t total() const {
    return targetsForked + bystandersForked;
  }
};

struct TraceSummary {
  // Indexed by the TraceEventKind numeric value.
  std::array<std::uint64_t, kNumTraceEventKinds> countsByKind{};

  // Fork attribution by cause; matches the engine's StatsRegistry:
  // forksBranch + forksFailure == engine.forks_local,
  // forksMapping == engine.forks_mapping, total == engine.forks_total.
  std::uint64_t forksBranch = 0;
  std::uint64_t forksFailure = 0;
  std::uint64_t forksMapping = 0;
  [[nodiscard]] std::uint64_t forksLocal() const {
    return forksBranch + forksFailure;
  }
  [[nodiscard]] std::uint64_t forksTotal() const {
    return forksLocal() + forksMapping;
  }

  std::map<std::uint32_t, std::uint64_t> forksByNode;
  std::map<std::uint32_t, std::uint64_t> eventsByStream;

  // Mapping-layer totals (sums over kMappingInvoked / kGroupFork).
  std::uint64_t targetsForked = 0;
  std::uint64_t bystandersForked = 0;
  std::uint64_t scenarioCopies = 0;  // COB local-branch materialisation
  std::uint64_t groupForks = 0;

  // State-merging totals (sums over kStateMerge): every merge reclaims
  // states an earlier fork created — the fork-attribution credit side
  // of the ledger. mergeRemovedStates counts the absorbed states plus
  // any mapper-repair casualties each merge reaped.
  std::uint64_t mergeRemovedStates = 0;
  std::map<std::uint32_t, std::uint64_t> mergesByNode;

  // Solver query outcomes by answering pipeline layer.
  std::uint64_t solverQueries = 0;
  std::uint64_t solverCacheHits = 0;
  std::uint64_t solverModelReuse = 0;
  std::uint64_t solverIntervalRefuted = 0;
  std::uint64_t solverEnumerated = 0;
  std::uint64_t solverConstant = 0;
  std::uint64_t solverSubsumption = 0;
  std::uint64_t solverSharedCache = 0;

  std::uint64_t firstTime = 0;
  std::uint64_t lastTime = 0;

  // All fork-charging transmissions, heaviest first (ties: earlier
  // packet id first). Callers truncate to their K.
  std::vector<TransmissionForks> forkingTransmissions;

  [[nodiscard]] std::uint64_t count(TraceEventKind kind) const {
    return countsByKind[static_cast<std::size_t>(kind)];
  }
};

// Incremental form of summarizeTrace: feed events as they arrive (a
// live tail of a growing trace — see obs/tail.hpp), snapshot the
// aggregate at any point with finish(). finish() is pure — it copies,
// prunes and ranks the transmission table — so a live progress stream
// can snapshot repeatedly while events keep flowing in. Feeding the
// whole file then calling finish() is exactly summarizeTrace.
class SummaryBuilder {
 public:
  void add(const TraceEvent& event);
  [[nodiscard]] TraceSummary finish() const;
  [[nodiscard]] std::uint64_t eventsSeen() const { return eventsSeen_; }

 private:
  TraceSummary summary_;
  // Keyed by packet id so a transmission's fork bill aggregates even if
  // a mapper reports it in several invocations (COW conflict rounds).
  std::unordered_map<std::uint64_t, std::size_t> txIndex_;
  std::uint64_t eventsSeen_ = 0;
};

[[nodiscard]] TraceSummary summarizeTrace(const TraceFile& trace);

// Structural validation. Checks framing-independent invariants (the
// reader already rejected torn framing): per-stream sequence numbers
// strictly consecutive, virtual time non-decreasing in file order,
// node/peer ids inside the network, causal lineage (a fork's parent
// must exist before it — skipped for streams that resume mid-run, i.e.
// whose first sequence number is nonzero), and the fork-attribution
// ledger (mapping fork events == targets + bystanders + scenario
// copies claimed by the mapping layer). Returns human-readable
// violations; empty means the trace is well-formed.
[[nodiscard]] std::vector<std::string> validateTrace(const TraceFile& trace);

}  // namespace sde::obs
