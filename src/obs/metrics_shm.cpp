#include "obs/metrics_shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "snapshot/error.hpp"

namespace sde::obs {

namespace {

constexpr char kMagic[8] = {'S', 'D', 'E', 'M', 'X', 'P', 'L', 'N'};
// Bumped on any header or slot layout change; attach() rejects every
// other version (no migration, same policy as the snapshot formats).
constexpr std::uint32_t kLayoutVersion = 1;
// Two-phase init marker, published (release) only after the geometry is
// fully written — same contract as the shm query cache.
constexpr std::uint64_t kReadyMarker = 0x4d455452u;  // "METR"

// A reader that keeps colliding with the writer gives up after this
// many attempts; the slot simply contributes nothing to that poll.
constexpr int kReadRetries = 64;

}  // namespace

// Fixed prelude of the segment. Everything but `ready` is written by
// the creator before the ready marker and read-only afterwards.
struct ShmMetricsPlane::Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t slots;
  std::uint64_t slotStride;  // bytes per slot, fixed fields included
  std::atomic<std::uint64_t> ready;
};

// One publisher slot: a seqlock word, the payload length, then the
// payload as whole u64 words so the concurrent torn copy is made of
// relaxed atomic loads, not a racing memcpy.
struct ShmMetricsPlane::Slot {
  std::atomic<std::uint64_t> seq;
  std::atomic<std::uint64_t> bytes;

  [[nodiscard]] std::atomic<std::uint64_t>* words() {
    return reinterpret_cast<std::atomic<std::uint64_t>*>(this + 1);
  }
  [[nodiscard]] const std::atomic<std::uint64_t>* words() const {
    return reinterpret_cast<const std::atomic<std::uint64_t>*>(this + 1);
  }
};

static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t),
              "slot word layout assumes lock-free u64 atomics");

ShmMetricsPlane::Header& ShmMetricsPlane::header() const {
  return *static_cast<Header*>(base_);
}

std::uint64_t ShmMetricsPlane::slotStride() const {
  return header().slotStride;
}

ShmMetricsPlane::Slot* ShmMetricsPlane::slotAt(std::uint32_t index) const {
  char* table = static_cast<char*>(base_) + sizeof(Header);
  return reinterpret_cast<Slot*>(table + std::uint64_t{index} * slotStride());
}

ShmMetricsPlane::ShmMetricsPlane(std::string name, int fd, void* base,
                                 std::size_t bytes)
    : name_(std::move(name)), fd_(fd), base_(base), mappedBytes_(bytes) {}

ShmMetricsPlane::~ShmMetricsPlane() {
  if (base_ != nullptr) ::munmap(base_, mappedBytes_);
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<ShmMetricsPlane> ShmMetricsPlane::create(
    const std::string& name, const ShmMetricsConfig& config) {
  if (config.slots == 0 || config.slotBytes < 64)
    throw ShmMetricsError("shm metrics: degenerate geometry");
  // Payload is stored in whole words; round the capacity down to one.
  const std::uint64_t payloadWords = config.slotBytes / 8;
  const std::uint64_t stride = sizeof(Slot) + payloadWords * 8;
  const std::size_t total = sizeof(Header) + config.slots * stride;

  int fd = ::shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0 && errno == EEXIST) {
    // A previous run of the same job died without unlinking; its
    // geometry may differ, so replace rather than adopt.
    ::shm_unlink(name.c_str());
    fd = ::shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  }
  if (fd < 0)
    throw ShmMetricsError("shm_open(" + name +
                          ") failed: " + std::strerror(errno));
  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw ShmMetricsError("ftruncate(" + name +
                          ") failed: " + std::strerror(err));
  }
  void* base =
      ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw ShmMetricsError("mmap(" + name + ") failed: " + std::strerror(err));
  }

  // ftruncate zero-fills: every slot starts seq=0 (even) bytes=0
  // ("never published"), which read() already treats as empty.
  auto plane = std::unique_ptr<ShmMetricsPlane>(
      new ShmMetricsPlane(name, fd, base, total));
  Header& h = plane->header();
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kLayoutVersion;
  h.slots = config.slots;
  h.slotStride = stride;
  h.ready.store(kReadyMarker, std::memory_order_release);
  return plane;
}

std::unique_ptr<ShmMetricsPlane> ShmMetricsPlane::attach(
    const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  if (fd < 0)
    throw ShmMetricsError("shm_open(" + name +
                          ") failed: " + std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw ShmMetricsError("fstat(" + name + ") failed");
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  if (bytes < sizeof(Header)) {
    ::close(fd);
    throw ShmMetricsError("shm metrics segment " + name +
                          " is truncated (smaller than its header)");
  }
  void* base =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    ::close(fd);
    throw ShmMetricsError("mmap(" + name + ") failed");
  }
  auto plane =
      std::unique_ptr<ShmMetricsPlane>(new ShmMetricsPlane(name, fd, base, bytes));

  const Header& h = plane->header();
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0)
    throw ShmMetricsError("segment " + name +
                          " is not an SDE shm metrics plane");
  if (h.version != kLayoutVersion)
    throw ShmMetricsError("shm metrics layout version " +
                          std::to_string(h.version) + " (this build expects " +
                          std::to_string(kLayoutVersion) + ")");
  if (h.ready.load(std::memory_order_acquire) != kReadyMarker)
    throw ShmMetricsError("segment " + name +
                          " was never fully initialized (creator crashed?)");
  if (h.slots == 0 || h.slotStride < sizeof(Slot) + 8)
    throw ShmMetricsError("segment " + name + " has degenerate geometry");
  // The geometry must fit the mapping exactly as created: a segment
  // truncated after creation would otherwise SIGBUS on first read.
  const std::uint64_t need =
      sizeof(Header) + std::uint64_t{h.slots} * h.slotStride;
  if (need > bytes)
    throw ShmMetricsError(
        "segment " + name + " is torn: header advertises " +
        std::to_string(need) + " bytes, mapping holds " +
        std::to_string(bytes));
  return plane;
}

void ShmMetricsPlane::unlinkSegment(const std::string& name) {
  ::shm_unlink(name.c_str());
}

bool ShmMetricsPlane::segmentExists(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDONLY, 0600);
  if (fd < 0) return false;
  ::close(fd);
  return true;
}

std::uint32_t ShmMetricsPlane::slots() const { return header().slots; }

std::uint32_t ShmMetricsPlane::slotCapacityBytes() const {
  return static_cast<std::uint32_t>(slotStride() - sizeof(Slot));
}

bool ShmMetricsPlane::publish(std::uint32_t slot, const MetricsSnapshot& snap) {
  if (slot >= slots()) return false;
  const std::string bytes = encodeMetricsSnapshot(snap);
  if (bytes.size() > slotCapacityBytes()) return false;
  Slot* s = slotAt(slot);

  const std::uint64_t seq = s->seq.load(std::memory_order_relaxed);
  s->seq.store(seq + 1, std::memory_order_relaxed);  // odd: write begins
  std::atomic_thread_fence(std::memory_order_release);
  s->bytes.store(bytes.size(), std::memory_order_relaxed);
  std::atomic<std::uint64_t>* words = s->words();
  const std::size_t wholeWords = bytes.size() / 8;
  for (std::size_t i = 0; i < wholeWords; ++i) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes.data() + i * 8, 8);
    words[i].store(w, std::memory_order_relaxed);
  }
  if (bytes.size() % 8 != 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, bytes.data() + wholeWords * 8, bytes.size() % 8);
    words[wholeWords].store(w, std::memory_order_relaxed);
  }
  s->seq.store(seq + 2, std::memory_order_release);  // even: snapshot visible
  return true;
}

std::optional<MetricsSnapshot> ShmMetricsPlane::read(std::uint32_t slot) const {
  if (slot >= slots()) return std::nullopt;
  const Slot* s = slotAt(slot);
  const std::uint32_t capacity = slotCapacityBytes();
  std::string bytes;
  for (int attempt = 0; attempt < kReadRetries; ++attempt) {
    const std::uint64_t seq1 = s->seq.load(std::memory_order_acquire);
    if (seq1 == 0) return std::nullopt;  // never published
    if (seq1 % 2 != 0) continue;         // write in progress
    const std::uint64_t size = s->bytes.load(std::memory_order_relaxed);
    if (size == 0 || size > capacity) continue;  // racing the first write
    bytes.resize(size);
    const std::atomic<std::uint64_t>* words = s->words();
    const std::size_t wholeWords = size / 8;
    for (std::size_t i = 0; i < wholeWords; ++i) {
      const std::uint64_t w = words[i].load(std::memory_order_relaxed);
      std::memcpy(bytes.data() + i * 8, &w, 8);
    }
    if (size % 8 != 0) {
      const std::uint64_t w = words[wholeWords].load(std::memory_order_relaxed);
      std::memcpy(bytes.data() + wholeWords * 8, &w, size % 8);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (s->seq.load(std::memory_order_relaxed) != seq1) continue;  // torn
    try {
      return decodeMetricsSnapshot(bytes);
    } catch (const snapshot::SnapshotError&) {
      continue;  // raced the writer across the size/payload boundary
    }
  }
  tornReads_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

MetricsSnapshot ShmMetricsPlane::aggregate() const {
  MetricsSnapshot total;
  const std::uint32_t n = slots();
  for (std::uint32_t i = 0; i < n; ++i) {
    if (auto snap = read(i)) total.merge(*snap);
  }
  return total;
}

}  // namespace sde::obs
