#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "obs/metrics.hpp"

namespace sde::obs {

std::string_view phaseName(Phase phase) {
  switch (phase) {
    case Phase::kInterp:
      return "interp";
    case Phase::kMapping:
      return "mapping";
    case Phase::kSolver:
      return "solver";
    case Phase::kCheckpoint:
      return "checkpoint";
    case Phase::kScheduler:
      return "scheduler";
    case Phase::kNumPhases:
      break;
  }
  return "?";
}

std::uint64_t PhaseProfile::totalNanos() const {
  std::uint64_t total = 0;
  for (const Entry& entry : phases) total += entry.nanos;
  return total;
}

bool PhaseProfile::empty() const {
  if (!opcodes.empty()) return false;
  for (const Entry& entry : phases)
    if (entry.nanos != 0 || entry.calls != 0) return false;
  return true;
}

void PhaseProfile::toStats(support::StatsRegistry& stats) const {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const std::string prefix =
        "profile." + std::string(phaseName(static_cast<Phase>(i)));
    stats.bump(prefix + ".micros", phases[i].nanos / 1000);
    stats.bump(prefix + ".calls", phases[i].calls);
  }
  for (const OpEntry& op : opcodes) {
    stats.bump("profile." + op.name + ".count", op.count);
    if (op.nanos != 0)
      stats.bump("profile." + op.name + ".micros", op.nanos / 1000);
  }
}

void PhaseProfile::toMetrics(MetricsRegistry& metrics) const {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const std::string prefix =
        "profile." + std::string(phaseName(static_cast<Phase>(i)));
    metrics.add(metrics.counter(prefix + ".micros"), phases[i].nanos / 1000);
    metrics.add(metrics.counter(prefix + ".calls"), phases[i].calls);
  }
}

std::string PhaseProfile::report() const {
  const std::uint64_t total = totalNanos();
  std::ostringstream os;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const Entry& entry = phases[i];
    const double millis = static_cast<double>(entry.nanos) / 1e6;
    const double share =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(entry.nanos) /
                         static_cast<double>(total);
    char line[128];
    std::snprintf(line, sizeof(line), "%-10s %10.2f ms  %10llu calls  %5.1f%%\n",
                  std::string(phaseName(static_cast<Phase>(i))).c_str(), millis,
                  static_cast<unsigned long long>(entry.calls), share);
    os << line;
  }
  if (!opcodes.empty()) {
    // Display order: hottest first (ties by name); counts are exact,
    // times only present when the run profiled with SDE_OPCODE_TIME.
    std::vector<OpEntry> rows = opcodes;
    std::sort(rows.begin(), rows.end(), [](const OpEntry& a, const OpEntry& b) {
      if (a.count != b.count) return a.count > b.count;
      return a.name < b.name;
    });
    std::uint64_t opTotalNanos = 0;
    for (const OpEntry& row : rows) opTotalNanos += row.nanos;
    os << "opcode histogram:\n";
    for (const OpEntry& row : rows) {
      char line[160];
      if (row.nanos != 0) {
        const double share = opTotalNanos == 0
                                 ? 0.0
                                 : 100.0 * static_cast<double>(row.nanos) /
                                       static_cast<double>(opTotalNanos);
        std::snprintf(line, sizeof(line),
                      "  %-18s %14llu  %10.2f ms  %5.1f%%\n", row.name.c_str(),
                      static_cast<unsigned long long>(row.count),
                      static_cast<double>(row.nanos) / 1e6, share);
      } else {
        std::snprintf(line, sizeof(line), "  %-18s %14llu\n", row.name.c_str(),
                      static_cast<unsigned long long>(row.count));
      }
      os << line;
    }
  }
  return os.str();
}

PhaseProfile& PhaseProfile::mergeFrom(const PhaseProfile& other) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    phases[i].nanos += other.phases[i].nanos;
    phases[i].calls += other.phases[i].calls;
  }
  if (!other.opcodes.empty()) {
    // Name-keyed sum; the merged vector is rebuilt in name order so a
    // fleet merge is deterministic regardless of job arrival order.
    std::map<std::string, OpEntry> byName;
    for (const OpEntry& op : opcodes) byName[op.name] = op;
    for (const OpEntry& op : other.opcodes) {
      OpEntry& into = byName[op.name];
      into.name = op.name;
      into.count += op.count;
      into.nanos += op.nanos;
    }
    opcodes.clear();
    for (auto& [name, entry] : byName) opcodes.push_back(std::move(entry));
  }
  return *this;
}

}  // namespace sde::obs
