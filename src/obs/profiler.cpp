#include "obs/profiler.hpp"

#include <cstdio>
#include <sstream>

#include "obs/metrics.hpp"

namespace sde::obs {

std::string_view phaseName(Phase phase) {
  switch (phase) {
    case Phase::kInterp:
      return "interp";
    case Phase::kMapping:
      return "mapping";
    case Phase::kSolver:
      return "solver";
    case Phase::kCheckpoint:
      return "checkpoint";
    case Phase::kScheduler:
      return "scheduler";
    case Phase::kNumPhases:
      break;
  }
  return "?";
}

std::uint64_t PhaseProfile::totalNanos() const {
  std::uint64_t total = 0;
  for (const Entry& entry : phases) total += entry.nanos;
  return total;
}

bool PhaseProfile::empty() const {
  for (const Entry& entry : phases)
    if (entry.nanos != 0 || entry.calls != 0) return false;
  return true;
}

void PhaseProfile::toStats(support::StatsRegistry& stats) const {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const std::string prefix =
        "profile." + std::string(phaseName(static_cast<Phase>(i)));
    stats.bump(prefix + ".micros", phases[i].nanos / 1000);
    stats.bump(prefix + ".calls", phases[i].calls);
  }
}

void PhaseProfile::toMetrics(MetricsRegistry& metrics) const {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const std::string prefix =
        "profile." + std::string(phaseName(static_cast<Phase>(i)));
    metrics.add(metrics.counter(prefix + ".micros"), phases[i].nanos / 1000);
    metrics.add(metrics.counter(prefix + ".calls"), phases[i].calls);
  }
}

std::string PhaseProfile::report() const {
  const std::uint64_t total = totalNanos();
  std::ostringstream os;
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const Entry& entry = phases[i];
    const double millis = static_cast<double>(entry.nanos) / 1e6;
    const double share =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(entry.nanos) /
                         static_cast<double>(total);
    char line[128];
    std::snprintf(line, sizeof(line), "%-10s %10.2f ms  %10llu calls  %5.1f%%\n",
                  std::string(phaseName(static_cast<Phase>(i))).c_str(), millis,
                  static_cast<unsigned long long>(entry.calls), share);
    os << line;
  }
  return os.str();
}

PhaseProfile& PhaseProfile::mergeFrom(const PhaseProfile& other) {
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    phases[i].nanos += other.phases[i].nanos;
    phases[i].calls += other.phases[i].calls;
  }
  return *this;
}

}  // namespace sde::obs
