// Chrome trace_event JSON exporter: renders an SDE trace as instant
// events loadable in chrome://tracing and Perfetto.
//
// Mapping onto the viewer's model: pid = trace stream (partition job),
// tid = node, ts = virtual time (1 virtual time unit rendered as 1 µs).
// Kind-specific payloads land in `args`, so clicking an event in the
// viewer shows the lineage ids. Ties in virtual time keep file order
// (the deterministic merge order), which the viewer preserves.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/trace_io.hpp"

namespace sde::obs {

void exportChromeTrace(std::ostream& os, const TraceFile& trace);
void exportChromeTraceFile(const std::string& path, const TraceFile& trace);

}  // namespace sde::obs
