// Trace sink interface. Emitters (engine, mappers, solver) hold a plain
// `TraceSink*` that is nullptr when tracing is off — the entire cost of
// a disabled tracer is one pointer compare per emit site, no allocation,
// no virtual call.
//
// The sink owns the two deterministic stamps every record carries: the
// ambient virtual time (set by the engine once per processed event, so
// emitters below the engine — the solver, the mappers — need no clock
// of their own) and the per-stream sequence number (strictly
// consecutive; serialized into checkpoints so a resumed run continues
// numbering where the suspended run stopped).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace_event.hpp"

namespace sde::obs {

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  virtual ~TraceSink() = default;

  // Stamps `event` with the ambient virtual time, the stream id and the
  // next sequence number, then records it.
  void emit(TraceEvent event) {
    event.time = ambientTime_;
    event.seq = nextSeq_++;
    event.stream = stream_;
    record(event);
  }

  void setAmbientTime(std::uint64_t virtualTime) {
    ambientTime_ = virtualTime;
  }
  [[nodiscard]] std::uint64_t ambientTime() const { return ambientTime_; }

  void setStream(std::uint32_t stream) { stream_ = stream; }
  [[nodiscard]] std::uint32_t stream() const { return stream_; }

  // Checkpoint continuity: the engine serializes nextSeq() and a resumed
  // run re-applies it, so the post-resume stream picks up numbering
  // exactly after the suspend record.
  void setNextSeq(std::uint64_t seq) { nextSeq_ = seq; }
  [[nodiscard]] std::uint64_t nextSeq() const { return nextSeq_; }

 protected:
  virtual void record(const TraceEvent& event) = 0;

 private:
  std::uint64_t ambientTime_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint32_t stream_ = 0;
};

// In-memory sink for tests and programmatic inspection.
class MemoryTraceSink final : public TraceSink {
 public:
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }
  void clear() { events_.clear(); }

 protected:
  void record(const TraceEvent& event) override { events_.push_back(event); }

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace sde::obs
