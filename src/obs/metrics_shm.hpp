// Live metrics plane, part 2: cross-process publication.
//
// A fleet is N worker processes plus a coordinator; the serve daemon
// sits one more process away. Post-run stats cross those boundaries
// fine (pipe frames, files), but *live* numbers must not touch the
// fleet pipe protocol's hot frames — a status frame is 25 bytes and
// must stay under PIPE_BUF. So metrics ride the same vehicle the query
// cache does (solver/shm_cache.hpp): a named POSIX shared-memory
// segment, created by the coordinator before fork so workers inherit
// the mapping, attachable by name from the daemon.
//
// Layout: a versioned header, then one fixed-size slot per worker. A
// slot holds an encoded MetricsSnapshot (obs/metrics.hpp codec) stamped
// by a seqlock:
//
//   * publish bumps the slot's sequence word to odd, writes the payload
//     length and bytes, then bumps it to even (release). Only the slot
//     owner writes, so there is exactly one writer per seqlock and no
//     claim protocol is needed.
//   * read loads the sequence (acquire), skips odd (write in
//     progress), copies the payload, and re-checks the sequence; a
//     change means a torn read and the reader retries, bounded. The
//     payload is stored as atomic u64 words so the concurrent copy is
//     data-race-free by the letter of the memory model, not just in
//     practice.
//
// A reader that loses every retry — or a worker SIGKILLed mid-publish,
// leaving the sequence odd forever — costs that slot's contribution for
// that poll, nothing else. attach() validates magic, layout version,
// the two-phase ready marker and the geometry against the mapped size
// before trusting any of it; a mismatch throws ShmMetricsError and the
// caller degrades to its cold in-process registry.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace sde::obs {

class ShmMetricsError : public std::runtime_error {
 public:
  explicit ShmMetricsError(const std::string& what)
      : std::runtime_error(what) {}
};

struct ShmMetricsConfig {
  // One slot per publisher (fleet workers + one for the coordinator).
  std::uint32_t slots = 17;
  // Per-slot capacity for the encoded snapshot. A registry with every
  // instrumented site lit up encodes to a few KiB; oversize snapshots
  // are dropped (the previous published snapshot stays visible).
  std::uint32_t slotBytes = 64u << 10;
};

class ShmMetricsPlane {
 public:
  // Creates a fresh segment `name` ("/sde_mx_..."). A stale segment of
  // the same name (previous crashed run) is unlinked and replaced.
  [[nodiscard]] static std::unique_ptr<ShmMetricsPlane> create(
      const std::string& name, const ShmMetricsConfig& config = {});

  // Attaches to an existing segment; throws ShmMetricsError on a
  // missing, truncated, torn, version-mismatched or foreign segment.
  [[nodiscard]] static std::unique_ptr<ShmMetricsPlane> attach(
      const std::string& name);

  // Removes the name from the shm namespace (mappings live on).
  static void unlinkSegment(const std::string& name);
  [[nodiscard]] static bool segmentExists(const std::string& name);

  ~ShmMetricsPlane();
  ShmMetricsPlane(const ShmMetricsPlane&) = delete;
  ShmMetricsPlane& operator=(const ShmMetricsPlane&) = delete;

  // Encodes and seqlock-publishes `snap` into `slot`. Returns false
  // (and leaves the previous snapshot in place) when the encoding
  // exceeds the slot capacity or the slot index is out of range.
  bool publish(std::uint32_t slot, const MetricsSnapshot& snap);

  // Reads one slot. nullopt for a never-published slot, an
  // out-of-range index, or a slot that stayed torn through the retry
  // budget (writer mid-publish or dead mid-publish).
  [[nodiscard]] std::optional<MetricsSnapshot> read(std::uint32_t slot) const;

  // Merges every readable slot (MetricsSnapshot::merge — peak gauges
  // fold with max, counters sum).
  [[nodiscard]] MetricsSnapshot aggregate() const;

  [[nodiscard]] std::uint32_t slots() const;
  [[nodiscard]] std::uint32_t slotCapacityBytes() const;
  [[nodiscard]] const std::string& name() const { return name_; }

  // Reads dropped as torn after the retry budget (reporting only).
  [[nodiscard]] std::uint64_t tornReads() const {
    return tornReads_.load(std::memory_order_relaxed);
  }

 private:
  struct Header;
  struct Slot;

  ShmMetricsPlane(std::string name, int fd, void* base, std::size_t bytes);

  [[nodiscard]] Header& header() const;
  [[nodiscard]] Slot* slotAt(std::uint32_t index) const;
  [[nodiscard]] std::uint64_t slotStride() const;

  std::string name_;
  int fd_ = -1;
  void* base_ = nullptr;
  std::size_t mappedBytes_ = 0;
  mutable std::atomic<std::uint64_t> tornReads_{0};
};

}  // namespace sde::obs
