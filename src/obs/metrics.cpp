#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "snapshot/error.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

namespace sde::obs {

// ---------------------------------------------------------------------------
// MetricsSnapshot

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, point] : other.points) {
    auto [it, inserted] = points.try_emplace(name);
    MetricPoint& mine = it->second;
    if (inserted) mine.kind = point.kind;
    if (point.kind == MetricKind::kHistogram &&
        mine.kind == MetricKind::kHistogram) {
      mine.count += point.count;
      mine.sum += point.sum;
      for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        mine.buckets[i] += point.buckets[i];
    } else {
      support::foldCounter(name, mine.value, point.value);
    }
  }
}

void MetricsSnapshot::adoptMissing(const MetricsSnapshot& other) {
  for (const auto& [name, point] : other.points) points.try_emplace(name, point);
}

std::uint64_t MetricsSnapshot::value(std::string_view name) const {
  const MetricPoint* p = find(name);
  return p == nullptr ? 0 : p->value;
}

const MetricPoint* MetricsSnapshot::find(std::string_view name) const {
  auto it = points.find(name);
  return it == points.end() ? nullptr : &it->second;
}

std::uint64_t histogramQuantile(const MetricPoint& point, double q) {
  if (point.count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation, 1-based; ceil without float drift
  // for the common q values.
  const double exact = q * static_cast<double>(point.count);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  if (rank == 0) rank = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += point.buckets[i];
    if (cumulative >= rank) return histogramBucketBound(i);
  }
  return histogramBucketBound(kHistogramBuckets - 1);
}

// ---------------------------------------------------------------------------
// Binary codec

std::string encodeMetricsSnapshot(const MetricsSnapshot& snap) {
  std::ostringstream os(std::ios::binary);
  snapshot::Writer out(os);
  out.magic(kMetricsMagic);
  out.u32(kMetricsVersion);
  out.u64(snap.points.size());
  for (const auto& [name, point] : snap.points) {
    out.str(name);
    out.u8(static_cast<std::uint8_t>(point.kind));
    if (point.kind == MetricKind::kHistogram) {
      out.u64(point.count);
      out.u64(point.sum);
      // Trailing zero buckets are trimmed; the count is explicit so a
      // future bucket-geometry change is a version bump, not a guess.
      std::uint32_t used = kHistogramBuckets;
      while (used > 0 && point.buckets[used - 1] == 0) --used;
      out.u32(used);
      for (std::uint32_t i = 0; i < used; ++i) out.u64(point.buckets[i]);
    } else {
      out.u64(point.value);
    }
  }
  return std::move(os).str();
}

MetricsSnapshot decodeMetricsSnapshot(std::string_view bytes) {
  std::istringstream is{std::string(bytes), std::ios::binary};
  snapshot::Reader in(is);
  in.expectMagic(kMetricsMagic, "not an SDE metrics snapshot");
  const std::uint32_t version = in.u32();
  if (version != kMetricsVersion) {
    throw snapshot::SnapshotError("metrics snapshot version " +
                                  std::to_string(version) + ", expected " +
                                  std::to_string(kMetricsVersion));
  }
  const std::uint64_t count = in.u64();
  MetricsSnapshot snap;
  for (std::uint64_t n = 0; n < count; ++n) {
    std::string name = in.str();
    const std::uint8_t rawKind = in.u8();
    if (rawKind > static_cast<std::uint8_t>(MetricKind::kHistogram)) {
      throw snapshot::SnapshotError("metrics snapshot: unknown metric kind " +
                                    std::to_string(rawKind));
    }
    MetricPoint point;
    point.kind = static_cast<MetricKind>(rawKind);
    if (point.kind == MetricKind::kHistogram) {
      point.count = in.u64();
      point.sum = in.u64();
      const std::uint32_t used = in.u32();
      if (used > kHistogramBuckets) {
        throw snapshot::SnapshotError(
            "metrics snapshot: histogram claims " + std::to_string(used) +
            " buckets, layout has " + std::to_string(kHistogramBuckets));
      }
      for (std::uint32_t i = 0; i < used; ++i) point.buckets[i] = in.u64();
    } else {
      point.value = in.u64();
    }
    snap.points.insert_or_assign(std::move(name), point);
  }
  return snap;
}

MetricsSnapshot snapshotFromStats(const support::StatsRegistry& stats) {
  MetricsSnapshot snap;
  for (const auto& [name, value] : stats.all()) {
    MetricPoint point;
    point.kind = support::isPeakCounter(name) ? MetricKind::kGauge
                                              : MetricKind::kCounter;
    point.value = value;
    snap.points.emplace(name, point);
  }
  return snap;
}

// ---------------------------------------------------------------------------
// Prometheus exposition

namespace {

std::string sanitizeMetricName(std::string_view name) {
  std::string out = "sde_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string escapeLabelValue(std::string_view value) {
  std::string out;
  for (char c : value) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

struct ExposedName {
  std::string family;  // sanitised metric family name
  std::string labels;  // "" or {tenant="..."}
};

// "serve.tenant.<t>.<rest>" → family sde_serve_<rest>, label tenant=<t>;
// everything else is sanitised verbatim with no labels.
ExposedName exposeName(const std::string& name) {
  constexpr std::string_view kTenantPrefix = "serve.tenant.";
  if (name.size() > kTenantPrefix.size() &&
      std::string_view(name).substr(0, kTenantPrefix.size()) ==
          kTenantPrefix) {
    const std::size_t restDot = name.find('.', kTenantPrefix.size());
    if (restDot != std::string::npos && restDot + 1 < name.size()) {
      const std::string tenant =
          name.substr(kTenantPrefix.size(), restDot - kTenantPrefix.size());
      const std::string rest = name.substr(restDot + 1);
      return {sanitizeMetricName("serve." + rest),
              "{tenant=\"" + escapeLabelValue(tenant) + "\"}"};
    }
  }
  return {sanitizeMetricName(name), ""};
}

std::string_view kindText(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string renderPrometheus(const MetricsSnapshot& snap) {
  std::ostringstream os;
  // One # TYPE line per family; tenant-labelled series of one family
  // arrive adjacent because the tenant segment sorts inside the shared
  // "serve.tenant." prefix.
  std::string lastFamily;
  for (const auto& [name, point] : snap.points) {
    const ExposedName exposed = exposeName(name);
    if (exposed.family != lastFamily) {
      os << "# TYPE " << exposed.family << ' ' << kindText(point.kind)
         << '\n';
      lastFamily = exposed.family;
    }
    if (point.kind == MetricKind::kHistogram) {
      std::uint64_t cumulative = 0;
      std::size_t top = kHistogramBuckets;
      while (top > 0 && point.buckets[top - 1] == 0) --top;
      for (std::size_t i = 0; i < top; ++i) {
        cumulative += point.buckets[i];
        std::string labels = exposed.labels;
        if (labels.empty())
          labels = "{le=\"" + std::to_string(histogramBucketBound(i)) + "\"}";
        else
          labels.insert(labels.size() - 1,
                        ",le=\"" + std::to_string(histogramBucketBound(i)) +
                            "\"");
        os << exposed.family << "_bucket" << labels << ' ' << cumulative
           << '\n';
      }
      std::string inf = exposed.labels;
      if (inf.empty())
        inf = "{le=\"+Inf\"}";
      else
        inf.insert(inf.size() - 1, ",le=\"+Inf\"");
      os << exposed.family << "_bucket" << inf << ' ' << point.count << '\n';
      os << exposed.family << "_sum" << exposed.labels << ' ' << point.sum
         << '\n';
      os << exposed.family << "_count" << exposed.labels << ' ' << point.count
         << '\n';
    } else {
      os << exposed.family << exposed.labels << ' ' << point.value << '\n';
    }
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::~MetricsRegistry() {
  for (auto& slot : blocks_) delete slot.load(std::memory_order_relaxed);
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  return registerMetric(name, MetricKind::kCounter);
}

MetricsRegistry::Id MetricsRegistry::gauge(std::string_view name) {
  return registerMetric(name, MetricKind::kGauge);
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name) {
  return registerMetric(name, MetricKind::kHistogram);
}

MetricsRegistry::Id MetricsRegistry::registerMetric(std::string_view name,
                                                    MetricKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = byName_.find(std::string(name));
  if (it != byName_.end()) return it->second;
  const std::uint32_t id = size_.load(std::memory_order_relaxed);
  const std::size_t blockIndex = id >> kBlockShift;
  if (blockIndex >= kMaxBlocks)
    throw std::length_error("MetricsRegistry: metric capacity exhausted");
  if (blocks_[blockIndex].load(std::memory_order_relaxed) == nullptr) {
    // Release-publish the block so a lock-free bumper that obtained the
    // id through a data dependency sees initialised cells.
    blocks_[blockIndex].store(new Block(), std::memory_order_release);
  }
  Cell& c = blocks_[blockIndex].load(std::memory_order_relaxed)
                ->cells[id & (kBlockSize - 1)];
  c.name.assign(name);
  c.kind = kind;
  byName_.emplace(c.name, id);
  size_.store(id + 1, std::memory_order_release);
  return id;
}

MetricsRegistry::Cell& MetricsRegistry::cell(Id id) const {
  Block* block =
      blocks_[id >> kBlockShift].load(std::memory_order_acquire);
  return block->cells[id & (kBlockSize - 1)];
}

void MetricsRegistry::add(Id id, std::uint64_t delta) {
  cell(id).value.fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::set(Id id, std::uint64_t value) {
  cell(id).value.store(value, std::memory_order_relaxed);
}

void MetricsRegistry::setMax(Id id, std::uint64_t value) {
  auto& slot = cell(id).value;
  std::uint64_t seen = slot.load(std::memory_order_relaxed);
  while (seen < value &&
         !slot.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::observe(Id id, std::uint64_t value) {
  Cell& c = cell(id);
  c.value.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(value, std::memory_order_relaxed);
  c.buckets[histogramBucketOf(value)].fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::uint32_t n = size_.load(std::memory_order_acquire);
  for (std::uint32_t id = 0; id < n; ++id) {
    const Cell& c = cell(id);
    MetricPoint point;
    point.kind = c.kind;
    if (c.kind == MetricKind::kHistogram) {
      point.count = c.value.load(std::memory_order_relaxed);
      point.sum = c.sum.load(std::memory_order_relaxed);
      for (std::size_t i = 0; i < kHistogramBuckets; ++i)
        point.buckets[i] = c.buckets[i].load(std::memory_order_relaxed);
    } else {
      point.value = c.value.load(std::memory_order_relaxed);
    }
    snap.points.emplace(c.name, point);
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::uint32_t n = size_.load(std::memory_order_acquire);
  for (std::uint32_t id = 0; id < n; ++id) {
    Cell& c = cell(id);
    c.value.store(0, std::memory_order_relaxed);
    c.sum.store(0, std::memory_order_relaxed);
    for (auto& bucket : c.buckets) bucket.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace sde::obs
