#include "obs/trace_io.hpp"

#include <fstream>
#include <ostream>

#include "snapshot/error.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

namespace sde::obs {

namespace {

void writeHeader(snapshot::Writer& out, const TraceHeader& header) {
  out.magic(kTraceMagic);
  out.u32(kTraceVersion);
  out.u32(header.numNodes);
  out.u32(header.stream);
  out.b(header.merged);
  out.str(header.mapper);
  out.str(header.scenario);
}

void writeEvent(snapshot::Writer& out, const TraceEvent& event) {
  out.u8(static_cast<std::uint8_t>(event.kind));
  out.u8(event.detail);
  out.u32(event.stream);
  out.u32(event.node);
  out.u32(event.peer);
  out.u64(event.time);
  out.u64(event.seq);
  out.u64(event.stateId);
  out.u64(event.parentStateId);
  out.u64(event.groupId);
  out.u64(event.packetId);
  out.u64(event.a);
  out.u64(event.b);
}

void writeTail(snapshot::Writer& out, const PhaseProfile& profile) {
  out.u8(kTraceEventTerminator);
  out.b(!profile.empty());
  if (!profile.empty()) {
    // The section is a flat name-keyed list, so the opcode histogram
    // rides after the phases without a version bump: entries a reader
    // does not recognise are dropped, "op."/"pair." names are collected.
    out.u64(kNumPhases + profile.opcodes.size());
    for (std::size_t i = 0; i < kNumPhases; ++i) {
      out.str(phaseName(static_cast<Phase>(i)));
      out.u64(profile.phases[i].nanos);
      out.u64(profile.phases[i].calls);
    }
    for (const PhaseProfile::OpEntry& op : profile.opcodes) {
      out.str(op.name);
      out.u64(op.nanos);
      out.u64(op.count);
    }
  }
  out.magic(kTraceTrailer);
}

}  // namespace

StreamTraceSink::StreamTraceSink(std::ostream& os, TraceHeader header)
    : os_(os) {
  setStream(header.stream);
  snapshot::Writer out(os_);
  writeHeader(out, header);
  if (!out.ok()) throw TraceError("trace header write failed");
}

StreamTraceSink::~StreamTraceSink() {
  try {
    close();
  } catch (const TraceError&) {
    // Destructors must not throw; a close() failure after an explicit
    // close would already have surfaced to the caller.
  }
}

void StreamTraceSink::record(const TraceEvent& event) {
  snapshot::Writer out(os_);
  writeEvent(out, event);
}

void StreamTraceSink::close() {
  if (closed_) return;
  closed_ = true;
  snapshot::Writer out(os_);
  writeTail(out, profile_);
  os_.flush();
  if (!out.ok()) throw TraceError("trace stream write failed");
}

TraceFile readTrace(std::istream& is) {
  snapshot::Reader in(is);
  TraceFile trace;
  try {
    in.expectMagic(kTraceMagic, "not an SDE trace file");
    const std::uint32_t version = in.u32();
    if (version != kTraceVersion)
      throw TraceError("unsupported trace version " + std::to_string(version) +
                       " (this build reads " + std::to_string(kTraceVersion) +
                       ")");
    trace.header.numNodes = in.u32();
    trace.header.stream = in.u32();
    trace.header.merged = in.b();
    trace.header.mapper = in.str();
    trace.header.scenario = in.str();

    while (true) {
      const std::uint8_t kind = in.u8();
      if (kind == kTraceEventTerminator) break;
      if (!validTraceEventKind(kind))
        throw TraceError("unknown trace event kind " + std::to_string(kind) +
                         " (corrupt or truncated file)");
      TraceEvent event;
      event.kind = static_cast<TraceEventKind>(kind);
      event.detail = in.u8();
      event.stream = in.u32();
      event.node = in.u32();
      event.peer = in.u32();
      event.time = in.u64();
      event.seq = in.u64();
      event.stateId = in.u64();
      event.parentStateId = in.u64();
      event.groupId = in.u64();
      event.packetId = in.u64();
      event.a = in.u64();
      event.b = in.u64();
      trace.events.push_back(event);
    }

    if (in.b()) {
      const std::uint64_t numEntries = in.u64();
      for (std::uint64_t i = 0; i < numEntries; ++i) {
        const std::string name = in.str();
        const std::uint64_t nanos = in.u64();
        const std::uint64_t calls = in.u64();
        if (name.rfind("op.", 0) == 0 || name.rfind("pair.", 0) == 0) {
          trace.profile.opcodes.push_back({name, calls, nanos});
          continue;
        }
        // Tolerate phase-set evolution: names this build does not know
        // are dropped rather than rejected.
        for (std::size_t p = 0; p < kNumPhases; ++p) {
          if (phaseName(static_cast<Phase>(p)) == name) {
            trace.profile.phases[p].nanos = nanos;
            trace.profile.phases[p].calls = calls;
            break;
          }
        }
      }
    }
    in.expectMagic(kTraceTrailer, "trace trailer missing (torn file)");
  } catch (const snapshot::SnapshotError& e) {
    throw TraceError(e.what());
  }
  return trace;
}

TraceFile readTraceFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw TraceError("cannot open trace file " + path);
  return readTrace(is);
}

void writeTrace(std::ostream& os, const TraceFile& trace) {
  snapshot::Writer out(os);
  writeHeader(out, trace.header);
  for (const TraceEvent& event : trace.events) writeEvent(out, event);
  writeTail(out, trace.profile);
  if (!out.ok()) throw TraceError("trace write failed");
}

void writeTraceFile(const std::string& path, const TraceFile& trace) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw TraceError("cannot create trace file " + path);
  writeTrace(os, trace);
  os.flush();
  if (!os.good()) throw TraceError("trace file write failed: " + path);
}

}  // namespace sde::obs
