#include "obs/tail.hpp"

#include <cstring>
#include <fstream>

namespace sde::obs {

namespace {

// Fixed event record size: kind + detail + three u32 ids + eight u64
// payload fields. Everything after the header is this wide until the
// terminator byte, which is what makes tailing possible.
constexpr std::size_t kEventRecordBytes = 1 + 1 + 3 * 4 + 8 * 8;

// Little-endian decoders over the pending buffer — must mirror
// snapshot::Writer exactly (trace files are written through it).
std::uint32_t loadU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t loadU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::size_t TraceTailer::poll() {
  if (finished_) return 0;

  std::ifstream is(path_, std::ios::binary);
  if (!is) return 0;  // not created yet (or gone) — wait
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  if (end < 0 || static_cast<std::uint64_t>(end) <= fileOffset_) return 0;
  const std::uint64_t fresh = static_cast<std::uint64_t>(end) - fileOffset_;
  is.seekg(static_cast<std::streamoff>(fileOffset_), std::ios::beg);
  const std::size_t old = pending_.size();
  pending_.resize(old + static_cast<std::size_t>(fresh));
  is.read(reinterpret_cast<char*>(pending_.data() + old),
          static_cast<std::streamsize>(fresh));
  const auto got = static_cast<std::uint64_t>(is.gcount());
  pending_.resize(old + static_cast<std::size_t>(got));
  fileOffset_ += got;

  std::size_t consumed = 0;
  if (!headerParsed_) consumed = parseHeader();
  std::size_t newEvents = 0;
  if (headerParsed_) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(consumed));
    newEvents = parseEvents();
  }
  return newEvents;
}

// Returns the number of header bytes consumed (0 = incomplete, wait).
std::size_t TraceTailer::parseHeader() {
  const std::uint8_t* p = pending_.data();
  const std::size_t n = pending_.size();
  // Fixed prefix: magic(8) version(4) numNodes(4) stream(4) merged(1).
  if (n < 8 + 4 + 4 + 4 + 1) return 0;
  if (std::memcmp(p, kTraceMagic.data(), kTraceMagic.size()) != 0)
    throw TraceError("not an SDE trace file: " + path_);
  const std::uint32_t version = loadU32(p + 8);
  if (version != kTraceVersion)
    throw TraceError("unsupported trace version " + std::to_string(version) +
                     " in " + path_);
  std::size_t at = 8 + 4;
  TraceHeader header;
  header.numNodes = loadU32(p + at);
  at += 4;
  header.stream = loadU32(p + at);
  at += 4;
  header.merged = p[at] != 0;
  at += 1;
  // Two length-prefixed strings (mapper, scenario).
  for (std::string* field : {&header.mapper, &header.scenario}) {
    if (n < at + 8) return 0;
    const std::uint64_t length = loadU64(p + at);
    if (length > (1u << 20))
      throw TraceError("implausible header string length in " + path_);
    at += 8;
    if (n < at + length) return 0;
    field->assign(reinterpret_cast<const char*>(p + at),
                  static_cast<std::size_t>(length));
    at += static_cast<std::size_t>(length);
  }
  header_ = std::move(header);
  headerParsed_ = true;
  return at;
}

std::size_t TraceTailer::parseEvents() {
  std::size_t consumed = 0;
  std::size_t newEvents = 0;
  while (pending_.size() - consumed >= 1) {
    const std::uint8_t* p = pending_.data() + consumed;
    if (*p == kTraceEventTerminator) {
      // The run is over; the profile section and trailer carry no
      // events, so the tailer's job ends here.
      finished_ = true;
      pending_.clear();
      return newEvents;
    }
    if (!validTraceEventKind(*p))
      throw TraceError("unknown trace event kind " + std::to_string(*p) +
                       " while tailing " + path_);
    if (pending_.size() - consumed < kEventRecordBytes) break;
    TraceEvent event;
    event.kind = static_cast<TraceEventKind>(p[0]);
    event.detail = p[1];
    event.stream = loadU32(p + 2);
    event.node = loadU32(p + 6);
    event.peer = loadU32(p + 10);
    event.time = loadU64(p + 14);
    event.seq = loadU64(p + 22);
    event.stateId = loadU64(p + 30);
    event.parentStateId = loadU64(p + 38);
    event.groupId = loadU64(p + 46);
    event.packetId = loadU64(p + 54);
    event.a = loadU64(p + 62);
    event.b = loadU64(p + 70);
    builder_.add(event);
    consumed += kEventRecordBytes;
    ++newEvents;
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(consumed));
  return newEvents;
}

}  // namespace sde::obs
