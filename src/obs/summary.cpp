#include "obs/summary.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace sde::obs {

namespace {

constexpr std::size_t kMaxReportedViolations = 100;

bool validForkCause(std::uint8_t detail) {
  return detail >= static_cast<std::uint8_t>(ForkCause::kBranch) &&
         detail <= static_cast<std::uint8_t>(ForkCause::kMapping);
}

bool validGroupForkDetail(std::uint8_t detail) {
  return detail >= static_cast<std::uint8_t>(GroupForkDetail::kScenarioFork) &&
         detail <= static_cast<std::uint8_t>(GroupForkDetail::kVirtualSplit);
}

bool validSolverLayerDetail(std::uint8_t detail) {
  return detail >= static_cast<std::uint8_t>(SolverLayerDetail::kConstant) &&
         detail <= static_cast<std::uint8_t>(SolverLayerDetail::kSharedCache);
}

std::string at(std::size_t index, const TraceEvent& event) {
  return "event #" + std::to_string(index) + " (" +
         std::string(traceEventKindName(event.kind)) + ", stream " +
         std::to_string(event.stream) + ", seq " + std::to_string(event.seq) +
         ")";
}

}  // namespace

void SummaryBuilder::add(const TraceEvent& event) {
  const auto kindIndex = static_cast<std::size_t>(event.kind);
  if (kindIndex < summary_.countsByKind.size())
    ++summary_.countsByKind[kindIndex];
  ++summary_.eventsByStream[event.stream];
  if (eventsSeen_ == 0) summary_.firstTime = event.time;
  ++eventsSeen_;
  summary_.lastTime = event.time;

  switch (event.kind) {
    case TraceEventKind::kStateFork:
      ++summary_.forksByNode[event.node];
      switch (static_cast<ForkCause>(event.detail)) {
        case ForkCause::kBranch: ++summary_.forksBranch; break;
        case ForkCause::kFailure: ++summary_.forksFailure; break;
        case ForkCause::kMapping: ++summary_.forksMapping; break;
      }
      break;
    case TraceEventKind::kPacketTransmit: {
      auto [it, inserted] = txIndex_.try_emplace(
          event.packetId, summary_.forkingTransmissions.size());
      if (inserted) {
        TransmissionForks tx;
        tx.packetId = event.packetId;
        tx.src = event.node;
        tx.dst = event.peer;
        tx.time = event.time;
        summary_.forkingTransmissions.push_back(tx);
      }
      break;
    }
    case TraceEventKind::kMappingInvoked: {
      summary_.targetsForked += event.a;
      summary_.bystandersForked += event.b;
      auto [it, inserted] = txIndex_.try_emplace(
          event.packetId, summary_.forkingTransmissions.size());
      if (inserted) {
        TransmissionForks tx;
        tx.packetId = event.packetId;
        tx.src = event.node;
        tx.dst = event.peer;
        tx.time = event.time;
        summary_.forkingTransmissions.push_back(tx);
      }
      TransmissionForks& tx = summary_.forkingTransmissions[it->second];
      tx.targetsForked += event.a;
      tx.bystandersForked += event.b;
      break;
    }
    case TraceEventKind::kGroupFork:
      ++summary_.groupForks;
      if (static_cast<GroupForkDetail>(event.detail) ==
          GroupForkDetail::kScenarioFork)
        summary_.scenarioCopies += event.b;
      break;
    case TraceEventKind::kStateMerge:
      summary_.mergeRemovedStates += event.a;
      ++summary_.mergesByNode[event.node];
      break;
    case TraceEventKind::kSolverQuery:
      ++summary_.solverQueries;
      switch (static_cast<SolverLayerDetail>(event.detail)) {
        case SolverLayerDetail::kConstant: ++summary_.solverConstant; break;
        case SolverLayerDetail::kCacheHit: ++summary_.solverCacheHits; break;
        case SolverLayerDetail::kModelReuse:
          ++summary_.solverModelReuse;
          break;
        case SolverLayerDetail::kInterval:
          ++summary_.solverIntervalRefuted;
          break;
        case SolverLayerDetail::kEnumerated:
          ++summary_.solverEnumerated;
          break;
        case SolverLayerDetail::kSubsumption:
          ++summary_.solverSubsumption;
          break;
        case SolverLayerDetail::kSharedCache:
          ++summary_.solverSharedCache;
          break;
      }
      break;
    default:
      break;
  }
}

TraceSummary SummaryBuilder::finish() const {
  TraceSummary summary = summary_;
  // Only transmissions that actually charged forks rank; heaviest
  // first, equal bills by earlier packet id (deterministic).
  std::erase_if(summary.forkingTransmissions,
                [](const TransmissionForks& tx) { return tx.total() == 0; });
  std::sort(summary.forkingTransmissions.begin(),
            summary.forkingTransmissions.end(),
            [](const TransmissionForks& a, const TransmissionForks& b) {
              if (a.total() != b.total()) return a.total() > b.total();
              return a.packetId < b.packetId;
            });
  return summary;
}

TraceSummary summarizeTrace(const TraceFile& trace) {
  SummaryBuilder builder;
  for (const TraceEvent& event : trace.events) builder.add(event);
  return builder.finish();
}

std::vector<std::string> validateTrace(const TraceFile& trace) {
  std::vector<std::string> violations;
  const auto flag = [&](std::string message) {
    if (violations.size() < kMaxReportedViolations)
      violations.push_back(std::move(message));
  };

  // Per-stream bookkeeping. Lineage is only enforceable for streams we
  // saw from the beginning (first seq == 0); a trace resumed from a
  // checkpoint starts mid-history and its pre-existing states are
  // legitimately unknown.
  struct StreamState {
    bool seen = false;
    bool fromStart = false;
    std::uint64_t nextSeq = 0;
    std::unordered_set<std::uint64_t> liveStates;
  };
  std::map<std::uint32_t, StreamState> streams;

  std::uint64_t lastTime = 0;
  std::uint64_t mappingForks = 0;
  std::uint64_t claimedTargets = 0;
  std::uint64_t claimedBystanders = 0;
  std::uint64_t claimedScenarioCopies = 0;
  bool allStreamsFromStart = true;

  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const TraceEvent& event = trace.events[i];

    if (i > 0 && event.time < lastTime)
      flag(at(i, event) + ": virtual time " + std::to_string(event.time) +
           " regresses below " + std::to_string(lastTime));
    lastTime = std::max(lastTime, event.time);

    StreamState& stream = streams[event.stream];
    if (!stream.seen) {
      stream.seen = true;
      stream.fromStart = event.seq == 0;
      stream.nextSeq = event.seq + 1;
      if (!stream.fromStart) allStreamsFromStart = false;
    } else {
      if (event.seq != stream.nextSeq)
        flag(at(i, event) + ": sequence gap (expected seq " +
             std::to_string(stream.nextSeq) + ")");
      stream.nextSeq = event.seq + 1;
    }

    if (trace.header.numNodes > 0) {
      if (event.node >= trace.header.numNodes)
        flag(at(i, event) + ": node " + std::to_string(event.node) +
             " outside the " + std::to_string(trace.header.numNodes) +
             "-node network");
      if (event.peer >= trace.header.numNodes)
        flag(at(i, event) + ": peer " + std::to_string(event.peer) +
             " outside the " + std::to_string(trace.header.numNodes) +
             "-node network");
    }

    switch (event.kind) {
      case TraceEventKind::kStateCreate:
        if (stream.fromStart &&
            !stream.liveStates.insert(event.stateId).second)
          flag(at(i, event) + ": state " + std::to_string(event.stateId) +
               " created twice");
        break;
      case TraceEventKind::kStateFork:
        if (!validForkCause(event.detail))
          flag(at(i, event) + ": invalid fork cause " +
               std::to_string(event.detail));
        else if (static_cast<ForkCause>(event.detail) == ForkCause::kMapping)
          ++mappingForks;
        if (stream.fromStart) {
          if (stream.liveStates.count(event.parentStateId) == 0)
            flag(at(i, event) + ": fork parent " +
                 std::to_string(event.parentStateId) + " was never created");
          if (!stream.liveStates.insert(event.stateId).second)
            flag(at(i, event) + ": fork child " +
                 std::to_string(event.stateId) + " already exists");
        }
        break;
      case TraceEventKind::kStateTerminate:
        if (stream.fromStart && stream.liveStates.erase(event.stateId) == 0)
          flag(at(i, event) + ": terminating unknown state " +
               std::to_string(event.stateId));
        break;
      case TraceEventKind::kPacketTransmit:
      case TraceEventKind::kPacketDeliver:
        if (stream.fromStart &&
            stream.liveStates.count(event.stateId) == 0)
          flag(at(i, event) + ": packet event on unknown state " +
               std::to_string(event.stateId));
        break;
      case TraceEventKind::kMappingInvoked:
        claimedTargets += event.a;
        claimedBystanders += event.b;
        break;
      case TraceEventKind::kGroupFork:
        if (!validGroupForkDetail(event.detail))
          flag(at(i, event) + ": invalid group-fork detail " +
               std::to_string(event.detail));
        else if (static_cast<GroupForkDetail>(event.detail) ==
                 GroupForkDetail::kScenarioFork)
          claimedScenarioCopies += event.b;
        break;
      case TraceEventKind::kSolverQuery:
        if (!validSolverLayerDetail(event.detail))
          flag(at(i, event) + ": invalid solver-query detail " +
               std::to_string(event.detail));
        break;
      case TraceEventKind::kStateMerge:
        // stateId survives, parentStateId was absorbed into it; the
        // absorbed state is reaped without a kStateTerminate of its own.
        // Mapper-repair casualties counted in `a` beyond the absorbed
        // state carry no ids, so only the named pair is checked.
        if (event.a < 1)
          flag(at(i, event) + ": merge removed " + std::to_string(event.a) +
               " states (must remove at least the absorbed one)");
        if (event.stateId == event.parentStateId)
          flag(at(i, event) + ": state " + std::to_string(event.stateId) +
               " merged into itself");
        if (stream.fromStart) {
          if (stream.liveStates.count(event.stateId) == 0)
            flag(at(i, event) + ": merge survivor " +
                 std::to_string(event.stateId) + " was never created");
          if (stream.liveStates.erase(event.parentStateId) == 0)
            flag(at(i, event) + ": merge absorbed unknown state " +
                 std::to_string(event.parentStateId));
        }
        break;
      case TraceEventKind::kLoopSummary:
        if (stream.fromStart && stream.liveStates.count(event.stateId) == 0)
          flag(at(i, event) + ": loop summary on unknown state " +
               std::to_string(event.stateId));
        break;
      default:
        break;
    }
  }

  // The fork-attribution ledger: every mapping-caused state fork must
  // be claimed by exactly one mapping-layer record (a kMappingInvoked
  // target/bystander or a COB scenario materialisation), and vice
  // versa. Only meaningful when no stream resumed mid-history.
  if (allStreamsFromStart) {
    const std::uint64_t claimed =
        claimedTargets + claimedBystanders + claimedScenarioCopies;
    if (mappingForks != claimed)
      flag("fork-attribution mismatch: " + std::to_string(mappingForks) +
           " mapping-caused state forks vs " + std::to_string(claimed) +
           " claimed by the mapping layer (" + std::to_string(claimedTargets) +
           " targets + " + std::to_string(claimedBystanders) +
           " bystanders + " + std::to_string(claimedScenarioCopies) +
           " scenario copies)");
  }
  return violations;
}

}  // namespace sde::obs
