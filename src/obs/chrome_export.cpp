#include "obs/chrome_export.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <set>
#include <utility>

namespace sde::obs {

namespace {

void appendJsonString(std::string& out, std::string_view value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendArg(std::string& out, bool& firstArg, std::string_view key,
               std::uint64_t value) {
  if (!firstArg) out += ',';
  firstArg = false;
  appendJsonString(out, key);
  out += ':';
  out += std::to_string(value);
}

std::string renderArgs(const TraceEvent& event) {
  std::string out = "{";
  bool first = true;
  appendArg(out, first, "seq", event.seq);
  switch (event.kind) {
    case TraceEventKind::kStateCreate:
      appendArg(out, first, "state", event.stateId);
      appendArg(out, first, "group", event.groupId);
      break;
    case TraceEventKind::kStateFork: {
      appendArg(out, first, "state", event.stateId);
      appendArg(out, first, "parent", event.parentStateId);
      appendArg(out, first, "group", event.groupId);
      out += ",\"cause\":";
      appendJsonString(out,
                       forkCauseName(static_cast<ForkCause>(event.detail)));
      break;
    }
    case TraceEventKind::kStateTerminate:
      appendArg(out, first, "state", event.stateId);
      break;
    case TraceEventKind::kPacketTransmit:
      appendArg(out, first, "state", event.stateId);
      appendArg(out, first, "packet", event.packetId);
      appendArg(out, first, "dst", event.peer);
      appendArg(out, first, "receivers", event.a);
      break;
    case TraceEventKind::kPacketDeliver:
      appendArg(out, first, "state", event.stateId);
      appendArg(out, first, "packet", event.packetId);
      appendArg(out, first, "src", event.peer);
      break;
    case TraceEventKind::kMappingInvoked:
      appendArg(out, first, "packet", event.packetId);
      appendArg(out, first, "group", event.groupId);
      appendArg(out, first, "targets_forked", event.a);
      appendArg(out, first, "bystanders_forked", event.b);
      break;
    case TraceEventKind::kGroupFork:
      appendArg(out, first, "group", event.groupId);
      appendArg(out, first, "source_group", event.a);
      appendArg(out, first, "forks", event.b);
      appendArg(out, first, "detail", event.detail);
      break;
    case TraceEventKind::kCheckpointSuspend:
    case TraceEventKind::kCheckpointRestore:
      appendArg(out, first, "events_processed", event.a);
      break;
    case TraceEventKind::kSolverQuery: {
      appendArg(out, first, "conjuncts", event.a);
      appendArg(out, first, "sat", event.b);
      out += ",\"source\":";
      appendJsonString(
          out,
          solverLayerDetailName(static_cast<SolverLayerDetail>(event.detail)));
      break;
    }
    default:
      break;
  }
  out += '}';
  return out;
}

}  // namespace

void exportChromeTrace(std::ostream& os, const TraceFile& trace) {
  os << "{\"traceEvents\":[";
  bool firstRecord = true;
  const auto comma = [&] {
    if (!firstRecord) os << ",\n";
    firstRecord = false;
  };

  // Name the pid/tid lanes up front so the viewer shows "stream N" /
  // "node N" instead of bare numbers.
  std::set<std::pair<std::uint32_t, std::uint32_t>> lanes;
  std::set<std::uint32_t> streams;
  for (const TraceEvent& event : trace.events) {
    lanes.insert({event.stream, event.node});
    streams.insert(event.stream);
  }
  for (const std::uint32_t stream : streams) {
    comma();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << stream
       << ",\"tid\":0,\"args\":{\"name\":\"stream " << stream << "\"}}";
  }
  for (const auto& [stream, node] : lanes) {
    comma();
    os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << stream
       << ",\"tid\":" << node << ",\"args\":{\"name\":\"node " << node
       << "\"}}";
  }

  for (const TraceEvent& event : trace.events) {
    comma();
    std::string name;
    appendJsonString(name, traceEventKindName(event.kind));
    os << "{\"name\":" << name << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
       << event.time << ",\"pid\":" << event.stream
       << ",\"tid\":" << event.node << ",\"args\":" << renderArgs(event)
       << "}";
  }

  std::string mapper;
  appendJsonString(mapper, trace.header.mapper);
  std::string scenario;
  appendJsonString(scenario, trace.header.scenario);
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"mapper\":" << mapper
     << ",\"scenario\":" << scenario
     << ",\"numNodes\":" << trace.header.numNodes
     << ",\"merged\":" << (trace.header.merged ? "true" : "false") << "}}\n";
  if (!os.good()) throw TraceError("chrome trace export write failed");
}

void exportChromeTraceFile(const std::string& path, const TraceFile& trace) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw TraceError("cannot create chrome trace file " + path);
  exportChromeTrace(os, trace);
  os.flush();
  if (!os.good()) throw TraceError("chrome trace export failed: " + path);
}

}  // namespace sde::obs
