// Incremental trace tailing — live progress out of a growing .trc file.
//
// A running engine streams its trace container (trace_io.hpp) to disk
// as events happen; only the terminator/trailer is missing until the
// run ends. Because event records are fixed-width after the variable
// header, a reader polling the file can consume every *complete* record
// already flushed and simply wait on a partial tail — no locking, no
// coordination with the writer, works across processes. This is how
// sde_serve streams live job progress: tail the worker's trace file,
// fold new events through a SummaryBuilder, ship the aggregate.
//
// The tailer is deliberately conservative about what it calls corrupt:
// a short file is "not enough yet" (the writer may still be flushing),
// but a wrong magic, a foreign version or an unknown event kind inside
// the settled region throws TraceError — those bytes will never become
// valid by waiting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/summary.hpp"
#include "obs/trace_io.hpp"

namespace sde::obs {

class TraceTailer {
 public:
  // `path` may not exist yet; poll() treats a missing file as "no new
  // events" so a tailer can be armed before the worker starts.
  explicit TraceTailer(std::string path) : path_(std::move(path)) {}

  // Reads whatever the file has grown by since the last poll, feeds
  // complete event records into the builder, and returns how many new
  // events were consumed. Returns 0 (without error) when the file is
  // missing, the header is still incomplete, or no full record landed.
  // Throws TraceError on structurally corrupt bytes.
  std::size_t poll();

  // Header fields become meaningful once headerParsed().
  [[nodiscard]] bool headerParsed() const { return headerParsed_; }
  [[nodiscard]] const TraceHeader& header() const { return header_; }

  // True once the event terminator was read: the trace is complete and
  // further polls are no-ops.
  [[nodiscard]] bool finished() const { return finished_; }

  [[nodiscard]] std::uint64_t eventsSeen() const {
    return builder_.eventsSeen();
  }
  // Aggregate of everything consumed so far (snapshot; callable while
  // the file keeps growing).
  [[nodiscard]] TraceSummary summary() const { return builder_.finish(); }

 private:
  std::size_t parseHeader();
  std::size_t parseEvents();

  std::string path_;
  std::vector<std::uint8_t> pending_;  // unconsumed bytes from the file
  std::uint64_t fileOffset_ = 0;       // bytes read from the file so far
  TraceHeader header_;
  bool headerParsed_ = false;
  bool finished_ = false;
  SummaryBuilder builder_;
};

}  // namespace sde::obs
