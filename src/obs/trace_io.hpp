// Binary trace container: framing, streaming writer sink, and a
// whole-file reader.
//
// Layout (all primitives via snapshot::Writer — little-endian, fixed
// width):
//
//   magic "SDETRACE" | u32 version | header | event records... |
//   u8 0xFF terminator | profile section | magic "SDETREND"
//
// Events are streamed as they are emitted (the writer never buffers the
// whole run), each prefixed by its kind byte; 0xFF ends the sequence so
// the reader needs no up-front count. The optional profile section
// carries the phase profiler's totals — the only wall-clock data in the
// file, which is why the multi-worker merge (trace_merge.hpp) drops it:
// merged traces must be byte-identical across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/profiler.hpp"
#include "obs/trace_sink.hpp"

namespace sde::obs {

inline constexpr std::string_view kTraceMagic = "SDETRACE";
inline constexpr std::string_view kTraceTrailer = "SDETREND";
inline constexpr std::uint32_t kTraceVersion = 1;
inline constexpr std::uint8_t kTraceEventTerminator = 0xFF;

class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Identity of the producing run; free-form fields are informational
// (the CLI prints them), numNodes feeds validation.
struct TraceHeader {
  std::uint32_t numNodes = 0;
  std::uint32_t stream = 0;     // partition job id (0 for single runs)
  bool merged = false;          // true: multi-stream merge output
  std::string mapper;           // mapping algorithm name
  std::string scenario;         // free-form scenario label
};

// A fully parsed trace.
struct TraceFile {
  TraceHeader header;
  std::vector<TraceEvent> events;
  PhaseProfile profile;  // empty() when the file carries no profile
};

// Streaming sink writing the container to `os` as events arrive. The
// stream must outlive the sink; close() (or destruction) writes the
// terminator, the profile section and the trailer. A profile attached
// via setProfile before close lands in the file.
class StreamTraceSink final : public TraceSink {
 public:
  StreamTraceSink(std::ostream& os, TraceHeader header);
  ~StreamTraceSink() override;

  void setProfile(const PhaseProfile& profile) { profile_ = profile; }
  // Finalizes the container; idempotent. Throws TraceError if the
  // stream went bad (disk full surfaces here, not as a torn file).
  void close();

 protected:
  void record(const TraceEvent& event) override;

 private:
  std::ostream& os_;
  PhaseProfile profile_;
  bool closed_ = false;
};

// Whole-file reader; throws TraceError on foreign magic, version
// mismatch, truncation, or an unknown event kind.
[[nodiscard]] TraceFile readTrace(std::istream& is);
[[nodiscard]] TraceFile readTraceFile(const std::string& path);

// One-shot writer (merge output, tests).
void writeTrace(std::ostream& os, const TraceFile& trace);
void writeTraceFile(const std::string& path, const TraceFile& trace);

}  // namespace sde::obs
