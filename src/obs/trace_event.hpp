// Structured trace events — the observability layer's vocabulary.
//
// Every record answers the paper's central question ("where do states
// and memory come from?") for one concrete occurrence: a state fork
// carries its causal lineage (parent -> child), a mapping invocation
// carries how many targets and bystanders it forked, a solver query
// carries whether the cache answered it. Records are plain data and
// strictly deterministic: virtual time, sequence numbers and ids only —
// never wall-clock — so the merged trace of a partitioned run is
// byte-identical for any worker count (the same contract
// trace::stitchSamples keeps for metric samples).
#pragma once

#include <cstdint>
#include <string_view>

namespace sde::obs {

enum class TraceEventKind : std::uint8_t {
  kStateCreate = 1,     // boot: one initial state per node
  kStateFork,           // parentStateId forked into stateId (detail: ForkCause)
  kStateTerminate,      // stateId finished or crashed during a delivery
  kPacketTransmit,      // stateId sent packetId node -> peer; a = #receivers
  kPacketDeliver,       // stateId received packetId from peer
  kMappingInvoked,      // onTransmit summary: a = targets forked,
                        // b = bystanders forked, groupId = sender's group
  kGroupFork,           // mapper grouping split (detail: GroupForkDetail);
                        // groupId = new group, a = source group, b = forks
  kCheckpointSuspend,   // engine serialized mid-run; a = events processed
  kCheckpointRestore,   // engine resumed from a checkpoint; a = events
  kSolverQuery,         // detail: SolverLayerDetail; a = conjunction size,
                        // b = 1 if satisfiable (0 unsat, 2 exhausted)
  kStateMerge,          // parentStateId was ite-merged into stateId;
                        // a = states removed (absorbed + mapper casualties)
  kLoopSummary,         // stateId's timer iteration replayed from a loop
                        // summary; a = timer id, b = period
};
inline constexpr std::uint8_t kNumTraceEventKinds = 13;  // 1-based sentinel

// Why a state fork happened. kBranch and kFailure together are the
// engine's "local" forks; kMapping forks are performed by the mapping
// algorithm (COW bystander copies, SDS target copies, COB dscenario
// materialisation) — the quantity Table I is about.
enum class ForkCause : std::uint8_t {
  kBranch = 1,   // symbolic branch in the interpreter
  kFailure = 2,  // symbolic network-failure decision
  kMapping = 3,  // fork performed by the mapping algorithm
};

enum class GroupForkDetail : std::uint8_t {
  kScenarioFork = 1,  // COB: a local branch materialised a new dscenario
  kDstateSplit = 2,   // COW: conflict resolution split off a fresh dstate
  kVirtualSplit = 3,  // SDS: virtual-level conflict resolution
};

// Which pipeline layer answered a solver query. Values 1..5 predate the
// layered pipeline and keep their numbering so old traces read
// unchanged; 6 and 7 are the layers the pipeline added.
enum class SolverLayerDetail : std::uint8_t {
  kConstant = 1,     // refuted by a constant-false conjunct
  kCacheHit = 2,     // exact query-cache hit
  kModelReuse = 3,   // satisfied by re-checking a recently cached model
  kInterval = 4,     // refuted by interval analysis
  kEnumerated = 5,   // answered by model enumeration
  kSubsumption = 6,  // UNSAT-subset or model-pool subsumption hit
  kSharedCache = 7,  // answered by the cross-worker shared cache
};

// One trace record. `seq` is a per-stream strictly consecutive counter
// assigned by the sink; `stream` identifies the producing engine in a
// merged multi-worker trace (the partition job id). Unused fields stay
// zero for kinds that do not need them.
struct TraceEvent {
  TraceEventKind kind{};
  std::uint8_t detail = 0;   // ForkCause / GroupForkDetail / SolverLayerDetail
  std::uint32_t stream = 0;  // producing stream (partition job id)
  std::uint32_t node = 0;    // node the record is about (sender/owner)
  std::uint32_t peer = 0;    // other endpoint (packet destination/source)
  std::uint64_t time = 0;    // virtual time (stamped by the sink)
  std::uint64_t seq = 0;     // per-stream consecutive (stamped by the sink)
  std::uint64_t stateId = 0;
  std::uint64_t parentStateId = 0;
  std::uint64_t groupId = 0;
  std::uint64_t packetId = 0;
  std::uint64_t a = 0;  // kind-specific payload (see the kind comments)
  std::uint64_t b = 0;

  [[nodiscard]] bool operator==(const TraceEvent&) const = default;
};

[[nodiscard]] std::string_view traceEventKindName(TraceEventKind kind);
[[nodiscard]] std::string_view forkCauseName(ForkCause cause);
[[nodiscard]] std::string_view solverLayerDetailName(SolverLayerDetail detail);
[[nodiscard]] bool validTraceEventKind(std::uint8_t kind);

}  // namespace sde::obs
