#include "rime/apps.hpp"

#include "rime/stack.hpp"

namespace sde::rime {

namespace {

using vm::Entry;
using vm::IRBuilder;
using vm::Op;
using vm::Reg;

// Register conventions inside handlers (r0..r2 are event arguments).
constexpr Reg rArg0{0};   // kRecv: payload buffer object
constexpr Reg rArg1{1};   // kRecv: source node
constexpr Reg rBuf{3};    // incoming buffer alias / outgoing buffer
constexpr Reg rT0{4};
constexpr Reg rT1{5};
constexpr Reg rT2{6};
constexpr Reg rT3{7};
constexpr Reg rT4{8};
constexpr Reg rT5{9};
constexpr Reg rOut{10};   // outgoing buffer in forwarding paths
constexpr Reg rS0{14};    // scratch for stack helpers
constexpr Reg rS1{15};

// INIT shared by all role-driven apps: sources arm the send timer.
void emitSourceInit(IRBuilder& b) {
  b.beginEntry(Entry::kInit);
  auto done = b.newLabel();
  b.loadGlobal(rT0, kSlotIsSource);
  b.branchIfZero(rT0, done);
  b.loadGlobal(rT1, kSlotSendInterval);
  b.setTimer(kSendTimer, rT1);
  b.bind(done);
  b.halt();
}

// Fills the standard header of the buffer in `buf`: channel, origin =
// self, seqno from `seqnoSlot` (incremented afterwards), hops = 0.
void emitNewPacketHeader(IRBuilder& b, Reg buf, std::uint64_t channel,
                         std::uint64_t seqnoSlot) {
  emitSetFieldImm(b, buf, kFieldChannel, static_cast<std::int64_t>(channel),
                  rS0, rS1);
  b.self(rT0);
  emitSetField(b, buf, kFieldOrigin, rT0, rS1);
  b.loadGlobal(rT1, seqnoSlot);
  emitSetField(b, buf, kFieldSeqno, rT1, rS1);
  emitSetFieldImm(b, buf, kFieldHops, 0, rS0, rS1);
  b.aluImm(Op::kAdd, rT1, rT1, 1, rS1);
  b.storeGlobal(rT1, seqnoSlot);
}

void emitRearmTimer(IRBuilder& b) {
  b.loadGlobal(rT2, kSlotSendInterval);
  b.setTimer(kSendTimer, rT2);
}

// Branches to `elseWhere` unless buf[kFieldChannel] == channel.
void emitRequireChannel(IRBuilder& b, Reg buf, std::uint64_t channel,
                        IRBuilder::Label elseWhere) {
  emitGetField(b, rT0, buf, kFieldChannel, rS1);
  b.aluImm(Op::kNe, rT1, rT0, static_cast<std::int64_t>(channel), rS1);
  b.branchIfNonZero(rT1, elseWhere);
}

}  // namespace

vm::Program buildCollectApp(const CollectOptions& options) {
  IRBuilder b("collect");
  b.setGlobals(kCollectGlobals);

  emitSourceInit(b);

  // TIMER — only the source arms it: emit one data packet and re-arm.
  b.beginEntry(Entry::kTimer);
  emitAllocPacket(b, rBuf, 0, rS0);
  emitNewPacketHeader(b, rBuf, kChannelCollect, kCollectSeqno);
  b.loadGlobal(rT2, kSlotNextHop);
  emitSetField(b, rBuf, kFieldNextHop, rT2, rS1);
  emitBroadcast(b, rBuf, kHeaderCells, rS0, rS1);
  emitRearmTimer(b);
  b.halt();

  // RECV — every radio neighbour perceives the packet; only the intended
  // next hop processes it (sink accounting or multihop forwarding).
  b.beginEntry(Entry::kRecv);
  auto ignore = b.newLabel();
  auto forward = b.newLabel();
  emitRequireChannel(b, rArg0, kChannelCollect, ignore);

  emitGetField(b, rT2, rArg0, kFieldNextHop, rS1);
  b.self(rT3);
  b.alu(Op::kNe, rT4, rT2, rT3);
  b.branchIfNonZero(rT4, ignore);  // overheard only

  b.loadGlobal(rT4, kSlotIsSink);
  b.branchIfZero(rT4, forward);

  {  // Sink: account the reception, watch for duplicate / lost seqnos.
    b.loadGlobal(rT4, kCollectRecvCount);
    b.aluImm(Op::kAdd, rT4, rT4, 1, rS1);
    b.storeGlobal(rT4, kCollectRecvCount);

    emitGetField(b, rT2, rArg0, kFieldSeqno, rS1);    // seq
    b.loadGlobal(rT3, kCollectLastSeqPlus1);          // expected next seq
    b.aluImm(Op::kAdd, rT4, rT2, 1, rS1);             // seq + 1

    auto notDuplicate = b.newLabel();
    b.alu(Op::kEq, rT5, rT4, rT3);  // seq + 1 == lastSeqPlus1: seen before
    b.branchIfZero(rT5, notDuplicate);
    if (options.failOnDuplicateSeqno)
      b.fail("collect: sink observed a duplicate sequence number");
    b.loadGlobal(rT5, kCollectDupCount);
    b.aluImm(Op::kAdd, rT5, rT5, 1, rS1);
    b.storeGlobal(rT5, kCollectDupCount);
    b.bind(notDuplicate);

    if (options.failOnLostSeqno) {
      auto noLoss = b.newLabel();
      b.alu(Op::kUlt, rT5, rT3, rT2);  // expected < seq: a packet skipped
      b.branchIfZero(rT5, noLoss);
      b.fail("collect: sink observed a lost sequence number");
      b.bind(noLoss);
    }

    b.storeGlobal(rT4, kCollectLastSeqPlus1);  // seq + 1
    b.halt();
  }

  b.bind(forward);
  {  // Relay: copy the packet, bump hops, address my own next hop.
    emitAllocPacket(b, rOut, 0, rS0);
    emitCopyPacket(b, rOut, rArg0, kHeaderCells, rS0, rS1);
    emitGetField(b, rT2, rArg0, kFieldHops, rS1);
    b.aluImm(Op::kAdd, rT2, rT2, 1, rS1);
    emitSetField(b, rOut, kFieldHops, rT2, rS1);
    b.loadGlobal(rT3, kSlotNextHop);
    emitSetField(b, rOut, kFieldNextHop, rT3, rS1);
    emitBroadcast(b, rOut, kHeaderCells, rS0, rS1);
    b.loadGlobal(rT4, kCollectFwdCount);
    b.aluImm(Op::kAdd, rT4, rT4, 1, rS1);
    b.storeGlobal(rT4, kCollectFwdCount);
    b.halt();
  }

  b.bind(ignore);
  b.halt();
  return b.finish();
}

vm::Program buildFloodApp() {
  IRBuilder b("flood");
  b.setGlobals(kFloodGlobals);

  emitSourceInit(b);

  b.beginEntry(Entry::kTimer);
  emitAllocPacket(b, rBuf, 0, rS0);
  emitNewPacketHeader(b, rBuf, kChannelFlood, kFloodNextSeq);
  emitBroadcast(b, rBuf, kHeaderCells, rS0, rS1);
  emitRearmTimer(b);
  b.halt();

  b.beginEntry(Entry::kRecv);
  auto ignore = b.newLabel();
  emitRequireChannel(b, rArg0, kChannelFlood, ignore);

  emitGetField(b, rT2, rArg0, kFieldSeqno, rS1);  // seq
  b.loadGlobal(rT3, kFloodSeenMax);
  b.alu(Op::kUlt, rT4, rT2, rT3);  // seq < seenMax: already relayed
  b.branchIfNonZero(rT4, ignore);

  b.aluImm(Op::kAdd, rT4, rT2, 1, rS1);
  b.storeGlobal(rT4, kFloodSeenMax);

  emitAllocPacket(b, rOut, 0, rS0);
  emitCopyPacket(b, rOut, rArg0, kHeaderCells, rS0, rS1);
  emitGetField(b, rT3, rArg0, kFieldHops, rS1);
  b.aluImm(Op::kAdd, rT3, rT3, 1, rS1);
  emitSetField(b, rOut, kFieldHops, rT3, rS1);
  emitBroadcast(b, rOut, kHeaderCells, rS0, rS1);

  b.loadGlobal(rT4, kFloodRelayed);
  b.aluImm(Op::kAdd, rT4, rT4, 1, rS1);
  b.storeGlobal(rT4, kFloodRelayed);

  b.bind(ignore);
  b.halt();
  return b.finish();
}

vm::Program buildPingApp() {
  IRBuilder b("ping");
  b.setGlobals(kPingGlobals);

  emitSourceInit(b);

  b.beginEntry(Entry::kTimer);
  emitAllocPacket(b, rBuf, 0, rS0);
  emitNewPacketHeader(b, rBuf, kChannelPing, kPingSeqno);
  b.loadGlobal(rT2, kSlotParam);  // peer node
  emitSetField(b, rBuf, kFieldNextHop, rT2, rS1);
  emitUnicast(b, rT2, rBuf, kHeaderCells, rS0);
  emitRearmTimer(b);
  b.halt();

  b.beginEntry(Entry::kRecv);
  auto notPing = b.newLabel();
  auto done = b.newLabel();
  {  // Ping? echo a pong with the same seqno back to the sender.
    emitRequireChannel(b, rArg0, kChannelPing, notPing);
    emitAllocPacket(b, rOut, 0, rS0);
    emitCopyPacket(b, rOut, rArg0, kHeaderCells, rS0, rS1);
    emitSetFieldImm(b, rOut, kFieldChannel,
                    static_cast<std::int64_t>(kChannelPong), rS0, rS1);
    b.self(rT2);
    emitSetField(b, rOut, kFieldOrigin, rT2, rS1);
    emitUnicast(b, rArg1, rOut, kHeaderCells, rS0);
    b.loadGlobal(rT3, kPingEchoed);
    b.aluImm(Op::kAdd, rT3, rT3, 1, rS1);
    b.storeGlobal(rT3, kPingEchoed);
    b.jump(done);
  }
  b.bind(notPing);
  {  // Pong? account the reply and check it answers the latest ping.
    emitRequireChannel(b, rArg0, kChannelPong, done);
    b.loadGlobal(rT2, kPingReplies);
    b.aluImm(Op::kAdd, rT2, rT2, 1, rS1);
    b.storeGlobal(rT2, kPingReplies);

    emitGetField(b, rT3, rArg0, kFieldSeqno, rS1);
    b.loadGlobal(rT4, kPingSeqno);
    b.aluImm(Op::kSub, rT4, rT4, 1, rS1);  // last seq sent
    auto match = b.newLabel();
    b.alu(Op::kEq, rT5, rT3, rT4);
    b.branchIfNonZero(rT5, match);
    b.loadGlobal(rT5, kPingMismatches);
    b.aluImm(Op::kAdd, rT5, rT5, 1, rS1);
    b.storeGlobal(rT5, kPingMismatches);
    b.bind(match);
  }
  b.bind(done);
  b.halt();
  return b.finish();
}

vm::Program buildHelloApp() {
  IRBuilder b("hello");
  b.setGlobals(kHelloGlobals);

  // Every node beacons (no role gate): neighbour discovery is symmetric.
  b.beginEntry(Entry::kInit);
  b.loadGlobal(rT1, kSlotSendInterval);
  b.setTimer(kSendTimer, rT1);
  b.halt();

  b.beginEntry(Entry::kTimer);
  emitAllocPacket(b, rBuf, 0, rS0);
  emitNewPacketHeader(b, rBuf, kChannelHello, kHelloSent);
  emitBroadcast(b, rBuf, kHeaderCells, rS0, rS1);
  emitRearmTimer(b);
  b.halt();

  b.beginEntry(Entry::kRecv);
  auto ignore = b.newLabel();
  emitRequireChannel(b, rArg0, kChannelHello, ignore);
  emitGetField(b, rT2, rArg0, kFieldOrigin, rS1);  // heard neighbour id
  b.constant(rT3, 1);
  b.alu(Op::kShl, rT3, rT3, rT2);  // 1 << origin
  b.loadGlobal(rT4, kHelloBitmap);
  b.alu(Op::kOr, rT4, rT4, rT3);
  b.storeGlobal(rT4, kHelloBitmap);
  b.bind(ignore);
  b.halt();
  return b.finish();
}

vm::Program buildSensorApp(const SensorOptions& options) {
  IRBuilder b("sensor");
  b.setGlobals(kSensorGlobals);

  emitSourceInit(b);

  // TIMER — the source samples a fresh *symbolic* reading per packet.
  b.beginEntry(Entry::kTimer);
  emitAllocPacket(b, rBuf, /*dataCells=*/1, rS0);
  emitNewPacketHeader(b, rBuf, kChannelSensor, kSensorSeqno);
  b.loadGlobal(rT2, kSlotNextHop);
  emitSetField(b, rBuf, kFieldNextHop, rT2, rS1);
  b.makeSymbolic(rT3, "reading", 8);
  emitSetField(b, rBuf, kFieldData, rT3, rS1);
  emitBroadcast(b, rBuf, kHeaderCells + 1, rS0, rS1);
  emitRearmTimer(b);
  b.halt();

  b.beginEntry(Entry::kRecv);
  auto ignore = b.newLabel();
  auto relay = b.newLabel();
  emitRequireChannel(b, rArg0, kChannelSensor, ignore);
  emitGetField(b, rT2, rArg0, kFieldNextHop, rS1);
  b.self(rT3);
  b.alu(Op::kNe, rT4, rT2, rT3);
  b.branchIfNonZero(rT4, ignore);  // overheard only

  emitGetField(b, rT5, rArg0, kFieldData, rS1);  // the (symbolic) reading
  b.loadGlobal(rT4, kSlotIsSink);
  b.branchIfZero(rT4, relay);

  {  // Sink: classify the reading — a symbolic branch whose condition
     // contains the *source's* variable (cross-node constraint).
    b.storeGlobal(rT5, kSensorLastReading);
    auto alarm = b.newLabel();
    auto done = b.newLabel();
    b.aluImm(Op::kUlt, rT4, rT5,
             static_cast<std::int64_t>(options.alarmThreshold), rS1);
    b.branchIfZero(rT4, alarm);  // reading >= threshold
    b.loadGlobal(rT4, kSensorNormal);
    b.aluImm(Op::kAdd, rT4, rT4, 1, rS1);
    b.storeGlobal(rT4, kSensorNormal);
    b.jump(done);
    b.bind(alarm);
    b.loadGlobal(rT4, kSensorAlarms);
    b.aluImm(Op::kAdd, rT4, rT4, 1, rS1);
    b.storeGlobal(rT4, kSensorAlarms);
    b.bind(done);
    b.halt();
  }

  b.bind(relay);
  {  // Relay: filter zero readings (another data-dependent branch),
     // forward the rest along the static route.
    auto forward = b.newLabel();
    b.branchIfNonZero(rT5, forward);
    b.loadGlobal(rT4, kSensorFiltered);
    b.aluImm(Op::kAdd, rT4, rT4, 1, rS1);
    b.storeGlobal(rT4, kSensorFiltered);
    b.halt();
    b.bind(forward);
    emitAllocPacket(b, rOut, /*dataCells=*/1, rS0);
    emitCopyPacket(b, rOut, rArg0, kHeaderCells + 1, rS0, rS1);
    emitGetField(b, rT2, rArg0, kFieldHops, rS1);
    b.aluImm(Op::kAdd, rT2, rT2, 1, rS1);
    emitSetField(b, rOut, kFieldHops, rT2, rS1);
    b.loadGlobal(rT3, kSlotNextHop);
    emitSetField(b, rOut, kFieldNextHop, rT3, rS1);
    emitBroadcast(b, rOut, kHeaderCells + 1, rS0, rS1);
    b.halt();
  }

  b.bind(ignore);
  b.halt();
  return b.finish();
}

std::vector<BootAssignment> collectBootGlobals(
    const net::Topology& topology, const net::RoutingTable& routing,
    net::NodeId source, std::uint64_t sendInterval) {
  std::vector<BootAssignment> result;
  for (net::NodeId node = 0; node < topology.numNodes(); ++node) {
    result.push_back({node, kSlotNextHop, routing.nextHop(node)});
    result.push_back({node, kSlotSendInterval, sendInterval});
    if (node == source) result.push_back({node, kSlotIsSource, 1});
    if (node == routing.sink()) result.push_back({node, kSlotIsSink, 1});
  }
  return result;
}

std::vector<BootAssignment> floodBootGlobals(const net::Topology& topology,
                                             net::NodeId source,
                                             std::uint64_t sendInterval) {
  std::vector<BootAssignment> result;
  for (net::NodeId node = 0; node < topology.numNodes(); ++node)
    result.push_back({node, kSlotSendInterval, sendInterval});
  result.push_back({source, kSlotIsSource, 1});
  return result;
}

std::vector<BootAssignment> pingBootGlobals(net::NodeId pinger,
                                            net::NodeId responder,
                                            std::uint64_t sendInterval) {
  return {
      {pinger, kSlotIsSource, 1},
      {pinger, kSlotParam, responder},
      {pinger, kSlotSendInterval, sendInterval},
      {responder, kSlotParam, pinger},
      {responder, kSlotSendInterval, sendInterval},
  };
}

}  // namespace sde::rime
