#include "rime/stack.hpp"

namespace sde::rime {

using vm::Op;

void emitAllocPacket(IRBuilder& b, Reg buf, std::uint64_t dataCells,
                     Reg scratch) {
  b.constant(scratch, static_cast<std::int64_t>(kHeaderCells + dataCells));
  b.alloc(buf, scratch);
}

void emitSetField(IRBuilder& b, Reg buf, std::uint64_t field, Reg value,
                  Reg scratch) {
  b.constant(scratch, static_cast<std::int64_t>(field));
  b.store(value, buf, scratch);
}

void emitSetFieldImm(IRBuilder& b, Reg buf, std::uint64_t field,
                     std::int64_t value, Reg scratchValue, Reg scratchIndex) {
  b.constant(scratchValue, value);
  emitSetField(b, buf, field, scratchValue, scratchIndex);
}

void emitGetField(IRBuilder& b, Reg dst, Reg buf, std::uint64_t field,
                  Reg scratch) {
  b.constant(scratch, static_cast<std::int64_t>(field));
  b.load(dst, buf, scratch);
}

void emitCopyPacket(IRBuilder& b, Reg dstBuf, Reg srcBuf, std::uint64_t cells,
                    Reg scratchValue, Reg scratchIndex) {
  // Cell counts are small compile-time constants; unrolled copies keep
  // the handler free of loop branches.
  for (std::uint64_t i = 0; i < cells; ++i) {
    b.constant(scratchIndex, static_cast<std::int64_t>(i));
    b.load(scratchValue, srcBuf, scratchIndex);
    b.store(scratchValue, dstBuf, scratchIndex);
  }
}

void emitUnicast(IRBuilder& b, Reg dstNode, Reg buf, std::uint64_t cells,
                 Reg scratch) {
  b.constant(scratch, static_cast<std::int64_t>(cells));
  b.send(dstNode, buf, scratch);
}

void emitBroadcast(IRBuilder& b, Reg buf, std::uint64_t cells, Reg scratchDst,
                   Reg scratchLen) {
  b.constant(scratchDst, static_cast<std::int64_t>(kBroadcastDst));
  b.constant(scratchLen, static_cast<std::int64_t>(cells));
  b.send(scratchDst, buf, scratchLen);
}

}  // namespace sde::rime
