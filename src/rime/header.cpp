#include "rime/header.hpp"

// Anchor TU; all definitions are compile-time constants.
namespace sde::rime {

static_assert(kBroadcastDst == net::kBroadcastAddress,
              "rime broadcast sentinel must match the engine's");
static_assert(kFieldData == kHeaderCells, "data follows the header");

}  // namespace sde::rime
