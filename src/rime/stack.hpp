// Code-generation helpers for the Rime-like stack: packet buffer
// management, header field access, unicast/broadcast primitives. These
// emit instruction sequences into an IRBuilder; applications compose
// them into handlers. Register convention: helpers clobber only the
// registers the caller passes in.
#pragma once

#include "rime/header.hpp"
#include "vm/builder.hpp"

namespace sde::rime {

using vm::IRBuilder;
using vm::Reg;

// r[buf] = fresh packet buffer of kHeaderCells + dataCells cells.
void emitAllocPacket(IRBuilder& b, Reg buf, std::uint64_t dataCells,
                     Reg scratch);

// buf[field] = r[value].
void emitSetField(IRBuilder& b, Reg buf, std::uint64_t field, Reg value,
                  Reg scratch);
// buf[field] = imm.
void emitSetFieldImm(IRBuilder& b, Reg buf, std::uint64_t field,
                     std::int64_t value, Reg scratchValue, Reg scratchIndex);
// r[dst] = buf[field].
void emitGetField(IRBuilder& b, Reg dst, Reg buf, std::uint64_t field,
                  Reg scratch);

// Copies header+data cells [0, cells) from src buffer to dst buffer.
void emitCopyPacket(IRBuilder& b, Reg dstBuf, Reg srcBuf, std::uint64_t cells,
                    Reg scratchValue, Reg scratchIndex);

// Transmits r[buf] (cells total) to the concrete node in r[dstNode].
void emitUnicast(IRBuilder& b, Reg dstNode, Reg buf, std::uint64_t cells,
                 Reg scratch);
// Transmits r[buf] to the radio neighbourhood.
void emitBroadcast(IRBuilder& b, Reg buf, std::uint64_t cells, Reg scratchDst,
                   Reg scratchLen);

}  // namespace sde::rime
