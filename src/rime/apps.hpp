// Node applications for the evaluation scenarios, authored in VM
// bytecode against the Rime-like stack:
//
//  * collect  — the paper's scenario (§IV-A): a source emits a data
//    packet every interval; each transmission is broadcast (perceived by
//    all radio neighbours) and carries the intended next hop, which
//    forwards it along the preconfigured static route to the sink.
//  * flood    — network flooding, the paper's adversarial case (§IV-C).
//  * ping     — two-party request/response (quickstart example).
//
// Each program reads its role (source/sink/next hop/interval) from the
// reserved boot-configuration globals (rime/header.hpp).
#pragma once

#include <vector>

#include "net/routing.hpp"
#include "rime/header.hpp"
#include "vm/program.hpp"

namespace sde::rime {

// --- Applications --------------------------------------------------------------

struct CollectOptions {
  // Sink raises an assertion failure when it observes the same sequence
  // number twice (exposed to the duplicate failure model; the bug-hunt
  // example uses this).
  bool failOnDuplicateSeqno = false;
  // Sink raises an assertion failure when a sequence number is skipped
  // (exposed to the drop failure model).
  bool failOnLostSeqno = false;
};

[[nodiscard]] vm::Program buildCollectApp(const CollectOptions& options = {});
[[nodiscard]] vm::Program buildFloodApp();
[[nodiscard]] vm::Program buildPingApp();

// Neighbour discovery (§IV-C lists it among the flooding-like protocols
// that stress SDE): every node periodically broadcasts HELLO and records
// the senders it hears in a bitmap. Supports networks up to 64 nodes.
[[nodiscard]] vm::Program buildHelloApp();

// Sensor reporting with a *symbolic payload*: the source samples a
// symbolic 8-bit reading per packet and streams it along the static
// route. Relays filter zero readings (a data-dependent symbolic branch),
// the sink classifies readings above the alarm threshold (another one).
// This couples constraints across nodes: the sink's path condition
// mentions the source's symbolic variable, exercising joint
// (dscenario-level) test-case generation.
struct SensorOptions {
  std::uint64_t alarmThreshold = 200;
};
[[nodiscard]] vm::Program buildSensorApp(const SensorOptions& options = {});

// Observable application state (globals slots, app region).
inline constexpr std::uint64_t kCollectSeqno = kAppGlobalsBase + 0;
inline constexpr std::uint64_t kCollectRecvCount = kAppGlobalsBase + 1;
inline constexpr std::uint64_t kCollectLastSeqPlus1 = kAppGlobalsBase + 2;
inline constexpr std::uint64_t kCollectFwdCount = kAppGlobalsBase + 3;
inline constexpr std::uint64_t kCollectDupCount = kAppGlobalsBase + 4;
inline constexpr std::uint64_t kCollectGlobals = kAppGlobalsBase + 5;

inline constexpr std::uint64_t kFloodNextSeq = kAppGlobalsBase + 0;  // source
inline constexpr std::uint64_t kFloodSeenMax = kAppGlobalsBase + 1;
inline constexpr std::uint64_t kFloodRelayed = kAppGlobalsBase + 2;
inline constexpr std::uint64_t kFloodGlobals = kAppGlobalsBase + 3;

inline constexpr std::uint64_t kHelloBitmap = kAppGlobalsBase + 0;
inline constexpr std::uint64_t kHelloSent = kAppGlobalsBase + 1;
inline constexpr std::uint64_t kHelloGlobals = kAppGlobalsBase + 2;

inline constexpr std::uint64_t kSensorSeqno = kAppGlobalsBase + 0;  // source
inline constexpr std::uint64_t kSensorAlarms = kAppGlobalsBase + 1;   // sink
inline constexpr std::uint64_t kSensorNormal = kAppGlobalsBase + 2;   // sink
inline constexpr std::uint64_t kSensorLastReading = kAppGlobalsBase + 3;
inline constexpr std::uint64_t kSensorFiltered = kAppGlobalsBase + 4;  // relay
inline constexpr std::uint64_t kSensorGlobals = kAppGlobalsBase + 5;

inline constexpr std::uint64_t kPingSeqno = kAppGlobalsBase + 0;
inline constexpr std::uint64_t kPingReplies = kAppGlobalsBase + 1;
inline constexpr std::uint64_t kPingMismatches = kAppGlobalsBase + 2;
inline constexpr std::uint64_t kPingEchoed = kAppGlobalsBase + 3;  // responder
inline constexpr std::uint64_t kPingGlobals = kAppGlobalsBase + 4;

// --- Scenario wiring -------------------------------------------------------------

struct BootAssignment {
  net::NodeId node = 0;
  std::uint64_t slot = 0;
  std::uint64_t value = 0;
};

// Boot globals for the paper's collect scenario: static next hops toward
// the sink, source/sink roles, and the send interval.
[[nodiscard]] std::vector<BootAssignment> collectBootGlobals(
    const net::Topology& topology, const net::RoutingTable& routing,
    net::NodeId source, std::uint64_t sendInterval);

// Boot globals for flooding from `source`.
[[nodiscard]] std::vector<BootAssignment> floodBootGlobals(
    const net::Topology& topology, net::NodeId source,
    std::uint64_t sendInterval);

// Boot globals for ping between two adjacent nodes.
[[nodiscard]] std::vector<BootAssignment> pingBootGlobals(
    net::NodeId pinger, net::NodeId responder, std::uint64_t sendInterval);

}  // namespace sde::rime
