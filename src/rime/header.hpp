// Packet and configuration conventions of the Rime-like stack.
//
// Contiki's Rime identifies logical connections by 16-bit channel
// numbers and stacks thin header layers onto packets; our packets are
// cell-granular, so the "header" is a fixed prefix of cells. Node role
// and routing configuration reach programs through reserved globals
// slots written by Engine::setBootGlobal before boot — the analogue of
// the paper's preconfigured static routes (Figure 9).
#pragma once

#include <cstdint>

#include "net/packet.hpp"

namespace sde::rime {

// --- Packet header cells -----------------------------------------------------
inline constexpr std::uint64_t kFieldChannel = 0;
inline constexpr std::uint64_t kFieldOrigin = 1;   // originating node
inline constexpr std::uint64_t kFieldSeqno = 2;
inline constexpr std::uint64_t kFieldHops = 3;
inline constexpr std::uint64_t kFieldNextHop = 4;  // intended forwarder
inline constexpr std::uint64_t kHeaderCells = 5;
inline constexpr std::uint64_t kFieldData = 5;     // first payload cell

// --- Channels (Rime convention: >= 128 for applications) ---------------------
inline constexpr std::uint64_t kChannelCollect = 130;
inline constexpr std::uint64_t kChannelFlood = 131;
inline constexpr std::uint64_t kChannelPing = 132;
inline constexpr std::uint64_t kChannelPong = 133;
inline constexpr std::uint64_t kChannelHello = 134;   // neighbour discovery
inline constexpr std::uint64_t kChannelSensor = 135;  // symbolic readings

// --- Boot-configuration globals slots ----------------------------------------
inline constexpr std::uint64_t kSlotNextHop = 0;       // static route
inline constexpr std::uint64_t kSlotIsSource = 1;
inline constexpr std::uint64_t kSlotIsSink = 2;
inline constexpr std::uint64_t kSlotSendInterval = 3;  // virtual time units
inline constexpr std::uint64_t kSlotParam = 4;         // app-specific
// Applications own slots kAppGlobalsBase and up.
inline constexpr std::uint64_t kAppGlobalsBase = 8;

// --- Timers --------------------------------------------------------------------
inline constexpr std::uint32_t kSendTimer = 1;

// Broadcast destination understood by the engine (expanded into a series
// of unicasts to the radio neighbourhood, paper §II-B footnote 1).
inline constexpr std::uint64_t kBroadcastDst = 0xffffffffull;

}  // namespace sde::rime
