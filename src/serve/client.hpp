// Blocking client for the exploration service — the sde_submit tool and
// the e2e tests both speak through this, so the wire protocol has
// exactly one client implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace sde::serve {

class Client {
 public:
  // Connects immediately; throws ServeError when nobody listens.
  explicit Client(const std::string& socketPath);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // One request/reply round trip. Throws ServeError on transport
  // failure or a malformed reply; an ErrorReply from the daemon is
  // returned, not thrown (the caller decides severity).
  [[nodiscard]] Message call(const Message& request);

  // Convenience verbs. Each throws ServeError on daemon-side rejection
  // (carrying the daemon's message).
  [[nodiscard]] std::uint64_t submit(const SubmitRequest& request);
  [[nodiscard]] std::vector<JobStatus> status(std::uint64_t jobId = 0);
  // Streams progress frames into `onProgress` until the final one;
  // returns the final status.
  [[nodiscard]] JobStatus watch(
      std::uint64_t jobId,
      const std::function<void(const JobStatus&)>& onProgress = nullptr);
  [[nodiscard]] JobState cancel(std::uint64_t jobId);
  [[nodiscard]] std::vector<std::string> listArtifacts(std::uint64_t jobId);
  [[nodiscard]] std::string fetch(std::uint64_t jobId,
                                  const std::string& name);
  // Live telemetry: jobId 0 = whole service, else that job (see
  // MetricsRequest in protocol.hpp).
  [[nodiscard]] MetricsReply metrics(std::uint64_t jobId = 0);
  void shutdownDaemon();

 private:
  [[nodiscard]] Message recv();
  int fd_ = -1;
};

// Polls `socketPath` until a daemon accepts a connection or the timeout
// elapses. True on success — used by tools and tests that just started
// the daemon process.
[[nodiscard]] bool waitForDaemon(const std::string& socketPath,
                                 double timeoutSeconds);

}  // namespace sde::serve
