// The durable results store: atomic artifact publication, sanitised
// fetch, and retention.
//
// A finished job's artifacts (digest.txt, summary.txt, testcases.txt,
// merged.trc, trace.json, job.sde) are produced into a temp directory
// and renamed to `result/` in one shot — readers either see no result
// or a complete one, the same all-or-nothing discipline every other SDE
// artifact follows. `result/` existing IS the job's done-ness (see
// job.hpp), so publication and state transition are a single atomic
// rename; a crash at any point leaves the job resumable.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace sde::serve {

// Produces artifacts via `producer` (which writes files into the temp
// directory it is handed), then atomically renames the directory to
// <jobDir>/result. Throws ServeError on I/O failure; an existing
// result/ wins (first publisher takes it, the temp dir is discarded).
void publishResult(
    const std::filesystem::path& jobDir,
    const std::function<void(const std::filesystem::path& stage)>& producer);

// Artifact names in result/, sorted. Empty when not done.
[[nodiscard]] std::vector<std::string> listArtifacts(
    const std::filesystem::path& jobDir);

// Reads one artifact. Rejects names with path separators or "..";
// nullopt when absent. `maxBytes` bounds the read (wire frames cap out
// — a larger artifact should be fetched out of band from the job dir).
[[nodiscard]] std::optional<std::string> readArtifact(
    const std::filesystem::path& jobDir, const std::string& name,
    std::size_t maxBytes = 48u << 20);

// Retention: keeps the newest `keepLast` terminal jobs (by job id) and
// deletes the whole job directory of older terminal ones. Running,
// queued and suspended jobs are never touched. Returns the pruned ids.
// keepLast == 0 disables pruning.
[[nodiscard]] std::vector<std::uint64_t> pruneResults(
    const std::filesystem::path& root, std::size_t keepLast);

}  // namespace sde::serve
