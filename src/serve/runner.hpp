// The job runner: a forked child that executes one scenario job as a
// multi-process fleet and publishes its artifacts.
//
// Process shape: daemon -> runner (this file) -> fleet coordinator ->
// fleet workers. The runner IS the fleet coordinator process (it calls
// trace::runCollectFleet directly); the extra fork from the daemon
// exists so (a) a SIGTERM preempts exactly one job, (b) a crashing job
// cannot take the daemon down, and (c) PR_SET_PDEATHSIG turns daemon
// death into a graceful fleet-wide suspend instead of an orphan fleet.
//
// Exit codes are the runner's whole status protocol:
//   0  done — artifacts published atomically to result/
//   3  suspended — fleet checkpoints in queue/, job resumable
//   4  failed — error.txt written with the reason
//   5  refused — another runner holds the job lock (orphan race)
#pragma once

#include <sys/types.h>

#include <filesystem>

#include "serve/job.hpp"

namespace sde::serve {

inline constexpr int kRunnerDone = 0;
inline constexpr int kRunnerSuspended = 3;
inline constexpr int kRunnerFailed = 4;
inline constexpr int kRunnerLocked = 5;

// Executes the job synchronously in THIS process (call it in a freshly
// forked child) and returns the exit code to _exit with. Never throws.
[[nodiscard]] int runJobInProcess(const std::filesystem::path& jobDir,
                                  const JobSpec& spec);

// Forks a runner for `jobDir`: the child takes the job flock, arms
// PDEATHSIG(SIGTERM), runs runJobInProcess and _exits with its code.
// Returns the child pid; throws ServeError if fork fails.
[[nodiscard]] pid_t spawnRunner(const std::filesystem::path& jobDir,
                                const JobSpec& spec);

// Fleet partition jobs this spec explodes into (2^vars), 0 for an
// undecodable spec. The daemon uses it for progress fractions.
[[nodiscard]] std::uint32_t fleetJobsOf(const JobSpec& spec);

// Deterministic POSIX shm name ("/sde_mx_<hash>") of the job's live
// metrics plane, derived from the job directory path. The runner passes
// it to the fleet and the daemon attaches by recomputing it — no name
// ever crosses the wire or touches disk.
[[nodiscard]] std::string metricsShmNameFor(
    const std::filesystem::path& jobDir);

}  // namespace sde::serve
