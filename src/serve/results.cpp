#include "serve/results.hpp"

#include <algorithm>
#include <fstream>

namespace sde::serve {

namespace fs = std::filesystem;

void publishResult(
    const fs::path& jobDir,
    const std::function<void(const fs::path& stage)>& producer) {
  const fs::path target = jobResultDir(jobDir);
  const fs::path stage = jobDir / "result.tmp";
  std::error_code ec;
  fs::remove_all(stage, ec);  // leftover from a crashed publisher
  fs::create_directories(stage);
  producer(stage);
  if (fs::exists(target)) {
    // Someone already published (a racing resume after a daemon
    // restart): first one wins, ours is identical by the digest
    // contract anyway.
    fs::remove_all(stage, ec);
    return;
  }
  fs::rename(stage, target, ec);
  if (ec)
    throw ServeError("cannot publish result for " + jobDir.string() + ": " +
                     ec.message());
}

std::vector<std::string> listArtifacts(const fs::path& jobDir) {
  std::vector<std::string> names;
  const fs::path dir = jobResultDir(jobDir);
  if (!fs::exists(dir)) return names;
  for (const auto& entry : fs::directory_iterator(dir))
    if (entry.is_regular_file())
      names.push_back(entry.path().filename().string());
  std::sort(names.begin(), names.end());
  return names;
}

std::optional<std::string> readArtifact(const fs::path& jobDir,
                                        const std::string& name,
                                        std::size_t maxBytes) {
  if (name.empty() || name.find('/') != std::string::npos ||
      name.find('\\') != std::string::npos || name == "." || name == ".." ||
      name.find("..") != std::string::npos)
    return std::nullopt;  // not a plain artifact name
  const fs::path path = jobResultDir(jobDir) / name;
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::string bytes;
  bytes.resize(maxBytes + 1);
  is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  bytes.resize(static_cast<std::size_t>(is.gcount()));
  if (bytes.size() > maxBytes)
    throw ServeError("artifact " + name + " exceeds the fetch limit");
  return bytes;
}

std::vector<std::uint64_t> pruneResults(const fs::path& root,
                                        std::size_t keepLast) {
  std::vector<std::uint64_t> pruned;
  if (keepLast == 0) return pruned;
  const std::map<std::uint64_t, JobRecord> jobs = loadJobs(root);
  std::vector<std::uint64_t> terminal;
  for (const auto& [id, record] : jobs)
    if (terminalJobState(record.state)) terminal.push_back(id);
  if (terminal.size() <= keepLast) return pruned;
  // std::map iterates in ascending id order, so `terminal` is oldest
  // first; drop everything before the keepLast newest.
  terminal.resize(terminal.size() - keepLast);
  for (const std::uint64_t id : terminal) {
    std::error_code ec;
    fs::remove_all(jobDir(root, id), ec);
    if (!ec) pruned.push_back(id);
  }
  return pruned;
}

}  // namespace sde::serve
