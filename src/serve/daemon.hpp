// The exploration service daemon: one poll loop owning the Unix socket,
// the job registry, the WFQ scheduler and the runner processes.
//
// Crash-safety inventory (what each failure costs):
//   * daemon SIGKILL — runners notice via PDEATHSIG(SIGTERM), suspend
//     their fleets (one checkpoint write each) and exit; the restarted
//     daemon rebuilds the registry from the job directories and
//     reschedules. No accepted job is lost: spec.sde is written
//     atomically BEFORE SubmitReply goes out.
//   * runner SIGKILL — the fleet's own crash story applies (durable
//     queue, .done short-circuit); the daemon sees the death and
//     reschedules, the re-run resumes from checkpoints.
//   * client vanishes — its fd errors out of the poll set; watches die
//     with it, jobs do not (jobs belong to the registry, not to the
//     connection that submitted them).
//
// Scheduling is delegated to the pure Scheduler (scheduler.hpp); the
// daemon's tick translates its decisions into fork/SIGTERM, reaps
// children with waitpid(WNOHANG), derives job states from disk, tails
// running jobs' trace files (obs/tail.hpp) for live progress frames,
// and applies retention after each completion.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/tail.hpp"
#include "serve/job.hpp"
#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "serve/wire.hpp"

namespace sde::serve {

struct ServeConfig {
  std::string root;        // service root (jobs/, socket default home)
  std::string socketPath;  // empty: <root>/serve.sock
  unsigned slots = 4;      // fleet worker slots shared across all jobs
  std::size_t retainJobs = 0;  // terminal jobs kept on disk; 0 = all
  std::map<std::string, TenantPolicy> tenants;
  unsigned pollMs = 50;  // tick cadence (scheduler + progress)
};

class Daemon {
 public:
  explicit Daemon(ServeConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Runs until a ShutdownRequest frame or SIGTERM/SIGINT. On the way
  // out every runner is SIGTERMed (graceful fleet suspend) and reaped,
  // so "stop the daemon" never costs exploration either.
  void run();

  [[nodiscard]] const std::string& socketPath() const { return socketPath_; }

 private:
  struct Client {
    int fd = -1;
    FrameBuffer frames;
    bool watching = false;
    std::uint64_t watchJobId = 0;
  };
  struct RunningJob {
    pid_t pid = -1;
    std::chrono::steady_clock::time_point lastCharge;
    bool preempting = false;
    // Live progress: one tailer per fleet worker trace file, recreated
    // whenever the runner (re)starts because resume truncates them.
    std::map<std::string, std::unique_ptr<obs::TraceTailer>> tailers;
  };

  void tick();
  void reapRunners();
  void schedule();
  void startJob(std::uint64_t jobId);
  void preemptJob(std::uint64_t jobId);
  void refreshProgress();
  void pushProgress();
  void acceptClients();
  void serviceClient(Client& client);
  void handleMessage(Client& client, const Message& message);
  void handleMetricsRequest(Client& client, const MetricsRequest& request);
  void noteTenant(const std::string& tenant);
  void refreshSlotGauges();
  [[nodiscard]] JobStatus statusOf(const JobRecord& record);
  void sendTo(Client& client, const Message& message);
  void shutdownRunners();

  ServeConfig config_;
  std::string socketPath_;
  int listenFd_ = -1;
  bool stopping_ = false;
  Scheduler scheduler_;
  std::map<std::uint64_t, JobRecord> jobs_;
  std::uint64_t nextId_ = 1;
  std::map<std::uint64_t, RunningJob> running_;
  std::vector<std::unique_ptr<Client>> clients_;
  // Cached live counters per running job (survive until the next
  // refresh; terminal states keep the last observed values).
  std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      liveCounters_;  // jobId -> {eventsSeen, statesSeen}
  // Service accounting (obs/metrics.hpp): per-tenant queue-wait
  // histograms, run slot-milliseconds, preemptions and slot-occupancy
  // gauges. A MetricsRequest with jobId 0 merges this registry with the
  // live shm planes of every running fleet.
  obs::MetricsRegistry metrics_;
  std::set<std::string> metricTenants_;  // tenants with gauges to refresh
  // When each runnable job last (re)entered the queue — feeds the
  // tenant queue_wait_ms histogram on start.
  std::map<std::uint64_t, std::chrono::steady_clock::time_point>
      queuedSince_;
};

}  // namespace sde::serve
