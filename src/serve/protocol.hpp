// Message vocabulary of the exploration service, one layer above the
// byte frames of wire.hpp.
//
// Every frame payload is `u8 message tag | fields`, encoded with the
// same snapshot::Writer primitives as every durable SDE file — the wire
// and the disk speak one dialect. Decoding is total: a malformed
// payload (unknown tag, truncated fields, implausible string length)
// raises ServeError with a message the daemon ships back verbatim in an
// ErrorReply, so a confused client learns *what* was wrong instead of
// getting a dropped connection.
//
// Request/reply pairing:
//   SubmitRequest   -> SubmitReply | ErrorReply
//   StatusRequest   -> StatusReply | ErrorReply
//   WatchRequest    -> ProgressFrame... (last one has final=true)
//   CancelRequest   -> CancelReply | ErrorReply
//   ListArtifacts   -> ArtifactList | ErrorReply
//   FetchRequest    -> ArtifactReply | ErrorReply
//   MetricsRequest  -> MetricsReply | ErrorReply
//   ShutdownRequest -> ShutdownReply (then the daemon drains and exits)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "serve/wire.hpp"

namespace sde::serve {

// Lifecycle of a job. Queued and Suspended are both runnable (Suspended
// additionally holds fleet checkpoints); Done/Failed/Cancelled are
// terminal.
enum class JobState : std::uint8_t {
  kQueued = 1,
  kRunning,
  kSuspended,
  kDone,
  kFailed,
  kCancelled,
};
[[nodiscard]] std::string_view jobStateName(JobState state);
[[nodiscard]] bool terminalJobState(JobState state);

struct SubmitRequest {
  std::string tenant;
  std::uint32_t priority = 0;   // higher runs first, may preempt lower
  std::uint32_t processes = 1;  // fleet worker slots the job occupies
  std::string scenarioSpec;     // trace::encodeCollectScenarioSpec output
  bool collectTestcases = false;
};

struct SubmitReply {
  std::uint64_t jobId = 0;
};

struct ErrorReply {
  std::string message;
};

struct StatusRequest {
  std::uint64_t jobId = 0;  // 0: all jobs
};

struct JobStatus {
  std::uint64_t jobId = 0;
  std::string tenant;
  std::uint32_t priority = 0;
  std::uint32_t processes = 1;
  JobState state = JobState::kQueued;
  std::uint32_t partsDone = 0;   // fleet partition jobs completed
  std::uint32_t partsTotal = 0;  // 2^partitionVariables
  std::uint64_t eventsSeen = 0;  // live, from tailing worker traces
  std::uint64_t statesSeen = 0;
  std::uint64_t digest = 0;  // fingerprint digest once done, else 0
  std::string error;         // failure reason once failed
};

struct StatusReply {
  std::vector<JobStatus> jobs;
};

struct WatchRequest {
  std::uint64_t jobId = 0;
};

struct ProgressFrame {
  JobStatus status;
  bool final = false;  // terminal state reached; stream ends here
};

struct CancelRequest {
  std::uint64_t jobId = 0;
};

struct CancelReply {
  JobState state = JobState::kCancelled;  // state after the cancel
};

struct ListArtifactsRequest {
  std::uint64_t jobId = 0;
};

struct ArtifactList {
  std::vector<std::string> names;
};

struct FetchRequest {
  std::uint64_t jobId = 0;
  std::string name;
};

struct ArtifactReply {
  std::string name;
  std::string bytes;
};

struct ShutdownRequest {};
struct ShutdownReply {};

// Live telemetry fetch. jobId 0 asks for the whole service (daemon
// accounting merged with the live shm planes of every running fleet);
// a specific id returns that job's metrics — its durable metrics.sde
// for completed jobs (bit-exact against the post-run merged
// StatsRegistry), its live plane while running.
struct MetricsRequest {
  std::uint64_t jobId = 0;
};

struct MetricsReply {
  // Prometheus text exposition (obs::renderPrometheus).
  std::string prometheus;
  // The same snapshot in the binary snapshot dialect
  // (obs::encodeMetricsSnapshot) for programmatic consumers.
  std::string snapshot;
};

using Message =
    std::variant<SubmitRequest, SubmitReply, ErrorReply, StatusRequest,
                 StatusReply, WatchRequest, ProgressFrame, CancelRequest,
                 CancelReply, ListArtifactsRequest, ArtifactList, FetchRequest,
                 ArtifactReply, ShutdownRequest, ShutdownReply, MetricsRequest,
                 MetricsReply>;

[[nodiscard]] std::string encodeMessage(const Message& message);
// Throws ServeError on any malformed payload.
[[nodiscard]] Message decodeMessage(const std::string& payload);

}  // namespace sde::serve
