#include "serve/runner.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include <csignal>
#include <exception>
#include <fstream>
#include <sstream>

#include "obs/chrome_export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_io.hpp"
#include "serve/results.hpp"
#include "snapshot/manifest.hpp"
#include "support/hash.hpp"
#include "trace/scenario.hpp"

namespace sde::serve {

namespace fs = std::filesystem;

namespace {

void writeErrorFile(const fs::path& jobDir, const std::string& message) {
  try {
    snapshot::atomicWriteFile(jobErrorPath(jobDir),
                              [&](std::ostream& os) { os << message << "\n"; });
  } catch (...) {
    // Out of options; the daemon will see the non-zero exit either way.
  }
}

void publishArtifacts(const fs::path& jobDir, const JobSpec& spec,
                      const FleetResult& fleet) {
  publishResult(jobDir, [&](const fs::path& stage) {
    {
      std::ofstream os(stage / "digest.txt");
      os << fleet.result.fingerprintDigest() << "\n";
    }
    {
      std::ofstream os(stage / "summary.txt");
      os << "outcome " << runOutcomeName(fleet.result.outcome) << "\n"
         << "tenant " << spec.tenant << "\n"
         << "states " << fleet.result.totalStates << "\n"
         << "events " << fleet.result.totalEvents << "\n"
         << "scenarios " << fleet.result.totalScenariosOwned << "\n"
         << "parts " << fleet.result.jobs.size() << "\n"
         << "processes " << fleet.processes << "\n"
         << "wall_seconds " << fleet.result.wallSeconds << "\n";
    }
    if (spec.collectTestcases) {
      std::ofstream os(stage / "testcases.txt");
      for (const std::string& testcase : fleet.result.testcases)
        os << testcase << "\n";
    }
    {
      // The merged post-run counters, human-readable and binary. The
      // binary snapshot is the SAME bytes the fleet wrote to
      // queue/metrics.sde (stats lifted verbatim + live-plane extras),
      // which is what makes a daemon-side metrics fetch of a done job
      // bit-exact against the post-run StatsRegistry.
      std::ofstream os(stage / "stats.txt");
      os << fleet.result.stats.report();
    }
    {
      std::ofstream os(stage / "metrics.sde", std::ios::binary);
      os << obs::encodeMetricsSnapshot(fleet.metrics);
    }
    // The merged trace (deterministic across process counts) plus its
    // chrome://tracing rendering ride along when tracing produced one.
    const fs::path merged = jobQueueDir(jobDir) / "merged.trc";
    if (fs::exists(merged)) {
      std::error_code ec;
      fs::copy_file(merged, stage / "merged.trc",
                    fs::copy_options::overwrite_existing, ec);
      if (!ec) {
        try {
          const obs::TraceFile trace =
              obs::readTraceFile((stage / "merged.trc").string());
          obs::exportChromeTraceFile((stage / "trace.json").string(), trace);
        } catch (const obs::TraceError&) {
          // A torn merged trace is a diagnostics loss, not a job failure.
        }
      }
    }
  });
}

}  // namespace

std::string metricsShmNameFor(const fs::path& jobDir) {
  // weakly_canonical, not canonical: the daemon computes the name while
  // the directory may not exist yet (queued job) and must still agree
  // with the runner's later computation.
  std::error_code ec;
  fs::path canonical = fs::weakly_canonical(fs::absolute(jobDir), ec);
  if (ec) canonical = fs::absolute(jobDir).lexically_normal();
  std::ostringstream name;
  name << "/sde_mx_" << std::hex << support::fnv1a(canonical.string());
  return std::move(name).str();
}

std::uint32_t fleetJobsOf(const JobSpec& spec) {
  const auto decoded = trace::decodeCollectScenarioSpec(spec.scenarioSpec);
  if (!decoded) return 0;
  return 1u << decoded->numPartitionVariables;
}

int runJobInProcess(const fs::path& jobDir, const JobSpec& spec) {
  try {
    const auto decoded = trace::decodeCollectScenarioSpec(spec.scenarioSpec);
    if (!decoded) {
      writeErrorFile(jobDir, "scenario spec no longer decodes (foreign file?)");
      return kRunnerFailed;
    }

    const fs::path queue = jobQueueDir(jobDir);
    fs::create_directories(queue);

    FleetConfig fleet;
    fleet.processes = spec.processes;
    fleet.checkpointDir = queue.string();
    fleet.traceDir = queue.string();
    // Resume whatever a previous attempt left behind (suspend, crash,
    // daemon SIGKILL) — the durable queue makes re-running free.
    fleet.resume = fs::exists(snapshot::manifestPath(queue));
    fleet.installSigtermSuspend = true;
    fleet.collectTestcases = spec.collectTestcases;
    // Each runner is its own fleet; a per-run shm segment would work,
    // but jobs are preempted and resumed often in a busy service and a
    // cold cache is always digest-safe. Keep the moving parts few.
    fleet.shmQueryCache = false;
    // Deterministic metrics-plane name so the daemon can attach to the
    // live plane of a running job without any coordination channel.
    fleet.metricsShmName = metricsShmNameFor(jobDir);

    const FleetResult result = trace::runCollectFleet(
        decoded->config, fleet, decoded->numPartitionVariables);
    if (result.suspended) return kRunnerSuspended;
    publishArtifacts(jobDir, spec, result);
    return kRunnerDone;
  } catch (const std::exception& e) {
    writeErrorFile(jobDir, e.what());
    return kRunnerFailed;
  } catch (...) {
    writeErrorFile(jobDir, "unknown error");
    return kRunnerFailed;
  }
}

pid_t spawnRunner(const fs::path& jobDir, const JobSpec& spec) {
  const pid_t pid = ::fork();
  if (pid < 0) throw ServeError("cannot fork job runner");
  if (pid > 0) return pid;

  // --- child ---
#if defined(__linux__)
  // Daemon death -> SIGTERM -> graceful fleet suspend, not an orphan
  // fleet burning slots nobody tracks.
  ::prctl(PR_SET_PDEATHSIG, SIGTERM);
  if (::getppid() == 1) ::raise(SIGTERM);  // daemon died during fork
#endif

  // One runner per job, ever: the flock outlives any in-process state
  // and dies with the process, so even a SIGKILLed daemon cannot leave
  // a lock behind that blocks the restarted one.
  const fs::path lockPath = jobDir / "lock";
  const int lockFd =
      ::open(lockPath.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lockFd < 0) ::_exit(kRunnerFailed);
  if (::flock(lockFd, LOCK_EX | LOCK_NB) != 0) ::_exit(kRunnerLocked);

  ::_exit(runJobInProcess(jobDir, spec));
}

}  // namespace sde::serve
