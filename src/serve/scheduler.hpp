// Multi-tenant scheduling over fleet worker slots: strict priority
// classes, weighted fair queueing inside a class, per-tenant quotas,
// and preemption by graceful suspend.
//
// The resource is a fixed pool of `totalSlots` worker slots; a job
// occupies `processes` slots while running. Policy, in decision order:
//
//   1. Priority is strict: a runnable job of priority P never waits
//      while a strictly lower-priority job holds slots it needs — the
//      scheduler preempts (suspends) lower-priority jobs, cheapest
//      victim first, until the high-priority job fits. Preemption costs
//      one checkpoint write (the fleet's graceful suspend), never lost
//      exploration, which is why this policy is affordable at all.
//   2. Inside a priority class, tenants share by weighted fair
//      queueing: each tenant accrues virtual time = slot-seconds
//      consumed / weight, and the runnable job of the tenant with the
//      LEAST virtual time starts first. A tenant that was idle does not
//      bank credit (its virtual time is floored to the minimum of the
//      active tenants on first use), so bursts cannot starve steady
//      tenants.
//   3. Per-tenant quotas cap concurrently held slots (0 = unlimited) —
//      a hard isolation bound on top of the fair share.
//
// The class is pure decision logic: no processes, no clocks, no I/O.
// The daemon owns time (it reports elapsed slot-seconds via charge())
// and executes the decisions (fork runners, SIGTERM preemptees). That
// split is what makes the policy unit-testable deterministically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sde::serve {

struct TenantPolicy {
  double weight = 1.0;      // relative fair share (> 0)
  unsigned maxSlots = 0;    // concurrent slot cap; 0 = unlimited
};

struct SchedJob {
  std::uint64_t id = 0;
  std::string tenant;
  std::uint32_t priority = 0;
  std::uint32_t slots = 1;
};

struct ScheduleDecision {
  std::vector<std::uint64_t> start;    // runnable jobs to launch now
  std::vector<std::uint64_t> preempt;  // running jobs to suspend now
};

class Scheduler {
 public:
  explicit Scheduler(unsigned totalSlots) : totalSlots_(totalSlots) {}

  void setTenantPolicy(const std::string& tenant, TenantPolicy policy);

  // Accounts `slotSeconds` of consumption to `tenant` (the daemon calls
  // this with slots * elapsed for every running job each tick).
  void charge(const std::string& tenant, double slotSeconds);

  // Decides what to start and what to suspend given the current queue
  // and the currently running set. Deterministic: equal virtual times
  // break by tenant name, equal jobs by id. Jobs already being
  // suspended should be listed as running until they actually exit —
  // the scheduler re-emits the preempt decision harmlessly.
  [[nodiscard]] ScheduleDecision decide(
      const std::vector<SchedJob>& waiting,
      const std::vector<SchedJob>& running);

  [[nodiscard]] unsigned totalSlots() const { return totalSlots_; }
  [[nodiscard]] double virtualTime(const std::string& tenant) const;

 private:
  [[nodiscard]] TenantPolicy policyOf(const std::string& tenant) const;
  // Floors an idle tenant's virtual time to the active minimum so
  // returning tenants start fair instead of replaying banked idleness.
  void touchTenant(const std::string& tenant);

  unsigned totalSlots_;
  std::map<std::string, TenantPolicy> policies_;
  std::map<std::string, double> virtualTimes_;
};

}  // namespace sde::serve
