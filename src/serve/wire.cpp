#include "serve/wire.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sde::serve {

namespace {

[[noreturn]] void throwErrno(const std::string& what) {
  throw ServeError(what + ": " + std::strerror(errno));
}

sockaddr_un socketAddress(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw ServeError("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void writeAll(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t wrote = ::write(fd, p, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      throwErrno("socket write failed");
    }
    p += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
}

// Returns bytes read; 0 only on EOF at a frame boundary (firstByte).
std::size_t readAll(int fd, void* data, std::size_t n, bool eofOk) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throwErrno("socket read failed");
    }
    if (r == 0) {
      if (got == 0 && eofOk) return 0;
      throw ServeError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

std::uint32_t loadU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

int listenUnixSocket(const std::string& path, int backlog) {
  const sockaddr_un addr = socketAddress(path);
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("cannot create unix socket");
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno("cannot bind " + path);
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno("cannot listen on " + path);
  }
  return fd;
}

int connectUnixSocket(const std::string& path) {
  const sockaddr_un addr = socketAddress(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throwErrno("cannot create unix socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno("cannot connect to " + path);
  }
  return fd;
}

void sendFrame(int fd, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes)
    throw ServeError("frame payload exceeds the wire limit");
  std::uint8_t header[4];
  const auto n = static_cast<std::uint32_t>(payload.size());
  for (unsigned i = 0; i < 4; ++i)
    header[i] = static_cast<std::uint8_t>(n >> (8 * i));
  writeAll(fd, header, sizeof(header));
  writeAll(fd, payload.data(), payload.size());
}

std::optional<std::string> recvFrame(int fd) {
  std::uint8_t header[4];
  if (readAll(fd, header, sizeof(header), /*eofOk=*/true) == 0)
    return std::nullopt;
  const std::uint32_t length = loadU32(header);
  if (length > kMaxFrameBytes)
    throw ServeError("incoming frame length " + std::to_string(length) +
                     " exceeds the wire limit");
  std::string payload(length, '\0');
  if (length > 0) readAll(fd, payload.data(), length, /*eofOk=*/false);
  return payload;
}

void FrameBuffer::feed(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

std::optional<std::string> FrameBuffer::next() {
  if (bytes_.size() < 4) return std::nullopt;
  const std::uint32_t length = loadU32(bytes_.data());
  if (length > kMaxFrameBytes)
    throw ServeError("incoming frame length " + std::to_string(length) +
                     " exceeds the wire limit");
  if (bytes_.size() < 4u + length) return std::nullopt;
  std::string payload(reinterpret_cast<const char*>(bytes_.data() + 4),
                      length);
  bytes_.erase(bytes_.begin(),
               bytes_.begin() + 4 + static_cast<std::ptrdiff_t>(length));
  return payload;
}

}  // namespace sde::serve
