#include "serve/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics_shm.hpp"
#include "serve/results.hpp"
#include "serve/runner.hpp"
#include "snapshot/error.hpp"
#include "snapshot/manifest.hpp"

namespace sde::serve {

namespace fs = std::filesystem;

namespace {

volatile std::sig_atomic_t g_serveStop = 0;
void serveStopHandler(int) { g_serveStop = 1; }

std::uint64_t parseDigestArtifact(const fs::path& dir) {
  std::ifstream is(jobResultDir(dir) / "digest.txt");
  std::uint64_t digest = 0;
  is >> digest;
  return is ? digest : 0;
}

}  // namespace

Daemon::Daemon(ServeConfig config)
    : config_(std::move(config)),
      socketPath_(config_.socketPath.empty()
                      ? (fs::path(config_.root) / "serve.sock").string()
                      : config_.socketPath),
      scheduler_(config_.slots) {
  fs::create_directories(jobsDir(config_.root));
  for (const auto& [tenant, policy] : config_.tenants)
    scheduler_.setTenantPolicy(tenant, policy);
  // Crash-safe boot: the registry is whatever the directory tree says.
  jobs_ = loadJobs(config_.root);
  nextId_ = nextJobId(jobs_);
  metrics_.set(metrics_.gauge("serve.slots_total"), config_.slots);
  const auto bootTime = std::chrono::steady_clock::now();
  for (const auto& [id, record] : jobs_) {
    noteTenant(record.spec.tenant);
    // Jobs recovered as runnable re-enter the queue at boot; their
    // pre-crash wait is unknowable and not worth inventing.
    if (record.state == JobState::kQueued ||
        record.state == JobState::kSuspended)
      queuedSince_[id] = bootTime;
  }
  listenFd_ = listenUnixSocket(socketPath_);
  // The accept loop drains until EAGAIN; a blocking listen fd would
  // wedge the whole daemon on the second accept of a round.
  ::fcntl(listenFd_, F_SETFL,
          ::fcntl(listenFd_, F_GETFL, 0) | O_NONBLOCK);
}

Daemon::~Daemon() {
  if (listenFd_ >= 0) ::close(listenFd_);
  for (const auto& client : clients_)
    if (client->fd >= 0) ::close(client->fd);
  ::unlink(socketPath_.c_str());
}

void Daemon::run() {
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, serveStopHandler);
  std::signal(SIGINT, serveStopHandler);
  g_serveStop = 0;

  while (!stopping_ && g_serveStop == 0) {
    tick();

    std::vector<pollfd> fds;
    fds.push_back({listenFd_, POLLIN, 0});
    for (const auto& client : clients_)
      fds.push_back({client->fd, POLLIN, 0});
    const int ready =
        ::poll(fds.data(), fds.size(), static_cast<int>(config_.pollMs));
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks the flag
      throw ServeError(std::string("daemon poll failed: ") +
                       std::strerror(errno));
    }
    if (fds[0].revents & POLLIN) acceptClients();
    // Collect serviceable clients first: handlers may erase clients.
    std::vector<Client*> readable;
    for (std::size_t i = 1; i < fds.size(); ++i)
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR))
        readable.push_back(clients_[i - 1].get());
    for (Client* client : readable) serviceClient(*client);
    std::erase_if(clients_, [](const std::unique_ptr<Client>& c) {
      return c->fd < 0;
    });
  }
  shutdownRunners();
}

void Daemon::tick() {
  reapRunners();
  refreshProgress();
  if (!stopping_) schedule();
  pushProgress();
}

void Daemon::reapRunners() {
  while (true) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    const auto it =
        std::find_if(running_.begin(), running_.end(),
                     [&](const auto& kv) { return kv.second.pid == pid; });
    if (it == running_.end()) continue;  // not a runner (stray child)
    const std::uint64_t jobId = it->first;
    running_.erase(it);

    const fs::path dir = jobDir(config_.root, jobId);
    JobRecord& record = jobs_.at(jobId);
    // Disk is the truth — the runner's exit code only explains it. A
    // runner killed by SIGKILL leaves whatever the fleet's own crash
    // recovery can resume; deriveJobState classifies it.
    record.state = deriveJobState(dir);
    // A preempted or crashed runner puts the job back in the queue; its
    // next wait starts now.
    if (record.state == JobState::kQueued ||
        record.state == JobState::kSuspended)
      queuedSince_[jobId] = std::chrono::steady_clock::now();
    if (WIFEXITED(status) && WEXITSTATUS(status) == kRunnerFailed &&
        record.state == JobState::kFailed) {
      std::ifstream is(jobErrorPath(dir));
      std::ostringstream text;
      text << is.rdbuf();
      record.error = std::move(text).str();
    }
    if (record.state == JobState::kDone && config_.retainJobs > 0) {
      for (const std::uint64_t pruned :
           pruneResults(config_.root, config_.retainJobs))
        jobs_.erase(pruned);
    }
  }
}

void Daemon::schedule() {
  // Account elapsed slot-seconds since the last tick.
  const auto now = std::chrono::steady_clock::now();
  for (auto& [jobId, runner] : running_) {
    const double seconds =
        std::chrono::duration<double>(now - runner.lastCharge).count();
    runner.lastCharge = now;
    const JobRecord& record = jobs_.at(jobId);
    scheduler_.charge(record.spec.tenant,
                      seconds * record.spec.processes);
    metrics_.add(metrics_.counter("serve.tenant." + record.spec.tenant +
                                  ".run_slot_ms"),
                 static_cast<std::uint64_t>(seconds *
                                            record.spec.processes * 1000.0));
  }

  std::vector<SchedJob> waiting;
  std::vector<SchedJob> runningJobs;
  for (const auto& [jobId, record] : jobs_) {
    const SchedJob entry{jobId, record.spec.tenant, record.spec.priority,
                         record.spec.processes};
    if (running_.count(jobId) > 0) {
      runningJobs.push_back(entry);
    } else if (record.state == JobState::kQueued ||
               record.state == JobState::kSuspended) {
      waiting.push_back(entry);
    }
  }
  const ScheduleDecision decision = scheduler_.decide(waiting, runningJobs);
  for (const std::uint64_t jobId : decision.preempt) preemptJob(jobId);
  for (const std::uint64_t jobId : decision.start) startJob(jobId);
  refreshSlotGauges();
}

void Daemon::noteTenant(const std::string& tenant) {
  metricTenants_.insert(tenant);
}

void Daemon::refreshSlotGauges() {
  std::map<std::string, std::uint64_t> inUse;
  std::uint64_t total = 0;
  for (const auto& [jobId, runner] : running_) {
    const JobRecord& record = jobs_.at(jobId);
    inUse[record.spec.tenant] += record.spec.processes;
    total += record.spec.processes;
  }
  metrics_.set(metrics_.gauge("serve.slots_in_use"), total);
  metrics_.set(metrics_.gauge("serve.jobs_running"), running_.size());
  // Every tenant ever seen gets its gauge written each round, so a
  // tenant whose last job finished reads 0, not its stale peak.
  for (const std::string& tenant : metricTenants_)
    metrics_.set(metrics_.gauge("serve.tenant." + tenant + ".slots_in_use"),
                 inUse.count(tenant) > 0 ? inUse.at(tenant) : 0);
}

void Daemon::startJob(std::uint64_t jobId) {
  JobRecord& record = jobs_.at(jobId);
  RunningJob runner;
  runner.pid = spawnRunner(jobDir(config_.root, jobId), record.spec);
  runner.lastCharge = std::chrono::steady_clock::now();
  running_.emplace(jobId, std::move(runner));
  record.state = JobState::kRunning;
  liveCounters_[jobId] = {0, 0};
  const auto queued = queuedSince_.find(jobId);
  if (queued != queuedSince_.end()) {
    const double waitedMs =
        std::chrono::duration<double, std::milli>(runner.lastCharge -
                                                  queued->second)
            .count();
    metrics_.observe(metrics_.histogram("serve.tenant." + record.spec.tenant +
                                        ".queue_wait_ms"),
                     static_cast<std::uint64_t>(waitedMs));
    queuedSince_.erase(queued);
  }
}

void Daemon::preemptJob(std::uint64_t jobId) {
  const auto it = running_.find(jobId);
  if (it == running_.end() || it->second.preempting) return;
  it->second.preempting = true;
  metrics_.add(metrics_.counter("serve.tenant." +
                                jobs_.at(jobId).spec.tenant + ".preemptions"));
  ::kill(it->second.pid, SIGTERM);
}

void Daemon::refreshProgress() {
  for (auto& [jobId, runner] : running_) {
    const fs::path queue = jobQueueDir(jobDir(config_.root, jobId));
    if (!fs::exists(queue)) continue;
    for (const auto& entry : fs::directory_iterator(queue)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("trace_job", 0) != 0 || entry.path().extension() != ".trc")
        continue;
      auto [it, inserted] = runner.tailers.try_emplace(
          entry.path().string(), nullptr);
      if (inserted)
        it->second = std::make_unique<obs::TraceTailer>(entry.path().string());
    }
    std::uint64_t events = 0;
    std::uint64_t states = 0;
    for (auto& [path, tailer] : runner.tailers) {
      try {
        tailer->poll();
      } catch (const obs::TraceError&) {
        // A worker truncated/rewrote its file mid-poll; drop and re-arm
        // next tick.
        tailer = std::make_unique<obs::TraceTailer>(path);
        continue;
      }
      events += tailer->eventsSeen();
      const obs::TraceSummary summary = tailer->summary();
      states += summary.count(obs::TraceEventKind::kStateCreate) +
                summary.count(obs::TraceEventKind::kStateFork);
    }
    liveCounters_[jobId] = {events, states};
  }
}

JobStatus Daemon::statusOf(const JobRecord& record) {
  JobStatus status;
  status.jobId = record.id;
  status.tenant = record.spec.tenant;
  status.priority = record.spec.priority;
  status.processes = record.spec.processes;
  status.state =
      running_.count(record.id) > 0 ? JobState::kRunning : record.state;
  status.partsTotal = fleetJobsOf(record.spec);
  status.error = record.error;
  const fs::path dir = jobDir(config_.root, record.id);
  for (std::uint32_t part = 0; part < status.partsTotal; ++part)
    if (fs::exists(snapshot::jobDonePath(jobQueueDir(dir), part)))
      ++status.partsDone;
  const auto live = liveCounters_.find(record.id);
  if (live != liveCounters_.end()) {
    status.eventsSeen = live->second.first;
    status.statesSeen = live->second.second;
  }
  if (status.state == JobState::kDone)
    status.digest = parseDigestArtifact(dir);
  return status;
}

void Daemon::pushProgress() {
  for (const auto& client : clients_) {
    if (!client->watching || client->fd < 0) continue;
    const auto it = jobs_.find(client->watchJobId);
    if (it == jobs_.end()) {
      client->watching = false;
      continue;
    }
    ProgressFrame frame;
    frame.status = statusOf(it->second);
    frame.final = terminalJobState(frame.status.state);
    sendTo(*client, frame);
    if (frame.final) client->watching = false;
  }
}

void Daemon::acceptClients() {
  while (true) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN or transient: next poll round retries
    auto client = std::make_unique<Client>();
    client->fd = fd;
    clients_.push_back(std::move(client));
  }
}

void Daemon::serviceClient(Client& client) {
  char buffer[4096];
  const ssize_t got = ::read(client.fd, buffer, sizeof(buffer));
  if (got <= 0) {
    ::close(client.fd);
    client.fd = -1;
    return;
  }
  client.frames.feed(buffer, static_cast<std::size_t>(got));
  try {
    while (auto payload = client.frames.next()) {
      const Message message = decodeMessage(*payload);
      handleMessage(client, message);
      if (client.fd < 0) return;
    }
  } catch (const ServeError& e) {
    // Malformed wire bytes or message: tell the client what was wrong,
    // then drop the connection (framing state is unrecoverable).
    sendTo(client, ErrorReply{e.what()});
    if (client.fd >= 0) {
      ::close(client.fd);
      client.fd = -1;
    }
  }
}

void Daemon::handleMessage(Client& client, const Message& message) {
  if (const auto* submit = std::get_if<SubmitRequest>(&message)) {
    JobSpec spec;
    spec.tenant = submit->tenant;
    spec.priority = submit->priority;
    spec.processes = submit->processes;
    spec.scenarioSpec = submit->scenarioSpec;
    spec.collectTestcases = submit->collectTestcases;
    if (const auto rejection = validateJobSpec(spec)) {
      sendTo(client, ErrorReply{"submit rejected: " + *rejection});
      return;
    }
    const std::uint64_t jobId = nextId_++;
    const fs::path dir = jobDir(config_.root, jobId);
    fs::create_directories(dir);
    // Atomic spec write BEFORE the ack: once the client hears this id,
    // no crash can forget the job.
    writeJobSpec(dir, spec);
    JobRecord record;
    record.id = jobId;
    record.spec = std::move(spec);
    record.state = JobState::kQueued;
    noteTenant(record.spec.tenant);
    metrics_.add(metrics_.counter("serve.tenant." + record.spec.tenant +
                                  ".jobs_submitted"));
    queuedSince_[jobId] = std::chrono::steady_clock::now();
    jobs_.emplace(jobId, std::move(record));
    sendTo(client, SubmitReply{jobId});
    return;
  }
  if (const auto* status = std::get_if<StatusRequest>(&message)) {
    StatusReply reply;
    if (status->jobId == 0) {
      for (const auto& [id, record] : jobs_)
        reply.jobs.push_back(statusOf(record));
    } else {
      const auto it = jobs_.find(status->jobId);
      if (it == jobs_.end()) {
        sendTo(client, ErrorReply{"unknown job " +
                                  std::to_string(status->jobId)});
        return;
      }
      reply.jobs.push_back(statusOf(it->second));
    }
    sendTo(client, reply);
    return;
  }
  if (const auto* watch = std::get_if<WatchRequest>(&message)) {
    const auto it = jobs_.find(watch->jobId);
    if (it == jobs_.end()) {
      sendTo(client, ErrorReply{"unknown job " + std::to_string(watch->jobId)});
      return;
    }
    client.watching = true;
    client.watchJobId = watch->jobId;
    // First frame immediately; the tick loop streams the rest.
    ProgressFrame frame;
    frame.status = statusOf(it->second);
    frame.final = terminalJobState(frame.status.state);
    sendTo(client, frame);
    if (frame.final) client.watching = false;
    return;
  }
  if (const auto* cancel = std::get_if<CancelRequest>(&message)) {
    const auto it = jobs_.find(cancel->jobId);
    if (it == jobs_.end()) {
      sendTo(client,
             ErrorReply{"unknown job " + std::to_string(cancel->jobId)});
      return;
    }
    JobRecord& record = it->second;
    const fs::path dir = jobDir(config_.root, record.id);
    if (!terminalJobState(record.state)) {
      snapshot::atomicWriteFile(jobCancelledMarker(dir),
                                [](std::ostream& os) { os << "cancelled\n"; });
      record.state = JobState::kCancelled;
      preemptJob(record.id);  // no-op unless running
    }
    sendTo(client, CancelReply{record.state});
    return;
  }
  if (const auto* list = std::get_if<ListArtifactsRequest>(&message)) {
    if (jobs_.count(list->jobId) == 0) {
      sendTo(client, ErrorReply{"unknown job " + std::to_string(list->jobId)});
      return;
    }
    ArtifactList reply;
    reply.names = listArtifacts(jobDir(config_.root, list->jobId));
    sendTo(client, reply);
    return;
  }
  if (const auto* fetch = std::get_if<FetchRequest>(&message)) {
    if (jobs_.count(fetch->jobId) == 0) {
      sendTo(client, ErrorReply{"unknown job " + std::to_string(fetch->jobId)});
      return;
    }
    const auto bytes =
        readArtifact(jobDir(config_.root, fetch->jobId), fetch->name);
    if (!bytes) {
      sendTo(client, ErrorReply{"no artifact \"" + fetch->name + "\" for job " +
                                std::to_string(fetch->jobId)});
      return;
    }
    sendTo(client, ArtifactReply{fetch->name, *bytes});
    return;
  }
  if (const auto* metrics = std::get_if<MetricsRequest>(&message)) {
    handleMetricsRequest(client, *metrics);
    return;
  }
  if (std::get_if<ShutdownRequest>(&message) != nullptr) {
    sendTo(client, ShutdownReply{});
    stopping_ = true;
    return;
  }
  sendTo(client, ErrorReply{"unexpected message type for a request"});
}

void Daemon::handleMetricsRequest(Client& client,
                                  const MetricsRequest& request) {
  if (request.jobId != 0) {
    const auto it = jobs_.find(request.jobId);
    if (it == jobs_.end()) {
      sendTo(client,
             ErrorReply{"unknown job " + std::to_string(request.jobId)});
      return;
    }
    const fs::path dir = jobDir(config_.root, request.jobId);
    // A published metrics artifact wins over everything: those are the
    // bytes the fleet derived from its post-run merged StatsRegistry,
    // shipped verbatim so the live-vs-postrun equality is byte-level.
    if (const auto bytes = readArtifact(dir, "metrics.sde")) {
      try {
        const obs::MetricsSnapshot snap = obs::decodeMetricsSnapshot(*bytes);
        sendTo(client, MetricsReply{obs::renderPrometheus(snap), *bytes});
      } catch (const snapshot::SnapshotError& e) {
        sendTo(client,
               ErrorReply{std::string("torn metrics artifact: ") + e.what()});
      }
      return;
    }
    if (running_.count(request.jobId) > 0) {
      try {
        const auto plane =
            obs::ShmMetricsPlane::attach(metricsShmNameFor(dir));
        const obs::MetricsSnapshot snap = plane->aggregate();
        sendTo(client, MetricsReply{obs::renderPrometheus(snap),
                                    obs::encodeMetricsSnapshot(snap)});
      } catch (const obs::ShmMetricsError& e) {
        // Runner forked but its fleet has not created the plane yet.
        sendTo(client, ErrorReply{std::string("metrics plane for job ") +
                                  std::to_string(request.jobId) +
                                  " not readable yet: " + e.what()});
      }
      return;
    }
    sendTo(client,
           ErrorReply{"no metrics for job " + std::to_string(request.jobId) +
                      " (state " +
                      std::string(jobStateName(it->second.state)) + ")"});
    return;
  }
  // Service-wide: the daemon's own accounting plus whatever every
  // running fleet is publishing right now.
  obs::MetricsSnapshot snap = metrics_.snapshot();
  for (const auto& [jobId, runner] : running_) {
    try {
      const auto plane = obs::ShmMetricsPlane::attach(
          metricsShmNameFor(jobDir(config_.root, jobId)));
      snap.merge(plane->aggregate());
    } catch (const obs::ShmMetricsError&) {
      // Plane not up (or already torn down) — that job simply does not
      // contribute to this poll.
    }
  }
  sendTo(client, MetricsReply{obs::renderPrometheus(snap),
                              obs::encodeMetricsSnapshot(snap)});
}

void Daemon::sendTo(Client& client, const Message& message) {
  if (client.fd < 0) return;
  try {
    sendFrame(client.fd, encodeMessage(message));
  } catch (const ServeError&) {
    ::close(client.fd);
    client.fd = -1;
  }
}

void Daemon::shutdownRunners() {
  for (const auto& [jobId, runner] : running_) ::kill(runner.pid, SIGTERM);
  for (const auto& [jobId, runner] : running_) {
    int status = 0;
    ::waitpid(runner.pid, &status, 0);
    JobRecord& record = jobs_.at(jobId);
    record.state = deriveJobState(jobDir(config_.root, jobId));
  }
  running_.clear();
}

}  // namespace sde::serve
