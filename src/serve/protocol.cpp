#include "serve/protocol.hpp"

#include <sstream>

#include "snapshot/error.hpp"
#include "snapshot/reader.hpp"
#include "snapshot/writer.hpp"

namespace sde::serve {

namespace {

enum class Tag : std::uint8_t {
  kSubmitRequest = 1,
  kSubmitReply,
  kErrorReply,
  kStatusRequest,
  kStatusReply,
  kWatchRequest,
  kProgressFrame,
  kCancelRequest,
  kCancelReply,
  kListArtifactsRequest,
  kArtifactList,
  kFetchRequest,
  kArtifactReply,
  kShutdownRequest,
  kShutdownReply,
  kMetricsRequest,
  kMetricsReply,
};

JobState decodeJobState(std::uint8_t raw) {
  if (raw < static_cast<std::uint8_t>(JobState::kQueued) ||
      raw > static_cast<std::uint8_t>(JobState::kCancelled))
    throw ServeError("invalid job state " + std::to_string(raw) +
                     " on the wire");
  return static_cast<JobState>(raw);
}

void writeJobStatus(snapshot::Writer& out, const JobStatus& status) {
  out.u64(status.jobId);
  out.str(status.tenant);
  out.u32(status.priority);
  out.u32(status.processes);
  out.u8(static_cast<std::uint8_t>(status.state));
  out.u32(status.partsDone);
  out.u32(status.partsTotal);
  out.u64(status.eventsSeen);
  out.u64(status.statesSeen);
  out.u64(status.digest);
  out.str(status.error);
}

JobStatus readJobStatus(snapshot::Reader& in) {
  JobStatus status;
  status.jobId = in.u64();
  status.tenant = in.str();
  status.priority = in.u32();
  status.processes = in.u32();
  status.state = decodeJobState(in.u8());
  status.partsDone = in.u32();
  status.partsTotal = in.u32();
  status.eventsSeen = in.u64();
  status.statesSeen = in.u64();
  status.digest = in.u64();
  status.error = in.str();
  return status;
}

struct Encoder {
  snapshot::Writer& out;

  void operator()(const SubmitRequest& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kSubmitRequest));
    out.str(m.tenant);
    out.u32(m.priority);
    out.u32(m.processes);
    out.str(m.scenarioSpec);
    out.b(m.collectTestcases);
  }
  void operator()(const SubmitReply& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kSubmitReply));
    out.u64(m.jobId);
  }
  void operator()(const ErrorReply& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kErrorReply));
    out.str(m.message);
  }
  void operator()(const StatusRequest& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kStatusRequest));
    out.u64(m.jobId);
  }
  void operator()(const StatusReply& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kStatusReply));
    out.u64(m.jobs.size());
    for (const JobStatus& status : m.jobs) writeJobStatus(out, status);
  }
  void operator()(const WatchRequest& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kWatchRequest));
    out.u64(m.jobId);
  }
  void operator()(const ProgressFrame& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kProgressFrame));
    writeJobStatus(out, m.status);
    out.b(m.final);
  }
  void operator()(const CancelRequest& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kCancelRequest));
    out.u64(m.jobId);
  }
  void operator()(const CancelReply& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kCancelReply));
    out.u8(static_cast<std::uint8_t>(m.state));
  }
  void operator()(const ListArtifactsRequest& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kListArtifactsRequest));
    out.u64(m.jobId);
  }
  void operator()(const ArtifactList& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kArtifactList));
    out.u64(m.names.size());
    for (const std::string& name : m.names) out.str(name);
  }
  void operator()(const FetchRequest& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kFetchRequest));
    out.u64(m.jobId);
    out.str(m.name);
  }
  void operator()(const ArtifactReply& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kArtifactReply));
    out.str(m.name);
    out.str(m.bytes);
  }
  void operator()(const ShutdownRequest&) {
    out.u8(static_cast<std::uint8_t>(Tag::kShutdownRequest));
  }
  void operator()(const ShutdownReply&) {
    out.u8(static_cast<std::uint8_t>(Tag::kShutdownReply));
  }
  void operator()(const MetricsRequest& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kMetricsRequest));
    out.u64(m.jobId);
  }
  void operator()(const MetricsReply& m) {
    out.u8(static_cast<std::uint8_t>(Tag::kMetricsReply));
    out.str(m.prometheus);
    out.str(m.snapshot);
  }
};

}  // namespace

std::string_view jobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kSuspended: return "suspended";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "unknown";
}

bool terminalJobState(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

std::string encodeMessage(const Message& message) {
  std::ostringstream buffer;
  snapshot::Writer out(buffer);
  std::visit(Encoder{out}, message);
  return std::move(buffer).str();
}

Message decodeMessage(const std::string& payload) {
  std::istringstream buffer(payload);
  snapshot::Reader in(buffer);
  try {
    const std::uint8_t rawTag = in.u8();
    switch (static_cast<Tag>(rawTag)) {
      case Tag::kSubmitRequest: {
        SubmitRequest m;
        m.tenant = in.str();
        m.priority = in.u32();
        m.processes = in.u32();
        m.scenarioSpec = in.str();
        m.collectTestcases = in.b();
        return m;
      }
      case Tag::kSubmitReply: {
        SubmitReply m;
        m.jobId = in.u64();
        return m;
      }
      case Tag::kErrorReply: {
        ErrorReply m;
        m.message = in.str();
        return m;
      }
      case Tag::kStatusRequest: {
        StatusRequest m;
        m.jobId = in.u64();
        return m;
      }
      case Tag::kStatusReply: {
        StatusReply m;
        const std::uint64_t n = in.u64();
        if (n > 1u << 20) throw ServeError("implausible job count on the wire");
        m.jobs.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i)
          m.jobs.push_back(readJobStatus(in));
        return m;
      }
      case Tag::kWatchRequest: {
        WatchRequest m;
        m.jobId = in.u64();
        return m;
      }
      case Tag::kProgressFrame: {
        ProgressFrame m;
        m.status = readJobStatus(in);
        m.final = in.b();
        return m;
      }
      case Tag::kCancelRequest: {
        CancelRequest m;
        m.jobId = in.u64();
        return m;
      }
      case Tag::kCancelReply: {
        CancelReply m;
        m.state = decodeJobState(in.u8());
        return m;
      }
      case Tag::kListArtifactsRequest: {
        ListArtifactsRequest m;
        m.jobId = in.u64();
        return m;
      }
      case Tag::kArtifactList: {
        ArtifactList m;
        const std::uint64_t n = in.u64();
        if (n > 1u << 16)
          throw ServeError("implausible artifact count on the wire");
        m.names.reserve(n);
        for (std::uint64_t i = 0; i < n; ++i) m.names.push_back(in.str());
        return m;
      }
      case Tag::kFetchRequest: {
        FetchRequest m;
        m.jobId = in.u64();
        m.name = in.str();
        return m;
      }
      case Tag::kArtifactReply: {
        ArtifactReply m;
        m.name = in.str();
        m.bytes = in.str(kMaxFrameBytes);
        return m;
      }
      case Tag::kShutdownRequest: return ShutdownRequest{};
      case Tag::kShutdownReply: return ShutdownReply{};
      case Tag::kMetricsRequest: {
        MetricsRequest m;
        m.jobId = in.u64();
        return m;
      }
      case Tag::kMetricsReply: {
        MetricsReply m;
        m.prometheus = in.str(kMaxFrameBytes);
        m.snapshot = in.str(kMaxFrameBytes);
        return m;
      }
    }
    throw ServeError("unknown message tag " + std::to_string(rawTag) +
                     " on the wire");
  } catch (const snapshot::SnapshotError& e) {
    throw ServeError(std::string("malformed message payload: ") + e.what());
  }
}

}  // namespace sde::serve
