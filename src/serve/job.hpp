// Durable jobs: the spec codec, the on-disk layout, and the registry a
// (re)booting daemon rebuilds from nothing but the directory tree.
//
// Layout under the service root:
//
//   <root>/jobs/job_<id>/
//     spec.sde       tagged file (SDEJBSPC): tenant, priority, slots,
//                    scenario spec, flags — atomically written BEFORE
//                    the submit is acknowledged, so an accepted job
//                    exists on disk by the time the client hears "ok"
//     queue/         the fleet's durable run directory (manifest.sde,
//                    job_<k>.ckpt / .done) — appears on first run
//     result/        published artifacts (atomic tmp+rename, see
//                    results.hpp) — its existence defines "done"
//     cancelled      marker: terminal, never scheduled again
//     error.txt      failure reason: terminal unless removed by hand
//
// State is derived, never stored: done = result/ exists, cancelled =
// marker, failed = error.txt, suspended = queue/manifest.sde exists
// (the fleet ran at least once), else queued. A SIGKILLed daemon
// therefore cannot lose or corrupt job state — the next boot recomputes
// it from artifacts that were each written atomically.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace sde::serve {

inline constexpr std::string_view kJobSpecMagic = "SDEJBSPC";
inline constexpr std::uint32_t kJobSpecVersion = 1;

struct JobSpec {
  std::string tenant;
  std::uint32_t priority = 0;
  std::uint32_t processes = 1;
  std::string scenarioSpec;
  bool collectTestcases = false;
};

// Rejects a spec before it costs anything: empty tenant, zero or absurd
// process count, a scenario spec the codec cannot parse (foreign tag,
// truncated key=value body, unknown mapper), or a zero-budget job
// (simulationTime 0 explores nothing and would wedge the queue).
// Returns the human-readable rejection; nullopt means acceptable.
[[nodiscard]] std::optional<std::string> validateJobSpec(const JobSpec& spec);

// Paths of the layout above.
[[nodiscard]] std::filesystem::path jobsDir(const std::filesystem::path& root);
[[nodiscard]] std::filesystem::path jobDir(const std::filesystem::path& root,
                                           std::uint64_t jobId);
[[nodiscard]] std::filesystem::path jobSpecPath(
    const std::filesystem::path& dir);
[[nodiscard]] std::filesystem::path jobQueueDir(
    const std::filesystem::path& dir);
[[nodiscard]] std::filesystem::path jobResultDir(
    const std::filesystem::path& dir);
[[nodiscard]] std::filesystem::path jobCancelledMarker(
    const std::filesystem::path& dir);
[[nodiscard]] std::filesystem::path jobErrorPath(
    const std::filesystem::path& dir);

void writeJobSpec(const std::filesystem::path& dir, const JobSpec& spec);
[[nodiscard]] JobSpec readJobSpec(const std::filesystem::path& dir);

struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  std::string error;  // from error.txt when failed
};

// Scans <root>/jobs and rebuilds every job's record. Entries whose
// spec.sde is missing or torn (a crash between mkdir and the atomic
// spec write) are skipped — the submit was never acknowledged, so the
// job never existed. Running state cannot be recovered (no daemon, no
// runner): jobs that were mid-run come back as suspended or queued and
// get rescheduled.
[[nodiscard]] std::map<std::uint64_t, JobRecord> loadJobs(
    const std::filesystem::path& root);

// One past the highest job id on disk (1 for an empty root).
[[nodiscard]] std::uint64_t nextJobId(
    const std::map<std::uint64_t, JobRecord>& jobs);

// Derives the current state of one job dir (see the layout comment).
[[nodiscard]] JobState deriveJobState(const std::filesystem::path& dir);

}  // namespace sde::serve
