#include "serve/scheduler.hpp"

#include <algorithm>
#include <limits>

namespace sde::serve {

void Scheduler::setTenantPolicy(const std::string& tenant,
                                TenantPolicy policy) {
  if (policy.weight <= 0) policy.weight = 1.0;
  policies_[tenant] = policy;
}

TenantPolicy Scheduler::policyOf(const std::string& tenant) const {
  const auto it = policies_.find(tenant);
  return it == policies_.end() ? TenantPolicy{} : it->second;
}

void Scheduler::touchTenant(const std::string& tenant) {
  if (virtualTimes_.count(tenant) > 0) return;
  double floor = 0;
  bool any = false;
  for (const auto& [name, time] : virtualTimes_) {
    if (!any || time < floor) floor = time;
    any = true;
  }
  virtualTimes_[tenant] = any ? floor : 0.0;
}

void Scheduler::charge(const std::string& tenant, double slotSeconds) {
  touchTenant(tenant);
  virtualTimes_[tenant] += slotSeconds / policyOf(tenant).weight;
}

double Scheduler::virtualTime(const std::string& tenant) const {
  const auto it = virtualTimes_.find(tenant);
  return it == virtualTimes_.end() ? 0.0 : it->second;
}

ScheduleDecision Scheduler::decide(const std::vector<SchedJob>& waiting,
                                   const std::vector<SchedJob>& running) {
  ScheduleDecision decision;

  std::map<std::string, unsigned> tenantSlots;
  unsigned usedSlots = 0;
  for (const SchedJob& job : running) {
    touchTenant(job.tenant);
    tenantSlots[job.tenant] += job.slots;
    usedSlots += job.slots;
  }
  unsigned freeSlots = usedSlots >= totalSlots_ ? 0 : totalSlots_ - usedSlots;

  // Deterministic service order: strict priority first, then the
  // least-served tenant by weighted virtual time, ties by tenant name
  // then job id.
  std::vector<SchedJob> queue = waiting;
  for (const SchedJob& job : queue) touchTenant(job.tenant);
  std::sort(queue.begin(), queue.end(),
            [&](const SchedJob& a, const SchedJob& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              const double va = virtualTime(a.tenant);
              const double vb = virtualTime(b.tenant);
              if (va != vb) return va < vb;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.id < b.id;
            });

  // Victim pool for preemption: running jobs not yet marked this tick.
  std::vector<SchedJob> victims = running;

  for (const SchedJob& job : queue) {
    if (job.slots > totalSlots_) continue;  // can never fit; not ours to fail
    const TenantPolicy policy = policyOf(job.tenant);
    if (policy.maxSlots > 0 &&
        tenantSlots[job.tenant] + job.slots > policy.maxSlots)
      continue;  // quota says no, regardless of free capacity

    if (freeSlots >= job.slots) {
      decision.start.push_back(job.id);
      freeSlots -= job.slots;
      tenantSlots[job.tenant] += job.slots;
      continue;
    }

    // Not enough free capacity: reclaim from strictly lower-priority
    // running jobs, lowest priority first (then smallest, then newest —
    // the cheapest checkpoints to redo). Preempted slots are NOT
    // reusable this tick: a suspend is asynchronous, the slots free
    // only when the runner actually exits. The job stays queued and
    // starts on a later tick.
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < victims.size(); ++i)
      if (victims[i].priority < job.priority) order.push_back(i);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (victims[a].priority != victims[b].priority)
        return victims[a].priority < victims[b].priority;
      if (victims[a].slots != victims[b].slots)
        return victims[a].slots < victims[b].slots;
      return victims[a].id > victims[b].id;
    });
    unsigned reclaimable = freeSlots;
    std::vector<std::size_t> chosen;
    for (const std::size_t i : order) {
      if (reclaimable >= job.slots) break;
      reclaimable += victims[i].slots;
      chosen.push_back(i);
    }
    if (reclaimable < job.slots) continue;  // even preemption cannot fit it
    for (const std::size_t i : chosen) {
      decision.preempt.push_back(victims[i].id);
      tenantSlots[victims[i].tenant] -= victims[i].slots;
    }
    // Remove chosen victims from the pool (highest index first so the
    // remaining indices stay valid).
    std::sort(chosen.rbegin(), chosen.rend());
    for (const std::size_t i : chosen)
      victims.erase(victims.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return decision;
}

}  // namespace sde::serve
