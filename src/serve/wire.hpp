// Wire framing for the exploration service: length-prefixed frames over
// AF_UNIX stream sockets.
//
// A frame is `u32 length | payload` (little-endian, like every other
// SDE encoding). The length is checked against kMaxFrameBytes before a
// single payload byte is trusted, so a confused or malicious peer can
// cost at most 4 bytes of header — never an allocation. Payload
// contents are the protocol layer's business (protocol.hpp); this layer
// only moves byte strings.
//
// Two consumption styles:
//   * Blocking helpers (sendFrame/recvFrame) for clients and tests —
//     one frame per call, EOF surfaces as nullopt.
//   * FrameBuffer for the daemon's poll loop — feed whatever read(2)
//     returned, pop complete frames as they materialise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sde::serve {

class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Generous enough for a fetched artifact, small enough that a corrupt
// length field cannot balloon memory.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

// Creates, binds and listens on a Unix stream socket at `path`,
// unlinking a stale socket file first. Throws ServeError on failure.
[[nodiscard]] int listenUnixSocket(const std::string& path, int backlog = 16);

// Connects to the daemon's socket. Throws ServeError when nobody
// listens (the caller decides whether that is fatal or retry-worthy).
[[nodiscard]] int connectUnixSocket(const std::string& path);

// Writes one complete frame (blocking, EINTR-safe). Throws ServeError
// on a broken connection.
void sendFrame(int fd, const std::string& payload);

// Reads one complete frame (blocking). Returns nullopt on clean EOF
// before any byte of a frame; throws ServeError on a torn frame, an
// oversized length, or a read error.
[[nodiscard]] std::optional<std::string> recvFrame(int fd);

// Incremental reassembly for non-blocking readers.
class FrameBuffer {
 public:
  void feed(const void* data, std::size_t n);
  // Pops the next complete frame, nullopt when more bytes are needed.
  // Throws ServeError when the buffered length prefix exceeds
  // kMaxFrameBytes (the connection should be dropped).
  [[nodiscard]] std::optional<std::string> next();

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace sde::serve
