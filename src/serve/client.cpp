#include "serve/client.hpp"

#include <unistd.h>

#include <chrono>
#include <thread>

#include "serve/wire.hpp"

namespace sde::serve {

namespace {

[[noreturn]] void throwDaemonError(const ErrorReply& error) {
  throw ServeError(error.message);
}

}  // namespace

Client::Client(const std::string& socketPath)
    : fd_(connectUnixSocket(socketPath)) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Message Client::recv() {
  const auto payload = recvFrame(fd_);
  if (!payload) throw ServeError("daemon closed the connection");
  return decodeMessage(*payload);
}

Message Client::call(const Message& request) {
  sendFrame(fd_, encodeMessage(request));
  return recv();
}

std::uint64_t Client::submit(const SubmitRequest& request) {
  const Message reply = call(request);
  if (const auto* error = std::get_if<ErrorReply>(&reply))
    throwDaemonError(*error);
  const auto* ok = std::get_if<SubmitReply>(&reply);
  if (ok == nullptr) throw ServeError("unexpected reply to submit");
  return ok->jobId;
}

std::vector<JobStatus> Client::status(std::uint64_t jobId) {
  const Message reply = call(StatusRequest{jobId});
  if (const auto* error = std::get_if<ErrorReply>(&reply))
    throwDaemonError(*error);
  const auto* ok = std::get_if<StatusReply>(&reply);
  if (ok == nullptr) throw ServeError("unexpected reply to status");
  return ok->jobs;
}

JobStatus Client::watch(
    std::uint64_t jobId,
    const std::function<void(const JobStatus&)>& onProgress) {
  Message reply = call(WatchRequest{jobId});
  while (true) {
    if (const auto* error = std::get_if<ErrorReply>(&reply))
      throwDaemonError(*error);
    const auto* frame = std::get_if<ProgressFrame>(&reply);
    if (frame == nullptr) throw ServeError("unexpected reply to watch");
    if (onProgress) onProgress(frame->status);
    if (frame->final) return frame->status;
    reply = recv();
  }
}

JobState Client::cancel(std::uint64_t jobId) {
  const Message reply = call(CancelRequest{jobId});
  if (const auto* error = std::get_if<ErrorReply>(&reply))
    throwDaemonError(*error);
  const auto* ok = std::get_if<CancelReply>(&reply);
  if (ok == nullptr) throw ServeError("unexpected reply to cancel");
  return ok->state;
}

std::vector<std::string> Client::listArtifacts(std::uint64_t jobId) {
  const Message reply = call(ListArtifactsRequest{jobId});
  if (const auto* error = std::get_if<ErrorReply>(&reply))
    throwDaemonError(*error);
  const auto* ok = std::get_if<ArtifactList>(&reply);
  if (ok == nullptr) throw ServeError("unexpected reply to list");
  return ok->names;
}

std::string Client::fetch(std::uint64_t jobId, const std::string& name) {
  const Message reply = call(FetchRequest{jobId, name});
  if (const auto* error = std::get_if<ErrorReply>(&reply))
    throwDaemonError(*error);
  const auto* ok = std::get_if<ArtifactReply>(&reply);
  if (ok == nullptr) throw ServeError("unexpected reply to fetch");
  return ok->bytes;
}

MetricsReply Client::metrics(std::uint64_t jobId) {
  const Message reply = call(MetricsRequest{jobId});
  if (const auto* error = std::get_if<ErrorReply>(&reply))
    throwDaemonError(*error);
  const auto* ok = std::get_if<MetricsReply>(&reply);
  if (ok == nullptr) throw ServeError("unexpected reply to metrics");
  return *ok;
}

void Client::shutdownDaemon() {
  const Message reply = call(ShutdownRequest{});
  if (const auto* error = std::get_if<ErrorReply>(&reply))
    throwDaemonError(*error);
}

bool waitForDaemon(const std::string& socketPath, double timeoutSeconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  while (std::chrono::steady_clock::now() < deadline) {
    try {
      Client probe(socketPath);
      (void)probe.status();
      return true;
    } catch (const ServeError&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return false;
}

}  // namespace sde::serve
