#include "serve/job.hpp"

#include <fstream>
#include <sstream>

#include "snapshot/error.hpp"
#include "snapshot/manifest.hpp"
#include "snapshot/tagged_file.hpp"
#include "trace/scenario.hpp"

namespace sde::serve {

namespace fs = std::filesystem;

std::optional<std::string> validateJobSpec(const JobSpec& spec) {
  if (spec.tenant.empty()) return "tenant must not be empty";
  if (spec.processes == 0) return "processes must be at least 1";
  if (spec.processes > 256)
    return "processes " + std::to_string(spec.processes) +
           " exceeds the per-job limit of 256";
  const auto decoded = trace::decodeCollectScenarioSpec(spec.scenarioSpec);
  if (!decoded) {
    // The codec only reports pass/fail; reconstruct the reason so the
    // submitter learns what to fix, not just that something is wrong.
    std::istringstream is(spec.scenarioSpec);
    std::string tag;
    is >> tag;
    if (tag != "collect/1")
      return "scenario spec tag \"" + tag +
             "\" is not \"collect/1\" (foreign or truncated spec)";
    std::string token;
    while (is >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos)
        return "malformed scenario spec token \"" + token +
               "\" (expected key=value; truncated spec?)";
      if (token.compare(0, eq + 1, "mapper=") == 0) {
        const std::string value = token.substr(eq + 1);
        if (value != "COB" && value != "COW" && value != "SDS")
          return "unknown mapper name \"" + value +
                 "\" (this build knows COB, COW, SDS)";
      }
    }
    return "scenario spec rejected by the collect codec";
  }
  if (decoded->config.simulationTime == 0)
    return "zero-budget job: simulationTime must be positive";
  if (decoded->config.gridWidth == 0 || decoded->config.gridHeight == 0)
    return "degenerate topology: grid dimensions must be positive";
  if (decoded->numPartitionVariables > 16)
    return "partition variable count " +
           std::to_string(decoded->numPartitionVariables) +
           " exceeds the per-job limit of 16 (65536 fleet jobs)";
  return std::nullopt;
}

fs::path jobsDir(const fs::path& root) { return root / "jobs"; }

fs::path jobDir(const fs::path& root, std::uint64_t jobId) {
  return jobsDir(root) / ("job_" + std::to_string(jobId));
}

fs::path jobSpecPath(const fs::path& dir) { return dir / "spec.sde"; }
fs::path jobQueueDir(const fs::path& dir) { return dir / "queue"; }
fs::path jobResultDir(const fs::path& dir) { return dir / "result"; }
fs::path jobCancelledMarker(const fs::path& dir) { return dir / "cancelled"; }
fs::path jobErrorPath(const fs::path& dir) { return dir / "error.txt"; }

void writeJobSpec(const fs::path& dir, const JobSpec& spec) {
  snapshot::writeTaggedFile(jobSpecPath(dir), kJobSpecMagic, kJobSpecVersion,
                            [&](snapshot::Writer& out) {
                              out.str(spec.tenant);
                              out.u32(spec.priority);
                              out.u32(spec.processes);
                              out.str(spec.scenarioSpec);
                              out.b(spec.collectTestcases);
                            });
}

JobSpec readJobSpec(const fs::path& dir) {
  JobSpec spec;
  snapshot::readTaggedFile(jobSpecPath(dir), kJobSpecMagic, kJobSpecVersion,
                           "not an SDE job spec", [&](snapshot::Reader& in) {
                             spec.tenant = in.str();
                             spec.priority = in.u32();
                             spec.processes = in.u32();
                             spec.scenarioSpec = in.str();
                             spec.collectTestcases = in.b();
                           });
  return spec;
}

JobState deriveJobState(const fs::path& dir) {
  if (fs::exists(jobCancelledMarker(dir))) return JobState::kCancelled;
  if (fs::exists(jobResultDir(dir))) return JobState::kDone;
  if (fs::exists(jobErrorPath(dir))) return JobState::kFailed;
  if (fs::exists(snapshot::manifestPath(jobQueueDir(dir))))
    return JobState::kSuspended;
  return JobState::kQueued;
}

std::map<std::uint64_t, JobRecord> loadJobs(const fs::path& root) {
  std::map<std::uint64_t, JobRecord> jobs;
  const fs::path base = jobsDir(root);
  if (!fs::exists(base)) return jobs;
  for (const auto& entry : fs::directory_iterator(base)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("job_", 0) != 0) continue;
    std::uint64_t id = 0;
    try {
      id = std::stoull(name.substr(4));
    } catch (...) {
      continue;  // foreign directory
    }
    JobRecord record;
    record.id = id;
    try {
      record.spec = readJobSpec(entry.path());
    } catch (const snapshot::SnapshotError&) {
      // Crash between mkdir and the atomic spec write: the submit was
      // never acknowledged, so this is not a job.
      continue;
    }
    record.state = deriveJobState(entry.path());
    if (record.state == JobState::kFailed) {
      std::ifstream is(jobErrorPath(entry.path()));
      std::ostringstream text;
      text << is.rdbuf();
      record.error = std::move(text).str();
    }
    jobs.emplace(id, std::move(record));
  }
  return jobs;
}

std::uint64_t nextJobId(const std::map<std::uint64_t, JobRecord>& jobs) {
  return jobs.empty() ? 1 : jobs.rbegin()->first + 1;
}

}  // namespace sde::serve
