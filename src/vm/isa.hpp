// Instruction set of the node VM.
//
// The paper's evaluation runs unmodified Contiki binaries (LLVM bitcode)
// under KLEE; our substitute is a compact register machine with exactly
// the capabilities the SDE layer needs from an execution engine:
// symbolic data flow, fork-on-symbolic-branch, copy-on-write memory, and
// the event/communication intrinsics (send, timers, symbolic input,
// assertions) KleeNet models as special functions.
//
// Conventions:
//  * 32 general registers r0..r31 holding 64-bit symbolic words.
//    ABI: r0..r2 carry event arguments at handler entry; library
//    routines built by sde::rime use r16..r31, applications r0..r15.
//  * Memory is object-granular: (object id, cell index) addresses a
//    64-bit cell. Object 0 is the node's globals segment.
//  * Branches on symbolic conditions fork the execution state; all other
//    control flow is concrete.
#pragma once

#include <cstdint>
#include <string_view>

namespace sde::vm {

enum class Op : std::uint8_t {
  kNop,
  // Data movement / constants.
  kConst,   // r[a] = imm
  kMov,     // r[a] = r[b]
  // Arithmetic / bitwise (64-bit): r[a] = r[b] <op> r[c].
  kAdd,
  kSub,
  kMul,
  kUDiv,
  kURem,
  kSDiv,
  kSRem,
  kAnd,
  kOr,
  kXor,
  kShl,
  kLShr,
  kAShr,
  kNot,     // r[a] = ~r[b]
  // Comparisons: r[a] = (r[b] <op> r[c]) ? 1 : 0.
  kEq,
  kNe,
  kUlt,
  kUle,
  kSlt,
  kSle,
  // Control flow.
  kJmp,     // pc = imm
  kBr,      // if (r[a] != 0) pc = imm else pc = imm2   [symbolic fork point]
  kCall,    // push pc+1; pc = imm
  kRet,     // pop pc (returning from the entry frame ends the handler)
  kHalt,    // end the handler normally
  kFail,    // assertion failure; message = str
  // Memory.
  kAlloc,   // r[a] = new object of r[b] cells (concrete size), zero-filled
  kLoad,    // r[a] = mem[r[b]][r[c]]
  kStore,   // mem[r[b]][r[c]] = r[a]
  kLoadG,   // r[a] = globals[imm]
  kStoreG,  // globals[imm] = r[a]
  // Intrinsics (the KleeNet "special function handler" equivalents).
  kSymbolic,   // r[a] = fresh symbolic value, width imm bits, label str
  kAssume,     // constrain r[a] != 0 (state dies if infeasible)
  kSend,       // send: dst node r[a], payload object r[b], length r[c]
  kSetTimer,   // arm timer imm with delay r[a] (virtual time units)
  kStopTimer,  // cancel timer imm
  kSelf,       // r[a] = own node id
  kNow,        // r[a] = current virtual time
  kNumNodes,   // r[a] = network size
  kLog,        // diagnostic: message str, value r[a]
};

// Number of opcodes (kLog is last). The decoded-dispatch handler table
// (vm/dispatch.hpp) and the per-opcode profiler histogram are indexed by
// the raw Op value, so this must track the enum.
inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kLog) + 1;

[[nodiscard]] std::string_view opName(Op op);

// True for the three-register ALU forms r[a] = r[b] op r[c].
[[nodiscard]] bool isBinaryAlu(Op op);

struct Instr {
  Op op = Op::kNop;
  std::uint8_t a = 0;   // destination / first register operand
  std::uint8_t b = 0;
  std::uint8_t c = 0;
  std::int64_t imm = 0;   // immediate / jump target
  std::int64_t imm2 = 0;  // second jump target (kBr false edge)
  std::uint32_t str = 0;  // string table index (labels, messages)
};

inline constexpr unsigned kNumRegisters = 32;

}  // namespace sde::vm
