#include "vm/state.hpp"

namespace sde::vm {

std::string_view stateStatusName(StateStatus status) {
  switch (status) {
    case StateStatus::kIdle:
      return "idle";
    case StateStatus::kRunning:
      return "running";
    case StateStatus::kFailed:
      return "failed";
    case StateStatus::kInfeasible:
      return "infeasible";
    case StateStatus::kKilled:
      return "killed";
  }
  return "?";
}

std::uint64_t PendingEvent::contentHash() const {
  support::Hasher h;
  h.u64(time).u64(static_cast<std::uint64_t>(kind)).u64(a);
  for (expr::Ref cell : payload) h.u64(cell->hash());
  return h.digest();
}

std::unique_ptr<ExecutionState> ExecutionState::fork(StateId newId) const {
  auto clone = std::make_unique<ExecutionState>(newId, node_, *program_);
  clone->regs_ = regs_;
  clone->pc = pc;
  clone->callStack = callStack;
  clone->space = space;  // shared_ptr payloads: copy-on-write
  clone->constraints = constraints;
  clone->status = status;
  clone->clock = clock;
  clone->failureMessage = failureMessage;
  clone->pendingEvents = pendingEvents;
  clone->nextEventSeq = nextEventSeq;
  clone->activeTimers = activeTimers;
  clone->commLog = commLog;
  clone->decisions = decisions;
  clone->symbolics = symbolics;
  clone->symbolicCounters = symbolicCounters;
  clone->executedInstructions = executedInstructions;
  return clone;
}

std::uint64_t ExecutionState::configHash() const {
  support::Hasher h;
  h.u64(node_).u64(pc).u64(static_cast<std::uint64_t>(status)).u64(clock);
  for (const std::size_t ret : callStack) h.u64(ret);
  for (expr::Ref reg : regs_) h.u64(reg == nullptr ? 0 : reg->hash());
  h.u64(space.contentHash());
  h.u64(constraints.setHash());
  // Pending events: hash as a multiset ordered by (time, seq) — the
  // arming order is deterministic per logical execution.
  for (const PendingEvent& event : pendingEvents) h.u64(event.contentHash());
  // Communication history without packet ids: the ids number packets
  // globally per run and differ across mapping algorithms, while the
  // logical history (direction, peer, time, content) does not.
  for (const CommRecord& rec : commLog)
    h.u64(rec.sent).u64(rec.peer).u64(rec.time).u64(rec.payloadHash);
  h.str(failureMessage);
  return h.digest();
}

std::uint64_t ExecutionState::configHashStrict() const {
  support::Hasher h;
  h.u64(configHash());
  // Distinguish packets by identity on top of the content view: in the
  // paper's model two transmissions are never "the same packet", even
  // when byte-identical.
  for (const PendingEvent& event : pendingEvents)
    if (event.kind == EventKind::kRecv) h.u64(event.b);
  for (const CommRecord& rec : commLog) h.u64(rec.packetId);
  return h.digest();
}

}  // namespace sde::vm
