#include "vm/state.hpp"

namespace sde::vm {

std::string_view stateStatusName(StateStatus status) {
  switch (status) {
    case StateStatus::kIdle:
      return "idle";
    case StateStatus::kRunning:
      return "running";
    case StateStatus::kFailed:
      return "failed";
    case StateStatus::kInfeasible:
      return "infeasible";
    case StateStatus::kKilled:
      return "killed";
  }
  return "?";
}

std::uint64_t PendingEvent::contentHash() const {
  support::Hasher h;
  h.u64(time).u64(static_cast<std::uint64_t>(kind)).u64(a);
  for (const expr::Ref& cell : payload) h.u64(cell->hash());
  return h.digest();
}

void CommLog::restoreSnapshot(Records records) {
  records_ = std::move(records);
  contentChain_ = 0;
  strictChain_ = 0;
  for (const CommRecord& rec : records_) {
    contentChain_ = support::hashCombine(contentChain_, rec.sent ? 1 : 0);
    contentChain_ = support::hashCombine(contentChain_, rec.peer);
    contentChain_ = support::hashCombine(contentChain_, rec.time);
    contentChain_ = support::hashCombine(contentChain_, rec.payloadHash);
    strictChain_ = support::hashCombine(strictChain_, rec.packetId);
  }
}

namespace {

std::uint64_t pendingEventBytes(const PendingEvent& event) {
  return sizeof(PendingEvent) + event.payload.size() * sizeof(expr::Ref);
}

}  // namespace

std::uint64_t EventQueue::accountBytes(
    std::map<const void*, std::uint64_t>& seen) const {
  return events_.accountBytes(seen, pendingEventBytes);
}

void EventQueue::restoreSnapshot(Events events) {
  events_ = std::move(events);
  contentMultiset_ = 0;
  strictRecvMultiset_ = 0;
  for (const PendingEvent& event : events_) noteInsert(event);
}

std::unique_ptr<ExecutionState> ExecutionState::fork(StateId newId) const {
  auto clone = std::make_unique<ExecutionState>(newId, node_, *program_);
  clone->regs_ = regs_;
  clone->pc = pc;
  clone->callStack = callStack;
  clone->space = space;  // shared_ptr payloads: copy-on-write
  clone->constraints = constraints;      // chunk-shared, O(tail)
  clone->status = status;
  clone->clock = clock;
  clone->failureMessage = failureMessage;
  clone->pendingEvents = pendingEvents;  // CoW-shared queue payload
  clone->nextEventSeq = nextEventSeq;
  clone->activeTimers = activeTimers;
  clone->commLog = commLog;              // chunk-shared, O(tail)
  clone->decisions = decisions;          // chunk-shared, O(tail)
  clone->symbolics = symbolics;          // chunk-shared, O(tail)
  clone->symbolicCounters = symbolicCounters;
  clone->executedInstructions = executedInstructions;
  clone->mergeGuards = mergeGuards;
  // Merge tokens are shared by design: the interpreter bumps each
  // inherited token's live count right after forking (fork() itself
  // cannot, because non-branch forks — failure forks, mapper clones —
  // happen between events when the stack is empty anyway).
  clone->mergeTokens = mergeTokens;
  return clone;
}

std::uint64_t ExecutionState::forkCopyCost() const {
  return constraints.copyCostElements() + commLog.copyCostElements() +
         decisions.copyCostElements() + symbolics.copyCostElements() +
         pendingEvents.copyCostElements();
}

std::uint64_t ExecutionState::forkSharedChunks() const {
  return constraints.sharedChunksOnCopy() + commLog.sharedChunksOnCopy() +
         decisions.sharedChunksOnCopy() + symbolics.sharedChunksOnCopy() +
         pendingEvents.sharedChunksOnCopy();
}

std::uint64_t ExecutionState::accountBytes(
    std::map<const void*, std::uint64_t>& seen) const {
  // Fixed per-state footprint plus per-state private containers, as a
  // deterministic function of the state's shape (sizes, not capacities,
  // so the total survives checkpoint/restore byte-for-byte), plus each
  // shared block charged once via `seen`.
  std::uint64_t bytes = sizeof(ExecutionState);
  bytes += callStack.size() * sizeof(std::size_t);
  bytes += failureMessage.size();
  bytes += activeTimers.size() *
           (sizeof(std::uint32_t) + sizeof(std::uint64_t));
  for (const auto& [label, count] : symbolicCounters)
    bytes += label.size() + sizeof(count);
  for (const MergeGuard& g : mergeGuards)
    bytes += sizeof(MergeGuard) +
             (g.ifTrue.size() + g.ifFalse.size()) * sizeof(expr::Ref) +
             (g.decTrue.size() + g.decFalse.size()) * sizeof(DecisionRecord) +
             (g.objsTrueOnly.size() + g.objsFalseOnly.size()) *
                 sizeof(std::uint64_t);
  bytes += space.accountBytes(seen);
  bytes += constraints.accountBytes(seen);
  bytes += commLog.accountBytes(seen);
  bytes += decisions.accountBytes(seen);
  bytes += symbolics.accountBytes(seen);
  bytes += pendingEvents.accountBytes(seen);
  return bytes;
}

std::uint64_t ExecutionState::configHash() const {
  support::Hasher h;
  h.u64(node_).u64(pc).u64(static_cast<std::uint64_t>(status)).u64(clock);
  for (const std::size_t ret : callStack) h.u64(ret);
  for (const expr::Ref& reg : regs_) h.u64(reg == nullptr ? 0 : reg->hash());
  h.u64(space.contentHash());
  h.u64(constraints.setHash());
  // Pending events: an order-independent multiset fingerprint maintained
  // incrementally by the queue (arming order is deterministic per
  // logical execution, so nothing is lost by dropping it here).
  h.u64(pendingEvents.contentHash());
  // Communication history without packet ids: the ids number packets
  // globally per run and differ across mapping algorithms, while the
  // logical history (direction, peer, time, content) does not. The chain
  // is maintained on append, never recomputed.
  h.u64(commLog.contentChainHash());
  h.str(failureMessage);
  return h.digest();
}

std::uint64_t ExecutionState::configHashStrict() const {
  support::Hasher h;
  h.u64(configHash());
  // Distinguish packets by identity on top of the content view: in the
  // paper's model two transmissions are never "the same packet", even
  // when byte-identical.
  h.u64(pendingEvents.strictRecvHash());
  h.u64(commLog.strictChainHash());
  return h.digest();
}

}  // namespace sde::vm
