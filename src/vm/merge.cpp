#include "vm/merge.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "expr/subst.hpp"
#include "support/assert.hpp"

namespace sde::vm {

namespace {

bool samePendingEvent(const PendingEvent& x, const PendingEvent& y) {
  return x.time == y.time && x.kind == y.kind && x.a == y.a && x.b == y.b &&
         x.seq == y.seq && x.payload == y.payload;
}

bool sameDecision(const DecisionRecord& x, const DecisionRecord& y) {
  return x.var == y.var && x.failed == y.failed;
}

}  // namespace

bool Merger::compatible(const ExecutionState& a,
                        const ExecutionState& b) const {
  if (&a == &b) return false;
  if (a.node() != b.node() || &a.program() != &b.program()) return false;
  if (a.mergedAway || b.mergedAway) return false;
  if (a.status != b.status) return false;
  if (a.status == StateStatus::kRunning) {
    // The parking case: both arms arrived at the same join point.
    if (a.pc != b.pc || a.callStack != b.callStack) return false;
  } else if (a.status != StateStatus::kIdle) {
    return false;  // terminal states are never merged
  }
  if (a.failureMessage != b.failureMessage) return false;

  // Event timelines must be identical entry for entry — including
  // packet identity and arming order: the merged state replays both
  // arms' futures as one.
  if (a.nextEventSeq != b.nextEventSeq) return false;
  if (a.activeTimers != b.activeTimers) return false;
  if (a.pendingEvents.size() != b.pendingEvents.size()) return false;
  for (std::size_t i = 0; i < a.pendingEvents.size(); ++i)
    if (!samePendingEvent(a.pendingEvents[i], b.pendingEvents[i]))
      return false;

  // Communication histories must agree under both the content and the
  // packet-identity view (merging arms that communicated differently
  // would change the reachable behaviours).
  if (a.commLog.size() != b.commLog.size() ||
      a.commLog.contentChainHash() != b.commLog.contentChainHash() ||
      a.commLog.strictChainHash() != b.commLog.strictChainHash())
    return false;

  // Same symbolic inputs, pointwise: the merged test case assigns one
  // shared input vector, expanded per guard polarity afterwards.
  if (a.symbolics.size() != b.symbolics.size()) return false;
  if (a.symbolicCounters != b.symbolicCounters) return false;
  {
    auto ia = a.symbolics.begin();
    auto ib = b.symbolics.begin();
    for (; ia != a.symbolics.end(); ++ia, ++ib)
      if (*ia != *ib) return false;
  }

  // Parking tokens must be the very same shared stack (idle sweep: both
  // empty; join parking: the same inherited outer tokens).
  if (a.mergeTokens != b.mergeTokens) return false;

  // Memory objects present in both arms must have equal sizes;
  // one-sided objects (phantoms, e.g. the delivered payload the dropped
  // arm never materialised) are representable as ite(g, cells, 0).
  {
    auto ia = a.space.objects().begin();
    auto ib = b.space.objects().begin();
    while (ia != a.space.objects().end() && ib != b.space.objects().end()) {
      if (ia->first < ib->first) {
        ++ia;
      } else if (ib->first < ia->first) {
        ++ib;
      } else {
        if (ia->second->size() != ib->second->size()) return false;
        ++ia;
        ++ib;
      }
    }
  }
  return true;
}

bool Merger::merge(ExecutionState& s, ExecutionState& a, expr::Ref guard) {
  SDE_ASSERT(guard != nullptr && guard->isVariable() && guard->isBool(),
             "merge guard must be a fresh boolean variable");
  SDE_ASSERT(compatible(s, a), "merge of incompatible states");

  // --- Constraint decomposition: shared prefix + two arm suffixes. ----------
  const std::vector<expr::Ref> sItems = s.constraints.toVector();
  const std::vector<expr::Ref> aItems = a.constraints.toVector();
  std::size_t prefix = 0;
  while (prefix < sItems.size() && prefix < aItems.size() &&
         sItems[prefix] == aItems[prefix])
    ++prefix;
  std::vector<expr::Ref> ifTrue(sItems.begin() +
                                    static_cast<std::ptrdiff_t>(prefix),
                                sItems.end());
  std::vector<expr::Ref> ifFalse(aItems.begin() +
                                     static_cast<std::ptrdiff_t>(prefix),
                                 aItems.end());

  const auto conjunctionOf = [this](const std::vector<expr::Ref>& xs) {
    expr::Ref acc = ctx_.trueExpr();
    for (const expr::Ref x : xs) acc = ctx_.logicalAnd(acc, x);
    return acc;
  };
  expr::Ref conjunct = nullptr;
  if (!ifTrue.empty() || !ifFalse.empty()) {
    conjunct = ctx_.ite(guard, conjunctionOf(ifTrue), conjunctionOf(ifFalse));
    // A constant conjunct means one arm's suffix folded to a constant —
    // degenerate algebra this merge cannot represent invertibly.
    if (conjunct->isConstant()) return false;
  }

  solver::ConstraintSet mergedSet;
  for (std::size_t i = 0; i < prefix; ++i)
    if (mergedSet.add(sItems[i]) != solver::ConstraintSet::AddResult::kAdded)
      return false;  // defensive: prefix items are distinct and non-trivial
  if (conjunct != nullptr &&
      mergedSet.add(conjunct) != solver::ConstraintSet::AddResult::kAdded)
    return false;  // the conjunct collided with a prefix item

  // --- Value merges, staged so a late decline leaves both states intact. ---
  std::size_t rewritten = 0;
  const expr::Ref zero64 = ctx_.constant(0, 64);
  std::array<expr::Ref, kNumRegisters> regs = s.regs_;
  for (unsigned i = 0; i < kNumRegisters; ++i) {
    const expr::Ref vs = s.regs_[i] != nullptr ? s.regs_[i] : zero64;
    const expr::Ref va = a.regs_[i] != nullptr ? a.regs_[i] : zero64;
    if (vs == va) continue;
    if (vs->width() != va->width()) return false;
    regs[i] = ctx_.ite(guard, vs, va);
    ++rewritten;
  }

  struct StagedStore {
    std::uint64_t obj = 0;
    std::uint64_t index = 0;
    expr::Ref value = nullptr;
  };
  std::vector<StagedStore> stores;
  std::vector<std::pair<std::uint64_t, AddressSpace::Cells>> inserts;
  std::vector<std::uint64_t> objsTrueOnly;
  std::vector<std::uint64_t> objsFalseOnly;
  {
    auto is = s.space.objects().begin();
    auto ia = a.space.objects().begin();
    const auto sEnd = s.space.objects().end();
    const auto aEnd = a.space.objects().end();
    while (is != sEnd || ia != aEnd) {
      if (ia == aEnd || (is != sEnd && is->first < ia->first)) {
        // Survivor-only phantom: merged cells select zero on the false arm.
        objsTrueOnly.push_back(is->first);
        const AddressSpace::Cells& cells = *is->second;
        for (std::size_t idx = 0; idx < cells.size(); ++idx) {
          if (cells[idx] == zero64) continue;
          if (cells[idx]->width() != 64) return false;
          stores.push_back({is->first, idx, ctx_.ite(guard, cells[idx], zero64)});
          ++rewritten;
        }
        ++is;
      } else if (is == sEnd || ia->first < is->first) {
        // Absorbed-only phantom: inserted into the survivor as
        // ite(g, 0, cells).
        objsFalseOnly.push_back(ia->first);
        const AddressSpace::Cells& cells = *ia->second;
        AddressSpace::Cells merged(cells.size(), zero64);
        for (std::size_t idx = 0; idx < cells.size(); ++idx) {
          if (cells[idx] == zero64) continue;
          if (cells[idx]->width() != 64) return false;
          merged[idx] = ctx_.ite(guard, zero64, cells[idx]);
          ++rewritten;
        }
        inserts.emplace_back(ia->first, std::move(merged));
        ++ia;
      } else {
        const AddressSpace::Cells& cs = *is->second;
        const AddressSpace::Cells& ca = *ia->second;
        SDE_ASSERT(cs.size() == ca.size(), "compatible() missed a size clash");
        for (std::size_t idx = 0; idx < cs.size(); ++idx) {
          if (cs[idx] == ca[idx]) continue;
          if (cs[idx]->width() != ca[idx]->width()) return false;
          stores.push_back({is->first, idx, ctx_.ite(guard, cs[idx], ca[idx])});
          ++rewritten;
        }
        ++is;
        ++ia;
      }
    }
  }
  if (rewritten > limits_.maxDifferingCells) return false;

  // --- Decision tails. ------------------------------------------------------
  std::vector<DecisionRecord> sDecs(s.decisions.begin(), s.decisions.end());
  std::vector<DecisionRecord> aDecs(a.decisions.begin(), a.decisions.end());
  std::size_t decPrefix = 0;
  while (decPrefix < sDecs.size() && decPrefix < aDecs.size() &&
         sameDecision(sDecs[decPrefix], aDecs[decPrefix]))
    ++decPrefix;

  // --- Arm merge tables beyond the shared prefix. ---------------------------
  std::size_t tablePrefix = 0;
  while (tablePrefix < s.mergeGuards.size() &&
         tablePrefix < a.mergeGuards.size() &&
         s.mergeGuards[tablePrefix].guard == a.mergeGuards[tablePrefix].guard)
    ++tablePrefix;

  // --- Commit. --------------------------------------------------------------
  MergeGuard mg;
  mg.guard = guard;
  mg.conjunct = conjunct;
  mg.ifTrue = std::move(ifTrue);
  mg.ifFalse = std::move(ifFalse);
  mg.decTrue.assign(sDecs.begin() + static_cast<std::ptrdiff_t>(decPrefix),
                    sDecs.end());
  mg.decFalse.assign(aDecs.begin() + static_cast<std::ptrdiff_t>(decPrefix),
                     aDecs.end());
  mg.decSplit = decPrefix;
  mg.objsTrueOnly = std::move(objsTrueOnly);
  mg.objsFalseOnly = std::move(objsFalseOnly);
  mg.subTrue.assign(
      s.mergeGuards.begin() + static_cast<std::ptrdiff_t>(tablePrefix),
      s.mergeGuards.end());
  mg.subFalse.assign(
      a.mergeGuards.begin() + static_cast<std::ptrdiff_t>(tablePrefix),
      a.mergeGuards.end());

  s.constraints = mergedSet;
  s.regs_ = regs;
  for (auto& [id, cells] : inserts) s.space.insertObject(id, std::move(cells));
  for (const StagedStore& st : stores) s.space.store(st.obj, st.index, st.value);
  s.space.setNextObjectId(
      std::max(s.space.nextObjectId(), a.space.nextObjectId()));
  for (const DecisionRecord& rec : mg.decFalse) s.decisions.push_back(rec);
  s.mergeGuards.resize(tablePrefix);
  s.mergeGuards.push_back(std::move(mg));
  // The dropped arm's clock can only be *older* (a dropped delivery sets
  // no clock) and is unobservable: the next dispatched event overwrites
  // it before any kNow/send can read it. Same for the fuel counter.
  s.clock = std::max(s.clock, a.clock);
  s.executedInstructions =
      std::max(s.executedInstructions, a.executedInstructions);
  a.mergedAway = true;
  return true;
}

std::pair<bool, bool> Merger::feasiblePolarities(
    const ExecutionState& state) const {
  SDE_ASSERT(!state.mergeGuards.empty(), "feasiblePolarities without guards");
  const MergeGuard& g = state.mergeGuards.back();
  const auto feasible = [&](bool v) {
    expr::Substitution subst(ctx_);
    subst.set(g.guard, ctx_.boolConst(v));
    for (const expr::Ref item : state.constraints.items()) {
      if (item == g.conjunct) continue;  // splice is arm-consistent
      if (subst.apply(item)->isFalse()) return false;
    }
    return true;
  };
  return {feasible(true), feasible(false)};
}

void Merger::applyLastGuard(ExecutionState& state, bool value) {
  SDE_ASSERT(!state.mergeGuards.empty(), "applyLastGuard without guards");
  MergeGuard g = std::move(state.mergeGuards.back());
  state.mergeGuards.pop_back();

  expr::Substitution subst(ctx_);
  subst.set(g.guard, ctx_.boolConst(value));

  // Constraints: splice the arm suffix back in place of the conjunct;
  // substitute the guard constant through every later item. Items
  // folding to constant true vanish exactly like the interpreter's
  // constant-branch fast path never recorded them; duplicates dedup via
  // add(), matching the unmerged add sequence.
  solver::ConstraintSet rebuilt;
  for (const expr::Ref item : state.constraints.items()) {
    if (item == g.conjunct) {
      for (const expr::Ref armItem : value ? g.ifTrue : g.ifFalse) {
        const auto r = rebuilt.add(armItem);
        SDE_ASSERT(r != solver::ConstraintSet::AddResult::kTriviallyFalse,
                   "arm suffix item folded false");
      }
      continue;
    }
    const auto r = rebuilt.add(subst.apply(item));
    SDE_ASSERT(r != solver::ConstraintSet::AddResult::kTriviallyFalse,
               "applyLastGuard on an infeasible polarity");
  }
  state.constraints = std::move(rebuilt);

  for (expr::Ref& reg : state.regs_)
    if (reg != nullptr) reg = subst.apply(reg);

  // Memory: drop the losing arm's phantoms first (their cells mention
  // the guard), then fold the guard out of every remaining cell.
  for (const std::uint64_t id : value ? g.objsFalseOnly : g.objsTrueOnly)
    state.space.removeObject(id);
  {
    std::vector<std::uint64_t> ids;
    ids.reserve(state.space.numObjects());
    for (const auto& [id, payload] : state.space.objects()) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      const std::uint64_t size = state.space.objectSize(id);
      for (std::uint64_t idx = 0; idx < size; ++idx) {
        const expr::Ref cell = state.space.load(id, idx);
        const expr::Ref folded = subst.apply(cell);
        if (folded != cell) state.space.store(id, idx, folded);
      }
    }
  }

  // Decisions: remove the other arm's tail (a contiguous range whose
  // position was recorded at merge time; later appends land after it).
  const std::size_t cutBegin = g.decSplit + (value ? g.decTrue.size() : 0);
  const std::size_t cutLen = value ? g.decFalse.size() : g.decTrue.size();
  if (cutLen > 0) {
    support::PVector<DecisionRecord> pruned;
    std::size_t i = 0;
    for (const DecisionRecord& rec : state.decisions) {
      if (i < cutBegin || i >= cutBegin + cutLen) pruned.push_back(rec);
      ++i;
    }
    state.decisions = std::move(pruned);
  }

  // Restore the arm's own merge table.
  for (MergeGuard& sub : value ? g.subTrue : g.subFalse)
    state.mergeGuards.push_back(std::move(sub));
}

void MergeExpansion::addTable(const std::vector<MergeGuard>& table) {
  for (const MergeGuard& mg : table) {
    if (!guardIndex_.contains(mg.guard)) {
      guardIndex_.emplace(mg.guard, guards_.size());
      guards_.push_back(mg.guard);
    }
    if (mg.conjunct != nullptr) byConjunct_[mg.conjunct] = &mg;
    addTable(mg.subTrue);
    addTable(mg.subFalse);
  }
}

void MergeExpansion::addState(const ExecutionState& state) {
  addTable(state.mergeGuards);
}

bool MergeExpansion::expandItem(expr::Ref item, expr::Substitution& subst,
                                const std::vector<bool>& assignment,
                                std::vector<expr::Ref>& out) const {
  if (const auto it = byConjunct_.find(item); it != byConjunct_.end()) {
    const MergeGuard& mg = *it->second;
    const bool v = assignment[guardIndex_.at(mg.guard)];
    // Splice the selected arm's suffix; its items may themselves be
    // merge conjuncts of the arm's own earlier merges, so recurse.
    for (const expr::Ref armItem : v ? mg.ifTrue : mg.ifFalse)
      if (!expandItem(armItem, subst, assignment, out)) return false;
    return true;
  }
  const expr::Ref folded = subst.apply(item);
  if (folded->isFalse()) return false;
  if (folded->isTrue()) return true;  // the unmerged fast path never added it
  out.push_back(folded);
  return true;
}

bool MergeExpansion::expandItems(const ExecutionState& state,
                                 const std::vector<bool>& assignment,
                                 std::vector<expr::Ref>& out) const {
  SDE_ASSERT(assignment.size() == guards_.size(),
             "expandItems needs a full guard assignment");
  expr::Substitution subst(ctx_);
  for (std::size_t i = 0; i < guards_.size(); ++i)
    subst.set(guards_[i], ctx_.boolConst(assignment[i]));
  for (const expr::Ref item : state.constraints.items())
    if (!expandItem(item, subst, assignment, out)) return false;
  return true;
}

}  // namespace sde::vm
