#include "vm/builder.hpp"

#include <limits>

namespace sde::vm {

namespace {
constexpr std::size_t kUnbound = std::numeric_limits<std::size_t>::max();

void checkReg(Reg r) {
  SDE_ASSERT(r.index < kNumRegisters, "register index out of range");
}
}  // namespace

IRBuilder::IRBuilder(std::string name) {
  program_.name_ = std::move(name);
  internString("");  // index 0 = empty string for instructions without one
}

void IRBuilder::beginEntry(Entry entry) {
  SDE_ASSERT(!program_.entries_.contains(entry), "entry declared twice");
  program_.entries_[entry] = program_.code_.size();
}

IRBuilder::Label IRBuilder::newLabel() {
  labelPc_.push_back(kUnbound);
  return Label(static_cast<std::uint32_t>(labelPc_.size() - 1));
}

void IRBuilder::bind(Label label) {
  SDE_ASSERT(label.valid_, "binding a default-constructed label");
  SDE_ASSERT(labelPc_[label.id_] == kUnbound, "label bound twice");
  labelPc_[label.id_] = program_.code_.size();
}

std::size_t IRBuilder::emit(Instr instr) {
  SDE_ASSERT(!finished_, "emit after finish()");
  program_.code_.push_back(instr);
  return program_.code_.size() - 1;
}

std::uint32_t IRBuilder::internString(std::string_view s) {
  const auto it = stringIndex_.find(std::string(s));
  if (it != stringIndex_.end()) return it->second;
  program_.strings_.emplace_back(s);
  const auto index = static_cast<std::uint32_t>(program_.strings_.size() - 1);
  stringIndex_.emplace(std::string(s), index);
  return index;
}

void IRBuilder::constant(Reg rd, std::int64_t value) {
  checkReg(rd);
  emit({.op = Op::kConst, .a = rd.index, .imm = value});
}

void IRBuilder::mov(Reg rd, Reg rs) {
  checkReg(rd);
  checkReg(rs);
  emit({.op = Op::kMov, .a = rd.index, .b = rs.index});
}

void IRBuilder::alu(Op op, Reg rd, Reg ra, Reg rb) {
  SDE_ASSERT(isBinaryAlu(op), "alu() requires a binary ALU op");
  checkReg(rd);
  checkReg(ra);
  checkReg(rb);
  emit({.op = op, .a = rd.index, .b = ra.index, .c = rb.index});
}

void IRBuilder::aluImm(Op op, Reg rd, Reg ra, std::int64_t imm, Reg scratch) {
  constant(scratch, imm);
  alu(op, rd, ra, scratch);
}

void IRBuilder::bvNot(Reg rd, Reg rs) {
  checkReg(rd);
  checkReg(rs);
  emit({.op = Op::kNot, .a = rd.index, .b = rs.index});
}

void IRBuilder::jump(Label target) {
  SDE_ASSERT(target.valid_, "jump to default-constructed label");
  const std::size_t i = emit({.op = Op::kJmp});
  fixups_.push_back({i, false, target.id_});
}

void IRBuilder::branch(Reg cond, Label ifTrue, Label ifFalse) {
  checkReg(cond);
  SDE_ASSERT(ifTrue.valid_ && ifFalse.valid_, "branch to invalid label");
  const std::size_t i = emit({.op = Op::kBr, .a = cond.index});
  fixups_.push_back({i, false, ifTrue.id_});
  fixups_.push_back({i, true, ifFalse.id_});
}

void IRBuilder::branchIfZero(Reg cond, Label ifFalse) {
  Label fallthrough = newLabel();
  branch(cond, fallthrough, ifFalse);
  bind(fallthrough);
}

void IRBuilder::branchIfNonZero(Reg cond, Label ifTrue) {
  Label fallthrough = newLabel();
  branch(cond, ifTrue, fallthrough);
  bind(fallthrough);
}

void IRBuilder::call(std::string_view function) {
  const std::size_t i = emit({.op = Op::kCall});
  callFixups_.push_back({i, std::string(function)});
}

void IRBuilder::ret() { emit({.op = Op::kRet}); }

void IRBuilder::halt() { emit({.op = Op::kHalt}); }

void IRBuilder::fail(std::string_view message) {
  emit({.op = Op::kFail, .str = internString(message)});
}

void IRBuilder::beginFunction(std::string_view name) {
  const auto [it, inserted] =
      functionPc_.emplace(std::string(name), program_.code_.size());
  SDE_ASSERT(inserted, "function defined twice");
  (void)it;
}

void IRBuilder::alloc(Reg rd, Reg sizeCells) {
  checkReg(rd);
  checkReg(sizeCells);
  emit({.op = Op::kAlloc, .a = rd.index, .b = sizeCells.index});
}

void IRBuilder::load(Reg rd, Reg obj, Reg index) {
  checkReg(rd);
  checkReg(obj);
  checkReg(index);
  emit({.op = Op::kLoad, .a = rd.index, .b = obj.index, .c = index.index});
}

void IRBuilder::store(Reg src, Reg obj, Reg index) {
  checkReg(src);
  checkReg(obj);
  checkReg(index);
  emit({.op = Op::kStore, .a = src.index, .b = obj.index, .c = index.index});
}

void IRBuilder::loadGlobal(Reg rd, std::uint64_t index) {
  checkReg(rd);
  emit({.op = Op::kLoadG,
        .a = rd.index,
        .imm = static_cast<std::int64_t>(index)});
}

void IRBuilder::storeGlobal(Reg src, std::uint64_t index) {
  checkReg(src);
  emit({.op = Op::kStoreG,
        .a = src.index,
        .imm = static_cast<std::int64_t>(index)});
}

void IRBuilder::makeSymbolic(Reg rd, std::string_view label,
                             unsigned widthBits) {
  checkReg(rd);
  SDE_ASSERT(widthBits >= 1 && widthBits <= 64, "symbolic width out of range");
  emit({.op = Op::kSymbolic,
        .a = rd.index,
        .imm = widthBits,
        .str = internString(label)});
}

void IRBuilder::assume(Reg cond) {
  checkReg(cond);
  emit({.op = Op::kAssume, .a = cond.index});
}

void IRBuilder::send(Reg dstNode, Reg payloadObj, Reg lengthCells) {
  checkReg(dstNode);
  checkReg(payloadObj);
  checkReg(lengthCells);
  emit({.op = Op::kSend,
        .a = dstNode.index,
        .b = payloadObj.index,
        .c = lengthCells.index});
}

void IRBuilder::setTimer(std::uint32_t timerId, Reg delay) {
  checkReg(delay);
  emit({.op = Op::kSetTimer, .a = delay.index, .imm = timerId});
}

void IRBuilder::stopTimer(std::uint32_t timerId) {
  emit({.op = Op::kStopTimer, .imm = timerId});
}

void IRBuilder::self(Reg rd) {
  checkReg(rd);
  emit({.op = Op::kSelf, .a = rd.index});
}

void IRBuilder::now(Reg rd) {
  checkReg(rd);
  emit({.op = Op::kNow, .a = rd.index});
}

void IRBuilder::numNodes(Reg rd) {
  checkReg(rd);
  emit({.op = Op::kNumNodes, .a = rd.index});
}

void IRBuilder::log(std::string_view message, Reg value) {
  checkReg(value);
  emit({.op = Op::kLog, .a = value.index, .str = internString(message)});
}

Program IRBuilder::finish() {
  SDE_ASSERT(!finished_, "finish() called twice");
  finished_ = true;
  for (const Fixup& fixup : fixups_) {
    const std::size_t pc = labelPc_[fixup.label];
    SDE_ASSERT(pc != kUnbound, "jump/branch to an unbound label");
    Instr& ins = program_.code_[fixup.instrIndex];
    (fixup.second ? ins.imm2 : ins.imm) = static_cast<std::int64_t>(pc);
  }
  for (const CallFixup& fixup : callFixups_) {
    const auto it = functionPc_.find(fixup.function);
    SDE_ASSERT(it != functionPc_.end(), "call to an undefined function");
    program_.code_[fixup.instrIndex].imm =
        static_cast<std::int64_t>(it->second);
  }
  return std::move(program_);
}

}  // namespace sde::vm
