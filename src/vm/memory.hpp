// Object-granular copy-on-write memory.
//
// An AddressSpace maps object ids to arrays of 64-bit symbolic cells.
// Forked states share object payloads through shared_ptr; the first
// store after a fork copies the touched object only (the same COW
// discipline KLEE applies per memory object). Object ids are allocated
// deterministically per state, so identical logical executions produce
// identical address spaces — a property the cross-algorithm equivalence
// checks depend on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "expr/context.hpp"
#include "support/hash.hpp"

namespace sde::vm {

// Object 0 is always the node's globals segment.
inline constexpr std::uint64_t kGlobalsObject = 0;

class AddressSpace {
 public:
  using Cells = std::vector<expr::Ref>;

  // Creates the globals segment (object 0) zero-filled.
  void initGlobals(expr::Context& ctx, std::uint64_t cells);

  // Allocates a fresh zero-filled object; returns its id.
  std::uint64_t alloc(expr::Context& ctx, std::uint64_t cells);
  // Allocates a fresh object holding `content` (packet materialisation).
  std::uint64_t allocFrom(Cells content);

  [[nodiscard]] bool hasObject(std::uint64_t id) const {
    return objects_.contains(id);
  }
  [[nodiscard]] std::uint64_t objectSize(std::uint64_t id) const;

  [[nodiscard]] expr::Ref load(std::uint64_t id, std::uint64_t index) const;
  void store(std::uint64_t id, std::uint64_t index, expr::Ref value);

  // --- State-merging support -------------------------------------------------
  // Inserts an object under a caller-chosen id (a phantom object the
  // merge partner allocated on its arm); the id must be free.
  void insertObject(std::uint64_t id, Cells cells);
  // Drops an object (splitting a merged state back onto the arm that
  // never allocated it). The id must exist.
  void removeObject(std::uint64_t id);
  // Merged spaces advance the allocator to the max of both arms so both
  // replay futures allocate non-clashing ids.
  void setNextObjectId(std::uint64_t next) { nextId_ = next; }

  // Reads cells [0, count) of an object (packet payload extraction).
  [[nodiscard]] Cells read(std::uint64_t id, std::uint64_t count) const;

  // Content fingerprint: object ids, sizes and cell structural hashes.
  [[nodiscard]] std::uint64_t contentHash() const;

  // Bytes of payload owned by this space, where objects shared with
  // other spaces are attributed via `seen` (counted only by the first
  // space that visits them). Used by the simulated-memory meter.
  [[nodiscard]] std::uint64_t accountBytes(
      std::map<const void*, std::uint64_t>& seen) const;

  [[nodiscard]] std::size_t numObjects() const { return objects_.size(); }

  // --- Snapshot support ----------------------------------------------------
  // The raw object table (ordered by id). The snapshot layer serializes
  // payloads through a pointer-identity blob table so that objects
  // shared copy-on-write between forked states stay shared after
  // restore — accountBytes() must attribute them once, exactly as in
  // the original run.
  [[nodiscard]] const std::map<std::uint64_t, std::shared_ptr<Cells>>&
  objects() const {
    return objects_;
  }
  [[nodiscard]] std::uint64_t nextObjectId() const { return nextId_; }
  void restoreSnapshot(
      std::map<std::uint64_t, std::shared_ptr<Cells>> objects,
      std::uint64_t nextId) {
    objects_ = std::move(objects);
    nextId_ = nextId;
  }

 private:
  std::shared_ptr<Cells>& mutableObject(std::uint64_t id);

  // Ordered map: deterministic iteration for hashing and accounting.
  std::map<std::uint64_t, std::shared_ptr<Cells>> objects_;
  std::uint64_t nextId_ = 1;
};

}  // namespace sde::vm
